// Package tracefw reproduces the performance framework of "From Trace
// Generation to Visualization: A Performance Framework for Distributed
// Parallel Systems" (Wu, Bolmarcich, Snir, Wootton, Parpia, Chan, Lusk,
// Gropp — SC 2000): a unified tracing facility for MPI and system events
// on clusters of SMP nodes, switch-clock-based timestamp adjustment, a
// self-defining interval trace file format with frames and frame
// directories, convert/merge/statistics utilities, an SLOG export, and a
// Jumpshot-style viewer.
//
// The repository root holds the benchmark suite (bench_test.go): one
// benchmark per table and figure of the paper's evaluation plus
// ablations of the design decisions. See README.md for the tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-vs-measured record.
package tracefw
