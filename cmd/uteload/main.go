// Command uteload is a closed-loop load generator for the serving
// tier: it points N concurrent clients at a utetraced or uterouter,
// replays a weighted mix of window queries (stats, SVG previews,
// time-resolved tables, record counts) with zipfian trace popularity,
// and reports throughput and tail latency for a cold pass (every
// window touched once) and a measured warm phase. With -backends it
// also scrapes each backend's /metrics before and after the warm
// phase and reports per-backend decoded-frame cache hit ratios.
//
// Usage:
//
//	uteload -url http://HOST:PORT [-backends URL,URL...]
//	        [-clients N] [-requests N]
//	        [-mix stats=4,preview=2,timeresolved=1,records=3]
//	        [-zipf S] [-seed N] [-bins N] [-windows N] [-json]
//
// The target must already have traces open; uteload discovers them via
// GET /v1/traces. Exit status: 0 on success, 1 on run failure, 2 on
// flag misuse.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"tracefw/internal/load"
)

func main() {
	var (
		url      = flag.String("url", "", "base URL of the service under test (required)")
		backends = flag.String("backends", "", "comma-separated backend base URLs to scrape for cache hit ratios")
		clients  = flag.Int("clients", 4, "concurrent clients")
		requests = flag.Int("requests", 200, "measured warm-phase request count")
		mixFlag  = flag.String("mix", "", "query mix weights, e.g. stats=4,preview=2,timeresolved=1,records=3")
		zipfS    = flag.Float64("zipf", 1.1, "zipf exponent for trace popularity")
		seed     = flag.Uint64("seed", 1, "random seed (request sequence is reproducible)")
		bins     = flag.Int("bins", 16, "bins parameter for stats/preview queries")
		windows  = flag.Int("windows", 16, "window-pool size per trace")
		asJSON   = flag.Bool("json", false, "emit the full report as JSON")
	)
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "uteload: -url is required")
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uteload:", err)
		os.Exit(2)
	}
	cfg := load.Config{
		BaseURL:  strings.TrimSuffix(*url, "/"),
		Clients:  *clients,
		Requests: *requests,
		Mix:      mix,
		ZipfS:    *zipfS,
		Seed:     *seed,
		Bins:     *bins,
		Windows:  *windows,
	}
	if *backends != "" {
		for _, u := range strings.Split(*backends, ",") {
			u = strings.TrimSpace(strings.TrimSuffix(u, "/"))
			if u != "" {
				cfg.BackendURLs = append(cfg.BackendURLs, u)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := load.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uteload:", err)
		os.Exit(1)
	}

	if *asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "uteload:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("uteload: %d traces, %d clients, mix stats=%d preview=%d timeresolved=%d records=%d\n",
		rep.Traces, rep.Clients, rep.Mix.Stats, rep.Mix.Preview, rep.Mix.TimeResolved, rep.Mix.Records)
	printPhase("cold", rep.Cold)
	printPhase("warm", rep.Warm)
	for _, b := range rep.Backends {
		fmt.Printf("  backend %s: cache +%d hits / +%d misses (hit ratio %.3f)\n",
			b.URL, b.Hits, b.Misses, b.HitRatio)
	}
	if rep.Warm.Errors > 0 || rep.Cold.Errors > 0 {
		os.Exit(1)
	}
}

func printPhase(name string, p load.Phase) {
	fmt.Printf("  %-4s %5d reqs  %4d errors  %8.1f qps  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms\n",
		name, p.Requests, p.Errors, p.QPS, p.P50Ms, p.P95Ms, p.P99Ms, p.MaxMs)
}

// parseMix parses "stats=4,preview=2,timeresolved=1,records=3". An
// empty string selects the package default mix.
func parseMix(s string) (load.Mix, error) {
	var m load.Mix
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight %q", part)
		}
		switch kv[0] {
		case "stats":
			m.Stats = w
		case "preview":
			m.Preview = w
		case "timeresolved":
			m.TimeResolved = w
		case "records":
			m.Records = w
		default:
			return m, fmt.Errorf("unknown -mix kind %q (want stats, preview, timeresolved, records)", kv[0])
		}
	}
	if m.Stats+m.Preview+m.TimeResolved+m.Records == 0 {
		return m, fmt.Errorf("-mix %q has zero total weight", s)
	}
	return m, nil
}
