// Command utecheck validates an interval trace file and, when the file
// is damaged, reports what a best-effort salvage can still recover —
// optionally writing the recovered records to a fresh, valid interval
// file.
//
// Usage:
//
//	utecheck [-json] [-repair OUT] [-repair-pyramid] FILE
//
// When a summary-pyramid sidecar (FILE.pyr) exists next to a valid
// trace, utecheck cross-validates it against the frame directory: the
// sidecar must load (magic, CRCs, source signature) and a sample of its
// base cells must answer window summaries identically to a frame-decode
// recompute. Sidecar problems are reported but never change the exit
// code — the sidecar is advisory and every reader falls back to the
// scan engine — and -repair-pyramid rebuilds a missing, stale, damaged,
// or diverging sidecar from the frames.
//
// The exit code is machine-readable:
//
//	0  the file validates; nothing was lost
//	1  the file is damaged but salvage recovered at least one frame
//	2  the file is damaged beyond salvage (no frame could be verified)
//	3  usage error, or the file could not be read or OUT written
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tracefw/internal/interval"
	"tracefw/internal/profile"
)

// report is the -json output. Exit codes carry the verdict; the report
// carries the details.
type report struct {
	File          string                     `json:"file"`
	HeaderVersion uint32                     `json:"headerVersion,omitempty"`
	Valid         bool                       `json:"valid"`
	Error         string                     `json:"error,omitempty"`
	Validation    *interval.ValidationReport `json:"validation,omitempty"`
	Salvage       *interval.SalvageReport    `json:"salvage,omitempty"`
	RepairPath    string                     `json:"repairPath,omitempty"`
	Repair        *interval.RepairReport     `json:"repair,omitempty"`
	Pyramid       *pyramidJSON               `json:"pyramid,omitempty"`
}

// pyramidJSON reports the summary-pyramid sidecar check.
type pyramidJSON struct {
	Path         string `json:"path"`
	Status       string `json:"status"` // ok, absent, damaged, mismatch, rebuilt
	Detail       string `json:"detail,omitempty"`
	CellsChecked int    `json:"cellsChecked,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("utecheck", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report on stdout")
	repairTo := fs.String("repair", "", "write the salvaged records to a fresh interval file at `OUT`")
	pyrRepair := fs.Bool("repair-pyramid", false, "rebuild the .pyr summary sidecar when it is missing, stale, damaged, or diverges")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: utecheck [-json] [-repair OUT] [-repair-pyramid] FILE")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(3)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "utecheck: need exactly one interval file")
		os.Exit(3)
	}
	path := fs.Arg(0)
	rep := &report{File: path}

	if _, err := os.Stat(path); err != nil {
		fatal(rep, *jsonOut, err)
	}
	f, err := interval.Open(path)
	if err != nil {
		// The fixed header did not parse: salvage has nothing to anchor
		// on, so the file is beyond recovery.
		rep.Error = err.Error()
		emit(rep, *jsonOut, fmt.Sprintf("%s: unsalvageable: %v", path, err))
		os.Exit(2)
	}
	defer f.Close()
	rep.HeaderVersion = f.Header.HeaderVersion

	// Validate against the standard profile when the file was written
	// under it; structural checks only otherwise.
	prof := profile.Standard()
	if prof.Version != f.Header.ProfileVersion {
		prof = nil
	}
	vrep, verr := f.Validate(prof)
	rep.Validation = vrep
	if verr == nil {
		rep.Valid = true
		if *repairTo != "" {
			sv := f.Salvage()
			rep.Salvage = &sv.Report
			repair(rep, f, sv, *repairTo, *jsonOut)
		}
		rep.Pyramid = checkPyramid(f, path, *pyrRepair, rep, *jsonOut)
		emit(rep, *jsonOut, fmt.Sprintf("%s: valid (%d records in %d frames, %d directories)%s",
			path, vrep.Records, vrep.Frames, vrep.Dirs, pyramidNote(rep)))
		os.Exit(0)
	}
	rep.Error = verr.Error()

	sv := f.Salvage()
	rep.Salvage = &sv.Report
	if *repairTo != "" {
		repair(rep, f, sv, *repairTo, *jsonOut)
	}
	if sv.Report.FramesRecovered == 0 {
		emit(rep, *jsonOut, fmt.Sprintf("%s: unsalvageable: %v", path, verr))
		os.Exit(2)
	}
	emit(rep, *jsonOut, fmt.Sprintf(
		"%s: damaged (%v); salvaged %d frames, %d records, %d bytes lost%s",
		path, verr, sv.Report.FramesRecovered, sv.Report.RecordsRecovered,
		sv.Report.BytesLost, repairNote(rep)))
	os.Exit(1)
}

// repair writes the salvaged frames to a fresh interval file at out.
func repair(rep *report, f *interval.File, sv *interval.SalvageResult, out string, jsonOut bool) {
	dst, err := os.Create(out)
	if err != nil {
		fatal(rep, jsonOut, err)
	}
	rrep, err := interval.Repair(f, sv, dst, interval.WriterOptions{})
	if err == nil {
		err = dst.Close()
	} else {
		dst.Close()
	}
	if err != nil {
		os.Remove(out)
		fatal(rep, jsonOut, fmt.Errorf("repair %s: %w", out, err))
	}
	rep.RepairPath = out
	rep.Repair = rrep
}

// checkPyramid cross-validates the summary-pyramid sidecar against the
// frame data. A missing sidecar is only an event when rebuild is set.
func checkPyramid(f *interval.File, path string, rebuild bool, rep *report, jsonOut bool) *pyramidJSON {
	pp := interval.PyramidPath(path)
	pj := &pyramidJSON{Path: pp}
	if _, err := os.Stat(pp); err != nil {
		if !rebuild {
			return nil
		}
		pj.Status = "absent"
		rebuildPyramid(pj, path, rep, jsonOut)
		return pj
	}
	p, err := interval.LoadPyramid(pp, f)
	if err != nil {
		pj.Status, pj.Detail = "damaged", err.Error()
		if rebuild {
			rebuildPyramid(pj, path, rep, jsonOut)
		}
		return pj
	}
	n, err := f.VerifyPyramid(p, interval.VerifyPyramidOptions{})
	pj.CellsChecked = n
	if err != nil {
		pj.Status, pj.Detail = "mismatch", err.Error()
		if rebuild {
			rebuildPyramid(pj, path, rep, jsonOut)
		}
		return pj
	}
	pj.Status = "ok"
	return pj
}

// rebuildPyramid drops the old sidecar state and rebuilds it from the
// frames, keeping the detail that explains why.
func rebuildPyramid(pj *pyramidJSON, path string, rep *report, jsonOut bool) {
	if _, err := interval.BuildPyramidSidecar(path, interval.PyramidOptions{}); err != nil {
		fatal(rep, jsonOut, fmt.Errorf("rebuild pyramid %s: %w", pj.Path, err))
	}
	pj.Status = "rebuilt"
}

func pyramidNote(rep *report) string {
	pj := rep.Pyramid
	switch {
	case pj == nil:
		return ""
	case pj.Status == "ok":
		return fmt.Sprintf("; pyramid ok (%d cells checked)", pj.CellsChecked)
	case pj.Status == "rebuilt" && pj.Detail == "":
		return "; pyramid rebuilt"
	case pj.Status == "rebuilt":
		return fmt.Sprintf("; pyramid rebuilt (was: %s)", pj.Detail)
	default:
		return fmt.Sprintf("; pyramid %s: %s (rerun with -repair-pyramid)", pj.Status, pj.Detail)
	}
}

func repairNote(rep *report) string {
	if rep.Repair == nil {
		return ""
	}
	return fmt.Sprintf("; wrote %d frames to %s", rep.Repair.FramesWritten, rep.RepairPath)
}

// emit prints the human one-liner, or the JSON report when -json is on.
func emit(rep *report, jsonOut bool, line string) {
	if !jsonOut {
		fmt.Println(line)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "utecheck:", err)
		os.Exit(3)
	}
}

func fatal(rep *report, jsonOut bool, err error) {
	rep.Error = err.Error()
	if jsonOut {
		emit(rep, true, "")
	}
	fmt.Fprintln(os.Stderr, "utecheck:", err)
	os.Exit(3)
}
