// Command uterouter is the horizontal serving tier's front door: a
// consistent-hash router over N utetraced backends. Traces are placed
// on the ring by path; a single huge trace is additionally split into
// contiguous frame-range segments at frame-directory boundaries, one
// per backend, so each backend's decoded-frame cache holds only its
// share. Decomposable queries (records, counts) scatter-gather across
// the segments and merge in frame order; aggregations (stats,
// previews, time-resolved tables) route whole to a deterministic
// window-affinity owner. Every response body is byte-identical to what
// a single utetraced would have produced for the same trace.
//
// Usage:
//
//	uterouter -backends URL[,URL...] [-addr HOST:PORT] [-vnodes N]
//	          [-split-frames N] [-inflight N] [-hedge-after DUR]
//	          [-health-interval DUR] [trace.ute ...]
//
// The backends must share a filesystem with the router: every backend
// opens the same trace files. Trace files on the command line are
// opened across the fleet before the router starts listening. The
// endpoints mirror utetraced's read API (/v1/traces...), plus
// /metrics, /healthz, and /readyz.
//
// The router prints one "listening on" line once the socket is bound
// and shuts down cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tracefw/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7470", "listen address (port 0 = pick a free port)")
		backends = flag.String("backends", "", "comma-separated utetraced base URLs (required)")
		vnodes   = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		split    = flag.Int("split-frames", 4096, "frame count above which a trace splits into per-backend segments")
		inflight = flag.Int("inflight", 32, "max concurrent requests per backend")
		hedge    = flag.Duration("hedge-after", 0, "duplicate a slow leg onto the next backend after this long (0 = off)")
		health   = flag.Duration("health-interval", 500*time.Millisecond, "backend /readyz poll period")
	)
	flag.Parse()
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "uterouter: -backends is required")
		os.Exit(2)
	}
	var bs []shard.Backend
	for i, u := range strings.Split(*backends, ",") {
		u = strings.TrimSpace(strings.TrimSuffix(u, "/"))
		if u == "" {
			fmt.Fprintln(os.Stderr, "uterouter: empty backend URL in -backends")
			os.Exit(2)
		}
		bs = append(bs, shard.Backend{Name: fmt.Sprintf("b%d", i), URL: u})
	}

	rt, err := shard.NewRouter(shard.Config{
		Backends:       bs,
		VNodes:         *vnodes,
		SplitFrames:    *split,
		MaxInflight:    *inflight,
		HedgeAfter:     *hedge,
		HealthInterval: *health,
	})
	if err != nil {
		fatal(err)
	}
	ready := rt.CheckBackends(context.Background())
	fmt.Printf("uterouter: %d/%d backends ready\n", ready, len(bs))

	for _, p := range flag.Args() {
		info, err := rt.OpenTrace(context.Background(), p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("uterouter: opened %s as %s\n", p, info.ID)
	}
	rt.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: rt.Handler()}
	fmt.Printf("uterouter: listening on http://%s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = srv.Shutdown(ctx)
		cancel()
		if err == nil {
			err = <-done // always http.ErrServerClosed after Shutdown
		}
	case err = <-done:
	}
	rt.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Println("uterouter: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uterouter:", err)
	os.Exit(1)
}
