// Command uteview is the repository's Jumpshot stand-in (paper §4): it
// renders the whole-run preview and the multiple time-space diagrams
// derived from one trace, as SVG files or ASCII.
//
// Usage:
//
//	uteview -merged merged.ute [-slog trace.slog]
//	        [-view thread-activity|processor-activity|thread-processor|processor-thread]
//	        [-t0 S] [-t1 S] [-window lo:hi] [-j N]
//	        [-connected] [-ascii] [-width N] [-o out.svg]
//	uteview -slog trace.slog -preview [-ascii] [-o preview.svg]
//	uteview -slog trace.slog -frame-at S        # fetch the frame containing time S
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
	"tracefw/internal/render"
	"tracefw/internal/slog"
)

func main() {
	var (
		mergedPath = flag.String("merged", "", "merged interval file")
		slogPath   = flag.String("slog", "", "SLOG file (preview, arrows, frame fetch)")
		viewName   = flag.String("view", "thread-activity", "time-space diagram kind")
		t0         = flag.Float64("t0", 0, "window start, seconds")
		t1         = flag.Float64("t1", 0, "window end, seconds (0 = full run)")
		window     = flag.String("window", "", "diagram window as lo:hi seconds (shorthand for -t0/-t1)")
		jobs       = flag.Int("j", 0, "frame-decode workers for diagram construction (0 = GOMAXPROCS)")
		connected  = flag.Bool("connected", false, "connect interval pieces per call")
		ascii      = flag.Bool("ascii", false, "render ASCII to stdout instead of SVG")
		width      = flag.Int("width", 100, "ASCII width in columns")
		out        = flag.String("o", "", "output SVG path (default stdout)")
		preview    = flag.Bool("preview", false, "render the preview histogram instead of a diagram (from -slog, or computed from -merged)")
		bins       = flag.Int("bins", 0, "preview bins when computing from -merged (0 = default)")
		engineName = flag.String("engine", "auto", "summary engine for -preview from -merged: auto, pyramid, or scan")
		verbose    = flag.Bool("v", false, "report which engine answered and what it cost (stderr)")
		frameAt    = flag.Float64("frame-at", -1, "print the SLOG frame containing this time (seconds)")
		arrows     = flag.Bool("arrows", false, "overlay message arrows from the SLOG file")
		htmlOut    = flag.String("html", "", "write a self-contained interactive HTML viewer (needs -slog)")
	)
	flag.Parse()
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "uteview: -j must be >= 0")
		os.Exit(2)
	}
	if *t1 != 0 && *t1 < *t0 {
		fmt.Fprintln(os.Stderr, "uteview: -t1 is before -t0")
		os.Exit(2)
	}

	var sf *slog.File
	if *slogPath != "" {
		var err error
		if sf, err = slog.Open(*slogPath); err != nil {
			fatal(err)
		}
		defer sf.Close()
	}

	switch {
	case *htmlOut != "":
		if sf == nil {
			fatal(fmt.Errorf("-html needs -slog"))
		}
		page, err := render.ViewerHTML(sf)
		if err != nil {
			fatal(err)
		}
		emit(*htmlOut, page)
		return

	case *frameAt >= 0:
		if sf == nil {
			fatal(fmt.Errorf("-frame-at needs -slog"))
		}
		i, ok := sf.FrameAt(clock.FromSeconds(*frameAt))
		if !ok {
			fatal(fmt.Errorf("no frame contains %gs", *frameAt))
		}
		fd, err := sf.ReadFrame(i)
		if err != nil {
			fatal(err)
		}
		fe := sf.Index[i]
		fmt.Printf("frame %d [%v .. %v]: %d intervals, %d pseudo, %d arrows, %d crossing\n",
			i, fe.Start, fe.End, len(fd.Intervals), len(fd.Pseudo), len(fd.Arrows), len(fd.Crossing))
		for _, r := range fd.Pseudo {
			fmt.Printf("  pseudo   %v\n", r)
		}
		for _, r := range fd.Intervals {
			fmt.Printf("  interval %v\n", r)
		}
		for _, a := range fd.Arrows {
			fmt.Printf("  arrow    n%d/t%d -> n%d/t%d  [%v -> %v] %dB seq %d\n",
				a.SrcNode, a.SrcThread, a.DstNode, a.DstThread, a.SendTime, a.RecvTime, a.Bytes, a.Seqno)
		}
		return

	case *preview && sf != nil:
		if *ascii {
			fmt.Print(render.PreviewASCII(sf.Preview, *width))
			return
		}
		emit(*out, render.PreviewSVG(sf.Preview))
		return

	case *preview && *mergedPath == "":
		fatal(fmt.Errorf("-preview needs -slog or -merged"))
	}

	if *mergedPath == "" {
		fatal(fmt.Errorf("need -merged (or -preview/-frame-at with -slog)"))
	}
	mf, err := interval.Open(*mergedPath)
	if err != nil {
		fatal(err)
	}
	defer mf.Close()

	if *preview {
		engine, err := interval.ParseSummaryEngine(*engineName)
		if err != nil {
			fatal(err)
		}
		popts := render.PreviewOptions{Bins: *bins, Engine: engine}
		popts.T0, popts.T1 = clock.FromSeconds(*t0), clock.FromSeconds(*t1)
		if *window != "" {
			popts.T0, popts.T1 = resolveWindow(mf, *window)
		}
		pr, err := render.BuildPreview(mf, popts)
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "uteview: preview answered by %s engine (%d cells, %d frames decoded)\n",
				pr.Engine, pr.CellsUsed, pr.FramesDecoded)
		}
		if *ascii {
			fmt.Print(render.PreviewASCII(pr.Preview, *width))
			return
		}
		emit(*out, render.PreviewSVG(pr.Preview))
		return
	}

	kind, err := render.ParseView(*viewName)
	if err != nil {
		fatal(err)
	}
	opts := render.Options{
		T0:        clock.FromSeconds(*t0),
		T1:        clock.FromSeconds(*t1),
		Connected: *connected,
		Parallel:  *jobs,
	}
	if *window != "" {
		opts.T0, opts.T1 = resolveWindow(mf, *window)
	}
	if *arrows {
		if sf == nil {
			fatal(fmt.Errorf("-arrows needs -slog"))
		}
		for i := range sf.Index {
			fd, err := sf.ReadFrame(i)
			if err != nil {
				fatal(err)
			}
			opts.Arrows = append(opts.Arrows, fd.Arrows...)
		}
	}
	d, err := render.BuildDiagram(mf, kind, opts)
	if err != nil {
		fatal(err)
	}
	if *ascii {
		fmt.Print(d.ASCII(*width))
		return
	}
	emit(*out, d.SVG())
}

// resolveWindow parses a -window flag and fills its open-ended sides
// from the run bounds so the rendered axis stays meaningful. Explicit
// bounds are kept even when they fall outside the run: a window that
// overlaps no records must render the empty placeholder, not silently
// snap back to the full run (which the renderers would read an
// inverted window as).
func resolveWindow(mf *interval.File, window string) (clock.Time, clock.Time) {
	lo, hi, err := clock.ParseWindow(window)
	if err != nil {
		fatal(err)
	}
	fs, fe, _, err := mf.Stats()
	if err != nil {
		fatal(err)
	}
	if lo == math.MinInt64 {
		lo = fs
	}
	if hi == math.MaxInt64 {
		hi = fe
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

func emit(path, doc string) {
	if path == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "uteview: wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uteview:", err)
	os.Exit(1)
}
