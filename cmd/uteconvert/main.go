// Command uteconvert converts raw event trace files into self-defining
// interval files (the paper's convert utility, §3.1). It matches begin
// and end events into intervals, splits them into begin / continuation /
// end pieces at thread dispatch and nesting boundaries, re-assigns
// globally unique user-marker identifiers across all input files, and
// writes the description profile the interval files refer to.
//
// Inputs are converted concurrently over a bounded worker pool (-j;
// 0 = GOMAXPROCS). Marker identifiers are canonicalized before the
// record pass, so the outputs are byte-identical to a sequential run
// whatever the worker count. Two inputs claiming the same node id are
// rejected, since both would target the same output file.
//
// Usage:
//
//	uteconvert [-out-dir DIR] [-frame-bytes N] [-j N] raw.0 raw.1 ...
//
// raw.N becomes DIR/trace.N.ute; the profile goes to DIR/profile.ute.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tracefw/internal/convert"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/trace"
)

func main() {
	var (
		outDir     = flag.String("out-dir", ".", "output directory")
		frameBytes = flag.Int("frame-bytes", 0, "target frame payload size (0 = 64 KiB)")
		tolerant   = flag.Bool("tolerant", false, "accept mid-stream traces (wrap mode): skip orphan events instead of failing")
		jobs       = flag.Int("j", 0, "worker pool size: convert up to N inputs concurrently (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "uteconvert: no input files")
		os.Exit(2)
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "uteconvert: -j must be >= 0")
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	opts := convert.Options{
		Writer:   interval.WriterOptions{FrameBytes: *frameBytes},
		Markers:  convert.NewMarkerRegistry(),
		Tolerant: *tolerant,
		Parallel: *jobs,
	}
	start := time.Now()
	inputs := flag.Args()
	outputs := make([]string, len(inputs))
	seen := map[int]string{}
	for i, in := range inputs {
		node, err := peekNode(in)
		if err != nil {
			fatal(err)
		}
		if prev, dup := seen[node]; dup {
			fatal(fmt.Errorf("inputs %s and %s both claim node %d; each node must be converted exactly once", prev, in, node))
		}
		seen[node] = in
		outputs[i] = filepath.Join(*outDir, fmt.Sprintf("trace.%d.ute", node))
	}
	results, err := convert.ConvertAll(inputs, outputs, opts)
	if err != nil {
		fatal(err)
	}
	var events, records int64
	for i, res := range results {
		events += res.Events
		records += res.Records
		skipNote := ""
		if res.Skipped > 0 {
			skipNote = fmt.Sprintf(", %d orphan events skipped", res.Skipped)
		}
		fmt.Printf("uteconvert: %s -> %s (%d events, %d interval records, %d clock pairs%s)\n",
			inputs[i], outputs[i], res.Events, res.Records, len(res.ClockPairs), skipNote)
	}
	if err := profile.Standard().WriteFile(filepath.Join(*outDir, "profile.ute")); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	perEvent := float64(elapsed.Seconds()) / float64(maxI64(events, 1))
	fmt.Printf("uteconvert: %d events -> %d records in %v (%.7f sec/event)\n",
		events, records, elapsed, perEvent)
}

// peekNode reads the raw header to learn the node id without consuming
// the file.
func peekNode(path string) (int, error) {
	rd, err := trace.OpenFile(path)
	if err != nil {
		return 0, err
	}
	defer rd.Close()
	return rd.Info.Node, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uteconvert:", err)
	os.Exit(1)
}
