// Command utemerge merges per-node interval files into a single interval
// file (the paper's merge utility, §3.1): it aligns the files by their
// first global clock records, adjusts local timestamps for clock drift
// (RMS-of-adjacent-slopes ratio by default), merges by end time with a
// balanced tree, and plants zero-duration continuation pseudo-intervals
// at frame starts. With -slog it additionally writes the SLOG file for
// the viewer (the paper's slogmerge).
//
// At pipeline width -j above 1 (default: GOMAXPROCS) every input gets a
// read-ahead decode goroutine feeding the merge through a bounded
// channel, so the balanced tree never stalls on frame decode; -j 1
// selects the fully synchronous path. Both produce byte-identical
// output.
//
// Usage:
//
//	utemerge [-o merged.ute] [-slog trace.slog] [-pyramid]
//	         [-estimator rms|lastpair|piecewise|none]
//	         [-outlier-tol T] [-keep-clock] [-no-pseudo] [-linear] [-j N]
//	         trace.0.ute trace.1.ute ...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/slog"
)

func main() {
	var (
		out        = flag.String("o", "merged.ute", "merged interval file")
		slogOut    = flag.String("slog", "", "also write an SLOG file here")
		estimator  = flag.String("estimator", "rms", "clock ratio estimator: rms, lastpair, piecewise, none")
		outlierTol = flag.Float64("outlier-tol", 1e-3, "clock-pair outlier tolerance (0 disables filtering)")
		keepClock  = flag.Bool("keep-clock", false, "keep adjusted global-clock records in the output")
		noPseudo   = flag.Bool("no-pseudo", false, "do not plant frame-start pseudo-intervals")
		linear     = flag.Bool("linear", false, "use a linear scan instead of the balanced tree (ablation)")
		frameBytes = flag.Int("frame-bytes", 0, "target frame payload size (0 = 64 KiB)")
		jobs       = flag.Int("j", 0, "pipeline width: read-ahead decode when above 1 (0 = GOMAXPROCS, 1 = synchronous)")
		columnar   = flag.Bool("columnar", false, "with -slog, feed the build's first pass from columnar batches (same bytes, fewer allocations)")
		pyramid    = flag.Bool("pyramid", false, "also build the merged file's summary-pyramid sidecar (<out>.pyr)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "utemerge: no input files")
		os.Exit(2)
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "utemerge: -j must be >= 0")
		os.Exit(2)
	}
	est, err := merge.ParseEstimator(*estimator)
	if err != nil {
		fatal(err)
	}
	opts := merge.Options{
		Writer:           interval.WriterOptions{FrameBytes: *frameBytes},
		Estimator:        est,
		OutlierTol:       *outlierTol,
		KeepClockRecords: *keepClock,
		NoPseudo:         *noPseudo,
		Linear:           *linear,
		Parallel:         *jobs,
	}
	start := time.Now()
	res, err := merge.MergeFiles(flag.Args(), *out, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("utemerge: %d inputs -> %s (%d records, %d pseudo) in %v\n",
		res.Inputs, *out, res.Records, res.Pseudo, time.Since(start))
	for i, r := range res.Ratios {
		fmt.Printf("utemerge:   input %d: anchor (G=%v, L=%v), ratio %.9f\n",
			i, res.Anchors[i].Global, res.Anchors[i].Local, r)
	}
	if *pyramid {
		p, err := interval.BuildPyramidSidecar(*out, interval.PyramidOptions{})
		if err != nil {
			fatal(err)
		}
		cells := 0
		for _, lv := range p.Levels {
			cells += len(lv.Cells)
		}
		fmt.Printf("utemerge: pyramid %s (%d levels, %d cells, base width %v)\n",
			interval.PyramidPath(*out), len(p.Levels), cells, p.BaseWidth)
	}
	if *slogOut != "" {
		mf, err := interval.Open(*out)
		if err != nil {
			fatal(err)
		}
		defer mf.Close()
		fp, err := os.Create(*slogOut)
		if err != nil {
			fatal(err)
		}
		bres, err := slog.Build(mf, fp, slog.Options{FrameBytes: *frameBytes, Parallel: *jobs, Columnar: *columnar})
		if cerr := fp.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("utemerge: slog %s (%d frames, %d arrows, %d pseudo records)\n",
			*slogOut, bres.Frames, bres.Arrows, bres.Pseudo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "utemerge:", err)
	os.Exit(1)
}
