// Command utetraced is the long-running trace query daemon: it keeps a
// registry of opened interval files behind JSON/SVG endpoints, with a
// sharded LRU cache of decoded frames underneath, so repeated window
// queries against the same trace stop re-reading the file (the
// VampirServer / Jumpshot preview-then-drill-down model, serving the
// same bytes the one-shot utilities print).
//
// Usage:
//
//	utetraced [-addr HOST:PORT] [-cache-mb N] [-shards N]
//	          [-timeout DUR] [-bins N]
//	          [-ingest-dir DIR] [-ingest-max-batch N] [trace.ute ...]
//
// Any interval files on the command line are opened before the server
// starts listening. Endpoints:
//
//	GET    /v1/traces                   registered traces (JSON)
//	POST   /v1/traces                   open {"path": "..."} (JSON)
//	GET    /v1/traces/{id}              one trace's metadata (JSON)
//	DELETE /v1/traces/{id}              close and unregister
//	GET    /v1/traces/{id}/frames       frame directory (JSON)
//	GET    /v1/traces/{id}/stats        statistics tables (TSV, byte-
//	                                    identical to utestats stdout);
//	                                    ?window=lo:hi ?expr=... ?bins=N
//	GET    /v1/traces/{id}/records      paged records (JSON);
//	                                    ?window= ?limit= ?offset= ?count=1
//	GET    /v1/traces/{id}/preview.svg  time-space diagram (SVG, byte-
//	                                    identical to uteview);
//	                                    ?view= ?window= ?connected=1
//	GET    /metrics                     Prometheus text format
//
// With -ingest-dir the streaming write path is enabled (403 otherwise):
//
//	POST   /v1/ingest/{trace}?op=begin&nodes=N    start a live trace
//	POST   /v1/ingest/{trace}?node=I&seq=S        one raw batch (&last=1
//	                                              marks a node's final batch)
//	POST   /v1/ingest/{trace}?op=abort            cancel (prefix stays valid)
//	GET    /v1/ingest                             all sessions (JSON)
//	GET    /v1/ingest/{trace}                     session status (JSON)
//
// A live trace is registered under /v1/traces the moment it begins and
// is queryable from its first sealed frame group; every query sees the
// sealed tail as of its own start. Shutdown drains in-flight sessions —
// open states close as at end of trace and every live file seals
// completely.
//
// The daemon prints one "listening on" line once the socket is bound
// (with the resolved port, so -addr :0 is scriptable) and shuts down
// cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tracefw/internal/ingest"
	"tracefw/internal/tracesvc"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7464", "listen address (port 0 = pick a free port)")
		cacheMB   = flag.Int64("cache-mb", 256, "decoded-frame cache budget, MiB")
		shards    = flag.Int("shards", 16, "cache shard count")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		bins      = flag.Int("bins", 50, "time bins for the predefined statistics tables")
		ingestDir = flag.String("ingest-dir", "", "enable streaming ingest; live trace files are written here")
		ingestMax = flag.Int64("ingest-max-batch", 8<<20, "largest accepted ingest batch, bytes")
	)
	flag.Parse()
	if *ingestMax <= 0 {
		fmt.Fprintln(os.Stderr, "utetraced: -ingest-max-batch must be positive")
		os.Exit(2)
	}

	svc := tracesvc.New(tracesvc.Config{
		CacheBytes:     *cacheMB << 20,
		CacheShards:    *shards,
		RequestTimeout: *timeout,
		DefaultBins:    *bins,
	})
	if *ingestDir != "" {
		m, err := ingest.NewManager(ingest.Config{Dir: *ingestDir, MaxBatchBytes: *ingestMax})
		if err != nil {
			fatal(err)
		}
		svc.EnableIngest(m)
		fmt.Printf("utetraced: ingest enabled, live traces in %s\n", *ingestDir)
	}
	for _, p := range flag.Args() {
		t, err := svc.Registry().Open(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("utetraced: opened %s as %s\n", p, t.ID)
	}

	svc.SetReady()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Printf("utetraced: listening on http://%s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = srv.Shutdown(ctx)
		cancel()
		if err == nil {
			err = <-done // always http.ErrServerClosed after Shutdown
		}
	case err = <-done:
	}
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Println("utetraced: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "utetraced:", err)
	os.Exit(1)
}
