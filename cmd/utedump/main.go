// Command utedump inspects the framework's file formats: raw trace
// files, description profiles, interval files (header, thread table,
// marker table, frame directories, records), SLOG files, and summary
// pyramid sidecars. The file kind is detected from the magic.
//
// Usage:
//
//	utedump [-n LIMIT] [-frames] [-sizes] [-j N] [-window lo:hi] FILE
//
// For interval files, -window lo:hi (seconds; either side may be empty)
// dumps only records overlapping the window — frames, and on
// current-format files whole directories, outside it are never decoded —
// and -j decodes frames on N workers (output is identical for every -j).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/slog"
	"tracefw/internal/trace"
)

func main() {
	var (
		limit    = flag.Int("n", 20, "maximum records to print (0 = all)")
		frames   = flag.Bool("frames", false, "print frame directory structure of interval files")
		validate = flag.Bool("validate", false, "check an interval file's structural invariants against the standard profile")
		sizes    = flag.Bool("sizes", false, "print per-frame encoded size statistics of an interval file")
		jobs     = flag.Int("j", 1, "frame-decode workers for interval record dumps (0 = GOMAXPROCS)")
		window   = flag.String("window", "", "dump only interval records overlapping lo:hi (seconds)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "utedump: need exactly one file")
		os.Exit(2)
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "utedump: -j must be >= 0")
		os.Exit(2)
	}
	path := flag.Arg(0)
	magic, err := peekMagic(path)
	if err != nil {
		fatal(err)
	}
	switch magic {
	case "UTRAW1\x00\x00":
		dumpRaw(path, *limit)
	case "UTEIVL1\x00":
		if *validate {
			validateInterval(path)
			return
		}
		if *sizes {
			sizesInterval(path)
			return
		}
		dumpInterval(path, *limit, *frames, *jobs, *window)
	case "UTEPROF1":
		dumpProfile(path)
	case "UTESLOG1":
		dumpSlog(path, *limit)
	case "UTEPYR1\x00":
		dumpPyramid(path, *limit)
	default:
		fatal(fmt.Errorf("%s: unknown magic %q", path, magic))
	}
}

func peekMagic(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var b [8]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return "", err
	}
	return string(b[:]), nil
}

func dumpRaw(path string, limit int) {
	rd, err := trace.OpenFile(path)
	if err != nil {
		fatal(err)
	}
	defer rd.Close()
	fmt.Printf("raw trace: node %d, %d cpus, enabled mask %#x\n",
		rd.Info.Node, rd.Info.NumCPUs, rd.Info.Enabled)
	n := 0
	for {
		r, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		n++
		if limit == 0 || n <= limit {
			str := ""
			if r.Str != "" {
				str = fmt.Sprintf(" %q", r.Str)
			}
			fmt.Printf("  %10d  t%-3d %-14s %-6s %v%s\n",
				r.Time, r.TID, r.Type.Name(), r.Edge, r.Args, str)
		}
	}
	fmt.Printf("total: %d records\n", n)
}

func dumpInterval(path string, limit int, frames bool, jobs int, window string) {
	f, err := interval.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := f.Header
	fmt.Printf("interval file: profile %#x, header v%d, mask %#x, %d threads, %d markers\n",
		h.ProfileVersion, h.HeaderVersion, h.FieldMask, len(h.Threads), len(h.Markers))
	for _, te := range h.Threads {
		fmt.Printf("  thread n%d/t%d task=%d pid=%d systid=%d type=%s\n",
			te.Node, te.LTID, te.Task, te.PID, te.SysTID, events.ThreadTypeName(int(te.Type)))
	}
	for id, s := range h.Markers {
		fmt.Printf("  marker %d = %q\n", id, s)
	}
	if frames {
		dirs, err := f.Dirs()
		if err != nil {
			fatal(err)
		}
		for di, d := range dirs {
			fmt.Printf("  dir %d @%d (prev %d, next %d): %d frames, %d records, [%v .. %v]\n",
				di, d.Offset, d.Prev, d.Next, len(d.Entries), d.Records, d.Start, d.End)
			for fi, fe := range d.Entries {
				fmt.Printf("    frame %d @%d: %dB, %d records, [%v .. %v]\n",
					fi, fe.Offset, fe.Bytes, fe.Records, fe.Start, fe.End)
			}
		}
	}
	first, last, total, err := f.Stats()
	if err != nil {
		fatal(err)
	}
	mopts := interval.MapOptions{Parallel: jobs}
	if window != "" {
		lo, hi, err := clock.ParseWindow(window)
		if err != nil {
			fatal(err)
		}
		mopts.Window, mopts.Lo, mopts.Hi = true, lo, hi
	}
	n := 0
	err = interval.MapFrames(f, mopts,
		func(_ interval.FrameEntry, recs []interval.Record) ([]interval.Record, error) {
			return recs, nil
		},
		func(_ interval.FrameEntry, recs []interval.Record) error {
			for ri := range recs {
				r := &recs[ri]
				if mopts.Window && (r.End() < mopts.Lo || r.Start > mopts.Hi) {
					continue
				}
				n++
				if limit == 0 || n <= limit {
					fmt.Printf("  %v extras=%v\n", r, r.Extra)
				}
			}
			return nil
		})
	if err != nil {
		fatal(err)
	}
	if mopts.Window {
		fmt.Printf("total: %d records in window (dirs say %d overall), span [%v .. %v], %d frames decoded\n",
			n, total, first, last, f.DecodedFrames())
		return
	}
	fmt.Printf("total: %d records (dirs say %d), span [%v .. %v]\n", n, total, first, last)
}

// sizesInterval reports how many bytes each frame's record encoding
// occupies on disk — the number the version-4 compact encoding exists
// to shrink. Per frame: encoded bytes, record count, bytes per record;
// then file-wide totals.
func sizesInterval(path string) {
	f, err := interval.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	frames, err := f.Frames()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("interval file: header v%d, %d frames\n", f.Header.HeaderVersion, len(frames))
	var bytes, records int64
	for i, fe := range frames {
		bytes += int64(fe.Bytes)
		records += int64(fe.Records)
		per := 0.0
		if fe.Records > 0 {
			per = float64(fe.Bytes) / float64(fe.Records)
		}
		fmt.Printf("  frame %4d @%d: %6dB %5d records  %6.1f B/record\n",
			i, fe.Offset, fe.Bytes, fe.Records, per)
	}
	per := 0.0
	if records > 0 {
		per = float64(bytes) / float64(records)
	}
	fmt.Printf("total: %dB of frame data, %d records, %.1f B/record (file is %dB)\n",
		bytes, records, per, f.Size)
}

// validateInterval runs the full structural check: directory links,
// frame metadata vs records, end-time ordering, and per-record layout
// against the standard profile.
func validateInterval(path string) {
	f, err := interval.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rep, err := f.Validate(profile.Standard())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: valid (%d records in %d frames, %d directories)\n",
		path, rep.Records, rep.Frames, rep.Dirs)
}

func dumpProfile(path string) {
	fp, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer fp.Close()
	p, err := profile.Read(fp)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profile: version %#x, %d record specifications\n", p.Version, len(p.Specs))
	for _, s := range p.Specs {
		fmt.Printf("  %s/%s (%d fields):", s.Name, s.Bebits, len(s.Fields))
		for _, f := range s.Fields {
			v := ""
			if f.Vector {
				v = fmt.Sprintf("[]c%d", f.CounterLen)
			}
			fmt.Printf(" %s:%s%d%s/a%x", f.Name, typeName(f.Type), f.ElemLen, v, f.Attr)
		}
		fmt.Println()
	}
}

func typeName(t profile.DataType) string {
	switch t {
	case profile.Uint:
		return "u"
	case profile.Int:
		return "i"
	case profile.Float:
		return "f"
	case profile.Bytes:
		return "b"
	}
	return "?"
}

func dumpSlog(path string, limit int) {
	f, err := slog.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Printf("slog: [%v .. %v], %d bins, %d states, %d frames, %d threads, %d markers\n",
		f.TStart, f.TEnd, f.Bins, len(f.States), len(f.Index), len(f.Threads), len(f.Markers))
	var dur clock.Time
	for si, ty := range f.Preview.States {
		var tot clock.Time
		for _, d := range f.Preview.Dur[si] {
			tot += d
		}
		dur += tot
		if tot > 0 {
			fmt.Printf("  state %-14s: %8d calls, %v total\n", ty.Name(), f.Preview.Count[si], tot)
		}
	}
	shown := 0
	for i, fe := range f.Index {
		if limit != 0 && shown >= limit {
			break
		}
		shown++
		fmt.Printf("  frame %3d @%d: %dB, %d records, [%v .. %v]\n",
			i, fe.Offset, fe.Bytes, fe.Records, fe.Start, fe.End)
	}
}

// dumpPyramid prints a summary-pyramid sidecar: geometry, source
// signature, per-level cell counts, and the first non-empty base
// cells. The sidecar alone cannot be checked against its trace here;
// utecheck cross-validates the pair.
func dumpPyramid(path string, limit int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	p, err := interval.DecodePyramid(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pyramid: base width %v, top-%d, %d levels; source sig: %d records, %d frames, [%v .. %v], dirsum %08x\n",
		p.BaseWidth, p.TopK, len(p.Levels), p.Sig.Records, p.Sig.Frames, p.Sig.Start, p.Sig.End, p.Sig.DirSum)
	for li, lv := range p.Levels {
		fmt.Printf("  level %2d: width %12v, cells [%d .. %d)\n",
			li, lv.Width, lv.First, lv.First+int64(len(lv.Cells)))
	}
	if len(p.Levels) == 0 {
		return
	}
	base := p.Levels[0]
	shown := 0
	for i := range base.Cells {
		c := &base.Cells[i]
		if c.Records == 0 && len(c.ByType) == 0 {
			continue
		}
		if limit != 0 && shown >= limit {
			break
		}
		shown++
		var busy clock.Time
		for _, tb := range c.ByType {
			busy += tb.Busy
		}
		idx := base.First + int64(i)
		fmt.Printf("  cell %6d @%v: %5d records, peak %2d, %2d types, %2d lanes, %v busy\n",
			idx, clock.Time(idx)*base.Width, c.Records, c.MaxConc, len(c.ByType), len(c.ByLane), busy)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "utedump:", err)
	os.Exit(1)
}
