// Command tracegen runs a synthetic workload on the simulated SP
// machine and writes one raw trace file per node (<out>/raw.<n>) — the
// trace-generation step of the paper's Figure 2.
//
// Usage:
//
//	tracegen -out DIR [-workload ring|stencil|sppm|flash|storm]
//	         [-nodes N] [-tasks-per-node T] [-cpus C] [-seed S]
//	         [-iters I] [-bytes B] [-threads W] [-outlier-prob P]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tracefw/internal/cluster"
	"tracefw/internal/events"
	"tracefw/internal/mpisim"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
)

func main() {
	var (
		out     = flag.String("out", ".", "output directory for raw trace files")
		wl      = flag.String("workload", "ring", "workload: ring, stencil, sppm, flash, storm")
		nodes   = flag.Int("nodes", 2, "SMP nodes")
		tpn     = flag.Int("tasks-per-node", 1, "MPI tasks per node")
		cpus    = flag.Int("cpus", 2, "CPUs per node")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		iters   = flag.Int("iters", 0, "workload iterations (0 = workload default)")
		bytes   = flag.Int("bytes", 0, "message size (0 = workload default)")
		threads = flag.Int("threads", 0, "worker threads per task where applicable")
		outlier = flag.Float64("outlier-prob", 0, "probability of a de-scheduled clock sample")
		wrap    = flag.Bool("wrap", false, "circular trace buffer: keep only the newest -buffer bytes of records")
		bufSize = flag.Int("buffer", 0, "trace buffer size in bytes (0 = 1 MiB)")
	)
	flag.Parse()

	main_, err := workloadMain(*wl, *iters, *bytes, *threads)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       *nodes,
			CPUsPerNode: *cpus,
			Seed:        *seed,
			OutlierProb: *outlier,
			TraceOpts: trace.Options{
				Prefix:     filepath.Join(*out, "raw"),
				Enabled:    events.MaskAll,
				Wrap:       *wrap,
				BufferSize: *bufSize,
			},
		},
		TasksPerNode: *tpn,
	}
	w, err := mpisim.NewFiles(cfg)
	if err != nil {
		fatal(err)
	}
	w.Start(main_)
	end, err := w.Run()
	if err != nil {
		fatal(err)
	}
	var cut int64
	for _, f := range w.M.Facilities {
		c, _ := f.Counts()
		cut += c
	}
	fmt.Printf("tracegen: %s on %d nodes × %d tasks × %d cpus: %v virtual time, %d events, files %s.0..%d\n",
		*wl, *nodes, *tpn, *cpus, end, cut, cfg.Cluster.TraceOpts.Prefix, *nodes-1)
}

func workloadMain(name string, iters, bytes, threads int) (func(*mpisim.Proc), error) {
	switch name {
	case "ring":
		return workload.Ring{Iters: iters, Bytes: bytes}.Main(), nil
	case "stencil":
		return workload.Stencil{Steps: iters, HaloBytes: bytes}.Main(), nil
	case "sppm":
		return workload.SPPM{Iters: iters, ThreadsPerTask: threads, HaloBytes: bytes}.Main(), nil
	case "flash":
		return workload.Flash{Iters: iters, BlockBytes: bytes}.Main(), nil
	case "storm":
		return workload.Storm{Iters: iters, Bytes: bytes, Threads: threads}.Main(), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
