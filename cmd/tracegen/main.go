// Command tracegen runs a synthetic workload on the simulated SP
// machine and writes one raw trace file per node (<out>/raw.<n>) — the
// trace-generation step of the paper's Figure 2. Workloads come from
// the workload registry (-list-workloads prints every name with its
// parameters), are parameterized with -params, and run under a
// selectable scheduling policy.
//
// Usage:
//
//	tracegen -out DIR [-workload NAME] [-params k=v,k=v...]
//	         [-policy fifo|bestfit|worstfit|oversub[:N]]
//	         [-nodes N] [-tasks-per-node T] [-cpus C] [-seed S]
//	         [-outlier-prob P] [-wrap] [-buffer BYTES]
//	tracegen -list-workloads
//
// The -iters/-bytes/-threads shorthands remain as sugar for the
// matching registry parameters of the selected workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tracefw/internal/cluster"
	"tracefw/internal/events"
	"tracefw/internal/mpisim"
	"tracefw/internal/sched"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
)

// minWrapBuffer is the smallest circular buffer that can hold the raw
// header plus at least a handful of records; smaller values cannot
// produce a convertible trace.
const minWrapBuffer = 1024

func main() {
	var (
		out     = flag.String("out", ".", "output directory for raw trace files")
		wl      = flag.String("workload", "ring", "workload name from the registry (see -list-workloads)")
		params  = flag.String("params", "", "workload parameters as k=v,k=v (see -list-workloads)")
		list    = flag.Bool("list-workloads", false, "print the workload registry and exit")
		policy  = flag.String("policy", "", "scheduling policy: fifo (default), bestfit, worstfit, oversub[:N]")
		nodes   = flag.Int("nodes", 2, "SMP nodes")
		tpn     = flag.Int("tasks-per-node", 1, "MPI tasks per node")
		cpus    = flag.Int("cpus", 2, "CPUs per node")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		iters   = flag.Int("iters", 0, "shorthand for the workload's iters/steps parameter")
		bytes   = flag.Int("bytes", 0, "shorthand for the workload's bytes parameter")
		threads = flag.Int("threads", 0, "shorthand for the workload's threads parameter")
		outlier = flag.Float64("outlier-prob", 0, "probability of a de-scheduled clock sample")
		wrap    = flag.Bool("wrap", false, "circular trace buffer: keep only the newest -buffer bytes of records")
		bufSize = flag.Int("buffer", 0, "trace buffer size in bytes (0 = 1 MiB)")
	)
	flag.Parse()

	if *list {
		listWorkloads()
		return
	}
	if *nodes < 1 {
		usageErr(fmt.Sprintf("-nodes must be >= 1, got %d", *nodes))
	}
	if *cpus < 1 {
		usageErr(fmt.Sprintf("-cpus must be >= 1, got %d", *cpus))
	}
	if *tpn < 1 {
		usageErr(fmt.Sprintf("-tasks-per-node must be >= 1, got %d", *tpn))
	}
	if *bufSize < 0 {
		usageErr(fmt.Sprintf("-buffer must be >= 0, got %d", *bufSize))
	}
	if *wrap && *bufSize > 0 && *bufSize < minWrapBuffer {
		usageErr(fmt.Sprintf("-wrap needs -buffer of at least %d bytes, got %d", minWrapBuffer, *bufSize))
	}
	if *outlier < 0 || *outlier > 1 {
		usageErr(fmt.Sprintf("-outlier-prob must be in [0,1], got %g", *outlier))
	}

	pol, err := sched.ParsePolicy(*policy)
	if err != nil {
		usageErr(err.Error())
	}
	spec, ok := workload.Lookup(*wl)
	if !ok {
		usageErr(fmt.Sprintf("unknown workload %q; run tracegen -list-workloads", *wl))
	}
	wp, err := workload.ParseParams(*params)
	if err != nil {
		usageErr(err.Error())
	}
	if err := applySugar(spec, wp, *iters, *bytes, *threads); err != nil {
		usageErr(err.Error())
	}
	main_, err := workload.Build(*wl, wp)
	if err != nil {
		usageErr(err.Error())
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       *nodes,
			CPUsPerNode: *cpus,
			Seed:        *seed,
			Policy:      pol,
			OutlierProb: *outlier,
			TraceOpts: trace.Options{
				Prefix:     filepath.Join(*out, "raw"),
				Enabled:    events.MaskAll,
				Wrap:       *wrap,
				BufferSize: *bufSize,
			},
		},
		TasksPerNode: *tpn,
	}
	w, err := mpisim.NewFiles(cfg)
	if err != nil {
		fatal(err)
	}
	w.Start(main_)
	end, err := w.Run()
	if err != nil {
		fatal(err)
	}
	var cut int64
	for _, f := range w.M.Facilities {
		c, _ := f.Counts()
		cut += c
	}
	fmt.Printf("tracegen: %s under %s on %d nodes × %d tasks × %d cpus: %v virtual time, %d events, files %s.0..%d\n",
		*wl, pol.Name(), *nodes, *tpn, *cpus, end, cut, cfg.Cluster.TraceOpts.Prefix, *nodes-1)
}

// applySugar maps the explicitly-set legacy shorthand flags onto the
// workload's canonical registry parameters. An explicit -params entry
// wins over the shorthand; a shorthand for a parameter the workload
// does not have is an error.
func applySugar(spec *workload.Spec, wp workload.Params, iters, bytes, threads int) error {
	set := map[string]int64{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "iters":
			set["iters"] = int64(iters)
		case "bytes":
			set["bytes"] = int64(bytes)
		case "threads":
			set["threads"] = int64(threads)
		}
	})
	for name, v := range set {
		canonical := name
		if name == "iters" {
			if _, ok := spec.Param("iters"); !ok {
				if _, ok := spec.Param("steps"); ok {
					canonical = "steps"
				}
			}
		}
		if _, ok := spec.Param(canonical); !ok {
			return fmt.Errorf("workload %s has no %s parameter (usage: %s)", spec.Name, canonical, spec.Usage())
		}
		if _, explicit := wp[canonical]; !explicit {
			wp[canonical] = v
		}
	}
	return nil
}

func listWorkloads() {
	for _, name := range workload.Names() {
		spec, _ := workload.Lookup(name)
		fmt.Printf("%-12s %s\n", name, spec.Doc)
		for _, p := range spec.Params {
			fmt.Printf("    %-14s %s (default %d)\n", p.Name, p.Doc, p.Default)
		}
	}
	fmt.Printf("\npolicies: ")
	for i, n := range sched.PolicyNames() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(n)
	}
	fmt.Println()
}

func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "tracegen:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
