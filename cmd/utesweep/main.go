// Command utesweep runs a scheduling-policy × workload scenario grid
// through the full trace pipeline (generate → convert → merge → stats)
// and emits a deterministic comparison table: busy time, load balance,
// and peak concurrency per cell, with delta columns against the first
// policy. Cells run in parallel (-j); the TSV and JSON outputs are
// byte-identical for every -j and across reruns. Per-cell wall-clock
// throughput goes to stderr — it is host-dependent and never part of
// the tables.
//
// Usage:
//
//	utesweep [-policies fifo,bestfit,oversub]
//	         [-workloads "imbalance;stragglers(iters=5);bursty"]
//	         [-nodes N] [-cpus C] [-tasks-per-node T] [-seed S]
//	         [-j N] [-out DIR] [-quiet]
//
// Scenario syntax: NAME or NAME(k=v,k=v) with parameters from the
// workload registry (tracegen -list-workloads prints it). With -out,
// sweep.tsv and sweep.json are written into DIR; the table always goes
// to stdout unless -quiet.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tracefw/internal/sweep"
	"tracefw/internal/workload"
)

func main() {
	var (
		policies  = flag.String("policies", "fifo,bestfit,oversub", "comma-separated scheduling policies")
		workloads = flag.String("workloads", "imbalance;stragglers;bursty", "semicolon-separated scenarios: NAME or NAME(k=v,k=v)")
		nodes     = flag.Int("nodes", 8, "SMP nodes per cell")
		cpus      = flag.Int("cpus", 2, "CPUs per node")
		tpn       = flag.Int("tasks-per-node", 4, "MPI tasks per node (defaults oversubscribe the CPUs so policies differ)")
		seed      = flag.Uint64("seed", 1, "simulation seed (shared by every cell)")
		jobs      = flag.Int("j", 0, "cells in flight (0 = GOMAXPROCS); tables do not depend on it")
		outDir    = flag.String("out", "", "also write sweep.tsv and sweep.json into DIR")
		quiet     = flag.Bool("quiet", false, "suppress the stdout table (useful with -out)")
	)
	flag.Parse()

	if *jobs < 0 {
		usageErr(fmt.Sprintf("-j must be >= 0, got %d", *jobs))
	}
	if *nodes < 1 || *cpus < 1 || *tpn < 1 {
		usageErr("-nodes, -cpus, and -tasks-per-node must be >= 1")
	}
	grid := sweep.Grid{Policies: splitList(*policies)}
	if len(grid.Policies) == 0 {
		usageErr("-policies is empty")
	}
	for _, s := range strings.Split(*workloads, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		sc, err := parseScenario(s)
		if err != nil {
			usageErr(err.Error())
		}
		grid.Scenarios = append(grid.Scenarios, sc)
	}
	if len(grid.Scenarios) == 0 {
		usageErr("-workloads is empty")
	}

	res, err := sweep.Run(grid, sweep.Options{
		Nodes: *nodes, CPUsPerNode: *cpus, TasksPerNode: *tpn,
		Seed: *seed, Parallel: *jobs,
	})
	if err != nil {
		// Grid validation failures (unknown policy/workload, bad params)
		// are usage errors; anything after validation is a runtime error.
		if isValidation(err) {
			usageErr(err.Error())
		}
		fatal(err)
	}

	if !*quiet {
		os.Stdout.Write(res.TSV())
	}
	fmt.Fprint(os.Stderr, res.Throughput())
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, "sweep.tsv"), res.TSV(), 0o644); err != nil {
			fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, "sweep.json"), append(js, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "utesweep: wrote %s and %s\n",
			filepath.Join(*outDir, "sweep.tsv"), filepath.Join(*outDir, "sweep.json"))
	}
}

// parseScenario parses NAME or NAME(k=v,k=v).
func parseScenario(s string) (sweep.Scenario, error) {
	name, rest, hasParams := strings.Cut(s, "(")
	name = strings.TrimSpace(name)
	if !hasParams {
		return sweep.Scenario{Name: name}, nil
	}
	if !strings.HasSuffix(rest, ")") {
		return sweep.Scenario{}, fmt.Errorf("scenario %q: missing closing parenthesis", s)
	}
	params, err := workload.ParseParams(strings.TrimSuffix(rest, ")"))
	if err != nil {
		return sweep.Scenario{}, fmt.Errorf("scenario %q: %v", s, err)
	}
	return sweep.Scenario{Name: name, Params: params}, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// isValidation reports whether the sweep failed before any cell ran.
func isValidation(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "unknown") || strings.Contains(msg, "outside") ||
		strings.Contains(msg, "at least one") || strings.Contains(msg, "needs nodes")
}

func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "utesweep:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "utesweep:", err)
	os.Exit(1)
}
