package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/slog"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
)

// table1Targets are the paper's raw event counts (Table 1).
var table1Targets = []int64{40282, 128378, 254225, 641354, 4613568, 11216936}

// runStormFiles executes the storm workload in the paper's Table 1
// configuration — 4 MPI tasks, each with 4 threads (2 SMP nodes × 2
// tasks here) — writing raw trace files to dir, as the real tracing
// facility does.
func runStormFiles(dir string, iters int) ([]string, error) {
	main, err := workload.Build("storm", workload.Params{"iters": int64(iters), "threads": 3})
	if err != nil {
		return nil, err
	}
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       2,
			CPUsPerNode: 4,
			Seed:        99,
			TraceOpts: trace.Options{
				Prefix:  filepath.Join(dir, "raw"),
				Enabled: events.MaskAll,
			},
		},
		TasksPerNode: 2,
	}
	w, err := mpisim.NewFiles(cfg)
	if err != nil {
		return nil, err
	}
	w.Start(main)
	if _, err := w.Run(); err != nil {
		return nil, err
	}
	return []string{cfg.Cluster.TraceOpts.FileName(0), cfg.Cluster.TraceOpts.FileName(1)}, nil
}

func countEventsFiles(paths []string) (int64, error) {
	var n int64
	for _, p := range paths {
		rd, err := trace.OpenFile(p)
		if err != nil {
			return 0, err
		}
		recs, err := rd.ReadAll()
		rd.Close()
		if err != nil {
			return 0, err
		}
		n += int64(len(recs))
	}
	return n, nil
}

func runTable1(e *env) error {
	targets := table1Targets
	if e.quick {
		targets = targets[:4]
	}
	work, err := os.MkdirTemp("", "table1-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// Calibrate events-per-iteration with a small run.
	calPaths, err := runStormFiles(work, 200)
	if err != nil {
		return err
	}
	calEvents, err := countEventsFiles(calPaths)
	if err != nil {
		return err
	}
	perIter := float64(calEvents) / 200
	e.logf("  calibration: %.1f raw events per storm iteration", perIter)
	// Warm up the code paths (first-call effects would otherwise inflate
	// the smallest size's per-event cost).
	calOut := []string{filepath.Join(work, "warm.0.ute"), filepath.Join(work, "warm.1.ute")}
	if _, err := convert.ConvertAll(calPaths, calOut, convert.Options{}); err != nil {
		return err
	}
	if _, _, err := slog.SlogmergeFiles(calOut, filepath.Join(work, "warm.slog"),
		merge.Options{}, slog.Options{}); err != nil {
		return err
	}

	var b strings.Builder
	b.WriteString("raw_events\tsec_per_event_convert\tsec_per_event_slogmerge\n")
	type row struct {
		events                int64
		convPerEv, mergePerEv float64
	}
	var rows []row
	for _, target := range targets {
		iters := int(float64(target) / perIter)
		if iters < 1 {
			iters = 1
		}
		dir := filepath.Join(work, fmt.Sprintf("n%d", target))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		rawPaths, err := runStormFiles(dir, iters)
		if err != nil {
			return err
		}
		outPaths := []string{filepath.Join(dir, "trace.0.ute"), filepath.Join(dir, "trace.1.ute")}

		// The utilities run file-to-file, like the paper's (which ran as
		// separate processes); drop the generator's heap first.
		runtime.GC()
		start := time.Now()
		results, err := convert.ConvertAll(rawPaths, outPaths, convert.Options{})
		if err != nil {
			return err
		}
		convElapsed := time.Since(start)
		var rawEvents int64
		for _, r := range results {
			rawEvents += r.Events
		}

		// slogmerge = merge + SLOG format conversion, fully file-to-file.
		runtime.GC()
		start = time.Now()
		mergedPath := filepath.Join(dir, "merged.ute")
		if _, err := merge.MergeFiles(outPaths, mergedPath, merge.Options{}); err != nil {
			return err
		}
		mfile, err := interval.Open(mergedPath)
		if err != nil {
			return err
		}
		sfp, err := os.Create(filepath.Join(dir, "trace.slog"))
		if err != nil {
			return err
		}
		_, err = slog.Build(mfile, sfp, slog.Options{})
		mfile.Close()
		if cerr := sfp.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		mergeElapsed := time.Since(start)

		cpe := convElapsed.Seconds() / float64(rawEvents)
		mpe := mergeElapsed.Seconds() / float64(rawEvents)
		rows = append(rows, row{events: rawEvents, convPerEv: cpe, mergePerEv: mpe})
		fmt.Fprintf(&b, "%d\t%.9f\t%.9f\n", rawEvents, cpe, mpe)
		e.logf("  %9d raw events: convert %.7f s/event, slogmerge %.7f s/event",
			rawEvents, cpe, mpe)
		// Free the big artifacts before the next size.
		os.RemoveAll(dir)
	}
	// The paper's claim: per-event cost stays roughly flat as the event
	// count grows. Report the spread.
	spread := func(get func(row) float64) float64 {
		lo, hi := get(rows[0]), get(rows[0])
		for _, r := range rows[1:] {
			v := get(r)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi / lo
	}
	e.logf("  per-event cost spread across sizes: convert ×%.2f, slogmerge ×%.2f (paper: ~flat)",
		spread(func(r row) float64 { return r.convPerEv }),
		spread(func(r row) float64 { return r.mergePerEv }))
	return e.write("table1.tsv", b.String())
}
