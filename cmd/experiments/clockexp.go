package main

import (
	"fmt"
	"strings"

	"tracefw/internal/clock"
	"tracefw/internal/xrand"
)

// fig1Drifts are the four nodes' fractional clock drifts: magnitudes
// chosen so discrepancies reach the few-millisecond range over 140 s, as
// in the paper's Figure 1.
var fig1Drifts = []float64{0, 2.5e-5, -3.5e-5, 6e-5}

func runFig1(e *env) error {
	s := clock.Figure1(fig1Drifts, 0, 140*clock.Second, clock.Second, 1)
	if err := e.write("fig1.tsv", s.TSV()); err != nil {
		return err
	}
	e.logf("  reference clock 0; max accumulated divergence after 140s: %v", s.MaxDivergence())
	// The figure's caption holds for any reference choice.
	for ref := 1; ref < len(fig1Drifts); ref++ {
		alt := clock.Figure1(fig1Drifts, ref, 140*clock.Second, clock.Second, 1)
		e.logf("  reference clock %d: max divergence %v", ref, alt.MaxDivergence())
	}
	return nil
}

// runClockSync compares the §2.2 ratio estimators: single RMS ratio,
// first-point-anchored RMS (the rejected alternative), last-pair slope,
// and piecewise segments — on steady drift, on drift with read noise, on
// drift with de-schedule outliers (with and without filtering), and on a
// temperature-step drift change.
func runClockSync(e *env) error {
	type scenario struct {
		name  string
		pairs func() []clock.Pair
		truth *clock.Local
	}
	const span = 140
	mk := func(drift float64, jitterNS float64, outlierAt int, step bool, seed uint64) ([]clock.Pair, *clock.Local) {
		c := clock.NewLocal(3*clock.Second, drift, 0, 1, seed)
		rng := xrand.New(seed)
		var pairs []clock.Pair
		local := clock.Time(0)
		for i := 0; i <= span; i++ {
			g := clock.Time(i) * clock.Second
			if step {
				// Drift changes halfway (crystal temperature change).
				rate := 1 + drift
				if i > span/2 {
					rate = 1 - drift
				}
				if i > 0 {
					local += clock.Time(float64(clock.Second) * rate)
				}
			} else {
				local = c.ValueAt(g)
			}
			gg := g
			if outlierAt > 0 && i == outlierAt {
				gg -= 5 * clock.Millisecond
			}
			if jitterNS > 0 {
				gg += clock.Time(rng.NormFloat64() * jitterNS)
			}
			pairs = append(pairs, clock.Pair{Global: gg, Local: local})
		}
		return pairs, c
	}

	scenarios := []scenario{}
	addScenario := func(name string, drift, jitter float64, outlierAt int, step bool) {
		pairs, c := mk(drift, jitter, outlierAt, step, 7)
		scenarios = append(scenarios, scenario{name: name, pairs: func() []clock.Pair { return pairs }, truth: c})
	}
	addScenario("clean_drift", 8e-5, 0, 0, false)
	addScenario("with_jitter", 8e-5, 800, 0, false)
	addScenario("with_outlier", 8e-5, 0, 70, false)
	addScenario("drift_step", 8e-5, 0, 0, true)

	var b strings.Builder
	b.WriteString("scenario\testimator\tmax_error_us\n")
	for _, sc := range scenarios {
		pairs := sc.pairs()
		samples := make([]clock.Time, 0, span)
		for i := 1; i < span; i++ {
			samples = append(samples, clock.Time(i)*clock.Second+clock.Second/2)
		}
		evaluate := func(name string, adj clock.Adjuster) {
			var worst clock.Time
			if sc.name == "drift_step" {
				// Truth for the step scenario is defined by the pairs
				// themselves: measure at pair midpoints.
				for i := 1; i < len(pairs); i++ {
					trueT := (pairs[i-1].Global + pairs[i].Global) / 2
					lv := (pairs[i-1].Local + pairs[i].Local) / 2
					err := adj.Global(lv) - trueT
					if err < 0 {
						err = -err
					}
					if err > worst {
						worst = err
					}
				}
			} else {
				worst = clock.MaxAbsError(adj, sc.truth, samples)
			}
			fmt.Fprintf(&b, "%s\t%s\t%.1f\n", sc.name, name, float64(worst)/float64(clock.Microsecond))
			e.logf("  %-12s %-18s max error %8.1f µs", sc.name, name, float64(worst)/float64(clock.Microsecond))
		}
		evaluate("rms", clock.NewRatioAdjuster(pairs))
		evaluate("rms+filter", clock.NewRatioAdjuster(clock.FilterOutliers(pairs, 1e-3)))
		evaluate("lastpair", clock.NewLastPairAdjuster(pairs))
		evaluate("piecewise", clock.NewPiecewiseAdjuster(pairs))
		fp := clock.FirstPointRatio(pairs)
		evaluate("firstpoint", &clock.RatioAdjuster{G0: pairs[0].Global, L0: pairs[0].Local, R: fp})
	}
	return e.write("clocksync.tsv", b.String())
}
