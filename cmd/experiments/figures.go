package main

import (
	"fmt"
	"strings"
	"time"

	"tracefw/internal/clock"
	"tracefw/internal/core"
	"tracefw/internal/interval"
	"tracefw/internal/render"
	"tracefw/internal/sched"
	"tracefw/internal/slog"
	"tracefw/internal/stats"
	"tracefw/internal/workload"
)

// flashRun executes the FLASH-like workload used by Figures 6 and 7.
func flashRun(iters int) (*core.Run, error) {
	main, err := workload.Build("flash", workload.Params{"iters": int64(iters), "refine_each": 5})
	if err != nil {
		return nil, err
	}
	return core.Execute(core.Config{
		Nodes:        4,
		CPUsPerNode:  4,
		TasksPerNode: 1,
		Seed:         11,
		Drifts:       []float64{1e-5, -2e-5, 3e-5, -4e-5},
		// Small frames give the viewer fine-grained random access.
		Convert: interval.WriterOptions{FrameBytes: 16 << 10},
		Slog:    slog.Options{FrameBytes: 16 << 10},
	}, main)
}

// sppmRun executes the paper's Figure 8/9 configuration: 4 nodes, each
// an 8-way SMP, one MPI task per node with four threads of which one
// makes MPI calls and one is idle.
func sppmRun() (*core.Run, error) {
	main, err := workload.Build("sppm", workload.Params{"iters": 10, "threads": 4})
	if err != nil {
		return nil, err
	}
	return core.Execute(core.Config{
		Nodes:        4,
		CPUsPerNode:  8,
		TasksPerNode: 1,
		Seed:         12,
		// The era's AIX dispatcher had weak affinity — the reason the
		// paper's Figure 9 shows MPI threads jumping between CPUs.
		Affinity: sched.AffinityLowestFree,
	}, main)
}

func runFig6(e *env) error {
	run, err := flashRun(25)
	if err != nil {
		return err
	}
	defer run.Close()
	tables, err := run.Stats(stats.Predefined(50))
	if err != nil {
		return err
	}
	fig6 := tables[0] // interesting_by_node_bin
	if err := e.write("fig6.tsv", fig6.TSV()); err != nil {
		return err
	}
	if err := e.write("fig6.svg", render.StatsHeatmapSVG(fig6)); err != nil {
		return err
	}
	// Summarize the per-bin interesting time to show the phase structure
	// the paper reads off this table.
	perBin := map[int]float64{}
	for _, r := range fig6.Rows {
		perBin[int(r.X[1].F)] += r.Y[0]
	}
	peakBin, peak := 0, 0.0
	for b, v := range perBin {
		if v > peak {
			peak, peakBin = v, b
		}
	}
	e.logf("  %d rows; busiest bin %d with %.3fs of interesting (non-Running) time", len(fig6.Rows), peakBin, peak)
	return nil
}

func runFig7(e *env) error {
	run, err := flashRun(25)
	if err != nil {
		return err
	}
	defer run.Close()
	sf := run.Slog
	if err := e.write("fig7_preview.svg", render.PreviewSVG(sf.Preview)); err != nil {
		return err
	}
	if err := e.write("fig7_preview.txt", render.PreviewASCII(sf.Preview, 70)); err != nil {
		return err
	}
	// The user "selects a time instant in the middle section": fetch the
	// frame containing it, timing the access.
	mid := (sf.TStart + sf.TEnd) / 2
	start := time.Now()
	fi, ok := sf.FrameAt(mid)
	if !ok {
		return fmt.Errorf("no frame for midpoint")
	}
	fd, err := sf.ReadFrame(fi)
	if err != nil {
		return err
	}
	fetch := time.Since(start)
	e.logf("  run [%v .. %v], %d frames; frame %d contains the midpoint", sf.TStart, sf.TEnd, len(sf.Index), fi)
	e.logf("  frame fetch: %v for %d intervals, %d pseudo, %d arrows, %d crossing",
		fetch, len(fd.Intervals), len(fd.Pseudo), len(fd.Arrows), len(fd.Crossing))

	// Render the fetched frame's window as a thread-activity view — the
	// larger window of Figure 7.
	fe := sf.Index[fi]
	d, err := run.View(render.ThreadActivity, render.Options{T0: fe.Start, T1: fe.End})
	if err != nil {
		return err
	}
	return e.write("fig7_frame.svg", d.SVG())
}

func runFig8(e *env) error {
	run, err := sppmRun()
	if err != nil {
		return err
	}
	defer run.Close()
	arrows, err := run.Arrows()
	if err != nil {
		return err
	}
	d, err := run.View(render.ThreadActivity, render.Options{Arrows: arrows})
	if err != nil {
		return err
	}
	if err := e.write("fig8.svg", d.SVG()); err != nil {
		return err
	}
	if err := e.write("fig8.txt", d.ASCII(110)); err != nil {
		return err
	}
	// The paper's observations: MPI activity on one thread per task; one
	// idle thread per task.
	busy := d.BusyFraction()
	idle := 0
	for _, f := range busy {
		if f < 0.05 {
			idle++
		}
	}
	e.logf("  %d thread timelines; %d idle threads (paper: one idle thread per task)", len(d.Rows), idle)
	mpiRows := 0
	for _, row := range d.Rows {
		for _, s := range row.Segs {
			if strings.HasPrefix(s.Key, "MPI_") {
				mpiRows++
				break
			}
		}
	}
	e.logf("  threads with MPI activity: %d (paper: one per task = 4)", mpiRows)
	return nil
}

func runFig9(e *env) error {
	run, err := sppmRun()
	if err != nil {
		return err
	}
	defer run.Close()
	d, err := run.View(render.ProcessorActivity, render.Options{})
	if err != nil {
		return err
	}
	if err := e.write("fig9.svg", d.SVG()); err != nil {
		return err
	}
	if err := e.write("fig9.txt", d.ASCII(110)); err != nil {
		return err
	}
	busy := d.BusyFraction()
	var total float64
	for _, f := range busy {
		total += f
	}
	const machineCPUs = 4 * 8 // the run's 4 nodes × 8-way SMPs
	e.logf("  %d CPU timelines with activity (of %d CPUs); machine utilization %.2f (paper: \"the CPUs are mostly idle\")",
		len(d.Rows), machineCPUs, total/machineCPUs)

	// Migration: how many CPUs did each MPI thread visit?
	tp, err := run.View(render.ThreadProcessor, render.Options{})
	if err != nil {
		return err
	}
	moved := 0
	for _, n := range tp.DistinctKeysPerRow() {
		if n > 1 {
			moved++
		}
	}
	e.logf("  threads that visited more than one CPU: %d (paper: MPI threads jump between CPUs)", moved)
	return nil
}

func runSeekScale(e *env) error {
	// Frame fetch time must stay flat while file size grows (§4:
	// "Scalability in the time it takes to display this frame
	// (independence from the size of the SLOG file)").
	sizes := []int{5, 20, 80}
	if !e.quick {
		sizes = append(sizes, 320)
	}
	var b strings.Builder
	b.WriteString("flash_iters\tslog_frames\tfetch_us\n")
	for _, iters := range sizes {
		run, err := flashRun(iters)
		if err != nil {
			return err
		}
		sf := run.Slog
		mid := (sf.TStart + sf.TEnd) / 2
		// Average several fetches for a stable number.
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			fi, ok := sf.FrameAt(mid + clock.Time(i)*clock.Microsecond)
			if !ok {
				run.Close()
				return fmt.Errorf("no frame at midpoint")
			}
			if _, err := sf.ReadFrame(fi); err != nil {
				run.Close()
				return err
			}
		}
		perFetch := time.Since(start).Seconds() / reps * 1e6
		fmt.Fprintf(&b, "%d\t%d\t%.1f\n", iters, len(sf.Index), perFetch)
		e.logf("  %4d iterations -> %4d frames: %.1f µs per frame fetch", iters, len(sf.Index), perFetch)
		run.Close()
	}
	return e.write("seekscale.tsv", b.String())
}
