// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulated system, writing TSV data and SVG
// renderings into an output directory:
//
//	fig1       accumulated timestamp discrepancies among 4 local clocks
//	table1     convert / slogmerge utility speed (sec/event) vs raw events
//	fig6       statistics viewer table: interesting time per node per bin
//	fig7       SLOG preview + frame fetch for the FLASH-like run
//	fig8       thread-activity view of the sPPM-like run
//	fig9       processor-activity view of the same run
//	clocksync  §2.2 ratio-estimator accuracy comparison
//	seekscale  §4 frame-fetch scalability vs file size
//
// Usage:
//
//	experiments [-out DIR] [-only fig1,table1,...] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

type experiment struct {
	name string
	desc string
	run  func(*env) error
}

type env struct {
	out     string
	quick   bool
	summary *strings.Builder
}

func (e *env) logf(format string, args ...interface{}) {
	line := fmt.Sprintf(format, args...)
	fmt.Println(line)
	e.summary.WriteString(line)
	e.summary.WriteByte('\n')
}

func (e *env) write(name, content string) error {
	path := filepath.Join(e.out, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	e.logf("  wrote %s (%d bytes)", path, len(content))
	return nil
}

func main() {
	var (
		out   = flag.String("out", "out", "output directory")
		only  = flag.String("only", "", "comma-separated subset of experiments")
		quick = flag.Bool("quick", false, "smaller problem sizes (Table 1 sweep capped)")
	)
	flag.Parse()

	experiments := []experiment{
		{"fig1", "clock discrepancies among 4 local clocks (~140s)", runFig1},
		{"table1", "utility speed: sec/event of convert and slogmerge", runTable1},
		{"fig6", "statistics table: interesting time per node per 50 bins", runFig6},
		{"fig7", "SLOG preview and frame fetch (FLASH-like run)", runFig7},
		{"fig8", "thread-activity view (sPPM-like run)", runFig8},
		{"fig9", "processor-activity view (sPPM-like run)", runFig9},
		{"clocksync", "ratio estimator accuracy (§2.2)", runClockSync},
		{"seekscale", "frame fetch time vs file size (§4)", runSeekScale},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	e := &env{out: *out, quick: *quick, summary: &strings.Builder{}}
	for _, ex := range experiments {
		if len(selected) > 0 && !selected[ex.name] {
			continue
		}
		e.logf("== %s: %s", ex.name, ex.desc)
		if err := ex.run(e); err != nil {
			fatal(fmt.Errorf("%s: %w", ex.name, err))
		}
	}
	if err := os.WriteFile(filepath.Join(*out, "SUMMARY.txt"), []byte(e.summary.String()), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
