// Command utestats generates statistics tables from interval files (the
// paper's statistics utility, §3.2). Tables are specified in the
// declarative language:
//
//	table name=sample condition=(start < 2)
//	      x=("node", node) x=("processor", cpu)
//	      y=("avg(duration)", dura, avg)
//
// Without a program the pre-defined tables are generated, including the
// per-node × time-bin "interesting duration" table of Figure 6. Output
// is tab-separated values; -svg additionally writes the statistics
// viewer's rendering of each table.
//
// Usage:
//
//	utestats [-e PROGRAM | -f program.st] [-bins N] [-out DIR] [-svg]
//	         [-j N] [-window lo:hi] merged.ute [more.ute ...]
//
// All input files share one frame-decode worker pool (-j workers), and
// -window lo:hi (seconds; either side may be empty) restricts the tables
// to records overlapping the window, decoding only overlapping frames.
// The tables are byte-identical for every -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
	"tracefw/internal/render"
	"tracefw/internal/stats"
)

func main() {
	var (
		exprSrc  = flag.String("e", "", "inline statistics program")
		fileSrc  = flag.String("f", "", "statistics program file")
		bins     = flag.Int("bins", 50, "time bins for the predefined tables")
		outDir   = flag.String("out", "", "write each table to DIR/<name>.tsv instead of stdout")
		svg      = flag.Bool("svg", false, "with -out, also write viewer SVGs")
		checkVer = flag.Bool("check-profile", false, "verify the inputs' profile version against profile.ute next to each input")
		jobs     = flag.Int("j", 0, "frame-decode workers across all inputs (0 = GOMAXPROCS)")
		window   = flag.String("window", "", "restrict tables to records overlapping lo:hi (seconds)")
		verbose  = flag.Bool("v", false, "report per-table engine and excluded-record counts on stderr")
		timeRes  = flag.Bool("timeresolved", false, "generate the time-resolved metric tables (-bins buckets) instead of a program")
		engine   = flag.String("engine", "auto", "table evaluator: auto, scalar, or columnar")
		summary  = flag.String("summary", "auto", "with -timeresolved, the summary engine: auto, pyramid, or scan")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "utestats: no input files")
		os.Exit(2)
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "utestats: -j must be >= 0")
		os.Exit(2)
	}
	program := *exprSrc
	if *fileSrc != "" {
		b, err := os.ReadFile(*fileSrc)
		if err != nil {
			fatal(err)
		}
		program = string(b)
	}
	if program == "" {
		program = stats.Predefined(*bins)
	}

	var files []*interval.File
	for _, p := range flag.Args() {
		f, err := interval.Open(p)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *checkVer {
			if err := verifyProfile(p, f); err != nil {
				fatal(err)
			}
		}
		files = append(files, f)
	}
	var err error
	opts := stats.Options{Parallel: *jobs}
	switch *engine {
	case "auto":
	case "scalar":
		opts.Engine = stats.EngineScalar
	case "columnar":
		opts.Engine = stats.EngineColumnar
	default:
		fmt.Fprintf(os.Stderr, "utestats: -engine must be auto, scalar, or columnar, got %q\n", *engine)
		os.Exit(2)
	}
	if opts.Summary, err = interval.ParseSummaryEngine(*summary); err != nil {
		fatal(err)
	}
	if *window != "" {
		lo, hi, err := clock.ParseWindow(*window)
		if err != nil {
			fatal(err)
		}
		opts.Window, opts.Lo, opts.Hi = true, lo, hi
	}
	var tables []*stats.Table
	if *timeRes {
		if *exprSrc != "" || *fileSrc != "" {
			fmt.Fprintln(os.Stderr, "utestats: -timeresolved does not take a program (-e/-f)")
			os.Exit(2)
		}
		tables, err = stats.TimeResolved(files, *bins, opts)
	} else {
		tables, err = stats.GenerateOpts(program, files, opts)
	}
	if err != nil {
		fatal(err)
	}
	for _, tb := range tables {
		if *verbose {
			eng := "scalar"
			if tb.Columnar {
				eng = "columnar"
			}
			sum := ""
			if tb.Engine != "" {
				// Time-resolved tables also report which summary engine
				// answered them: O(bins) pyramid cells or a frame scan.
				sum = " summary=" + tb.Engine
			}
			fmt.Fprintf(os.Stderr, "utestats: table %s: engine=%s%s skipped=%d rows=%d\n",
				tb.Name, eng, sum, tb.Skipped, len(tb.Rows))
		}
		if *outDir == "" {
			fmt.Printf("# table %s\n%s\n", tb.Name, tb.TSV())
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, tb.Name+".tsv")
		if err := os.WriteFile(path, []byte(tb.TSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("utestats: wrote %s (%d rows)\n", path, len(tb.Rows))
		if *svg {
			var doc string
			if len(tb.XLabels) >= 2 {
				doc = render.StatsHeatmapSVG(tb)
			} else {
				doc = render.StatsBarsSVG(tb)
			}
			spath := filepath.Join(*outDir, tb.Name+".svg")
			if err := os.WriteFile(spath, []byte(doc), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("utestats: wrote %s\n", spath)
		}
	}
}

// verifyProfile compares the interval file's profile version with the
// profile.ute in the same directory (paper §2.3: "Utilities and programs
// that read interval files check that they are using the correct
// profile").
func verifyProfile(path string, f *interval.File) error {
	pp := filepath.Join(filepath.Dir(path), "profile.ute")
	prof, err := profileRead(pp, f.Header.FieldMask)
	if err != nil {
		return fmt.Errorf("reading %s: %w", pp, err)
	}
	if prof.Version != f.Header.ProfileVersion {
		return fmt.Errorf("%s: profile version %#x does not match %s's %#x",
			path, f.Header.ProfileVersion, pp, prof.Version)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "utestats:", err)
	os.Exit(1)
}
