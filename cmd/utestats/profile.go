package main

import "tracefw/internal/profile"

// profileRead is a seam for tests; it loads a profile file with the
// given field-selection mask applied.
func profileRead(path string, mask uint16) (*profile.Profile, error) {
	return profile.ReadFile(path, mask)
}
