package tracefw

// Benchmarks for the horizontal serving tier (internal/shard): the
// router's scatter-gather window path, and the cache-capacity scaling
// argument behind running N backends at all. On a single-CPU machine
// adding backends cannot add compute, but it does add aggregate
// decoded-frame cache: the router splits a trace's frame ranges across
// the fleet, so each backend's working set shrinks with N. When one
// backend's cache cannot hold the whole trace, a fleet whose combined
// cache can turns every warm query from a decode back into a lookup.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"

	"tracefw/internal/interval"
	"tracefw/internal/load"
	"tracefw/internal/shard"
	"tracefw/internal/tracesvc"
)

// routerFleet is an in-process serving tier: n tracesvc backends behind
// real HTTP listeners and a router splitting every trace across them.
type routerFleet struct {
	router   *shard.Router
	backends []*tracesvc.Service
	id       string
	windows  []string
}

// benchRouterFleet builds a fleet whose per-backend cache budget is
// cacheBytes (0 = default 256 MiB) over one trace of n records, split
// across the backends from the first frame directory on.
func benchRouterFleet(b *testing.B, nBackends int, cacheBytes int64, n int) *routerFleet {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.ute")
	writeIntervalFile(b, path, interval.CurrentHeaderVersion, n)

	f := &routerFleet{}
	var bs []shard.Backend
	for i := 0; i < nBackends; i++ {
		svc := tracesvc.New(tracesvc.Config{CacheBytes: cacheBytes, CacheShards: 1})
		svc.SetReady()
		ts := httptest.NewServer(svc.Handler())
		b.Cleanup(func() { ts.Close(); svc.Close() })
		f.backends = append(f.backends, svc)
		bs = append(bs, shard.Backend{Name: fmt.Sprintf("b%d", i), URL: ts.URL})
	}
	rt, err := shard.NewRouter(shard.Config{Backends: bs, SplitFrames: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	f.router = rt
	info, err := rt.OpenTrace(context.Background(), path)
	if err != nil {
		b.Fatal(err)
	}
	f.id = info.ID

	// Eight windows tiling the whole run: cycling through them sweeps
	// every frame, which is the cache's worst case when it cannot hold
	// the trace and its best case when it can.
	const nw = 8
	span := float64(info.EndNs-info.StartNs) / 1e9
	lo := float64(info.StartNs) / 1e9
	for i := 0; i < nw; i++ {
		f.windows = append(f.windows, fmt.Sprintf("%.9f:%.9f",
			lo+span*float64(i)/nw, lo+span*float64(i+1)/nw))
	}
	return f
}

func (f *routerFleet) query(b *testing.B, i int) {
	b.Helper()
	url := fmt.Sprintf("/v1/traces/%s/records?window=%s&count=1", f.id, f.windows[i%len(f.windows)])
	w := httptest.NewRecorder()
	f.router.Handler().ServeHTTP(w, httptest.NewRequest("GET", url, nil))
	if w.Code != http.StatusOK {
		b.Fatalf("GET %s: %d %s", url, w.Code, w.Body)
	}
}

// decodedBytes sums the backends' decoded-frame cache occupancy.
func (f *routerFleet) cacheStats() (bytes, hits, misses int64) {
	for _, svc := range f.backends {
		st := svc.Cache().Stats()
		bytes += st.Bytes
		hits += st.Hits
		misses += st.Misses
	}
	return
}

// BenchmarkRouterWindow measures one warm scatter-gathered window count
// through the router over two backends — the serving tier's hot path:
// two HTTP legs, frame-order merge, JSON encode.
func BenchmarkRouterWindow(b *testing.B) {
	f := benchRouterFleet(b, 2, 0, 20000)
	f.query(b, 0) // warm both segment caches for window 0
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.query(b, 0)
	}
}

// BenchmarkUteloadSmoke drives the load generator end to end against a
// two-backend router fleet: one op is a complete uteload run (trace
// discovery, cold pass over every window, measured warm phase, backend
// cache scrape). It exists for `make ci`'s one-iteration smoke — it
// catches bit-rot anywhere in the serving tier's client-visible surface
// without paying for a measurement run.
func BenchmarkUteloadSmoke(b *testing.B) {
	f := benchRouterFleet(b, 2, 0, 4000)
	ts := httptest.NewServer(f.router.Handler())
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := load.Run(context.Background(), load.Config{
			BaseURL: ts.URL, Clients: 2, Requests: 16, Windows: 4, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Cold.Errors+rep.Warm.Errors > 0 {
			b.Fatalf("load run errored: %+v", rep)
		}
	}
}

// BenchmarkRouterScaling is the capacity argument measured: the same
// window sweep against 1, 2, and 4 backends whose per-backend cache
// holds ~60% of the trace's decoded frames. One backend evicts on every
// lap (a cyclic sweep is LRU's worst case) and pays the decode price
// per query; two backends each own roughly half the frame ranges, fit
// them, and serve every warm query from cache. hitratio is printed per
// op so the mechanism is visible next to the time.
func BenchmarkRouterScaling(b *testing.B) {
	const records = 20000
	// Probe the decoded working set with an uncapped single backend.
	probe := benchRouterFleet(b, 1, 0, records)
	for i := range probe.windows {
		probe.query(b, i)
	}
	working, _, _ := probe.cacheStats()
	if working == 0 {
		b.Fatal("probe decoded nothing")
	}
	perBackend := working * 6 / 10

	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends-%d", n), func(b *testing.B) {
			f := benchRouterFleet(b, n, perBackend, records)
			for i := range f.windows { // warm lap
				f.query(b, i)
			}
			_, h0, m0 := f.cacheStats()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.query(b, i)
			}
			b.StopTimer()
			_, h1, m1 := f.cacheStats()
			if dh, dm := h1-h0, m1-m0; dh+dm > 0 {
				b.ReportMetric(float64(dh)/float64(dh+dm), "hitratio")
			}
		})
	}
}
