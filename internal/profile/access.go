package profile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the record-access half of the paper's utility-library API
// (§2.4): given a record specification and the raw bytes of one interval
// record, locate fields by name, fetch scalar items (getItemByName),
// test for and fetch vector fields, all without compiled-in knowledge of
// the record layout.

// fieldAt walks the record's fields in specification order and returns
// the byte range of the named field plus its description. ok is false
// when the field does not exist in this spec or the buffer is too short.
func (s *RecordSpec) fieldAt(buf []byte, name string) (start, end int, f Field, ok bool) {
	off := 0
	for _, fd := range s.Fields {
		size := int(fd.ElemLen)
		if fd.Vector {
			if off+int(fd.CounterLen) > len(buf) {
				return 0, 0, Field{}, false
			}
			n := int(readUint(buf[off : off+int(fd.CounterLen)]))
			size = int(fd.CounterLen) + n*int(fd.ElemLen)
		}
		if off+size > len(buf) {
			return 0, 0, Field{}, false
		}
		if fd.Name == name {
			return off, off + size, fd, true
		}
		off += size
	}
	return 0, 0, Field{}, false
}

// Size returns the encoded size of a record with the given buffer,
// verifying that the fields exactly cover it.
func (s *RecordSpec) Size(buf []byte) (int, error) {
	off := 0
	for _, fd := range s.Fields {
		size := int(fd.ElemLen)
		if fd.Vector {
			if off+int(fd.CounterLen) > len(buf) {
				return 0, fmt.Errorf("profile: %s: truncated vector counter for %q", s.Name, fd.Name)
			}
			n := int(readUint(buf[off : off+int(fd.CounterLen)]))
			size = int(fd.CounterLen) + n*int(fd.ElemLen)
		}
		off += size
		if off > len(buf) {
			return 0, fmt.Errorf("profile: %s: record truncated at field %q", s.Name, fd.Name)
		}
	}
	return off, nil
}

// Item implements the paper's getItemByName for scalar fields: it
// returns the field's value widened to int64 (unsigned fields of fewer
// than 8 bytes widen losslessly) and the field's size in bytes. ok is
// false for missing fields and for vector fields.
func (s *RecordSpec) Item(buf []byte, name string) (val int64, size int, ok bool) {
	start, end, f, ok := s.fieldAt(buf, name)
	if !ok || f.Vector {
		return 0, 0, false
	}
	raw := buf[start:end]
	switch f.Type {
	case Int:
		return readInt(raw), len(raw), true
	case Float:
		switch len(raw) {
		case 4:
			return int64(math.Float32frombits(uint32(readUint(raw)))), len(raw), true
		case 8:
			return int64(math.Float64frombits(readUint(raw))), len(raw), true
		}
		return 0, 0, false
	default:
		return int64(readUint(raw)), len(raw), true
	}
}

// FloatItem fetches a scalar Float field at full precision.
func (s *RecordSpec) FloatItem(buf []byte, name string) (float64, bool) {
	start, end, f, ok := s.fieldAt(buf, name)
	if !ok || f.Vector || f.Type != Float {
		return 0, false
	}
	raw := buf[start:end]
	switch len(raw) {
	case 4:
		return float64(math.Float32frombits(uint32(readUint(raw)))), true
	case 8:
		return math.Float64frombits(readUint(raw)), true
	}
	return 0, false
}

// IsVector reports whether the named field exists and is a vector.
func (s *RecordSpec) IsVector(name string) bool {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.Vector
		}
	}
	return false
}

// Vector fetches a vector field's raw element bytes (without the
// counter) and its element count.
func (s *RecordSpec) Vector(buf []byte, name string) (elems []byte, count int, ok bool) {
	start, end, f, ok := s.fieldAt(buf, name)
	if !ok || !f.Vector {
		return nil, 0, false
	}
	raw := buf[start:end]
	n := int(readUint(raw[:f.CounterLen]))
	return raw[f.CounterLen:], n, true
}

// String fetches a vector Bytes field as a string (the paper's "get a
// vector field such as a character string").
func (s *RecordSpec) String(buf []byte, name string) (string, bool) {
	elems, _, ok := s.Vector(buf, name)
	if !ok {
		return "", false
	}
	return string(elems), true
}

// AppendScalar appends a scalar field value in the field's encoding.
func AppendScalar(dst []byte, f Field, v uint64) []byte {
	return appendUint(dst, v, int(f.ElemLen))
}

// AppendVector appends a vector field (counter + elements).
func AppendVector(dst []byte, f Field, elems []byte) []byte {
	if int(f.ElemLen) != 1 && len(elems)%int(f.ElemLen) != 0 {
		panic(fmt.Sprintf("profile: vector %q elems not a multiple of elem size", f.Name))
	}
	n := len(elems) / int(f.ElemLen)
	dst = appendUint(dst, uint64(n), int(f.CounterLen))
	return append(dst, elems...)
}

func readUint(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func readInt(b []byte) int64 {
	u := readUint(b)
	bits := uint(len(b)) * 8
	if bits < 64 && u&(1<<(bits-1)) != 0 {
		u |= ^uint64(0) << bits // sign-extend
	}
	return int64(u)
}

func appendUint(dst []byte, v uint64, size int) []byte {
	for i := 0; i < size; i++ {
		dst = append(dst, byte(v))
		v >>= 8
	}
	return dst
}
