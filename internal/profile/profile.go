// Package profile implements the paper's self-defining description
// profile (§2.3.1): a meta-format file that describes what a valid
// interval record looks like. A profile holds a version ID, arrays of
// strings for record and field names, and one record specification per
// interval type — where an interval type is an event type plus two
// "bebits" saying whether a record is a complete interval or a begin,
// continuation, or end piece. Each field is described by one packed
// field-description word carrying a vector bit, a counter length, a data
// type, an element length, a field-selection attribute, and a field name
// index.
//
// Utilities that read interval files first read the profile (checking
// the version ID stored in both files) and from then on know every
// record layout, which is what lets new record types be added without
// touching the readers.
package profile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"tracefw/internal/events"
)

// Bebits classify an interval record piece (paper §1.2): a complete
// interval, or the begin / continuation / end piece of a split one.
type Bebits uint8

// Bebit values: bit 1 = "has begin edge", bit 0 = "has end edge".
const (
	Continuation Bebits = 0
	End          Bebits = 1
	Begin        Bebits = 2
	Complete     Bebits = 3
)

// String names the piece kind.
func (b Bebits) String() string {
	switch b {
	case Continuation:
		return "continuation"
	case End:
		return "end"
	case Begin:
		return "begin"
	case Complete:
		return "complete"
	}
	return "bebits?"
}

// DataType is a field's element type.
type DataType uint8

// Field data types.
const (
	Uint  DataType = 0 // unsigned integer, ElemLen bytes
	Int   DataType = 1 // signed integer, ElemLen bytes
	Float DataType = 2 // IEEE float, ElemLen 4 or 8
	Bytes DataType = 3 // raw bytes / characters
)

// Field describes one record field. The on-disk form is a single packed
// word (see Word / parseWord).
type Field struct {
	Name       string
	Vector     bool     // vector fields carry a counter then elements
	CounterLen uint8    // bytes of the vector counter (1, 2, or 4)
	Type       DataType // element type
	ElemLen    uint8    // element size in bytes (1, 2, 4, or 8)
	Attr       uint16   // field-selection attribute (bit set)
}

// Word packs the field description into its on-disk word, resolving the
// name to nameIdx.
//
// Layout: bit31 vector | bits30..28 counterLen | bits27..24 type |
// bits23..16 elemLen | bits15..12 attr | bits11..0 name index.
func (f Field) Word(nameIdx int) uint32 {
	w := uint32(nameIdx) & 0xfff
	w |= uint32(f.Attr&0xf) << 12
	w |= uint32(f.ElemLen) << 16
	w |= uint32(f.Type&0xf) << 24
	w |= uint32(f.CounterLen&0x7) << 28
	if f.Vector {
		w |= 1 << 31
	}
	return w
}

func parseWord(w uint32, names []string) (Field, error) {
	idx := int(w & 0xfff)
	if idx >= len(names) {
		return Field{}, fmt.Errorf("profile: field name index %d out of range", idx)
	}
	return Field{
		Name:       names[idx],
		Attr:       uint16(w >> 12 & 0xf),
		ElemLen:    uint8(w >> 16 & 0xff),
		Type:       DataType(w >> 24 & 0xf),
		CounterLen: uint8(w >> 28 & 0x7),
		Vector:     w>>31 != 0,
	}, nil
}

// RecordSpec is the specification of one interval type (paper Figure 3).
type RecordSpec struct {
	Type   events.Type
	Bebits Bebits
	Name   string
	Fields []Field
}

// key packs (type, bebits) for spec lookup.
func key(t events.Type, b Bebits) uint32 { return uint32(t)<<2 | uint32(b&3) }

// Profile is a parsed description profile.
type Profile struct {
	Version uint32
	Specs   []RecordSpec

	index map[uint32]*RecordSpec
}

// New creates an empty profile with the given version ID.
func New(version uint32) *Profile {
	return &Profile{Version: version, index: make(map[uint32]*RecordSpec)}
}

// Add appends a record specification. Duplicate (type, bebits) pairs are
// rejected.
func (p *Profile) Add(s RecordSpec) error {
	k := key(s.Type, s.Bebits)
	if _, dup := p.index[k]; dup {
		return fmt.Errorf("profile: duplicate spec for %s/%s", s.Type.Name(), s.Bebits)
	}
	p.Specs = append(p.Specs, s)
	p.index[k] = &p.Specs[len(p.Specs)-1]
	p.reindex()
	return nil
}

// reindex rebuilds the lookup map (appends may relocate the slice).
func (p *Profile) reindex() {
	p.index = make(map[uint32]*RecordSpec, len(p.Specs))
	for i := range p.Specs {
		s := &p.Specs[i]
		p.index[key(s.Type, s.Bebits)] = s
	}
}

// Lookup returns the spec for an interval type, or nil.
func (p *Profile) Lookup(t events.Type, b Bebits) *RecordSpec {
	return p.index[key(t, b)]
}

// Select returns a view of the profile with only the fields whose
// selection attribute intersects mask — the mechanism that lets "a given
// record type have a different number of fields in individual and merged
// interval files". The receiver is unchanged.
func (p *Profile) Select(mask uint16) *Profile {
	out := New(p.Version)
	for _, s := range p.Specs {
		ns := RecordSpec{Type: s.Type, Bebits: s.Bebits, Name: s.Name}
		for _, f := range s.Fields {
			if f.Attr&mask != 0 {
				ns.Fields = append(ns.Fields, f)
			}
		}
		if err := out.Add(ns); err != nil {
			// Unreachable: the source profile has no duplicates.
			panic(err)
		}
	}
	return out
}

// --- Binary encoding ---

const profMagic = "UTEPROF1"

// Write serializes the profile: header (magic, version, counts, the
// record-name and field-name string arrays) followed by the record
// specifications.
func (p *Profile) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Build the two name arrays.
	recNames, recIdx := nameArray(len(p.Specs), func(i int) string { return p.Specs[i].Name })
	var fieldCount int
	for i := range p.Specs {
		fieldCount += len(p.Specs[i].Fields)
	}
	flat := make([]string, 0, fieldCount)
	for i := range p.Specs {
		for _, f := range p.Specs[i].Fields {
			flat = append(flat, f.Name)
		}
	}
	fieldNames, fieldIdx := nameArray(len(flat), func(i int) string { return flat[i] })

	bw.WriteString(profMagic)
	writeU32(bw, p.Version)
	writeU16(bw, uint16(len(recNames)))
	writeU16(bw, uint16(len(fieldNames)))
	writeU16(bw, uint16(len(p.Specs)))
	for _, n := range recNames {
		writeStr(bw, n)
	}
	for _, n := range fieldNames {
		writeStr(bw, n)
	}
	fi := 0
	for i := range p.Specs {
		s := &p.Specs[i]
		writeU32(bw, key(s.Type, s.Bebits))
		writeU16(bw, uint16(recIdx[s.Name]))
		bw.WriteByte(0) // reserved
		if len(s.Fields) > 255 {
			return fmt.Errorf("profile: spec %s has %d fields", s.Name, len(s.Fields))
		}
		bw.WriteByte(uint8(len(s.Fields)))
		for _, f := range s.Fields {
			writeU32(bw, f.Word(fieldIdx[flat[fi]]))
			fi++
		}
	}
	return bw.Flush()
}

// Read parses a profile written by Write.
func Read(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(profMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("profile: reading magic: %w", err)
	}
	if string(magic) != profMagic {
		return nil, fmt.Errorf("profile: bad magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	nRec, err := readU16(br)
	if err != nil {
		return nil, err
	}
	nField, err := readU16(br)
	if err != nil {
		return nil, err
	}
	nSpec, err := readU16(br)
	if err != nil {
		return nil, err
	}
	recNames := make([]string, nRec)
	for i := range recNames {
		if recNames[i], err = readStr(br); err != nil {
			return nil, err
		}
	}
	fieldNames := make([]string, nField)
	for i := range fieldNames {
		if fieldNames[i], err = readStr(br); err != nil {
			return nil, err
		}
	}
	p := New(version)
	for i := 0; i < int(nSpec); i++ {
		k, err := readU32(br)
		if err != nil {
			return nil, err
		}
		nameIdx, err := readU16(br)
		if err != nil {
			return nil, err
		}
		if _, err := br.ReadByte(); err != nil { // reserved
			return nil, err
		}
		nf, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if int(nameIdx) >= len(recNames) {
			return nil, fmt.Errorf("profile: record name index %d out of range", nameIdx)
		}
		s := RecordSpec{
			Type:   events.Type(k >> 2),
			Bebits: Bebits(k & 3),
			Name:   recNames[nameIdx],
		}
		for j := 0; j < int(nf); j++ {
			w, err := readU32(br)
			if err != nil {
				return nil, err
			}
			f, err := parseWord(w, fieldNames)
			if err != nil {
				return nil, err
			}
			s.Fields = append(s.Fields, f)
		}
		if err := p.Add(s); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// WriteFile writes the profile to a file.
func (p *Profile) WriteFile(name string) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := p.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a profile file and applies the field-selection mask
// from an interval file header (paper Figure 5's readProfile), returning
// the selected view.
func ReadFile(name string, mask uint16) (*Profile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return nil, err
	}
	return p.Select(mask), nil
}

// nameArray deduplicates n strings into an array plus an index map.
func nameArray(n int, get func(int) string) ([]string, map[string]int) {
	var arr []string
	idx := make(map[string]int)
	for i := 0; i < n; i++ {
		s := get(i)
		if _, ok := idx[s]; !ok {
			idx[s] = len(arr)
			arr = append(arr, s)
		}
	}
	return arr, idx
}

func writeU16(w *bufio.Writer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.Write(b[:])
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeStr(w *bufio.Writer, s string) {
	writeU16(w, uint16(len(s)))
	w.WriteString(s)
}

func readU16(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readStr(r *bufio.Reader) (string, error) {
	n, err := readU16(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
