package profile

import "tracefw/internal/events"

// StdVersion is the version ID of the standard UTE profile built by
// Standard. Interval files record the profile version they were written
// against; readers must check it (paper §2.3).
const StdVersion uint32 = 0x00010002

// Field-selection attribute bits of the standard profile and the masks
// interval files carry in their headers.
const (
	AttrBase uint16 = 0x1 // present in every file

	MaskIndividual uint16 = 0x1
	MaskMerged     uint16 = 0x1
)

// Standard builds the standard profile: one record specification per
// (state type, bebits) combination, each starting with the common fields
// (type, bebits, start, dura, cpu, node, thread) followed by the state's
// extra fields, all 8-byte unsigned scalars.
func Standard() *Profile {
	p := New(StdVersion)
	for _, ty := range events.StateTypes {
		for _, bb := range []Bebits{Continuation, End, Begin, Complete} {
			s := RecordSpec{Type: ty, Bebits: bb, Name: ty.Name()}
			s.Fields = append(s.Fields, CommonFieldSet()...)
			for _, name := range events.ExtraFields(ty) {
				s.Fields = append(s.Fields, Field{Name: name, Type: Uint, ElemLen: 8, Attr: AttrBase})
			}
			if vf := events.VectorField(ty); vf != "" {
				s.Fields = append(s.Fields, Field{
					Name: vf, Vector: true, CounterLen: 2, Type: Uint, ElemLen: 8, Attr: AttrBase,
				})
			}
			if err := p.Add(s); err != nil {
				panic(err) // unreachable: the loop has no duplicates
			}
		}
	}
	// Global-clock pair records ride along in individual interval files
	// (zero-duration, Complete) so the merge utility can align and adjust
	// timestamps without returning to the raw traces.
	clk := RecordSpec{Type: events.EvGlobalClock, Bebits: Complete, Name: events.EvGlobalClock.Name()}
	clk.Fields = append(clk.Fields, CommonFieldSet()...)
	clk.Fields = append(clk.Fields, Field{Name: events.FieldGlobal, Type: Uint, ElemLen: 8, Attr: AttrBase})
	if err := p.Add(clk); err != nil {
		panic(err)
	}
	return p
}

// CommonFieldSet returns fresh Field descriptions of the common interval
// fields, in on-disk order.
func CommonFieldSet() []Field {
	return []Field{
		{Name: events.FieldType, Type: Uint, ElemLen: 2, Attr: AttrBase},
		{Name: events.FieldBebits, Type: Uint, ElemLen: 1, Attr: AttrBase},
		{Name: events.FieldStart, Type: Int, ElemLen: 8, Attr: AttrBase},
		{Name: events.FieldDura, Type: Int, ElemLen: 8, Attr: AttrBase},
		{Name: events.FieldCPU, Type: Uint, ElemLen: 2, Attr: AttrBase},
		{Name: events.FieldNode, Type: Uint, ElemLen: 2, Attr: AttrBase},
		{Name: events.FieldThread, Type: Uint, ElemLen: 2, Attr: AttrBase},
	}
}

// CommonSize is the encoded size of the common field prefix.
const CommonSize = 2 + 1 + 8 + 8 + 2 + 2 + 2
