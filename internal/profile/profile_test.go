package profile

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"tracefw/internal/events"
)

func TestBebitsString(t *testing.T) {
	if Complete.String() != "complete" || Begin.String() != "begin" ||
		End.String() != "end" || Continuation.String() != "continuation" {
		t.Fatal("bebits names wrong")
	}
	if Bebits(9).String() != "bebits?" {
		t.Fatal("unknown bebits name wrong")
	}
}

func TestFieldWordRoundTrip(t *testing.T) {
	names := []string{"alpha", "beta"}
	cases := []Field{
		{Name: "alpha", Type: Uint, ElemLen: 8, Attr: 1},
		{Name: "beta", Type: Int, ElemLen: 2, Attr: 3},
		{Name: "alpha", Type: Float, ElemLen: 4, Attr: 5},
		{Name: "beta", Vector: true, CounterLen: 2, Type: Bytes, ElemLen: 1, Attr: 1},
		{Name: "alpha", Vector: true, CounterLen: 4, Type: Uint, ElemLen: 8, Attr: 2},
	}
	for i, want := range cases {
		idx := 0
		if want.Name == "beta" {
			idx = 1
		}
		got, err := parseWord(want.Word(idx), names)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestFieldWordBadNameIndex(t *testing.T) {
	if _, err := parseWord(0xfff, []string{"only"}); err == nil {
		t.Fatal("out-of-range name index accepted")
	}
}

func TestStandardProfileComplete(t *testing.T) {
	p := Standard()
	wantSpecs := 4*len(events.StateTypes) + 1 // + GlobalClock/Complete
	if len(p.Specs) != wantSpecs {
		t.Fatalf("standard profile has %d specs, want %d", len(p.Specs), wantSpecs)
	}
	if p.Lookup(events.EvGlobalClock, Complete) == nil {
		t.Fatal("no spec for global clock records")
	}
	for _, ty := range events.StateTypes {
		for _, bb := range []Bebits{Continuation, End, Begin, Complete} {
			s := p.Lookup(ty, bb)
			if s == nil {
				t.Fatalf("no spec for %s/%s", ty.Name(), bb)
			}
			if s.Name != ty.Name() {
				t.Fatalf("spec name %q for %s", s.Name, ty.Name())
			}
			want := len(events.CommonFields) + len(events.ExtraFields(ty))
			if events.VectorField(ty) != "" {
				want++
			}
			if len(s.Fields) != want {
				t.Fatalf("%s/%s has %d fields, want %d", ty.Name(), bb, len(s.Fields), want)
			}
			if vf := events.VectorField(ty); vf != "" {
				last := s.Fields[len(s.Fields)-1]
				if last.Name != vf || !last.Vector || last.CounterLen != 2 || last.ElemLen != 8 {
					t.Fatalf("%s vector field wrong: %+v", ty.Name(), last)
				}
			}
			if s.Fields[0].Name != events.FieldType || s.Fields[2].Name != events.FieldStart {
				t.Fatalf("common prefix wrong: %+v", s.Fields[:3])
			}
		}
	}
}

func TestProfileWriteReadRoundTrip(t *testing.T) {
	p := Standard()
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != p.Version {
		t.Fatalf("version %#x, want %#x", got.Version, p.Version)
	}
	if len(got.Specs) != len(p.Specs) {
		t.Fatalf("%d specs, want %d", len(got.Specs), len(p.Specs))
	}
	for i := range p.Specs {
		if !reflect.DeepEqual(got.Specs[i], p.Specs[i]) {
			t.Fatalf("spec %d differs:\n got %+v\nwant %+v", i, got.Specs[i], p.Specs[i])
		}
	}
}

func TestProfileFileRoundTrip(t *testing.T) {
	p := Standard()
	name := filepath.Join(t.TempDir(), "profile.ute")
	if err := p.WriteFile(name); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(name, MaskIndividual)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != StdVersion {
		t.Fatalf("version %#x", got.Version)
	}
	// With the standard mask nothing is filtered.
	s := got.Lookup(events.EvMPISend, Complete)
	if s == nil || len(s.Fields) != len(events.CommonFields)+len(events.ExtraFields(events.EvMPISend)) {
		t.Fatalf("selected spec: %+v", s)
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTAPROFILE AT ALL......."))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDuplicateSpecRejected(t *testing.T) {
	p := New(1)
	s := RecordSpec{Type: events.EvRunning, Bebits: Complete, Name: "Running"}
	if err := p.Add(s); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(s); err == nil {
		t.Fatal("duplicate spec accepted")
	}
}

func TestSelectMask(t *testing.T) {
	p := New(7)
	err := p.Add(RecordSpec{Type: events.EvRunning, Bebits: Complete, Name: "R", Fields: []Field{
		{Name: "a", Type: Uint, ElemLen: 4, Attr: 0x1},
		{Name: "b", Type: Uint, ElemLen: 4, Attr: 0x2},
		{Name: "c", Type: Uint, ElemLen: 4, Attr: 0x3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sel := p.Select(0x2)
	s := sel.Lookup(events.EvRunning, Complete)
	if len(s.Fields) != 2 || s.Fields[0].Name != "b" || s.Fields[1].Name != "c" {
		t.Fatalf("selected fields: %+v", s.Fields)
	}
	// Original untouched.
	if len(p.Lookup(events.EvRunning, Complete).Fields) != 3 {
		t.Fatal("Select mutated the source profile")
	}
}

// buildRecord encodes a record for the given spec from scalar values and
// vector payloads keyed by field name.
func buildRecord(s *RecordSpec, scalars map[string]uint64, vectors map[string][]byte) []byte {
	var buf []byte
	for _, f := range s.Fields {
		if f.Vector {
			buf = AppendVector(buf, f, vectors[f.Name])
		} else {
			buf = AppendScalar(buf, f, scalars[f.Name])
		}
	}
	return buf
}

func testSpec() *RecordSpec {
	return &RecordSpec{Type: events.EvMarkerState, Bebits: Complete, Name: "M", Fields: []Field{
		{Name: "u16", Type: Uint, ElemLen: 2, Attr: 1},
		{Name: "i32", Type: Int, ElemLen: 4, Attr: 1},
		{Name: "str", Vector: true, CounterLen: 2, Type: Bytes, ElemLen: 1, Attr: 1},
		{Name: "u64", Type: Uint, ElemLen: 8, Attr: 1},
		{Name: "vec64", Vector: true, CounterLen: 1, Type: Uint, ElemLen: 8, Attr: 1},
	}}
}

func TestItemScalars(t *testing.T) {
	s := testSpec()
	buf := buildRecord(s, map[string]uint64{
		"u16": 0xbeef, "i32": 0xfffffffe /* -2 */, "u64": 1 << 40,
	}, map[string][]byte{"str": []byte("hello"), "vec64": nil})

	if v, size, ok := s.Item(buf, "u16"); !ok || v != 0xbeef || size != 2 {
		t.Fatalf("u16: %v %v %v", v, size, ok)
	}
	if v, _, ok := s.Item(buf, "i32"); !ok || v != -2 {
		t.Fatalf("i32 sign extension: %v %v", v, ok)
	}
	// u64 lives *after* the variable-length string: walking must skip it.
	if v, size, ok := s.Item(buf, "u64"); !ok || v != 1<<40 || size != 8 {
		t.Fatalf("u64: %v %v %v", v, size, ok)
	}
	if _, _, ok := s.Item(buf, "missing"); ok {
		t.Fatal("missing field found")
	}
	if _, _, ok := s.Item(buf, "str"); ok {
		t.Fatal("Item succeeded on a vector field")
	}
}

func TestVectorAndString(t *testing.T) {
	s := testSpec()
	vec := []byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}
	buf := buildRecord(s, map[string]uint64{"u16": 1, "i32": 2, "u64": 3},
		map[string][]byte{"str": []byte("marker name"), "vec64": vec})

	if !s.IsVector("str") || s.IsVector("u64") || s.IsVector("nope") {
		t.Fatal("IsVector wrong")
	}
	if got, ok := s.String(buf, "str"); !ok || got != "marker name" {
		t.Fatalf("String: %q %v", got, ok)
	}
	elems, n, ok := s.Vector(buf, "vec64")
	if !ok || n != 2 || len(elems) != 16 {
		t.Fatalf("Vector: n=%d len=%d ok=%v", n, len(elems), ok)
	}
}

func TestSizeValidates(t *testing.T) {
	s := testSpec()
	buf := buildRecord(s, map[string]uint64{"u16": 1, "i32": 2, "u64": 3},
		map[string][]byte{"str": []byte("xy"), "vec64": make([]byte, 24)})
	n, err := s.Size(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("Size = %d (%v), want %d", n, err, len(buf))
	}
	if _, err := s.Size(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated record passed Size")
	}
}

func TestFloatItem(t *testing.T) {
	s := &RecordSpec{Name: "F", Fields: []Field{
		{Name: "f32", Type: Float, ElemLen: 4, Attr: 1},
		{Name: "f64", Type: Float, ElemLen: 8, Attr: 1},
	}}
	var buf []byte
	buf = appendUint(buf, uint64(mathFloat32bits(1.5)), 4)
	buf = appendUint(buf, mathFloat64bits(-2.25), 8)
	if v, ok := s.FloatItem(buf, "f32"); !ok || v != 1.5 {
		t.Fatalf("f32 = %v %v", v, ok)
	}
	if v, ok := s.FloatItem(buf, "f64"); !ok || v != -2.25 {
		t.Fatalf("f64 = %v %v", v, ok)
	}
	if v, _, ok := s.Item(buf, "f64"); !ok || v != -2 {
		t.Fatalf("Item on float truncates toward int64: %v %v", v, ok)
	}
}

func TestQuickScalarRoundTrip(t *testing.T) {
	s := &RecordSpec{Name: "Q", Fields: []Field{
		{Name: "a", Type: Uint, ElemLen: 8, Attr: 1},
		{Name: "b", Type: Int, ElemLen: 4, Attr: 1},
	}}
	f := func(a uint64, b int32) bool {
		buf := AppendScalar(nil, s.Fields[0], a)
		buf = AppendScalar(buf, s.Fields[1], uint64(uint32(b)))
		va, _, ok1 := s.Item(buf, "a")
		vb, _, ok2 := s.Item(buf, "b")
		return ok1 && ok2 && uint64(va) == a && vb == int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProfileRoundTrip(t *testing.T) {
	f := func(version uint32, nspec uint8, nfield uint8) bool {
		p := New(version)
		ns := int(nspec%5) + 1
		nf := int(nfield % 6)
		for i := 0; i < ns; i++ {
			s := RecordSpec{Type: events.Type(i), Bebits: Bebits(i % 4), Name: "rec"}
			for j := 0; j < nf; j++ {
				s.Fields = append(s.Fields, Field{
					Name: "f", Type: DataType(j % 4), ElemLen: uint8(1 << (j % 4)), Attr: uint16(j%4 + 1),
				})
			}
			if p.Add(s) != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if p.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Specs, p.Specs) && got.Version == version
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mathFloat32bits(f float32) uint32 { return math.Float32bits(f) }
func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }
