package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tracefw/internal/clock"
)

// Policy is the dispatch decision — which ready thread is placed on
// which free dispatch slot — extracted from the scheduler loop so that
// scenario sweeps can compare competing schedulers on one machine
// model. A policy also fixes the machine's slot geometry: most expose
// one dispatch slot per physical CPU, but an oversubscribing policy
// exposes more and pays for it with dilated compute slices.
//
// Implementations must be deterministic pure functions of the node
// view: the simulator calls Pick in a loop until it returns ok=false or
// the ready queue drains, and byte-identical traces across runs depend
// on Pick never consulting anything but its arguments.
type Policy interface {
	// Name returns the registry name the CLI selects the policy by.
	Name() string
	// Slots returns how many dispatch slots a node with phys physical
	// CPUs exposes (>= 1). Slot indices are the CPU numbers recorded in
	// dispatch trace records.
	Slots(phys int) int
	// Stretch returns the wall-clock dilation factor of a compute slice
	// that starts while busy slots (including the slice's own) are
	// occupied on a node with phys physical CPUs. Policies that never
	// oversubscribe return 1.
	Stretch(busy, phys int) int64
	// Pick selects the next dispatch: an index into the node's ready
	// queue (0 is the oldest ready thread) and a free slot. Returning
	// ok=false stops dispatching until the node's state changes.
	Pick(n NodeView) (readyIdx, slot int, ok bool)
}

// NodeView is the read-only window a Policy gets on one SMP node.
// It is a value wrapper; methods never allocate.
type NodeView struct{ n *node }

// ID returns the node id.
func (v NodeView) ID() int { return v.n.id }

// Slots returns the node's dispatch-slot count.
func (v NodeView) Slots() int { return len(v.n.cpus) }

// PhysCPUs returns the node's physical CPU count.
func (v NodeView) PhysCPUs() int { return v.n.phys }

// SlotFree reports whether dispatch slot i is unoccupied.
func (v NodeView) SlotFree(i int) bool { return v.n.cpus[i] == nil }

// LowestFreeSlot returns the lowest-numbered free slot, or -1.
func (v NodeView) LowestFreeSlot() int {
	for i, occ := range v.n.cpus {
		if occ == nil {
			return i
		}
	}
	return -1
}

// ReadyLen returns the number of ready threads queued on the node.
func (v NodeView) ReadyLen() int { return v.n.readyQ.size() }

// Ready describes the i-th ready thread (0 = oldest).
func (v NodeView) Ready(i int) ThreadView {
	t := v.n.readyQ.at(i)
	return ThreadView{ID: t.ID, LastCPU: t.lastCPU, Remain: t.remain}
}

// ThreadView is the policy-visible state of one ready thread.
type ThreadView struct {
	// ID is the node-local logical thread id.
	ID int32
	// LastCPU is the slot the thread last ran on, -1 if never dispatched.
	LastCPU int
	// Remain is the unfinished portion of the thread's current compute
	// burst; zero for a thread waiting inside a non-compute primitive.
	Remain clock.Time
}

// --- fifo (the historical default) -------------------------------------

// fifoPolicy dispatches the oldest ready thread onto a CPU chosen by the
// affinity knob — exactly the scheduler's historical hard-coded loop.
type fifoPolicy struct{ affinity Affinity }

// FIFO returns the default policy: oldest ready thread first, CPU chosen
// by the affinity rule (PreferLast re-dispatches on the previous CPU
// when free; LowestFree always takes the lowest-numbered idle CPU).
func FIFO(aff Affinity) Policy { return fifoPolicy{affinity: aff} }

func (p fifoPolicy) Name() string           { return "fifo" }
func (p fifoPolicy) Slots(phys int) int     { return phys }
func (p fifoPolicy) Stretch(_, _ int) int64 { return 1 }
func (p fifoPolicy) Pick(n NodeView) (int, int, bool) {
	if n.ReadyLen() == 0 {
		return 0, 0, false
	}
	slot := affinitySlot(n, n.Ready(0), p.affinity)
	if slot < 0 {
		return 0, 0, false
	}
	return 0, slot, true
}

// affinitySlot applies the affinity rule for one candidate thread.
func affinitySlot(n NodeView, t ThreadView, aff Affinity) int {
	if aff == AffinityPreferLast && t.LastCPU >= 0 && t.LastCPU < n.Slots() && n.SlotFree(t.LastCPU) {
		return t.LastCPU
	}
	return n.LowestFreeSlot()
}

// --- bestfit / worstfit ------------------------------------------------

// fitPolicy dispatches by remaining compute-burst length: bestfit takes
// the thread with the least remaining work (it "fits best" into a
// scheduler quantum, draining short work first), worstfit the one with
// the most (longest job first). Ties break toward the oldest ready
// thread, and the CPU is always the lowest-numbered free one, so both
// policies are deterministic.
type fitPolicy struct {
	name  string
	worst bool
}

// BestFit returns the shortest-remaining-burst-first policy.
func BestFit() Policy { return fitPolicy{name: "bestfit"} }

// WorstFit returns the longest-remaining-burst-first policy.
func WorstFit() Policy { return fitPolicy{name: "worstfit", worst: true} }

func (p fitPolicy) Name() string           { return p.name }
func (p fitPolicy) Slots(phys int) int     { return phys }
func (p fitPolicy) Stretch(_, _ int) int64 { return 1 }
func (p fitPolicy) Pick(n NodeView) (int, int, bool) {
	r := n.ReadyLen()
	if r == 0 {
		return 0, 0, false
	}
	slot := n.LowestFreeSlot()
	if slot < 0 {
		return 0, 0, false
	}
	best := 0
	bestRemain := n.Ready(0).Remain
	for i := 1; i < r; i++ {
		rem := n.Ready(i).Remain
		if (p.worst && rem > bestRemain) || (!p.worst && rem < bestRemain) {
			best, bestRemain = i, rem
		}
	}
	return best, slot, true
}

// --- oversub -----------------------------------------------------------

// oversubPolicy admits Factor× more threads than physical CPUs by
// exposing Factor×phys dispatch slots; a compute slice started while
// more slots are busy than there are physical CPUs runs proportionally
// slower (wall time = CPU time × ceil(busy/phys)). Dispatch order is
// FIFO with last-CPU affinity, like the default. The model is the
// k8s-style oversubscription trade: less queueing, degraded per-thread
// speed under load.
type oversubPolicy struct{ factor int }

// Oversub returns the oversubscribing policy with the given slot
// multiplier (values < 2 are raised to 2: a factor of 1 is plain FIFO).
func Oversub(factor int) Policy {
	if factor < 2 {
		factor = 2
	}
	return oversubPolicy{factor: factor}
}

func (p oversubPolicy) Name() string {
	if p.factor == 2 {
		return "oversub"
	}
	return fmt.Sprintf("oversub:%d", p.factor)
}
func (p oversubPolicy) Slots(phys int) int { return phys * p.factor }
func (p oversubPolicy) Stretch(busy, phys int) int64 {
	if phys <= 0 || busy <= phys {
		return 1
	}
	return int64((busy + phys - 1) / phys)
}
func (p oversubPolicy) Pick(n NodeView) (int, int, bool) {
	if n.ReadyLen() == 0 {
		return 0, 0, false
	}
	slot := affinitySlot(n, n.Ready(0), AffinityPreferLast)
	if slot < 0 {
		return 0, 0, false
	}
	return 0, slot, true
}

// --- registry ----------------------------------------------------------

// policyDocs is the CLI-facing registry of selectable policies.
var policyDocs = map[string]string{
	"fifo":     "oldest ready thread first, last-CPU affinity (the default)",
	"bestfit":  "shortest remaining compute burst first, lowest free CPU",
	"worstfit": "longest remaining compute burst first, lowest free CPU",
	"oversub":  "FIFO over factor× dispatch slots; contended slices dilate (oversub:N sets the factor, default 2)",
}

// PolicyNames returns the selectable policy names, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyDocs))
	for n := range policyDocs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyDoc returns the one-line description of a registered policy.
func PolicyDoc(name string) string { return policyDocs[name] }

// ParsePolicy resolves a CLI policy name. The empty string selects the
// default. "oversub:N" sets the slot multiplier.
func ParsePolicy(s string) (Policy, error) {
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case "", "fifo":
		if hasArg {
			return nil, fmt.Errorf("sched: policy %q takes no argument", name)
		}
		return FIFO(AffinityPreferLast), nil
	case "bestfit":
		if hasArg {
			return nil, fmt.Errorf("sched: policy %q takes no argument", name)
		}
		return BestFit(), nil
	case "worstfit":
		if hasArg {
			return nil, fmt.Errorf("sched: policy %q takes no argument", name)
		}
		return WorstFit(), nil
	case "oversub":
		factor := 2
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 2 || v > 64 {
				return nil, fmt.Errorf("sched: oversub factor %q must be an integer in [2,64]", arg)
			}
			factor = v
		}
		return Oversub(factor), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (have %s)", s, strings.Join(PolicyNames(), ", "))
}
