package sched

import (
	"fmt"
	"strings"
	"testing"

	"tracefw/internal/clock"
)

// recorder captures scheduling events as strings for assertions.
type recorder struct {
	evs []string
}

func (r *recorder) OnDispatch(node int, tid int32, cpu int, now clock.Time) {
	r.evs = append(r.evs, fmt.Sprintf("D n%d t%d c%d @%d", node, tid, cpu, now))
}
func (r *recorder) OnUndispatch(node int, tid int32, cpu int, reason UndispatchReason, now clock.Time) {
	r.evs = append(r.evs, fmt.Sprintf("U n%d t%d c%d r%d @%d", node, tid, cpu, reason, now))
}
func (r *recorder) OnThreadStart(node int, tid int32, now clock.Time) {
	r.evs = append(r.evs, fmt.Sprintf("S n%d t%d @%d", node, tid, now))
}

func TestSingleThreadCompute(t *testing.T) {
	rec := &recorder{}
	s := New(Config{Nodes: 1, CPUsPerNode: 1, Quantum: 10 * clock.Millisecond}, rec)
	var done clock.Time
	s.Spawn(0, func(th *Thread) {
		th.Compute(25 * clock.Millisecond)
		done = th.Now()
	})
	end := s.Run()
	if done != 25*clock.Millisecond {
		t.Fatalf("compute finished at %v, want 25ms", done)
	}
	if end != done {
		t.Fatalf("sim ended at %v", end)
	}
	// One dispatch, no preemption (nobody waiting), one exit undispatch.
	want := []string{"S n0 t0 @0", "D n0 t0 c0 @0", "U n0 t0 c0 r2 @25000000"}
	if got := strings.Join(rec.evs, "; "); got != strings.Join(want, "; ") {
		t.Fatalf("events:\n got %s\nwant %s", got, strings.Join(want, "; "))
	}
}

func TestTwoThreadsTimeSliceOneCPU(t *testing.T) {
	rec := &recorder{}
	s := New(Config{Nodes: 1, CPUsPerNode: 1, Quantum: 10 * clock.Millisecond}, rec)
	var end0, end1 clock.Time
	s.Spawn(0, func(th *Thread) { th.Compute(20 * clock.Millisecond); end0 = th.Now() })
	s.Spawn(0, func(th *Thread) { th.Compute(20 * clock.Millisecond); end1 = th.Now() })
	s.Run()
	// Interleaved 10ms slices: t0 runs 0-10, t1 10-20, t0 20-30, t1 30-40.
	if end0 != 30*clock.Millisecond || end1 != 40*clock.Millisecond {
		t.Fatalf("ends: %v %v, want 30ms 40ms", end0, end1)
	}
	// Quantum undispatches must appear.
	joined := strings.Join(rec.evs, "; ")
	if !strings.Contains(joined, "U n0 t0 c0 r0 @10000000") {
		t.Fatalf("missing quantum preemption of t0: %s", joined)
	}
}

func TestTwoCPUsRunInParallel(t *testing.T) {
	s := New(Config{Nodes: 1, CPUsPerNode: 2, Quantum: 10 * clock.Millisecond}, nil)
	var end0, end1 clock.Time
	s.Spawn(0, func(th *Thread) { th.Compute(50 * clock.Millisecond); end0 = th.Now() })
	s.Spawn(0, func(th *Thread) { th.Compute(50 * clock.Millisecond); end1 = th.Now() })
	s.Run()
	if end0 != 50*clock.Millisecond || end1 != 50*clock.Millisecond {
		t.Fatalf("parallel computes ended at %v, %v", end0, end1)
	}
}

func TestBlockUnblock(t *testing.T) {
	s := New(Config{Nodes: 1, CPUsPerNode: 1}, nil)
	var wakeTime clock.Time
	var blocked *Thread
	blocked = s.Spawn(0, func(th *Thread) {
		th.Block()
		wakeTime = th.Now()
	})
	s.Spawn(0, func(th *Thread) {
		th.Compute(5 * clock.Millisecond)
		th.Sim().Unblock(blocked)
	})
	s.Run()
	if wakeTime != 5*clock.Millisecond {
		t.Fatalf("woke at %v, want 5ms", wakeTime)
	}
}

func TestSleepDoesNotHoldCPU(t *testing.T) {
	s := New(Config{Nodes: 1, CPUsPerNode: 1}, nil)
	var computeEnd, sleepEnd clock.Time
	s.Spawn(0, func(th *Thread) {
		th.Sleep(100 * clock.Millisecond)
		sleepEnd = th.Now()
	})
	s.Spawn(0, func(th *Thread) {
		th.Compute(30 * clock.Millisecond)
		computeEnd = th.Now()
	})
	s.Run()
	if computeEnd != 30*clock.Millisecond {
		t.Fatalf("computer finished at %v; sleeper held the CPU", computeEnd)
	}
	if sleepEnd != 100*clock.Millisecond {
		t.Fatalf("sleeper woke at %v", sleepEnd)
	}
}

func TestAffinityPrefersLastCPU(t *testing.T) {
	rec := &recorder{}
	s := New(Config{Nodes: 1, CPUsPerNode: 2, Quantum: 10 * clock.Millisecond}, rec)
	s.Spawn(0, func(th *Thread) {
		th.Compute(5 * clock.Millisecond)
		th.Sleep(20 * clock.Millisecond)
		th.Compute(5 * clock.Millisecond)
	})
	s.Run()
	// Both computes must land on CPU 0 (free on re-dispatch).
	var cpus []string
	for _, e := range rec.evs {
		if strings.HasPrefix(e, "D ") {
			cpus = append(cpus, e)
		}
	}
	if len(cpus) != 2 || !strings.Contains(cpus[0], "c0") || !strings.Contains(cpus[1], "c0") {
		t.Fatalf("dispatches: %v", cpus)
	}
}

func TestMigrationWhenLastCPUBusy(t *testing.T) {
	rec := &recorder{}
	s := New(Config{Nodes: 1, CPUsPerNode: 2, Quantum: 10 * clock.Millisecond}, rec)
	// t0 and t1 fill both CPUs; t2 waits. At the 10ms quantum boundary t0
	// is preempted and t2 takes CPU 0; t1 is then preempted and t0 is
	// re-dispatched — its old CPU 0 is busy, so it must migrate to CPU 1.
	s.Spawn(0, func(th *Thread) { th.Compute(30 * clock.Millisecond) })
	s.Spawn(0, func(th *Thread) { th.Compute(30 * clock.Millisecond) })
	s.Spawn(0, func(th *Thread) { th.Compute(5 * clock.Millisecond) })
	s.Run()
	var t0Dispatch []string
	for _, e := range rec.evs {
		if strings.HasPrefix(e, "D n0 t0 ") {
			t0Dispatch = append(t0Dispatch, e)
		}
	}
	if len(t0Dispatch) < 2 {
		t.Fatalf("t0 dispatches: %v", t0Dispatch)
	}
	if !strings.Contains(t0Dispatch[0], "c0") {
		t.Fatalf("first dispatch not on c0: %v", t0Dispatch)
	}
	if !strings.Contains(t0Dispatch[1], "c1") {
		t.Fatalf("t0 did not migrate to c1: %v", t0Dispatch)
	}
}

func TestManyThreadsFairProgress(t *testing.T) {
	s := New(Config{Nodes: 1, CPUsPerNode: 2, Quantum: clock.Millisecond}, nil)
	const n = 8
	ends := make([]clock.Time, n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(0, func(th *Thread) {
			th.Compute(10 * clock.Millisecond)
			ends[i] = th.Now()
		})
	}
	s.Run()
	// 8 threads × 10ms on 2 CPUs = 40ms of work; with fair round-robin
	// slicing every thread ends within one round-robin cycle (8/2 × 1ms)
	// of the 40ms makespan, and the last finisher defines it exactly.
	var last clock.Time
	for i, e := range ends {
		if e < 36*clock.Millisecond || e > 40*clock.Millisecond {
			t.Fatalf("thread %d ended at %v", i, e)
		}
		if e > last {
			last = e
		}
	}
	if last != 40*clock.Millisecond {
		t.Fatalf("makespan %v, want 40ms", last)
	}
}

func TestNodesAreIndependent(t *testing.T) {
	s := New(Config{Nodes: 2, CPUsPerNode: 1}, nil)
	var end0, end1 clock.Time
	s.Spawn(0, func(th *Thread) { th.Compute(10 * clock.Millisecond); end0 = th.Now() })
	s.Spawn(1, func(th *Thread) { th.Compute(10 * clock.Millisecond); end1 = th.Now() })
	s.Run()
	if end0 != 10*clock.Millisecond || end1 != 10*clock.Millisecond {
		t.Fatalf("cross-node interference: %v %v", end0, end1)
	}
}

func TestSpawnFromThread(t *testing.T) {
	s := New(Config{Nodes: 1, CPUsPerNode: 2}, nil)
	var childEnd clock.Time
	s.Spawn(0, func(th *Thread) {
		th.Compute(clock.Millisecond)
		th.Sim().Spawn(0, func(c *Thread) {
			c.Compute(clock.Millisecond)
			childEnd = c.Now()
		})
		th.Compute(clock.Millisecond)
	})
	s.Run()
	if childEnd != 2*clock.Millisecond {
		t.Fatalf("child ended at %v, want 2ms", childEnd)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		rec := &recorder{}
		s := New(Config{Nodes: 2, CPUsPerNode: 2, Quantum: clock.Millisecond}, rec)
		for n := 0; n < 2; n++ {
			for i := 0; i < 5; i++ {
				d := clock.Time(i+1) * clock.Millisecond
				s.Spawn(n, func(th *Thread) {
					th.Compute(d)
					th.Sleep(d)
					th.Compute(d)
				})
			}
		}
		s.Run()
		return rec.evs
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatal("two identical runs produced different event sequences")
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected deadlock panic")
		} else if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s := New(Config{Nodes: 1, CPUsPerNode: 1}, nil)
	s.Spawn(0, func(th *Thread) { th.Block() })
	s.Run()
}

func TestUnblockNonBlockedPanics(t *testing.T) {
	s := New(Config{Nodes: 1, CPUsPerNode: 1}, nil)
	var panicked bool
	other := s.Spawn(0, func(th *Thread) { th.Compute(5 * clock.Millisecond) })
	s.Spawn(0, func(th *Thread) {
		defer func() { panicked = recover() != nil }()
		th.Sim().Unblock(other) // other is ready/running, not blocked
	})
	s.Run()
	if !panicked {
		t.Fatal("Unblock of non-blocked thread did not panic")
	}
}

func TestZeroComputeIsNoop(t *testing.T) {
	rec := &recorder{}
	s := New(Config{Nodes: 1, CPUsPerNode: 1}, rec)
	s.Spawn(0, func(th *Thread) {
		th.Compute(0)
		th.Compute(-5)
	})
	if end := s.Run(); end != 0 {
		t.Fatalf("zero compute advanced time to %v", end)
	}
}

func TestEventOrderingStableAtSameTime(t *testing.T) {
	s := New(Config{Nodes: 1, CPUsPerNode: 1}, nil)
	var order []int
	s.Spawn(0, func(th *Thread) {
		sim := th.Sim()
		for i := 0; i < 5; i++ {
			i := i
			sim.At(10*clock.Millisecond, func() { order = append(order, i) })
		}
		th.Sleep(20 * clock.Millisecond)
	})
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	New(Config{Nodes: 0, CPUsPerNode: 1}, nil)
}

func TestQuantumPreemptionOnlyWhenContended(t *testing.T) {
	rec := &recorder{}
	s := New(Config{Nodes: 1, CPUsPerNode: 1, Quantum: clock.Millisecond}, rec)
	s.Spawn(0, func(th *Thread) { th.Compute(100 * clock.Millisecond) })
	s.Run()
	for _, e := range rec.evs {
		if strings.Contains(e, "r0") {
			t.Fatalf("uncontended thread was preempted: %v", rec.evs)
		}
	}
}
