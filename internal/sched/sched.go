// Package sched is a deterministic discrete-event simulation of the SMP
// nodes of an SP system: each node has a set of CPUs and a preemptive,
// quantum-based thread scheduler. Simulated threads are goroutines that
// execute real Go code but consume virtual time only through the
// primitives (Compute, Sleep, Block). The scheduler emits thread
// dispatch and undispatch callbacks — the "system activities" the
// paper's unified tracing facility records alongside MPI events — and
// threads migrate between CPUs exactly as the paper's Figure 9 shows,
// because a re-dispatched thread takes whatever CPU is free.
//
// Execution is strictly deterministic: a single virtual clock, a single
// event queue ordered by (time, sequence), FIFO ready queues, and at
// most one thread goroutine executing between scheduler steps. The
// dispatch decision itself — which ready thread gets which free CPU —
// is a pluggable Policy (see policy.go), so cluster-scale scenario
// sweeps can compare schedulers on one machine model.
//
// The event queue, ready queues, and slice bookkeeping are
// allocation-free on the hot path: events are values in a hand-rolled
// binary heap, and the recurring event kinds (slice end, timer wakeup)
// are encoded in the event itself rather than as closures, so a
// thousand-node simulation's steady state allocates nothing per
// scheduler event.
package sched

import (
	"fmt"

	"tracefw/internal/clock"
)

// State is a thread's scheduling state.
type State uint8

// Thread states.
const (
	StateNew     State = iota // created, never dispatched
	StateReady                // runnable, waiting for a CPU
	StateRunning              // on a CPU
	StateBlocked              // waiting for an external wakeup
	StateExited               // finished
)

// UndispatchReason mirrors events.Undispatch* but is kept independent so
// sched has no dependency on the events package.
type UndispatchReason int

// Undispatch reasons.
const (
	ReasonQuantum UndispatchReason = 0
	ReasonBlock   UndispatchReason = 1
	ReasonExit    UndispatchReason = 2
)

// Listener receives scheduling events. Implementations must not call
// back into the simulator.
type Listener interface {
	// OnDispatch is called when thread tid of node is placed on cpu.
	OnDispatch(node int, tid int32, cpu int, now clock.Time)
	// OnUndispatch is called when thread tid leaves cpu.
	OnUndispatch(node int, tid int32, cpu int, reason UndispatchReason, now clock.Time)
	// OnThreadStart is called once when a thread is created.
	OnThreadStart(node int, tid int32, now clock.Time)
}

// NopListener ignores all events.
type NopListener struct{}

// OnDispatch implements Listener.
func (NopListener) OnDispatch(int, int32, int, clock.Time) {}

// OnUndispatch implements Listener.
func (NopListener) OnUndispatch(int, int32, int, UndispatchReason, clock.Time) {}

// OnThreadStart implements Listener.
func (NopListener) OnThreadStart(int, int32, clock.Time) {}

// evKind discriminates the recurring event shapes so the hot path never
// allocates a closure: slice expiry and timer wakeups carry their
// payload in the event value itself; evFn covers everything else.
type evKind uint8

const (
	evFn        evKind = iota // run e.fn
	evSliceDone               // a compute slice of e.t expired (e.d of CPU time)
	evUnblock                 // wake e.t from a Sleep
)

type event struct {
	at   clock.Time
	seq  uint64
	kind evKind
	t    *Thread
	d    clock.Time
	fn   func()
}

func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a hand-rolled binary min-heap of event values ordered by
// (time, sequence). Storing values and avoiding container/heap keeps the
// push/pop path free of interface boxing — zero allocations once the
// backing array has grown to the simulation's steady-state size.
type eventHeap []event

func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].before(&q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop fn/thread references
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q[l].before(&q[s]) {
			s = l
		}
		if r < n && q[r].before(&q[s]) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	*h = q
	return top
}

// threadQueue is a FIFO of threads with a head index instead of
// re-slicing, so steady-state push/pop reuses one backing array. take
// removes at an arbitrary index (policies may dispatch out of FIFO
// order) while preserving the order of the rest.
type threadQueue struct {
	items []*Thread
	head  int
}

func (q *threadQueue) size() int { return len(q.items) - q.head }

func (q *threadQueue) at(i int) *Thread { return q.items[q.head+i] }

func (q *threadQueue) push(t *Thread) {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, t)
}

func (q *threadQueue) take(i int) *Thread {
	j := q.head + i
	t := q.items[j]
	if i == 0 {
		q.items[j] = nil
		q.head++
		if q.head == len(q.items) {
			q.items = q.items[:0]
			q.head = 0
		}
		return t
	}
	copy(q.items[j:], q.items[j+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return t
}

type yieldKind uint8

const (
	yieldCompute yieldKind = iota
	yieldBlock
	yieldExit
	yieldPanic
)

type yieldMsg struct {
	t        *Thread
	kind     yieldKind
	panicVal interface{}
}

// Thread is a simulated thread. It is created with Sim.Spawn and runs fn
// on its own goroutine, consuming virtual time through the primitives.
type Thread struct {
	sim  *Sim
	node *node

	// ID is the node-local logical thread id, dense from 0 — the paper's
	// interval records identify threads this way ("logical thread ID
	// (starts from 0 for each node)").
	ID int32

	state   State
	cpu     int // dispatch slot currently held, -1 if none
	lastCPU int // affinity hint
	remain  clock.Time
	resume  chan struct{}
	fn      func(*Thread)
}

// Sim is the machine-wide simulator: a set of SMP nodes sharing one
// virtual clock and event queue.
type Sim struct {
	now      clock.Time
	seq      uint64
	events   eventHeap
	nodes    []*node
	listener Listener
	policy   Policy
	yieldCh  chan yieldMsg
	// runnables holds threads whose goroutine must be given control
	// (started, resumed after a completed compute, or after unblocking).
	runnables threadQueue
	live      int // threads not yet exited
	running   bool
}

type node struct {
	id      int
	phys    int // physical CPUs (slots may exceed this under oversubscription)
	busy    int // occupied dispatch slots
	quantum clock.Time
	cpus    []*Thread // index = dispatch slot; nil = idle
	readyQ  threadQueue
	threads []*Thread
}

// Affinity selects the CPU-placement rule of the default (FIFO) policy.
type Affinity int

// Affinity policies.
const (
	// AffinityPreferLast re-dispatches a thread on its previous CPU when
	// free (cache affinity), migrating only under contention.
	AffinityPreferLast Affinity = iota
	// AffinityLowestFree always takes the lowest-numbered idle CPU, like
	// the era's AIX dispatcher; threads migrate readily, which is what
	// the paper's processor-activity view (Figure 9) shows.
	AffinityLowestFree
)

// Config describes the simulated machine.
type Config struct {
	Nodes       int        // number of SMP nodes
	CPUsPerNode int        // physical processors per node
	Quantum     clock.Time // scheduler time slice; zero selects 10ms
	Affinity    Affinity   // CPU placement rule of the default policy
	// Policy is the dispatch policy; nil selects FIFO(Affinity), the
	// scheduler's historical behavior.
	Policy Policy
}

// New builds a simulator. The listener may be nil.
func New(cfg Config, l Listener) *Sim {
	if cfg.Nodes <= 0 || cfg.CPUsPerNode <= 0 {
		panic("sched: config needs at least one node and one CPU")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 10 * clock.Millisecond
	}
	if l == nil {
		l = NopListener{}
	}
	pol := cfg.Policy
	if pol == nil {
		pol = FIFO(cfg.Affinity)
	}
	slots := pol.Slots(cfg.CPUsPerNode)
	if slots < 1 {
		panic(fmt.Sprintf("sched: policy %s exposes %d slots", pol.Name(), slots))
	}
	s := &Sim{listener: l, policy: pol, yieldCh: make(chan yieldMsg)}
	for n := 0; n < cfg.Nodes; n++ {
		s.nodes = append(s.nodes, &node{
			id:      n,
			phys:    cfg.CPUsPerNode,
			quantum: cfg.Quantum,
			cpus:    make([]*Thread, slots),
		})
	}
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() clock.Time { return s.now }

// NumNodes returns the node count.
func (s *Sim) NumNodes() int { return len(s.nodes) }

// CPUs returns the dispatch-slot count of a node (equal to the physical
// CPU count except under an oversubscribing policy).
func (s *Sim) CPUs(nodeID int) int { return len(s.nodes[nodeID].cpus) }

// Policy returns the active dispatch policy.
func (s *Sim) Policy() Policy { return s.policy }

// Spawn creates a thread on node running fn. It may be called before Run
// or from inside a running thread. The thread starts Ready.
func (s *Sim) Spawn(nodeID int, fn func(*Thread)) *Thread {
	n := s.nodes[nodeID]
	t := &Thread{
		sim:     s,
		node:    n,
		ID:      int32(len(n.threads)),
		state:   StateNew,
		cpu:     -1,
		lastCPU: -1,
		resume:  make(chan struct{}),
		fn:      fn,
	}
	n.threads = append(n.threads, t)
	s.live++
	s.listener.OnThreadStart(n.id, t.ID, s.now)
	go t.run()
	t.state = StateReady
	n.readyQ.push(t)
	s.schedule(n)
	return t
}

func (t *Thread) run() {
	<-t.resume
	done := yieldMsg{t: t, kind: yieldExit}
	defer func() {
		// Forward workload panics to the simulator goroutine so Run's
		// caller sees them instead of the process dying on a goroutine
		// nobody can recover from.
		if r := recover(); r != nil {
			done = yieldMsg{t: t, kind: yieldPanic, panicVal: r}
		}
		t.sim.yieldCh <- done
	}()
	t.fn(t)
}

// push enqueues an event at virtual time at (clamped to now).
func (s *Sim) push(at clock.Time, e event) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	e.at, e.seq = at, s.seq
	s.events.push(e)
}

// At schedules fn to run at virtual time at (simulator context, not a
// thread). Events in the past run at the current time.
func (s *Sim) At(at clock.Time, fn func()) {
	s.push(at, event{kind: evFn, fn: fn})
}

// After schedules fn after a delay.
func (s *Sim) After(d clock.Time, fn func()) { s.At(s.now+d, fn) }

// Run executes the simulation until no thread can make progress. It
// returns the final virtual time. Run panics on deadlock with blocked
// threads remaining (a bug in the workload or runtime under test).
func (s *Sim) Run() clock.Time {
	if s.running {
		panic("sched: Run reentered")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		if s.runnables.size() > 0 {
			t := s.runnables.take(0)
			t.resume <- struct{}{}
			msg := <-s.yieldCh
			s.handleYield(msg)
			continue
		}
		if len(s.events) > 0 {
			e := s.events.pop()
			s.now = e.at
			switch e.kind {
			case evSliceDone:
				s.sliceDone(e.t, e.d)
			case evUnblock:
				s.Unblock(e.t)
			default:
				e.fn()
			}
			continue
		}
		break
	}
	if s.live > 0 {
		blocked := 0
		for _, n := range s.nodes {
			for _, t := range n.threads {
				if t.state == StateBlocked {
					blocked++
				}
			}
		}
		panic(fmt.Sprintf("sched: deadlock: %d live threads (%d blocked) with no pending events", s.live, blocked))
	}
	return s.now
}

func (s *Sim) handleYield(m yieldMsg) {
	t := m.t
	switch m.kind {
	case yieldCompute:
		// The thread holds a CPU and asked to burn t.remain of it.
		s.startSlice(t)
	case yieldBlock:
		s.releaseCPU(t, ReasonBlock)
		t.state = StateBlocked
		s.schedule(t.node)
	case yieldExit:
		s.releaseCPU(t, ReasonExit)
		t.state = StateExited
		s.live--
		s.schedule(t.node)
	case yieldPanic:
		panic(m.panicVal)
	}
}

// startSlice begins or continues a compute burst for a thread holding a
// CPU, scheduling the slice-end event. Under an oversubscribing policy
// the wall-clock duration of the slice dilates with the node's slot
// occupancy at slice start (CPU-time accounting is unaffected).
func (s *Sim) startSlice(t *Thread) {
	n := t.node
	slice := t.remain
	if q := n.quantum; slice > q {
		slice = q
	}
	wall := slice
	if stretch := s.policy.Stretch(n.busy, n.phys); stretch > 1 {
		wall = slice * clock.Time(stretch)
	}
	s.push(s.now+wall, event{kind: evSliceDone, t: t, d: slice})
}

func (s *Sim) sliceDone(t *Thread, slice clock.Time) {
	t.remain -= slice
	n := t.node
	if t.remain > 0 {
		if n.readyQ.size() > 0 {
			// Preempt: someone is waiting and the quantum is used up.
			s.releaseCPU(t, ReasonQuantum)
			t.state = StateReady
			n.readyQ.push(t)
			s.schedule(n)
		} else {
			s.startSlice(t)
		}
		return
	}
	// Compute finished; let the goroutine continue on its CPU.
	s.runnables.push(t)
}

func (s *Sim) releaseCPU(t *Thread, reason UndispatchReason) {
	if t.cpu < 0 {
		return
	}
	cpu := t.cpu
	t.node.cpus[cpu] = nil
	t.node.busy--
	t.cpu = -1
	t.lastCPU = cpu
	s.listener.OnUndispatch(t.node.id, t.ID, cpu, reason, s.now)
}

// schedule asks the policy to assign ready threads to free dispatch
// slots on a node until it declines or the ready queue drains.
func (s *Sim) schedule(n *node) {
	for n.readyQ.size() > 0 {
		ri, slot, ok := s.policy.Pick(NodeView{n})
		if !ok {
			return
		}
		if ri < 0 || ri >= n.readyQ.size() || slot < 0 || slot >= len(n.cpus) || n.cpus[slot] != nil {
			panic(fmt.Sprintf("sched: policy %s picked ready %d / slot %d (ready %d, slots %d)",
				s.policy.Name(), ri, slot, n.readyQ.size(), len(n.cpus)))
		}
		t := n.readyQ.take(ri)
		n.cpus[slot] = t
		n.busy++
		t.cpu = slot
		t.state = StateRunning
		s.listener.OnDispatch(n.id, t.ID, slot, s.now)
		if t.remain > 0 {
			// Mid-compute: resume the burst without waking the goroutine.
			s.startSlice(t)
		} else {
			// The goroutine is waiting inside a primitive (or has never
			// run); give it control.
			s.runnables.push(t)
		}
	}
}

// --- Thread-side primitives (called from thread goroutines only) ---

// Node returns the node id the thread runs on.
func (t *Thread) Node() int { return t.node.id }

// Now returns the current virtual time.
func (t *Thread) Now() clock.Time { return t.sim.now }

// Sim returns the simulator that owns the thread.
func (t *Thread) Sim() *Sim { return t.sim }

// CPU returns the CPU currently held, or -1.
func (t *Thread) CPU() int { return t.cpu }

// Compute consumes d of CPU time, competing with the node's other
// threads for processors; the call returns once d has been executed.
// Zero or negative durations return immediately.
func (t *Thread) Compute(d clock.Time) {
	if d <= 0 {
		return
	}
	t.remain = d
	t.yield(yieldCompute)
}

// Block releases the CPU and suspends the thread until Unblock.
func (t *Thread) Block() {
	t.yield(yieldBlock)
}

// Unblock makes a blocked thread runnable again. It may be called from a
// simulator event or from another thread. Unblocking a non-blocked
// thread panics: it indicates a lost-wakeup bug in the caller.
func (s *Sim) Unblock(t *Thread) {
	if t.state != StateBlocked {
		panic(fmt.Sprintf("sched: Unblock of thread %d/%d in state %d", t.node.id, t.ID, t.state))
	}
	t.state = StateReady
	t.node.readyQ.push(t)
	s.schedule(t.node)
}

// Sleep suspends the thread for d of virtual time without consuming CPU.
func (t *Thread) Sleep(d clock.Time) {
	s := t.sim
	s.push(s.now+d, event{kind: evUnblock, t: t})
	t.Block()
}

// yield hands control to the simulator and waits to be resumed.
func (t *Thread) yield(kind yieldKind) {
	t.sim.yieldCh <- yieldMsg{t: t, kind: kind}
	<-t.resume
}
