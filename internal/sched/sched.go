// Package sched is a deterministic discrete-event simulation of the SMP
// nodes of an SP system: each node has a set of CPUs and a preemptive,
// quantum-based thread scheduler. Simulated threads are goroutines that
// execute real Go code but consume virtual time only through the
// primitives (Compute, Sleep, Block). The scheduler emits thread
// dispatch and undispatch callbacks — the "system activities" the
// paper's unified tracing facility records alongside MPI events — and
// threads migrate between CPUs exactly as the paper's Figure 9 shows,
// because a re-dispatched thread takes whatever CPU is free.
//
// Execution is strictly deterministic: a single virtual clock, a single
// event queue ordered by (time, sequence), FIFO ready queues, and at
// most one thread goroutine executing between scheduler steps.
package sched

import (
	"container/heap"
	"fmt"

	"tracefw/internal/clock"
)

// State is a thread's scheduling state.
type State uint8

// Thread states.
const (
	StateNew     State = iota // created, never dispatched
	StateReady                // runnable, waiting for a CPU
	StateRunning              // on a CPU
	StateBlocked              // waiting for an external wakeup
	StateExited               // finished
)

// UndispatchReason mirrors events.Undispatch* but is kept independent so
// sched has no dependency on the events package.
type UndispatchReason int

// Undispatch reasons.
const (
	ReasonQuantum UndispatchReason = 0
	ReasonBlock   UndispatchReason = 1
	ReasonExit    UndispatchReason = 2
)

// Listener receives scheduling events. Implementations must not call
// back into the simulator.
type Listener interface {
	// OnDispatch is called when thread tid of node is placed on cpu.
	OnDispatch(node int, tid int32, cpu int, now clock.Time)
	// OnUndispatch is called when thread tid leaves cpu.
	OnUndispatch(node int, tid int32, cpu int, reason UndispatchReason, now clock.Time)
	// OnThreadStart is called once when a thread is created.
	OnThreadStart(node int, tid int32, now clock.Time)
}

// NopListener ignores all events.
type NopListener struct{}

// OnDispatch implements Listener.
func (NopListener) OnDispatch(int, int32, int, clock.Time) {}

// OnUndispatch implements Listener.
func (NopListener) OnUndispatch(int, int32, int, UndispatchReason, clock.Time) {}

// OnThreadStart implements Listener.
func (NopListener) OnThreadStart(int, int32, clock.Time) {}

type event struct {
	at  clock.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type yieldKind uint8

const (
	yieldCompute yieldKind = iota
	yieldBlock
	yieldExit
	yieldPanic
)

type yieldMsg struct {
	t        *Thread
	kind     yieldKind
	panicVal interface{}
}

// Thread is a simulated thread. It is created with Sim.Spawn and runs fn
// on its own goroutine, consuming virtual time through the primitives.
type Thread struct {
	sim  *Sim
	node *node

	// ID is the node-local logical thread id, dense from 0 — the paper's
	// interval records identify threads this way ("logical thread ID
	// (starts from 0 for each node)").
	ID int32

	state   State
	cpu     int // CPU currently held, -1 if none
	lastCPU int // affinity hint
	remain  clock.Time
	resume  chan struct{}
	fn      func(*Thread)
}

// Sim is the machine-wide simulator: a set of SMP nodes sharing one
// virtual clock and event queue.
type Sim struct {
	now      clock.Time
	seq      uint64
	events   eventQueue
	nodes    []*node
	listener Listener
	affinity Affinity
	yieldCh  chan yieldMsg
	// runnables holds threads whose goroutine must be given control
	// (started, resumed after a completed compute, or after unblocking).
	runnables []*Thread
	live      int // threads not yet exited
	running   bool
}

type node struct {
	id      int
	quantum clock.Time
	cpus    []*Thread // index = cpu id; nil = idle
	readyQ  []*Thread
	threads []*Thread
}

// Affinity selects the CPU-placement policy.
type Affinity int

// Affinity policies.
const (
	// AffinityPreferLast re-dispatches a thread on its previous CPU when
	// free (cache affinity), migrating only under contention.
	AffinityPreferLast Affinity = iota
	// AffinityLowestFree always takes the lowest-numbered idle CPU, like
	// the era's AIX dispatcher; threads migrate readily, which is what
	// the paper's processor-activity view (Figure 9) shows.
	AffinityLowestFree
)

// Config describes the simulated machine.
type Config struct {
	Nodes       int        // number of SMP nodes
	CPUsPerNode int        // processors per node
	Quantum     clock.Time // scheduler time slice; zero selects 10ms
	Affinity    Affinity   // CPU placement policy
}

// New builds a simulator. The listener may be nil.
func New(cfg Config, l Listener) *Sim {
	if cfg.Nodes <= 0 || cfg.CPUsPerNode <= 0 {
		panic("sched: config needs at least one node and one CPU")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 10 * clock.Millisecond
	}
	if l == nil {
		l = NopListener{}
	}
	s := &Sim{listener: l, affinity: cfg.Affinity, yieldCh: make(chan yieldMsg)}
	for n := 0; n < cfg.Nodes; n++ {
		s.nodes = append(s.nodes, &node{
			id:      n,
			quantum: cfg.Quantum,
			cpus:    make([]*Thread, cfg.CPUsPerNode),
		})
	}
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() clock.Time { return s.now }

// NumNodes returns the node count.
func (s *Sim) NumNodes() int { return len(s.nodes) }

// CPUs returns the CPU count of a node.
func (s *Sim) CPUs(nodeID int) int { return len(s.nodes[nodeID].cpus) }

// Spawn creates a thread on node running fn. It may be called before Run
// or from inside a running thread. The thread starts Ready.
func (s *Sim) Spawn(nodeID int, fn func(*Thread)) *Thread {
	n := s.nodes[nodeID]
	t := &Thread{
		sim:     s,
		node:    n,
		ID:      int32(len(n.threads)),
		state:   StateNew,
		cpu:     -1,
		lastCPU: -1,
		resume:  make(chan struct{}),
		fn:      fn,
	}
	n.threads = append(n.threads, t)
	s.live++
	s.listener.OnThreadStart(n.id, t.ID, s.now)
	go t.run()
	t.state = StateReady
	n.readyQ = append(n.readyQ, t)
	s.schedule(n)
	return t
}

func (t *Thread) run() {
	<-t.resume
	done := yieldMsg{t: t, kind: yieldExit}
	defer func() {
		// Forward workload panics to the simulator goroutine so Run's
		// caller sees them instead of the process dying on a goroutine
		// nobody can recover from.
		if r := recover(); r != nil {
			done = yieldMsg{t: t, kind: yieldPanic, panicVal: r}
		}
		t.sim.yieldCh <- done
	}()
	t.fn(t)
}

// At schedules fn to run at virtual time at (simulator context, not a
// thread). Events in the past run at the current time.
func (s *Sim) At(at clock.Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn after a delay.
func (s *Sim) After(d clock.Time, fn func()) { s.At(s.now+d, fn) }

// Run executes the simulation until no thread can make progress. It
// returns the final virtual time. Run panics on deadlock with blocked
// threads remaining (a bug in the workload or runtime under test).
func (s *Sim) Run() clock.Time {
	if s.running {
		panic("sched: Run reentered")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		if len(s.runnables) > 0 {
			t := s.runnables[0]
			s.runnables = s.runnables[1:]
			t.resume <- struct{}{}
			msg := <-s.yieldCh
			s.handleYield(msg)
			continue
		}
		if len(s.events) > 0 {
			e := heap.Pop(&s.events).(*event)
			s.now = e.at
			e.fn()
			continue
		}
		break
	}
	if s.live > 0 {
		blocked := 0
		for _, n := range s.nodes {
			for _, t := range n.threads {
				if t.state == StateBlocked {
					blocked++
				}
			}
		}
		panic(fmt.Sprintf("sched: deadlock: %d live threads (%d blocked) with no pending events", s.live, blocked))
	}
	return s.now
}

func (s *Sim) handleYield(m yieldMsg) {
	t := m.t
	switch m.kind {
	case yieldCompute:
		// The thread holds a CPU and asked to burn t.remain of it.
		s.startSlice(t)
	case yieldBlock:
		s.releaseCPU(t, ReasonBlock)
		t.state = StateBlocked
		s.schedule(t.node)
	case yieldExit:
		s.releaseCPU(t, ReasonExit)
		t.state = StateExited
		s.live--
		s.schedule(t.node)
	case yieldPanic:
		panic(m.panicVal)
	}
}

// startSlice begins or continues a compute burst for a thread holding a
// CPU, scheduling the slice-end event.
func (s *Sim) startSlice(t *Thread) {
	slice := t.remain
	if q := t.node.quantum; slice > q {
		slice = q
	}
	s.After(slice, func() { s.sliceDone(t, slice) })
}

func (s *Sim) sliceDone(t *Thread, slice clock.Time) {
	t.remain -= slice
	n := t.node
	if t.remain > 0 {
		if len(n.readyQ) > 0 {
			// Preempt: someone is waiting and the quantum is used up.
			s.releaseCPU(t, ReasonQuantum)
			t.state = StateReady
			n.readyQ = append(n.readyQ, t)
			s.schedule(n)
		} else {
			s.startSlice(t)
		}
		return
	}
	// Compute finished; let the goroutine continue on its CPU.
	s.runnables = append(s.runnables, t)
}

func (s *Sim) releaseCPU(t *Thread, reason UndispatchReason) {
	if t.cpu < 0 {
		return
	}
	cpu := t.cpu
	t.node.cpus[cpu] = nil
	t.cpu = -1
	t.lastCPU = cpu
	s.listener.OnUndispatch(t.node.id, t.ID, cpu, reason, s.now)
}

// schedule assigns ready threads to idle CPUs on a node.
func (s *Sim) schedule(n *node) {
	for len(n.readyQ) > 0 {
		cpu := s.pickCPU(n, n.readyQ[0])
		if cpu < 0 {
			return
		}
		t := n.readyQ[0]
		n.readyQ = n.readyQ[1:]
		n.cpus[cpu] = t
		t.cpu = cpu
		t.state = StateRunning
		s.listener.OnDispatch(n.id, t.ID, cpu, s.now)
		if t.remain > 0 {
			// Mid-compute: resume the burst without waking the goroutine.
			s.startSlice(t)
		} else {
			// The goroutine is waiting inside a primitive (or has never
			// run); give it control.
			s.runnables = append(s.runnables, t)
		}
	}
}

// pickCPU applies the affinity policy: with AffinityPreferLast the
// thread's previous CPU wins when free; otherwise (and always under
// AffinityLowestFree) the lowest-numbered idle CPU is taken, so threads
// migrate the way the paper's processor-activity view shows.
func (s *Sim) pickCPU(n *node, t *Thread) int {
	if s.affinity == AffinityPreferLast &&
		t.lastCPU >= 0 && t.lastCPU < len(n.cpus) && n.cpus[t.lastCPU] == nil {
		return t.lastCPU
	}
	for i, occ := range n.cpus {
		if occ == nil {
			return i
		}
	}
	return -1
}

// --- Thread-side primitives (called from thread goroutines only) ---

// Node returns the node id the thread runs on.
func (t *Thread) Node() int { return t.node.id }

// Now returns the current virtual time.
func (t *Thread) Now() clock.Time { return t.sim.now }

// Sim returns the simulator that owns the thread.
func (t *Thread) Sim() *Sim { return t.sim }

// CPU returns the CPU currently held, or -1.
func (t *Thread) CPU() int { return t.cpu }

// Compute consumes d of CPU time, competing with the node's other
// threads for processors; the call returns once d has been executed.
// Zero or negative durations return immediately.
func (t *Thread) Compute(d clock.Time) {
	if d <= 0 {
		return
	}
	t.remain = d
	t.yield(yieldCompute)
}

// Block releases the CPU and suspends the thread until Unblock.
func (t *Thread) Block() {
	t.yield(yieldBlock)
}

// Unblock makes a blocked thread runnable again. It may be called from a
// simulator event or from another thread. Unblocking a non-blocked
// thread panics: it indicates a lost-wakeup bug in the caller.
func (s *Sim) Unblock(t *Thread) {
	if t.state != StateBlocked {
		panic(fmt.Sprintf("sched: Unblock of thread %d/%d in state %d", t.node.id, t.ID, t.state))
	}
	t.state = StateReady
	t.node.readyQ = append(t.node.readyQ, t)
	s.schedule(t.node)
}

// Sleep suspends the thread for d of virtual time without consuming CPU.
func (t *Thread) Sleep(d clock.Time) {
	s := t.sim
	s.After(d, func() { s.Unblock(t) })
	t.Block()
}

// yield hands control to the simulator and waits to be resumed.
func (t *Thread) yield(kind yieldKind) {
	t.sim.yieldCh <- yieldMsg{t: t, kind: kind}
	<-t.resume
}
