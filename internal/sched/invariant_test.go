package sched

import (
	"fmt"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/xrand"
)

// invariantChecker validates scheduler guarantees from the event stream:
// a CPU never holds two threads, a thread never holds two CPUs, every
// undispatch matches a prior dispatch of the same thread and CPU, and
// event timestamps never regress.
type invariantChecker struct {
	t        *testing.T
	cpuOwner map[[2]int]int32 // (node, cpu) -> tid
	onCPU    map[[2]int32]int // (node, tid) -> cpu
	lastTime clock.Time
	events   int
}

func newChecker(t *testing.T) *invariantChecker {
	return &invariantChecker{
		t:        t,
		cpuOwner: map[[2]int]int32{},
		onCPU:    map[[2]int32]int{},
	}
}

func (c *invariantChecker) tick(now clock.Time) {
	if now < c.lastTime {
		c.t.Fatalf("time regressed: %v after %v", now, c.lastTime)
	}
	c.lastTime = now
	c.events++
}

func (c *invariantChecker) OnDispatch(node int, tid int32, cpu int, now clock.Time) {
	c.tick(now)
	ck := [2]int{node, cpu}
	tk := [2]int32{int32(node), tid}
	if owner, busy := c.cpuOwner[ck]; busy {
		c.t.Fatalf("cpu %d/%d double-booked: %d then %d at %v", node, cpu, owner, tid, now)
	}
	if held, on := c.onCPU[tk]; on {
		c.t.Fatalf("thread %d/%d dispatched on %d while holding %d", node, tid, cpu, held)
	}
	c.cpuOwner[ck] = tid
	c.onCPU[tk] = cpu
}

func (c *invariantChecker) OnUndispatch(node int, tid int32, cpu int, reason UndispatchReason, now clock.Time) {
	c.tick(now)
	ck := [2]int{node, cpu}
	tk := [2]int32{int32(node), tid}
	owner, busy := c.cpuOwner[ck]
	if !busy || owner != tid {
		c.t.Fatalf("undispatch of %d/%d from cpu %d it does not hold (owner %d, busy %v)",
			node, tid, cpu, owner, busy)
	}
	if held := c.onCPU[tk]; held != cpu {
		c.t.Fatalf("thread %d/%d undispatched from %d but holds %d", node, tid, cpu, held)
	}
	delete(c.cpuOwner, ck)
	delete(c.onCPU, tk)
}

func (c *invariantChecker) OnThreadStart(node int, tid int32, now clock.Time) { c.tick(now) }

// TestSchedulerInvariantsRandomWorkloads drives random mixes of compute,
// sleep, block/unblock, and spawn through the scheduler under both
// affinity policies and checks the dispatch-stream invariants.
func TestSchedulerInvariantsRandomWorkloads(t *testing.T) {
	for _, aff := range []Affinity{AffinityPreferLast, AffinityLowestFree} {
		for trial := 0; trial < 10; trial++ {
			rng := xrand.New(uint64(trial)*31 + uint64(aff))
			chk := newChecker(t)
			s := New(Config{
				Nodes:       1 + rng.Intn(3),
				CPUsPerNode: 1 + rng.Intn(4),
				Quantum:     clock.Time(1+rng.Intn(5)) * clock.Millisecond,
				Affinity:    aff,
			}, chk)
			nthreads := 2 + rng.Intn(8)
			for i := 0; i < nthreads; i++ {
				node := rng.Intn(s.NumNodes())
				seed := rng.Uint64()
				s.Spawn(node, func(th *Thread) {
					r := xrand.New(seed)
					for step := 0; step < 10; step++ {
						switch r.Intn(4) {
						case 0:
							th.Compute(clock.Time(r.Intn(10)+1) * clock.Millisecond)
						case 1:
							th.Sleep(clock.Time(r.Intn(5)+1) * clock.Millisecond)
						case 2:
							// Spawn a short-lived child occasionally.
							if step == 3 {
								th.Sim().Spawn(th.Node(), func(c *Thread) {
									c.Compute(2 * clock.Millisecond)
								})
							}
							th.Compute(clock.Millisecond)
						case 3:
							// Block and arrange a wakeup via a timer.
							me := th
							th.Sim().After(clock.Time(r.Intn(4)+1)*clock.Millisecond, func() {
								th.Sim().Unblock(me)
							})
							th.Block()
						}
					}
				})
			}
			end := s.Run()
			if chk.events == 0 {
				t.Fatal("no scheduler events")
			}
			// Everything must be released at the end.
			if len(chk.cpuOwner) != 0 || len(chk.onCPU) != 0 {
				t.Fatalf("affinity %v trial %d: CPUs still held at end (%v)", aff, trial, chk.cpuOwner)
			}
			if end <= 0 {
				t.Fatalf("sim ended at %v", end)
			}
		}
	}
}

// TestSchedulerEventStreamDeterministicAcrossAffinity ensures each
// policy is itself deterministic (already covered for PreferLast; this
// adds LowestFree).
func TestSchedulerEventStreamDeterministicAcrossAffinity(t *testing.T) {
	run := func(aff Affinity) string {
		var log string
		rec := listenerFunc(func(s string) { log += s })
		sim := New(Config{Nodes: 2, CPUsPerNode: 2, Quantum: clock.Millisecond, Affinity: aff}, rec)
		for i := 0; i < 6; i++ {
			d := clock.Time(i+1) * clock.Millisecond
			sim.Spawn(i%2, func(th *Thread) {
				th.Compute(d)
				th.Sleep(d)
				th.Compute(d)
			})
		}
		sim.Run()
		return log
	}
	for _, aff := range []Affinity{AffinityPreferLast, AffinityLowestFree} {
		if run(aff) != run(aff) {
			t.Fatalf("affinity %v not deterministic", aff)
		}
	}
	if run(AffinityPreferLast) == run(AffinityLowestFree) {
		t.Fatal("affinity policies produced identical schedules; policy not effective")
	}
}

type listenerFunc func(string)

func (f listenerFunc) OnDispatch(node int, tid int32, cpu int, now clock.Time) {
	f(fmt.Sprintf("D%d.%d.%d@%d;", node, tid, cpu, now))
}
func (f listenerFunc) OnUndispatch(node int, tid int32, cpu int, r UndispatchReason, now clock.Time) {
	f(fmt.Sprintf("U%d.%d.%d.%d@%d;", node, tid, cpu, r, now))
}
func (f listenerFunc) OnThreadStart(node int, tid int32, now clock.Time) {
	f(fmt.Sprintf("S%d.%d@%d;", node, tid, now))
}
