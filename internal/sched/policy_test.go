package sched

import (
	"strings"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/xrand"
)

func testPolicies() []Policy {
	return []Policy{
		FIFO(AffinityPreferLast),
		FIFO(AffinityLowestFree),
		BestFit(),
		WorstFit(),
		Oversub(2),
		Oversub(4),
	}
}

// TestPolicyInvariantsRandomWorkloads drives the invariant checker's
// random workload mix through every policy: whatever the dispatch
// order, a CPU never holds two threads, dispatch/undispatch pair up,
// and time is monotone.
func TestPolicyInvariantsRandomWorkloads(t *testing.T) {
	for _, pol := range testPolicies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				rng := xrand.New(uint64(trial)*127 + 9)
				chk := newChecker(t)
				s := New(Config{
					Nodes:       1 + rng.Intn(3),
					CPUsPerNode: 1 + rng.Intn(4),
					Quantum:     clock.Time(1+rng.Intn(5)) * clock.Millisecond,
					Policy:      pol,
				}, chk)
				nthreads := 2 + rng.Intn(8)
				for i := 0; i < nthreads; i++ {
					node := rng.Intn(s.NumNodes())
					seed := rng.Uint64()
					s.Spawn(node, func(th *Thread) {
						r := xrand.New(seed)
						for step := 0; step < 8; step++ {
							switch r.Intn(3) {
							case 0:
								th.Compute(clock.Time(r.Intn(10)+1) * clock.Millisecond)
							case 1:
								th.Sleep(clock.Time(r.Intn(5)+1) * clock.Millisecond)
							case 2:
								me := th
								th.Sim().After(clock.Time(r.Intn(4)+1)*clock.Millisecond, func() {
									th.Sim().Unblock(me)
								})
								th.Block()
							}
						}
					})
				}
				s.Run()
				if chk.events == 0 {
					t.Fatal("no scheduler events")
				}
				if len(chk.cpuOwner) != 0 || len(chk.onCPU) != 0 {
					t.Fatalf("trial %d: CPUs still held at end (%v)", trial, chk.cpuOwner)
				}
			}
		})
	}
}

// TestPoliciesDeterministicAndDistinct runs one contended scenario under
// every policy twice: each run must replay byte-identically, and the
// non-FIFO policies must actually change the schedule.
func TestPoliciesDeterministicAndDistinct(t *testing.T) {
	run := func(pol Policy) string {
		var log strings.Builder
		rec := listenerFunc(func(s string) { log.WriteString(s) })
		sim := New(Config{Nodes: 2, CPUsPerNode: 2, Quantum: clock.Millisecond, Policy: pol}, rec)
		for i := 0; i < 6; i++ {
			d := clock.Time(i+1) * clock.Millisecond
			sim.Spawn(i%2, func(th *Thread) {
				th.Compute(d)
				th.Sleep(d)
				th.Compute(2 * d)
			})
		}
		sim.Run()
		return log.String()
	}
	logs := map[string]string{}
	for _, pol := range testPolicies() {
		a, b := run(pol), run(pol)
		if a != b {
			t.Fatalf("policy %s not deterministic", pol.Name())
		}
		logs[pol.Name()] = a
	}
	for _, other := range []string{"bestfit", "worstfit", "oversub"} {
		if logs[other] == logs["fifo"] {
			t.Errorf("policy %s produced the same schedule as fifo on a contended run", other)
		}
	}
}

// TestDefaultPolicyMatchesLegacyConfig verifies the nil-Policy default is
// exactly FIFO(Affinity): the old Config surface must keep its schedule.
func TestDefaultPolicyMatchesLegacyConfig(t *testing.T) {
	run := func(cfg Config) string {
		var log strings.Builder
		rec := listenerFunc(func(s string) { log.WriteString(s) })
		sim := New(cfg, rec)
		for i := 0; i < 5; i++ {
			d := clock.Time(i+1) * clock.Millisecond
			sim.Spawn(0, func(th *Thread) {
				th.Compute(d)
				th.Sleep(clock.Millisecond)
				th.Compute(d)
			})
		}
		sim.Run()
		return log.String()
	}
	for _, aff := range []Affinity{AffinityPreferLast, AffinityLowestFree} {
		bare := run(Config{Nodes: 1, CPUsPerNode: 2, Quantum: clock.Millisecond, Affinity: aff})
		expl := run(Config{Nodes: 1, CPUsPerNode: 2, Quantum: clock.Millisecond, Affinity: aff, Policy: FIFO(aff)})
		if bare != expl {
			t.Fatalf("affinity %v: nil policy differs from explicit FIFO", aff)
		}
	}
}

// TestOversubSlotsAndStretch checks the oversubscription model: slots
// multiply, and a node running more slices than physical CPUs dilates
// them by ceil(busy/phys) while CPU-time accounting is unchanged.
func TestOversubSlotsAndStretch(t *testing.T) {
	p := Oversub(2)
	if got := p.Slots(4); got != 8 {
		t.Fatalf("Slots(4) = %d, want 8", got)
	}
	for _, c := range []struct {
		busy, phys int
		want       int64
	}{{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3}} {
		if got := p.Stretch(c.busy, c.phys); got != c.want {
			t.Errorf("Stretch(%d,%d) = %d, want %d", c.busy, c.phys, got, c.want)
		}
	}

	// 1 physical CPU, oversub 2: two threads computing 4ms each run
	// concurrently on 2 slots at half speed — both finish at 8ms, where
	// FIFO would finish at 8ms too but serialized. Peak concurrency is
	// the observable difference.
	var peak, cur int
	rec := dispatchCounter{cur: &cur, peak: &peak}
	s := New(Config{Nodes: 1, CPUsPerNode: 1, Quantum: 10 * clock.Millisecond, Policy: p}, rec)
	for i := 0; i < 2; i++ {
		s.Spawn(0, func(th *Thread) { th.Compute(4 * clock.Millisecond) })
	}
	end := s.Run()
	if peak != 2 {
		t.Fatalf("peak concurrent dispatches = %d, want 2 (oversubscribed)", peak)
	}
	if want := 8 * clock.Millisecond; end != want {
		t.Fatalf("end = %v, want %v (2 slices dilated 2x)", end, want)
	}
}

type dispatchCounter struct{ cur, peak *int }

func (d dispatchCounter) OnDispatch(int, int32, int, clock.Time) {
	*d.cur++
	if *d.cur > *d.peak {
		*d.peak = *d.cur
	}
}
func (d dispatchCounter) OnUndispatch(int, int32, int, UndispatchReason, clock.Time) { *d.cur-- }
func (d dispatchCounter) OnThreadStart(int, int32, clock.Time)                       {}

// TestBestWorstFitOrder pins the fit policies' dispatch order: with one
// CPU and three preempted threads of distinct remaining bursts, bestfit
// resumes the shortest first and worstfit the longest.
func TestBestWorstFitOrder(t *testing.T) {
	// Spawn threads with remaining bursts 3q, 1q, 2q (in spawn order) on
	// one CPU, then watch who gets dispatched after each quantum expiry.
	order := func(pol Policy) []int32 {
		var got []int32
		chk := listenerDispatchOrder{order: &got}
		s := New(Config{Nodes: 1, CPUsPerNode: 1, Quantum: 4 * clock.Millisecond, Policy: pol}, chk)
		for _, q := range []clock.Time{12, 5, 9} {
			d := q * clock.Millisecond
			s.Spawn(0, func(th *Thread) { th.Compute(d) })
		}
		s.Run()
		return got
	}
	best := order(BestFit())
	worst := order(WorstFit())
	// First three dispatches are the initial FIFO fills (remain 0 at
	// spawn); after the first preemption the queues diverge.
	if len(best) < 4 || len(worst) < 4 {
		t.Fatalf("too few dispatches: best %v worst %v", best, worst)
	}
	if same := func(a, b []int32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}; same(best, worst) {
		t.Fatalf("bestfit and worstfit produced identical dispatch order %v", best)
	}
}

type listenerDispatchOrder struct{ order *[]int32 }

func (l listenerDispatchOrder) OnDispatch(_ int, tid int32, _ int, _ clock.Time) {
	*l.order = append(*l.order, tid)
}
func (l listenerDispatchOrder) OnUndispatch(int, int32, int, UndispatchReason, clock.Time) {}
func (l listenerDispatchOrder) OnThreadStart(int, int32, clock.Time)                       {}

func TestParsePolicy(t *testing.T) {
	good := map[string]string{
		"":          "fifo",
		"fifo":      "fifo",
		"bestfit":   "bestfit",
		"worstfit":  "worstfit",
		"oversub":   "oversub",
		"oversub:2": "oversub",
		"oversub:8": "oversub:8",
	}
	for in, want := range good {
		p, err := ParsePolicy(in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", in, p.Name(), want)
		}
	}
	for _, in := range []string{"nope", "fifo:3", "bestfit:1", "oversub:1", "oversub:65", "oversub:x"} {
		if _, err := ParsePolicy(in); err == nil {
			t.Errorf("ParsePolicy(%q): no error", in)
		}
	}
	if len(PolicyNames()) < 4 {
		t.Fatalf("PolicyNames() = %v", PolicyNames())
	}
	for _, n := range PolicyNames() {
		if PolicyDoc(n) == "" {
			t.Errorf("policy %s has no doc", n)
		}
	}
}
