// Package faultfs provides deterministic fault injection for testing
// the corruption tolerance of the trace file formats. An Injector
// derives every fault from a seeded PRNG, so any failing scenario is
// reproducible from its seed alone. The package also provides I/O
// wrappers that model media- and process-level failures: unreadable
// byte ranges (BadSectorFile), partial reads (ShortReadSeeker), and a
// writer killed before its tail reached disk (TornWriter).
//
// Injector methods never mutate their input: each returns a damaged
// copy plus a Fault describing exactly which bytes were touched, so a
// differential harness can compare salvage output against the pristine
// original.
package faultfs

import (
	"errors"
	"fmt"
	"io"

	"tracefw/internal/xrand"
)

// Kind enumerates the fault classes the Injector produces.
type Kind int

const (
	// Truncate cuts the file short at an arbitrary offset, as a killed
	// job or a full filesystem would.
	Truncate Kind = iota
	// FlipBit inverts a single bit, as decaying media or a bad transfer
	// would.
	FlipBit
	// TearZero zeroes a byte range, modeling a torn write: space was
	// allocated but the data never reached it.
	TearZero
)

func (k Kind) String() string {
	switch k {
	case Truncate:
		return "truncate"
	case FlipBit:
		return "flip-bit"
	case TearZero:
		return "tear-zero"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Range is a half-open byte range [Off, Off+Len).
type Range struct {
	Off, Len int64
}

// Overlaps reports whether the range intersects [off, off+n).
func (r Range) Overlaps(off, n int64) bool {
	return r.Len > 0 && n > 0 && r.Off < off+n && off < r.Off+r.Len
}

// Fault describes one injected fault. For Truncate, Range covers every
// removed byte (Off is the new file length). For FlipBit, Range is the
// single affected byte and Bit is the inverted bit index.
type Fault struct {
	Kind  Kind
	Range Range
	Bit   uint
}

func (f Fault) String() string {
	switch f.Kind {
	case FlipBit:
		return fmt.Sprintf("flip-bit @%d bit %d", f.Range.Off, f.Bit)
	default:
		return fmt.Sprintf("%s [%d,+%d)", f.Kind, f.Range.Off, f.Range.Len)
	}
}

// Injector produces deterministic faults from a seed.
type Injector struct {
	rng *xrand.Rand
}

// New returns an Injector whose faults are fully determined by seed.
func New(seed uint64) *Injector {
	return &Injector{rng: xrand.New(seed)}
}

// Truncate returns a copy of data cut at a random offset in
// [min, len(data)). It panics if that interval is empty.
func (in *Injector) Truncate(data []byte, min int64) ([]byte, Fault) {
	if min < 0 || min >= int64(len(data)) {
		panic(fmt.Sprintf("faultfs: Truncate min %d outside file of %d bytes", min, len(data)))
	}
	cut := min + in.rng.Int63n(int64(len(data))-min)
	out := append([]byte(nil), data[:cut]...)
	return out, Fault{Kind: Truncate, Range: Range{Off: cut, Len: int64(len(data)) - cut}}
}

// FlipBit returns a copy of data with one random bit inverted at or
// after offset min.
func (in *Injector) FlipBit(data []byte, min int64) ([]byte, Fault) {
	if min < 0 || min >= int64(len(data)) {
		panic(fmt.Sprintf("faultfs: FlipBit min %d outside file of %d bytes", min, len(data)))
	}
	off := min + in.rng.Int63n(int64(len(data))-min)
	bit := uint(in.rng.Intn(8))
	out := append([]byte(nil), data...)
	out[off] ^= 1 << bit
	return out, Fault{Kind: FlipBit, Range: Range{Off: off, Len: 1}, Bit: bit}
}

// FlipBitIn flips one random bit inside the byte range [lo, hi).
func (in *Injector) FlipBitIn(data []byte, lo, hi int64) ([]byte, Fault) {
	if lo < 0 || lo >= hi || hi > int64(len(data)) {
		panic(fmt.Sprintf("faultfs: FlipBitIn [%d,%d) outside file of %d bytes", lo, hi, len(data)))
	}
	off := lo + in.rng.Int63n(hi-lo)
	bit := uint(in.rng.Intn(8))
	out := append([]byte(nil), data...)
	out[off] ^= 1 << bit
	return out, Fault{Kind: FlipBit, Range: Range{Off: off, Len: 1}, Bit: bit}
}

// TearZero returns a copy of data with a random range of 1..maxLen
// bytes zeroed, starting at or after min. The range never extends past
// the end of the file.
func (in *Injector) TearZero(data []byte, min, maxLen int64) ([]byte, Fault) {
	if min < 0 || min >= int64(len(data)) {
		panic(fmt.Sprintf("faultfs: TearZero min %d outside file of %d bytes", min, len(data)))
	}
	if maxLen < 1 {
		maxLen = 1
	}
	off := min + in.rng.Int63n(int64(len(data))-min)
	n := 1 + in.rng.Int63n(maxLen)
	if off+n > int64(len(data)) {
		n = int64(len(data)) - off
	}
	out := append([]byte(nil), data...)
	for i := off; i < off+n; i++ {
		out[i] = 0
	}
	return out, Fault{Kind: TearZero, Range: Range{Off: off, Len: n}}
}

// ErrBadSector is returned (wrapped) by BadSectorFile reads that touch
// a poisoned range.
var ErrBadSector = errors.New("faultfs: unreadable sector")

// BadSectorFile is an in-memory file whose poisoned byte ranges fail to
// read, the way a disk with bad sectors fails: the data is the right
// length, but reads intersecting a bad range return an error. It
// implements io.ReadSeeker and io.ReaderAt, the two access paths the
// interval reader uses.
type BadSectorFile struct {
	data []byte
	bad  []Range
	pos  int64
}

// NewBadSector returns a BadSectorFile over data with the given
// poisoned ranges.
func NewBadSector(data []byte, bad ...Range) *BadSectorFile {
	return &BadSectorFile{data: data, bad: bad}
}

func (f *BadSectorFile) check(off, n int64) error {
	for _, r := range f.bad {
		if r.Overlaps(off, n) {
			return fmt.Errorf("%w at [%d,+%d)", ErrBadSector, r.Off, r.Len)
		}
	}
	return nil
}

func (f *BadSectorFile) Read(p []byte) (int, error) {
	if f.pos >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.pos:])
	if err := f.check(f.pos, int64(n)); err != nil {
		return 0, err
	}
	f.pos += int64(n)
	return n, nil
}

func (f *BadSectorFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("faultfs: negative ReadAt offset %d", off)
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	if err := f.check(off, int64(len(p))); err != nil {
		return 0, err
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *BadSectorFile) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.data))
	default:
		return 0, fmt.Errorf("faultfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("faultfs: negative seek position")
	}
	f.pos = base + offset
	return f.pos, nil
}

// ShortReadSeeker wraps an io.ReadSeeker so every Read returns at most
// a random 1..max bytes, exercising callers' handling of partial reads.
// The byte stream itself is unmodified; well-behaved callers (using
// io.ReadFull or looping) must observe identical data.
type ShortReadSeeker struct {
	rs  io.ReadSeeker
	rng *xrand.Rand
	max int
}

// NewShortReader wraps rs with deterministic short reads of at most max
// bytes each (max < 1 is treated as 1).
func NewShortReader(rs io.ReadSeeker, seed uint64, max int) *ShortReadSeeker {
	if max < 1 {
		max = 1
	}
	return &ShortReadSeeker{rs: rs, rng: xrand.New(seed), max: max}
}

func (s *ShortReadSeeker) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return s.rs.Read(p)
	}
	n := 1 + s.rng.Intn(s.max)
	if n > len(p) {
		n = len(p)
	}
	return s.rs.Read(p[:n])
}

func (s *ShortReadSeeker) Seek(offset int64, whence int) (int64, error) {
	return s.rs.Seek(offset, whence)
}

// TornWriter is an in-memory io.WriteSeeker that models a writer killed
// mid-run: every byte destined for an offset at or beyond the horizon
// is silently dropped, while writes below it (including backward
// patches) land normally. Write still reports full success — the
// process never learned its tail was lost. Bytes never reached by a
// surviving write read as zero, like a sparse allocation.
type TornWriter struct {
	buf     []byte
	pos     int64
	horizon int64
}

// NewTornWriter returns a TornWriter dropping all bytes at or beyond
// horizon.
func NewTornWriter(horizon int64) *TornWriter {
	if horizon < 0 {
		horizon = 0
	}
	return &TornWriter{horizon: horizon}
}

func (t *TornWriter) Write(p []byte) (int, error) {
	end := t.pos + int64(len(p))
	keep := end
	if keep > t.horizon {
		keep = t.horizon
	}
	if keep > int64(len(t.buf)) {
		t.buf = append(t.buf, make([]byte, keep-int64(len(t.buf)))...)
	}
	if t.pos < keep {
		copy(t.buf[t.pos:keep], p[:keep-t.pos])
	}
	t.pos = end
	return len(p), nil
}

func (t *TornWriter) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = t.pos
	case io.SeekEnd:
		base = int64(len(t.buf))
	default:
		return 0, fmt.Errorf("faultfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("faultfs: negative seek position")
	}
	t.pos = base + offset
	return t.pos, nil
}

// Bytes returns the file content as it would appear on disk after the
// crash: everything below the horizon that a write reached, zeros in
// the gaps.
func (t *TornWriter) Bytes() []byte { return t.buf }
