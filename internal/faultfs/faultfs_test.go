package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func testData(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

// TestInjectorDeterministic: the same seed must produce bit-identical
// faults and damage, and a different seed must (for this data size)
// diverge.
func TestInjectorDeterministic(t *testing.T) {
	base := testData(4096)
	a1, fa1 := New(42).FlipBit(base, 100)
	a2, fa2 := New(42).FlipBit(base, 100)
	if fa1 != fa2 || !bytes.Equal(a1, a2) {
		t.Fatal("same seed produced different faults")
	}
	b1, fb1 := New(43).FlipBit(base, 100)
	if fb1 == fa1 && bytes.Equal(a1, b1) {
		t.Fatal("different seeds produced identical faults")
	}
}

// TestInjectorLeavesInputPristine: every injector method must return a
// copy, never mutate its input.
func TestInjectorLeavesInputPristine(t *testing.T) {
	base := testData(1024)
	orig := append([]byte(nil), base...)
	in := New(7)
	in.Truncate(base, 0)
	in.FlipBit(base, 0)
	in.FlipBitIn(base, 10, 20)
	in.TearZero(base, 0, 64)
	if !bytes.Equal(base, orig) {
		t.Fatal("injector mutated its input")
	}
}

func TestTruncateRange(t *testing.T) {
	base := testData(1000)
	for seed := uint64(0); seed < 50; seed++ {
		out, f := New(seed).Truncate(base, 100)
		if int64(len(out)) != f.Range.Off || f.Range.Off < 100 || f.Range.Off >= 1000 {
			t.Fatalf("seed %d: cut at %d, len %d", seed, f.Range.Off, len(out))
		}
		if f.Range.Off+f.Range.Len != 1000 {
			t.Fatalf("seed %d: lost range %+v does not reach EOF", seed, f.Range)
		}
		if !bytes.Equal(out, base[:len(out)]) {
			t.Fatalf("seed %d: surviving prefix modified", seed)
		}
	}
}

func TestFlipBitDamage(t *testing.T) {
	base := testData(1000)
	for seed := uint64(0); seed < 50; seed++ {
		out, f := New(seed).FlipBit(base, 32)
		if f.Range.Off < 32 || f.Range.Off >= 1000 || f.Range.Len != 1 {
			t.Fatalf("seed %d: fault %+v out of range", seed, f)
		}
		diff := 0
		for i := range out {
			if out[i] != base[i] {
				diff++
				if int64(i) != f.Range.Off || out[i] != base[i]^(1<<f.Bit) {
					t.Fatalf("seed %d: wrong byte damaged: %d vs fault %+v", seed, i, f)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("seed %d: %d bytes damaged", seed, diff)
		}
	}
}

func TestTearZeroDamage(t *testing.T) {
	base := testData(1000)
	for seed := uint64(0); seed < 50; seed++ {
		out, f := New(seed).TearZero(base, 50, 100)
		if f.Range.Off < 50 || f.Range.Len < 1 || f.Range.Len > 100 || f.Range.Off+f.Range.Len > 1000 {
			t.Fatalf("seed %d: fault %+v out of range", seed, f)
		}
		for i := int64(0); i < 1000; i++ {
			in := i >= f.Range.Off && i < f.Range.Off+f.Range.Len
			switch {
			case in && out[i] != 0:
				t.Fatalf("seed %d: byte %d inside tear not zeroed", seed, i)
			case !in && out[i] != base[i]:
				t.Fatalf("seed %d: byte %d outside tear modified", seed, i)
			}
		}
	}
}

func TestRangeOverlaps(t *testing.T) {
	r := Range{Off: 10, Len: 5} // [10, 15)
	cases := []struct {
		off, n int64
		want   bool
	}{
		{0, 10, false}, {0, 11, true}, {14, 1, true}, {15, 1, false},
		{12, 0, false}, {10, 5, true}, {0, 100, true},
	}
	for _, c := range cases {
		if got := r.Overlaps(c.off, c.n); got != c.want {
			t.Errorf("[10,15) overlaps [%d,+%d) = %v, want %v", c.off, c.n, got, c.want)
		}
	}
}

// TestBadSectorFile: reads clear of the poisoned range succeed with the
// right bytes; reads touching it fail with ErrBadSector on both the
// sequential and the positioned path.
func TestBadSectorFile(t *testing.T) {
	data := testData(256)
	f := NewBadSector(data, Range{Off: 100, Len: 10})

	got := make([]byte, 50)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:50]) {
		t.Fatal("clean ReadAt returned wrong bytes")
	}
	if _, err := f.ReadAt(got, 60); !errors.Is(err, ErrBadSector) {
		t.Fatalf("ReadAt over bad sector: %v", err)
	}
	if _, err := f.ReadAt(got, 105); !errors.Is(err, ErrBadSector) {
		t.Fatalf("ReadAt inside bad sector: %v", err)
	}
	if _, err := f.ReadAt(got, 110); err != nil {
		t.Fatalf("ReadAt after bad sector: %v", err)
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(f); !errors.Is(err, ErrBadSector) {
		t.Fatal("sequential read crossed the bad sector without error")
	}
}

// TestShortReaderBehaviorIdentity: reading through ShortReadSeeker with
// io.ReadFull must observe exactly the underlying bytes.
func TestShortReaderBehaviorIdentity(t *testing.T) {
	data := testData(4 << 10)
	sr := NewShortReader(bytes.NewReader(data), 99, 7)
	got := make([]byte, len(data))
	if _, err := io.ReadFull(sr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("short reads corrupted the stream")
	}
	if n, err := sr.Read(got[:1]); n != 0 || err != io.EOF {
		t.Fatalf("after EOF: n=%d err=%v", n, err)
	}
}

// TestTornWriter: bytes below the horizon land (including backward
// patches), bytes at or beyond it vanish while Write reports success.
func TestTornWriter(t *testing.T) {
	tw := NewTornWriter(10)
	if n, err := tw.Write([]byte("0123456789abcdef")); n != 16 || err != nil {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if got := string(tw.Bytes()); got != "0123456789" {
		t.Fatalf("content %q", got)
	}
	// A backward patch below the horizon must land.
	if _, err := tw.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	if got := string(tw.Bytes()); got != "01XY456789" {
		t.Fatalf("after patch: %q", got)
	}
	// A write spanning the horizon is applied only below it.
	if _, err := tw.Seek(8, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write([]byte("ZZZZ")); err != nil {
		t.Fatal(err)
	}
	if got := string(tw.Bytes()); got != "01XY4567ZZ" {
		t.Fatalf("after spanning write: %q", got)
	}
}
