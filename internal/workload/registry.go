// The workload registry: every shape registers a name, a doc line, and
// a typed parameter spec, and callers construct task bodies with
// Build(name, params). tracegen, utesweep, and cmd/experiments all go
// through this API, so a new workload is one Register call away from
// every tool — no per-workload flag switch anywhere.

package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"tracefw/internal/clock"
	"tracefw/internal/mpisim"
)

// Params maps parameter name → value for Build. Durations are expressed
// in microseconds (parameter names carry the _us suffix).
type Params map[string]int64

// ParamSpec is one typed workload parameter.
type ParamSpec struct {
	Name     string
	Doc      string
	Default  int64
	Min, Max int64 // inclusive bounds; Max 0 means math.MaxInt64
}

func (p ParamSpec) max() int64 {
	if p.Max == 0 {
		return math.MaxInt64
	}
	return p.Max
}

// Spec describes one registered workload.
type Spec struct {
	Name   string
	Doc    string
	Params []ParamSpec
	build  func(Params) func(*mpisim.Proc)
}

// Param returns the named parameter spec, if registered.
func (s *Spec) Param(name string) (ParamSpec, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

// Usage returns the workload's one-line signature for listings:
// "name(param=default, ...)".
func (s *Spec) Usage() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, p := range s.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", p.Name, p.Default)
	}
	b.WriteByte(')')
	return b.String()
}

var registry = map[string]*Spec{}

// Register adds a workload spec. It panics on duplicate names or
// malformed parameter specs (registration is init-time wiring).
func Register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate registration of " + s.Name)
	}
	for _, p := range s.Params {
		if p.Default < p.Min || p.Default > p.max() {
			panic(fmt.Sprintf("workload %s: default %d of %s outside [%d,%d]", s.Name, p.Default, p.Name, p.Min, p.max()))
		}
	}
	registry[s.Name] = s
}

// Names returns the registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the spec of a registered workload.
func Lookup(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Build constructs the named workload's task body. Unknown workload
// names, unknown parameter names, and out-of-bounds values are errors
// that name the valid choices — never silent defaults.
func Build(name string, params Params) (func(*mpisim.Proc), error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %s)", name, strings.Join(Names(), ", "))
	}
	filled := Params{}
	for _, p := range s.Params {
		filled[p.Name] = p.Default
	}
	for k, v := range params {
		p, ok := s.Param(k)
		if !ok {
			return nil, fmt.Errorf("workload %s: unknown parameter %q (usage: %s)", name, k, s.Usage())
		}
		if v < p.Min || v > p.max() {
			return nil, fmt.Errorf("workload %s: %s=%d outside [%d,%d]", name, k, v, p.Min, p.max())
		}
		filled[k] = v
	}
	return s.build(filled), nil
}

// ParseParams parses a comma-separated "k=v,k=v" parameter list (the
// CLI surface of Params). Empty input is an empty map.
func ParseParams(s string) (Params, error) {
	out := Params{}
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("workload: bad parameter %q (want name=value)", kv)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad value in %q: %v", kv, err)
		}
		out[k] = n
	}
	return out, nil
}

func us(v int64) clock.Time { return clock.Time(v) * clock.Microsecond }

func init() {
	Register(&Spec{
		Name: "ring",
		Doc:  "token ring exchange (the quickstart / Figure 5 workload)",
		Params: []ParamSpec{
			{Name: "iters", Doc: "ring round trips", Default: 5, Min: 1, Max: 1 << 20},
			{Name: "bytes", Doc: "message size", Default: 4096, Min: 1, Max: 1 << 30},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return Ring{Iters: int(p["iters"]), Bytes: int(p["bytes"])}.Main()
		},
	})
	Register(&Spec{
		Name: "stencil",
		Doc:  "1D halo exchange with nonblocking receives",
		Params: []ParamSpec{
			{Name: "steps", Doc: "time steps", Default: 10, Min: 1, Max: 1 << 20},
			{Name: "bytes", Doc: "bytes per halo face", Default: 8192, Min: 1, Max: 1 << 30},
			{Name: "work_us", Doc: "compute per step (µs)", Default: 2000, Min: 1, Max: 1 << 40},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return Stencil{Steps: int(p["steps"]), HaloBytes: int(p["bytes"]), Work: us(p["work_us"])}.Main()
		},
	})
	Register(&Spec{
		Name: "sppm",
		Doc:  "sPPM-like multi-threaded hydro (the paper's Figures 8/9 run)",
		Params: []ParamSpec{
			{Name: "iters", Doc: "outer iterations", Default: 8, Min: 1, Max: 1 << 20},
			{Name: "threads", Doc: "threads per task incl. main", Default: 4, Min: 1, Max: 64},
			{Name: "bytes", Doc: "halo exchange size", Default: 128 << 10, Min: 1, Max: 1 << 30},
			{Name: "work_us", Doc: "compute per thread per iteration (µs)", Default: 6000, Min: 1, Max: 1 << 40},
			{Name: "no_idle", Doc: "1 = give the figure's idle thread real work", Default: 0, Min: 0, Max: 1},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return SPPM{
				Iters: int(p["iters"]), ThreadsPerTask: int(p["threads"]),
				HaloBytes: int(p["bytes"]), Work: us(p["work_us"]),
				NoIdleThread: p["no_idle"] != 0,
			}.Main()
		},
	})
	Register(&Spec{
		Name: "flash",
		Doc:  "FLASH-like AMR phases: init / evolve+refine / terminate (Figure 7)",
		Params: []ParamSpec{
			{Name: "blocks", Doc: "AMR blocks per task", Default: 32, Min: 1, Max: 1 << 20},
			{Name: "iters", Doc: "evolution steps", Default: 20, Min: 1, Max: 1 << 20},
			{Name: "refine_each", Doc: "refinement every k steps", Default: 5, Min: 1, Max: 1 << 20},
			{Name: "quiet_us", Doc: "quiet evolution compute per step (µs)", Default: 10000, Min: 1, Max: 1 << 40},
			{Name: "bytes", Doc: "bytes per block surface", Default: 2048, Min: 1, Max: 1 << 30},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return Flash{
				Blocks: int(p["blocks"]), Iters: int(p["iters"]), RefineEach: int(p["refine_each"]),
				Quiet: us(p["quiet_us"]), BlockBytes: int(p["bytes"]),
			}.Main()
		},
	})
	Register(&Spec{
		Name: "storm",
		Doc:  "message storm scaling raw-event volume (the Table 1 load)",
		Params: []ParamSpec{
			{Name: "iters", Doc: "exchange rounds", Default: 100, Min: 1, Max: 1 << 24},
			{Name: "bytes", Doc: "message size", Default: 512, Min: 1, Max: 1 << 30},
			{Name: "threads", Doc: "extra worker threads per task (0 = none)", Default: 3, Min: 0, Max: 64},
		},
		build: func(p Params) func(*mpisim.Proc) {
			threads := int(p["threads"])
			if threads == 0 {
				threads = -1 // Storm's "no workers" sentinel
			}
			return Storm{Iters: int(p["iters"]), Bytes: int(p["bytes"]), Threads: threads}.Main()
		},
	})
	Register(&Spec{
		Name: "random",
		Doc:  "seeded pseudo-random SPMD phase mix (the property-test workhorse)",
		Params: []ParamSpec{
			{Name: "seed", Doc: "phase-script seed", Default: 0, Min: 0, Max: 0},
			{Name: "steps", Doc: "phases to execute", Default: 12, Min: 1, Max: 1 << 20},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return Random{Seed: uint64(p["seed"]), Steps: int(p["steps"])}.Main()
		},
	})
	Register(&Spec{
		Name: "imbalance",
		Doc:  "rank-skewed compute: per-step work grows linearly with rank",
		Params: []ParamSpec{
			{Name: "iters", Doc: "steps", Default: 10, Min: 1, Max: 1 << 20},
			{Name: "work_us", Doc: "base compute per step (µs)", Default: 4000, Min: 1, Max: 1 << 40},
			{Name: "skew_pct", Doc: "extra % of work on the highest rank", Default: 200, Min: 1, Max: 100000},
			{Name: "bytes", Doc: "halo bytes per step", Default: 4096, Min: 1, Max: 1 << 30},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return Imbalance{
				Iters: int(p["iters"]), Work: us(p["work_us"]),
				SkewPct: int(p["skew_pct"]), Bytes: int(p["bytes"]),
			}.Main()
		},
	})
	Register(&Spec{
		Name: "stragglers",
		Doc:  "slow-node injection: tasks on the first k nodes compute factor× slower",
		Params: []ParamSpec{
			{Name: "iters", Doc: "steps", Default: 10, Min: 1, Max: 1 << 20},
			{Name: "work_us", Doc: "compute per step on a healthy node (µs)", Default: 4000, Min: 1, Max: 1 << 40},
			{Name: "slow_nodes", Doc: "straggler node count (from node 0)", Default: 1, Min: 1, Max: 1 << 20},
			{Name: "slow_factor", Doc: "compute multiplier on stragglers", Default: 4, Min: 2, Max: 100},
			{Name: "bytes", Doc: "halo bytes per step", Default: 8192, Min: 1, Max: 1 << 30},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return Straggler{
				Iters: int(p["iters"]), Work: us(p["work_us"]),
				Slow: int(p["slow_nodes"]), Factor: int(p["slow_factor"]), Bytes: int(p["bytes"]),
			}.Main()
		},
	})
	Register(&Spec{
		Name: "bursty",
		Doc:  "staggered task start: work arrives in waves, not all at once",
		Params: []ParamSpec{
			{Name: "waves", Doc: "arrival waves", Default: 4, Min: 1, Max: 1 << 16},
			{Name: "gap_us", Doc: "inter-wave gap (µs)", Default: 20000, Min: 1, Max: 1 << 40},
			{Name: "iters", Doc: "steps after arrival", Default: 6, Min: 1, Max: 1 << 20},
			{Name: "work_us", Doc: "compute per step (µs)", Default: 2000, Min: 1, Max: 1 << 40},
			{Name: "bytes", Doc: "message bytes per step", Default: 2048, Min: 1, Max: 1 << 30},
		},
		build: func(p Params) func(*mpisim.Proc) {
			return Bursty{
				Waves: int(p["waves"]), Gap: us(p["gap_us"]),
				Iters: int(p["iters"]), Work: us(p["work_us"]), Bytes: int(p["bytes"]),
			}.Main()
		},
	})
}
