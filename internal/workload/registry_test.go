package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"tracefw/internal/cluster"
	"tracefw/internal/mpisim"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"ring", "stencil", "sppm", "flash", "storm", "random", "imbalance", "stragglers", "bursty"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name   string
		params Params
		want   string // substring of the error
	}{
		{"nope", nil, "unknown workload"},
		{"ring", Params{"wat": 1}, "unknown parameter"},
		{"ring", Params{"iters": 0}, "outside"},
		{"ring", Params{"iters": -3}, "outside"},
		{"stragglers", Params{"slow_factor": 1}, "outside"},
		{"sppm", Params{"threads": 65}, "outside"},
	}
	for _, c := range cases {
		_, err := Build(c.name, c.params)
		if err == nil {
			t.Errorf("Build(%q, %v): no error", c.name, c.params)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Build(%q, %v): error %q lacks %q", c.name, c.params, err, c.want)
		}
	}
}

func TestBuildDefaultsMatchStructs(t *testing.T) {
	// A registry build with no params must produce the same trace as the
	// zero-value struct: the registry defaults ARE the struct defaults.
	fromRegistry, err := Build("ring", nil)
	if err != nil {
		t.Fatal(err)
	}
	a := runTrace(t, fromRegistry)
	b := runTrace(t, Ring{}.Main())
	if !bytes.Equal(a, b) {
		t.Fatal("registry ring with defaults differs from Ring{}.Main()")
	}
}

func TestParseParams(t *testing.T) {
	p, err := ParseParams("iters=3, bytes=128")
	if err != nil {
		t.Fatal(err)
	}
	if p["iters"] != 3 || p["bytes"] != 128 {
		t.Fatalf("got %v", p)
	}
	if _, err := ParseParams("iters"); err == nil {
		t.Fatal("missing value accepted")
	}
	if _, err := ParseParams("iters=x"); err == nil {
		t.Fatal("non-integer accepted")
	}
}

// TestShapesRun smoke-runs every registered workload at default
// parameters on a small machine: the body must terminate and produce a
// non-empty trace.
func TestShapesRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			main, err := Build(name, nil)
			if err != nil {
				t.Fatal(err)
			}
			if out := runTrace(t, main); len(out) == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

func runTrace(t *testing.T, main func(*mpisim.Proc)) []byte {
	t.Helper()
	const nodes = 2
	bufs := make([]*bytes.Buffer, nodes)
	ws := make([]io.Writer, nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	w, err := mpisim.New(mpisim.Config{
		Cluster:      cluster.Config{Nodes: nodes, CPUsPerNode: 2, Seed: 7},
		TasksPerNode: 1,
	}, ws)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(main)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, b := range bufs {
		all = append(all, b.Bytes()...)
	}
	return all
}
