// Scenario-sweep workload shapes: the pathologies a scheduler sweep
// wants to compare policies against — rank-skewed compute (imbalance),
// slow-node injection (stragglers), and staggered task start (bursty
// arrivals). All three run on the plain mpisim substrate: skew is extra
// Compute, a straggler is a per-node compute multiplier, and a burst
// wave is a Sleep before the first iteration.

package workload

import (
	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/mpisim"
)

// Imbalance is a bulk-synchronous loop whose per-rank compute grows
// linearly with rank: rank 0 does Work per step, the highest rank does
// Work × (1 + SkewPct/100). The allreduce at each step turns the skew
// into wait time on the fast ranks — the canonical load-imbalance
// signature in the load-balance stats table.
type Imbalance struct {
	Iters   int        // steps (default 10)
	Work    clock.Time // base compute per step (default 4ms)
	SkewPct int        // extra % of Work on the highest rank (default 200)
	Bytes   int        // halo bytes per step (default 4096)
}

// Main returns the task body.
func (w Imbalance) Main() func(*mpisim.Proc) {
	iters, work, skew, bytes := w.Iters, w.Work, w.SkewPct, w.Bytes
	if iters <= 0 {
		iters = 10
	}
	if work <= 0 {
		work = 4 * clock.Millisecond
	}
	if skew <= 0 {
		skew = 200
	}
	if bytes <= 0 {
		bytes = 4096
	}
	return func(p *mpisim.Proc) {
		n := p.Size()
		mine := work
		if n > 1 {
			mine += work * clock.Time(skew) * clock.Time(p.Rank()) / clock.Time(100*(n-1))
		}
		m := p.DefineMarker("Skewed Step")
		for i := 0; i < iters; i++ {
			p.MarkerBegin(m)
			p.Compute(mine)
			if n > 1 {
				next := (p.Rank() + 1) % n
				prev := (p.Rank() - 1 + n) % n
				rr := p.Irecv(int32(prev), int32(i))
				p.Send(next, int32(i), bytes)
				p.Wait(rr)
			}
			p.MarkerEnd(m)
			p.Allreduce(8)
		}
		p.Barrier()
	}
}

// Straggler is a uniform bulk-synchronous loop where tasks on the first
// Slow nodes compute Factor× slower — the slow-node injection scenario.
// Every rank does identical logical work; the stragglers stretch each
// step, and policies that overlap or oversubscribe can hide part of the
// stall.
type Straggler struct {
	Iters  int        // steps (default 10)
	Work   clock.Time // compute per step on a healthy node (default 4ms)
	Slow   int        // number of straggler nodes, counted from node 0 (default 1)
	Factor int        // compute multiplier on straggler nodes (default 4)
	Bytes  int        // halo bytes per step (default 8192)
}

// Main returns the task body.
func (w Straggler) Main() func(*mpisim.Proc) {
	iters, work, slow, factor, bytes := w.Iters, w.Work, w.Slow, w.Factor, w.Bytes
	if iters <= 0 {
		iters = 10
	}
	if work <= 0 {
		work = 4 * clock.Millisecond
	}
	if slow <= 0 {
		slow = 1
	}
	if factor <= 1 {
		factor = 4
	}
	if bytes <= 0 {
		bytes = 8192
	}
	return func(p *mpisim.Proc) {
		mine := work
		if p.Node() < slow {
			mine = work * clock.Time(factor)
		}
		n := p.Size()
		m := p.DefineMarker("Straggler Step")
		for i := 0; i < iters; i++ {
			p.MarkerBegin(m)
			p.Compute(mine)
			if n > 1 {
				next := (p.Rank() + 1) % n
				prev := (p.Rank() - 1 + n) % n
				rr := p.Irecv(int32(prev), int32(i))
				p.Send(next, int32(i), bytes)
				p.Wait(rr)
			}
			p.MarkerEnd(m)
			if i%3 == 2 {
				p.Allreduce(8)
			}
		}
		p.Barrier()
	}
}

// Bursty staggers task arrival: rank r sleeps (r mod Waves) × Gap before
// its first iteration, so work arrives in Waves bursts instead of all at
// once — the arrival pattern that separates queueing policies. Each task
// then runs a compute/exchange loop with a helper thread to generate
// dispatch pressure, and the ranks only synchronize at the end.
type Bursty struct {
	Waves int        // arrival waves (default 4)
	Gap   clock.Time // inter-wave gap (default 20ms)
	Iters int        // steps after arrival (default 6)
	Work  clock.Time // compute per step (default 2ms)
	Bytes int        // message bytes per step (default 2048)
}

// Main returns the task body.
func (w Bursty) Main() func(*mpisim.Proc) {
	waves, gap, iters, work, bytes := w.Waves, w.Gap, w.Iters, w.Work, w.Bytes
	if waves <= 0 {
		waves = 4
	}
	if gap <= 0 {
		gap = 20 * clock.Millisecond
	}
	if iters <= 0 {
		iters = 6
	}
	if work <= 0 {
		work = 2 * clock.Millisecond
	}
	if bytes <= 0 {
		bytes = 2048
	}
	return func(p *mpisim.Proc) {
		n := p.Size()
		wave := p.Rank() % waves
		if wave > 0 {
			p.Sleep(clock.Time(wave) * gap)
		}
		// A helper thread per task keeps the node's ready queue contended
		// while the main thread is in MPI calls.
		stop := make([]bool, 1)
		p.Spawn(events.ThreadUser, func(q *mpisim.Proc) {
			for !stop[0] {
				q.Compute(work / 2)
				q.Sleep(work / 4)
			}
		})
		m := p.DefineMarker("Burst Work")
		p.MarkerBegin(m)
		for i := 0; i < iters; i++ {
			p.Compute(work)
			if n > 1 {
				peer := p.Rank() ^ 1
				if peer < n && peer != p.Rank() {
					p.Sendrecv(peer, int32(i), bytes, int32(peer), int32(i))
				}
			}
		}
		p.MarkerEnd(m)
		stop[0] = true
		p.Barrier()
	}
}
