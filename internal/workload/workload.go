// Package workload provides the synthetic parallel applications that
// drive the tracing framework's experiments: a quickstart ring exchange,
// a 2D stencil halo exchange, an sPPM-like hydrodynamics skeleton
// matching the paper's Figure 8/9 configuration (multi-threaded tasks
// with a single MPI thread), a FLASH-like adaptive-mesh skeleton with
// the init / iterate / terminate phase structure of Figure 7, and a
// parameterizable message storm used to scale raw-event counts for the
// Table 1 utility-speed experiment.
//
// All workloads are deterministic for a given configuration: any
// pseudo-randomness comes from xrand seeded with the task rank.
package workload

import (
	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/mpisim"
	"tracefw/internal/xrand"
)

// Ring passes a token around the task ring: the quickstart workload and
// the paper's Figure 5 byte-counting example.
type Ring struct {
	Iters int // ring round trips (default 5)
	Bytes int // message size (default 4096)
}

// Main returns the task body.
func (r Ring) Main() func(*mpisim.Proc) {
	iters, bytes := r.Iters, r.Bytes
	if iters <= 0 {
		iters = 5
	}
	if bytes <= 0 {
		bytes = 4096
	}
	return func(p *mpisim.Proc) {
		n := p.Size()
		if n == 1 {
			for i := 0; i < iters; i++ {
				p.Compute(clock.Millisecond)
			}
			return
		}
		next := (p.Rank() + 1) % n
		prev := (p.Rank() - 1 + n) % n
		m := p.DefineMarker("Ring Loop")
		p.MarkerBegin(m)
		for i := 0; i < iters; i++ {
			p.Compute(500 * clock.Microsecond)
			if p.Rank() == 0 {
				p.Send(next, int32(i), bytes)
				p.Recv(int32(prev), int32(i))
			} else {
				p.Recv(int32(prev), int32(i))
				p.Send(next, int32(i), bytes)
			}
		}
		p.MarkerEnd(m)
		p.Barrier()
	}
}

// Stencil is a 1D-decomposed halo exchange with nonblocking receives —
// the communication skeleton of regular-grid solvers.
type Stencil struct {
	Steps     int        // time steps (default 10)
	HaloBytes int        // bytes per halo face (default 8192)
	Work      clock.Time // compute per step (default 2ms)
}

// Main returns the task body.
func (s Stencil) Main() func(*mpisim.Proc) {
	steps, halo, work := s.Steps, s.HaloBytes, s.Work
	if steps <= 0 {
		steps = 10
	}
	if halo <= 0 {
		halo = 8192
	}
	if work <= 0 {
		work = 2 * clock.Millisecond
	}
	return func(p *mpisim.Proc) {
		n := p.Size()
		left, right := p.Rank()-1, p.Rank()+1
		m := p.DefineMarker("Stencil Step")
		for step := 0; step < steps; step++ {
			p.MarkerBegin(m)
			var reqs []*mpisim.Request
			tag := int32(step)
			if left >= 0 {
				reqs = append(reqs, p.Irecv(int32(left), tag))
			}
			if right < n {
				reqs = append(reqs, p.Irecv(int32(right), tag))
			}
			if left >= 0 {
				reqs = append(reqs, p.Isend(left, tag, halo))
			}
			if right < n {
				reqs = append(reqs, p.Isend(right, tag, halo))
			}
			p.Compute(work)
			if len(reqs) > 0 {
				// Waitall's vector field carries the receive envelopes, so
				// message arrows still match (paper §3.1's send/receive
				// matching by sequence number).
				p.Waitall(reqs...)
			}
			p.MarkerEnd(m)
			if step%5 == 4 {
				p.Allreduce(8) // residual norm
			}
		}
		p.Barrier()
	}
}

// SPPM mirrors the paper's ASCI sPPM benchmark run of Figures 8 and 9:
// each task runs ThreadsPerTask threads of which only the main thread
// makes MPI calls; worker threads compute in bursts; one thread stays
// idle (the paper: "one can see ... that one thread is idle during this
// part of the computation").
type SPPM struct {
	Iters          int        // outer iterations (default 8)
	ThreadsPerTask int        // threads per task incl. main (default 4)
	HaloBytes      int        // halo exchange size (default 128 KiB)
	Work           clock.Time // compute per thread per iteration (default 6ms)
	NoIdleThread   bool       // give the last worker real work too (the figure's run keeps it idle)
}

// Main returns the task body.
func (s SPPM) Main() func(*mpisim.Proc) {
	iters, tpt, halo, work := s.Iters, s.ThreadsPerTask, s.HaloBytes, s.Work
	if iters <= 0 {
		iters = 8
	}
	if tpt <= 0 {
		tpt = 4
	}
	if halo <= 0 {
		halo = 128 << 10
	}
	if work <= 0 {
		work = 6 * clock.Millisecond
	}
	idle := !s.NoIdleThread
	return func(p *mpisim.Proc) {
		// Worker threads: the last one stays idle when configured.
		for w := 0; w < tpt-1; w++ {
			lazy := idle && w == tpt-2
			p.Spawn(events.ThreadUser, func(q *mpisim.Proc) {
				if lazy {
					q.Sleep(clock.Time(iters) * (work + 2*clock.Millisecond))
					return
				}
				for i := 0; i < iters; i++ {
					q.Compute(work)
					q.Sleep(2 * clock.Millisecond) // waiting for next sweep
				}
			})
		}
		n := p.Size()
		m := p.DefineMarker("Hydro Sweep")
		for i := 0; i < iters; i++ {
			p.MarkerBegin(m)
			p.Compute(work / 2)
			// Halo exchange along the task ring, like sPPM's pencil
			// decomposition neighbours.
			if n > 1 {
				next := (p.Rank() + 1) % n
				prev := (p.Rank() - 1 + n) % n
				rr := p.Irecv(int32(prev), int32(i))
				p.Send(next, int32(i), halo)
				p.Wait(rr)
			}
			p.Compute(work / 2)
			p.MarkerEnd(m)
			p.Allreduce(64) // timestep control
		}
		p.Barrier()
	}
}

// Flash mirrors the FLASH adaptive-mesh astrophysics run of Figure 7:
// a marked initialization phase (broadcast of the setup), an iteration
// phase whose cost varies with periodic "refinement" bursts separated by
// quiet evolution stretches, and a marked termination (checkpoint
// gather) phase — the init / typical-iteration / termination structure
// visible in the paper's preview.
type Flash struct {
	Blocks     int        // AMR blocks per task (default 32)
	Iters      int        // evolution steps (default 20)
	RefineEach int        // refinement every k steps (default 5)
	Quiet      clock.Time // quiet evolution compute per step (default 10ms)
	BlockBytes int        // bytes exchanged per block surface (default 2048)
}

// Main returns the task body.
func (f Flash) Main() func(*mpisim.Proc) {
	blocks, iters, refineEach, quiet, bb := f.Blocks, f.Iters, f.RefineEach, f.Quiet, f.BlockBytes
	if blocks <= 0 {
		blocks = 32
	}
	if iters <= 0 {
		iters = 20
	}
	if refineEach <= 0 {
		refineEach = 5
	}
	if quiet <= 0 {
		quiet = 10 * clock.Millisecond
	}
	if bb <= 0 {
		bb = 2048
	}
	return func(p *mpisim.Proc) {
		rng := xrand.New(uint64(p.Rank()) + 1)
		init := p.DefineMarker("Initialization")
		evolve := p.DefineMarker("Evolution")
		refine := p.DefineMarker("Refinement")
		final := p.DefineMarker("Termination")

		p.InMarker(init, func() {
			if p.Rank() == 0 {
				p.FileRead(256 << 10) // read the initial model from disk
			}
			p.Bcast(0, 64<<10) // runtime parameters + initial model
			p.Compute(20 * clock.Millisecond)
			p.Scatter(0, blocks*bb)
			p.Barrier()
		})

		n := p.Size()
		for i := 0; i < iters; i++ {
			p.InMarker(evolve, func() {
				p.Compute(quiet + clock.Time(rng.Int63n(int64(quiet/4+1))))
				// Guard-cell exchange with the ring neighbours.
				if n > 1 {
					next := (p.Rank() + 1) % n
					prev := (p.Rank() - 1 + n) % n
					rr := p.Irecv(int32(prev), int32(i))
					p.Send(next, int32(i), blocks*bb/4)
					p.Wait(rr)
				}
				p.Allreduce(8) // dt
			})
			if i%refineEach == refineEach-1 {
				p.InMarker(refine, func() {
					// Re-grid: heavy all-to-all block redistribution with
					// the paging cost of touching freshly moved blocks.
					p.Alltoall(blocks * bb / 2)
					for pm := 0; pm < 3; pm++ {
						p.PageMiss(0x7f0000000000 + uint64(p.Rank())<<16 + uint64(i*4+pm)*4096)
					}
					p.Compute(quiet / 2)
					p.Allgather(256)
				})
			}
		}

		p.InMarker(final, func() {
			p.Compute(15 * clock.Millisecond)
			p.Gather(0, blocks*bb) // checkpoint
			if p.Rank() == 0 {
				p.FileWrite(n * blocks * bb) // write the checkpoint to disk
			}
			p.Reduce(0, 1024)
			p.Barrier()
		})
	}
}

// Storm generates a controllable volume of raw trace events for the
// Table 1 utility-speed experiment: every task exchanges messages with
// varying partners while worker threads create dispatch activity. Events
// scale linearly with Iters.
type Storm struct {
	Iters   int // exchange rounds (required)
	Bytes   int // message size (default 512)
	Threads int // extra worker threads per task (default 3, paper's 4-total; -1 for none)
}

// Main returns the task body.
func (s Storm) Main() func(*mpisim.Proc) {
	iters, bytes, threads := s.Iters, s.Bytes, s.Threads
	if iters <= 0 {
		iters = 100
	}
	if bytes <= 0 {
		bytes = 512
	}
	if threads == 0 {
		threads = 3
	} else if threads < 0 {
		threads = 0
	}
	return func(p *mpisim.Proc) {
		n := p.Size()
		stop := make([]bool, 1)
		for w := 0; w < threads; w++ {
			p.Spawn(events.ThreadUser, func(q *mpisim.Proc) {
				for i := 0; !stop[0]; i++ {
					q.Compute(200 * clock.Microsecond)
					q.Sleep(100 * clock.Microsecond)
				}
			})
		}
		m := p.DefineMarker("Storm Phase")
		p.MarkerBegin(m)
		for i := 0; i < iters; i++ {
			p.Compute(50 * clock.Microsecond)
			if n > 1 {
				stride := 1 + i%(n-1)
				dst := (p.Rank() + stride) % n
				src := (p.Rank() - stride + n) % n
				rr := p.Irecv(int32(src), int32(i))
				p.Send(dst, int32(i), bytes)
				p.Wait(rr)
			} else {
				p.Barrier()
			}
		}
		p.MarkerEnd(m)
		p.Barrier()
		stop[0] = true
	}
}

// Random generates a deterministic pseudo-random SPMD workload: every
// task executes the same seeded sequence of phases (compute bursts,
// ring exchanges, pairwise sendrecv, nonblocking halo patterns,
// collectives, markers, I/O), so communication always matches and the
// program cannot deadlock. It is the pipeline property tests' workhorse:
// one seed, one reproducible trace.
type Random struct {
	Seed  uint64
	Steps int // phases to execute (default 12)
}

// Main returns the task body.
func (r Random) Main() func(*mpisim.Proc) {
	steps := r.Steps
	if steps <= 0 {
		steps = 12
	}
	seed := r.Seed
	return func(p *mpisim.Proc) {
		// Every task derives the same phase sequence from the seed.
		script := xrand.New(seed)
		// Task-private randomness for compute jitter.
		local := xrand.New(seed ^ uint64(p.Rank())<<32 ^ 0x9e37)
		n := p.Size()
		m := p.DefineMarker("Random Phase")
		for step := 0; step < steps; step++ {
			op := script.Intn(8)
			bytes := 64 << uint(script.Intn(8)) // 64B .. 8KiB
			big := script.Intn(4) == 0
			if big {
				bytes = 128 << 10 // force rendezvous sometimes
			}
			tag := int32(step)
			p.Compute(clock.Time(local.Intn(int(2 * clock.Millisecond))))
			switch op {
			case 0:
				p.Barrier()
			case 1:
				p.Allreduce(bytes)
			case 2: // ring shift
				if n > 1 {
					next := (p.Rank() + 1) % n
					prev := (p.Rank() - 1 + n) % n
					rr := p.Irecv(int32(prev), tag)
					p.Send(next, tag, bytes)
					p.Wait(rr)
				}
			case 3: // pairwise sendrecv with the XOR partner
				peer := p.Rank() ^ 1
				if peer < n && peer != p.Rank() {
					p.Sendrecv(peer, tag, bytes, int32(peer), tag)
				} else {
					p.Compute(clock.Millisecond / 4)
				}
			case 4: // halo with Waitall
				if n > 1 {
					next := (p.Rank() + 1) % n
					prev := (p.Rank() - 1 + n) % n
					rr := p.Irecv(int32(prev), tag)
					sr := p.Isend(next, tag, bytes)
					p.Compute(clock.Time(local.Intn(int(clock.Millisecond))))
					p.Waitall(rr, sr)
				}
			case 5: // marked compute region
				p.InMarker(m, func() {
					p.Compute(clock.Time(local.Intn(int(clock.Millisecond))) + clock.Millisecond/2)
				})
			case 6:
				p.Alltoall(bytes / 4)
			case 7: // occasional I/O and paging
				if script.Intn(2) == 0 && p.Rank() == 0 {
					p.FileWrite(bytes * 8)
				}
				p.PageMiss(0x700000000000 + uint64(step)<<12)
			}
		}
		p.Barrier()
	}
}
