package workload_test

import (
	"testing"

	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/profile"
	"tracefw/internal/render"
	"tracefw/internal/testutil"
	"tracefw/internal/workload"
)

// runAndConvert runs a workload and returns the merged interval file.
func runAndConvert(t *testing.T, sh testutil.Shape, main func(*mpisim.Proc)) *interval.File {
	t.Helper()
	mf, _ := testutil.Pipeline(t, sh, merge.Options{}, main)
	return mf
}

func countCalls(t *testing.T, mf *interval.File, ty events.Type) int {
	t.Helper()
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range recs {
		if r.Type == ty && (r.Bebits == profile.Begin || r.Bebits == profile.Complete) {
			n++
		}
	}
	return n
}

func TestRingCompletes(t *testing.T) {
	sh := testutil.Shape{Nodes: 4, TasksPerNode: 1, CPUs: 1, Seed: 1}
	mf := runAndConvert(t, sh, workload.Ring{Iters: 3, Bytes: 1024}.Main())
	// Every task sends 3 times.
	if got := countCalls(t, mf, events.EvMPISend); got != 12 {
		t.Fatalf("sends: %d, want 12", got)
	}
	if got := countCalls(t, mf, events.EvMPIRecv); got != 12 {
		t.Fatalf("recvs: %d, want 12", got)
	}
}

func TestRingSingleTask(t *testing.T) {
	sh := testutil.Shape{Nodes: 1, TasksPerNode: 1, CPUs: 1, Seed: 1}
	mf := runAndConvert(t, sh, workload.Ring{Iters: 2}.Main())
	if got := countCalls(t, mf, events.EvMPISend); got != 0 {
		t.Fatalf("single-task ring sent messages: %d", got)
	}
}

func TestStencilCompletes(t *testing.T) {
	sh := testutil.Shape{Nodes: 3, TasksPerNode: 1, CPUs: 2, Seed: 2}
	mf := runAndConvert(t, sh, workload.Stencil{Steps: 10}.Main())
	// Interior task exchanges 2 halos per step; edges 1.
	if got := countCalls(t, mf, events.EvMPIIsend); got != 10*(1+2+1) {
		t.Fatalf("isends: %d, want 40", got)
	}
	// Allreduce every 5 steps: 2 × 3 tasks.
	if got := countCalls(t, mf, events.EvMPIAllreduce); got != 6 {
		t.Fatalf("allreduces: %d, want 6", got)
	}
}

func TestSPPMShape(t *testing.T) {
	// The paper's configuration scaled down: 2 nodes, 4 threads per task,
	// one MPI thread.
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 4, Seed: 3}
	mf := runAndConvert(t, sh, workload.SPPM{Iters: 4, ThreadsPerTask: 4}.Main())
	if len(mf.Header.Threads) != 8 {
		t.Fatalf("threads: %d, want 8", len(mf.Header.Threads))
	}
	// Only the main thread on each node cuts MPI records.
	recs, _ := mf.Scan().All()
	mpiThreads := map[[2]uint16]bool{}
	for _, r := range recs {
		if events.IsMPI(r.Type) {
			mpiThreads[[2]uint16{r.Node, r.Thread}] = true
		}
	}
	if len(mpiThreads) != 2 {
		t.Fatalf("MPI activity on %d threads, want 2 (one per task)", len(mpiThreads))
	}
	// The idle thread shows (almost) no activity: its busy fraction in a
	// thread-activity view is far below the workers'.
	d, err := render.BuildDiagram(mf, render.ThreadActivity, render.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr := d.BusyFraction()
	low := 0
	for _, f := range fr {
		if f < 0.05 {
			low++
		}
	}
	if low < 2 { // one idle thread per task
		t.Fatalf("no idle threads visible: %v", fr)
	}
}

func TestFlashPhases(t *testing.T) {
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 2, CPUs: 2, Seed: 4}
	mf := runAndConvert(t, sh, workload.Flash{Iters: 10, RefineEach: 5}.Main())
	names := map[string]bool{}
	for _, s := range mf.Header.Markers {
		names[s] = true
	}
	for _, want := range []string{"Initialization", "Evolution", "Refinement", "Termination"} {
		if !names[want] {
			t.Fatalf("marker %q missing: %v", want, mf.Header.Markers)
		}
	}
	// Refinement every 5 steps over 10 steps: 2 refinements × 4 tasks of
	// Alltoall.
	if got := countCalls(t, mf, events.EvMPIAlltoall); got != 8 {
		t.Fatalf("alltoalls: %d, want 8", got)
	}
	if got := countCalls(t, mf, events.EvMPIBcast); got != 4 {
		t.Fatalf("bcasts: %d, want 4", got)
	}
	if got := countCalls(t, mf, events.EvMPIGather); got != 4 {
		t.Fatalf("gathers: %d, want 4", got)
	}
}

func TestStormEventScaling(t *testing.T) {
	// Raw event counts must grow roughly linearly with Iters — the knob
	// the Table 1 experiment turns.
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 2, CPUs: 2, Seed: 5}
	countEvents := func(iters int) int64 {
		raws := testutil.RunWorkload(t, sh, workload.Storm{Iters: iters}.Main())
		_, results, err := convert.ConvertBuffers(raws, convert.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		for _, r := range results {
			n += r.Events
		}
		return n
	}
	e1 := countEvents(50)
	e2 := countEvents(200)
	if e1 == 0 {
		t.Fatal("no events")
	}
	ratio := float64(e2) / float64(e1)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("event scaling not ~linear: %d -> %d (ratio %.2f)", e1, e2, ratio)
	}
}

func TestStormNoWorkers(t *testing.T) {
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 1, Seed: 6}
	mf := runAndConvert(t, sh, workload.Storm{Iters: 10, Threads: -1}.Main())
	if len(mf.Header.Threads) != 2 {
		t.Fatalf("threads: %d, want 2", len(mf.Header.Threads))
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 2, CPUs: 2, Seed: 7}
	for name, main := range map[string]func(*mpisim.Proc){
		"ring":    workload.Ring{Iters: 3}.Main(),
		"stencil": workload.Stencil{Steps: 4}.Main(),
		"sppm":    workload.SPPM{Iters: 3}.Main(),
		"flash":   workload.Flash{Iters: 5}.Main(),
		"storm":   workload.Storm{Iters: 20}.Main(),
	} {
		a := testutil.RunWorkload(t, sh, main)
		b := testutil.RunWorkload(t, sh, main)
		for i := range a {
			if string(a[i]) != string(b[i]) {
				t.Fatalf("%s: node %d traces differ between runs", name, i)
			}
		}
	}
}
