package stats

// The columnar generation path: frames decode into pooled
// interval.Batch columns (never materializing records), compiled
// kernels evaluate whole frames at a time, and per-frame partial groups
// merge in frame order — the same reduce the scalar path uses, so float
// summation order and therefore TSV bytes are identical.

import (
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
)

func generateColumnar(prog *compiledProgram, specs []*TableSpec, files []*interval.File, opts Options, tStart, tEnd clock.Time) ([]*Table, error) {
	groups := make([]map[string]*group, len(specs))
	for i := range groups {
		groups[i] = make(map[string]*group)
	}
	skipped := make([]int64, len(specs))

	// One executor per worker, pooled: its kernel scratch buffers grow
	// to the largest frame once and are reused for every frame after.
	pool := sync.Pool{New: func() any { return prog.newExec(tStart, tEnd) }}

	mopts := interval.MapOptions{Parallel: opts.Parallel, Window: opts.Window, Lo: opts.Lo, Hi: opts.Hi, Context: opts.Context}
	err := interval.MapFilesBatches(files, mopts,
		func(_ int, fe interval.FrameEntry, b *interval.Batch) (*specPartial, error) {
			x := pool.Get().(*kexec)
			defer pool.Put(x)
			x.bind(b)
			// Batch-level pruning from directory aggregates: a frame that
			// lies fully inside the window (or any frame when unwindowed)
			// selects every row, so no per-row bitmap test is needed.
			// Fully-outside frames were never selected by the engine.
			sel := x.mbuf(prog.selSlot)
			if opts.Window && !(fe.Start >= opts.Lo && fe.End <= opts.Hi) {
				maskZero(sel)
				for i := 0; i < b.N; i++ {
					if b.Start[i]+b.Dura[i] >= opts.Lo && b.Start[i] <= opts.Hi {
						sel[i>>6] |= 1 << uint(i&63)
					}
				}
			} else {
				maskOnes(sel, b.N)
			}
			sp := &specPartial{pg: make([]map[string]*group, len(specs)), skipped: make([]int64, len(specs))}
			for si, ct := range prog.tables {
				sp.pg[si] = make(map[string]*group)
				sk, err := ct.run(x, sel, sp.pg[si])
				if err != nil {
					return nil, err
				}
				sp.skipped[si] = sk
			}
			return sp, nil
		},
		func(_ int, _ interval.FrameEntry, sp *specPartial) error {
			for si := range specs {
				mergeGroups(groups[si], sp.pg[si])
				skipped[si] += sp.skipped[si]
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return buildTables(specs, groups, skipped, true), nil
}
