package stats

// The kernel compiler lowers stats expressions (the parse tree in
// parse.go) into vectorized kernels over columnar batches
// (interval.Batch). A kernel evaluates one expression node for a whole
// frame at a time: per-column loops writing into reusable scratch
// buffers, with selection bitmaps standing in for the scalar
// evaluator's lazy control flow.
//
// The contract is byte-identity with the record-at-a-time evaluator on
// every expression the compiler accepts:
//
//   - Values are computed with the same float64 operations in the same
//     per-record order, so sums, keys, and TSV text match bit for bit.
//   - Runtime errors (division by zero, bin() argument checks, floor()
//     on a skip) stay lazy: a kernel raises them only for rows the
//     scalar evaluator would actually have reached, which the selection
//     bitmap tracks through short-circuit && / || exactly.
//   - errSkip becomes a per-row skip bitmap. Skip bitmaps are
//     row-static — determined by record contents alone, never by the
//     selection — so composing them through nested operators is
//     deterministic.
//
// Anything the compiler cannot prove equivalent (markername, string
// concatenation, mixed string/number arithmetic, unknown functions,
// wrong arities) is not lowered: compileProgram reports failure and the
// caller falls back to the scalar evaluator, preserving that path's
// exact runtime behavior including its lazily raised errors.

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
)

// kslots hands out scratch-buffer indices during compilation. Every
// kernel node owns fixed slots into the executor's buffer tables, so
// evaluation never allocates once the buffers have grown to frame size.
type kslots struct{ nf, ns, nm int }

func (s *kslots) f() int   { s.nf++; return s.nf - 1 }
func (s *kslots) str() int { s.ns++; return s.ns - 1 }
func (s *kslots) m() int   { s.nm++; return s.nm - 1 }

// kres is one kernel's result for a frame: a constant, or a value
// column, plus an optional skip bitmap marking rows that lack a
// referenced field (the vectorized errSkip). Values at skipped rows are
// undefined. Skip bitmaps cover all rows of the frame, not just
// selected ones; consumers intersect with their selection.
type kres struct {
	konst bool
	str   bool
	cf    float64
	cs    string
	f     []float64
	s     []string
	skip  []uint64
}

func (r *kres) fAt(i int) float64 {
	if r.konst {
		return r.cf
	}
	return r.f[i]
}

func (r *kres) sAt(i int) string {
	if r.konst {
		return r.cs
	}
	return r.s[i]
}

func (r *kres) truthAt(i int) bool {
	if r.str {
		return r.sAt(i) != ""
	}
	return r.fAt(i) != 0
}

// kernel is one compiled expression node.
type kernel interface {
	isStr() bool
	// eval computes the node over the frame bound to x. sel marks the
	// rows the scalar evaluator would reach; it gates runtime error
	// checks and short-circuit laziness, but value columns may be
	// computed for all rows (junk at unreached rows is harmless — those
	// rows are never consumed).
	eval(x *kexec, sel []uint64) (kres, error)
}

// kexec is the per-worker execution state: the bound batch and the
// scratch buffer tables the compiled kernels index into. One kexec is
// reused across frames (sync.Pool), so steady-state evaluation does not
// allocate.
type kexec struct {
	n, nw  int // rows, bitmap words
	b      *interval.Batch
	tStart clock.Time
	tEnd   clock.Time
	f      [][]float64
	s      [][]string
	m      [][]uint64
	xres   []kres
	yres   []kres
	key    []byte
}

func (p *compiledProgram) newExec(tStart, tEnd clock.Time) *kexec {
	return &kexec{
		tStart: tStart, tEnd: tEnd,
		f:    make([][]float64, p.sl.nf),
		s:    make([][]string, p.sl.ns),
		m:    make([][]uint64, p.sl.nm),
		xres: make([]kres, p.maxX),
		yres: make([]kres, p.maxY),
	}
}

// bind points the executor at a frame's batch.
func (x *kexec) bind(b *interval.Batch) {
	x.b = b
	x.n = b.N
	x.nw = (b.N + 63) >> 6
}

func (x *kexec) fbuf(slot int) []float64 {
	s := x.f[slot]
	if cap(s) < x.n {
		s = make([]float64, x.n)
		x.f[slot] = s
	}
	return s[:x.n]
}

func (x *kexec) sbuf(slot int) []string {
	s := x.s[slot]
	if cap(s) < x.n {
		s = make([]string, x.n)
		x.s[slot] = s
	}
	return s[:x.n]
}

func (x *kexec) mbuf(slot int) []uint64 {
	s := x.m[slot]
	if cap(s) < x.nw {
		s = make([]uint64, x.nw)
		x.m[slot] = s
	}
	return s[:x.nw]
}

// Bitmap helpers. All bitmaps are x.nw words covering x.n rows; bits
// past n are always zero in selection masks.

func maskZero(m []uint64) {
	for i := range m {
		m[i] = 0
	}
}

func maskOnes(m []uint64, n int) {
	for i := range m {
		m[i] = ^uint64(0)
	}
	if n&63 != 0 && len(m) > 0 {
		m[len(m)-1] = (uint64(1) << uint(n&63)) - 1
	}
}

func maskAny(m []uint64) bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

// popAnd counts bits set in both a and b.
func popAnd(a, b []uint64) int64 {
	var n int64
	for i := range a {
		n += int64(bits.OnesCount64(a[i] & b[i]))
	}
	return n
}

// andNotIn clears a's bits that are set in b (a &^= b).
func andNotIn(a, b []uint64) {
	for i := range a {
		a[i] &^= b[i]
	}
}

// selMinus returns sel with skip removed, writing into the slot buffer
// when skip is non-nil, aliasing sel otherwise.
func (x *kexec) selMinus(slot int, sel, skip []uint64) []uint64 {
	if skip == nil {
		return sel
	}
	out := x.mbuf(slot)
	for i := range out {
		out[i] = sel[i] &^ skip[i]
	}
	return out
}

// unionSkip combines two row-static skip bitmaps: nil when both are
// nil, an alias when only one is set, their union in the slot buffer
// otherwise.
func (x *kexec) unionSkip(slot int, a, b []uint64) []uint64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := x.mbuf(slot)
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return out
}

// truthWord computes the truthiness bits of rows [w*64, w*64+64) of a
// kernel result, over all rows regardless of selection (values at
// non-skipped rows are row-static, which keeps derived skip bitmaps
// row-static too).
func truthWord(r *kres, w, n int) uint64 {
	base := w << 6
	lim := n - base
	if lim > 64 {
		lim = 64
	}
	var tm uint64
	if r.str {
		s := r.s[base:]
		for j := 0; j < lim; j++ {
			if s[j] != "" {
				tm |= 1 << uint(j)
			}
		}
		return tm
	}
	f := r.f[base:]
	for j := 0; j < lim; j++ {
		if f[j] != 0 {
			tm |= 1 << uint(j)
		}
	}
	return tm
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ---- leaf kernels ----

type kConstNum struct{ v float64 }

func (kConstNum) isStr() bool { return false }
func (k kConstNum) eval(*kexec, []uint64) (kres, error) {
	return kres{konst: true, cf: k.v}, nil
}

type kConstStr struct{ v string }

func (kConstStr) isStr() bool { return true }
func (k kConstStr) eval(*kexec, []uint64) (kres, error) {
	return kres{konst: true, str: true, cs: k.v}, nil
}

// Numeric built-in field codes.
const (
	fcStart = iota
	fcDura
	fcEnd
	fcNode
	fcCPU
	fcThread
	fcType
	fcIsCall
)

type kField struct{ code, slot int }

func (kField) isStr() bool { return false }
func (k kField) eval(x *kexec, _ []uint64) (kres, error) {
	out := x.fbuf(k.slot)
	b := x.b
	switch k.code {
	case fcStart:
		for i := range out {
			out[i] = b.Start[i].Seconds()
		}
	case fcDura:
		for i := range out {
			out[i] = b.Dura[i].Seconds()
		}
	case fcEnd:
		for i := range out {
			out[i] = (b.Start[i] + b.Dura[i]).Seconds()
		}
	case fcNode:
		for i := range out {
			out[i] = float64(b.Node[i])
		}
	case fcCPU:
		for i := range out {
			out[i] = float64(b.CPU[i])
		}
	case fcThread:
		for i := range out {
			out[i] = float64(b.Thread[i])
		}
	case fcType:
		for i := range out {
			out[i] = float64(b.Type[i])
		}
	case fcIsCall:
		for i := range out {
			out[i] = b2f(b.Bebits[i] == 2 || b.Bebits[i] == 3)
		}
	}
	return kres{f: out}, nil
}

// String built-in field codes.
const (
	fcState = iota
	fcBebits
)

type kFieldStr struct{ code, slot int }

func (kFieldStr) isStr() bool { return true }
func (k kFieldStr) eval(x *kexec, _ []uint64) (kres, error) {
	out := x.sbuf(k.slot)
	b := x.b
	if k.code == fcBebits {
		for i := range out {
			out[i] = b.Bebits[i].String()
		}
		return kres{str: true, s: out}, nil
	}
	// state: memoize the last type's name — frames are dominated by a
	// handful of types, and Type.Name allocates for unknown codes.
	var lastT events.Type
	lastName := ""
	have := false
	for i := range out {
		t := b.Type[i]
		if !have || t != lastT {
			lastT, lastName, have = t, t.Name(), true
		}
		out[i] = lastName
	}
	return kres{str: true, s: out}, nil
}

// kExtra loads a per-type extra field, producing skip bits for rows
// whose type does not carry it — the vectorized errSkip.
type kExtra struct {
	name           string
	slot, skipSlot int
}

func (kExtra) isStr() bool { return false }
func (k kExtra) eval(x *kexec, _ []uint64) (kres, error) {
	out := x.fbuf(k.slot)
	b := x.b
	var skip []uint64
	var lastT events.Type
	lastIdx := -1
	have := false
	for i := 0; i < x.n; i++ {
		t := b.Type[i]
		if !have || t != lastT {
			lastT, have = t, true
			lastIdx = extraIndex(t, k.name)
		}
		off := b.ExtraOff[i]
		if lastIdx >= 0 && uint32(lastIdx) < b.ExtraOff[i+1]-off {
			out[i] = float64(b.Extras[off+uint32(lastIdx)])
		} else {
			if skip == nil {
				skip = x.mbuf(k.skipSlot)
				maskZero(skip)
			}
			skip[i>>6] |= 1 << uint(i&63)
		}
	}
	return kres{f: out, skip: skip}, nil
}

func extraIndex(t events.Type, name string) int {
	for i, f := range events.ExtraFields(t) {
		if f == name {
			return i
		}
	}
	return -1
}

// ---- unary kernels ----

type kNeg struct {
	x    kernel
	slot int
}

func (kNeg) isStr() bool { return false }
func (k kNeg) eval(x *kexec, sel []uint64) (kres, error) {
	r, err := k.x.eval(x, sel)
	if err != nil {
		return kres{}, err
	}
	if r.konst {
		return kres{konst: true, cf: -r.cf}, nil
	}
	out := x.fbuf(k.slot)
	for i := range out {
		out[i] = -r.f[i]
	}
	return kres{f: out, skip: r.skip}, nil
}

type kNot struct {
	x    kernel
	slot int
}

func (kNot) isStr() bool { return false }
func (k kNot) eval(x *kexec, sel []uint64) (kres, error) {
	r, err := k.x.eval(x, sel)
	if err != nil {
		return kres{}, err
	}
	if r.konst {
		return kres{konst: true, cf: b2f(!(&r).truthAt(0))}, nil
	}
	out := x.fbuf(k.slot)
	if r.str {
		for i := range out {
			out[i] = b2f(r.s[i] == "")
		}
	} else {
		for i := range out {
			out[i] = b2f(r.f[i] == 0)
		}
	}
	return kres{f: out, skip: r.skip}, nil
}

// ---- binary kernels ----

// kArith is every strict numeric binary operator: arithmetic and
// comparisons. Division and modulo raise their by-zero errors only for
// selected, unskipped rows, matching the scalar evaluator's laziness.
type kArith struct {
	op                                    string
	l, r                                  kernel
	slot, lslot, rslot, skipSlot, selSlot int
}

func (kArith) isStr() bool { return false }
func (k kArith) eval(x *kexec, sel []uint64) (kres, error) {
	rl, err := k.l.eval(x, sel)
	if err != nil {
		return kres{}, err
	}
	selR := x.selMinus(k.selSlot, sel, rl.skip)
	rr, err := k.r.eval(x, selR)
	if err != nil {
		return kres{}, err
	}
	skip := x.unionSkip(k.skipSlot, rl.skip, rr.skip)
	if k.op == "/" || k.op == "%" {
		// The scalar evaluator checks the divisor before dividing, for
		// exactly the records it reaches: sel minus every skip.
		if rr.konst {
			if rr.cf == 0 {
				eff := x.selMinus(k.selSlot, selR, rr.skip)
				if maskAny(eff) {
					return kres{}, divErr(k.op)
				}
			}
		} else {
			for w := 0; w < x.nw; w++ {
				m := selR[w]
				if rr.skip != nil {
					m &^= rr.skip[w]
				}
				for m != 0 {
					i := w<<6 + bits.TrailingZeros64(m)
					m &= m - 1
					if rr.f[i] == 0 {
						return kres{}, divErr(k.op)
					}
				}
			}
		}
	}
	if rl.konst && rr.konst {
		return kres{konst: true, cf: arith(k.op, rl.cf, rr.cf)}, nil
	}
	lf := rl.f
	if rl.konst {
		lf = x.fbuf(k.lslot)
		for i := range lf {
			lf[i] = rl.cf
		}
	}
	rf := rr.f
	if rr.konst {
		rf = x.fbuf(k.rslot)
		for i := range rf {
			rf[i] = rr.cf
		}
	}
	out := x.fbuf(k.slot)
	switch k.op {
	case "+":
		for i := range out {
			out[i] = lf[i] + rf[i]
		}
	case "-":
		for i := range out {
			out[i] = lf[i] - rf[i]
		}
	case "*":
		for i := range out {
			out[i] = lf[i] * rf[i]
		}
	case "/":
		for i := range out {
			out[i] = lf[i] / rf[i]
		}
	case "%":
		for i := range out {
			out[i] = math.Mod(lf[i], rf[i])
		}
	case "<":
		for i := range out {
			out[i] = b2f(lf[i] < rf[i])
		}
	case "<=":
		for i := range out {
			out[i] = b2f(lf[i] <= rf[i])
		}
	case ">":
		for i := range out {
			out[i] = b2f(lf[i] > rf[i])
		}
	case ">=":
		for i := range out {
			out[i] = b2f(lf[i] >= rf[i])
		}
	case "==":
		for i := range out {
			out[i] = b2f(lf[i] == rf[i])
		}
	case "!=":
		for i := range out {
			out[i] = b2f(lf[i] != rf[i])
		}
	}
	return kres{f: out, skip: skip}, nil
}

func arith(op string, l, r float64) float64 {
	switch op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		return l / r
	case "%":
		return math.Mod(l, r)
	case "<":
		return b2f(l < r)
	case "<=":
		return b2f(l <= r)
	case ">":
		return b2f(l > r)
	case ">=":
		return b2f(l >= r)
	case "==":
		return b2f(l == r)
	case "!=":
		return b2f(l != r)
	}
	return 0
}

func divErr(op string) error {
	if op == "/" {
		return fmt.Errorf("stats: division by zero")
	}
	return fmt.Errorf("stats: modulo by zero")
}

// kCmpStr compares two string-typed operands.
type kCmpStr struct {
	op                                    string
	l, r                                  kernel
	slot, lslot, rslot, skipSlot, selSlot int
}

func (kCmpStr) isStr() bool { return false }
func (k kCmpStr) eval(x *kexec, sel []uint64) (kres, error) {
	rl, err := k.l.eval(x, sel)
	if err != nil {
		return kres{}, err
	}
	selR := x.selMinus(k.selSlot, sel, rl.skip)
	rr, err := k.r.eval(x, selR)
	if err != nil {
		return kres{}, err
	}
	skip := x.unionSkip(k.skipSlot, rl.skip, rr.skip)
	if rl.konst && rr.konst {
		return kres{konst: true, cf: cmpStr(k.op, rl.cs, rr.cs)}, nil
	}
	ls := rl.s
	if rl.konst {
		ls = x.sbuf(k.lslot)
		for i := range ls {
			ls[i] = rl.cs
		}
	}
	rs := rr.s
	if rr.konst {
		rs = x.sbuf(k.rslot)
		for i := range rs {
			rs[i] = rr.cs
		}
	}
	out := x.fbuf(k.slot)
	switch k.op {
	case "==":
		for i := range out {
			out[i] = b2f(ls[i] == rs[i])
		}
	case "!=":
		for i := range out {
			out[i] = b2f(ls[i] != rs[i])
		}
	case "<":
		for i := range out {
			out[i] = b2f(ls[i] < rs[i])
		}
	case "<=":
		for i := range out {
			out[i] = b2f(ls[i] <= rs[i])
		}
	case ">":
		for i := range out {
			out[i] = b2f(ls[i] > rs[i])
		}
	case ">=":
		for i := range out {
			out[i] = b2f(ls[i] >= rs[i])
		}
	}
	return kres{f: out, skip: skip}, nil
}

func cmpStr(op string, l, r string) float64 {
	switch op {
	case "==":
		return b2f(l == r)
	case "!=":
		return b2f(l != r)
	case "<":
		return b2f(l < r)
	case "<=":
		return b2f(l <= r)
	case ">":
		return b2f(l > r)
	case ">=":
		return b2f(l >= r)
	}
	return 0
}

// kLogic is short-circuit && / ||: the right operand is evaluated with
// a selection restricted to rows the scalar evaluator would evaluate it
// for, so errors and skips on the right surface for exactly those rows.
type kLogic struct {
	and                             bool
	l, r                            kernel
	slot, selSlot, tmSlot, skipSlot int
}

func (kLogic) isStr() bool { return false }
func (k kLogic) eval(x *kexec, sel []uint64) (kres, error) {
	rl, err := k.l.eval(x, sel)
	if err != nil {
		return kres{}, err
	}
	if rl.konst {
		lt := (&rl).truthAt(0)
		// A constant deciding operand short-circuits for every record:
		// the scalar evaluator never touches the right side, so neither
		// do we (it may contain expressions that would error or skip).
		if k.and && !lt {
			return kres{konst: true, cf: 0}, nil
		}
		if !k.and && lt {
			return kres{konst: true, cf: 1}, nil
		}
		rr, err := k.r.eval(x, sel)
		if err != nil {
			return kres{}, err
		}
		if rr.konst {
			return kres{konst: true, cf: b2f((&rr).truthAt(0))}, nil
		}
		out := x.fbuf(k.slot)
		if rr.str {
			for i := range out {
				out[i] = b2f(rr.s[i] != "")
			}
		} else {
			for i := range out {
				out[i] = b2f(rr.f[i] != 0)
			}
		}
		return kres{f: out, skip: rr.skip}, nil
	}
	// Variable left operand: compute its truthiness for every row
	// (row-static), derive the right side's selection, then stitch the
	// result and skip bitmaps together.
	tm := x.mbuf(k.tmSlot)
	selR := x.mbuf(k.selSlot)
	out := x.fbuf(k.slot)
	short := b2f(!k.and) // result where the left side decides
	for w := 0; w < x.nw; w++ {
		t := truthWord(&rl, w, x.n)
		tm[w] = t
		m := sel[w]
		if rl.skip != nil {
			m &^= rl.skip[w]
		}
		if k.and {
			selR[w] = m & t
		} else {
			selR[w] = m &^ t
		}
	}
	for i := range out {
		out[i] = short
	}
	rr, err := k.r.eval(x, selR)
	if err != nil {
		return kres{}, err
	}
	// Rows where the left side decides keep `short`; the rest take the
	// right side's truthiness. For &&, deciding means falsy (tm clear);
	// for ||, deciding means truthy (tm set).
	for w := 0; w < x.nw; w++ {
		m := tm[w]
		if !k.and {
			base := w << 6
			lim := x.n - base
			if lim > 64 {
				lim = 64
			}
			m = ^m
			if lim < 64 {
				m &= (uint64(1) << uint(lim)) - 1
			}
		}
		for m != 0 {
			i := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			out[i] = b2f((&rr).truthAt(i))
		}
	}
	if rl.skip == nil && rr.skip == nil {
		return kres{f: out}, nil
	}
	skip := x.mbuf(k.skipSlot)
	for w := 0; w < x.nw; w++ {
		var s uint64
		if rl.skip != nil {
			s = rl.skip[w]
		}
		if rr.skip != nil {
			rs := rr.skip[w]
			if k.and {
				rs &= tm[w]
			} else {
				rs &^= tm[w]
			}
			if rl.skip != nil {
				rs &^= rl.skip[w]
			}
			s |= rs
		}
		skip[w] = s
	}
	return kres{f: out, skip: skip}, nil
}

// ---- call kernels ----

// kBin is the bin(t, n) builtin, mirroring the scalar arithmetic
// (divide by span, then scale by n) operation for operation.
type kBin struct {
	t, n                    kernel
	slot, skipSlot, selSlot int
}

func (kBin) isStr() bool { return false }
func (k kBin) eval(x *kexec, sel []uint64) (kres, error) {
	rt, err := k.t.eval(x, sel)
	if err != nil {
		return kres{}, err
	}
	selN := x.selMinus(k.selSlot, sel, rt.skip)
	rn, err := k.n.eval(x, selN)
	if err != nil {
		return kres{}, err
	}
	skip := x.unionSkip(k.skipSlot, rt.skip, rn.skip)
	if rn.konst {
		if rn.cf < 1 {
			eff := x.selMinus(k.selSlot, selN, rn.skip)
			if maskAny(eff) {
				return kres{}, fmt.Errorf("stats: bin() needs numeric arguments")
			}
		}
	} else {
		for w := 0; w < x.nw; w++ {
			m := selN[w]
			if rn.skip != nil {
				m &^= rn.skip[w]
			}
			for m != 0 {
				i := w<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				if rn.f[i] < 1 {
					return kres{}, fmt.Errorf("stats: bin() needs numeric arguments")
				}
			}
		}
	}
	span := (x.tEnd - x.tStart).Seconds()
	ts := x.tStart.Seconds()
	if rt.konst && rn.konst {
		return kres{konst: true, cf: binValue(rt.cf, rn.cf, ts, span)}, nil
	}
	out := x.fbuf(k.slot)
	for i := range out {
		out[i] = binValue(rt.fAt(i), rn.fAt(i), ts, span)
	}
	return kres{f: out, skip: skip}, nil
}

// binValue replicates evalCall's bin() arithmetic exactly: int
// truncation of (t - tStart) / span * n, clamped to [0, n-1].
func binValue(tv, nv, ts, span float64) float64 {
	if span <= 0 {
		return 0
	}
	n := int(nv)
	b := int((tv - ts) / span * float64(n))
	if b < 0 {
		b = 0
	}
	if b >= n {
		b = n - 1
	}
	return float64(b)
}

// kFloorAbs is floor() / abs(). The scalar evaluator turns any child
// failure — including errSkip — into the function's own error, so a
// skip on a selected row is an error here, not a skip.
type kFloorAbs struct {
	floor bool
	x     kernel
	slot  int
}

func (kFloorAbs) isStr() bool { return false }
func (k kFloorAbs) eval(x *kexec, sel []uint64) (kres, error) {
	name := "abs"
	if k.floor {
		name = "floor"
	}
	r, err := k.x.eval(x, sel)
	if err != nil {
		return kres{}, fmt.Errorf("stats: %s() needs a number", name)
	}
	if r.skip != nil && popAnd(sel, r.skip) > 0 {
		return kres{}, fmt.Errorf("stats: %s() needs a number", name)
	}
	if r.konst {
		if k.floor {
			return kres{konst: true, cf: math.Floor(r.cf)}, nil
		}
		return kres{konst: true, cf: math.Abs(r.cf)}, nil
	}
	out := x.fbuf(k.slot)
	if k.floor {
		for i := range out {
			out[i] = math.Floor(r.f[i])
		}
	} else {
		for i := range out {
			out[i] = math.Abs(r.f[i])
		}
	}
	return kres{f: out}, nil
}

// ---- compilation ----

// compiledTable is one table spec lowered to kernels.
type compiledTable struct {
	spec     *TableSpec
	cond     kernel
	x, y     []kernel
	maskSlot int // working row mask during accumulation
}

// compiledProgram is a whole program lowered to kernels, plus the
// scratch-slot counts its executors need.
type compiledProgram struct {
	tables     []*compiledTable
	sl         kslots
	selSlot    int // frame-level (window) selection mask
	maxX, maxY int
}

// compileProgram lowers every spec; ok is false when any expression is
// outside the lowerable subset, in which case the caller must use the
// scalar evaluator for the whole program.
func compileProgram(specs []*TableSpec) (*compiledProgram, bool) {
	p := &compiledProgram{}
	p.selSlot = p.sl.m()
	for _, spec := range specs {
		ct, ok := compileSpec(spec, &p.sl)
		if !ok {
			return nil, false
		}
		p.tables = append(p.tables, ct)
		if len(ct.x) > p.maxX {
			p.maxX = len(ct.x)
		}
		if len(ct.y) > p.maxY {
			p.maxY = len(ct.y)
		}
	}
	return p, true
}

func compileSpec(spec *TableSpec, sl *kslots) (*compiledTable, bool) {
	ct := &compiledTable{spec: spec, maskSlot: sl.m()}
	if spec.Condition != nil {
		k, ok := lowerExpr(spec.Condition, sl)
		if !ok {
			return nil, false
		}
		ct.cond = k
	}
	for _, ax := range spec.X {
		k, ok := lowerExpr(ax.Expr, sl)
		if !ok {
			return nil, false
		}
		ct.x = append(ct.x, k)
	}
	for _, ay := range spec.Y {
		k, ok := lowerExpr(ay.Expr, sl)
		if !ok {
			return nil, false
		}
		ct.y = append(ct.y, k)
	}
	return ct, true
}

// Lowerable reports whether the compiler can lower every expression of
// the spec to vectorized kernels (the columnar fast path). Unlowerable
// specs run on the record-at-a-time evaluator.
func Lowerable(spec *TableSpec) bool {
	var sl kslots
	_, ok := compileSpec(spec, &sl)
	return ok
}

// lowerExpr lowers one expression node, or reports that it (or a
// subexpression) is outside the lowerable subset. The subset is chosen
// so that lowered code provably matches the scalar evaluator; anything
// whose scalar behavior is a lazily raised type error (string
// arithmetic, mixed comparisons, unknown functions, bad arities,
// markername's marker-table lookup) stays on the scalar path.
func lowerExpr(e expr, sl *kslots) (kernel, bool) {
	switch n := e.(type) {
	case numLit:
		return kConstNum{n.v}, true
	case strLit:
		return kConstStr{n.v}, true
	case fieldRef:
		switch n.name {
		case events.FieldStart:
			return kField{fcStart, sl.f()}, true
		case events.FieldDura, "duration":
			return kField{fcDura, sl.f()}, true
		case "end":
			return kField{fcEnd, sl.f()}, true
		case events.FieldNode:
			return kField{fcNode, sl.f()}, true
		case events.FieldCPU, "processor":
			return kField{fcCPU, sl.f()}, true
		case events.FieldThread:
			return kField{fcThread, sl.f()}, true
		case events.FieldType:
			return kField{fcType, sl.f()}, true
		case "iscall":
			return kField{fcIsCall, sl.f()}, true
		case "state":
			return kFieldStr{fcState, sl.str()}, true
		case events.FieldBebits:
			return kFieldStr{fcBebits, sl.str()}, true
		case "markername":
			return nil, false
		}
		return kExtra{n.name, sl.f(), sl.m()}, true
	case unary:
		c, ok := lowerExpr(n.x, sl)
		if !ok {
			return nil, false
		}
		switch n.op {
		case "-":
			if c.isStr() {
				return nil, false
			}
			return kNeg{c, sl.f()}, true
		case "!":
			return kNot{c, sl.f()}, true
		}
		return nil, false
	case binary:
		l, ok := lowerExpr(n.l, sl)
		if !ok {
			return nil, false
		}
		r, ok := lowerExpr(n.r, sl)
		if !ok {
			return nil, false
		}
		if n.op == "&&" || n.op == "||" {
			return kLogic{n.op == "&&", l, r, sl.f(), sl.m(), sl.m(), sl.m()}, true
		}
		if l.isStr() != r.isStr() {
			return nil, false
		}
		if l.isStr() {
			switch n.op {
			case "==", "!=", "<", "<=", ">", ">=":
				return kCmpStr{n.op, l, r, sl.f(), sl.str(), sl.str(), sl.m(), sl.m()}, true
			}
			return nil, false
		}
		switch n.op {
		case "+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=":
			return kArith{n.op, l, r, sl.f(), sl.f(), sl.f(), sl.m(), sl.m()}, true
		}
		return nil, false
	case call:
		switch n.fn {
		case "bin":
			if len(n.args) != 2 {
				return nil, false
			}
			t, ok := lowerExpr(n.args[0], sl)
			if !ok || t.isStr() {
				return nil, false
			}
			nb, ok := lowerExpr(n.args[1], sl)
			if !ok || nb.isStr() {
				return nil, false
			}
			return kBin{t, nb, sl.f(), sl.m(), sl.m()}, true
		case "floor", "abs":
			if len(n.args) != 1 {
				return nil, false
			}
			c, ok := lowerExpr(n.args[0], sl)
			if !ok || c.isStr() {
				return nil, false
			}
			return kFloorAbs{n.fn == "floor", c, sl.f()}, true
		}
		return nil, false
	}
	return nil, false
}

// run accumulates one frame's selected rows into the table's partial
// groups, returning how many selected records were excluded by skip
// bitmaps (the columnar errSkip count). Row iteration is in record
// order, so float accumulation order matches a sequential scan exactly.
func (ct *compiledTable) run(x *kexec, sel []uint64, pg map[string]*group) (int64, error) {
	mask := x.mbuf(ct.maskSlot)
	copy(mask, sel)
	var skipped int64
	if ct.cond != nil {
		res, err := ct.cond.eval(x, mask)
		if err != nil {
			return skipped, fmt.Errorf("table %q: %w", ct.spec.Name, err)
		}
		if res.skip != nil {
			skipped += popAnd(mask, res.skip)
			andNotIn(mask, res.skip)
		}
		if res.konst {
			if !(&res).truthAt(0) {
				return skipped, nil
			}
		} else {
			for w := 0; w < x.nw; w++ {
				mask[w] &= truthWord(&res, w, x.n)
			}
		}
		if !maskAny(mask) {
			return skipped, nil
		}
	}
	for xi, k := range ct.x {
		res, err := k.eval(x, mask)
		if err != nil {
			return skipped, fmt.Errorf("table %q: %w", ct.spec.Name, err)
		}
		if res.skip != nil {
			skipped += popAnd(mask, res.skip)
			andNotIn(mask, res.skip)
			if !maskAny(mask) {
				return skipped, nil
			}
		}
		x.xres[xi] = res
	}
	for yi, k := range ct.y {
		res, err := k.eval(x, mask)
		if err != nil {
			return skipped, fmt.Errorf("table %q: %w", ct.spec.Name, err)
		}
		if res.skip != nil {
			skipped += popAnd(mask, res.skip)
			andNotIn(mask, res.skip)
			if !maskAny(mask) {
				return skipped, nil
			}
		}
		if k.isStr() && maskAny(mask) {
			return skipped, fmt.Errorf("table %q: y expression %q produced a string", ct.spec.Name, ct.spec.Y[yi].Label)
		}
		x.yres[yi] = res
	}
	nx, ny := len(ct.x), len(ct.y)
	for w := 0; w < x.nw; w++ {
		m := mask[w]
		for m != 0 {
			i := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			key := x.key[:0]
			for xi := 0; xi < nx; xi++ {
				res := &x.xres[xi]
				if res.str {
					key = append(key, 's')
					key = append(key, res.sAt(i)...)
				} else {
					key = append(key, 'n')
					key = strconv.AppendFloat(key, res.fAt(i), 'g', -1, 64)
				}
				key = append(key, 0)
			}
			x.key = key
			g := pg[string(key)]
			if g == nil {
				xs := make([]Value, nx)
				for xi := 0; xi < nx; xi++ {
					res := &x.xres[xi]
					if res.str {
						xs[xi] = str(res.sAt(i))
					} else {
						xs[xi] = num(res.fAt(i))
					}
				}
				g = &group{x: xs, y: make([]cell, ny)}
				for yi := range g.y {
					g.y[yi].min = math.Inf(1)
					g.y[yi].max = math.Inf(-1)
				}
				pg[string(key)] = g
			}
			for yi := 0; yi < ny; yi++ {
				v := (&x.yres[yi]).fAt(i)
				c := &g.y[yi]
				c.sum += v
				c.n++
				if v < c.min {
					c.min = v
				}
				if v > c.max {
					c.max = v
				}
			}
		}
	}
	return skipped, nil
}
