package stats_test

// Golden test for Value.Text: pins the integer/float rendering split,
// including the exact 1e15 boundary (inclusive on both signs) and
// negative-zero normalization.

import (
	"math"
	"testing"

	"tracefw/internal/stats"
)

func TestValueTextGolden(t *testing.T) {
	negZero := math.Copysign(0, -1)
	for _, tc := range []struct {
		f    float64
		want string
	}{
		{0, "0"},
		{negZero, "0"}, // negative zero must not print a sign
		{1, "1"},
		{-1, "-1"},
		{42, "42"},
		{0.5, "0.5"},
		{-2.25, "-2.25"},
		{1e15, "1000000000000000"},   // boundary: exactly representable, integer path
		{-1e15, "-1000000000000000"}, // boundary, negative side
		{1e15 - 1, "999999999999999"},
		{1e15 + 2, "1.000000000000002e+15"}, // above the boundary: float path (%g semantics)
		{1e16, "1e+16"},
		{123456789.75, "1.2345678975e+08"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	} {
		v := stats.Value{F: tc.f}
		if got := v.Text(); got != tc.want {
			t.Errorf("Text(%v) = %q, want %q", tc.f, got, tc.want)
		}
	}
	if got := (stats.Value{S: "hello", Str: true}).Text(); got != "hello" {
		t.Errorf("string Text = %q", got)
	}
}
