package stats

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
)

// Table is one generated statistics table.
type Table struct {
	Name    string
	XLabels []string
	YLabels []string
	Rows    []Row
	// Skipped counts records that were selected but excluded because an
	// expression referenced a field their state type does not carry
	// (the errSkip path) — previously these vanished silently.
	Skipped int64
	// Columnar reports which engine produced the table: true for the
	// vectorized kernels over columnar batches, false for the
	// record-at-a-time evaluator. Output is byte-identical either way.
	Columnar bool
	// Engine reports which data path answered a time-resolved table:
	// "pyramid" for the summary-pyramid fast path, "scan" for the
	// frame-decode path. Empty for spec-driven tables. Output is
	// byte-identical either way; the field is observability only (it is
	// not part of TSV).
	Engine string `json:",omitempty"`
}

// Row is one table row: the x tuple and the aggregated y values.
type Row struct {
	X []Value
	Y []float64
}

type cell struct {
	sum, min, max float64
	n             int64
}

type group struct {
	x []Value
	y []cell
}

// Engine selects how tables are evaluated.
type Engine int

const (
	// EngineAuto compiles the program to vectorized kernels over
	// columnar batches when every expression is lowerable, falling back
	// to the record-at-a-time evaluator otherwise. The default.
	EngineAuto Engine = iota
	// EngineScalar forces the record-at-a-time evaluator.
	EngineScalar
	// EngineColumnar requires the columnar kernels; generation fails if
	// any expression cannot be lowered.
	EngineColumnar
)

// Options tunes table generation.
type Options struct {
	// Parallel is the frame-decode worker count handed to the interval
	// map-reduce engine; <= 0 means GOMAXPROCS. Results are
	// byte-identical for every worker count: aggregation is per-frame
	// partials merged in frame order, so float summation order never
	// depends on scheduling.
	Parallel int
	// Window restricts aggregation to records overlapping [Lo, Hi]
	// (end >= Lo and start <= Hi). Frames — and on current-format files
	// whole directories — outside the window are never decoded. The
	// bin() builtin keeps using full-run bounds so bin numbers mean the
	// same thing windowed or not.
	Window bool
	Lo, Hi clock.Time
	// Context, when non-nil, aborts generation once it is cancelled
	// (checked per frame by the map-reduce engine). The trace query
	// service sets it to the request context; CLIs leave it nil.
	Context context.Context
	// Engine picks the evaluator; see the Engine constants.
	Engine Engine
	// Summary picks the data path for time-resolved tables:
	// SummaryAuto uses the file's summary pyramid when one is attached
	// and usable (single file, non-degenerate window), falling back to
	// the frame-decode path; SummaryPyramid requires it; SummaryScan
	// forces frame decodes. Spec-driven tables ignore this field.
	Summary interval.SummaryEngine
}

// Generate runs every table of the program over the interval files.
func Generate(program string, files []*interval.File) ([]*Table, error) {
	return GenerateOpts(program, files, Options{})
}

// GenerateOpts is Generate with explicit Options.
func GenerateOpts(program string, files []*interval.File, opts Options) ([]*Table, error) {
	specs, err := Parse(program)
	if err != nil {
		return nil, err
	}
	return GenerateSpecsOpts(specs, files, opts)
}

// GenerateSpecs runs parsed table specs over the interval files.
func GenerateSpecs(specs []*TableSpec, files []*interval.File) ([]*Table, error) {
	return GenerateSpecsOpts(specs, files, Options{})
}

// GenerateSpecsOpts runs parsed table specs over the interval files on
// the per-frame map-reduce engine: frames decode and evaluate
// concurrently into partial group maps, which merge into the global
// groups in frame order. The Engine option picks between the
// record-at-a-time evaluator and the vectorized kernels over columnar
// batches; both produce byte-identical tables on the expressions the
// compiler accepts.
func GenerateSpecsOpts(specs []*TableSpec, files []*interval.File, opts Options) ([]*Table, error) {
	tStart, tEnd, err := runBounds(files)
	if err != nil {
		return nil, err
	}
	columnar := false
	var prog *compiledProgram
	switch opts.Engine {
	case EngineScalar:
	case EngineColumnar:
		p, ok := compileProgram(specs)
		if !ok {
			return nil, fmt.Errorf("stats: program is not lowerable to columnar kernels")
		}
		prog, columnar = p, true
	default:
		if p, ok := compileProgram(specs); ok {
			prog, columnar = p, true
		}
	}
	if columnar {
		return generateColumnar(prog, specs, files, opts, tStart, tEnd)
	}
	return generateScalar(specs, files, opts, tStart, tEnd)
}

// runBounds computes overall run bounds over all inputs, for bin().
func runBounds(files []*interval.File) (tStart, tEnd clock.Time, err error) {
	firstStats := true
	for _, f := range files {
		fs, fe, n, err := f.Stats()
		if err != nil {
			return 0, 0, err
		}
		if n == 0 {
			continue
		}
		if firstStats || fs < tStart {
			tStart = fs
		}
		if firstStats || fe > tEnd {
			tEnd = fe
		}
		firstStats = false
	}
	return tStart, tEnd, nil
}

// specPartial is one frame's contribution: partial groups per spec plus
// the per-spec count of records excluded by errSkip.
type specPartial struct {
	pg      []map[string]*group
	skipped []int64
}

func generateScalar(specs []*TableSpec, files []*interval.File, opts Options, tStart, tEnd clock.Time) ([]*Table, error) {
	groups := make([]map[string]*group, len(specs))
	for i := range groups {
		groups[i] = make(map[string]*group)
	}
	skipped := make([]int64, len(specs))

	mopts := interval.MapOptions{Parallel: opts.Parallel, Window: opts.Window, Lo: opts.Lo, Hi: opts.Hi, Context: opts.Context}
	err := interval.MapFilesFrames(files, mopts,
		func(file int, _ interval.FrameEntry, recs []interval.Record) (*specPartial, error) {
			ctx := &evalCtx{markers: files[file].Header.Markers, tStart: tStart, tEnd: tEnd}
			sp := &specPartial{pg: make([]map[string]*group, len(specs)), skipped: make([]int64, len(specs))}
			for i := range sp.pg {
				sp.pg[i] = make(map[string]*group)
			}
			for ri := range recs {
				rec := &recs[ri]
				if opts.Window && (rec.End() < opts.Lo || rec.Start > opts.Hi) {
					// Filter at the record level so the result does not
					// depend on how records happened to be framed.
					continue
				}
				ctx.rec = rec
				for si, spec := range specs {
					skip, err := accumulate(spec, ctx, sp.pg[si])
					if err != nil {
						return nil, err
					}
					if skip {
						sp.skipped[si]++
					}
				}
			}
			return sp, nil
		},
		func(_ int, _ interval.FrameEntry, sp *specPartial) error {
			for si := range specs {
				mergeGroups(groups[si], sp.pg[si])
				skipped[si] += sp.skipped[si]
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return buildTables(specs, groups, skipped, false), nil
}

// buildTables finalizes merged groups into sorted tables; shared by
// both engines so the output path is literally the same code.
func buildTables(specs []*TableSpec, groups []map[string]*group, skipped []int64, columnar bool) []*Table {
	tables := make([]*Table, len(specs))
	for si, spec := range specs {
		t := &Table{Name: spec.Name, Skipped: skipped[si], Columnar: columnar}
		for _, x := range spec.X {
			t.XLabels = append(t.XLabels, x.Label)
		}
		for _, y := range spec.Y {
			t.YLabels = append(t.YLabels, y.Label)
		}
		keys := make([]string, 0, len(groups[si]))
		for k := range groups[si] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := groups[si][k]
			row := Row{X: g.x}
			for yi, y := range spec.Y {
				row.Y = append(row.Y, finalize(y.Agg, g.y[yi]))
			}
			t.Rows = append(t.Rows, row)
		}
		sortRows(t)
		tables[si] = t
	}
	return tables
}

// mergeGroups folds one frame's partial groups into the running global
// groups. Each key's cells combine commutatively except for the float
// sum, whose order is fixed by the reducer's frame ordering — the merge
// itself is per-key independent, so map iteration order is harmless.
func mergeGroups(dst, src map[string]*group) {
	for k, g := range src {
		d := dst[k]
		if d == nil {
			dst[k] = g
			continue
		}
		for i := range g.y {
			c, s := &d.y[i], &g.y[i]
			c.sum += s.sum
			c.n += s.n
			if s.min < c.min {
				c.min = s.min
			}
			if s.max > c.max {
				c.max = s.max
			}
		}
	}
}

// accumulate folds one record into the spec's partial groups. skipped
// reports that the record was excluded because an expression referenced
// a field its state type lacks (errSkip); condition-false records are
// not skips, they are simply unselected.
func accumulate(spec *TableSpec, ctx *evalCtx, groups map[string]*group) (skipped bool, err error) {
	if spec.Condition != nil {
		v, err := eval(spec.Condition, ctx)
		if errors.Is(err, errSkip) {
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("table %q: %w", spec.Name, err)
		}
		if !v.Truth() {
			return false, nil
		}
	}
	xs := make([]Value, len(spec.X))
	for i, x := range spec.X {
		v, err := eval(x.Expr, ctx)
		if errors.Is(err, errSkip) {
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("table %q: %w", spec.Name, err)
		}
		xs[i] = v
	}
	ys := make([]float64, len(spec.Y))
	for i, y := range spec.Y {
		v, err := eval(y.Expr, ctx)
		if errors.Is(err, errSkip) {
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("table %q: %w", spec.Name, err)
		}
		if v.Str {
			return false, fmt.Errorf("table %q: y expression %q produced a string", spec.Name, y.Label)
		}
		ys[i] = v.F
	}
	key := groupKey(xs)
	g := groups[key]
	if g == nil {
		g = &group{x: xs, y: make([]cell, len(spec.Y))}
		for i := range g.y {
			g.y[i].min = math.Inf(1)
			g.y[i].max = math.Inf(-1)
		}
		groups[key] = g
	}
	for i, v := range ys {
		c := &g.y[i]
		c.sum += v
		c.n++
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}
	return false, nil
}

func finalize(a Agg, c cell) float64 {
	switch a {
	case AggSum:
		return c.sum
	case AggAvg:
		if c.n == 0 {
			return 0
		}
		return c.sum / float64(c.n)
	case AggMin:
		if c.n == 0 {
			return 0
		}
		return c.min
	case AggMax:
		if c.n == 0 {
			return 0
		}
		return c.max
	case AggCount:
		return float64(c.n)
	}
	return 0
}

func groupKey(xs []Value) string {
	var b strings.Builder
	for _, v := range xs {
		if v.Str {
			b.WriteByte('s')
			b.WriteString(v.S)
		} else {
			fmt.Fprintf(&b, "n%g", v.F)
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

// sortRows orders rows by x tuple: numbers numerically, strings
// lexically, numbers before strings per column.
func sortRows(t *Table) {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i].X, t.Rows[j].X
		for k := range a {
			if k >= len(b) {
				return false
			}
			av, bv := a[k], b[k]
			if av.Str != bv.Str {
				return !av.Str
			}
			if av.Str {
				if av.S != bv.S {
					return av.S < bv.S
				}
				continue
			}
			if av.F != bv.F {
				return av.F < bv.F
			}
		}
		return false
	})
}

// TSV renders the table as tab-separated values with a header row (the
// paper: "The generated tables is a tab-separated-value text file").
func (t *Table) TSV() string {
	var b strings.Builder
	for i, l := range append(append([]string{}, t.XLabels...), t.YLabels...) {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteString(l)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, x := range r.X {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(x.Text())
		}
		for i, y := range r.Y {
			if i > 0 || len(r.X) > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(num(y).Text())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell looks up a row by x values (rendered text form) and returns the
// y column value; used by tests and the viewer.
func (t *Table) Cell(xs []string, ycol int) (float64, bool) {
	for _, r := range t.Rows {
		if len(r.X) != len(xs) {
			continue
		}
		match := true
		for i := range xs {
			if r.X[i].Text() != xs[i] {
				match = false
				break
			}
		}
		if match && ycol < len(r.Y) {
			return r.Y[ycol], true
		}
	}
	return 0, false
}
