package stats

// Time-resolved metric tables: the run (or the selected window) is cut
// into N equal-width time buckets and three fixed tables are computed
// over them — per-state-type busy time, busy-time load balance across
// (node, cpu) lanes, and peak interval concurrency. They are fed
// straight from columnar batches: bucket overlap needs only the start,
// duration, type, node, and cpu columns, so no records are ever
// materialized. All accumulation is integer nanoseconds, making results
// independent of worker count and frame boundaries.

import (
	"fmt"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
)

// TimeResolved computes the three time-resolved tables over bins equal
// time buckets spanning the full run, or the intersection of the run
// with the window when opts.Window is set. Frames outside the window
// are pruned from the directory aggregates and never decoded.
func TimeResolved(files []*interval.File, bins int, opts Options) ([]*Table, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: time-resolved tables need at least 1 bin, got %d", bins)
	}
	t0, t1, err := runBounds(files)
	if err != nil {
		return nil, err
	}
	if opts.Window {
		t0, t1 = max(t0, opts.Lo), min(t1, opts.Hi)
	}
	if t1 < t0 {
		t1 = t0
	}
	br := bucketRuler{lo: t0, span: int64(t1 - t0), bins: bins}

	// Summary-pyramid fast path: a single file with a usable pyramid
	// answers every cell from O(bins) summary cells instead of decoding
	// frames. Peak concurrency across several files is a property of the
	// merged event set, so the fast path is single-file only.
	if len(files) == 1 && opts.Summary != interval.SummaryScan {
		tabs, err := timeResolvedPyramid(files[0], bins, br, opts)
		if err == nil {
			return tabs, nil
		}
		if opts.Summary == interval.SummaryPyramid {
			return nil, err
		}
	} else if opts.Summary == interval.SummaryPyramid {
		return nil, fmt.Errorf("stats: the pyramid engine answers a single file, got %d", len(files))
	}

	agg := &trAgg{bins: bins, busy: map[trBusyKey]clock.Time{}, lane: map[trLaneKey]clock.Time{}}
	mopts := interval.MapOptions{Parallel: opts.Parallel, Window: opts.Window, Lo: opts.Lo, Hi: opts.Hi, Context: opts.Context}
	err = interval.MapFilesBatches(files, mopts,
		func(_ int, _ interval.FrameEntry, b *interval.Batch) (*trAgg, error) {
			p := &trAgg{bins: bins, busy: map[trBusyKey]clock.Time{}, lane: map[trLaneKey]clock.Time{}}
			for i := 0; i < b.N; i++ {
				typ := b.Type[i]
				if typ == events.EvRunning || typ == events.EvGlobalClock {
					continue
				}
				s, e := b.Start[i], b.Start[i]+b.Dura[i]
				s, e = max(s, t0), min(e, t1)
				if s >= e {
					continue
				}
				p.events = append(p.events, trEvent{t: s, d: 1}, trEvent{t: e, d: -1})
				lane := trLane{node: b.Node[i], cpu: b.CPU[i]}
				for bi := br.bucketOf(s); bi < bins && br.bound(bi) < e; bi++ {
					ov := min(e, br.bound(bi+1)) - max(s, br.bound(bi))
					p.busy[trBusyKey{typ, bi}] += ov
					p.lane[trLaneKey{lane, bi}] += ov
				}
			}
			return p, nil
		},
		func(_ int, _ interval.FrameEntry, p *trAgg) error {
			for k, v := range p.busy {
				agg.busy[k] += v
			}
			for k, v := range p.lane {
				agg.lane[k] += v
			}
			agg.events = append(agg.events, p.events...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return agg.tables(br, "scan"), nil
}

// timeResolvedPyramid builds the three tables from one SummarizeWindow
// call on the file's attached pyramid. The summary's per-bin busy maps
// and peaks carry exactly the integer quantities the frame-decode path
// accumulates (the interval package's differential suite proves the two
// engines byte-identical), so the emitted tables are byte-identical
// too — only the Engine marker differs.
func timeResolvedPyramid(f *interval.File, bins int, br bucketRuler, opts Options) ([]*Table, error) {
	ws, err := f.SummarizeWindow(interval.WindowSummaryOptions{
		Bins:    bins,
		Lo:      br.lo,
		Hi:      br.lo + clock.Time(br.span),
		Engine:  interval.SummaryPyramid,
		Context: opts.Context,
	})
	if err != nil {
		return nil, err
	}
	agg := &trAgg{bins: bins, busy: map[trBusyKey]clock.Time{}, lane: map[trLaneKey]clock.Time{}}
	peaks := make([]int, bins)
	for bi := range ws.Bins {
		b := &ws.Bins[bi]
		peaks[bi] = b.PeakConc
		for typ, v := range b.BusyByType {
			// The pyramid histograms every type; this path applies the
			// same exclusions as the frame-decode loop above.
			if typ == events.EvRunning || typ == events.EvGlobalClock {
				continue
			}
			agg.busy[trBusyKey{typ, bi}] += v
		}
		for lane, v := range b.BusyByLane {
			agg.lane[trLaneKey{trLane{node: lane.Node, cpu: lane.CPU}, bi}] += v
		}
	}
	tabs := []*Table{agg.busyTable(br), agg.laneTable(br), concurrencyRows(br, peaks)}
	for _, t := range tabs {
		t.Engine = "pyramid"
	}
	return tabs, nil
}

// bucketRuler maps times to buckets with exact integer boundaries:
// bound(i) = lo + (span/bins)*i + (span%bins)*i/bins, so bound(0) = lo,
// bound(bins) = hi, and consecutive widths differ by at most one
// nanosecond. Buckets are half-open [bound(i), bound(i+1)).
type bucketRuler struct {
	lo   clock.Time
	span int64
	bins int
}

func (br bucketRuler) bound(i int) clock.Time {
	return br.lo + clock.Time((br.span/int64(br.bins))*int64(i)+(br.span%int64(br.bins))*int64(i)/int64(br.bins))
}

func (br bucketRuler) bucketOf(t clock.Time) int {
	if br.span <= 0 {
		return 0
	}
	i := int(int64(t-br.lo) * int64(br.bins) / br.span)
	if i >= br.bins {
		i = br.bins - 1
	}
	for i > 0 && t < br.bound(i) {
		i--
	}
	for i < br.bins-1 && t >= br.bound(i+1) {
		i++
	}
	return i
}

type trLane struct{ node, cpu uint16 }
type trBusyKey struct {
	typ events.Type
	bin int
}
type trLaneKey struct {
	lane trLane
	bin  int
}

// trEvent is one endpoint of a busy interval for the concurrency sweep.
type trEvent struct {
	t clock.Time
	d int
}

type trAgg struct {
	bins   int
	busy   map[trBusyKey]clock.Time
	lane   map[trLaneKey]clock.Time
	events []trEvent
}

func (a *trAgg) tables(br bucketRuler, engine string) []*Table {
	tabs := []*Table{a.busyTable(br), a.laneTable(br), a.concurrencyTable(br)}
	for _, t := range tabs {
		t.Engine = engine
	}
	return tabs
}

// busyTable: one row per (bucket, state type) with any busy time, in
// bucket order then type-name order.
func (a *trAgg) busyTable(br bucketRuler) *Table {
	t := &Table{Name: "tr_busy_by_type", XLabels: []string{"bin", "t0", "state"}, YLabels: []string{"busy"}, Columnar: true}
	type rowKey struct {
		bin  int
		name string
	}
	rows := make(map[rowKey]clock.Time, len(a.busy))
	for k, v := range a.busy {
		rows[rowKey{k.bin, k.typ.Name()}] += v
	}
	keys := make([]rowKey, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bin != keys[j].bin {
			return keys[i].bin < keys[j].bin
		}
		return keys[i].name < keys[j].name
	})
	for _, k := range keys {
		t.Rows = append(t.Rows, Row{
			X: []Value{num(float64(k.bin)), num(br.bound(k.bin).Seconds()), str(k.name)},
			Y: []float64{rows[k].Seconds()},
		})
	}
	return t
}

// laneTable: one row per bucket with mean and max busy time across all
// (node, cpu) lanes observed anywhere in the run — a lane idle in a
// bucket counts as zero, which is the whole point of load balance —
// and their ratio (0 when the bucket is empty).
func (a *trAgg) laneTable(br bucketRuler) *Table {
	t := &Table{Name: "tr_load_balance", XLabels: []string{"bin", "t0"}, YLabels: []string{"mean_busy", "max_busy", "imbalance"}, Columnar: true}
	laneSet := map[trLane]bool{}
	for k := range a.lane {
		laneSet[k.lane] = true
	}
	nLanes := len(laneSet)
	for bi := 0; bi < a.bins; bi++ {
		var total, maxBusy clock.Time
		for lane := range laneSet {
			v := a.lane[trLaneKey{lane, bi}]
			total += v
			maxBusy = max(maxBusy, v)
		}
		var mean, imb float64
		if nLanes > 0 {
			mean = total.Seconds() / float64(nLanes)
		}
		if mean > 0 {
			imb = maxBusy.Seconds() / mean
		}
		t.Rows = append(t.Rows, Row{
			X: []Value{num(float64(bi)), num(br.bound(bi).Seconds())},
			Y: []float64{mean, maxBusy.Seconds(), imb},
		})
	}
	return t
}

// concurrencyTable: one row per bucket with the peak number of busy
// intervals simultaneously open at any instant inside the bucket. The
// sweep sorts the merged endpoint list (ends before starts at equal
// times: intervals are half-open), so the result does not depend on
// frame boundaries or worker count.
func (a *trAgg) concurrencyTable(br bucketRuler) *Table {
	evs := a.events
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d
	})
	peaks := make([]int, a.bins)
	cur, ei := 0, 0
	for bi := 0; bi < a.bins; bi++ {
		hi := br.bound(bi + 1)
		if bi == a.bins-1 {
			hi = br.bound(a.bins) + 1 // the last bucket is closed on the right
		}
		// The entry concurrency holds on [bound(bi), first event) — but
		// only when that span is non-empty; events exactly at the bucket
		// boundary redefine the value at the boundary instant itself.
		p := -1
		if ei >= len(evs) || evs[ei].t > br.bound(bi) {
			p = cur
		}
		for ei < len(evs) && evs[ei].t < hi {
			at := evs[ei].t
			for ei < len(evs) && evs[ei].t == at {
				cur += evs[ei].d
				ei++
			}
			p = max(p, cur)
		}
		peaks[bi] = max(p, 0)
	}
	return concurrencyRows(br, peaks)
}

// concurrencyRows emits the tr_concurrency table from per-bucket peaks,
// whichever engine computed them.
func concurrencyRows(br bucketRuler, peaks []int) *Table {
	t := &Table{Name: "tr_concurrency", XLabels: []string{"bin", "t0"}, YLabels: []string{"peak"}, Columnar: true}
	for bi, p := range peaks {
		t.Rows = append(t.Rows, Row{
			X: []Value{num(float64(bi)), num(br.bound(bi).Seconds())},
			Y: []float64{float64(p)},
		})
	}
	return t
}
