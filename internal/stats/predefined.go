package stats

import "fmt"

// Predefined returns the source of the pre-defined tables generated when
// the statistics utility is given no program (paper §3.2). The first —
// the sum of the duration of "interesting" intervals (states other than
// the default Running state) per node and per `bins` equally sized time
// bins — is the table visualized in the paper's Figure 6.
func Predefined(bins int) string {
	if bins <= 0 {
		bins = 50
	}
	return fmt.Sprintf(`
# Figure 6: interesting (non-Running) time per node per time bin.
table name=interesting_by_node_bin
      condition=(state != "Running" && state != "GlobalClock")
      x=("node", node)
      x=("bin", bin(start, %d))
      y=("sum(duration)", dura, sum)

# Per-state call counts and durations.
table name=duration_by_state
      condition=(state != "GlobalClock")
      x=("state", state)
      y=("calls", iscall, sum)
      y=("sum(duration)", dura, sum)
      y=("avg(duration)", dura, avg)
      y=("max(duration)", dura, max)

# Message traffic matrix: bytes sent between task pairs, from the
# final pieces of send-type intervals.
table name=bytes_by_pair
      condition=((state == "MPI_Send" || state == "MPI_Isend" || state == "MPI_Sendrecv") && msgSizeSent > 0)
      x=("srcNode", node)
      x=("dstTask", peer)
      y=("bytes", msgSizeSent, sum)
      y=("messages", iscall, sum)

# Processor occupancy: busy time per node and CPU.
table name=busy_by_cpu
      condition=(state != "GlobalClock")
      x=("node", node)
      x=("processor", cpu)
      y=("busy", dura, sum)

# Thread activity: time per node, thread and state.
table name=thread_state_time
      condition=(state != "GlobalClock")
      x=("node", node)
      x=("thread", thread)
      x=("state", state)
      y=("time", dura, sum)
      y=("pieces", 1, count)
`, bins)
}
