package stats_test

// Oracle tests for the time-resolved tables: an independent
// brute-force over a full record scan must reproduce every cell the
// batch-fed implementation emits.

import (
	"math"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/stats"
)

// trBound replicates the exact integer bucket boundary rule.
func trBound(lo clock.Time, span int64, bins, i int) clock.Time {
	return lo + clock.Time((span/int64(bins))*int64(i)+(span%int64(bins))*int64(i)/int64(bins))
}

func busyRecord(r interval.Record) bool {
	return r.Type != events.EvRunning && r.Type != events.EvGlobalClock
}

func TestTimeResolvedOracle(t *testing.T) {
	mf := mergedFile(t)
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	t0, t1, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		bins int
		opts stats.Options
		lo   clock.Time
		hi   clock.Time
	}{
		{"full-7", 7, stats.Options{}, t0, t1},
		{"full-1", 1, stats.Options{}, t0, t1},
		{"full-64-par", 64, stats.Options{Parallel: 4}, t0, t1},
		{"windowed", 9, stats.Options{Window: true, Lo: t0 + (t1-t0)/4, Hi: t0 + (t1-t0)/2},
			t0 + (t1-t0)/4, t0 + (t1-t0)/2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tables, err := stats.TimeResolved([]*interval.File{mf}, tc.bins, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) != 3 {
				t.Fatalf("got %d tables, want 3", len(tables))
			}
			busyT, laneT, concT := tables[0], tables[1], tables[2]
			lo, hi := tc.lo, tc.hi
			span := int64(hi - lo)
			bins := tc.bins
			bound := func(i int) clock.Time { return trBound(lo, span, bins, i) }

			// Busy time per (bucket, type) and per (bucket, lane), brute force.
			type lane struct{ node, cpu uint16 }
			busy := map[[2]interface{}]clock.Time{}
			laneBusy := map[int]map[lane]clock.Time{}
			lanes := map[lane]bool{}
			for bi := 0; bi < bins; bi++ {
				laneBusy[bi] = map[lane]clock.Time{}
			}
			for _, r := range recs {
				if !busyRecord(r) {
					continue
				}
				s, e := max(r.Start, lo), min(r.End(), hi)
				if s >= e {
					continue
				}
				lanes[lane{r.Node, r.CPU}] = true
				for bi := 0; bi < bins; bi++ {
					ov := min(e, bound(bi+1)) - max(s, bound(bi))
					if ov > 0 {
						busy[[2]interface{}{bi, r.Type.Name()}] += ov
						laneBusy[bi][lane{r.Node, r.CPU}] += ov
					}
				}
			}

			// tr_busy_by_type: cell-by-cell against the oracle, and no
			// spurious rows.
			if got, want := len(busyT.Rows), len(busy); got != want {
				t.Fatalf("tr_busy_by_type has %d rows, oracle %d", got, want)
			}
			for _, row := range busyT.Rows {
				bi := int(row.X[0].F)
				name := row.X[1+1].S
				want := busy[[2]interface{}{bi, name}].Seconds()
				if row.Y[0] != want {
					t.Fatalf("busy[%d, %s] = %v, oracle %v", bi, name, row.Y[0], want)
				}
				if row.X[1].F != bound(bi).Seconds() {
					t.Fatalf("busy bucket %d: t0 %v, want %v", bi, row.X[1].F, bound(bi).Seconds())
				}
			}

			// tr_load_balance.
			if len(laneT.Rows) != bins {
				t.Fatalf("tr_load_balance has %d rows, want %d", len(laneT.Rows), bins)
			}
			for bi, row := range laneT.Rows {
				var total, maxB clock.Time
				for l := range lanes {
					v := laneBusy[bi][l]
					total += v
					maxB = max(maxB, v)
				}
				var mean, imb float64
				if len(lanes) > 0 {
					mean = total.Seconds() / float64(len(lanes))
				}
				if mean > 0 {
					imb = maxB.Seconds() / mean
				}
				if row.Y[0] != mean || row.Y[1] != maxB.Seconds() || math.Abs(row.Y[2]-imb) > 1e-12 {
					t.Fatalf("load_balance[%d] = %v, oracle [%v %v %v]", bi, row.Y, mean, maxB.Seconds(), imb)
				}
			}

			// tr_concurrency: peak per bucket by brute-force evaluation of
			// c(t) = #{intervals: s <= t < e} at every candidate instant.
			type iv struct{ s, e clock.Time }
			var ivs []iv
			for _, r := range recs {
				if !busyRecord(r) {
					continue
				}
				s, e := max(r.Start, lo), min(r.End(), hi)
				if s < e {
					ivs = append(ivs, iv{s, e})
				}
			}
			concAt := func(at clock.Time) int {
				n := 0
				for _, v := range ivs {
					if v.s <= at && at < v.e {
						n++
					}
				}
				return n
			}
			if len(concT.Rows) != bins {
				t.Fatalf("tr_concurrency has %d rows, want %d", len(concT.Rows), bins)
			}
			for bi, row := range concT.Rows {
				blo, bhi := bound(bi), bound(bi+1)
				peak := 0
				cands := []clock.Time{blo}
				for _, v := range ivs {
					for _, c := range []clock.Time{v.s, v.e} {
						if c >= blo && (c < bhi || (bi == bins-1 && c <= bhi)) {
							cands = append(cands, c)
						}
					}
				}
				for _, c := range cands {
					if n := concAt(c); n > peak {
						peak = n
					}
				}
				if int(row.Y[0]) != peak {
					t.Fatalf("concurrency[%d] = %v, oracle %d", bi, row.Y[0], peak)
				}
			}
		})
	}
}

// TestTimeResolvedDeterministic pins byte-identity across worker counts.
func TestTimeResolvedDeterministic(t *testing.T) {
	mf := mergedFile(t)
	render := func(par int) string {
		tables, err := stats.TimeResolved([]*interval.File{mf}, 32, stats.Options{Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		return renderTables(tables)
	}
	want := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != want {
			t.Fatalf("-j%d time-resolved output differs from sequential", par)
		}
	}
}

func TestTimeResolvedValidation(t *testing.T) {
	mf := mergedFile(t)
	if _, err := stats.TimeResolved([]*interval.File{mf}, 0, stats.Options{}); err == nil {
		t.Fatal("bins=0 accepted")
	}
}
