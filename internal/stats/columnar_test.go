package stats_test

// Differential tests for the columnar engine: every program that the
// kernel compiler accepts must produce byte-identical TSV (and identical
// Skipped counts) to the record-at-a-time evaluator, on fixture files at
// every header version the format has shipped.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
	"tracefw/internal/stats"
)

// reencode rewrites recs into a fresh in-memory interval file at the
// given header version, preserving the source header's thread table and
// marker dictionary. Small frames and directories force multi-frame,
// multi-directory files so frame-boundary behavior is exercised.
func reencode(t *testing.T, hdr interval.Header, recs []interval.Record, version uint32) *interval.File {
	t.Helper()
	hdr.HeaderVersion = version
	sb := interval.NewSeekBuffer()
	w, err := interval.NewWriter(sb, hdr, interval.WriterOptions{FrameBytes: 1024, FramesPerDir: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := interval.NewFile(interval.NewSeekBufferFrom(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// versionFixtures produces the merged pipeline trace re-encoded at every
// header version, keyed by version.
func versionFixtures(t *testing.T) map[uint32]*interval.File {
	t.Helper()
	mf := mergedFile(t)
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint32]*interval.File)
	for v := uint32(1); v <= interval.CurrentHeaderVersion; v++ {
		out[v] = reencode(t, mf.Header, recs, v)
	}
	return out
}

// renderTables flattens generation output, including the per-table
// engine flag and excluded-record count, so any divergence — values,
// row order, skip accounting — fails the comparison.
func renderTables(tables []*stats.Table) string {
	var b strings.Builder
	for _, tb := range tables {
		fmt.Fprintf(&b, "== %s skipped=%d\n%s", tb.Name, tb.Skipped, tb.TSV())
	}
	return b.String()
}

// runBoth evaluates one program under both engines and reports the
// outputs and errors.
func runBoth(program string, files []*interval.File, opts stats.Options) (scalar, columnar string, serr, cerr error) {
	o := opts
	o.Engine = stats.EngineScalar
	st, serr := stats.GenerateOpts(program, files, o)
	o.Engine = stats.EngineColumnar
	ct, cerr := stats.GenerateOpts(program, files, o)
	return renderTables(st), renderTables(ct), serr, cerr
}

// diffProgram asserts the two engines agree on program: same
// error-or-not outcome, and byte-identical rendering on success.
func diffProgram(t *testing.T, program string, files []*interval.File, opts stats.Options) {
	t.Helper()
	if _, err := stats.Parse(program); err != nil {
		t.Fatalf("program %q does not parse (vacuous comparison): %v", program, err)
	}
	s, c, serr, cerr := runBoth(program, files, opts)
	if (serr == nil) != (cerr == nil) {
		t.Fatalf("engines disagree on error for %q:\n  scalar:   %v\n  columnar: %v", program, serr, cerr)
	}
	if serr != nil {
		return
	}
	if s != c {
		t.Fatalf("engines diverge for %q:\n--- scalar ---\n%s--- columnar ---\n%s", program, s, c)
	}
}

func TestColumnarPredefinedAllVersions(t *testing.T) {
	fixtures := versionFixtures(t)
	program := stats.Predefined(16)
	for v := uint32(1); v <= interval.CurrentHeaderVersion; v++ {
		f := fixtures[v]
		diffProgram(t, program, []*interval.File{f}, stats.Options{})
		// The columnar engine must actually have run (predefined tables
		// are fully lowerable) and report so.
		tables, err := stats.GenerateOpts(program, []*interval.File{f}, stats.Options{Engine: stats.EngineColumnar})
		if err != nil {
			t.Fatalf("v%d: columnar: %v", v, err)
		}
		for _, tb := range tables {
			if !tb.Columnar {
				t.Fatalf("v%d: table %q not marked columnar", v, tb.Name)
			}
		}
	}
}

// differentialPrograms exercises every kernel the compiler emits:
// field loads (numeric and string), extras with per-type skip bitmaps,
// all arithmetic and comparison ops, short-circuit logic over skipping
// operands, bin/floor/abs, grouping on mixed key kinds, and the
// division/modulo and floor-needs-a-number runtime errors.
var differentialPrograms = []string{
	`table name=count y=("n", dura, count)`,
	`table name=bynode x=("x", node) y=("t", dura, sum) y=("n", dura, count)`,
	`table name=bycpu x=("n", node) x=("c", cpu) y=("avg", dura, avg) y=("max", dura, max) y=("min", dura, min)`,
	`table name=bystate x=("x", state) y=("t", dura, sum)`,
	`table name=bebits x=("be", bebits) x=("st", state) y=("n", start, count)`,
	`table name=sent x=("x", node) y=("bytes", msgSizeSent, sum)`,
	`table name=peers x=("p", peer) x=("tg", tag) y=("n", msgSizeSent, count)`,
	`table name=binned x=("x", bin(start, 8)) y=("t", dura, sum)`,
	`table name=binone x=("x", bin(start, 1)) y=("n", dura, count)`,
	`table name=endfld y=("last", end, max) y=("first", start, min)`,
	`table name=iscalls condition=(iscall) y=("n", dura, count)`,
	`table name=notcall condition=(!iscall) x=("x", type) y=("n", dura, count)`,
	`table name=andskip condition=(msgSizeSent > 0 && dura > 0) y=("n", dura, count)`,
	`table name=orskip condition=(cpu == 0 || msgSizeSent > 100) y=("n", dura, count)`,
	`table name=andboth condition=(msgSizeSent >= 0 && msgSizeRecv >= 0) y=("n", dura, count)`,
	`table name=constleft condition=(1 && node == 0) y=("n", dura, count)`,
	`table name=constshort condition=(0 && msgSizeSent > 0) y=("n", dura, count)`,
	`table name=orshort condition=(1 || msgSizeSent > 0) y=("n", dura, count)`,
	`table name=arith y=("r", (dura + 1) * 2 - start / 4, sum)`,
	`table name=division y=("r", dura / (dura + 1), avg)`,
	`table name=modulo x=("x", node % 2) y=("n", dura, count)`,
	`table name=neg y=("n", -dura, min)`,
	`table name=negstart x=("x", -(node)) y=("n", dura, count)`,
	`table name=floorfn x=("x", floor(start * 1000)) y=("t", dura, sum)`,
	`table name=absfn y=("a", abs(-dura), sum)`,
	`table name=cmps condition=(start <= end && dura != 0 && node < 2) y=("n", dura, count)`,
	`table name=strcmp condition=(state != bebits) y=("n", dura, count)`,
	`table name=streq condition=(state == state) y=("n", dura, count)`,
	`table name=strgrp x=("st", state) x=("n", node) y=("t", dura, sum) y=("n", dura, count)`,
	`table name=threads x=("x", thread) y=("n", dura, count)`,
	`table name=typegrp x=("x", type) y=("n", dura, count)`,
	`table name=skipx x=("x", msgSizeSent) y=("n", dura, count)`,
	`table name=skipy y=("bytes", msgSizeRecv, sum) y=("n", msgSizeRecv, count)`,
	`table name=multi1 y=("n", dura, count)
table name=multi2 x=("x", node) y=("t", dura, sum)
table name=multi3 condition=(msgSizeSent > 0) x=("x", peer) y=("b", msgSizeSent, avg)`,
	// Runtime errors: both engines must fail (single-table programs, so
	// the reported error is unambiguous).
	`table name=divzero y=("r", dura / (cpu - cpu), sum)`,
	`table name=modzero y=("r", node % 0, sum)`,
	`table name=floorskip y=("n", floor(msgSizeSent), sum)`,
	`table name=absskip y=("n", abs(msgSizeRecv), sum)`,
	`table name=stringy y=("s", state, sum)`,
	`table name=binzero x=("x", bin(start, 0)) y=("n", dura, count)`,
}

func TestColumnarDifferentialExpressions(t *testing.T) {
	fixtures := versionFixtures(t)
	for _, v := range []uint32{1, interval.CurrentHeaderVersion} {
		files := []*interval.File{fixtures[v]}
		for _, program := range differentialPrograms {
			diffProgram(t, program, files, stats.Options{})
		}
	}
}

// TestColumnarRuntimeErrorMessages pins the wrapped error text on the
// single-error programs, where both engines must report the same thing.
func TestColumnarRuntimeErrorMessages(t *testing.T) {
	mf := mergedFile(t)
	files := []*interval.File{mf}
	for _, tc := range []struct{ program, want string }{
		{`table name=dz y=("r", dura / (cpu - cpu), sum)`, "stats: division by zero"},
		{`table name=mz y=("r", node % 0, sum)`, "stats: modulo by zero"},
		{`table name=fs y=("n", floor(msgSizeSent), sum)`, "stats: floor() needs a number"},
		{`table name=as y=("n", abs(msgSizeRecv), sum)`, "stats: abs() needs a number"},
	} {
		_, _, serr, cerr := runBoth(tc.program, files, stats.Options{})
		if serr == nil || cerr == nil {
			t.Fatalf("%q: expected both engines to fail, scalar=%v columnar=%v", tc.program, serr, cerr)
		}
		if serr.Error() != cerr.Error() {
			t.Fatalf("%q: error text differs:\n  scalar:   %v\n  columnar: %v", tc.program, serr, cerr)
		}
		if !strings.Contains(cerr.Error(), tc.want) {
			t.Fatalf("%q: error %v does not mention %q", tc.program, cerr, tc.want)
		}
	}
}

func TestColumnarWindowedDifferential(t *testing.T) {
	fixtures := versionFixtures(t)
	f := fixtures[interval.CurrentHeaderVersion]
	fs, fe, _, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	program := stats.Predefined(8) + "\ntable name=w x=(\"x\", node) y=(\"t\", dura, sum) y=(\"n\", dura, count)"
	for _, win := range [][2]clock.Time{
		{fs, fe},                             // full run: every frame fully inside
		{fs + (fe-fs)/4, fs + (fe-fs)/2},     // interior: mix of pruned and edge frames
		{fs - 1000, fs + (fe-fs)/100},        // leading edge
		{fe + 1, fe + 1000},                  // empty
		{fs + (fe-fs)/3, fs + (fe-fs)/3 + 1}, // near-degenerate
	} {
		for _, par := range []int{1, 4} {
			opts := stats.Options{Parallel: par, Window: true, Lo: win[0], Hi: win[1]}
			diffProgram(t, program, []*interval.File{f}, opts)
		}
	}
}

func TestColumnarSkippedCountSurfaced(t *testing.T) {
	mf := mergedFile(t)
	files := []*interval.File{mf}
	// msgSizeSent exists only on send-like records, so every other
	// record is excluded via errSkip and must be counted.
	program := `table name=sent y=("bytes", msgSizeSent, sum)`
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range recs {
		if _, ok := r.Field("msgSizeSent"); !ok {
			want++
		}
	}
	if want == 0 {
		t.Fatal("fixture has no records lacking msgSizeSent; test is vacuous")
	}
	for _, eng := range []stats.Engine{stats.EngineScalar, stats.EngineColumnar} {
		tables, err := stats.GenerateOpts(program, files, stats.Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if tables[0].Skipped != want {
			t.Fatalf("engine %v: Skipped = %d, want %d", eng, tables[0].Skipped, want)
		}
	}
}

// TestColumnarFallback pins the compiler's refusal list: markername
// needs the marker dictionary and string-valued records, so programs
// using it are not lowerable. EngineColumnar must fail loudly,
// EngineAuto must silently produce the scalar engine's exact output.
func TestColumnarFallback(t *testing.T) {
	mf := mergedFile(t)
	files := []*interval.File{mf}
	program := `table name=marks x=("x", markername) y=("n", dura, count)`

	specs, err := stats.Parse(program)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if stats.Lowerable(spec) {
			t.Fatalf("spec %q unexpectedly lowerable", spec.Name)
		}
	}

	if _, err := stats.GenerateOpts(program, files, stats.Options{Engine: stats.EngineColumnar}); err == nil {
		t.Fatal("EngineColumnar accepted an unlowerable program")
	} else if !strings.Contains(err.Error(), "not lowerable") {
		t.Fatalf("unexpected error: %v", err)
	}

	auto, err := stats.GenerateOpts(program, files, stats.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := stats.GenerateOpts(program, files, stats.Options{Engine: stats.EngineScalar})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range auto {
		if tb.Columnar {
			t.Fatalf("auto engine marked table %q columnar despite fallback", tb.Name)
		}
	}
	if renderTables(auto) != renderTables(scalar) {
		t.Fatal("auto fallback output differs from explicit scalar engine")
	}

	// One lowerable spec plus one unlowerable spec: compilation is
	// all-or-nothing, so the whole program falls back.
	mixed := program + "\ntable name=ok y=(\"n\", dura, count)"
	tables, err := stats.GenerateOpts(mixed, files, stats.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.Columnar {
			t.Fatalf("mixed program: table %q marked columnar", tb.Name)
		}
	}
}

func TestLowerableCoverage(t *testing.T) {
	for _, tc := range []struct {
		program string
		want    bool
	}{
		{`table name=a y=("n", dura, count)`, true},
		{`table name=a condition=(state == "Running") x=("b", bin(start, 4)) x=("n", node) y=("n", floor(dura), sum)`, true},
		{`table name=a x=("x", markername) y=("n", dura, count)`, false},
		{`table name=a condition=(state == 1) y=("n", dura, count)`, false},    // kind mismatch
		{`table name=a y=("n", -state, count)`, false},                         // unary minus on string
		{`table name=a x=("x", bin(state, 4)) y=("n", dura, count)`, false},         // bin on string
		{`table name=a y=("n", floor(state), sum)`, false},                     // floor on string
		{`table name=a y=("n", nosuchfn(dura), sum)`, false},                   // unknown function
		{`table name=a condition=(markername == "x") y=("n", dura, count)`, false},
	} {
		specs, err := stats.Parse(tc.program)
		if err != nil {
			t.Fatalf("%q: parse: %v", tc.program, err)
		}
		if got := stats.Lowerable(specs[0]); got != tc.want {
			t.Fatalf("Lowerable(%q) = %v, want %v", tc.program, got, tc.want)
		}
	}
}

// Grammar-directed expression sampler for the property test below. It
// only emits expressions inside the compiler's accepted subset — the
// point is to compare the two engines on programs both can run — but
// freely mixes skipping extras, short-circuit logic, and the partial
// functions, so runtime error paths are sampled too.
type exprGen struct{ r *rand.Rand }

func (g *exprGen) numField() string {
	fields := []string{"start", "dura", "end", "node", "cpu", "thread", "type", "iscall",
		"msgSizeSent", "msgSizeRecv", "peer", "tag", "comm", "seqno"}
	return fields[g.r.Intn(len(fields))]
}

func (g *exprGen) num(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(7))
		default:
			return g.numField()
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.num(depth-1),
			[]string{"+", "-", "*", "/", "%"}[g.r.Intn(5)], g.num(depth-1))
	case 1:
		return fmt.Sprintf("(-%s)", g.num(depth-1))
	case 2:
		return fmt.Sprintf("floor(%s)", g.num(depth-1))
	case 3:
		return fmt.Sprintf("abs(%s)", g.num(depth-1))
	case 4:
		return fmt.Sprintf("bin(%s, %d)", g.numField(), 1+g.r.Intn(16))
	case 5:
		return fmt.Sprintf("(%s %s %s)", g.num(depth-1),
			[]string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)], g.num(depth-1))
	case 6:
		return fmt.Sprintf("(%s %s %s)", g.num(depth-1),
			[]string{"&&", "||"}[g.r.Intn(2)], g.num(depth-1))
	default:
		return g.numField()
	}
}

func (g *exprGen) cond(depth int) string {
	if g.r.Intn(4) == 0 {
		return fmt.Sprintf("(state %s bebits)", []string{"==", "!="}[g.r.Intn(2)])
	}
	return g.num(depth)
}

func TestColumnarGrammarSampledDifferential(t *testing.T) {
	fixtures := versionFixtures(t)
	files := []*interval.File{fixtures[1], fixtures[interval.CurrentHeaderVersion]}
	g := &exprGen{r: rand.New(rand.NewSource(42))}
	aggs := []string{"sum", "count", "avg", "min", "max"}
	for i := 0; i < 80; i++ {
		program := fmt.Sprintf("table name=t%d condition=(%s) x=(%q, %s) y=(%q, %s, %s)",
			i, g.cond(2), "x", g.num(1), "v", g.num(2), aggs[g.r.Intn(len(aggs))])
		specs, err := stats.Parse(program)
		if err != nil {
			t.Fatalf("sampler produced unparsable program %q: %v", program, err)
		}
		if !stats.Lowerable(specs[0]) {
			t.Fatalf("sampler produced unlowerable program %q", program)
		}
		diffProgram(t, program, files, stats.Options{})
	}
}
