package stats_test

import (
	"strings"
	"testing"
	"testing/quick"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/stats"
	"tracefw/internal/testutil"
)

var shape = testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 2, Seed: 13}

func work(p *mpisim.Proc) {
	peer := 1 - p.Rank()
	for i := 0; i < 10; i++ {
		p.Compute(2 * clock.Millisecond)
		if p.Rank() == 0 {
			p.Send(peer, int32(i), 1000)
			p.Recv(int32(peer), int32(i))
		} else {
			p.Recv(int32(peer), int32(i))
			p.Send(peer, int32(i), 500)
		}
	}
	p.Barrier()
}

func mergedFile(t *testing.T) *interval.File {
	t.Helper()
	mf, _ := testutil.Pipeline(t, shape, merge.Options{}, work)
	return mf
}

func TestParseBasics(t *testing.T) {
	specs, err := stats.Parse(`table name=sample condition=(start < 2)
		x=("node", node) x=("processor", cpu)
		y=("avg(duration)", dura, avg)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs: %d", len(specs))
	}
	s := specs[0]
	if s.Name != "sample" || len(s.X) != 2 || len(s.Y) != 1 {
		t.Fatalf("spec: %+v", s)
	}
	if s.Y[0].Agg != stats.AggAvg {
		t.Fatalf("agg: %v", s.Y[0].Agg)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                                     // no tables
		`table x=("a", node) y=("b",dura,sum)`, // no name
		`table name=t`,                         // no y
		`table name=t y=("b", dura, bogus)`,    // bad agg
		`table name=t y=("b", dura sum)`,       // missing comma
		`table name=t y=("b", dura, sum) condition=(start <)`, // bad expr
		`table name=t y=("b", @, sum)`,                        // bad char
		`table name=t y=("unterminated`,                       // unterminated string
	}
	for _, src := range bad {
		if _, err := stats.Parse(src); err == nil {
			t.Fatalf("accepted: %q", src)
		}
	}
}

func TestPaperExampleProgram(t *testing.T) {
	// The paper's example: average duration of intervals starting in the
	// first 2 seconds, per (node, cpu).
	mf := mergedFile(t)
	tables, err := stats.Generate(`table name=sample condition=(start < 2)
		x=("node", node) x=("processor", cpu)
		y=("avg(duration)", dura, avg)`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if tb.Name != "sample" {
		t.Fatalf("table name %q", tb.Name)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	tsv := tb.TSV()
	if !strings.HasPrefix(tsv, "node\tprocessor\tavg(duration)\n") {
		t.Fatalf("tsv header: %q", strings.SplitN(tsv, "\n", 2)[0])
	}
}

func TestSumDurationMatchesScan(t *testing.T) {
	mf := mergedFile(t)
	tables, err := stats.Generate(`table name=total
		condition=(state != "GlobalClock")
		y=("total", dura, sum)`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := mf.Scan().All()
	var want float64
	for _, r := range recs {
		want += r.Dura.Seconds()
	}
	got := tables[0].Rows[0].Y[0]
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum(dura) = %v, scan says %v", got, want)
	}
}

func TestGroupingByNode(t *testing.T) {
	mf := mergedFile(t)
	tables, err := stats.Generate(`table name=bynode
		condition=(state == "MPI_Send")
		x=("node", node)
		y=("bytes", msgSizeSent, sum)
		y=("n", iscall, sum)`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %+v", tb.Rows)
	}
	// Node 0 sent 10×1000, node 1 sent 10×500.
	if v, ok := tb.Cell([]string{"0"}, 0); !ok || v != 10000 {
		t.Fatalf("node 0 bytes: %v %v", v, ok)
	}
	if v, ok := tb.Cell([]string{"1"}, 0); !ok || v != 5000 {
		t.Fatalf("node 1 bytes: %v %v", v, ok)
	}
	if v, _ := tb.Cell([]string{"0"}, 1); v != 10 {
		t.Fatalf("node 0 calls: %v", v)
	}
}

func TestConditionOperators(t *testing.T) {
	mf := mergedFile(t)
	progs := map[string]bool{
		`table name=t condition=(1 < 2 && 2 < 3) y=("n",1,count)`:         true,
		`table name=t condition=(1 > 2 || 0 != 0) y=("n",1,count)`:        false,
		`table name=t condition=(!(1 == 1)) y=("n",1,count)`:              false,
		`table name=t condition=(5 % 2 == 1) y=("n",1,count)`:             true,
		`table name=t condition=(-dura <= 0) y=("n",1,count)`:             true,
		`table name=t condition=(state != "NoSuchState") y=("n",1,count)`: true,
		`table name=t condition=(abs(0-2) == 2) y=("n",1,count)`:          true,
		`table name=t condition=(floor(1.7) == 1) y=("n",1,count)`:        true,
	}
	for src, wantRows := range progs {
		tables, err := stats.Generate(src, []*interval.File{mf})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got := len(tables[0].Rows) > 0
		if got != wantRows {
			t.Fatalf("%q: rows=%v want %v", src, got, wantRows)
		}
	}
}

func TestBinFunction(t *testing.T) {
	mf := mergedFile(t)
	tables, err := stats.Generate(`table name=bins
		condition=(state != "GlobalClock")
		x=("bin", bin(start, 10))
		y=("time", dura, sum)`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tables[0].Rows {
		b := r.X[0].F
		if b < 0 || b > 9 {
			t.Fatalf("bin out of range: %v", b)
		}
	}
}

func TestAggregators(t *testing.T) {
	mf := mergedFile(t)
	tables, err := stats.Generate(`table name=aggs
		condition=(state == "MPI_Send")
		y=("min", msgSizeSent, min)
		y=("max", msgSizeSent, max)
		y=("avg", dura, avg)
		y=("count", 1, count)`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	r := tables[0].Rows[0]
	// Pieces may carry 0 msgSizeSent; min is 0 or 500 depending on
	// splitting, max must be 1000.
	if r.Y[1] != 1000 {
		t.Fatalf("max: %v", r.Y[1])
	}
	if r.Y[2] <= 0 {
		t.Fatalf("avg duration: %v", r.Y[2])
	}
	if r.Y[3] < 20 {
		t.Fatalf("count: %v", r.Y[3])
	}
}

func TestMultipleTablesOnePass(t *testing.T) {
	mf := mergedFile(t)
	tables, err := stats.Generate(`
		table name=a y=("n", 1, count)
		table name=b condition=(state == "Running") y=("t", dura, sum)
	`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Name != "a" || tables[1].Name != "b" {
		t.Fatalf("tables: %+v", tables)
	}
}

func TestPredefinedTablesRun(t *testing.T) {
	mf := mergedFile(t)
	tables, err := stats.Generate(stats.Predefined(50), []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*stats.Table{}
	for _, tb := range tables {
		byName[tb.Name] = tb
	}
	fig6 := byName["interesting_by_node_bin"]
	if fig6 == nil {
		t.Fatal("no Figure 6 table")
	}
	if len(fig6.Rows) == 0 {
		t.Fatal("Figure 6 table empty")
	}
	// Bins in range, both nodes present.
	nodes := map[string]bool{}
	for _, r := range fig6.Rows {
		nodes[r.X[0].Text()] = true
		if b := r.X[1].F; b < 0 || b > 49 {
			t.Fatalf("bin %v", b)
		}
	}
	if !nodes["0"] || !nodes["1"] {
		t.Fatalf("nodes in fig6: %v", nodes)
	}
	if byName["duration_by_state"] == nil || byName["bytes_by_pair"] == nil ||
		byName["busy_by_cpu"] == nil || byName["thread_state_time"] == nil {
		t.Fatalf("missing predefined tables: %v", byName)
	}
	// Sanity: duration_by_state counts MPI_Send calls as calls (10+10).
	if v, ok := byName["duration_by_state"].Cell([]string{"MPI_Send"}, 0); !ok || v != 20 {
		t.Fatalf("MPI_Send calls: %v %v", v, ok)
	}
}

func TestFigure6QuietPhaseVisible(t *testing.T) {
	// A run with a long quiet (compute-only) middle phase: the Figure 6
	// table must show near-zero interesting time in the middle bins and
	// nonzero at both ends — the structure the paper's viewer displays.
	quiet := func(p *mpisim.Proc) {
		p.Alltoall(32 << 10)
		p.Compute(400 * clock.Millisecond) // quiet middle
		p.Alltoall(32 << 10)
	}
	mf, _ := testutil.Pipeline(t, shape, merge.Options{}, quiet)
	tables, err := stats.Generate(stats.Predefined(10), []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	fig6 := tables[0]
	perBin := map[int]float64{}
	for _, r := range fig6.Rows {
		perBin[int(r.X[1].F)] += r.Y[0]
	}
	if perBin[0] <= 0 {
		t.Fatalf("no interesting time at the start: %v", perBin)
	}
	mid := perBin[4] + perBin[5]
	if mid > perBin[0]/10 {
		t.Fatalf("quiet middle not quiet: start=%v mid=%v", perBin[0], mid)
	}
}

func TestStringYRejected(t *testing.T) {
	mf := mergedFile(t)
	_, err := stats.Generate(`table name=t y=("s", state, sum)`, []*interval.File{mf})
	if err == nil {
		t.Fatal("string y expression accepted")
	}
}

func TestMissingFieldSkipsRecord(t *testing.T) {
	mf := mergedFile(t)
	// msgSizeSent only exists on send-type records; others are skipped,
	// not errors.
	tables, err := stats.Generate(`table name=t x=("b", msgSizeSent) y=("n", 1, count)`,
		[]*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) == 0 {
		t.Fatal("all records skipped")
	}
}

func TestMultipleInputFiles(t *testing.T) {
	raws := testutil.RunWorkload(t, shape, work)
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	tables, err := stats.Generate(`table name=t
		condition=(state == "MPI_Send")
		x=("node", node) y=("bytes", msgSizeSent, sum)`, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("rows: %+v", tables[0].Rows)
	}
}

func TestTSVShape(t *testing.T) {
	mf := mergedFile(t)
	tables, err := stats.Generate(`table name=t
		condition=(state == "MPI_Send")
		x=("node", node) y=("n", 1, count)`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(tables[0].TSV(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("tsv lines: %v", lines)
	}
	for _, ln := range lines {
		if strings.Count(ln, "\t") != 1 {
			t.Fatalf("bad tsv row: %q", ln)
		}
	}
}

func TestExpressionPrecedence(t *testing.T) {
	mf := mergedFile(t)
	// Each condition must evaluate true under conventional precedence.
	cases := []string{
		`1 + 2 * 3 == 7`,
		`(1 + 2) * 3 == 9`,
		`2 * 3 + 4 * 5 == 26`,
		`10 - 4 - 3 == 3`,    // left associative
		`20 / 5 / 2 == 2`,    // left associative
		`1 < 2 == 1`,         // comparison yields 1
		`1 + 1 < 3 && 5 > 4`, // additive binds tighter than comparison
		`0 && 1 || 1`,        // && binds tighter than ||
		`!(1 == 2) && 1 != 2`,
		`-3 + 5 == 2`,
		`2 < 3 && 3 < 4 || 9 < 1`,
		`"abc" < "abd" && "x" + "y" == "xy"`,
	}
	for _, cond := range cases {
		src := `table name=t condition=(` + cond + `) y=("n",1,count)`
		tables, err := stats.Generate(src, []*interval.File{mf})
		if err != nil {
			t.Fatalf("%s: %v", cond, err)
		}
		if len(tables[0].Rows) == 0 {
			t.Fatalf("condition %q evaluated false", cond)
		}
	}
}

func TestRuntimeEvalErrors(t *testing.T) {
	mf := mergedFile(t)
	bad := []string{
		`table name=t condition=(1 / 0 == 1) y=("n",1,count)`,
		`table name=t condition=(1 % 0 == 1) y=("n",1,count)`,
		`table name=t condition=(state + 1 > 0) y=("n",1,count)`,   // string + number
		`table name=t condition=(-state == 0) y=("n",1,count)`,     // unary - on string
		`table name=t condition=(bogus(1) == 1) y=("n",1,count)`,   // unknown function
		`table name=t condition=(bin(start) == 0) y=("n",1,count)`, // wrong arity
	}
	for _, src := range bad {
		if _, err := stats.Generate(src, []*interval.File{mf}); err == nil {
			t.Fatalf("accepted at runtime: %q", src)
		}
	}
}

func TestMarkernameField(t *testing.T) {
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 2, Seed: 41}
	mf, _ := testutil.Pipeline(t, sh, merge.Options{}, func(p *mpisim.Proc) {
		m := p.DefineMarker("Phase A")
		p.InMarker(m, func() { p.Compute(clock.Millisecond) })
		p.Barrier()
	})
	tables, err := stats.Generate(`table name=m
		condition=(state == "Marker")
		x=("name", markername)
		y=("time", dura, sum)`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tables[0].Cell([]string{"Phase A"}, 0); !ok || v <= 0 {
		t.Fatalf("marker name grouping: %v %v (rows %+v)", v, ok, tables[0].Rows)
	}
}

func TestParseNeverPanics(t *testing.T) {
	// The parser must reject arbitrary garbage with an error, never a
	// panic.
	f := func(src string) bool {
		_, _ = stats.Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// And a few adversarial shapes.
	for _, src := range []string{
		"table", "table name=", "table name=a y=(", "(((((", ")", "= = =",
		`table name=a y=("x", ((((1)))), sum)`, "\x00\xff", "table name=a y=(\"x\", 1, sum) table",
	} {
		_, _ = stats.Parse(src)
	}
}

// TestParallelIdenticalTSV is the engine's determinism guarantee: the
// predefined tables must render to byte-identical TSV at every worker
// count, because aggregation is per-frame partials merged in frame
// order. Do not weaken this comparison.
func TestParallelIdenticalTSV(t *testing.T) {
	mf := mergedFile(t)
	mf2 := mergedFile(t)
	files := []*interval.File{mf, mf2}
	program := stats.Predefined(16)
	render := func(parallel int) string {
		tables, err := stats.GenerateOpts(program, files, stats.Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.Name)
			b.WriteByte('\n')
			b.WriteString(tb.TSV())
		}
		return b.String()
	}
	want := render(1)
	for _, j := range []int{2, 3, 8} {
		if got := render(j); got != want {
			t.Fatalf("-j %d TSV differs from sequential", j)
		}
	}
}

// TestWindowedCountMatchesScanOracle checks -window semantics against a
// brute-force record filter over a full scan: a record contributes iff
// it overlaps [lo, hi], independent of how records fell into frames.
func TestWindowedCountMatchesScanOracle(t *testing.T) {
	mf := mergedFile(t)
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	fs, fe, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, win := range [][2]clock.Time{
		{fs, fe},
		{fs + (fe-fs)/4, fs + (fe-fs)/2},
		{fe + 1, fe + 1000}, // empty
	} {
		lo, hi := win[0], win[1]
		tables, err := stats.GenerateOpts(`table name=c y=("n", dura, count)`,
			[]*interval.File{mf},
			stats.Options{Parallel: 4, Window: true, Lo: lo, Hi: hi})
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for _, r := range recs {
			if r.End() < lo || r.Start > hi {
				continue
			}
			want++
		}
		got := 0.0
		if len(tables[0].Rows) > 0 {
			got = tables[0].Rows[0].Y[0]
		}
		if got != want {
			t.Fatalf("window [%v %v]: count %v, scan oracle %v", lo, hi, got, want)
		}
	}
}
