// Package stats implements the paper's statistics generation utility
// (§3.2): it reads one or more interval files and generates tables
// specified by a program written in a small declarative language, e.g.
//
//	table name=sample
//	      condition=(start < 2)
//	      x=("node", node)
//	      x=("processor", cpu)
//	      y=("avg(duration)", dura, avg)
//
// Intervals to include are selected with condition expressions, the x
// expressions give the table's free variables, and the y expressions
// give the dependent values and how they aggregate (sum, avg, min, max,
// count). Generated tables are tab-separated-value text. Without a
// program, a set of pre-defined tables is generated — including the
// per-node × 50-time-bin "interesting duration" table visualized in the
// paper's Figure 6.
package stats

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokAssign // =
	tokOp     // multi-char and single-char operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes a stats program. '#' starts a comment to end of line.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
	l.pos += len(text)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("stats: unterminated string at offset %d", start)
}

func (l *lexer) lexOp() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "==", "!=", "&&", "||":
		l.emit(tokOp, two)
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '<', '>', '+', '-', '*', '/', '%', '!':
		l.emit(tokOp, string(c))
		return nil
	case '=':
		l.emit(tokAssign, "=")
		return nil
	}
	return fmt.Errorf("stats: unexpected character %q at offset %d", l.src[l.pos], l.pos)
}
