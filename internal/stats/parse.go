package stats

import (
	"fmt"
	"strconv"
)

// Agg is a y-expression aggregator.
type Agg int

// Aggregators.
const (
	AggSum Agg = iota
	AggAvg
	AggMin
	AggMax
	AggCount
)

// String names the aggregator.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	}
	return "agg?"
}

func parseAgg(s string) (Agg, error) {
	switch s {
	case "sum":
		return AggSum, nil
	case "avg":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "count":
		return AggCount, nil
	}
	return 0, fmt.Errorf("stats: unknown aggregator %q", s)
}

// expr is an expression AST node.
type expr interface{ String() string }

type numLit struct{ v float64 }
type strLit struct{ v string }
type fieldRef struct{ name string }
type unary struct {
	op string
	x  expr
}
type binary struct {
	op   string
	l, r expr
}
type call struct {
	fn   string
	args []expr
}

func (n numLit) String() string   { return strconv.FormatFloat(n.v, 'g', -1, 64) }
func (s strLit) String() string   { return strconv.Quote(s.v) }
func (f fieldRef) String() string { return f.name }
func (u unary) String() string    { return u.op + u.x.String() }
func (b binary) String() string   { return "(" + b.l.String() + " " + b.op + " " + b.r.String() + ")" }
func (c call) String() string {
	s := c.fn + "("
	for i, a := range c.args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// AxisSpec is one x= or y= clause.
type AxisSpec struct {
	Label string
	Expr  expr
	Agg   Agg // y only
}

// TableSpec is one parsed table definition.
type TableSpec struct {
	Name      string
	Condition expr // nil = all records
	X         []AxisSpec
	Y         []AxisSpec
}

// Parse parses a stats program into table specifications.
func Parse(src string) ([]*TableSpec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var tables []*TableSpec
	for !p.at(tokEOF) {
		t, err := p.table()
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("stats: program defines no tables")
	}
	return tables, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool {
	return p.cur().kind == k
}
func (p *parser) atIdent(s string) bool {
	return p.cur().kind == tokIdent && p.cur().text == s
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, fmt.Errorf("stats: expected %s at offset %d, found %q", what, p.cur().pos, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) table() (*TableSpec, error) {
	if !p.atIdent("table") {
		return nil, fmt.Errorf("stats: expected 'table' at offset %d", p.cur().pos)
	}
	p.next()
	t := &TableSpec{}
	for p.at(tokIdent) && !p.atIdent("table") {
		key := p.next().text
		if _, err := p.expect(tokAssign, "'='"); err != nil {
			return nil, err
		}
		switch key {
		case "name":
			tok, err := p.expect(tokIdent, "table name")
			if err != nil {
				return nil, err
			}
			t.Name = tok.text
		case "condition":
			if _, err := p.expect(tokLParen, "'('"); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			t.Condition = e
		case "x", "y":
			if _, err := p.expect(tokLParen, "'('"); err != nil {
				return nil, err
			}
			lbl, err := p.expect(tokString, "axis label string")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			spec := AxisSpec{Label: lbl.text, Expr: e}
			if key == "y" {
				if _, err := p.expect(tokComma, "',' before aggregator"); err != nil {
					return nil, err
				}
				atok, err := p.expect(tokIdent, "aggregator")
				if err != nil {
					return nil, err
				}
				if spec.Agg, err = parseAgg(atok.text); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			if key == "x" {
				t.X = append(t.X, spec)
			} else {
				t.Y = append(t.Y, spec)
			}
		default:
			return nil, fmt.Errorf("stats: unknown table attribute %q at offset %d", key, p.cur().pos)
		}
	}
	if t.Name == "" {
		return nil, fmt.Errorf("stats: table without a name")
	}
	if len(t.Y) == 0 {
		return nil, fmt.Errorf("stats: table %q has no y expressions", t.Name)
	}
	return t, nil
}

// Precedence climbing: || < && < comparison < additive < multiplicative
// < unary < primary.
func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "||" {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = binary{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && p.cur().text == "&&" {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = binary{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp {
		switch p.cur().text {
		case "<", "<=", ">", ">=", "==", "!=":
			op := p.next().text
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = binary{op: op, l: l, r: r}
		default:
			return l, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = binary{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = binary{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (expr, error) {
	if p.cur().kind == tokOp && (p.cur().text == "-" || p.cur().text == "!") {
		op := p.next().text
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return unary{op: op, x: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	switch t := p.cur(); t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("stats: bad number %q: %w", t.text, err)
		}
		return numLit{v: v}, nil
	case tokString:
		p.next()
		return strLit{v: t.text}, nil
	case tokIdent:
		p.next()
		if p.at(tokLParen) {
			p.next()
			var args []expr
			if !p.at(tokRParen) {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.at(tokComma) {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return call{fn: t.text, args: args}, nil
		}
		return fieldRef{name: t.text}, nil
	case tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("stats: unexpected token %q at offset %d", p.cur().text, p.cur().pos)
}
