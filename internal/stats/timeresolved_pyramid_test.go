package stats_test

// Differential tests for the time-resolved summary-pyramid fast path:
// on the same file, the pyramid path and the frame-decode path must
// emit byte-identical TSV for all three tables, on every window and
// bin count; the fast path must degrade silently in auto mode and
// loudly when forced.

import (
	"fmt"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
	"tracefw/internal/stats"
)

func pyramidFile(t *testing.T) *interval.File {
	t.Helper()
	mf := mergedFile(t)
	p, err := interval.BuildPyramid(mf, interval.PyramidOptions{BaseCells: 128, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	mf.AttachPyramid(p)
	return mf
}

func TestTimeResolvedPyramidMatchesScan(t *testing.T) {
	mf := pyramidFile(t)
	t0, t1, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	span := t1 - t0
	for _, tc := range []struct {
		name string
		bins int
		opts stats.Options
	}{
		{"full-1", 1, stats.Options{}},
		{"full-7", 7, stats.Options{}},
		{"full-64", 64, stats.Options{}},
		{"windowed", 9, stats.Options{Window: true, Lo: t0 + span/4, Hi: t0 + span/2}},
		{"odd-window", 13, stats.Options{Window: true, Lo: t0 + 7, Hi: t1 - 13}},
		{"overhang", 5, stats.Options{Window: true, Lo: t0 - span, Hi: t1 + span}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pyrOpts, scanOpts := tc.opts, tc.opts
			pyrOpts.Summary = interval.SummaryPyramid
			scanOpts.Summary = interval.SummaryScan
			pyr, err := stats.TimeResolved([]*interval.File{mf}, tc.bins, pyrOpts)
			if err != nil {
				t.Fatal(err)
			}
			scan, err := stats.TimeResolved([]*interval.File{mf}, tc.bins, scanOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(pyr) != len(scan) {
				t.Fatalf("table counts differ: %d vs %d", len(pyr), len(scan))
			}
			for i := range pyr {
				if pyr[i].Engine != "pyramid" || scan[i].Engine != "scan" {
					t.Fatalf("table %s engines %q/%q", pyr[i].Name, pyr[i].Engine, scan[i].Engine)
				}
				if got, want := pyr[i].TSV(), scan[i].TSV(); got != want {
					t.Errorf("table %s differs between engines:\npyramid:\n%s\nscan:\n%s", pyr[i].Name, got, want)
				}
			}
			// Auto must pick the pyramid here and agree byte for byte.
			auto, err := stats.TimeResolved([]*interval.File{mf}, tc.bins, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range auto {
				if auto[i].Engine != "pyramid" {
					t.Fatalf("auto answered table %s with %q", auto[i].Name, auto[i].Engine)
				}
				if auto[i].TSV() != scan[i].TSV() {
					t.Errorf("auto table %s differs from scan", auto[i].Name)
				}
			}
		})
	}
}

func TestTimeResolvedPyramidFallbacks(t *testing.T) {
	// No pyramid attached: auto silently scans, forced pyramid fails.
	plain := mergedFile(t)
	tabs, err := stats.TimeResolved([]*interval.File{plain}, 4, stats.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tabs[0].Engine != "scan" {
		t.Fatalf("auto with no pyramid answered %q", tabs[0].Engine)
	}
	if _, err := stats.TimeResolved([]*interval.File{plain}, 4, stats.Options{Summary: interval.SummaryPyramid}); err == nil {
		t.Fatal("forced pyramid succeeded with no pyramid attached")
	}

	// Degenerate window (narrower than the bin count): auto falls back.
	mf := pyramidFile(t)
	t0, _, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	tabs, err = stats.TimeResolved([]*interval.File{mf}, 50,
		stats.Options{Window: true, Lo: t0, Hi: t0 + 10})
	if err != nil {
		t.Fatal(err)
	}
	if tabs[0].Engine != "scan" {
		t.Fatalf("degenerate window answered by %q", tabs[0].Engine)
	}

	// Several files: peak concurrency is a merged-event property, so the
	// fast path must decline even when pyramids are attached.
	two := []*interval.File{mf, mf}
	tabs, err = stats.TimeResolved(two, 4, stats.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tabs[0].Engine != "scan" {
		t.Fatalf("multi-file answered by %q", tabs[0].Engine)
	}
	if _, err := stats.TimeResolved(two, 4, stats.Options{Summary: interval.SummaryPyramid}); err == nil {
		t.Fatal("forced pyramid succeeded on several files")
	}
}

// TestTimeResolvedPyramidOracleWindows sweeps windows against the
// brute-force bound replica to make sure the fast path keeps the exact
// bucket geometry (not just scan parity on a handful of cases).
func TestTimeResolvedPyramidOracleWindows(t *testing.T) {
	mf := pyramidFile(t)
	t0, t1, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	span := t1 - t0
	for wi := 0; wi < 8; wi++ {
		lo := t0 + span*clock.Time(wi)/16
		hi := t1 - span*clock.Time(wi)/17
		bins := 3 + wi*5
		tabs, err := stats.TimeResolved([]*interval.File{mf}, bins,
			stats.Options{Window: true, Lo: lo, Hi: hi})
		if err != nil {
			t.Fatal(err)
		}
		concT := tabs[2]
		if len(concT.Rows) != bins {
			t.Fatalf("window %d: %d rows, want %d", wi, len(concT.Rows), bins)
		}
		for bi, row := range concT.Rows {
			want := trBound(max(lo, t0), int64(min(hi, t1)-max(lo, t0)), bins, bi).Seconds()
			if got := row.X[1].Text(); got != fmt.Sprintf("%g", want) {
				t.Fatalf("window %d bin %d: t0 %s, want %g", wi, bi, got, want)
			}
		}
	}
}
