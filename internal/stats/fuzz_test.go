package stats_test

// FuzzCompile throws arbitrary program text at the parser, the kernel
// compiler, and both evaluation engines over a small in-memory fixture:
// nothing may panic, the compiler may only refuse (never mis-compile),
// and whenever both engines run they must agree byte-for-byte.

import (
	"strings"
	"sync"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/stats"
)

var (
	fuzzOnce sync.Once
	fuzzFile *interval.File
	fuzzErr  error
)

// fuzzFixture builds one small mixed-type interval file per fuzz
// process (no testing.T: fuzz workers share it across executions).
func fuzzFixture() (*interval.File, error) {
	fuzzOnce.Do(func() {
		hdr := interval.Header{
			ProfileVersion: profile.StdVersion,
			HeaderVersion:  interval.CurrentHeaderVersion,
			FieldMask:      profile.MaskIndividual,
			Threads: []interval.ThreadEntry{
				{Task: 0, PID: 1, SysTID: 1, Node: 0, LTID: 0, Type: events.ThreadMPI},
				{Task: 1, PID: 2, SysTID: 2, Node: 1, LTID: 0, Type: events.ThreadMPI},
			},
			Markers: map[uint64]string{1: "phase"},
		}
		sb := interval.NewSeekBuffer()
		w, err := interval.NewWriter(sb, hdr, interval.WriterOptions{FrameBytes: 512, FramesPerDir: 2})
		if err != nil {
			fuzzErr = err
			return
		}
		for i := 0; i < 120; i++ {
			r := interval.Record{
				Bebits: profile.Complete,
				Start:  clock.Time(i) * clock.Millisecond,
				Dura:   clock.Time(1+i%7) * clock.Millisecond / 2,
				CPU:    uint16(i % 3),
				Node:   uint16(i % 2),
				Thread: uint16(i % 2),
			}
			switch i % 3 {
			case 0:
				r.Type = events.EvRunning
			case 1:
				r.Type = events.EvMPISend
				r.Extra = []uint64{uint64(1 - i%2), uint64(i), uint64(100 * i), uint64(i + 1), 1, 0}
			default:
				r.Type = events.EvMPIBarrier
				r.Extra = []uint64{1, 0}
			}
			if err := w.Add(&r); err != nil {
				fuzzErr = err
				return
			}
		}
		if err := w.Close(); err != nil {
			fuzzErr = err
			return
		}
		fuzzFile, fuzzErr = interval.NewFile(interval.NewSeekBufferFrom(sb.Bytes()))
	})
	return fuzzFile, fuzzErr
}

func FuzzCompile(f *testing.F) {
	f.Add(`table name=t y=("n", dura, count)`)
	f.Add(`table name=t condition=(state == "Running") x=("n", node) y=("t", dura, sum)`)
	f.Add(`table name=t x=("b", bin(start, 8)) y=("t", dura / (dura + 1), avg)`)
	f.Add(`table name=t condition=(msgSizeSent > 0 && peer == 1) y=("b", msgSizeSent, sum)`)
	f.Add(`table name=t x=("m", markername) y=("n", dura, count)`)
	f.Add(`table name=t y=("n", floor(msgSizeSent), sum)`)
	f.Add(`table name=t y=("r", dura % 0, max)`)
	f.Add(stats.Predefined(4))
	f.Fuzz(func(t *testing.T, program string) {
		if len(program) > 4096 {
			return
		}
		specs, err := stats.Parse(program)
		if err != nil {
			return
		}
		mf, err := fuzzFixture()
		if err != nil {
			t.Skip(err)
		}
		files := []*interval.File{mf}
		st, sErr := stats.GenerateSpecsOpts(specs, files, stats.Options{Engine: stats.EngineScalar})
		ct, cErr := stats.GenerateSpecsOpts(specs, files, stats.Options{Engine: stats.EngineColumnar})
		if cErr != nil && strings.Contains(cErr.Error(), "not lowerable") {
			// Compiler refusal: the auto engine must still agree with scalar.
			at, aErr := stats.GenerateSpecsOpts(specs, files, stats.Options{})
			if (aErr == nil) != (sErr == nil) {
				t.Fatalf("auto/scalar disagree on error: %v vs %v", aErr, sErr)
			}
			if aErr == nil && renderTables(at) != renderTables(st) {
				t.Fatal("auto fallback output differs from scalar")
			}
			return
		}
		if (sErr == nil) != (cErr == nil) {
			t.Fatalf("engines disagree on error for %q:\n  scalar:   %v\n  columnar: %v", program, sErr, cErr)
		}
		if sErr != nil {
			return
		}
		if renderTables(st) != renderTables(ct) {
			t.Fatalf("engines diverge for %q", program)
		}
	})
}
