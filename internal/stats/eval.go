package stats

import (
	"fmt"
	"math"
	"strconv"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
)

// Value is a dynamically typed expression result: a number or a string.
type Value struct {
	F   float64
	S   string
	Str bool
}

func num(f float64) Value { return Value{F: f} }
func str(s string) Value  { return Value{S: s, Str: true} }

// Text renders a value for TSV output. Integer-valued floats print
// without an exponent up to and including ±1e15 (the boundary itself is
// exactly representable, so excluding it flipped "1000000000000000"
// into "1e+15"); negative zero prints as "0" like positive zero instead
// of leaking the sign through the float path.
func (v Value) Text() string {
	if v.Str {
		return v.S
	}
	if v.F == 0 {
		return "0"
	}
	if v.F == math.Trunc(v.F) && math.Abs(v.F) <= 1e15 {
		return strconv.FormatInt(int64(v.F), 10)
	}
	return strconv.FormatFloat(v.F, 'g', -1, 64)
}

// Truth interprets a value as a boolean.
func (v Value) Truth() bool {
	if v.Str {
		return v.S != ""
	}
	return v.F != 0
}

// evalCtx carries per-record and per-run context into expressions.
type evalCtx struct {
	rec     *interval.Record
	markers map[uint64]string
	tStart  clock.Time
	tEnd    clock.Time
}

// errSkip marks a record that cannot supply a referenced field; the
// record is silently excluded from the table row it would feed.
var errSkip = fmt.Errorf("stats: record lacks a referenced field")

// eval evaluates e for the context's record. Time-valued fields (start,
// dura, end) are exposed in SECONDS, matching the paper's example
// "condition=(start < 2)" selecting the first two seconds of the run.
func eval(e expr, ctx *evalCtx) (Value, error) {
	switch n := e.(type) {
	case numLit:
		return num(n.v), nil
	case strLit:
		return str(n.v), nil
	case fieldRef:
		return evalField(n.name, ctx)
	case unary:
		x, err := eval(n.x, ctx)
		if err != nil {
			return Value{}, err
		}
		switch n.op {
		case "-":
			if x.Str {
				return Value{}, fmt.Errorf("stats: unary - on string")
			}
			return num(-x.F), nil
		case "!":
			if x.Truth() {
				return num(0), nil
			}
			return num(1), nil
		}
		return Value{}, fmt.Errorf("stats: unknown unary %q", n.op)
	case binary:
		return evalBinary(n, ctx)
	case call:
		return evalCall(n, ctx)
	}
	return Value{}, fmt.Errorf("stats: unknown expression node %T", e)
}

func evalBinary(b binary, ctx *evalCtx) (Value, error) {
	// Short-circuit logical operators.
	if b.op == "&&" || b.op == "||" {
		l, err := eval(b.l, ctx)
		if err != nil {
			return Value{}, err
		}
		if b.op == "&&" && !l.Truth() {
			return num(0), nil
		}
		if b.op == "||" && l.Truth() {
			return num(1), nil
		}
		r, err := eval(b.r, ctx)
		if err != nil {
			return Value{}, err
		}
		if r.Truth() {
			return num(1), nil
		}
		return num(0), nil
	}
	l, err := eval(b.l, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(b.r, ctx)
	if err != nil {
		return Value{}, err
	}
	if l.Str || r.Str {
		if !l.Str || !r.Str {
			return Value{}, fmt.Errorf("stats: cannot compare string with number (%s)", b.op)
		}
		switch b.op {
		case "==":
			return boolVal(l.S == r.S), nil
		case "!=":
			return boolVal(l.S != r.S), nil
		case "<":
			return boolVal(l.S < r.S), nil
		case "<=":
			return boolVal(l.S <= r.S), nil
		case ">":
			return boolVal(l.S > r.S), nil
		case ">=":
			return boolVal(l.S >= r.S), nil
		case "+":
			return str(l.S + r.S), nil
		}
		return Value{}, fmt.Errorf("stats: operator %q not defined on strings", b.op)
	}
	switch b.op {
	case "+":
		return num(l.F + r.F), nil
	case "-":
		return num(l.F - r.F), nil
	case "*":
		return num(l.F * r.F), nil
	case "/":
		if r.F == 0 {
			return Value{}, fmt.Errorf("stats: division by zero")
		}
		return num(l.F / r.F), nil
	case "%":
		if r.F == 0 {
			return Value{}, fmt.Errorf("stats: modulo by zero")
		}
		return num(math.Mod(l.F, r.F)), nil
	case "<":
		return boolVal(l.F < r.F), nil
	case "<=":
		return boolVal(l.F <= r.F), nil
	case ">":
		return boolVal(l.F > r.F), nil
	case ">=":
		return boolVal(l.F >= r.F), nil
	case "==":
		return boolVal(l.F == r.F), nil
	case "!=":
		return boolVal(l.F != r.F), nil
	}
	return Value{}, fmt.Errorf("stats: unknown operator %q", b.op)
}

func boolVal(b bool) Value {
	if b {
		return num(1)
	}
	return num(0)
}

// evalField resolves a field reference. The names match the profile's
// field names; time fields are in seconds; a few derived names (end,
// state, bebits, markername) are provided for convenience.
func evalField(name string, ctx *evalCtx) (Value, error) {
	r := ctx.rec
	switch name {
	case events.FieldStart:
		return num(r.Start.Seconds()), nil
	case events.FieldDura, "duration":
		return num(r.Dura.Seconds()), nil
	case "end":
		return num(r.End().Seconds()), nil
	case events.FieldNode:
		return num(float64(r.Node)), nil
	case events.FieldCPU, "processor":
		return num(float64(r.CPU)), nil
	case events.FieldThread:
		return num(float64(r.Thread)), nil
	case events.FieldType:
		return num(float64(r.Type)), nil
	case "state":
		return str(r.Type.Name()), nil
	case events.FieldBebits:
		return str(r.Bebits.String()), nil
	case "iscall":
		// 1 on the piece that begins a state (begin or complete): counting
		// these counts calls, not pieces.
		if r.Bebits == 2 || r.Bebits == 3 {
			return num(1), nil
		}
		return num(0), nil
	case "markername":
		id, ok := r.Field(events.FieldMarker)
		if !ok {
			return Value{}, errSkip
		}
		return str(ctx.markers[id]), nil
	}
	if v, ok := r.Field(name); ok {
		return num(float64(v)), nil
	}
	return Value{}, errSkip
}

func evalCall(c call, ctx *evalCtx) (Value, error) {
	switch c.fn {
	case "bin":
		// bin(texpr, n): which of n equal time bins of the run contains
		// texpr (in seconds)? Clamped to [0, n-1].
		if len(c.args) != 2 {
			return Value{}, fmt.Errorf("stats: bin() takes (time, nbins)")
		}
		tv, err := eval(c.args[0], ctx)
		if err != nil {
			return Value{}, err
		}
		nv, err := eval(c.args[1], ctx)
		if err != nil {
			return Value{}, err
		}
		if tv.Str || nv.Str || nv.F < 1 {
			return Value{}, fmt.Errorf("stats: bin() needs numeric arguments")
		}
		n := int(nv.F)
		span := (ctx.tEnd - ctx.tStart).Seconds()
		if span <= 0 {
			return num(0), nil
		}
		b := int((tv.F - ctx.tStart.Seconds()) / span * float64(n))
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		return num(float64(b)), nil
	case "floor":
		if len(c.args) != 1 {
			return Value{}, fmt.Errorf("stats: floor() takes one argument")
		}
		v, err := eval(c.args[0], ctx)
		if err != nil || v.Str {
			return Value{}, fmt.Errorf("stats: floor() needs a number")
		}
		return num(math.Floor(v.F)), nil
	case "abs":
		if len(c.args) != 1 {
			return Value{}, fmt.Errorf("stats: abs() takes one argument")
		}
		v, err := eval(c.args[0], ctx)
		if err != nil || v.Str {
			return Value{}, fmt.Errorf("stats: abs() needs a number")
		}
		return num(math.Abs(v.F)), nil
	}
	return Value{}, fmt.Errorf("stats: unknown function %q", c.fn)
}
