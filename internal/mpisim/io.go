package mpisim

import (
	"math"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

// This file implements the paper's §5 future extension: "additional
// system activities, such as I/O, page miss, etc." File reads and writes
// are traced entry/exit states during which the thread blocks (so their
// intervals split into pieces around the dispatch gap, exactly like a
// blocking MPI call); page misses are traced point events with a small
// CPU penalty.

// I/O model defaults.
const (
	defaultIOLatency   = 4 * clock.Millisecond // per-operation seek/queue time
	defaultIOBandwidth = 120e6                 // bytes per second
	pageMissPenalty    = 4 * clock.Microsecond
)

// ioTime returns the modeled duration of an nbytes transfer.
func (w *World) ioTime(nbytes int) clock.Time {
	lat, bw := w.cfg.IOLatency, w.cfg.IOBandwidth
	if lat <= 0 {
		lat = defaultIOLatency
	}
	if bw <= 0 {
		bw = defaultIOBandwidth
	}
	return lat + clock.Time(math.Round(float64(nbytes)/bw*float64(clock.Second)))
}

// FileRead performs a traced, blocking file read of nbytes.
func (p *Proc) FileRead(nbytes int) {
	p.enter(events.EvIORead)
	p.th.Sleep(p.task.w.ioTime(nbytes)) // blocked in the kernel, no CPU
	p.exit(events.EvIORead, uint64(nbytes), addrOf(events.EvIORead))
}

// FileWrite performs a traced, blocking file write of nbytes.
func (p *Proc) FileWrite(nbytes int) {
	p.enter(events.EvIOWrite)
	p.th.Sleep(p.task.w.ioTime(nbytes))
	p.exit(events.EvIOWrite, uint64(nbytes), addrOf(events.EvIOWrite))
}

// PageMiss records one page-miss point event and charges its CPU
// penalty.
func (p *Proc) PageMiss(addr uint64) {
	p.cut(events.EvPageMiss, events.Point, []uint64{addr}, "")
	p.th.Compute(pageMissPenalty)
}
