package mpisim

import (
	"tracefw/internal/events"
	"tracefw/internal/sched"
)

// RecvInfo describes a completed receive.
type RecvInfo struct {
	Source int32
	Tag    int32
	Bytes  int
	Seqno  uint64
}

// Request is a nonblocking-operation handle, returned by Isend/Irecv and
// consumed by Wait/Waitall. A request belongs to the thread that created
// it.
type Request struct {
	p      *Proc
	done   bool
	waiter *sched.Thread

	isSend  bool
	seqno   uint64
	wantSrc int32
	wantTag int32

	Info RecvInfo // valid for receive requests once done
	comm *Comm    // result slot for comm-building collectives
}

type message struct {
	src, tag int32
	bytes    int
	seqno    uint64
	srcTask  *Task
	// rndv is the sender's request for rendezvous transfers; nil means
	// the message was sent eagerly and its payload has fully arrived.
	rndv *Request
}

// mailbox holds, per destination task, the arrived-but-unmatched
// envelopes and the posted-but-unmatched receives, both FIFO so that
// MPI's non-overtaking matching rule holds.
type mailbox struct {
	arrived []*message
	posted  []*Request
}

func match(r *Request, m *message) bool {
	return (r.wantSrc == AnySource || r.wantSrc == m.src) &&
		(r.wantTag == AnyTag || r.wantTag == m.tag)
}

// finish marks a request done and wakes its waiter, if any.
func (w *World) finish(r *Request) {
	r.done = true
	if r.waiter != nil {
		t := r.waiter
		r.waiter = nil
		w.M.Sim.Unblock(t)
	}
}

// completeMatch resolves a (recv request, message) match. For eager
// messages the receive completes immediately; for rendezvous the
// transfer starts now and both sides complete after the bandwidth term.
func (w *World) completeMatch(dst *Task, r *Request, m *message) {
	fill := func() {
		r.Info = RecvInfo{Source: m.src, Tag: m.tag, Bytes: m.bytes, Seqno: m.seqno}
	}
	if m.rndv == nil {
		fill()
		w.finish(r)
		return
	}
	done := w.transfer(m.srcTask, dst, m.bytes)
	sender := m.rndv
	w.M.Sim.After(done, func() {
		fill()
		w.finish(r)
		w.finish(sender)
	})
}

// deliver handles an envelope arriving at dst: match a posted receive or
// queue as unexpected.
func (w *World) deliver(dst *Task, m *message) {
	for i, r := range dst.mbox.posted {
		if match(r, m) {
			dst.mbox.posted = append(dst.mbox.posted[:i], dst.mbox.posted[i+1:]...)
			w.completeMatch(dst, r, m)
			return
		}
	}
	dst.mbox.arrived = append(dst.mbox.arrived, m)
}

// isendCore starts a send and returns its request; no tracing.
func (p *Proc) isendCore(dst int, tag int32, bytes int) *Request {
	w := p.task.w
	src := p.task
	dstT := w.task(dst)
	seqno := w.M.Facilities[src.Node].NextSeqno(src.Rank, int32(dst))
	req := &Request{p: p, isSend: true, seqno: seqno}
	m := &message{src: src.Rank, tag: tag, bytes: bytes, seqno: seqno, srcTask: src}
	if bytes <= w.cfg.EagerThreshold {
		// Eager: buffered locally; the send is complete at once and the
		// payload arrives after the full alpha+beta latency.
		req.done = true
		w.M.Sim.After(w.latency(src, dstT, bytes), func() { w.deliver(dstT, m) })
	} else {
		// Rendezvous: the ready-to-send envelope arrives after alpha; the
		// send completes only when the matched transfer finishes.
		m.rndv = req
		alpha := w.cfg.LatencyInter
		if src.Node == dstT.Node {
			alpha = w.cfg.LatencyIntra
		}
		w.M.Sim.After(alpha, func() { w.deliver(dstT, m) })
	}
	return req
}

// irecvCore posts a receive and returns its request; no tracing.
func (p *Proc) irecvCore(src, tag int32) *Request {
	w := p.task.w
	t := p.task
	req := &Request{p: p, wantSrc: src, wantTag: tag}
	for i, m := range t.mbox.arrived {
		if match(req, m) {
			t.mbox.arrived = append(t.mbox.arrived[:i], t.mbox.arrived[i+1:]...)
			w.completeMatch(t, req, m)
			return req
		}
	}
	t.mbox.posted = append(t.mbox.posted, req)
	return req
}

// waitCore blocks the calling thread until the request completes.
func (p *Proc) waitCore(r *Request) {
	if r.p != p {
		panic("mpisim: Wait on a request owned by another thread")
	}
	for !r.done {
		r.waiter = p.th
		p.th.Block()
	}
}

// --- Traced point-to-point operations ---

// Send performs a blocking standard-mode send of bytes to dst with tag.
func (p *Proc) Send(dst int, tag int32, bytes int) {
	p.enter(events.EvMPISend)
	req := p.isendCore(dst, tag, bytes)
	p.waitCore(req)
	p.exit(events.EvMPISend,
		uint64(dst), uint64(uint32(tag)), uint64(bytes), req.seqno, 0, addrOf(events.EvMPISend))
}

// Recv performs a blocking receive matching (src, tag), either of which
// may be the Any* wildcard, and returns the matched message's info.
func (p *Proc) Recv(src, tag int32) RecvInfo {
	p.enter(events.EvMPIRecv)
	req := p.irecvCore(src, tag)
	p.waitCore(req)
	i := req.Info
	p.exit(events.EvMPIRecv,
		uint64(uint32(i.Source)), uint64(uint32(i.Tag)), uint64(i.Bytes), i.Seqno, 0, addrOf(events.EvMPIRecv))
	return i
}

// Ssend performs a synchronous-mode send: it completes only when the
// matching receive has been posted and the transfer has finished,
// regardless of message size (a forced rendezvous).
func (p *Proc) Ssend(dst int, tag int32, bytes int) {
	p.enter(events.EvMPISsend)
	w := p.task.w
	src := p.task
	dstT := w.task(dst)
	seqno := w.M.Facilities[src.Node].NextSeqno(src.Rank, int32(dst))
	req := &Request{p: p, isSend: true, seqno: seqno}
	m := &message{src: src.Rank, tag: tag, bytes: bytes, seqno: seqno, srcTask: src, rndv: req}
	alpha := w.cfg.LatencyInter
	if src.Node == dstT.Node {
		alpha = w.cfg.LatencyIntra
	}
	w.M.Sim.After(alpha, func() { w.deliver(dstT, m) })
	p.waitCore(req)
	p.exit(events.EvMPISsend,
		uint64(dst), uint64(uint32(tag)), uint64(bytes), seqno, 0, addrOf(events.EvMPISsend))
}

// Isend starts a nonblocking send and returns its request.
func (p *Proc) Isend(dst int, tag int32, bytes int) *Request {
	p.enter(events.EvMPIIsend)
	req := p.isendCore(dst, tag, bytes)
	p.exit(events.EvMPIIsend,
		uint64(dst), uint64(uint32(tag)), uint64(bytes), req.seqno, 0, addrOf(events.EvMPIIsend))
	return req
}

// Irecv posts a nonblocking receive and returns its request. The exit
// record carries the posted (possibly wildcard) envelope; the matched
// values become available in the request after Wait.
func (p *Proc) Irecv(src, tag int32) *Request {
	p.enter(events.EvMPIIrecv)
	req := p.irecvCore(src, tag)
	p.exit(events.EvMPIIrecv,
		uint64(uint32(src)), uint64(uint32(tag)), 0, 0, 0, addrOf(events.EvMPIIrecv))
	return req
}

// Wait blocks until the request completes. For receive requests the exit
// record carries the matched envelope (source, seqno, bytes) so that the
// utilities can pair Irecv+Wait with the corresponding send.
func (p *Proc) Wait(r *Request) {
	p.enter(events.EvMPIWait)
	p.waitCore(r)
	var peer, seqno, bytes uint64
	if !r.isSend {
		peer = uint64(uint32(r.Info.Source))
		seqno = r.Info.Seqno
		bytes = uint64(r.Info.Bytes)
	}
	p.exit(events.EvMPIWait, 1, peer, seqno, bytes, addrOf(events.EvMPIWait))
}

// Waitall blocks until every request completes. The exit record carries,
// in its vector field, a (peer, seqno, bytes) envelope triple for every
// completed receive request, so message matching works for
// Irecv+Waitall exactly as it does for Irecv+Wait.
func (p *Proc) Waitall(rs ...*Request) {
	p.enter(events.EvMPIWaitall)
	args := []uint64{uint64(len(rs)), addrOf(events.EvMPIWaitall)}
	for _, r := range rs {
		p.waitCore(r)
		if !r.isSend && r.Info.Seqno != 0 {
			args = append(args,
				uint64(uint32(r.Info.Source)), r.Info.Seqno, uint64(r.Info.Bytes))
		}
	}
	p.exit(events.EvMPIWaitall, args...)
}

// Sendrecv sends sbytes to dst and receives from src in one call.
func (p *Proc) Sendrecv(dst int, stag int32, sbytes int, src, rtag int32) RecvInfo {
	p.enter(events.EvMPISendrecv)
	sreq := p.isendCore(dst, stag, sbytes)
	rreq := p.irecvCore(src, rtag)
	p.waitCore(sreq)
	p.waitCore(rreq)
	i := rreq.Info
	p.exit(events.EvMPISendrecv,
		uint64(dst), uint64(uint32(stag)), uint64(sbytes), uint64(i.Bytes), sreq.seqno,
		uint64(uint32(i.Source)), i.Seqno, 0, addrOf(events.EvMPISendrecv))
	return i
}

// Pending reports the number of unmatched arrived envelopes and posted
// receives of a task; useful for leak checks in tests.
func (w *World) Pending(rank int) (arrived, posted int) {
	t := w.task(rank)
	return len(t.mbox.arrived), len(t.mbox.posted)
}
