package mpisim

import (
	"fmt"
	"math"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

// Comm is a communicator: an ordered group of task ranks. Communicator 0
// is the world.
type Comm struct {
	w     *World
	id    int32
	ranks []int32 // world ranks, in communicator-rank order
}

// ID returns the communicator id recorded in trace records.
func (c *Comm) ID() int32 { return c.id }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// RankOf returns p's rank within c, or -1 when p's task is not a member.
func (c *Comm) RankOf(p *Proc) int {
	for i, r := range c.ranks {
		if r == p.task.Rank {
			return i
		}
	}
	return -1
}

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return int(c.ranks[commRank]) }

type collKey struct {
	comm int32
	seq  uint64
}

type collState struct {
	op      events.Type
	waiters []*Request
	// split bookkeeping
	colors []int
	keys   []int
	wranks []int32
}

// join registers the caller in the comm's next collective; when everyone
// has arrived, fire runs (in simulator context) to schedule completion.
func (p *Proc) join(c *Comm, op events.Type, fire func(st *collState)) *Request {
	if c.RankOf(p) < 0 {
		panic(fmt.Sprintf("mpisim: task %d called a collective on comm %d it does not belong to", p.task.Rank, c.id))
	}
	w := p.task.w
	t := p.task
	seq := t.collSeq[c.id]
	t.collSeq[c.id] = seq + 1
	key := collKey{comm: c.id, seq: seq}
	st := w.colls[key]
	if st == nil {
		st = &collState{op: op}
		w.colls[key] = st
	}
	if st.op != op {
		panic(fmt.Sprintf("mpisim: mismatched collectives on comm %d: %s vs %s", c.id, st.op.Name(), op.Name()))
	}
	req := &Request{p: p}
	st.waiters = append(st.waiters, req)
	if len(st.waiters) == len(c.ranks) {
		delete(w.colls, key)
		fire(st)
	}
	return req
}

// collCost models a log2(P) tree implementation over the inter-node
// network.
func (w *World) collCost(op events.Type, nranks, bytes int) clock.Time {
	if nranks <= 1 {
		return 0
	}
	logp := clock.Time(math.Ceil(math.Log2(float64(nranks))))
	alpha := w.cfg.LatencyInter
	beta := func(b int) clock.Time {
		return clock.Time(math.Round(float64(b) / w.cfg.BWInter * float64(clock.Second)))
	}
	switch op {
	case events.EvMPIBarrier:
		return logp * alpha
	case events.EvMPIBcast, events.EvMPIReduce, events.EvMPIGather, events.EvMPIScatter:
		return logp * (alpha + beta(bytes))
	case events.EvMPIAllreduce:
		return logp * (alpha + 2*beta(bytes))
	case events.EvMPIAlltoall, events.EvMPIAllgather:
		return logp*alpha + clock.Time(nranks-1)*beta(bytes)
	case events.EvMPIScan:
		return logp * (alpha + beta(bytes))
	case events.EvMPIRedScat:
		return logp*(alpha+beta(bytes)) + beta(bytes)
	}
	return logp * alpha
}

// runColl executes the synchronize-then-cost collective pattern: all
// members arrive, then everyone completes cost later.
func (p *Proc) runColl(c *Comm, op events.Type, bytes int) {
	w := p.task.w
	req := p.join(c, op, func(st *collState) {
		cost := w.collCost(op, len(c.ranks), bytes)
		waiters := st.waiters
		w.M.Sim.After(cost, func() {
			for _, r := range waiters {
				w.finish(r)
			}
		})
	})
	p.waitCore(req)
}

// --- Traced collectives on a communicator ---

// Barrier synchronizes all members of c.
func (c *Comm) Barrier(p *Proc) {
	p.enter(events.EvMPIBarrier)
	p.runColl(c, events.EvMPIBarrier, 0)
	p.exit(events.EvMPIBarrier, uint64(uint32(c.id)), addrOf(events.EvMPIBarrier))
}

// Bcast broadcasts bytes from root (communicator rank) to all members.
func (c *Comm) Bcast(p *Proc, root, bytes int) {
	p.enter(events.EvMPIBcast)
	p.runColl(c, events.EvMPIBcast, bytes)
	p.exit(events.EvMPIBcast, uint64(root), uint64(bytes), uint64(uint32(c.id)), addrOf(events.EvMPIBcast))
}

// Reduce reduces bytes from all members to root.
func (c *Comm) Reduce(p *Proc, root, bytes int) {
	p.enter(events.EvMPIReduce)
	p.runColl(c, events.EvMPIReduce, bytes)
	p.exit(events.EvMPIReduce, uint64(root), uint64(bytes), uint64(uint32(c.id)), addrOf(events.EvMPIReduce))
}

// Allreduce reduces bytes across all members, result everywhere.
func (c *Comm) Allreduce(p *Proc, bytes int) {
	p.enter(events.EvMPIAllreduce)
	p.runColl(c, events.EvMPIAllreduce, bytes)
	p.exit(events.EvMPIAllreduce, uint64(bytes), uint64(uint32(c.id)), addrOf(events.EvMPIAllreduce))
}

// Alltoall exchanges bytes between every pair of members.
func (c *Comm) Alltoall(p *Proc, bytes int) {
	p.enter(events.EvMPIAlltoall)
	p.runColl(c, events.EvMPIAlltoall, bytes)
	recvd := bytes * (len(c.ranks) - 1)
	p.exit(events.EvMPIAlltoall, uint64(bytes), uint64(recvd), uint64(uint32(c.id)), addrOf(events.EvMPIAlltoall))
}

// Gather gathers bytes from each member at root.
func (c *Comm) Gather(p *Proc, root, bytes int) {
	p.enter(events.EvMPIGather)
	p.runColl(c, events.EvMPIGather, bytes)
	p.exit(events.EvMPIGather, uint64(root), uint64(bytes), uint64(uint32(c.id)), addrOf(events.EvMPIGather))
}

// Scatter scatters bytes from root to each member.
func (c *Comm) Scatter(p *Proc, root, bytes int) {
	p.enter(events.EvMPIScatter)
	p.runColl(c, events.EvMPIScatter, bytes)
	p.exit(events.EvMPIScatter, uint64(root), uint64(bytes), uint64(uint32(c.id)), addrOf(events.EvMPIScatter))
}

// Scan computes a prefix reduction of bytes across the members.
func (c *Comm) Scan(p *Proc, bytes int) {
	p.enter(events.EvMPIScan)
	p.runColl(c, events.EvMPIScan, bytes)
	p.exit(events.EvMPIScan, uint64(bytes), uint64(uint32(c.id)), addrOf(events.EvMPIScan))
}

// ReduceScatter reduces bytes across the members and scatters the result.
func (c *Comm) ReduceScatter(p *Proc, bytes int) {
	p.enter(events.EvMPIRedScat)
	p.runColl(c, events.EvMPIRedScat, bytes)
	recvd := bytes / len(c.ranks)
	if recvd == 0 {
		recvd = 1
	}
	p.exit(events.EvMPIRedScat, uint64(bytes), uint64(recvd), uint64(uint32(c.id)), addrOf(events.EvMPIRedScat))
}

// Allgather gathers bytes from each member at every member.
func (c *Comm) Allgather(p *Proc, bytes int) {
	p.enter(events.EvMPIAllgather)
	p.runColl(c, events.EvMPIAllgather, bytes)
	recvd := bytes * (len(c.ranks) - 1)
	p.exit(events.EvMPIAllgather, uint64(bytes), uint64(recvd), uint64(uint32(c.id)), addrOf(events.EvMPIAllgather))
}

// opSplit is the pseudo-op code used to detect mismatched collectives
// involving Split; it never appears in trace records.
const opSplit = events.Type(0xfff0)

// Split partitions c by color: members passing the same color form a new
// communicator, ordered by (key, world rank). It is collective over c
// and synchronizes like a barrier; it is not itself a traced MPI event
// (the paper's event set does not include communicator management).
func (c *Comm) Split(p *Proc, color, key int) *Comm {
	if c.RankOf(p) < 0 {
		panic(fmt.Sprintf("mpisim: task %d split a comm it does not belong to", p.task.Rank))
	}
	w := p.task.w
	t := p.task
	seq := t.collSeq[c.id]
	t.collSeq[c.id] = seq + 1
	ck := collKey{comm: c.id, seq: seq}
	st := w.colls[ck]
	if st == nil {
		st = &collState{op: opSplit}
		w.colls[ck] = st
	}
	if st.op != opSplit {
		panic(fmt.Sprintf("mpisim: mismatched collectives on comm %d: %s vs Split", c.id, st.op.Name()))
	}
	req := &Request{p: p}
	st.waiters = append(st.waiters, req)
	st.colors = append(st.colors, color)
	st.keys = append(st.keys, key)
	st.wranks = append(st.wranks, t.Rank)
	if len(st.waiters) == len(c.ranks) {
		delete(w.colls, ck)
		c.fireSplit(st)
	}
	p.waitCore(req)
	return req.comm
}

// fireSplit builds the new communicators deterministically — colors
// ascending, members ordered by (key, world rank) — and completes every
// member after a barrier-like synchronization cost.
func (c *Comm) fireSplit(st *collState) {
	w := c.w
	type member struct {
		color, key int
		wrank      int32
		req        *Request
	}
	ms := make([]member, len(st.waiters))
	for i, r := range st.waiters {
		ms[i] = member{color: st.colors[i], key: st.keys[i], wrank: st.wranks[i], req: r}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].color != ms[j].color {
			return ms[i].color < ms[j].color
		}
		if ms[i].key != ms[j].key {
			return ms[i].key < ms[j].key
		}
		return ms[i].wrank < ms[j].wrank
	})
	cost := w.collCost(events.EvMPIBarrier, len(c.ranks), 0)
	w.M.Sim.After(cost, func() {
		byColor := map[int]*Comm{}
		for _, m := range ms {
			nc := byColor[m.color]
			if nc == nil {
				nc = &Comm{w: w, id: int32(len(w.comms))}
				w.comms = append(w.comms, nc)
				byColor[m.color] = nc
			}
			nc.ranks = append(nc.ranks, m.wrank)
			m.req.comm = nc
			w.finish(m.req)
		}
	})
}
