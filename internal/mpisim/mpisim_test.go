package mpisim

import (
	"bytes"
	"io"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/events"
	"tracefw/internal/trace"
)

// testWorld builds an in-memory world with the given shape and zero
// clock offsets/drifts so virtual time assertions are exact.
func testWorld(t *testing.T, nodes, tasksPerNode, cpus int) (*World, []*bytes.Buffer) {
	t.Helper()
	bufs := make([]*bytes.Buffer, nodes)
	ws := make([]io.Writer, nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	cfg := Config{
		Cluster: cluster.Config{
			Nodes:       nodes,
			CPUsPerNode: cpus,
			TraceOpts:   trace.Options{Enabled: events.MaskAll},
			Drifts:      make([]float64, nodes),
			Offsets:     make([]clock.Time, nodes),
			Seed:        1,
		},
		TasksPerNode: tasksPerNode,
	}
	w, err := New(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	return w, bufs
}

func records(t *testing.T, buf *bytes.Buffer) []trace.Record {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestEagerSendRecv(t *testing.T) {
	w, _ := testWorld(t, 2, 1, 1)
	var info RecvInfo
	var recvEnd clock.Time
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 7, 1024)
		case 1:
			info = p.Recv(0, 7)
			recvEnd = p.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if info.Source != 0 || info.Tag != 7 || info.Bytes != 1024 || info.Seqno != 1 {
		t.Fatalf("recv info: %+v", info)
	}
	// Inter-node eager: arrival ≈ send time + 25µs + 1024/350MB/s ≈ 28µs.
	if recvEnd < 25*clock.Microsecond || recvEnd > 40*clock.Microsecond {
		t.Fatalf("recv completed at %v", recvEnd)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	w, _ := testWorld(t, 2, 1, 1)
	var sendEnd clock.Time
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, 100)
			sendEnd = p.Now()
		case 1:
			p.Compute(50 * clock.Millisecond) // receive very late
			p.Recv(0, 1)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sendEnd > clock.Millisecond {
		t.Fatalf("eager send blocked until %v", sendEnd)
	}
}

func TestRendezvousSendBlocksUntilRecv(t *testing.T) {
	w, _ := testWorld(t, 2, 1, 1)
	const big = 1 << 20 // over the 64 KiB eager threshold
	var sendEnd, recvEnd clock.Time
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, big)
			sendEnd = p.Now()
		case 1:
			p.Compute(10 * clock.Millisecond)
			p.Recv(0, 1)
			recvEnd = p.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Transfer: 1MiB / 350MB/s ≈ 3ms, starting when the recv posts at 10ms.
	if sendEnd < 12*clock.Millisecond {
		t.Fatalf("rendezvous send completed too early: %v", sendEnd)
	}
	if recvEnd < sendEnd-clock.Microsecond || recvEnd > sendEnd+clock.Microsecond {
		t.Fatalf("send/recv completion mismatch: %v vs %v", sendEnd, recvEnd)
	}
}

func TestSeqnoMatchesAcrossTasks(t *testing.T) {
	w, bufs := testWorld(t, 2, 1, 1)
	const n = 5
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				p.Send(1, int32(i), 64)
			}
		case 1:
			for i := 0; i < n; i++ {
				p.Recv(0, int32(i))
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Sender exits on node 0 and receiver exits on node 1 must carry the
	// same seqnos 1..n.
	sendSeq := map[uint64]bool{}
	for _, r := range records(t, bufs[0]) {
		if r.Type == events.EvMPISend && r.Edge == events.Exit {
			sendSeq[r.Args[3]] = true
		}
	}
	for _, r := range records(t, bufs[1]) {
		if r.Type == events.EvMPIRecv && r.Edge == events.Exit {
			if !sendSeq[r.Args[3]] {
				t.Fatalf("recv seqno %d has no matching send", r.Args[3])
			}
		}
	}
	if len(sendSeq) != n {
		t.Fatalf("got %d distinct seqnos, want %d", len(sendSeq), n)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w, _ := testWorld(t, 3, 1, 1)
	var got []int32
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < 2; i++ {
				info := p.Recv(AnySource, AnyTag)
				got = append(got, info.Source)
			}
		default:
			p.Compute(clock.Time(p.Rank()) * clock.Millisecond)
			p.Send(0, 9, 32)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("wildcard receives matched %v", got)
	}
}

func TestNonOvertakingSamePair(t *testing.T) {
	w, _ := testWorld(t, 2, 1, 1)
	var order []uint64
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 5, 10)
			p.Send(1, 5, 20)
			p.Send(1, 5, 30)
		case 1:
			for i := 0; i < 3; i++ {
				info := p.Recv(0, 5)
				order = append(order, info.Seqno)
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range order {
		if s != uint64(i+1) {
			t.Fatalf("messages overtook: %v", order)
		}
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	w, _ := testWorld(t, 2, 1, 1)
	var done bool
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			r1 := p.Isend(1, 1, 128)
			r2 := p.Isend(1, 2, 128)
			p.Waitall(r1, r2)
		case 1:
			r1 := p.Irecv(0, 2)
			r2 := p.Irecv(0, 1)
			p.Waitall(r1, r2)
			if r1.Info.Tag == 2 && r2.Info.Tag == 1 {
				done = true
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("irecv tags not matched correctly")
	}
}

func TestSendrecvExchange(t *testing.T) {
	w, _ := testWorld(t, 2, 1, 1)
	infos := make([]RecvInfo, 2)
	w.Start(func(p *Proc) {
		peer := 1 - p.Rank()
		infos[p.Rank()] = p.Sendrecv(peer, 3, 256, int32(peer), 3)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r, i := range infos {
		if int(i.Source) != 1-r || i.Bytes != 256 {
			t.Fatalf("rank %d sendrecv info %+v", r, i)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, _ := testWorld(t, 4, 1, 1)
	ends := make([]clock.Time, 4)
	w.Start(func(p *Proc) {
		p.Compute(clock.Time(p.Rank()+1) * clock.Millisecond)
		p.Barrier()
		ends[p.Rank()] = p.Now()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if ends[r] != ends[0] {
			t.Fatalf("barrier exits differ: %v", ends)
		}
	}
	// Everyone leaves after the slowest (4ms) plus the tree cost.
	if ends[0] < 4*clock.Millisecond {
		t.Fatalf("barrier exited before slowest arrival: %v", ends[0])
	}
}

func TestCollectivesRun(t *testing.T) {
	w, bufs := testWorld(t, 2, 2, 2)
	w.Start(func(p *Proc) {
		p.Bcast(0, 4096)
		p.Reduce(0, 4096)
		p.Allreduce(8)
		p.Alltoall(1024)
		p.Gather(0, 512)
		p.Scatter(0, 512)
		p.Allgather(256)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Every task must have one exit record per collective.
	wantTypes := []events.Type{
		events.EvMPIBcast, events.EvMPIReduce, events.EvMPIAllreduce,
		events.EvMPIAlltoall, events.EvMPIGather, events.EvMPIScatter,
		events.EvMPIAllgather,
	}
	for n := 0; n < 2; n++ {
		count := map[events.Type]int{}
		for _, r := range records(t, bufs[n]) {
			if r.Edge == events.Exit {
				count[r.Type]++
			}
		}
		for _, ty := range wantTypes {
			if count[ty] != 2 { // 2 tasks per node
				t.Fatalf("node %d: %s exits = %d, want 2", n, ty.Name(), count[ty])
			}
		}
	}
}

func TestMismatchedCollectivePanics(t *testing.T) {
	w, _ := testWorld(t, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched collectives did not panic")
		}
	}()
	w.Start(func(p *Proc) {
		if p.Rank() == 0 {
			p.Barrier()
		} else {
			p.Allreduce(8)
		}
	})
	w.Run()
}

func TestCommSplit(t *testing.T) {
	w, _ := testWorld(t, 4, 1, 1)
	sizes := make([]int, 4)
	ranks := make([]int, 4)
	w.Start(func(p *Proc) {
		sub := p.World().Split(p, p.Rank()%2, -p.Rank())
		sizes[p.Rank()] = sub.Size()
		ranks[p.Rank()] = sub.RankOf(p)
		sub.Barrier(p) // the new comm must be usable for collectives
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if sizes[r] != 2 {
			t.Fatalf("rank %d: sub size %d", r, sizes[r])
		}
	}
	// key = -rank orders members descending by world rank.
	if ranks[0] != 1 || ranks[2] != 0 || ranks[1] != 1 || ranks[3] != 0 {
		t.Fatalf("sub ranks: %v", ranks)
	}
}

func TestEntryExitRecordsBracketComputation(t *testing.T) {
	w, bufs := testWorld(t, 2, 1, 1)
	w.Start(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, 64)
		case 1:
			p.Recv(0, 1)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	recs := records(t, bufs[1])
	var entry, exit *trace.Record
	for i := range recs {
		if recs[i].Type == events.EvMPIRecv {
			switch recs[i].Edge {
			case events.Entry:
				entry = &recs[i]
			case events.Exit:
				exit = &recs[i]
			}
		}
	}
	if entry == nil || exit == nil {
		t.Fatal("missing recv entry/exit records")
	}
	if exit.Time < entry.Time {
		t.Fatalf("exit %v before entry %v", exit.Time, entry.Time)
	}
	if len(exit.Args) != len(events.ExtraFields(events.EvMPIRecv)) {
		t.Fatalf("recv exit args %d, want %d", len(exit.Args), len(events.ExtraFields(events.EvMPIRecv)))
	}
}

func TestExitArgsMatchFieldTables(t *testing.T) {
	// Every traced op's exit record must carry exactly the number of
	// fields the events table declares; convert relies on this.
	w, bufs := testWorld(t, 2, 1, 2)
	w.Start(func(p *Proc) {
		peer := 1 - p.Rank()
		if p.Rank() == 0 {
			p.Send(peer, 1, 10)
			r := p.Isend(peer, 2, 10)
			p.Wait(r)
		} else {
			p.Recv(0, 1)
			r := p.Irecv(0, 2)
			p.Wait(r)
		}
		p.Sendrecv(peer, 3, 5, int32(peer), 3)
		p.Barrier()
		p.Bcast(0, 8)
		p.Reduce(0, 8)
		p.Allreduce(8)
		p.Alltoall(8)
		p.Gather(0, 8)
		p.Scatter(0, 8)
		p.Allgather(8)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		for _, r := range records(t, bufs[n]) {
			if r.Edge != events.Exit {
				continue
			}
			want := len(events.ExtraFields(r.Type))
			if len(r.Args) != want {
				t.Fatalf("%s exit has %d args, want %d", r.Type.Name(), len(r.Args), want)
			}
		}
	}
}

func TestMarkersLocalIDs(t *testing.T) {
	w, bufs := testWorld(t, 2, 1, 1)
	w.Start(func(p *Proc) {
		// Different definition order per task: the same string gets
		// different local ids — the situation convert must repair.
		var a, b uint64
		if p.Rank() == 0 {
			a = p.DefineMarker("Initial Phase")
			b = p.DefineMarker("Compute Phase")
		} else {
			b = p.DefineMarker("Compute Phase")
			a = p.DefineMarker("Initial Phase")
		}
		p.InMarker(a, func() { p.Compute(clock.Millisecond) })
		p.InMarker(b, func() { p.Compute(clock.Millisecond) })
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.MarkerName(0, 1) != "Initial Phase" || w.MarkerName(1, 1) != "Compute Phase" {
		t.Fatalf("marker ids unexpectedly aligned: %q %q", w.MarkerName(0, 1), w.MarkerName(1, 1))
	}
	// Define records must carry the strings.
	for n := 0; n < 2; n++ {
		defs := 0
		for _, r := range records(t, bufs[n]) {
			if r.Type == events.EvMarkerDefine {
				defs++
				if r.Str == "" {
					t.Fatal("marker define without string")
				}
			}
		}
		if defs != 2 {
			t.Fatalf("node %d: %d marker defines", n, defs)
		}
	}
}

func TestThreadsPerTask(t *testing.T) {
	w, bufs := testWorld(t, 1, 1, 4)
	w.Start(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Spawn(events.ThreadUser, func(q *Proc) {
				q.Compute(5 * clock.Millisecond)
			})
		}
		p.Compute(clock.Millisecond)
		p.Barrier() // 1-task barrier: immediate
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	infos := 0
	for _, r := range records(t, bufs[0]) {
		if r.Type == events.EvThreadInfo {
			infos++
		}
	}
	if infos != 4 {
		t.Fatalf("thread infos: %d, want 4", infos)
	}
}

func TestNoMailboxLeaks(t *testing.T) {
	w, _ := testWorld(t, 2, 2, 2)
	w.Start(func(p *Proc) {
		peer := p.Rank() ^ 1
		if p.Rank()%2 == 0 {
			p.Send(peer, 1, 100)
			p.Recv(int32(peer), 2)
		} else {
			p.Recv(int32(peer), 1)
			p.Send(peer, 2, 100)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < w.NumTasks(); r++ {
		a, po := w.Pending(r)
		if a != 0 || po != 0 {
			t.Fatalf("task %d leaked mailbox state: arrived=%d posted=%d", r, a, po)
		}
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	run := func(nodes, tpn int) clock.Time {
		w, _ := testWorld(t, nodes, tpn, 2)
		var end clock.Time
		w.Start(func(p *Proc) {
			if p.Rank() == 0 {
				p.Send(1, 1, 32<<10)
				end = p.Now()
			} else {
				p.Recv(0, 1)
			}
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		_ = end
		return end
	}
	intra := run(1, 2)
	inter := run(2, 1)
	_ = intra
	_ = inter
	// The messages are eager so the send completes locally in both cases;
	// compare via a round trip instead.
	rt := func(nodes, tpn int) clock.Time {
		w, _ := testWorld(t, nodes, tpn, 2)
		var end clock.Time
		w.Start(func(p *Proc) {
			if p.Rank() == 0 {
				p.Send(1, 1, 32<<10)
				p.Recv(1, 2)
				end = p.Now()
			} else {
				p.Recv(0, 1)
				p.Send(0, 2, 32<<10)
			}
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if rt(1, 2) >= rt(2, 1) {
		t.Fatal("intra-node round trip not faster than inter-node")
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() []byte {
		w, bufs := testWorld(t, 2, 2, 2)
		w.Start(func(p *Proc) {
			peer := (p.Rank() + 1) % p.Size()
			for i := 0; i < 10; i++ {
				p.Isend(peer, int32(i), 128*(i+1))
				p.Recv(AnySource, int32(i))
				p.Compute(clock.Time(i) * 100 * clock.Microsecond)
			}
			p.Barrier()
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		var all []byte
		for _, b := range bufs {
			all = append(all, b.Bytes()...)
		}
		return all
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical runs produced different raw traces")
	}
}

func TestRankValidation(t *testing.T) {
	w, _ := testWorld(t, 1, 1, 1)
	var panicked bool
	w.Start(func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		p.Send(5, 0, 1) // no such rank
	})
	w.Run()
	if !panicked {
		t.Fatal("send to invalid rank did not panic")
	}
}

func TestSsendSynchronous(t *testing.T) {
	// Ssend must block until the receive is posted, even for a tiny
	// message (forced rendezvous).
	w, _ := testWorld(t, 2, 1, 1)
	var sendEnd clock.Time
	w.Start(func(p *Proc) {
		if p.Rank() == 0 {
			p.Ssend(1, 1, 8)
			sendEnd = p.Now()
		} else {
			p.Compute(15 * clock.Millisecond)
			p.Recv(0, 1)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sendEnd < 15*clock.Millisecond {
		t.Fatalf("ssend of a small message completed at %v without a receiver", sendEnd)
	}
}

func TestScanAndReduceScatter(t *testing.T) {
	w, bufs := testWorld(t, 2, 2, 2)
	w.Start(func(p *Proc) {
		p.Scan(1024)
		p.ReduceScatter(4096)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	count := map[events.Type]int{}
	for n := 0; n < 2; n++ {
		for _, r := range records(t, bufs[n]) {
			if r.Edge == events.Exit {
				count[r.Type]++
				if want := len(events.ExtraFields(r.Type)); len(r.Args) < want {
					t.Fatalf("%s exit args %d < %d", r.Type.Name(), len(r.Args), want)
				}
			}
		}
	}
	if count[events.EvMPIScan] != 4 || count[events.EvMPIRedScat] != 4 {
		t.Fatalf("counts: %v", count)
	}
}
