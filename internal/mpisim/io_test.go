package mpisim

import (
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/trace"
)

func TestFileReadBlocksWithoutHoldingCPU(t *testing.T) {
	// One CPU: while the reader is blocked in I/O, the other thread's
	// compute must proceed.
	w, _ := testWorld(t, 1, 2, 1)
	var readEnd, computeEnd clock.Time
	w.Start(func(p *Proc) {
		if p.Rank() == 0 {
			p.FileRead(1 << 20) // 4ms latency + ~8.7ms transfer
			readEnd = p.Now()
		} else {
			p.Compute(5 * clock.Millisecond)
			computeEnd = p.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if computeEnd > 6*clock.Millisecond {
		t.Fatalf("I/O held the CPU: compute finished at %v", computeEnd)
	}
	if readEnd < 12*clock.Millisecond {
		t.Fatalf("read finished too early: %v", readEnd)
	}
}

func TestIORecordsCut(t *testing.T) {
	w, bufs := testWorld(t, 1, 1, 1)
	w.Start(func(p *Proc) {
		p.FileWrite(4096)
		p.PageMiss(0xdeadbeef000)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var entry, exit, miss *trace.Record
	recs := records(t, bufs[0])
	for i := range recs {
		switch {
		case recs[i].Type == events.EvIOWrite && recs[i].Edge == events.Entry:
			entry = &recs[i]
		case recs[i].Type == events.EvIOWrite && recs[i].Edge == events.Exit:
			exit = &recs[i]
		case recs[i].Type == events.EvPageMiss:
			miss = &recs[i]
		}
	}
	if entry == nil || exit == nil {
		t.Fatal("missing IO_Write entry/exit")
	}
	if len(exit.Args) != len(events.ExtraFields(events.EvIOWrite)) {
		t.Fatalf("IO_Write exit args: %v", exit.Args)
	}
	if exit.Args[0] != 4096 {
		t.Fatalf("ioBytes = %d", exit.Args[0])
	}
	if exit.Time <= entry.Time {
		t.Fatalf("write interval empty: %v .. %v", entry.Time, exit.Time)
	}
	if miss == nil || miss.Args[0] != 0xdeadbeef000 {
		t.Fatalf("page miss record: %+v", miss)
	}
}

func TestIOTimeModel(t *testing.T) {
	w, _ := testWorld(t, 1, 1, 1)
	// 120 MB/s default: 12 MB should take ~100ms + 4ms latency.
	got := w.ioTime(12 << 20)
	want := 4*clock.Millisecond + clock.Time(float64(12<<20)/120e6*float64(clock.Second))
	if d := got - want; d < -clock.Millisecond || d > clock.Millisecond {
		t.Fatalf("ioTime = %v, want ~%v", got, want)
	}
}
