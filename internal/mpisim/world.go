// Package mpisim is a message-passing runtime on the simulated SP
// machine — the substrate the paper's tracing framework instruments.
// Tasks (MPI processes) are placed round-robin on the cluster's SMP
// nodes; each task has a main thread and may spawn additional threads.
// Every MPI operation goes through a PMPI-style wrapper that cuts entry
// and exit trace records, with the message sizes, partners, tags and
// per-pair sequence numbers the paper's utilities use to match sends
// with receives.
//
// The communication model is the usual alpha-beta model with an eager /
// rendezvous protocol switch: small messages are buffered and delivered
// after a latency; large messages synchronize sender and receiver and
// then pay a bandwidth term. Collectives use log2(P) tree costs.
package mpisim

import (
	"fmt"
	"io"
	"math"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/events"
	"tracefw/internal/sched"
	"tracefw/internal/trace"
)

// AnySource and AnyTag are wildcard receive selectors.
const (
	AnySource int32 = -1
	AnyTag    int32 = -1
)

// Network is the communication and I/O cost model. The zero value
// selects the defaults noted per field.
type Network struct {
	EagerThreshold int        // bytes; larger messages use rendezvous (default 64 KiB)
	LatencyInter   clock.Time // alpha between nodes (default 25µs)
	LatencyIntra   clock.Time // alpha within a node (default 3µs)
	BWInter        float64    // bytes/s between nodes (default 350 MB/s)
	BWIntra        float64    // bytes/s within a node (default 1.5 GB/s)
	CallOverhead   clock.Time // CPU cost inside every MPI call (default 1.5µs)

	// I/O model (FileRead / FileWrite).
	IOLatency   clock.Time // per-operation latency (default 4ms)
	IOBandwidth float64    // bytes/s (default 120 MB/s)
}

// Config describes the simulated MPI machine and network.
type Config struct {
	Cluster      cluster.Config
	TasksPerNode int // MPI tasks per SMP node (default 1)
	Network
}

func (c *Config) fill() {
	if c.TasksPerNode <= 0 {
		c.TasksPerNode = 1
	}
	if c.EagerThreshold <= 0 {
		c.EagerThreshold = 64 << 10
	}
	if c.LatencyInter <= 0 {
		c.LatencyInter = 25 * clock.Microsecond
	}
	if c.LatencyIntra <= 0 {
		c.LatencyIntra = 3 * clock.Microsecond
	}
	if c.BWInter <= 0 {
		c.BWInter = 350e6
	}
	if c.BWIntra <= 0 {
		c.BWIntra = 1.5e9
	}
	if c.CallOverhead <= 0 {
		c.CallOverhead = 1500 * clock.Nanosecond
	}
}

// World is one simulated MPI job.
type World struct {
	M   *cluster.Machine
	cfg Config

	tasks []*Task
	comms []*Comm
	colls map[collKey]*collState
}

// Task is one MPI process.
type Task struct {
	w    *World
	Rank int32
	Node int

	mbox       mailbox
	markerSeq  uint64
	markerName map[uint64]string
	collSeq    map[int32]uint64 // per-communicator collective counter
}

// Proc is a thread-level handle: workload code receives one per thread
// and issues computation, MPI calls, and markers through it.
type Proc struct {
	task *Task
	th   *sched.Thread
}

// New builds a world whose raw trace files go to the given writers (one
// per node).
func New(cfg Config, writers []io.Writer) (*World, error) {
	cfg.fill()
	m, err := cluster.New(writers, cluster.FromConfig(cfg.Cluster))
	if err != nil {
		return nil, err
	}
	return newWorld(cfg, m), nil
}

// NewFiles builds a world writing raw trace files per the cluster trace
// options prefix.
func NewFiles(cfg Config) (*World, error) {
	cfg.fill()
	m, err := cluster.NewFiles(cluster.FromConfig(cfg.Cluster))
	if err != nil {
		return nil, err
	}
	return newWorld(cfg, m), nil
}

func newWorld(cfg Config, m *cluster.Machine) *World {
	w := &World{M: m, cfg: cfg, colls: make(map[collKey]*collState)}
	ntasks := cfg.Cluster.Nodes * cfg.TasksPerNode
	world := &Comm{w: w, id: 0}
	for r := 0; r < ntasks; r++ {
		t := &Task{
			w:          w,
			Rank:       int32(r),
			Node:       r / cfg.TasksPerNode,
			markerName: make(map[uint64]string),
			collSeq:    make(map[int32]uint64),
		}
		w.tasks = append(w.tasks, t)
		world.ranks = append(world.ranks, int32(r))
	}
	w.comms = []*Comm{world}
	return w
}

// NumTasks returns the number of MPI tasks.
func (w *World) NumTasks() int { return len(w.tasks) }

// Start launches main on every task's main thread (thread category MPI)
// and begins global-clock sampling. Call Run afterwards.
func (w *World) Start(main func(*Proc)) {
	for _, t := range w.tasks {
		t := t
		w.M.SpawnTraced(t.Node, t.Rank, events.ThreadMPI, func(th *sched.Thread) {
			main(&Proc{task: t, th: th})
		})
	}
	w.M.StartClockSampling()
}

// Run executes the job to completion, flushing all trace files, and
// returns the final virtual time.
func (w *World) Run() (clock.Time, error) { return w.M.Run() }

// --- Proc basics ---

// Rank returns the task's rank in the world communicator.
func (p *Proc) Rank() int { return int(p.task.Rank) }

// Size returns the world communicator size.
func (p *Proc) Size() int { return len(p.task.w.tasks) }

// Node returns the SMP node the task lives on.
func (p *Proc) Node() int { return p.task.Node }

// ThreadID returns the node-local logical thread id.
func (p *Proc) ThreadID() int32 { return p.th.ID }

// Now returns the current virtual (true) time.
func (p *Proc) Now() clock.Time { return p.th.Now() }

// World returns the world communicator.
func (p *Proc) World() *Comm { return p.task.w.comms[0] }

// Compute consumes d of CPU time on the task's node.
func (p *Proc) Compute(d clock.Time) { p.th.Compute(d) }

// Sleep suspends the thread without consuming CPU.
func (p *Proc) Sleep(d clock.Time) { p.th.Sleep(d) }

// Spawn creates an additional thread in the same task; threadType is an
// events.Thread* category (the paper's sPPM run had four threads per
// task, one of which made MPI calls).
func (p *Proc) Spawn(threadType int, fn func(*Proc)) {
	t := p.task
	t.w.M.SpawnTraced(t.Node, t.Rank, threadType, func(th *sched.Thread) {
		fn(&Proc{task: t, th: th})
	})
}

// cut stamps and records a trace event for this thread.
func (p *Proc) cut(ty events.Type, edge events.Edge, args []uint64, str string) {
	rec := trace.Record{Type: ty, Edge: edge, TID: p.th.ID, Args: args, Str: str}
	p.task.w.M.Cut(p.task.Node, &rec)
}

// enter cuts the MPI entry record and charges the wrapper overhead.
func (p *Proc) enter(ty events.Type) {
	p.cut(ty, events.Entry, nil, "")
	p.th.Compute(p.task.w.cfg.CallOverhead)
}

// exit cuts the MPI exit record carrying the routine's interval fields
// in events.ExtraFields order.
func (p *Proc) exit(ty events.Type, args ...uint64) {
	p.cut(ty, events.Exit, args, "")
}

// addrOf synthesizes an "instruction address" for a routine, standing in
// for the real call-site address the paper stores for source browsing.
func addrOf(ty events.Type) uint64 { return 0x10000000 + uint64(ty)<<4 }

// latency returns the alpha+beta transport time for nbytes between two
// tasks.
func (w *World) latency(src, dst *Task, nbytes int) clock.Time {
	alpha, bw := w.cfg.LatencyInter, w.cfg.BWInter
	if src.Node == dst.Node {
		alpha, bw = w.cfg.LatencyIntra, w.cfg.BWIntra
	}
	return alpha + clock.Time(math.Round(float64(nbytes)/bw*float64(clock.Second)))
}

// transfer returns the bandwidth term only (rendezvous payload time).
func (w *World) transfer(src, dst *Task, nbytes int) clock.Time {
	bw := w.cfg.BWInter
	if src.Node == dst.Node {
		bw = w.cfg.BWIntra
	}
	return clock.Time(math.Round(float64(nbytes) / bw * float64(clock.Second)))
}

func (w *World) task(rank int) *Task {
	if rank < 0 || rank >= len(w.tasks) {
		panic(fmt.Sprintf("mpisim: rank %d out of range [0,%d)", rank, len(w.tasks)))
	}
	return w.tasks[rank]
}
