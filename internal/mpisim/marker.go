package mpisim

import "tracefw/internal/events"

// DefineMarker registers a user marker string and returns its task-local
// identifier. Identifiers are assigned per task with no cross-task
// communication (paper §3.1), so the same string may receive different
// identifiers on different tasks when the calling sequences differ; the
// convert utility re-assigns globally unique identifiers later.
func (p *Proc) DefineMarker(name string) uint64 {
	t := p.task
	t.markerSeq++
	id := t.markerSeq
	t.markerName[id] = name
	p.cut(events.EvMarkerDefine, events.Point, []uint64{id}, name)
	return id
}

// MarkerBegin opens a user marker region for the task-local marker id.
func (p *Proc) MarkerBegin(id uint64) {
	p.cut(events.EvMarkerBegin, events.Point, []uint64{id, markerAddr(id, 0)}, "")
}

// MarkerEnd closes a user marker region.
func (p *Proc) MarkerEnd(id uint64) {
	p.cut(events.EvMarkerEnd, events.Point, []uint64{id, markerAddr(id, 1)}, "")
}

// InMarker runs fn inside a begin/end pair for id.
func (p *Proc) InMarker(id uint64, fn func()) {
	p.MarkerBegin(id)
	fn()
	p.MarkerEnd(id)
}

// markerAddr synthesizes instruction addresses for the begin (edge 0)
// and end (edge 1) markers.
func markerAddr(id uint64, edge uint64) uint64 { return 0x40000000 + id<<8 + edge }

// MarkerName returns the string a task registered for a local marker id.
func (w *World) MarkerName(rank int, id uint64) string {
	return w.task(rank).markerName[id]
}

// --- World-communicator convenience wrappers ---

// Barrier synchronizes all tasks (world communicator).
func (p *Proc) Barrier() { p.World().Barrier(p) }

// Bcast broadcasts bytes from root to all tasks.
func (p *Proc) Bcast(root, bytes int) { p.World().Bcast(p, root, bytes) }

// Reduce reduces bytes from all tasks to root.
func (p *Proc) Reduce(root, bytes int) { p.World().Reduce(p, root, bytes) }

// Allreduce reduces bytes across all tasks.
func (p *Proc) Allreduce(bytes int) { p.World().Allreduce(p, bytes) }

// Alltoall exchanges bytes between every pair of tasks.
func (p *Proc) Alltoall(bytes int) { p.World().Alltoall(p, bytes) }

// Gather gathers bytes from all tasks at root.
func (p *Proc) Gather(root, bytes int) { p.World().Gather(p, root, bytes) }

// Scatter scatters bytes from root to all tasks.
func (p *Proc) Scatter(root, bytes int) { p.World().Scatter(p, root, bytes) }

// Allgather gathers bytes from all tasks at every task.
func (p *Proc) Allgather(bytes int) { p.World().Allgather(p, bytes) }

// Scan computes a prefix reduction across all tasks.
func (p *Proc) Scan(bytes int) { p.World().Scan(p, bytes) }

// ReduceScatter reduces across all tasks and scatters the result.
func (p *Proc) ReduceScatter(bytes int) { p.World().ReduceScatter(p, bytes) }
