package merge_test

import (
	"bytes"
	"testing"

	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/xrand"
)

// TestMergeReadAheadByteIdentical: for random stream shapes and option
// combinations, the read-ahead pipeline (Parallel > 1) produces output
// byte-identical to the synchronous path (Parallel == 1).
func TestMergeReadAheadByteIdentical(t *testing.T) {
	rng := xrand.New(4711)
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(6)
		mkFiles := func() []*interval.File {
			// Regenerate from a fixed per-trial seed so both merges scan
			// fresh File handles over identical bytes.
			r := xrand.New(uint64(1000 + trial))
			files := make([]*interval.File, k)
			for s := 0; s < k; s++ {
				files[s], _ = synthFile(t, r, s, s, r.Intn(300))
			}
			return files
		}
		opts := merge.Options{
			Estimator: merge.EstimatorNone,
			NoPseudo:  trial%2 == 0,
			Linear:    trial%3 == 0,
		}

		syncOpts := opts
		syncOpts.Parallel = 1
		syncOut := interval.NewSeekBuffer()
		syncRes, err := merge.Merge(mkFiles(), syncOut, syncOpts)
		if err != nil {
			t.Fatalf("trial %d: synchronous merge: %v", trial, err)
		}

		for _, width := range []int{2, 4, 8} {
			raOpts := opts
			raOpts.Parallel = width
			raOut := interval.NewSeekBuffer()
			raRes, err := merge.Merge(mkFiles(), raOut, raOpts)
			if err != nil {
				t.Fatalf("trial %d width %d: read-ahead merge: %v", trial, width, err)
			}
			if !bytes.Equal(raOut.Bytes(), syncOut.Bytes()) {
				t.Fatalf("trial %d width %d: read-ahead output differs from synchronous output (%d vs %d bytes)",
					trial, width, raOut.Len(), syncOut.Len())
			}
			if raRes.Records != syncRes.Records || raRes.Pseudo != syncRes.Pseudo {
				t.Fatalf("trial %d width %d: result mismatch: %+v vs %+v", trial, width, raRes, syncRes)
			}
		}
	}
}

// TestMergeReadAheadSingleInput: read-ahead with one input still
// pipelines decode ahead of encode and matches the synchronous bytes.
func TestMergeReadAheadSingleInput(t *testing.T) {
	mk := func() []*interval.File {
		r := xrand.New(99)
		f, _ := synthFile(t, r, 0, 0, 2000)
		return []*interval.File{f}
	}
	a := interval.NewSeekBuffer()
	if _, err := merge.Merge(mk(), a, merge.Options{Estimator: merge.EstimatorNone, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	b := interval.NewSeekBuffer()
	if _, err := merge.Merge(mk(), b, merge.Options{Estimator: merge.EstimatorNone, Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("single-input read-ahead merge differs from synchronous merge")
	}
}
