package merge

import (
	"errors"
	"io"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
)

// Read-ahead sources decouple frame decode from the k-way merge: each
// input file gets a producer goroutine that scans frames, adjusts
// timestamps into the global timebase, and stages record batches into a
// small bounded channel. The loser tree then never stalls on decode —
// while it drains one input's batch, every other input is decoding its
// next frames. Batches are recycled through a free list, so the decode
// scratch (including each record slot's Extra array) is reused instead
// of reallocated; the tracker deep-copies the records it retains.
const (
	// readAheadBatch is the number of records staged per batch. Batches
	// amortize channel synchronization; at typical record rates one
	// batch corresponds to a fraction of a frame.
	readAheadBatch = 256
	// readAheadDepth is the bounded channel capacity in batches — the
	// maximum decode lead a producer can build up per input.
	readAheadDepth = 4
)

// raBatch is one staged batch. err, when non-nil, terminates the stream
// after all prior batches have been consumed.
type raBatch struct {
	recs []interval.Record
	err  error
}

// readAheadStream adapts a producer-fed input to the merge's source
// interface. The consumer side (CurrentEnd/Advance/Current) runs on the
// merge goroutine only.
type readAheadStream struct {
	ch   chan raBatch
	free chan []interval.Record

	cur  interval.Record
	end  clock.Time
	done bool

	batch raBatch
	idx   int
}

// startReadAhead launches the producer goroutine for one input and
// returns its consumer end. The producer exits when the input is
// exhausted, on a decode error (forwarded in-band), or when quit
// closes; wg tracks it so Merge can wait for a clean shutdown.
func startReadAhead(sc *interval.Scanner, adj clock.Adjuster, keepClock bool, quit <-chan struct{}, wg *sync.WaitGroup) *readAheadStream {
	s := &readAheadStream{
		ch:   make(chan raBatch, readAheadDepth),
		free: make(chan []interval.Record, readAheadDepth+2),
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(s.ch)
		for {
			var recs []interval.Record
			select {
			case recs = <-s.free:
			default:
				recs = make([]interval.Record, readAheadBatch)
			}
			n := 0
			var perr error
			for n < len(recs) {
				r := &recs[n]
				if err := sc.NextRecordInto(r); err != nil {
					perr = err
					break
				}
				if r.Type == events.EvGlobalClock && !keepClock {
					continue
				}
				// Same monotone mapping for start and end as the
				// synchronous path, so the two paths stay byte-identical.
				end := adj.Global(r.End())
				r.Start = adj.Global(r.Start)
				r.Dura = end - r.Start
				n++
			}
			if n > 0 {
				select {
				case s.ch <- raBatch{recs: recs[:n]}:
				case <-quit:
					return
				}
			}
			if perr != nil {
				if !errors.Is(perr, io.EOF) {
					select {
					case s.ch <- raBatch{err: perr}:
					case <-quit:
					}
				}
				return
			}
		}
	}()
	return s
}

// CurrentEnd implements source.
func (s *readAheadStream) CurrentEnd() (clock.Time, bool) { return s.end, s.done }

// Current exposes the current record to the merge loop.
func (s *readAheadStream) Current() *interval.Record { return &s.cur }

// Advance implements source: it steps to the next staged record,
// fetching (and recycling) batches as needed. It blocks only when the
// producer has fallen behind the merge.
func (s *readAheadStream) Advance() error {
	for {
		if s.idx < len(s.batch.recs) {
			s.cur = s.batch.recs[s.idx]
			s.end = s.cur.End()
			s.idx++
			return nil
		}
		if s.batch.recs != nil {
			// Recycle the spent batch. s.cur still aliases the last
			// slot's Extra, but it is overwritten from the next batch
			// before Advance returns, and the channel send orders our
			// reads before the producer's refill.
			select {
			case s.free <- s.batch.recs[:cap(s.batch.recs)]:
			default:
			}
			s.batch.recs = nil
		}
		b, ok := <-s.ch
		if !ok {
			s.done = true
			return nil
		}
		if b.err != nil {
			s.done = true
			return b.err
		}
		s.batch, s.idx = b, 0
	}
}
