// Package merge implements the paper's merge utility (§3.1): it merges
// the per-node interval files of a run into a single interval file. The
// key functions are aligning the starting points of the individual files
// by their first global clock records, adjusting local timestamps for
// clock drift using the RMS-of-adjacent-slopes ratio (§2.2), merging the
// end-time-ordered inputs with a balanced (loser) tree, and planting
// zero-duration continuation pseudo-intervals at the beginning of every
// output frame so that a viewer jumping into the middle of the file can
// reconstruct the nested outer states (§3.3).
package merge

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/par"
	"tracefw/internal/profile"
)

// Estimator selects the clock-ratio scheme of §2.2.
type Estimator int

// Estimators.
const (
	EstimatorRMS       Estimator = iota // root mean square of adjacent slope segments (default)
	EstimatorLastPair                   // overall slope between first and last pair
	EstimatorPiecewise                  // per-segment slopes
	EstimatorNone                       // offset alignment only (ratio 1)
)

// String names the estimator.
func (e Estimator) String() string {
	switch e {
	case EstimatorRMS:
		return "rms"
	case EstimatorLastPair:
		return "lastpair"
	case EstimatorPiecewise:
		return "piecewise"
	case EstimatorNone:
		return "none"
	}
	return "estimator?"
}

// ParseEstimator converts a command-line name.
func ParseEstimator(s string) (Estimator, error) {
	switch s {
	case "rms", "":
		return EstimatorRMS, nil
	case "lastpair":
		return EstimatorLastPair, nil
	case "piecewise":
		return EstimatorPiecewise, nil
	case "none":
		return EstimatorNone, nil
	}
	return 0, fmt.Errorf("merge: unknown estimator %q", s)
}

// Options configures a merge.
type Options struct {
	Writer     interval.WriterOptions
	Estimator  Estimator
	OutlierTol float64 // clock-pair outlier filter tolerance; 0 disables
	// KeepClockRecords copies (adjusted) global-clock records into the
	// merged file instead of dropping them.
	KeepClockRecords bool
	// NoPseudo disables pseudo-interval planting (ablation).
	NoPseudo bool
	// Linear replaces the loser tree with a linear minimum scan
	// (ablation for the paper's balanced-tree design choice).
	Linear bool
	// Parallel sets the pipeline width: 0 means GOMAXPROCS. At widths
	// above 1, clock-pair extraction fans out over a worker pool and
	// every input gets a read-ahead decode goroutine; Parallel == 1
	// selects the fully synchronous path (ablation). Both paths emit
	// byte-identical output.
	Parallel int
}

// Result summarizes a merge.
type Result struct {
	Inputs  int
	Records int64 // records written (including pseudo-intervals)
	Pseudo  int64 // pseudo-interval records planted
	Ratios  []float64
	Anchors []clock.Pair // first clock pair per input
}

// ExtractPairs scans an individual interval file for its global-clock
// pair records.
func ExtractPairs(f *interval.File) ([]clock.Pair, error) {
	var pairs []clock.Pair
	sc := f.Scan()
	var r interval.Record
	for {
		err := sc.NextRecordInto(&r)
		if errors.Is(err, io.EOF) {
			return pairs, nil
		}
		if err != nil {
			return nil, err
		}
		if r.Type == events.EvGlobalClock && len(r.Extra) > 0 {
			pairs = append(pairs, clock.Pair{Global: clock.Time(r.Extra[0]), Local: r.Start})
		}
	}
}

// adjusterFor builds the configured adjuster from a file's clock pairs.
func adjusterFor(pairs []clock.Pair, opts Options) (clock.Adjuster, float64) {
	if opts.OutlierTol > 0 {
		pairs = clock.FilterOutliers(pairs, opts.OutlierTol)
	}
	switch opts.Estimator {
	case EstimatorLastPair:
		a := clock.NewLastPairAdjuster(pairs)
		return a, a.R
	case EstimatorPiecewise:
		return clock.NewPiecewiseAdjuster(pairs), 1
	case EstimatorNone:
		a := &clock.RatioAdjuster{R: 1}
		if len(pairs) > 0 {
			a.G0, a.L0 = pairs[0].Global, pairs[0].Local
		}
		return a, 1
	default:
		a := clock.NewRatioAdjuster(pairs)
		return a, a.R
	}
}

// recordSource is a source whose current record the merge loop can
// read; implemented by the synchronous stream and the read-ahead
// stream.
type recordSource interface {
	source
	Current() *interval.Record
}

// stream adapts one input file to the merge: it decodes, drops or keeps
// clock records, and adjusts timestamps into the global timebase.
type stream struct {
	sc        *interval.Scanner
	adj       clock.Adjuster
	keepClock bool

	cur  interval.Record
	end  clock.Time
	done bool
	err  error
}

func (s *stream) CurrentEnd() (clock.Time, bool) { return s.end, s.done }

func (s *stream) Current() *interval.Record { return &s.cur }

func (s *stream) Advance() error {
	for {
		r, err := s.sc.NextRecord()
		if errors.Is(err, io.EOF) {
			s.done = true
			return nil
		}
		if err != nil {
			s.err = err
			s.done = true
			return err
		}
		if r.Type == events.EvGlobalClock && !s.keepClock {
			continue
		}
		// Adjust start and end through the same monotone mapping and
		// derive the duration, so independent rounding of R·S and R·D
		// cannot make adjusted end times regress within a stream.
		end := s.adj.Global(r.End())
		r.Start = s.adj.Global(r.Start)
		r.Dura = end - r.Start
		s.cur = r
		s.end = end
		return nil
	}
}

// openKey identifies a thread across the whole machine.
type openKey struct {
	node, thread uint16
}

// tracker reconstructs, from the merged record stream, which states are
// open on every thread, to generate the frame-start pseudo-intervals.
type tracker struct {
	open map[openKey][]interval.Record // innermost last
}

func newTracker() *tracker { return &tracker{open: make(map[openKey][]interval.Record)} }

func (t *tracker) observe(r *interval.Record) {
	if r.Type == events.EvGlobalClock {
		return
	}
	k := openKey{r.Node, r.Thread}
	switch r.Bebits {
	case profile.Begin:
		// Deep-copy the variable-length payloads: read-ahead sources
		// recycle their batch slots, so r.Extra/r.Vec may be rewritten
		// by a producer long before this open state is replayed as a
		// pseudo-interval.
		cp := *r
		cp.Extra = append([]uint64(nil), r.Extra...)
		cp.Vec = append([]uint64(nil), r.Vec...)
		t.open[k] = append(t.open[k], cp)
	case profile.End:
		stack := t.open[k]
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].Type == r.Type {
				t.open[k] = append(stack[:i], stack[i+1:]...)
				return
			}
		}
	}
}

// pseudos returns zero-duration continuation records for every open
// state, stamped at, ordered (node, thread, outer→inner).
func (t *tracker) pseudos(at clock.Time) []interval.Record {
	keys := make([]openKey, 0, len(t.open))
	for k, stack := range t.open {
		if len(stack) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].thread < keys[j].thread
	})
	var out []interval.Record
	for _, k := range keys {
		for _, st := range t.open[k] {
			pr := st
			pr.Bebits = profile.Continuation
			pr.Start = at
			pr.Dura = 0
			out = append(out, pr)
		}
	}
	return out
}

// Merge merges the individual interval files into dst.
func Merge(files []*interval.File, dst io.WriteSeeker, opts Options) (*Result, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("merge: no input files")
	}
	res := &Result{Inputs: len(files)}
	width := opts.Parallel
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	// Per-input clock adjustment. The pair-extraction scans are
	// independent, so they fan out over the worker pool; adjusters are
	// then built sequentially in input order to keep Result
	// deterministic.
	allPairs := make([][]clock.Pair, len(files))
	if err := par.Do(len(files), opts.Parallel, func(i int) error {
		pairs, err := ExtractPairs(files[i])
		if err != nil {
			return fmt.Errorf("merge: input %d: %w", i, err)
		}
		allPairs[i] = pairs
		return nil
	}); err != nil {
		return nil, err
	}
	adjs := make([]clock.Adjuster, len(files))
	for i, pairs := range allPairs {
		adj, ratio := adjusterFor(pairs, opts)
		adjs[i] = adj
		res.Ratios = append(res.Ratios, ratio)
		if len(pairs) > 0 {
			res.Anchors = append(res.Anchors, pairs[0])
		} else {
			res.Anchors = append(res.Anchors, clock.Pair{})
		}
	}

	// Merged header: union of thread tables (sorted by node, ltid) and
	// marker tables.
	hdrs := make([]interval.Header, len(files))
	for i, f := range files {
		hdrs[i] = f.Header
	}
	hdr, err := UnionHeader(hdrs)
	if err != nil {
		return nil, err
	}

	ms := &mergeState{res: res, trk: newTracker()}
	w, err := interval.NewWriter(dst, hdr, ms.writerOptions(opts))
	if err != nil {
		return nil, err
	}

	// Input sources: read-ahead decode pipelines at width > 1, plain
	// synchronous streams at width 1. Producers are shut down (quit,
	// then drained via wg) on every return path.
	srcs := make([]recordSource, len(files))
	if width > 1 {
		quit := make(chan struct{})
		var wg sync.WaitGroup
		defer func() {
			close(quit)
			wg.Wait()
		}()
		for i, f := range files {
			srcs[i] = startReadAhead(f.Scan(), adjs[i], opts.KeepClockRecords, quit, &wg)
		}
	} else {
		for i, f := range files {
			srcs[i] = &stream{sc: f.Scan(), adj: adjs[i], keepClock: opts.KeepClockRecords}
		}
	}
	if err := ms.run(w, srcs, opts.Linear); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// UnionHeader builds a merged-file header from the per-node input
// headers: the union of the thread tables sorted by (node, ltid) and
// the union of the marker tables, rejecting conflicting identifier
// assignments. Both the batch merge and the streaming ingest path
// (which knows its inputs' headers before any records exist) build
// their output header here.
func UnionHeader(hdrs []interval.Header) (interval.Header, error) {
	hdr := interval.Header{
		HeaderVersion: interval.CurrentHeaderVersion,
		FieldMask:     profile.MaskMerged,
		Markers:       map[uint64]string{},
	}
	for i, h := range hdrs {
		if i == 0 {
			hdr.ProfileVersion = h.ProfileVersion
		} else if h.ProfileVersion != hdr.ProfileVersion {
			return interval.Header{}, fmt.Errorf("merge: input %d profile version %#x differs from %#x",
				i, h.ProfileVersion, hdr.ProfileVersion)
		}
		hdr.Threads = append(hdr.Threads, h.Threads...)
		for id, s := range h.Markers {
			if prev, ok := hdr.Markers[id]; ok && prev != s {
				return interval.Header{}, fmt.Errorf("merge: marker id %d means %q and %q; convert the run with a shared registry", id, prev, s)
			}
			hdr.Markers[id] = s
		}
	}
	sort.Slice(hdr.Threads, func(i, j int) bool {
		a, b := hdr.Threads[i], hdr.Threads[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.LTID < b.LTID
	})
	return hdr, nil
}

// mergeState is the write-side state shared by the batch merge and the
// live (streaming) merge: the open-state tracker and the last written
// end time feed the FramePrologue closure, so both paths plant
// identical pseudo-intervals and are byte-identical by construction.
type mergeState struct {
	res     *Result
	trk     *tracker
	lastEnd clock.Time
}

// writerOptions installs the pseudo-interval frame prologue over the
// caller's writer options.
func (ms *mergeState) writerOptions(opts Options) interval.WriterOptions {
	wopts := opts.Writer
	if !opts.NoPseudo {
		wopts.FramePrologue = func() []interval.Record {
			ps := ms.trk.pseudos(ms.lastEnd)
			ms.res.Pseudo += int64(len(ps))
			ms.res.Records += int64(len(ps))
			return ps
		}
	}
	return wopts
}

// run is the k-way merge write loop: advance every source to its first
// record, then repeatedly pick the smallest (end, input index) record,
// write it, track open states, and refill. It does not close the
// writer; callers own that.
func (ms *mergeState) run(w *interval.Writer, srcs []recordSource, linear bool) error {
	streams := make([]source, len(srcs))
	for i, st := range srcs {
		if err := st.Advance(); err != nil {
			return fmt.Errorf("merge: input %d: %w", i, err)
		}
		streams[i] = st
	}
	var pk picker
	if linear {
		pk = &linearScan{srcs: streams}
	} else {
		pk = newLoserTree(streams)
	}
	first := true
	for {
		i := pk.Min()
		if i < 0 {
			break
		}
		st := srcs[i]
		r := *st.Current()
		if first {
			ms.lastEnd = r.End()
			first = false
		}
		if err := w.Add(&r); err != nil {
			return fmt.Errorf("merge: writing record from input %d: %w", i, err)
		}
		ms.res.Records++
		ms.lastEnd = r.End()
		ms.trk.observe(&r)
		if err := st.Advance(); err != nil {
			return fmt.Errorf("merge: input %d: %w", i, err)
		}
		pk.Fix(i)
	}
	return nil
}

// MergeFiles merges interval files on disk into outPath.
func MergeFiles(paths []string, outPath string, opts Options) (*Result, error) {
	files := make([]*interval.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := interval.Open(p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	res, err := Merge(files, out, opts)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return res, err
}
