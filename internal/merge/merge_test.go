package merge_test

import (
	"errors"
	"io"
	"math"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/profile"
	"tracefw/internal/testutil"
)

var shape2 = testutil.Shape{
	Nodes: 2, TasksPerNode: 1, CPUs: 2, Seed: 7,
	Drifts: []float64{8e-5, -6e-5},
}

func pingPong(iters, bytes int) func(*mpisim.Proc) {
	return func(p *mpisim.Proc) {
		peer := 1 - p.Rank()
		for i := 0; i < iters; i++ {
			if p.Rank() == 0 {
				p.Send(peer, int32(i), bytes)
				p.Recv(int32(peer), int32(i))
			} else {
				p.Recv(int32(peer), int32(i))
				p.Send(peer, int32(i), bytes)
			}
		}
	}
}

func TestMergedFileOrderedByEndTime(t *testing.T) {
	mf, _ := testutil.Pipeline(t, shape2, merge.Options{}, pingPong(10, 512))
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty merged file")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].End() < recs[i-1].End() {
			t.Fatalf("record %d end %v < previous %v", i, recs[i].End(), recs[i-1].End())
		}
	}
	// Both nodes must appear.
	nodes := map[uint16]bool{}
	for _, r := range recs {
		nodes[r.Node] = true
	}
	if !nodes[0] || !nodes[1] {
		t.Fatalf("nodes present: %v", nodes)
	}
}

func TestClockAdjustmentRestoresCausality(t *testing.T) {
	// Send must start before its matching receive ends. With ±1s clock
	// offsets the raw local timestamps grossly violate this; after the
	// merge's alignment and ratio adjustment it must hold.
	mf, _ := testutil.Pipeline(t, shape2, merge.Options{}, pingPong(20, 256))
	recs, _ := mf.Scan().All()

	type key struct{ src, dst, seq uint64 }
	sendStart := map[key]clock.Time{}
	for _, r := range recs {
		if r.Type != events.EvMPISend || (r.Bebits != profile.Complete && r.Bebits != profile.Begin) {
			continue
		}
		peer, _ := r.Field(events.FieldPeer)
		seq, _ := r.Field(events.FieldSeqno)
		// Seqno is only on the final piece; for Begin pieces it is zero,
		// so look it up from the task instead: rank == node here.
		if r.Bebits == profile.Begin {
			continue
		}
		sendStart[key{uint64(r.Node), peer, seq}] = r.Start
	}
	checked := 0
	for _, r := range recs {
		if r.Type != events.EvMPIRecv || (r.Bebits != profile.Complete && r.Bebits != profile.End) {
			continue
		}
		src, _ := r.Field(events.FieldPeer)
		seq, _ := r.Field(events.FieldSeqno)
		ss, ok := sendStart[key{src, uint64(r.Node), seq}]
		if !ok {
			continue
		}
		if r.End() < ss {
			t.Fatalf("recv (node %d seq %d) ends %v before its send starts %v", r.Node, seq, r.End(), ss)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d send/recv pairs checked", checked)
	}
}

func TestRatiosRecovered(t *testing.T) {
	_, res := testutil.Pipeline(t, shape2, merge.Options{}, func(p *mpisim.Proc) {
		p.Compute(5 * clock.Second)
		p.Barrier()
	})
	if len(res.Ratios) != 2 {
		t.Fatalf("ratios: %v", res.Ratios)
	}
	for i, drift := range shape2.Drifts {
		want := 1 / (1 + drift)
		if math.Abs(res.Ratios[i]-want) > 2e-6 {
			t.Fatalf("input %d ratio %.9f, want %.9f", i, res.Ratios[i], want)
		}
	}
}

func TestEstimatorVariants(t *testing.T) {
	raws := testutil.RunWorkload(t, shape2, func(p *mpisim.Proc) {
		p.Compute(4 * clock.Second)
		p.Barrier()
	})
	for _, est := range []merge.Estimator{
		merge.EstimatorRMS, merge.EstimatorLastPair, merge.EstimatorPiecewise, merge.EstimatorNone,
	} {
		files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
		mf, res := testutil.MergeRun(t, files, merge.Options{Estimator: est})
		recs, err := mf.Scan().All()
		if err != nil || len(recs) == 0 {
			t.Fatalf("%v: recs=%d err=%v", est, len(recs), err)
		}
		if est == merge.EstimatorNone {
			for _, r := range res.Ratios {
				if r != 1 {
					t.Fatalf("EstimatorNone ratio %v", r)
				}
			}
		}
	}
}

func TestParseEstimator(t *testing.T) {
	for s, want := range map[string]merge.Estimator{
		"": merge.EstimatorRMS, "rms": merge.EstimatorRMS,
		"lastpair": merge.EstimatorLastPair, "piecewise": merge.EstimatorPiecewise,
		"none": merge.EstimatorNone,
	} {
		got, err := merge.ParseEstimator(s)
		if err != nil || got != want {
			t.Fatalf("ParseEstimator(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := merge.ParseEstimator("bogus"); err == nil {
		t.Fatal("bogus estimator accepted")
	}
}

func TestClockRecordsDroppedByDefault(t *testing.T) {
	raws := testutil.RunWorkload(t, shape2, func(p *mpisim.Proc) {
		p.Compute(3 * clock.Second)
	})
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	mf, _ := testutil.MergeRun(t, files, merge.Options{})
	recs, _ := mf.Scan().All()
	for _, r := range recs {
		if r.Type == events.EvGlobalClock {
			t.Fatal("clock record leaked into merged file")
		}
	}

	files2 := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	mf2, _ := testutil.MergeRun(t, files2, merge.Options{KeepClockRecords: true})
	recs2, _ := mf2.Scan().All()
	kept := 0
	for _, r := range recs2 {
		if r.Type == events.EvGlobalClock {
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("KeepClockRecords kept nothing")
	}
}

func TestThreadTableUnionSorted(t *testing.T) {
	sh := testutil.Shape{Nodes: 3, TasksPerNode: 2, CPUs: 2, Seed: 9}
	mf, _ := testutil.Pipeline(t, sh, merge.Options{}, func(p *mpisim.Proc) {
		p.Spawn(events.ThreadUser, func(q *mpisim.Proc) { q.Compute(clock.Millisecond) })
		p.Barrier()
	})
	th := mf.Header.Threads
	if len(th) != 3*2*2 {
		t.Fatalf("merged thread table has %d entries", len(th))
	}
	for i := 1; i < len(th); i++ {
		a, b := th[i-1], th[i]
		if a.Node > b.Node || (a.Node == b.Node && a.LTID >= b.LTID) {
			t.Fatalf("thread table unsorted at %d: %+v %+v", i, a, b)
		}
	}
}

func TestPseudoIntervalsPlanted(t *testing.T) {
	// A long-lived marker spans many frames; every frame after its begin
	// must start with a zero-duration continuation pseudo-interval for it
	// (until its end), so a viewer jumping mid-file sees the outer state.
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 1, Seed: 3}
	raws := testutil.RunWorkload(t, sh, func(p *mpisim.Proc) {
		m := p.DefineMarker("Long Phase")
		p.MarkerBegin(m)
		pingPong(100, 128)(p)
		p.MarkerEnd(m)
	})
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	mf, res := testutil.MergeRun(t, files, merge.Options{
		Writer: interval.WriterOptions{FrameBytes: 2048, FramesPerDir: 4},
	})
	if res.Pseudo == 0 {
		t.Fatal("no pseudo-intervals planted")
	}
	fes, err := mf.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(fes) < 4 {
		t.Fatalf("only %d frames; test needs several", len(fes))
	}
	// Find the marker's live range.
	recs, _ := mf.Scan().All()
	var mBegin, mEnd clock.Time
	for _, r := range recs {
		if r.Type == events.EvMarkerState && r.Node == 0 {
			if r.Bebits == profile.Begin {
				mBegin = r.Start
			}
			if r.Bebits == profile.End {
				mEnd = r.End()
			}
		}
	}
	if mEnd <= mBegin {
		t.Fatalf("marker range [%v %v]", mBegin, mEnd)
	}
	// Each frame fully inside the marker's range must contain a
	// zero-duration marker continuation at its start.
	checkedFrames := 0
	for _, fe := range fes[1:] {
		if fe.Start <= mBegin || fe.End >= mEnd {
			continue
		}
		frecs, err := mf.FrameRecords(fe)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range frecs {
			if r.Type == events.EvMarkerState && r.Bebits == profile.Continuation && r.Dura == 0 && r.Node == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("frame [%v %v] lacks marker pseudo-interval", fe.Start, fe.End)
		}
		checkedFrames++
	}
	if checkedFrames == 0 {
		t.Fatal("no frames inside the marker range; widen the workload")
	}
}

func TestNoPseudoOption(t *testing.T) {
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 1, Seed: 3}
	raws := testutil.RunWorkload(t, sh, func(p *mpisim.Proc) {
		m := p.DefineMarker("Long Phase")
		p.MarkerBegin(m)
		pingPong(100, 128)(p)
		p.MarkerEnd(m)
	})
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	_, res := testutil.MergeRun(t, files, merge.Options{
		Writer:   interval.WriterOptions{FrameBytes: 2048},
		NoPseudo: true,
	})
	if res.Pseudo != 0 {
		t.Fatalf("NoPseudo planted %d pseudo records", res.Pseudo)
	}
}

func TestLinearAndLoserTreeAgree(t *testing.T) {
	sh := testutil.Shape{Nodes: 4, TasksPerNode: 2, CPUs: 2, Seed: 11}
	work := func(p *mpisim.Proc) {
		peer := (p.Rank() + 1) % p.Size()
		for i := 0; i < 5; i++ {
			p.Isend(peer, int32(i), 1024)
			p.Recv(mpisim.AnySource, int32(i))
			p.Compute(clock.Millisecond)
		}
		p.Barrier()
	}
	raws := testutil.RunWorkload(t, sh, work)

	out := func(linear bool) []byte {
		files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
		sb := interval.NewSeekBuffer()
		if _, err := merge.Merge(files, sb, merge.Options{Linear: linear}); err != nil {
			t.Fatal(err)
		}
		return sb.Bytes()
	}
	a, b := out(false), out(true)
	if len(a) == 0 || string(a) != string(b) {
		t.Fatal("loser tree and linear scan merges differ")
	}
}

func TestRecordCountsAddUp(t *testing.T) {
	raws := testutil.RunWorkload(t, shape2, pingPong(10, 128))
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	var inputRecords, inputClock int64
	for _, f := range files {
		recs, err := f.Scan().All()
		if err != nil {
			t.Fatal(err)
		}
		inputRecords += int64(len(recs))
		for _, r := range recs {
			if r.Type == events.EvGlobalClock {
				inputClock++
			}
		}
	}
	files2 := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	mf, res := testutil.MergeRun(t, files2, merge.Options{})
	recs, _ := mf.Scan().All()
	want := inputRecords - inputClock + res.Pseudo
	if int64(len(recs)) != want {
		t.Fatalf("merged %d records, want %d (inputs %d - clock %d + pseudo %d)",
			len(recs), want, inputRecords, inputClock, res.Pseudo)
	}
	if res.Records != int64(len(recs)) {
		t.Fatalf("result.Records=%d, file has %d", res.Records, len(recs))
	}
}

func TestMergeDeterministic(t *testing.T) {
	raws := testutil.RunWorkload(t, shape2, pingPong(25, 2048))
	out := func() []byte {
		files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
		sb := interval.NewSeekBuffer()
		if _, err := merge.Merge(files, sb, merge.Options{}); err != nil {
			t.Fatal(err)
		}
		return sb.Bytes()
	}
	if string(out()) != string(out()) {
		t.Fatal("merge not deterministic")
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	if _, err := merge.Merge(nil, interval.NewSeekBuffer(), merge.Options{}); err == nil {
		t.Fatal("merge of nothing accepted")
	}
}

func TestExtractPairs(t *testing.T) {
	raws := testutil.RunWorkload(t, shape2, func(p *mpisim.Proc) {
		p.Compute(2500 * clock.Millisecond)
	})
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	pairs, err := merge.ExtractPairs(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 3 {
		t.Fatalf("extracted %d pairs", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Global <= pairs[i-1].Global {
			t.Fatalf("pairs out of order: %+v", pairs)
		}
	}
	// Rescanning after ExtractPairs must still work (fresh scanner).
	if _, err := files[0].Scan().All(); err != nil {
		t.Fatal(err)
	}
}

func TestOutlierFilteredMerge(t *testing.T) {
	// Hand-build an interval file with an outlier clock pair and check
	// the filter keeps the ratio sane.
	sb := interval.NewSeekBuffer()
	w, err := interval.NewWriter(sb, interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Markers:        map[uint64]string{},
	}, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drift := 1e-4
	for i := 0; i < 20; i++ {
		local := clock.Time(float64(i) * float64(clock.Second) * (1 + drift))
		global := clock.Time(i) * clock.Second
		if i == 10 {
			global -= 5 * clock.Millisecond // stale global read (de-schedule)
		}
		rec := interval.Record{
			Type: events.EvGlobalClock, Bebits: profile.Complete,
			Start: local, Extra: []uint64{uint64(global)},
		}
		if err := w.Add(&rec); err != nil {
			t.Fatal(err)
		}
	}
	run := interval.Record{Type: events.EvRunning, Bebits: profile.Complete,
		Start: clock.Time(19) * clock.Second, Dura: clock.Second}
	if err := w.Add(&run); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := interval.ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	_, res := testutil.MergeRun(t, []*interval.File{f}, merge.Options{OutlierTol: 1e-3})
	want := 1 / (1 + drift)
	if math.Abs(res.Ratios[0]-want) > 1e-7 {
		t.Fatalf("filtered ratio %.9f, want %.9f", res.Ratios[0], want)
	}
	// Without filtering the outlier perturbs the estimate measurably.
	f2, _ := interval.ReadHeader(sb)
	_, res2 := testutil.MergeRun(t, []*interval.File{f2}, merge.Options{})
	if math.Abs(res2.Ratios[0]-want) <= math.Abs(res.Ratios[0]-want) {
		t.Fatalf("unfiltered ratio %.9f unexpectedly at least as good as filtered %.9f",
			res2.Ratios[0], res.Ratios[0])
	}
}

func TestMergedFileScansCleanly(t *testing.T) {
	mf, _ := testutil.Pipeline(t, shape2, merge.Options{
		Writer: interval.WriterOptions{FrameBytes: 1024, FramesPerDir: 2},
	}, pingPong(50, 4096))
	sc := mf.Scan()
	n := 0
	for {
		_, err := sc.NextRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	first, last, total, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if int(total) != n {
		t.Fatalf("dir stats say %d records, scan found %d", total, n)
	}
	if last <= first {
		t.Fatalf("span [%v %v]", first, last)
	}
}
