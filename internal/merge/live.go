package merge

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
)

// Live merging: the streaming ingest path feeds per-node record queues
// (LiveSource) into the same k-way merge loop the batch path uses
// (mergeState.run), writing one merged interval file as records arrive.
// Because the loop, the pseudo-interval tracker, and the union header
// are shared code, a live merge that receives the same per-node record
// sequences as a batch merge produces a byte-identical file.

// ErrSourceClosed is returned by LiveSource.Push after CloseSend.
var ErrSourceClosed = errors.New("merge: push on closed live source")

// defaultSourceCap bounds the per-source queue when NewLiveSource is
// given no capacity: enough records to decouple bursty producers from
// the merge loop without unbounded memory.
const defaultSourceCap = 4096

// LiveSource is one node's bounded record queue feeding a Live merge.
// The producer side (Push, CloseSend, Fail) and the consumer side (the
// merge loop's Advance/Current/CurrentEnd) run on different goroutines;
// Push blocks while the queue is full, which backpressures ingest all
// the way to the HTTP handler. Records must be pushed in ascending
// end-time order, already adjusted into the global timebase; the k-way
// merge needs every source's watermark to be its head record's end
// time, so a source that lags simply stalls the merge (correctly) until
// its next record or CloseSend arrives.
type LiveSource struct {
	mu   sync.Mutex
	cond *sync.Cond

	queue []interval.Record
	head  int
	max   int

	sendClosed bool
	err        error

	// Consumer-side state; touched only by the merge goroutine.
	cur  interval.Record
	end  clock.Time
	done bool
}

// NewLiveSource returns an empty queue. capRecords <= 0 selects the
// default capacity.
func NewLiveSource(capRecords int) *LiveSource {
	if capRecords <= 0 {
		capRecords = defaultSourceCap
	}
	s := &LiveSource{max: capRecords}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push enqueues one record, blocking while the queue is full. The
// queue takes ownership of a deep copy: the converter reuses and
// back-patches its Extra slices (a marker's end address is written
// into the open state after the begin piece was already emitted), so
// a shallow copy here would let that mutation reach records already
// queued — which the batch pipeline, encoding at emit time, never
// sees. Push fails once the source is closed or failed.
func (s *LiveSource) Push(r *interval.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return s.err
		}
		if s.sendClosed {
			return ErrSourceClosed
		}
		if len(s.queue)-s.head < s.max {
			break
		}
		s.cond.Wait()
	}
	cp := *r
	if len(r.Extra) > 0 {
		cp.Extra = append([]uint64(nil), r.Extra...)
	}
	if len(r.Vec) > 0 {
		cp.Vec = append([]uint64(nil), r.Vec...)
	}
	s.queue = append(s.queue, cp)
	s.cond.Broadcast()
	return nil
}

// Unbound lifts the queue's capacity bound: pending and future Pushes
// stop blocking and every record stays buffered until the merge
// consumes it. Drain paths need this — a drain finishing every source
// from one goroutine can block in a bounded Push while the merge waits
// on a different source that same goroutine has yet to finish, and a
// producer blocked in Push holds its node lock against the drain. The
// remaining records at drain time are finite, so the bound no longer
// buys anything.
func (s *LiveSource) Unbound() {
	s.mu.Lock()
	s.max = int(^uint(0) >> 1)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// CloseSend marks the end of the stream: Advance drains the queue and
// then reports the source done.
func (s *LiveSource) CloseSend() {
	s.mu.Lock()
	s.sendClosed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Fail poisons the source: pending and future Pushes return err, and
// the merge loop's next Advance fails with it. The first error sticks.
func (s *LiveSource) Fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// CurrentEnd implements the merge source interface.
func (s *LiveSource) CurrentEnd() (clock.Time, bool) { return s.end, s.done }

// Current implements the merge record source interface.
func (s *LiveSource) Current() *interval.Record { return &s.cur }

// Advance blocks until a record, CloseSend, or Fail arrives.
func (s *LiveSource) Advance() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.head < len(s.queue) {
			s.cur = s.queue[s.head]
			s.queue[s.head] = interval.Record{}
			s.head++
			if s.head == len(s.queue) {
				s.queue = s.queue[:0]
				s.head = 0
			}
			s.end = s.cur.End()
			s.cond.Broadcast()
			return nil
		}
		if s.err != nil {
			s.done = true
			return s.err
		}
		if s.sendClosed {
			s.done = true
			return nil
		}
		s.cond.Wait()
	}
}

// Live is a streaming merge over a set of LiveSources. NewLive writes
// the merged header immediately; Run blocks draining the sources and
// seals the file. Options.Estimator and OutlierTol are ignored — the
// ingest pipeline adjusts timestamps before pushing — as is
// Options.Parallel (each source already has its own producer).
type Live struct {
	w       *interval.Writer
	ms      *mergeState
	sources []*LiveSource
	srcs    []recordSource
	linear  bool
	res     Result
}

// NewLive builds the merged writer over dst from the per-node input
// headers (see UnionHeader) and the per-node record queues.
func NewLive(dst io.WriteSeeker, hdrs []interval.Header, sources []*LiveSource, opts Options) (*Live, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("merge: no live sources")
	}
	if len(hdrs) != len(sources) {
		return nil, fmt.Errorf("merge: %d headers for %d live sources", len(hdrs), len(sources))
	}
	hdr, err := UnionHeader(hdrs)
	if err != nil {
		return nil, err
	}
	l := &Live{sources: sources, linear: opts.Linear, res: Result{Inputs: len(sources)}}
	l.ms = &mergeState{res: &l.res, trk: newTracker()}
	w, err := interval.NewWriter(dst, hdr, l.ms.writerOptions(opts))
	if err != nil {
		return nil, err
	}
	l.w = w
	l.srcs = make([]recordSource, len(sources))
	for i, s := range sources {
		l.srcs[i] = s
	}
	return l, nil
}

// Writer exposes the underlying interval writer (for SealedSize; the
// OnSeal callback is installed through Options.Writer).
func (l *Live) Writer() *interval.Writer { return l.w }

// Run drains every source through the shared merge loop and closes the
// writer. It blocks until all sources are done (CloseSend) or one
// fails; on failure the remaining sources are poisoned so blocked
// producers unwind, and the writer is still closed — sealing the merged
// prefix written so far into a valid file.
func (l *Live) Run() error {
	err := l.ms.run(l.w, l.srcs, l.linear)
	if err != nil {
		for _, s := range l.sources {
			s.Fail(err)
		}
		l.w.Close()
		return err
	}
	return l.w.Close()
}

// Result summarizes the merge; valid after Run returns.
func (l *Live) Result() *Result { return &l.res }
