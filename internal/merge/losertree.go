package merge

import "tracefw/internal/clock"

// source is one input stream of the k-way merge: it exposes the adjusted
// end time of its current record and advances on demand.
type source interface {
	// CurrentEnd returns the adjusted end time of the current record;
	// done reports exhaustion.
	CurrentEnd() (end clock.Time, done bool)
	// Advance moves to the next record.
	Advance() error
}

// loserTree is the paper's "balanced tree in which each tree node holds
// the pointer to the next interval in the corresponding interval file"
// with nodes ordered by end time: a classic tournament loser tree with
// O(log k) replay per extracted record.
type loserTree struct {
	srcs []source
	// node[0] holds the overall winner; node[1..k-1] hold match losers.
	node []int
}

func newLoserTree(srcs []source) *loserTree {
	k := len(srcs)
	lt := &loserTree{srcs: srcs, node: make([]int, maxInt(k, 1))}
	if k == 0 {
		lt.node[0] = -1
		return lt
	}
	if k == 1 {
		lt.node[0] = 0
		return lt
	}
	var build func(n int) int
	build = func(n int) int {
		var left, right int
		if 2*n < k {
			left = build(2 * n)
		} else {
			left = 2*n - k
		}
		if 2*n+1 < k {
			right = build(2*n + 1)
		} else {
			right = 2*n + 1 - k
		}
		if lt.less(left, right) {
			lt.node[n] = right
			return left
		}
		lt.node[n] = left
		return right
	}
	lt.node[0] = build(1)
	return lt
}

// less orders stream a before stream b by (adjusted end, stream index);
// exhausted streams sort last.
func (lt *loserTree) less(a, b int) bool {
	ea, da := lt.srcs[a].CurrentEnd()
	eb, db := lt.srcs[b].CurrentEnd()
	if da != db {
		return db // a not done, b done
	}
	if da {
		return a < b
	}
	if ea != eb {
		return ea < eb
	}
	return a < b
}

// Min returns the index of the stream holding the smallest current
// record, or -1 when every stream is exhausted.
func (lt *loserTree) Min() int {
	w := lt.node[0]
	if w < 0 {
		return -1
	}
	if _, done := lt.srcs[w].CurrentEnd(); done {
		return -1
	}
	return w
}

// Fix replays the tournament from leaf w upward after the winner's
// stream advanced.
func (lt *loserTree) Fix(w int) {
	k := len(lt.srcs)
	if k <= 1 {
		return
	}
	cur := w
	for n := (w + k) / 2; n >= 1; n /= 2 {
		if lt.less(lt.node[n], cur) {
			cur, lt.node[n] = lt.node[n], cur
		}
	}
	lt.node[0] = cur
}

// linearScan is the ablation alternative to the loser tree: O(k) minimum
// search per record.
type linearScan struct{ srcs []source }

func (ls *linearScan) Min() int {
	best := -1
	var bestEnd clock.Time
	for i, s := range ls.srcs {
		e, done := s.CurrentEnd()
		if done {
			continue
		}
		if best < 0 || e < bestEnd {
			best, bestEnd = i, e
		}
	}
	return best
}

func (ls *linearScan) Fix(int) {}

// picker abstracts the two merge strategies.
type picker interface {
	Min() int
	Fix(w int)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
