package merge_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/profile"
	"tracefw/internal/xrand"
)

// synthStateFile builds a per-node input with nested Begin/End states
// and periodic global-clock records — the shapes that exercise the
// pseudo-interval tracker and the clock-record filter.
func synthStateFile(t *testing.T, rng *xrand.Rand, node, n int) *interval.File {
	t.Helper()
	sb := interval.NewSeekBuffer()
	w, err := interval.NewWriter(sb, interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Threads: []interval.ThreadEntry{
			{Task: int32(node), Node: uint16(node), LTID: 0, Type: events.ThreadMPI},
		},
		Markers: map[uint64]string{},
	}, interval.WriterOptions{FrameBytes: 256, FramesPerDir: 2})
	if err != nil {
		t.Fatal(err)
	}
	end := clock.Time(rng.Int63n(1000))
	depth := 0
	for i := 0; i < n; i++ {
		end += clock.Time(rng.Int63n(int64(clock.Millisecond)))
		r := interval.Record{
			Start: end, Dura: 0,
			Node: uint16(node), Thread: 0, CPU: uint16(node),
		}
		switch {
		case i%17 == 0:
			r.Type = events.EvGlobalClock
			r.Bebits = profile.Complete
			r.Extra = []uint64{uint64(end) + uint64(node)*1000}
		case depth < 3 && i%3 == 0:
			r.Type = events.EvMPISend
			r.Bebits = profile.Begin
			r.Extra = []uint64{uint64(i), 1, 64, 0, 0, 0}
			depth++
		case depth > 0 && i%5 == 0:
			r.Type = events.EvMPISend
			r.Bebits = profile.End
			r.Extra = []uint64{uint64(i), 1, 64, 0, 0, 0}
			depth--
		default:
			r.Type = events.EvRunning
			r.Bebits = profile.Complete
			dura := clock.Time(rng.Int63n(int64(clock.Millisecond)))
			r.Start, r.Dura = end-dura, dura
		}
		if err := w.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := interval.NewFile(sb)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// pushFile replays one input file into a live source exactly as the
// batch merge's stream stage would: global-clock records are dropped
// (they fed pair extraction) and timestamps pass through the
// EstimatorNone adjuster anchored at the first pair.
func pushFile(t *testing.T, f *interval.File, src *merge.LiveSource) {
	pairs, err := merge.ExtractPairs(f)
	if err != nil {
		t.Error(err)
		src.Fail(err)
		return
	}
	adj := &clock.RatioAdjuster{R: 1}
	if len(pairs) > 0 {
		adj.G0, adj.L0 = pairs[0].Global, pairs[0].Local
	}
	recs, err := f.Scan().All()
	if err != nil {
		t.Error(err)
		src.Fail(err)
		return
	}
	for i := range recs {
		r := recs[i]
		if r.Type == events.EvGlobalClock {
			continue
		}
		end := adj.Global(r.End())
		r.Start = adj.Global(r.Start)
		r.Dura = end - r.Start
		if err := src.Push(&r); err != nil {
			t.Error(err)
			return
		}
	}
	src.CloseSend()
}

// TestLiveMergeByteIdentical: concurrent producers feeding LiveSources
// yield a file byte-identical to the batch Merge of the same inputs
// under EstimatorNone, across pseudo/linear option combinations and
// tiny queue capacities (exercising backpressure).
func TestLiveMergeByteIdentical(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		k := 1 + trial%5
		mkFiles := func() []*interval.File {
			r := xrand.New(uint64(7000 + trial))
			files := make([]*interval.File, k)
			for s := 0; s < k; s++ {
				files[s] = synthStateFile(t, r, s, 100+r.Intn(300))
			}
			return files
		}
		opts := merge.Options{
			Estimator: merge.EstimatorNone,
			NoPseudo:  trial%4 == 1,
			Linear:    trial%3 == 0,
			Parallel:  1,
			Writer:    interval.WriterOptions{FrameBytes: 512, FramesPerDir: 2},
		}

		refOut := interval.NewSeekBuffer()
		refRes, err := merge.Merge(mkFiles(), refOut, opts)
		if err != nil {
			t.Fatalf("trial %d: batch merge: %v", trial, err)
		}

		files := mkFiles()
		hdrs := make([]interval.Header, k)
		sources := make([]*merge.LiveSource, k)
		for i, f := range files {
			hdrs[i] = f.Header
			sources[i] = merge.NewLiveSource(4) // tiny: force backpressure
		}
		liveOut := interval.NewSeekBuffer()
		live, err := merge.NewLive(liveOut, hdrs, sources, opts)
		if err != nil {
			t.Fatalf("trial %d: NewLive: %v", trial, err)
		}
		var wg sync.WaitGroup
		for i := range files {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pushFile(t, files[i], sources[i])
			}(i)
		}
		if err := live.Run(); err != nil {
			t.Fatalf("trial %d: live merge: %v", trial, err)
		}
		wg.Wait()
		if !bytes.Equal(liveOut.Bytes(), refOut.Bytes()) {
			t.Fatalf("trial %d: live merge differs from batch merge (%d vs %d bytes)",
				trial, liveOut.Len(), refOut.Len())
		}
		if live.Result().Records != refRes.Records || live.Result().Pseudo != refRes.Pseudo {
			t.Fatalf("trial %d: result mismatch: %+v vs %+v", trial, live.Result(), refRes)
		}
	}
}

// TestLiveMergeFailurePropagates: a failed source unblocks the merge
// with its error, poisons sibling producers, and still seals the
// already-merged prefix into an openable file.
func TestLiveMergeFailurePropagates(t *testing.T) {
	boom := errors.New("node crashed")
	sources := []*merge.LiveSource{merge.NewLiveSource(0), merge.NewLiveSource(0)}
	hdrs := []interval.Header{
		{ProfileVersion: profile.StdVersion, Markers: map[uint64]string{}},
		{ProfileVersion: profile.StdVersion, Markers: map[uint64]string{}},
	}
	out := interval.NewSeekBuffer()
	live, err := merge.NewLive(out, hdrs, sources, merge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := interval.Record{Type: events.EvRunning, Bebits: profile.Complete, Start: 1, Dura: 1}
	if err := sources[0].Push(&r); err != nil {
		t.Fatal(err)
	}
	sources[0].CloseSend()
	sources[1].Fail(boom)
	if err := live.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want %v", err, boom)
	}
	if err := sources[0].Push(&r); err == nil {
		t.Fatal("push on a poisoned sibling source succeeded")
	}
	if _, err := interval.NewFile(interval.NewSeekBufferFrom(out.Bytes())); err != nil {
		t.Fatalf("merged prefix after failure not openable: %v", err)
	}
}

// TestLiveSourcePushCopiesSlices: the queue must own deep copies of
// Extra/Vec. The streaming converter back-patches a marker's end
// address into the open state's extra slice after the begin piece was
// already emitted; if Push aliased that slice, records queued during
// the marker would diverge from the batch pipeline, which encodes at
// emit time.
func TestLiveSourcePushCopiesSlices(t *testing.T) {
	s := merge.NewLiveSource(4)
	r := interval.Record{
		Type:   events.EvMarkerState,
		Bebits: profile.Begin,
		Start:  1,
		Extra:  []uint64{7, 42, 0},
		Vec:    []uint64{5},
	}
	if err := s.Push(&r); err != nil {
		t.Fatal(err)
	}
	r.Extra[2] = 99 // the converter's endAddr back-patch
	r.Vec[0] = 99
	if err := s.Advance(); err != nil {
		t.Fatal(err)
	}
	got := s.Current()
	if got.Extra[2] != 0 {
		t.Fatalf("queued record saw post-push Extra mutation: extras=%v", got.Extra)
	}
	if got.Vec[0] != 5 {
		t.Fatalf("queued record saw post-push Vec mutation: vec=%v", got.Vec)
	}
}

// TestLiveSourceCloseSemantics: pushes after CloseSend fail and an
// empty closed source reads as immediately done.
func TestLiveSourceCloseSemantics(t *testing.T) {
	s := merge.NewLiveSource(2)
	s.CloseSend()
	r := interval.Record{Type: events.EvRunning, Bebits: profile.Complete}
	if err := s.Push(&r); !errors.Is(err, merge.ErrSourceClosed) {
		t.Fatalf("push after CloseSend: %v", err)
	}
	if err := s.Advance(); err != nil {
		t.Fatal(err)
	}
	if _, done := s.CurrentEnd(); !done {
		t.Fatal("closed empty source not done")
	}
}
