package merge_test

// Edge-case coverage for the k-way merge: inputs that tie on every key
// and inputs damaged mid-frame. Zero-source, single-source, and the
// parallel/sequential byte-identity sweep live in merge_test.go and
// readahead_test.go.

import (
	"bytes"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/profile"
)

// tieFile writes n records that all share the same end time, tagged with
// the stream index so the merge order is observable.
func tieFile(t *testing.T, stream, n int) []byte {
	t.Helper()
	sb := interval.NewSeekBuffer()
	w, err := interval.NewWriter(sb, interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Markers:        map[uint64]string{},
	}, interval.WriterOptions{FrameBytes: 256, FramesPerDir: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r := interval.Record{
			Type:   events.EvRunning,
			Bebits: profile.Complete,
			Start:  clock.Second,
			Dura:   clock.Second,
			CPU:    uint16(stream),
			Thread: uint16(i),
		}
		if err := w.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes()
}

// TestMergeAllEqualEndTimes: when every record in every input carries
// the same end time, the tie-break must be wholly deterministic — lowest
// stream first, input order within a stream — and byte-identical across
// linear/loser-tree strategies and all pipeline widths.
func TestMergeAllEqualEndTimes(t *testing.T) {
	const streams, perStream = 4, 9
	mkFiles := func() []*interval.File {
		files := make([]*interval.File, streams)
		for s := range files {
			f, err := interval.ReadHeader(interval.NewSeekBufferFrom(tieFile(t, s, perStream)))
			if err != nil {
				t.Fatal(err)
			}
			files[s] = f
		}
		return files
	}

	var ref []byte
	for _, cfg := range []merge.Options{
		{Estimator: merge.EstimatorNone, NoPseudo: true, Parallel: 1},
		{Estimator: merge.EstimatorNone, NoPseudo: true, Parallel: 1, Linear: true},
		{Estimator: merge.EstimatorNone, NoPseudo: true, Parallel: 4},
		{Estimator: merge.EstimatorNone, NoPseudo: true, Parallel: 8, Linear: true},
	} {
		out := interval.NewSeekBuffer()
		res, err := merge.Merge(mkFiles(), out, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Records != streams*perStream {
			t.Fatalf("%+v: %d records, want %d", cfg, res.Records, streams*perStream)
		}
		if ref == nil {
			ref = out.Bytes()
		} else if !bytes.Equal(ref, out.Bytes()) {
			t.Fatalf("%+v: output differs from reference merge", cfg)
		}
	}

	// With every key equal, a stream is drained completely before the
	// next one starts: the winner of each all-way tie is always the
	// lowest live stream index.
	mf, err := interval.ReadHeader(interval.NewSeekBufferFrom(ref))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != streams*perStream {
		t.Fatalf("merged file has %d records", len(recs))
	}
	for i, r := range recs {
		if int(r.CPU) != i/perStream || int(r.Thread) != i%perStream {
			t.Fatalf("record %d: stream %d seq %d breaks the tie order", i, r.CPU, r.Thread)
		}
	}
}

// TestMergeTruncatedMidFrame: an input cut off inside a frame must fail
// the merge with an error — sequentially and in the read-ahead pipeline —
// and never panic or produce output passing for complete.
func TestMergeTruncatedMidFrame(t *testing.T) {
	whole := tieFile(t, 0, 40)
	pf, err := interval.ReadHeader(interval.NewSeekBufferFrom(whole))
	if err != nil {
		t.Fatal(err)
	}
	frames, err := pf.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("need multiple frames, got %d", len(frames))
	}
	last := frames[len(frames)-1]
	cut := last.Offset + int64(last.Bytes)/2

	tf, err := interval.ReadHeader(interval.NewSeekBufferFrom(whole[:cut]))
	if err != nil {
		// The truncated file may already fail to open; that is an
		// acceptable rejection, but then the merge path goes untested.
		t.Fatalf("truncated file does not open (%v); pick a later cut", err)
	}
	for _, par := range []int{1, 4} {
		if _, err := merge.Merge([]*interval.File{tf}, interval.NewSeekBuffer(),
			merge.Options{Estimator: merge.EstimatorNone, NoPseudo: true, Parallel: par}); err == nil {
			t.Fatalf("Parallel=%d: merge of a mid-frame-truncated input succeeded", par)
		}
	}

	// A healthy companion input must not mask the damage.
	good, err := interval.ReadHeader(interval.NewSeekBufferFrom(tieFile(t, 1, 8)))
	if err != nil {
		t.Fatal(err)
	}
	tf2, err := interval.ReadHeader(interval.NewSeekBufferFrom(whole[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merge.Merge([]*interval.File{tf2, good}, interval.NewSeekBuffer(),
		merge.Options{Estimator: merge.EstimatorNone, NoPseudo: true}); err == nil {
		t.Fatal("merge with one truncated input succeeded")
	}
}
