package merge_test

import (
	"sort"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/profile"
	"tracefw/internal/xrand"
)

// synthFile builds an interval file of n Running records with random
// (but end-time-ordered) times on the given node, tagging each record's
// CPU with a stream-unique value so the merged multiset can be checked.
func synthFile(t *testing.T, rng *xrand.Rand, node, stream, n int) (*interval.File, []interval.Record) {
	t.Helper()
	sb := interval.NewSeekBuffer()
	w, err := interval.NewWriter(sb, interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Markers:        map[uint64]string{},
	}, interval.WriterOptions{FrameBytes: 256, FramesPerDir: 2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []interval.Record
	end := clock.Time(rng.Int63n(1000))
	for i := 0; i < n; i++ {
		end += clock.Time(rng.Int63n(int64(clock.Millisecond)))
		dura := clock.Time(rng.Int63n(int64(clock.Millisecond)))
		r := interval.Record{
			Type:   events.EvRunning,
			Bebits: profile.Complete,
			Start:  end - dura,
			Dura:   dura,
			CPU:    uint16(stream),
			Node:   uint16(node),
			Thread: uint16(i % 4),
		}
		recs = append(recs, r)
		if err := w.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := interval.ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	return f, recs
}

// TestMergeIsSortedPermutation: for random stream shapes, the merged
// output is exactly the end-time-ordered union of the inputs.
func TestMergeIsSortedPermutation(t *testing.T) {
	rng := xrand.New(2024)
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(8)
		var files []*interval.File
		var all []interval.Record
		for s := 0; s < k; s++ {
			n := rng.Intn(200)
			f, recs := synthFile(t, rng, s, s, n)
			files = append(files, f)
			all = append(all, recs...)
		}
		sb := interval.NewSeekBuffer()
		// EstimatorNone + no clock pairs: identity adjustment, so the
		// merged records must equal the inputs exactly.
		res, err := merge.Merge(files, sb, merge.Options{Estimator: merge.EstimatorNone, NoPseudo: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mf, err := interval.ReadHeader(sb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mf.Scan().All()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(all) || res.Records != int64(len(all)) {
			t.Fatalf("trial %d: merged %d records, want %d", trial, len(got), len(all))
		}
		// Sorted by end time.
		for i := 1; i < len(got); i++ {
			if got[i].End() < got[i-1].End() {
				t.Fatalf("trial %d: output unsorted at %d", trial, i)
			}
		}
		// Same multiset: compare canonical sorts.
		key := func(r interval.Record) [5]int64 {
			return [5]int64{int64(r.Start), int64(r.Dura), int64(r.CPU), int64(r.Node), int64(r.Thread)}
		}
		a := make([][5]int64, len(all))
		bkeys := make([][5]int64, len(got))
		for i := range all {
			a[i] = key(all[i])
		}
		for i := range got {
			bkeys[i] = key(got[i])
		}
		lessFn := func(x, y [5]int64) bool {
			for i := range x {
				if x[i] != y[i] {
					return x[i] < y[i]
				}
			}
			return false
		}
		sort.Slice(a, func(i, j int) bool { return lessFn(a[i], a[j]) })
		sort.Slice(bkeys, func(i, j int) bool { return lessFn(bkeys[i], bkeys[j]) })
		for i := range a {
			if a[i] != bkeys[i] {
				t.Fatalf("trial %d: multiset differs at %d: %v vs %v", trial, i, a[i], bkeys[i])
			}
		}
	}
}

// TestMergeStreamsStableTieBreak: records with identical end times keep
// input-index order, so merges are reproducible byte-for-byte.
func TestMergeStreamsStableTieBreak(t *testing.T) {
	mk := func(stream int) *interval.File {
		sb := interval.NewSeekBuffer()
		w, err := interval.NewWriter(sb, interval.Header{
			ProfileVersion: profile.StdVersion,
			HeaderVersion:  interval.CurrentHeaderVersion,
			Markers:        map[uint64]string{},
		}, interval.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			r := interval.Record{
				Type: events.EvRunning, Bebits: profile.Complete,
				Start: clock.Time(i) * clock.Second, Dura: clock.Second,
				CPU: uint16(stream),
			}
			if err := w.Add(&r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := interval.ReadHeader(sb)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	files := []*interval.File{mk(0), mk(1), mk(2)}
	sb := interval.NewSeekBuffer()
	if _, err := merge.Merge(files, sb, merge.Options{Estimator: merge.EstimatorNone, NoPseudo: true}); err != nil {
		t.Fatal(err)
	}
	mf, _ := interval.ReadHeader(sb)
	recs, _ := mf.Scan().All()
	for i, r := range recs {
		if int(r.CPU) != i%3 {
			t.Fatalf("tie-break order broken at %d: stream %d", i, r.CPU)
		}
	}
}
