// Package slog implements the SLOG (scalable log) file format of the
// paper's §4: the format consumed by the Jumpshot-style viewer. An SLOG
// file divides the run's time into frames with a time-based frame index
// (so the viewer can locate the frame containing any instant), adds
// pseudo-interval records to each frame supplying the data that was
// logged outside the frame but is needed to draw it (enclosing states,
// message arrows that span frames), and carries a preview histogram —
// state counters with proportional allocation of durations to a fixed
// number of time bins — that lets the viewer draw the whole run at once.
package slog

import (
	"encoding/binary"
	"fmt"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
)

const (
	slogMagic = "UTESLOG1"
	// Record kinds within a frame.
	kindInterval    = 1
	kindPseudo      = 2
	kindArrow       = 3
	kindPseudoArrow = 4

	arrowPayloadSize = 8 + 8 + 2 + 2 + 2 + 2 + 8 + 4 + 8
)

// Arrow is one message arrow: it connects the start of a send interval
// to the end of the matching receive interval, matched by the per-pair
// sequence numbers the tracing library plants.
type Arrow struct {
	SendTime  clock.Time // start of the send interval
	RecvTime  clock.Time // end of the receive interval
	SrcNode   uint16
	SrcThread uint16
	DstNode   uint16
	DstThread uint16
	Bytes     uint64
	Tag       uint32
	Seqno     uint64
}

func (a *Arrow) append(dst []byte) []byte {
	var b [arrowPayloadSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(a.SendTime))
	binary.LittleEndian.PutUint64(b[8:], uint64(a.RecvTime))
	binary.LittleEndian.PutUint16(b[16:], a.SrcNode)
	binary.LittleEndian.PutUint16(b[18:], a.SrcThread)
	binary.LittleEndian.PutUint16(b[20:], a.DstNode)
	binary.LittleEndian.PutUint16(b[22:], a.DstThread)
	binary.LittleEndian.PutUint64(b[24:], a.Bytes)
	binary.LittleEndian.PutUint32(b[32:], a.Tag)
	binary.LittleEndian.PutUint64(b[36:], a.Seqno)
	return append(dst, b[:]...)
}

func decodeArrow(b []byte) (Arrow, error) {
	if len(b) < arrowPayloadSize {
		return Arrow{}, fmt.Errorf("slog: truncated arrow (%d bytes)", len(b))
	}
	return Arrow{
		SendTime:  clock.Time(binary.LittleEndian.Uint64(b[0:])),
		RecvTime:  clock.Time(binary.LittleEndian.Uint64(b[8:])),
		SrcNode:   binary.LittleEndian.Uint16(b[16:]),
		SrcThread: binary.LittleEndian.Uint16(b[18:]),
		DstNode:   binary.LittleEndian.Uint16(b[20:]),
		DstThread: binary.LittleEndian.Uint16(b[22:]),
		Bytes:     binary.LittleEndian.Uint64(b[24:]),
		Tag:       binary.LittleEndian.Uint32(b[32:]),
		Seqno:     binary.LittleEndian.Uint64(b[36:]),
	}, nil
}

// FrameData is one decoded frame.
type FrameData struct {
	Intervals []interval.Record // records whose end lies in this frame
	Pseudo    []interval.Record // zero-duration continuations for enclosing states
	Arrows    []Arrow           // arrows received in this frame
	Crossing  []Arrow           // pseudo copies of arrows spanning this frame
}

// FrameEntry locates one frame in the file and in time.
type FrameEntry struct {
	Offset  int64
	Bytes   uint32
	Records uint32
	Start   clock.Time
	End     clock.Time
}

// Preview is the whole-run summary drawn before any frame is fetched
// (paper Figure 7, the smaller window).
type Preview struct {
	TStart, TEnd clock.Time
	States       []events.Type
	// Dur[s][b] is the total duration of state States[s] allocated
	// proportionally to time bin b.
	Dur [][]clock.Time
	// Count[s] is the total number of state s intervals (counting calls,
	// not pieces: records with a begin edge).
	Count []int64
}

// BinBounds returns the time range of bin b.
func (p *Preview) BinBounds(b int) (clock.Time, clock.Time) {
	n := len(p.Dur[0])
	span := p.TEnd - p.TStart
	lo := p.TStart + clock.Time(int64(span)*int64(b)/int64(n))
	hi := p.TStart + clock.Time(int64(span)*int64(b+1)/int64(n))
	return lo, hi
}

// stateIndex maps the fixed state-type list to preview rows.
func stateIndex() map[events.Type]int {
	m := make(map[events.Type]int, len(events.StateTypes))
	for i, ty := range events.StateTypes {
		m[ty] = i
	}
	return m
}
