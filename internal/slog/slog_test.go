package slog_test

import (
	"bytes"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/profile"
	"tracefw/internal/slog"
	"tracefw/internal/testutil"
)

var shape = testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 2, Seed: 5}

// phased is a workload with a marked long phase and steady messaging —
// enough structure for preview and arrow assertions.
func phased(p *mpisim.Proc) {
	peer := 1 - p.Rank()
	m := p.DefineMarker("Main Phase")
	p.MarkerBegin(m)
	for i := 0; i < 60; i++ {
		p.Compute(clock.Millisecond)
		if p.Rank() == 0 {
			p.Send(peer, int32(i), 1024)
			p.Recv(int32(peer), int32(i))
		} else {
			p.Recv(int32(peer), int32(i))
			p.Send(peer, int32(i), 1024)
		}
	}
	p.MarkerEnd(m)
	p.Barrier()
}

func buildSlog(t *testing.T, opts slog.Options, work func(*mpisim.Proc)) (*slog.File, *slog.BuildResult) {
	t.Helper()
	mf, _ := testutil.Pipeline(t, shape, merge.Options{}, work)
	sb := interval.NewSeekBuffer()
	res, err := slog.Build(mf, sb, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := slog.Read(sb)
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestBuildAndReadRoundTrip(t *testing.T) {
	f, res := buildSlog(t, slog.Options{FrameBytes: 2048}, phased)
	if res.Frames < 3 {
		t.Fatalf("only %d frames", res.Frames)
	}
	if len(f.Index) != res.Frames {
		t.Fatalf("index has %d entries, result says %d", len(f.Index), res.Frames)
	}
	if f.TEnd <= f.TStart {
		t.Fatalf("time span [%v %v]", f.TStart, f.TEnd)
	}
	if len(f.Threads) != 2 {
		t.Fatalf("threads: %d", len(f.Threads))
	}
	if f.Markers[1] != "Main Phase" {
		t.Fatalf("markers: %v", f.Markers)
	}
	// Total records across frames match the build count plus pseudo data.
	var n int64
	for i := range f.Index {
		fd, err := f.ReadFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		n += int64(len(fd.Intervals))
	}
	if n != res.Records {
		t.Fatalf("frames hold %d interval records, build saw %d", n, res.Records)
	}
}

func TestFrameAtBinarySearch(t *testing.T) {
	f, _ := buildSlog(t, slog.Options{FrameBytes: 1024}, phased)
	for _, probe := range []clock.Time{f.TStart, (f.TStart + f.TEnd) / 2, f.TEnd} {
		i, ok := f.FrameAt(probe)
		if !ok {
			t.Fatalf("no frame for %v", probe)
		}
		if f.Index[i].End < probe {
			t.Fatalf("frame %d ends %v before probe %v", i, f.Index[i].End, probe)
		}
		if i > 0 && f.Index[i-1].End >= probe {
			t.Fatalf("frame %d not the first covering %v", i, probe)
		}
	}
	if _, ok := f.FrameAt(f.TEnd + clock.Second); ok {
		t.Fatal("probe past end found a frame")
	}
}

func TestArrowsMatched(t *testing.T) {
	f, res := buildSlog(t, slog.Options{FrameBytes: 4096}, phased)
	// 60 iterations × 2 directions = 120 messages.
	if res.Arrows != 120 {
		t.Fatalf("arrows = %d, want 120", res.Arrows)
	}
	var seen int
	for i := range f.Index {
		fd, _ := f.ReadFrame(i)
		for _, a := range fd.Arrows {
			seen++
			if a.RecvTime < a.SendTime {
				t.Fatalf("arrow backwards: %+v", a)
			}
			if a.Bytes != 1024 {
				t.Fatalf("arrow bytes %d", a.Bytes)
			}
			if a.SrcNode == a.DstNode {
				t.Fatalf("arrow within one node: %+v", a)
			}
			// The arrow must land in the frame containing its recv time.
			if f.Index[i].End < a.RecvTime || (i > 0 && f.Index[i-1].End >= a.RecvTime) {
				t.Fatalf("arrow recv %v misplaced in frame %d [%v %v]",
					a.RecvTime, i, f.Index[i].Start, f.Index[i].End)
			}
		}
	}
	if int64(seen) != res.Arrows {
		t.Fatalf("read %d arrows, build made %d", seen, res.Arrows)
	}
}

func TestCrossingArrowCopies(t *testing.T) {
	// A message sent at the start and received at the very end spans all
	// frames: middle frames must carry pseudo copies.
	work := func(p *mpisim.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 99, 512) // eager: completes immediately
			for i := 0; i < 50; i++ {
				p.Compute(clock.Millisecond)
				p.Sendrecv(1, int32(i), 256, 1, int32(i))
			}
		} else {
			for i := 0; i < 50; i++ {
				p.Compute(clock.Millisecond)
				p.Sendrecv(0, int32(i), 256, 0, int32(i))
			}
			p.Recv(0, 99) // received long after it was sent
		}
	}
	f, _ := buildSlog(t, slog.Options{FrameBytes: 1024}, work)
	if len(f.Index) < 4 {
		t.Fatalf("need several frames, got %d", len(f.Index))
	}
	// Find the long arrow's frame and check middle frames have copies.
	copies := 0
	for i := range f.Index {
		fd, _ := f.ReadFrame(i)
		for _, a := range fd.Crossing {
			if a.Tag == 99 {
				copies++
			}
		}
	}
	if copies == 0 {
		t.Fatal("no crossing copies of the long arrow")
	}

	f2, _ := buildSlog(t, slog.Options{FrameBytes: 1024, NoCrossingCopies: true}, work)
	for i := range f2.Index {
		fd, _ := f2.ReadFrame(i)
		if len(fd.Crossing) != 0 {
			t.Fatal("NoCrossingCopies still produced copies")
		}
	}
}

func TestPseudoIntervalsInFrames(t *testing.T) {
	f, _ := buildSlog(t, slog.Options{FrameBytes: 1024}, phased)
	// The marker is open for nearly the whole run: frames after the first
	// must carry marker pseudo continuations.
	withPseudo := 0
	for i := 1; i < len(f.Index)-1; i++ {
		fd, _ := f.ReadFrame(i)
		for _, r := range fd.Pseudo {
			if r.Type == events.EvMarkerState && r.Dura == 0 && r.Bebits == profile.Continuation {
				withPseudo++
				break
			}
		}
	}
	if withPseudo < len(f.Index)/2 {
		t.Fatalf("only %d/%d middle frames carry marker pseudo intervals", withPseudo, len(f.Index)-2)
	}
}

func TestPreviewAccounting(t *testing.T) {
	f, _ := buildSlog(t, slog.Options{FrameBytes: 4096, Bins: 40}, phased)
	p := f.Preview
	if len(p.Dur) != len(events.StateTypes) || len(p.Dur[0]) != 40 {
		t.Fatalf("preview shape %dx%d", len(p.Dur), len(p.Dur[0]))
	}
	// Total allocated duration per state equals the sum of record
	// durations of that state (proportional allocation conserves time).
	mf, _ := testutil.Pipeline(t, shape, merge.Options{}, phased)
	want := map[events.Type]clock.Time{}
	recs, _ := mf.Scan().All()
	for _, r := range recs {
		want[r.Type] += r.Dura
	}
	for si, ty := range p.States {
		var got clock.Time
		for _, d := range p.Dur[si] {
			got += d
		}
		diff := got - want[ty]
		if diff < 0 {
			diff = -diff
		}
		// Rounding: one ns per bin boundary crossed per record.
		if diff > clock.Time(len(recs)+40) {
			t.Fatalf("state %s preview duration %v, records say %v", ty.Name(), got, want[ty])
		}
	}
	// Send count: 60 sends per direction plus pieces do not inflate it.
	si := stateIdx(p.States, events.EvMPISend)
	if p.Count[si] != 120 {
		t.Fatalf("send count %d, want 120", p.Count[si])
	}
	// Bin bounds tile the run.
	lo, _ := p.BinBounds(0)
	_, hi := p.BinBounds(39)
	if lo != p.TStart || hi != p.TEnd {
		t.Fatalf("bin bounds [%v %v] vs run [%v %v]", lo, hi, p.TStart, p.TEnd)
	}
}

func TestSlogmerge(t *testing.T) {
	raws := testutil.RunWorkload(t, shape, phased)
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	sb := interval.NewSeekBuffer()
	mres, bres, err := slog.Slogmerge(files, sb, merge.Options{}, slog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Records == 0 || bres.Records == 0 {
		t.Fatalf("empty slogmerge: %+v %+v", mres, bres)
	}
	f, err := slog.Read(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Index) != bres.Frames {
		t.Fatalf("frames %d vs %d", len(f.Index), bres.Frames)
	}
}

func TestFrameFetchIndependentOfPosition(t *testing.T) {
	f, _ := buildSlog(t, slog.Options{FrameBytes: 1024}, phased)
	// Fetch the last frame directly; it must decode without touching the
	// earlier ones (correct offsets in the index).
	last := len(f.Index) - 1
	fd, err := f.ReadFrame(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Intervals) == 0 {
		t.Fatal("last frame empty")
	}
	if _, err := f.ReadFrame(-1); err == nil {
		t.Fatal("negative frame index accepted")
	}
	if _, err := f.ReadFrame(last + 1); err == nil {
		t.Fatal("out-of-range frame index accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	sb := interval.NewSeekBuffer()
	sb.Write([]byte("certainly not an slog file, but long enough to parse a header from"))
	if _, err := slog.Read(sb); err == nil {
		t.Fatal("garbage accepted")
	}
}

func stateIdx(states []events.Type, ty events.Type) int {
	for i, s := range states {
		if s == ty {
			return i
		}
	}
	return -1
}

func TestWaitallEnvelopesProduceArrows(t *testing.T) {
	// Halo exchange completed exclusively through Waitall: the arrows
	// must still match via the Waitall records' vector envelopes.
	work := func(p *mpisim.Proc) {
		peer := 1 - p.Rank()
		for i := 0; i < 15; i++ {
			rr := p.Irecv(int32(peer), int32(i))
			sr := p.Isend(peer, int32(i), 2048)
			p.Compute(clock.Millisecond)
			p.Waitall(rr, sr)
		}
		p.Barrier()
	}
	f, res := buildSlog(t, slog.Options{FrameBytes: 4096}, work)
	// 15 messages in each direction.
	if res.Arrows != 30 {
		t.Fatalf("arrows = %d, want 30", res.Arrows)
	}
	for i := range f.Index {
		fd, _ := f.ReadFrame(i)
		for _, a := range fd.Arrows {
			if a.Bytes != 2048 || a.RecvTime < a.SendTime {
				t.Fatalf("bad arrow: %+v", a)
			}
		}
	}
}

// TestBuildParallelByteIdentical: the SLOG writer must emit the exact
// same bytes at every frame-decode worker count — all order-sensitive
// work (matching, partitioning, serialization) runs in the engine's
// frame-order reduce. Do not weaken this to a structural comparison.
func TestBuildParallelByteIdentical(t *testing.T) {
	mf, _ := testutil.Pipeline(t, shape, merge.Options{}, phased)
	build := func(j int) []byte {
		sb := interval.NewSeekBuffer()
		if _, err := slog.Build(mf, sb, slog.Options{FrameBytes: 1024, Parallel: j}); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), sb.Bytes()...)
	}
	want := build(1)
	for _, j := range []int{2, 4, 9} {
		if !bytes.Equal(build(j), want) {
			t.Fatalf("-j %d slog bytes differ from sequential build", j)
		}
	}
}

// TestColumnarBuildByteIdentical builds the same merged trace with the
// record-fed and the batch-fed pass 1 and requires bit-for-bit equal
// SLOG files, at several worker counts and with a Waitall-heavy
// workload so the vector envelopes flow through RowCopy.
func TestColumnarBuildByteIdentical(t *testing.T) {
	// Halo exchange completed through Waitall: the vector envelopes must
	// survive the batch-fed path's RowCopy for the arrows to match.
	waitallWork := func(p *mpisim.Proc) {
		peer := 1 - p.Rank()
		for i := 0; i < 15; i++ {
			rr := p.Irecv(int32(peer), int32(i))
			sr := p.Isend(peer, int32(i), 2048)
			p.Compute(clock.Millisecond)
			p.Waitall(rr, sr)
		}
		p.Barrier()
	}
	for _, work := range []func(*mpisim.Proc){phased, waitallWork} {
		mf, _ := testutil.Pipeline(t, shape, merge.Options{}, work)
		build := func(opts slog.Options) []byte {
			sb := interval.NewSeekBuffer()
			if _, err := slog.Build(mf, sb, opts); err != nil {
				t.Fatal(err)
			}
			return sb.Bytes()
		}
		want := build(slog.Options{FrameBytes: 2048})
		for _, par := range []int{0, 1, 4} {
			got := build(slog.Options{FrameBytes: 2048, Parallel: par, Columnar: true})
			if !bytes.Equal(got, want) {
				t.Fatalf("columnar build (parallel=%d) differs from record-fed build", par)
			}
		}
	}
}
