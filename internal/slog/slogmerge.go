package slog

import (
	"io"
	"os"

	"tracefw/internal/interval"
	"tracefw/internal/merge"
)

// Slogmerge is the paper's slogmerge utility: merge the individual
// interval files and convert the result to SLOG in one step. The
// intermediate merged interval file is kept in memory.
func Slogmerge(files []*interval.File, dst io.WriteSeeker, mopts merge.Options, sopts Options) (*merge.Result, *BuildResult, error) {
	tmp := interval.NewSeekBuffer()
	mres, err := merge.Merge(files, tmp, mopts)
	if err != nil {
		return nil, nil, err
	}
	mf, err := interval.ReadHeader(tmp)
	if err != nil {
		return mres, nil, err
	}
	bres, err := Build(mf, dst, sopts)
	return mres, bres, err
}

// SlogmergeFiles runs Slogmerge over files on disk.
func SlogmergeFiles(paths []string, outPath string, mopts merge.Options, sopts Options) (*merge.Result, *BuildResult, error) {
	files := make([]*interval.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := interval.Open(p)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	out, err := os.Create(outPath)
	if err != nil {
		return nil, nil, err
	}
	mres, bres, err := Slogmerge(files, out, mopts, sopts)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return mres, bres, err
}
