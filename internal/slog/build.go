package slog

import (
	"fmt"
	"io"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
)

// Options tunes SLOG construction.
type Options struct {
	// FrameBytes is the target frame payload size (default 64 KiB); "the
	// frame size is chosen so that the display of a single frame is
	// quick".
	FrameBytes int
	// Bins is the preview bin count (default 50, matching the paper's
	// statistics table granularity).
	Bins int
	// NoCrossingCopies disables pseudo copies of frame-spanning arrows
	// (ablation; the viewer then misses arrows in middle frames).
	NoCrossingCopies bool
	// Parallel is the frame-decode worker count for both build passes
	// (<= 0 means GOMAXPROCS). The output is byte-identical for every
	// worker count: frames decode and pre-bin concurrently, while the
	// order-sensitive work (frame partitioning, arrow matching,
	// serialization) runs in the engine's deterministic frame-order
	// reduce.
	Parallel int
	// Columnar feeds pass 1 from columnar batches: the preview
	// accumulates straight from the start/duration/type columns and only
	// the records the arrow matcher inspects (p2p completions) are
	// materialized. Output is byte-identical to the record-fed build;
	// pass 2 (serialization) always consumes records.
	Columnar bool
}

func (o Options) frameBytes() int {
	if o.FrameBytes <= 0 {
		return 64 << 10
	}
	return o.FrameBytes
}

func (o Options) bins() int {
	if o.Bins <= 0 {
		return 50
	}
	return o.Bins
}

// BuildResult summarizes a build.
type BuildResult struct {
	Frames  int
	Records int64
	Arrows  int64
	Pseudo  int64 // pseudo intervals + crossing arrow copies
}

// partitioner reproduces the frame boundaries deterministically from the
// record stream: a frame closes when its payload reaches FrameBytes.
type partitioner struct {
	limit int
	size  int
	n     int
}

// add accounts one record of encoded size sz; it returns true when the
// record CLOSES the current frame (the record still belongs to it).
func (p *partitioner) add(sz int) bool {
	p.size += sz
	p.n++
	if p.size >= p.limit {
		p.size = 0
		p.n = 0
		return true
	}
	return false
}

// arrowKey matches sends and receives: sequence numbers are unique per
// directed (source task, destination task) pair.
type arrowKey struct {
	srcTask, dstTask int32
	seqno            uint64
}

// taskTable maps (node, logical thread) to the owning MPI task.
type taskTable map[[2]uint16]int32

func newTaskTable(threads []interval.ThreadEntry) taskTable {
	t := make(taskTable, len(threads))
	for _, te := range threads {
		t[[2]uint16{te.Node, te.LTID}] = te.Task
	}
	return t
}

func (t taskTable) of(r *interval.Record) int32 {
	if task, ok := t[[2]uint16{r.Node, r.Thread}]; ok {
		return task
	}
	return -1
}

// Build converts a merged interval file into an SLOG file.
func Build(mf *interval.File, ws io.WriteSeeker, opts Options) (*BuildResult, error) {
	tStart, tEnd, _, err := mf.Stats()
	if err != nil {
		return nil, err
	}
	if tEnd <= tStart {
		tEnd = tStart + 1
	}
	bins := opts.bins()
	sidx := stateIndex()
	prev := &Preview{
		TStart: tStart,
		TEnd:   tEnd,
		States: events.StateTypes,
		Dur:    make([][]clock.Time, len(events.StateTypes)),
		Count:  make([]int64, len(events.StateTypes)),
	}
	for i := range prev.Dur {
		prev.Dur[i] = make([]clock.Time, bins)
	}

	// --- Pass 1: frame boundaries, preview accumulation, arrow matching.
	part := &partitioner{limit: opts.frameBytes()}
	type frameInfo struct {
		firstIdx, lastIdx int64
		lo, hi            clock.Time
	}
	var frames []frameInfo
	newInfo := func(first int64) frameInfo {
		return frameInfo{firstIdx: first, lastIdx: -1, lo: clock.Time(1<<63 - 1), hi: clock.Time(-1 << 63)}
	}
	cur := newInfo(0)
	var arrows []Arrow
	arrowFrame := map[int]int{} // arrow index -> recv frame index (filled pass 1)
	m := &matcher{
		tasks: newTaskTable(mf.Header.Threads),
		sends: map[arrowKey]interval.Record{},
		recvs: map[arrowKey]recvHalf{},
	}

	// The preview's proportional bin allocation is the per-record O(bins)
	// hot loop, and it sums integer durations — associative, so per-frame
	// partial matrices merged in any order equal the sequential result
	// exactly. It runs in the concurrent map; everything order-sensitive
	// (arrow matching, frame partitioning) runs in the frame-order
	// reduce, expressed once as a per-record step shared by the
	// record-fed and batch-fed variants below.
	mopts := interval.MapOptions{Parallel: opts.Parallel}
	var idx int64
	step := func(start, end clock.Time, size int, mr *interval.Record) {
		// Arrow matching on final pieces of p2p and wait operations.
		if mr != nil {
			m.observe(mr, &arrows, arrowFrame, len(frames))
		}
		if start < cur.lo {
			cur.lo = start
		}
		if end > cur.hi {
			cur.hi = end
		}
		closes := part.add(size)
		cur.lastIdx = idx
		if closes {
			frames = append(frames, cur)
			cur = newInfo(idx + 1)
		}
		idx++
	}
	mergePreview := func(dur [][]clock.Time, count []int64) {
		for si := range prev.Dur {
			dst, src := prev.Dur[si], dur[si]
			for b := range dst {
				dst[b] += src[b]
			}
			prev.Count[si] += count[si]
		}
	}
	newBins := func() [][]clock.Time {
		d := make([][]clock.Time, len(events.StateTypes))
		for i := range d {
			d[i] = make([]clock.Time, bins)
		}
		return d
	}
	if opts.Columnar {
		// Batch-fed pass 1: the preview reads the type/start/duration
		// columns in place; only matcher-relevant completions are
		// materialized (RowCopy), tagged with their row so the reduce
		// replays them at exactly the position the record-fed pass would.
		type p1cols struct {
			dur        [][]clock.Time
			count      []int64
			start, end []clock.Time
			size       []int
			mrow       []int32
			mrecs      []interval.Record
		}
		err = interval.MapFilesBatches([]*interval.File{mf}, mopts,
			func(_ int, _ interval.FrameEntry, b *interval.Batch) (*p1cols, error) {
				pp := &p1cols{
					dur:   newBins(),
					count: make([]int64, len(events.StateTypes)),
					start: make([]clock.Time, 0, b.N),
					end:   make([]clock.Time, 0, b.N),
					size:  make([]int, 0, b.N),
				}
				scratch := &Preview{TStart: tStart, TEnd: tEnd, Dur: pp.dur}
				for i := 0; i < b.N; i++ {
					s, e := b.Start[i], b.End(i)
					pp.start = append(pp.start, s)
					pp.end = append(pp.end, e)
					pp.size = append(pp.size, b.EncodedRowSize(i))
					typ := b.Type[i]
					if si, ok := sidx[typ]; ok {
						if b.Bebits[i] == profile.Begin || b.Bebits[i] == profile.Complete {
							pp.count[si]++
						}
						allocate(scratch, si, s, e, bins)
					}
					if (b.Bebits[i] == profile.Complete || b.Bebits[i] == profile.End) && matcherType(typ) {
						pp.mrow = append(pp.mrow, int32(i))
						pp.mrecs = append(pp.mrecs, b.RowCopy(i))
					}
				}
				return pp, nil
			},
			func(_ int, _ interval.FrameEntry, pp *p1cols) error {
				mergePreview(pp.dur, pp.count)
				mi := 0
				for i := range pp.start {
					var mr *interval.Record
					if mi < len(pp.mrow) && int(pp.mrow[mi]) == i {
						mr = &pp.mrecs[mi]
						mi++
					}
					step(pp.start[i], pp.end[i], pp.size[i], mr)
				}
				return nil
			})
	} else {
		type p1partial struct {
			dur   [][]clock.Time
			count []int64
			recs  []interval.Record
		}
		err = interval.MapFrames(mf, mopts,
			func(_ interval.FrameEntry, recs []interval.Record) (*p1partial, error) {
				pp := &p1partial{
					dur:   newBins(),
					count: make([]int64, len(events.StateTypes)),
					recs:  recs,
				}
				scratch := &Preview{TStart: tStart, TEnd: tEnd, Dur: pp.dur}
				for ri := range recs {
					r := &recs[ri]
					if si, ok := sidx[r.Type]; ok {
						if r.Bebits == profile.Begin || r.Bebits == profile.Complete {
							pp.count[si]++
						}
						allocate(scratch, si, r.Start, r.End(), bins)
					}
				}
				return pp, nil
			},
			func(_ interval.FrameEntry, pp *p1partial) error {
				mergePreview(pp.dur, pp.count)
				for ri := range pp.recs {
					r := &pp.recs[ri]
					var mr *interval.Record
					if r.Bebits == profile.Complete || r.Bebits == profile.End {
						mr = r
					}
					step(r.Start, r.End(), r.EncodedSize(), mr)
				}
				return nil
			})
	}
	if err != nil {
		return nil, err
	}
	if cur.lastIdx >= cur.firstIdx {
		frames = append(frames, cur)
	}
	total := idx

	res := &BuildResult{Frames: len(frames), Records: total, Arrows: int64(len(arrows))}

	// Assign arrows to frames: the original goes to the frame where its
	// receive completed (recorded during pass 1); crossing pseudo copies
	// go to every earlier frame the arrow spans in time. Frame hi bounds
	// are nondecreasing (records arrive end-time ordered), so the
	// backward scan per arrow stops as soon as a frame ends before the
	// send — total work is proportional to the copies produced.
	ownArrows := make([][]int, len(frames))
	crossArrows := make([][]int, len(frames))
	for ai := range arrows {
		rf := arrowFrame[ai]
		ownArrows[rf] = append(ownArrows[rf], ai)
		if opts.NoCrossingCopies {
			continue
		}
		for f := rf - 1; f >= 0; f-- {
			if frames[f].hi <= arrows[ai].SendTime {
				break
			}
			if arrows[ai].RecvTime > frames[f].lo {
				crossArrows[f] = append(crossArrows[f], ai)
			}
		}
	}

	// --- Pass 2: serialize.
	w, err := newWriter(ws, mf, prev, len(frames))
	if err != nil {
		return nil, err
	}
	part = &partitioner{limit: opts.frameBytes()}
	trk := newTracker()
	fi := 0
	var frameRecs []interval.Record
	var lastEnd clock.Time = tStart
	frameStartStamp := tStart
	flush := func() error {
		if len(frameRecs) == 0 {
			return nil
		}
		// Pseudo intervals: enclosing open states at the frame start.
		pseudo := trk.pseudosBefore(frameRecs, frameStartStamp)
		// Arrows: originals landing in this frame; crossing copies.
		var own, crossing []Arrow
		for _, ai := range ownArrows[fi] {
			own = append(own, arrows[ai])
		}
		for _, ai := range crossArrows[fi] {
			crossing = append(crossing, arrows[ai])
		}
		res.Pseudo += int64(len(pseudo) + len(crossing))
		if err := w.writeFrame(frameRecs, pseudo, own, crossing); err != nil {
			return err
		}
		// Update tracker with the frame's records for the next frame.
		for i := range frameRecs {
			trk.observe(&frameRecs[i])
		}
		frameRecs = frameRecs[:0]
		fi++
		frameStartStamp = lastEnd
		return nil
	}
	// Pass 2's map stage only decodes (concurrently); the serialization
	// itself consumes records in frame order inside the reduce. Engine
	// records are freshly decoded per frame, so retaining them across
	// SLOG frame boundaries in frameRecs is safe.
	err = interval.MapFrames(mf, mopts,
		func(_ interval.FrameEntry, recs []interval.Record) ([]interval.Record, error) {
			return recs, nil
		},
		func(_ interval.FrameEntry, recs []interval.Record) error {
			for ri := range recs {
				r := recs[ri]
				frameRecs = append(frameRecs, r)
				lastEnd = r.End()
				if part.add(r.EncodedSize()) {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	return res, nil
}

// allocate distributes an interval's duration proportionally across the
// preview bins it overlaps.
func allocate(p *Preview, si int, start, end clock.Time, bins int) {
	if end <= start {
		return
	}
	span := p.TEnd - p.TStart
	if span <= 0 {
		return
	}
	binDur := float64(span) / float64(bins)
	for b := 0; b < bins; b++ {
		lo := p.TStart + clock.Time(binDur*float64(b))
		hi := p.TStart + clock.Time(binDur*float64(b+1))
		if hi <= start {
			continue
		}
		if lo >= end {
			break
		}
		olo, ohi := maxT(lo, start), minT(hi, end)
		if ohi > olo {
			p.Dur[si][b] += ohi - olo
		}
	}
}

// matcherType reports whether the arrow matcher inspects records of
// this type (the types m.observe switches on). The batch-fed pass 1
// only materializes records of these types.
func matcherType(t events.Type) bool {
	switch t {
	case events.EvMPISend, events.EvMPIIsend, events.EvMPISendrecv,
		events.EvMPIRecv, events.EvMPIIrecv, events.EvMPIWait, events.EvMPIWaitall:
		return true
	}
	return false
}

// recvHalf is a receive completion waiting for its send record.
type recvHalf struct {
	end          clock.Time
	node, thread uint16
}

// matcher pairs send records with receive completions by (source task,
// destination task, sequence number). Receive completions come from
// blocking MPI_Recv records, from MPI_Wait records carrying the matched
// envelope of an Irecv, and from the receive half of MPI_Sendrecv.
type matcher struct {
	tasks taskTable
	sends map[arrowKey]interval.Record
	recvs map[arrowKey]recvHalf
}

func (m *matcher) observe(r *interval.Record, arrows *[]Arrow, arrowFrame map[int]int, curFrame int) {
	switch r.Type {
	case events.EvMPISend, events.EvMPIIsend, events.EvMPISendrecv:
		seq, _ := r.Field(events.FieldSeqno)
		if seq != 0 {
			dst, _ := r.Field(events.FieldPeer)
			m.send(r, int32(dst), seq, arrows, arrowFrame, curFrame)
		}
		if r.Type == events.EvMPISendrecv {
			rseq, _ := r.Field(events.FieldRecvSeqno)
			if rseq != 0 {
				src, _ := r.Field(events.FieldRecvPeer)
				m.recv(r, int32(src), rseq, arrows, arrowFrame, curFrame)
			}
		}
	case events.EvMPIRecv, events.EvMPIIrecv:
		seq, _ := r.Field(events.FieldSeqno)
		if seq != 0 {
			src, _ := r.Field(events.FieldPeer)
			m.recv(r, int32(src), seq, arrows, arrowFrame, curFrame)
		}
	case events.EvMPIWait:
		seq, _ := r.Field(events.FieldRecvSeqno)
		if seq != 0 {
			src, _ := r.Field(events.FieldRecvPeer)
			m.recv(r, int32(src), seq, arrows, arrowFrame, curFrame)
		}
	case events.EvMPIWaitall:
		// The vector field holds (peer, seqno, bytes) envelope triples,
		// one per completed receive request.
		for i := 0; i+2 < len(r.Vec); i += 3 {
			if r.Vec[i+1] != 0 {
				m.recv(r, int32(uint32(r.Vec[i])), r.Vec[i+1], arrows, arrowFrame, curFrame)
			}
		}
	}
}

func (m *matcher) send(r *interval.Record, dstTask int32, seq uint64, arrows *[]Arrow, arrowFrame map[int]int, curFrame int) {
	k := arrowKey{srcTask: m.tasks.of(r), dstTask: dstTask, seqno: seq}
	if k.srcTask < 0 {
		return
	}
	if rh, ok := m.recvs[k]; ok {
		delete(m.recvs, k)
		bytes, _ := r.Field(events.FieldMsgSizeSent)
		tag, _ := r.Field(events.FieldTag)
		m.emit(arrows, arrowFrame, curFrame, Arrow{
			SendTime: r.Start, RecvTime: rh.end,
			SrcNode: r.Node, SrcThread: r.Thread,
			DstNode: rh.node, DstThread: rh.thread,
			Bytes: bytes, Tag: uint32(tag), Seqno: seq,
		})
		return
	}
	m.sends[k] = *r
}

func (m *matcher) recv(r *interval.Record, srcTask int32, seq uint64, arrows *[]Arrow, arrowFrame map[int]int, curFrame int) {
	k := arrowKey{srcTask: srcTask, dstTask: m.tasks.of(r), seqno: seq}
	if k.dstTask < 0 {
		return
	}
	if sr, ok := m.sends[k]; ok {
		delete(m.sends, k)
		bytes, _ := sr.Field(events.FieldMsgSizeSent)
		tag, _ := sr.Field(events.FieldTag)
		m.emit(arrows, arrowFrame, curFrame, Arrow{
			SendTime: sr.Start, RecvTime: r.End(),
			SrcNode: sr.Node, SrcThread: sr.Thread,
			DstNode: r.Node, DstThread: r.Thread,
			Bytes: bytes, Tag: uint32(tag), Seqno: seq,
		})
		return
	}
	m.recvs[k] = recvHalf{end: r.End(), node: r.Node, thread: r.Thread}
}

func (m *matcher) emit(arrows *[]Arrow, arrowFrame map[int]int, curFrame int, a Arrow) {
	*arrows = append(*arrows, a)
	arrowFrame[len(*arrows)-1] = curFrame
}

// tracker mirrors merge's open-state reconstruction.
type tracker struct {
	open map[[2]uint16][]interval.Record
}

func newTracker() *tracker { return &tracker{open: make(map[[2]uint16][]interval.Record)} }

func (t *tracker) observe(r *interval.Record) {
	if r.Type == events.EvGlobalClock {
		return
	}
	k := [2]uint16{r.Node, r.Thread}
	switch r.Bebits {
	case profile.Begin:
		t.open[k] = append(t.open[k], *r)
	case profile.End:
		stack := t.open[k]
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].Type == r.Type {
				t.open[k] = append(stack[:i], stack[i+1:]...)
				return
			}
		}
	}
}

// pseudosBefore returns zero-duration continuations for the states open
// at the frame start.
func (t *tracker) pseudosBefore(_ []interval.Record, at clock.Time) []interval.Record {
	keys := make([][2]uint16, 0, len(t.open))
	for k, stack := range t.open {
		if len(stack) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var out []interval.Record
	for _, k := range keys {
		for _, st := range t.open[k] {
			pr := st
			pr.Bebits = profile.Continuation
			pr.Start = at
			pr.Dura = 0
			out = append(out, pr)
		}
	}
	return out
}

func frameBounds(recs, pseudo []interval.Record) (clock.Time, clock.Time) {
	lo, hi := recs[0].Start, recs[0].End()
	for _, r := range recs {
		if r.Start < lo {
			lo = r.Start
		}
		if r.End() > hi {
			hi = r.End()
		}
	}
	for _, r := range pseudo {
		if r.Start < lo {
			lo = r.Start
		}
	}
	return lo, hi
}

func maxT(a, b clock.Time) clock.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b clock.Time) clock.Time {
	if a < b {
		return a
	}
	return b
}

var errTooManyFrames = fmt.Errorf("slog: frame count mismatch between passes")
