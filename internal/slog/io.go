package slog

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
)

// File header layout (fixed part):
//
//	magic (8) | version u32 | bins u32 | nstates u32 | nframes u32 |
//	tStart i64 | tEnd i64 | tailOff u64 (patched) | nthreads u32 |
//	nmarkers u32
//
// followed by the thread table and marker table (interval-file layout),
// then the frames, then the tail: state table, preview matrix, frame
// index.
const slogVersion = 1

type writer struct {
	ws      io.WriteSeeker
	off     int64
	tailPos int64 // where tailOff is patched
	prev    *Preview
	index   []FrameEntry
	nframes int
}

func newWriter(ws io.WriteSeeker, mf *interval.File, prev *Preview, nframes int) (*writer, error) {
	w := &writer{ws: ws, prev: prev, nframes: nframes}
	var b []byte
	b = append(b, slogMagic...)
	b = appendU32(b, slogVersion)
	b = appendU32(b, uint32(len(prev.Dur[0])))
	b = appendU32(b, uint32(len(prev.States)))
	b = appendU32(b, uint32(nframes))
	b = appendU64(b, uint64(prev.TStart))
	b = appendU64(b, uint64(prev.TEnd))
	w.tailPos = int64(len(b))
	b = appendU64(b, 0) // tailOff, patched in finish
	b = appendU32(b, uint32(len(mf.Header.Threads)))
	b = appendU32(b, uint32(len(mf.Header.Markers)))
	for _, te := range mf.Header.Threads {
		b = appendU32(b, uint32(te.Task))
		b = appendU64(b, te.PID)
		b = appendU64(b, te.SysTID)
		b = appendU16(b, te.Node)
		b = appendU16(b, te.LTID)
		b = append(b, te.Type, 0, 0, 0)
	}
	ids := make([]uint64, 0, len(mf.Header.Markers))
	for id := range mf.Header.Markers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := mf.Header.Markers[id]
		b = appendU64(b, id)
		b = appendU16(b, uint16(len(s)))
		b = append(b, s...)
	}
	if _, err := ws.Write(b); err != nil {
		return nil, err
	}
	w.off = int64(len(b))
	return w, nil
}

func (w *writer) writeFrame(recs, pseudo []interval.Record, own, crossing []Arrow) error {
	var b []byte
	n := len(recs) + len(pseudo) + len(own) + len(crossing)
	b = appendU32(b, uint32(n))
	emit := func(kind byte, payload []byte) {
		b = append(b, kind)
		b = appendU16(b, uint16(len(payload)))
		b = append(b, payload...)
	}
	lo, hi := frameBounds(recs, pseudo)
	for i := range pseudo {
		emit(kindPseudo, pseudo[i].AppendPayload(nil))
	}
	for i := range recs {
		emit(kindInterval, recs[i].AppendPayload(nil))
	}
	for i := range own {
		emit(kindArrow, own[i].append(nil))
	}
	for i := range crossing {
		emit(kindPseudoArrow, crossing[i].append(nil))
	}
	if _, err := w.ws.Write(b); err != nil {
		return err
	}
	w.index = append(w.index, FrameEntry{
		Offset:  w.off,
		Bytes:   uint32(len(b)),
		Records: uint32(n),
		Start:   lo,
		End:     hi,
	})
	w.off += int64(len(b))
	return nil
}

func (w *writer) finish() error {
	if len(w.index) != w.nframes {
		return errTooManyFrames
	}
	tail := w.off
	var b []byte
	// State table.
	for _, ty := range w.prev.States {
		b = appendU16(b, uint16(ty))
		name := ty.Name()
		b = appendU16(b, uint16(len(name)))
		b = append(b, name...)
	}
	// Preview matrix + counters.
	for si := range w.prev.Dur {
		for _, d := range w.prev.Dur[si] {
			b = appendU64(b, uint64(d))
		}
		b = appendU64(b, uint64(w.prev.Count[si]))
	}
	// Frame index.
	for _, fe := range w.index {
		b = appendU64(b, uint64(fe.Offset))
		b = appendU32(b, fe.Bytes)
		b = appendU32(b, fe.Records)
		b = appendU64(b, uint64(fe.Start))
		b = appendU64(b, uint64(fe.End))
	}
	if _, err := w.ws.Write(b); err != nil {
		return err
	}
	// Patch tailOff.
	if _, err := w.ws.Seek(w.tailPos, io.SeekStart); err != nil {
		return err
	}
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], uint64(tail))
	if _, err := w.ws.Write(t[:]); err != nil {
		return err
	}
	_, err := w.ws.Seek(w.off+int64(len(b)), io.SeekStart)
	return err
}

// File is a parsed SLOG file ready for frame fetches.
type File struct {
	Bins    int
	TStart  clock.Time
	TEnd    clock.Time
	Threads []interval.ThreadEntry
	Markers map[uint64]string
	States  []events.Type
	Preview *Preview
	Index   []FrameEntry
	r       io.ReadSeeker
	closer  io.Closer
	nstates int
	nframes int
	tailOff int64
	size    int64
}

// Read parses an SLOG file's header, tables, preview, and frame index.
// Every offset and count is bounded by the file size so corrupted
// metadata cannot trigger unbounded allocations.
func Read(rs io.ReadSeeker) (*File, error) {
	size, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var fixed [8 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 4 + 4]byte
	if _, err := io.ReadFull(rs, fixed[:]); err != nil {
		return nil, fmt.Errorf("slog: reading header: %w", err)
	}
	if string(fixed[:8]) != slogMagic {
		return nil, fmt.Errorf("slog: bad magic %q", fixed[:8])
	}
	f := &File{r: rs}
	if v := binary.LittleEndian.Uint32(fixed[8:]); v != slogVersion {
		return nil, fmt.Errorf("slog: unsupported version %d", v)
	}
	f.Bins = int(binary.LittleEndian.Uint32(fixed[12:]))
	f.nstates = int(binary.LittleEndian.Uint32(fixed[16:]))
	f.nframes = int(binary.LittleEndian.Uint32(fixed[20:]))
	f.TStart = clock.Time(binary.LittleEndian.Uint64(fixed[24:]))
	f.TEnd = clock.Time(binary.LittleEndian.Uint64(fixed[32:]))
	f.tailOff = int64(binary.LittleEndian.Uint64(fixed[40:]))
	nthreads := int(binary.LittleEndian.Uint32(fixed[48:]))
	nmarkers := int(binary.LittleEndian.Uint32(fixed[52:]))
	f.size = size
	if f.tailOff < 0 || f.tailOff > size {
		return nil, fmt.Errorf("slog: tail offset %d outside file of %d bytes", f.tailOff, size)
	}
	if int64(nthreads)*28 > size || int64(nmarkers)*10 > size ||
		int64(f.nstates)*2 > size || int64(f.nframes)*32 > size ||
		int64(f.Bins) > size {
		return nil, fmt.Errorf("slog: header counts exceed file size %d", size)
	}

	tt := make([]byte, nthreads*28)
	if _, err := io.ReadFull(rs, tt); err != nil {
		return nil, err
	}
	for i := 0; i < nthreads; i++ {
		b := tt[i*28:]
		f.Threads = append(f.Threads, interval.ThreadEntry{
			Task:   int32(binary.LittleEndian.Uint32(b[0:])),
			PID:    binary.LittleEndian.Uint64(b[4:]),
			SysTID: binary.LittleEndian.Uint64(b[12:]),
			Node:   binary.LittleEndian.Uint16(b[20:]),
			LTID:   binary.LittleEndian.Uint16(b[22:]),
			Type:   b[24],
		})
	}
	f.Markers = make(map[uint64]string, nmarkers)
	for i := 0; i < nmarkers; i++ {
		var mh [10]byte
		if _, err := io.ReadFull(rs, mh[:]); err != nil {
			return nil, err
		}
		id := binary.LittleEndian.Uint64(mh[0:])
		sl := int(binary.LittleEndian.Uint16(mh[8:]))
		s := make([]byte, sl)
		if _, err := io.ReadFull(rs, s); err != nil {
			return nil, err
		}
		f.Markers[id] = string(s)
	}

	// Tail: state table, preview, index.
	if _, err := rs.Seek(f.tailOff, io.SeekStart); err != nil {
		return nil, err
	}
	br := newByteReader(rs)
	for i := 0; i < f.nstates; i++ {
		ty, err := br.u16()
		if err != nil {
			return nil, err
		}
		nl, err := br.u16()
		if err != nil {
			return nil, err
		}
		if err := br.skip(int(nl)); err != nil {
			return nil, err
		}
		f.States = append(f.States, events.Type(ty))
	}
	p := &Preview{TStart: f.TStart, TEnd: f.TEnd, States: f.States}
	for si := 0; si < f.nstates; si++ {
		row := make([]clock.Time, f.Bins)
		for b := 0; b < f.Bins; b++ {
			v, err := br.u64()
			if err != nil {
				return nil, err
			}
			row[b] = clock.Time(v)
		}
		p.Dur = append(p.Dur, row)
		cnt, err := br.u64()
		if err != nil {
			return nil, err
		}
		p.Count = append(p.Count, int64(cnt))
	}
	f.Preview = p
	for i := 0; i < f.nframes; i++ {
		off, err := br.u64()
		if err != nil {
			return nil, err
		}
		bytes, err := br.u32()
		if err != nil {
			return nil, err
		}
		n, err := br.u32()
		if err != nil {
			return nil, err
		}
		st, err := br.u64()
		if err != nil {
			return nil, err
		}
		en, err := br.u64()
		if err != nil {
			return nil, err
		}
		f.Index = append(f.Index, FrameEntry{
			Offset: int64(off), Bytes: bytes, Records: n,
			Start: clock.Time(st), End: clock.Time(en),
		})
	}
	if c, ok := rs.(io.Closer); ok {
		f.closer = c
	}
	return f, nil
}

// Open opens an SLOG file on disk.
func Open(path string) (*File, error) {
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := Read(fp)
	if err != nil {
		fp.Close()
		return nil, err
	}
	return f, nil
}

// Close closes the underlying file if the File owns one.
func (f *File) Close() error {
	if f.closer != nil {
		c := f.closer
		f.closer = nil
		return c.Close()
	}
	return nil
}

// FrameAt returns the index of the first frame whose time range ends at
// or after t — the paper's "given a time, it is easy to locate the frame
// containing that point in time". ok is false past the end of the run.
func (f *File) FrameAt(t clock.Time) (int, bool) {
	lo, hi := 0, len(f.Index)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.Index[mid].End >= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(f.Index) {
		return 0, false
	}
	return lo, true
}

// ReadFrame loads and decodes frame i.
func (f *File) ReadFrame(i int) (*FrameData, error) {
	if i < 0 || i >= len(f.Index) {
		return nil, fmt.Errorf("slog: frame %d out of range [0,%d)", i, len(f.Index))
	}
	fe := f.Index[i]
	if fe.Offset < 0 || int64(fe.Bytes) > f.size || fe.Offset+int64(fe.Bytes) > f.size {
		return nil, fmt.Errorf("slog: frame %d at %d (%d bytes) exceeds file size %d", i, fe.Offset, fe.Bytes, f.size)
	}
	if _, err := f.r.Seek(fe.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	buf := make([]byte, fe.Bytes)
	if _, err := io.ReadFull(f.r, buf); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	fd := &FrameData{}
	for k := 0; k < n; k++ {
		if len(buf) < 3 {
			return nil, fmt.Errorf("slog: truncated frame record header")
		}
		kind := buf[0]
		pl := int(binary.LittleEndian.Uint16(buf[1:]))
		buf = buf[3:]
		if len(buf) < pl {
			return nil, fmt.Errorf("slog: truncated frame record payload")
		}
		payload := buf[:pl]
		buf = buf[pl:]
		switch kind {
		case kindInterval, kindPseudo:
			r, err := interval.DecodePayload(payload)
			if err != nil {
				return nil, err
			}
			if kind == kindInterval {
				fd.Intervals = append(fd.Intervals, r)
			} else {
				fd.Pseudo = append(fd.Pseudo, r)
			}
		case kindArrow, kindPseudoArrow:
			a, err := decodeArrow(payload)
			if err != nil {
				return nil, err
			}
			if kind == kindArrow {
				fd.Arrows = append(fd.Arrows, a)
			} else {
				fd.Crossing = append(fd.Crossing, a)
			}
		default:
			return nil, fmt.Errorf("slog: unknown record kind %d", kind)
		}
	}
	return fd, nil
}

// byteReader provides checked little-endian primitive reads.
type byteReader struct{ r io.Reader }

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) u16() (uint16, error) {
	var t [2]byte
	if _, err := io.ReadFull(b.r, t[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(t[:]), nil
}

func (b *byteReader) u32() (uint32, error) {
	var t [4]byte
	if _, err := io.ReadFull(b.r, t[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(t[:]), nil
}

func (b *byteReader) u64() (uint64, error) {
	var t [8]byte
	if _, err := io.ReadFull(b.r, t[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(t[:]), nil
}

func (b *byteReader) skip(n int) error {
	_, err := io.CopyN(io.Discard, b.r, int64(n))
	return err
}

func appendU16(b []byte, v uint16) []byte {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	return append(b, t[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}
