package shard

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/tracesvc"
	"tracefw/internal/xrand"
)

// writeTrace writes a small valid interval file with many frames and
// directories (512 B frames, 4 frames per directory), so the router has
// real dir boundaries to split at.
func writeTrace(t testing.TB, dir string, n int) string {
	t.Helper()
	rng := xrand.New(42)
	recs := make([]interval.Record, n)
	end := clock.Time(0)
	for i := range recs {
		end += clock.Time(rng.Int63n(int64(clock.Millisecond)))
		recs[i] = interval.Record{
			Type:   events.EvMPISend,
			Bebits: profile.Complete,
			Start:  end - clock.Time(rng.Int63n(int64(clock.Microsecond))),
			CPU:    uint16(i % 4),
			Node:   uint16(i % 2),
			Thread: uint16(i % 3),
			Extra:  []uint64{uint64(i), 7, 0, 0, 0, 0},
		}
		recs[i].Dura = end - recs[i].Start
	}
	hdr := interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Threads: []interval.ThreadEntry{
			{Task: 0, PID: 100, SysTID: 1, Node: 0, LTID: 0, Type: events.ThreadMPI},
			{Task: 1, PID: 101, SysTID: 2, Node: 1, LTID: 0, Type: events.ThreadMPI},
		},
	}
	path := filepath.Join(dir, "trace.ute")
	fl, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := interval.NewWriter(fl, hdr, interval.WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// fleet is one differential setup: a single-node reference service and
// a router over n backend services, all serving the same files.
type fleet struct {
	ref      *httptest.Server
	router   *Router
	routerTS *httptest.Server
	backends []*tracesvc.Service
	servers  []*httptest.Server
}

func newFleet(t testing.TB, n int, cfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	refSvc := tracesvc.New(tracesvc.Config{})
	refSvc.SetReady()
	f.ref = httptest.NewServer(refSvc.Handler())
	t.Cleanup(func() { f.ref.Close(); refSvc.Close() })

	for i := 0; i < n; i++ {
		svc := tracesvc.New(tracesvc.Config{})
		svc.SetReady()
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { ts.Close(); svc.Close() })
		f.backends = append(f.backends, svc)
		f.servers = append(f.servers, ts)
		cfg.Backends = append(cfg.Backends, Backend{Name: fmt.Sprintf("b%d", i), URL: ts.URL})
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.routerTS = httptest.NewServer(rt.Handler())
	t.Cleanup(func() { f.routerTS.Close(); rt.Close() })
	return f
}

type reply struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

func get(t testing.TB, base, pathQuery string) reply {
	t.Helper()
	resp, err := http.Get(base + pathQuery)
	if err != nil {
		t.Fatalf("GET %s: %v", pathQuery, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: %v", pathQuery, err)
	}
	return reply{resp.StatusCode, resp.Header.Get("Content-Type"), resp.Header.Get("Retry-After"), body}
}

func post(t testing.TB, base, pathQuery, body string) reply {
	t.Helper()
	resp, err := http.Post(base+pathQuery, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", pathQuery, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("POST %s: %v", pathQuery, err)
	}
	return reply{resp.StatusCode, resp.Header.Get("Content-Type"), resp.Header.Get("Retry-After"), b}
}

func compareReplies(t testing.TB, q string, ref, got reply) {
	t.Helper()
	if got.status != ref.status {
		t.Fatalf("%s: status %d, single-node %d\nrouter body: %s\nreference:   %s", q, got.status, ref.status, got.body, ref.body)
	}
	if got.contentType != ref.contentType {
		t.Fatalf("%s: content type %q, single-node %q", q, got.contentType, ref.contentType)
	}
	if got.retryAfter != ref.retryAfter {
		t.Fatalf("%s: Retry-After %q, single-node %q", q, got.retryAfter, ref.retryAfter)
	}
	if !bytes.Equal(got.body, ref.body) {
		t.Fatalf("%s: body diverges from single-node (%d vs %d bytes)\nrouter:    %.300s\nreference: %.300s", q, len(got.body), len(ref.body), got.body, ref.body)
	}
}

// differentialQueries covers every read endpoint — metadata, stats TSV
// and JSON, time-resolved tables, records in every paging/window/count
// shape, preview SVGs — plus the error paths, whose bodies must also
// match byte for byte.
func differentialQueries(id string) []string {
	p := "/v1/traces/" + id
	return []string{
		"/v1/traces",
		p,
		p + "/frames",
		p + "/stats",
		p + "/stats?bins=8",
		p + "/stats?window=0.05:0.2",
		p + "/stats?window=:0.1",
		p + "/stats?format=json&bins=4",
		p + "/stats?timeresolved=1&bins=6",
		p + "/stats?timeresolved=1&bins=6&window=0.1:",
		p + "/stats?engine=columnar&bins=4",
		p + "/stats?engine=scalar&bins=4",
		p + "/records",
		p + "/records?count=1",
		p + "/records?limit=25&offset=10",
		p + "/records?limit=7&offset=193",
		p + "/records?window=0.02:0.2",
		p + "/records?window=:0.1&count=1",
		p + "/records?window=0.3:&limit=5000",
		p + "/records?limit=100000",
		p + "/records?offset=99999",
		p + "/records?frames=0:5",
		p + "/records?frames=0:5&count=1",
		p + "/preview.svg",
		p + "/preview.svg?view=merged",
		p + "/preview.svg?view=preview&bins=8",
		p + "/preview.svg?view=preview&bins=8&window=0.05:0.25",
		p + "/preview.svg?window=0.1:0.3&connected=1",
		// Error paths: 404s and 400s must render the canonical bodies.
		"/v1/traces/t9",
		"/v1/traces/t9/records",
		p + "/records?limit=0",
		p + "/records?limit=junk",
		p + "/records?offset=-1",
		p + "/records?window=zzz",
		p + "/records?frames=9:1",
		p + "/records?frames=bogus",
		p + "/stats?engine=nope",
		p + "/stats?window=junk",
		p + "/preview.svg?view=bogus",
	}
}

// openBoth opens the same path on the reference and the router and
// checks the create responses already agree byte for byte.
func openBoth(t testing.TB, f *fleet, path string) string {
	t.Helper()
	body := fmt.Sprintf(`{"path":%q}`, path)
	ref := post(t, f.ref.URL, "/v1/traces", body)
	got := post(t, f.routerTS.URL, "/v1/traces", body)
	if ref.status != http.StatusCreated {
		t.Fatalf("reference open: %d %s", ref.status, ref.body)
	}
	compareReplies(t, "POST /v1/traces", ref, got)
	return "t1"
}

// TestRouterByteIdentity is the differential acceptance test: every
// read endpoint, routed over two backends with the trace split into
// frame-range segments, answers byte-identically to one single node —
// bodies, status codes, content types.
func TestRouterByteIdentity(t *testing.T) {
	path := writeTrace(t, t.TempDir(), 400)
	// SplitFrames 8 forces the segment split; VNodes kept small only to
	// shrink ring build time in the test.
	f := newFleet(t, 2, Config{SplitFrames: 8})
	id := openBoth(t, f, path)

	// The split actually happened — otherwise this test would silently
	// degrade to proxying everything whole.
	te := f.router.lookupTrace(id)
	if len(te.segs) < 2 {
		t.Fatalf("trace not split: %+v", te.segs)
	}

	for _, q := range differentialQueries(id) {
		compareReplies(t, q, get(t, f.ref.URL, q), get(t, f.routerTS.URL, q))
	}

	// Open-response parity for a second trace, then DELETE parity, then
	// ID-sequence parity on reopen.
	path2 := writeTrace(t, t.TempDir(), 60)
	body := fmt.Sprintf(`{"path":%q}`, path2)
	compareReplies(t, "open second", post(t, f.ref.URL, "/v1/traces", body), post(t, f.routerTS.URL, "/v1/traces", body))
	compareReplies(t, "list after second open", get(t, f.ref.URL, "/v1/traces"), get(t, f.routerTS.URL, "/v1/traces"))

	delReq := func(base string) reply {
		req, _ := http.NewRequest("DELETE", base+"/v1/traces/t2", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return reply{resp.StatusCode, resp.Header.Get("Content-Type"), resp.Header.Get("Retry-After"), b}
	}
	compareReplies(t, "DELETE t2", delReq(f.ref.URL), delReq(f.routerTS.URL))
	compareReplies(t, "GET closed t2", get(t, f.ref.URL, "/v1/traces/t2"), get(t, f.routerTS.URL, "/v1/traces/t2"))
	compareReplies(t, "reopen after close", post(t, f.ref.URL, "/v1/traces", body), post(t, f.routerTS.URL, "/v1/traces", body))
}

// TestRouterByteIdentityConcurrent replays the read queries from many
// goroutines at once — the -race proof that the scatter-gather merge
// and the shared counters are clean under concurrent clients.
func TestRouterByteIdentityConcurrent(t *testing.T) {
	path := writeTrace(t, t.TempDir(), 400)
	f := newFleet(t, 2, Config{SplitFrames: 8})
	id := openBoth(t, f, path)

	queries := differentialQueries(id)
	refs := make(map[string]reply, len(queries))
	for _, q := range queries {
		refs[q] = get(t, f.ref.URL, q)
	}

	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := xrand.New(uint64(c) + 99)
			for i := 0; i < 40; i++ {
				q := queries[rng.Intn(len(queries))]
				got := get(t, f.routerTS.URL, q)
				ref := refs[q]
				if got.status != ref.status || !bytes.Equal(got.body, ref.body) {
					t.Errorf("client %d: %s: diverged (status %d vs %d)", c, q, got.status, ref.status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestRouterFailover kills one backend mid-run: legs preferring it must
// transparently retry on the survivor (every backend holds the whole
// file) and keep returning byte-identical responses.
func TestRouterFailover(t *testing.T) {
	path := writeTrace(t, t.TempDir(), 400)
	f := newFleet(t, 2, Config{SplitFrames: 8})
	id := openBoth(t, f, path)

	queries := []string{
		"/v1/traces/" + id + "/records?limit=100000",
		"/v1/traces/" + id + "/records?count=1",
		"/v1/traces/" + id + "/records?window=0.02:0.3",
		"/v1/traces/" + id + "/stats?bins=8",
		"/v1/traces/" + id + "/preview.svg?view=preview&bins=8",
	}
	refs := make([]reply, len(queries))
	for i, q := range queries {
		refs[i] = get(t, f.ref.URL, q)
	}

	// Kill backend 0 the hard way: drop its listener and connections.
	f.servers[0].CloseClientConnections()
	f.servers[0].Close()

	for i, q := range queries {
		compareReplies(t, q+" (after crash)", refs[i], get(t, f.routerTS.URL, q))
	}
	if f.router.met.retries.Value() == 0 {
		t.Fatal("failover happened without a single recorded retry")
	}
}

// TestRouterCleanErrorOnTotalFailure: when no backend can answer a leg,
// the router returns one clean 502 — never a truncated or partial 200.
func TestRouterCleanErrorOnTotalFailure(t *testing.T) {
	path := writeTrace(t, t.TempDir(), 400)
	f := newFleet(t, 2, Config{SplitFrames: 8})
	id := openBoth(t, f, path)

	for _, ts := range f.servers {
		ts.CloseClientConnections()
		ts.Close()
	}
	got := get(t, f.routerTS.URL, "/v1/traces/"+id+"/records?limit=100000")
	if got.status != http.StatusBadGateway {
		t.Fatalf("total backend failure: %d %s, want 502", got.status, got.body)
	}
	if !strings.Contains(string(got.body), "router:") {
		t.Fatalf("502 body is not the router's clean error: %s", got.body)
	}
	got = get(t, f.routerTS.URL, "/v1/traces/"+id+"/stats?bins=4")
	if got.status != http.StatusBadGateway {
		t.Fatalf("affinity query after total failure: %d, want 502", got.status)
	}
}

// TestRouterHedge wires a deliberately slow primary: the hedge fires,
// the fast replica answers, the bytes still match the reference, and
// the hedge counter moves.
func TestRouterHedge(t *testing.T) {
	path := writeTrace(t, t.TempDir(), 120)

	refSvc := tracesvc.New(tracesvc.Config{})
	refSvc.SetReady()
	ref := httptest.NewServer(refSvc.Handler())
	defer func() { ref.Close(); refSvc.Close() }()

	var slowName atomic.Value // backend name to slow down
	slowName.Store("")
	mkBackend := func(name string) (*tracesvc.Service, *httptest.Server) {
		svc := tracesvc.New(tracesvc.Config{})
		svc.SetReady()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slowName.Load() == name && strings.HasPrefix(r.URL.Path, "/v1/traces/") {
				time.Sleep(300 * time.Millisecond)
			}
			svc.Handler().ServeHTTP(w, r)
		}))
		return svc, ts
	}
	s0, ts0 := mkBackend("b0")
	defer func() { ts0.Close(); s0.Close() }()
	s1, ts1 := mkBackend("b1")
	defer func() { ts1.Close(); s1.Close() }()

	rt, err := NewRouter(Config{
		Backends:    []Backend{{Name: "b0", URL: ts0.URL}, {Name: "b1", URL: ts1.URL}},
		SplitFrames: 1 << 30, // keep the trace whole: one owner, one hedge target
		HedgeAfter:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer func() { router.Close(); rt.Close() }()

	body := fmt.Sprintf(`{"path":%q}`, path)
	refOpen := post(t, ref.URL, "/v1/traces", body)
	gotOpen := post(t, router.URL, "/v1/traces", body)
	compareReplies(t, "open", refOpen, gotOpen)

	// Slow down whichever backend owns the trace, so the primary leg
	// stalls and the hedge must win.
	te := rt.lookupTrace("t1")
	slowName.Store(rt.backends[te.segs[0].owner].name)

	q := "/v1/traces/t1/records?limit=100000"
	refR := get(t, ref.URL, q)
	gotR := get(t, router.URL, q)
	compareReplies(t, q+" (hedged)", refR, gotR)
	if rt.met.hedges.Value() == 0 {
		t.Fatal("slow primary never triggered a hedge")
	}
}
