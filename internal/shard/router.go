package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tracefw/internal/clock"
	"tracefw/internal/par"
	"tracefw/internal/tracesvc"
)

// Backend names one utetraced instance the router can route to.
type Backend struct {
	Name string // metrics label ("b0", an address, …)
	URL  string // base URL, e.g. "http://127.0.0.1:7464"
}

// Config tunes the router; zero values select the defaults.
type Config struct {
	Backends []Backend
	// VNodes is the virtual-node count per backend on the hash ring
	// (default 64).
	VNodes int
	// SplitFrames is the frame count at which a single trace stops being
	// placed whole and is split into per-backend contiguous frame-range
	// segments at frame-directory boundaries (default 4096; traces below
	// it are owned by one backend chosen by the ring).
	SplitFrames int
	// MaxInflight bounds concurrent requests per backend (default 32);
	// excess legs queue on the router side instead of piling onto a
	// saturated backend.
	MaxInflight int
	// HedgeAfter, when positive, launches a duplicate leg on the next
	// candidate backend if the primary has not answered within it.
	// Safe because every backend holding a trace answers identically.
	HedgeAfter time.Duration
	// HealthInterval is the /readyz poll period (default 500ms).
	HealthInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.SplitFrames <= 0 {
		c.SplitFrames = 4096
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	return c
}

// segment is one contiguous frame-index range of a trace with its time
// bounds and preferred owner. Segments are routing assignments, not
// data partitions: the owner is where legs for the range go first (so
// its cache holds those frames), but any backend holding the trace can
// serve them.
type segment struct {
	lo, hi  int // frame range [lo, hi)
	startNs int64
	endNs   int64
	owner   int
}

// traceEntry is one trace the router has opened across the fleet.
type traceEntry struct {
	id       string // router-assigned ID ("t1", …)
	path     string
	info     tracesvc.TraceInfo // ID field already rewritten to the router's
	localIDs []string           // per backend index; "" = not open there
	segs     []segment
	nframes  int
}

type backendState struct {
	name string
	url  string
	sem  chan struct{}
	up   atomic.Bool
}

// Router is the front tier: it owns trace placement, scatter-gathers
// or affinity-routes each query, and merges partials so every response
// body is byte-identical to a single-node daemon's.
type Router struct {
	cfg      Config
	ring     *ring
	client   *http.Client
	met      *routerMetrics
	mux      *http.ServeMux
	backends []*backendState

	mu     sync.RWMutex
	traces map[string]*traceEntry
	order  []*traceEntry
	nextID uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter builds a router over the configured backends. Call
// CheckBackends (or Start, which polls) before routing traffic.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: no backends configured")
	}
	names := make([]string, len(cfg.Backends))
	rt := &Router{
		cfg:  cfg,
		ring: newRing(len(cfg.Backends), cfg.VNodes),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        len(cfg.Backends) * cfg.MaxInflight,
			MaxIdleConnsPerHost: cfg.MaxInflight,
			IdleConnTimeout:     90 * time.Second,
		}},
		mux:    http.NewServeMux(),
		traces: make(map[string]*traceEntry),
		stop:   make(chan struct{}),
	}
	for i, b := range cfg.Backends {
		names[i] = b.Name
		if names[i] == "" {
			names[i] = b.URL
		}
		bs := &backendState{name: names[i], url: b.URL, sem: make(chan struct{}, cfg.MaxInflight)}
		bs.up.Store(true) // optimistic until the first poll says otherwise
		rt.backends = append(rt.backends, bs)
	}
	rt.met = newRouterMetrics(names, rt.ring.size())

	rt.mux.HandleFunc("GET /v1/traces", rt.handleList)
	rt.mux.HandleFunc("POST /v1/traces", rt.handleOpen)
	rt.mux.HandleFunc("GET /v1/traces/{id}", rt.handleGet)
	rt.mux.HandleFunc("DELETE /v1/traces/{id}", rt.handleClose)
	rt.mux.HandleFunc("GET /v1/traces/{id}/frames", rt.handleFrames)
	rt.mux.HandleFunc("GET /v1/traces/{id}/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/traces/{id}/records", rt.handleRecords)
	rt.mux.HandleFunc("GET /v1/traces/{id}/preview.svg", rt.handlePreview)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	rt.mux.HandleFunc("GET /readyz", rt.handleReady)
	return rt, nil
}

// Handler returns the root handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start launches the background health poller.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(rt.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.CheckBackends(context.Background())
			}
		}
	}()
}

// Close stops the health poller and drops idle connections. It does not
// close traces on the backends — they outlive the router.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

// CheckBackends polls every backend's /readyz once, synchronously, and
// updates the routable flags. Returns the number of ready backends.
func (rt *Router) CheckBackends(ctx context.Context) int {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	ready := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, "GET", b.url+"/readyz", nil)
			if err != nil {
				b.up.Store(false)
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				b.up.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok := resp.StatusCode == http.StatusOK
			b.up.Store(ok)
			if ok {
				mu.Lock()
				ready++
				mu.Unlock()
			}
		}(b)
	}
	wg.Wait()
	return ready
}

func (rt *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	down := 0
	for _, b := range rt.backends {
		if !b.up.Load() {
			down++
		}
	}
	if down > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "%d/%d backends not ready\n", down, len(rt.backends))
		return
	}
	w.Write([]byte("ready\n"))
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	up := make([]bool, len(rt.backends))
	for i, b := range rt.backends {
		up[i] = b.up.Load()
	}
	var buf bytes.Buffer
	rt.met.writePrometheus(&buf, up)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// writeJSON marshals exactly like tracesvc's jsonResponse — indented,
// trailing newline — so rebuilt bodies match single-node bytes.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	w.Write(b)
}

// notFound renders the canonical tracesvc 404 body.
func notFound(w http.ResponseWriter, id string) {
	http.Error(w, fmt.Sprintf("no trace %q", id), http.StatusNotFound)
}

func (rt *Router) lookupTrace(id string) *traceEntry {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.traces[id]
}

// --- opening and placement ---------------------------------------------

// openError carries the status and body the open path should answer
// with — backend error bodies relay through it unchanged, so the
// router's open failures read exactly like a single node's.
type openError struct {
	status int
	msg    string
}

func (e *openError) Error() string { return e.msg }

func (rt *Router) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path string `json:"path"`
	}
	// Replicate tracesvc's parse errors byte for byte.
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if req.Path == "" {
		http.Error(w, "missing \"path\"", http.StatusBadRequest)
		return
	}
	te, oerr := rt.open(r.Context(), req.Path)
	if oerr != nil {
		http.Error(w, oerr.msg, oerr.status)
		return
	}
	writeJSON(w, http.StatusCreated, te.info)
}

// OpenTrace opens path across the fleet and returns the router's view
// of it — the programmatic face of POST /v1/traces, used by uterouter
// to preload its command-line traces.
func (rt *Router) OpenTrace(ctx context.Context, path string) (tracesvc.TraceInfo, error) {
	te, oerr := rt.open(ctx, path)
	if oerr != nil {
		return tracesvc.TraceInfo{}, oerr
	}
	return te.info, nil
}

// open places one trace: open on the ring owner, read its frame
// directory, replicate the open to every other backend (same shared
// file — the basis of failover and hedging), split into segments, and
// register under a router-assigned ID.
func (rt *Router) open(ctx context.Context, path string) (*traceEntry, *openError) {
	owner := rt.ring.lookup(path)

	// Open on the ring owner first; its error body (wrong path, bad
	// file) is exactly what a single node would have said, so relay it.
	body, _ := json.Marshal(struct {
		Path string `json:"path"`
	}{path})
	st, _, respBody, err := rt.doBackend(ctx, owner, "POST", "/v1/traces", body)
	if err != nil {
		return nil, &openError{http.StatusBadGateway, fmt.Sprintf("router: backend %s: %v", rt.backends[owner].name, err)}
	}
	if st != http.StatusCreated {
		return nil, &openError{st, string(bytes.TrimSuffix(respBody, []byte("\n")))}
	}
	var info tracesvc.TraceInfo
	if err := json.Unmarshal(respBody, &info); err != nil {
		return nil, &openError{http.StatusBadGateway, fmt.Sprintf("router: bad open response: %v", err)}
	}

	te := &traceEntry{
		path:     path,
		info:     info,
		localIDs: make([]string, len(rt.backends)),
		nframes:  info.Frames,
	}
	te.localIDs[owner] = info.ID

	// The frame-directory boundaries drive the segment split.
	var fl tracesvc.FrameList
	st, _, respBody, err = rt.doBackend(ctx, owner, "GET", "/v1/traces/"+info.ID+"/frames", nil)
	if err != nil || st != http.StatusOK || json.Unmarshal(respBody, &fl) != nil {
		return nil, &openError{http.StatusBadGateway, "router: cannot read frame directory from owner"}
	}

	for bi := range rt.backends {
		if bi == owner {
			continue
		}
		st, _, respBody, err := rt.doBackend(ctx, bi, "POST", "/v1/traces", body)
		if err != nil || st != http.StatusCreated {
			continue // placement degrades to fewer replicas
		}
		var bInfo tracesvc.TraceInfo
		if json.Unmarshal(respBody, &bInfo) == nil {
			te.localIDs[bi] = bInfo.ID
		}
	}
	te.segs = buildSegments(fl.Dirs, info, owner, len(rt.backends), rt.cfg.SplitFrames)

	rt.mu.Lock()
	rt.nextID++
	te.id = fmt.Sprintf("t%d", rt.nextID)
	te.info.ID = te.id
	rt.traces[te.id] = te
	rt.order = append(rt.order, te)
	rt.mu.Unlock()
	return te, nil
}

// buildSegments splits a trace's frame list into contiguous segments at
// frame-directory boundaries, balanced by frame count, one per backend
// — or a single whole-trace segment when the trace is small enough that
// splitting would only shred its cache locality.
func buildSegments(dirs []tracesvc.DirInfo, info tracesvc.TraceInfo, owner, nBackends, splitFrames int) []segment {
	whole := segment{lo: 0, hi: info.Frames, startNs: info.StartNs, endNs: info.EndNs, owner: owner}
	if nBackends == 1 || info.Frames < splitFrames || len(dirs) < 2 {
		return []segment{whole}
	}
	nseg := nBackends
	if nseg > len(dirs) {
		nseg = len(dirs)
	}
	// Greedy fill: cut at the dir boundary that first reaches the fair
	// share of the remaining frames.
	segs := make([]segment, 0, nseg)
	di := 0
	framesLeft := info.Frames
	for s := 0; s < nseg; s++ {
		dirsLeft := len(dirs) - di
		segsLeft := nseg - s
		target := framesLeft / segsLeft
		seg := segment{lo: dirs[di].FirstFrame, startNs: dirs[di].StartNs, endNs: dirs[di].EndNs, owner: (owner + s) % nBackends}
		take := 0
		n := 0
		for di < len(dirs) {
			// Always leave at least one dir per remaining segment.
			if take > 0 && (n >= target || dirsLeft-take == segsLeft-1) {
				break
			}
			d := dirs[di]
			n += d.Frames
			if d.StartNs < seg.startNs {
				seg.startNs = d.StartNs
			}
			if d.EndNs > seg.endNs {
				seg.endNs = d.EndNs
			}
			seg.hi = d.FirstFrame + d.Frames
			di++
			take++
		}
		framesLeft -= n
		segs = append(segs, seg)
	}
	segs[len(segs)-1].hi = info.Frames
	return segs
}

func (rt *Router) handleList(w http.ResponseWriter, _ *http.Request) {
	rt.mu.RLock()
	infos := make([]tracesvc.TraceInfo, len(rt.order))
	for i, te := range rt.order {
		infos[i] = te.info
	}
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, tracesvc.TraceList{Traces: infos})
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	te := rt.lookupTrace(r.PathValue("id"))
	if te == nil {
		notFound(w, r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, te.info)
}

func (rt *Router) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	te := rt.traces[id]
	if te != nil {
		delete(rt.traces, id)
		for i, o := range rt.order {
			if o == te {
				rt.order = append(rt.order[:i], rt.order[i+1:]...)
				break
			}
		}
	}
	rt.mu.Unlock()
	if te == nil {
		notFound(w, id)
		return
	}
	for bi, lid := range te.localIDs {
		if lid == "" {
			continue
		}
		rt.doBackend(r.Context(), bi, "DELETE", "/v1/traces/"+lid, nil)
	}
	// Match the single-node wrapper's empty-body headers exactly.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", "0")
	w.WriteHeader(http.StatusNoContent)
}

// --- backend I/O --------------------------------------------------------

// doBackend performs one request against one backend under its
// in-flight limit. A non-2xx status is a response, not an error.
func (rt *Router) doBackend(ctx context.Context, bi int, method, pathQuery string, body []byte) (status int, header http.Header, respBody []byte, err error) {
	b := rt.backends[bi]
	select {
	case b.sem <- struct{}{}:
		defer func() { <-b.sem }()
	case <-ctx.Done():
		return 0, nil, nil, ctx.Err()
	}
	t0 := time.Now()
	rt.met.requests[bi].Add(1)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+pathQuery, rd)
	if err != nil {
		rt.met.errors[bi].Add(1)
		return 0, nil, nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.met.errors[bi].Add(1)
		rt.met.latency[bi].Observe(time.Since(t0))
		return 0, nil, nil, err
	}
	respBody, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	rt.met.latency[bi].Observe(time.Since(t0))
	if err != nil {
		rt.met.errors[bi].Add(1)
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// candidates orders the backends that hold te for one leg: preferred
// owner first, then the rest in ring order, ready backends before
// not-ready ones (a down backend is still a last resort — the poll may
// be stale).
func (rt *Router) candidates(te *traceEntry, pref int) []int {
	n := len(rt.backends)
	ordered := make([]int, 0, n)
	for k := 0; k < n; k++ {
		bi := (pref + k) % n
		if te.localIDs[bi] != "" {
			ordered = append(ordered, bi)
		}
	}
	sort.SliceStable(ordered, func(a, b int) bool {
		return rt.backends[ordered[a]].up.Load() && !rt.backends[ordered[b]].up.Load()
	})
	return ordered
}

// fetch runs one logical leg with retry-on-transport-error across the
// candidate backends and optional hedging. mkPath renders the
// backend-specific path (local trace IDs differ per backend).
func (rt *Router) fetch(ctx context.Context, cands []int, mkPath func(bi int) string) (status int, header http.Header, body []byte, err error) {
	if len(cands) == 0 {
		return 0, nil, nil, fmt.Errorf("no backend holds this trace")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type out struct {
		status int
		header http.Header
		body   []byte
		err    error
	}
	resCh := make(chan out, len(cands))
	launch := func(bi int) {
		go func() {
			st, h, b, err := rt.doBackend(ctx, bi, "GET", mkPath(bi), nil)
			resCh <- out{st, h, b, err}
		}()
	}
	launch(cands[0])
	next, outstanding := 1, 1

	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 && len(cands) > 1 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case o := <-resCh:
			outstanding--
			if o.err == nil {
				return o.status, o.header, o.body, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if next < len(cands) && ctx.Err() == nil {
				rt.met.retries.Add(1)
				launch(cands[next])
				next++
				outstanding++
			} else if outstanding == 0 {
				return 0, nil, nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				rt.met.hedges.Add(1)
				launch(cands[next])
				next++
				outstanding++
			}
		case <-ctx.Done():
			return 0, nil, nil, ctx.Err()
		}
	}
}

// proxy routes the request whole to one preferred backend and relays
// status, content type, and body untouched — the affinity path for
// queries that must not be decomposed.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, te *traceEntry, pref int) {
	rt.met.affinity.Add(1)
	localPath := func(bi int) string {
		p := "/v1/traces/" + te.localIDs[bi] + r.URL.Path[len("/v1/traces/"+te.id):]
		if r.URL.RawQuery != "" {
			p += "?" + r.URL.RawQuery
		}
		return p
	}
	st, h, body, err := rt.fetch(r.Context(), rt.candidates(te, pref), localPath)
	if err != nil {
		http.Error(w, fmt.Sprintf("router: backend query failed: %v", err), http.StatusBadGateway)
		return
	}
	if ct := h.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := h.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(st)
	w.Write(body)
}

// windowOwner picks the segment whose time range contains the window
// midpoint — deterministic, so repeated pans over the same region keep
// hitting the same backend's warm cache.
func (rt *Router) windowOwner(te *traceEntry, rawWindow string) int {
	if rawWindow == "" || len(te.segs) == 1 {
		return te.segs[0].owner
	}
	lo, hi, err := clock.ParseWindow(rawWindow)
	if err != nil {
		// Let the segment-0 owner render the canonical 400 body.
		return te.segs[0].owner
	}
	l, h := int64(lo), int64(hi)
	if l == math.MinInt64 {
		l = te.info.StartNs
	}
	if h == math.MaxInt64 {
		h = te.info.EndNs
	}
	mid := l + (h-l)/2
	for _, s := range te.segs {
		if mid >= s.startNs && mid <= s.endNs {
			return s.owner
		}
	}
	for _, s := range te.segs {
		if mid < s.endNs {
			return s.owner
		}
	}
	return te.segs[len(te.segs)-1].owner
}

func (rt *Router) handleFrames(w http.ResponseWriter, r *http.Request) {
	te := rt.lookupTrace(r.PathValue("id"))
	if te == nil {
		notFound(w, r.PathValue("id"))
		return
	}
	rt.proxy(w, r, te, te.segs[0].owner)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	te := rt.lookupTrace(r.PathValue("id"))
	if te == nil {
		notFound(w, r.PathValue("id"))
		return
	}
	rt.proxy(w, r, te, rt.windowOwner(te, r.URL.Query().Get("window")))
}

func (rt *Router) handlePreview(w http.ResponseWriter, r *http.Request) {
	te := rt.lookupTrace(r.PathValue("id"))
	if te == nil {
		notFound(w, r.PathValue("id"))
		return
	}
	rt.proxy(w, r, te, rt.windowOwner(te, r.URL.Query().Get("window")))
}

// --- records scatter-gather --------------------------------------------

// handleRecords is the decomposable query: per-segment legs run in
// parallel, each restricted to its own frame range via ?frames=lo:hi,
// and the partial pages merge in segment (frame) order through
// par.OrderedReducer — integer totals and record concatenation only, so
// the merged body is byte-identical to a single node's. Any leg
// failure aborts the merge and surfaces a clean 502; the router never
// returns a silently truncated page.
func (rt *Router) handleRecords(w http.ResponseWriter, r *http.Request) {
	te := rt.lookupTrace(r.PathValue("id"))
	if te == nil {
		notFound(w, r.PathValue("id"))
		return
	}
	q := r.URL.Query()
	if len(te.segs) == 1 || q.Get("frames") != "" {
		// Single segment, or the caller already targeted a frame range:
		// route whole.
		rt.proxy(w, r, te, te.segs[0].owner)
		return
	}
	limit, offset := 1000, 0
	var err error
	if ls := q.Get("limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil || limit < 1 {
			rt.proxy(w, r, te, te.segs[0].owner) // canonical 400
			return
		}
	}
	if os := q.Get("offset"); os != "" {
		if offset, err = strconv.Atoi(os); err != nil || offset < 0 {
			rt.proxy(w, r, te, te.segs[0].owner)
			return
		}
	}
	rawWindow := q.Get("window")
	var wlo, whi int64
	windowed := rawWindow != ""
	if windowed {
		l, h, err := clock.ParseWindow(rawWindow)
		if err != nil {
			rt.proxy(w, r, te, te.segs[0].owner)
			return
		}
		wlo, whi = int64(l), int64(h)
	}
	countOnly := q.Get("count") == "1"

	// Segments whose time bounds miss the window cannot contribute: the
	// handler's own frame-level skip would reject every frame in them.
	legs := make([]segment, 0, len(te.segs))
	for _, s := range te.segs {
		if windowed && (s.endNs < wlo || s.startNs > whi) {
			continue
		}
		legs = append(legs, s)
	}
	rt.met.scatter.Add(1)

	// Each leg asks for the first offset+limit matching records of its
	// range: a record's index within its segment is never greater than
	// its global index, so the global page [offset, offset+limit) is
	// fully contained in the concatenation of the per-leg prefixes.
	legQuery := func(s segment) string {
		v := url.Values{}
		v.Set("frames", fmt.Sprintf("%d:%d", s.lo, s.hi))
		if windowed {
			v.Set("window", rawWindow)
		}
		if countOnly {
			v.Set("count", "1")
		} else {
			v.Set("offset", "0")
			v.Set("limit", strconv.Itoa(offset+limit))
		}
		return v.Encode()
	}

	total := 0
	skip, need := offset, limit
	merged := []tracesvc.RecordJSON{}
	red := par.NewOrderedReducer()
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		legErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if legErr == nil {
			legErr = err
		}
		errMu.Unlock()
		red.Abort()
	}
	for i, s := range legs {
		wg.Add(1)
		go func(i int, s segment) {
			defer wg.Done()
			qs := legQuery(s)
			st, _, body, err := rt.fetch(r.Context(), rt.candidates(te, s.owner), func(bi int) string {
				return "/v1/traces/" + te.localIDs[bi] + "/records?" + qs
			})
			if err != nil {
				fail(fmt.Errorf("segment %d:%d: %v", s.lo, s.hi, err))
				return
			}
			if st != http.StatusOK {
				fail(fmt.Errorf("segment %d:%d: backend answered %d: %s", s.lo, s.hi, st, bytes.TrimSpace(body)))
				return
			}
			if countOnly {
				var c tracesvc.RecordCount
				if err := json.Unmarshal(body, &c); err != nil {
					fail(fmt.Errorf("segment %d:%d: %v", s.lo, s.hi, err))
					return
				}
				red.Reduce(i, func() error {
					total += c.Count
					return nil
				})
				return
			}
			var page tracesvc.RecordsPage
			if err := json.Unmarshal(body, &page); err != nil {
				fail(fmt.Errorf("segment %d:%d: %v", s.lo, s.hi, err))
				return
			}
			red.Reduce(i, func() error {
				total += page.Total
				recs := page.Records
				if skip >= len(recs) {
					skip -= len(recs)
					return nil
				}
				recs = recs[skip:]
				skip = 0
				if len(recs) > need {
					recs = recs[:need]
				}
				merged = append(merged, recs...)
				need -= len(recs)
				return nil
			})
		}(i, s)
	}
	wg.Wait()
	errMu.Lock()
	err = legErr
	errMu.Unlock()
	if err != nil {
		// Clean failure semantics: a lost leg is a lost query. Partial
		// pages are never returned — a truncated "200" would be
		// indistinguishable from a short trace.
		http.Error(w, fmt.Sprintf("router: scatter-gather failed: %v", err), http.StatusBadGateway)
		return
	}
	if countOnly {
		writeJSON(w, http.StatusOK, tracesvc.RecordCount{Count: total})
		return
	}
	writeJSON(w, http.StatusOK, tracesvc.RecordsPage{Total: total, Offset: offset, Records: merged})
}
