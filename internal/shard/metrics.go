package shard

import (
	"fmt"
	"io"

	"tracefw/internal/promtext"
)

// routerMetrics is everything the router's /metrics exposes, rendered
// with the same hand-rolled kit tracesvc uses (internal/promtext) so a
// fleet scrape sees one consistent text format.
type routerMetrics struct {
	// per-backend slices are sized at construction and never resized, so
	// the request path indexes them without a lock.
	requests []promtext.Counter
	errors   []promtext.Counter
	latency  []promtext.Histogram
	hedges   promtext.Counter
	retries  promtext.Counter
	scatter  promtext.Counter
	affinity promtext.Counter
	ringSize int
	names    []string
}

func newRouterMetrics(names []string, ringSize int) *routerMetrics {
	return &routerMetrics{
		requests: make([]promtext.Counter, len(names)),
		errors:   make([]promtext.Counter, len(names)),
		latency:  make([]promtext.Histogram, len(names)),
		ringSize: ringSize,
		names:    names,
	}
}

// writePrometheus renders the router metrics in Prometheus text
// exposition format, families in a fixed order so scrapes are diffable.
func (m *routerMetrics) writePrometheus(w io.Writer, up []bool) {
	promtext.Header(w, "uterouter_ring_points", "gauge", "Consistent-hash ring points (backends x virtual nodes).")
	fmt.Fprintf(w, "uterouter_ring_points %d\n", m.ringSize)
	promtext.Header(w, "uterouter_backend_up", "gauge", "Backend readiness as of the last health poll (1 = routable).")
	for i, name := range m.names {
		v := 0
		if up[i] {
			v = 1
		}
		fmt.Fprintf(w, "uterouter_backend_up{backend=%q} %d\n", name, v)
	}
	promtext.Header(w, "uterouter_backend_requests_total", "counter", "Requests sent to each backend (scatter legs, proxied queries, opens).")
	for i, name := range m.names {
		fmt.Fprintf(w, "uterouter_backend_requests_total{backend=%q} %d\n", name, m.requests[i].Value())
	}
	promtext.Header(w, "uterouter_backend_errors_total", "counter", "Transport failures talking to each backend (HTTP error statuses are responses, not errors).")
	for i, name := range m.names {
		fmt.Fprintf(w, "uterouter_backend_errors_total{backend=%q} %d\n", name, m.errors[i].Value())
	}
	promtext.Header(w, "uterouter_backend_seconds", "histogram", "Backend request latency as observed by the router, by backend.")
	for i, name := range m.names {
		m.latency[i].WriteBuckets(w, "uterouter_backend_seconds", fmt.Sprintf("backend=%q", name))
	}
	promtext.Header(w, "uterouter_scatter_queries_total", "counter", "Queries answered by scatter-gathering segment legs and merging in frame order.")
	fmt.Fprintf(w, "uterouter_scatter_queries_total %d\n", m.scatter.Value())
	promtext.Header(w, "uterouter_affinity_queries_total", "counter", "Queries routed whole to one deterministic segment owner (aggregations, whose float folds must not be reassociated).")
	fmt.Fprintf(w, "uterouter_affinity_queries_total %d\n", m.affinity.Value())
	promtext.Header(w, "uterouter_hedges_total", "counter", "Duplicate legs launched because the primary exceeded the hedge threshold.")
	fmt.Fprintf(w, "uterouter_hedges_total %d\n", m.hedges.Value())
	promtext.Header(w, "uterouter_retries_total", "counter", "Legs re-sent to another backend after a transport failure.")
	fmt.Fprintf(w, "uterouter_retries_total %d\n", m.retries.Value())
}
