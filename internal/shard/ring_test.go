package shard

import (
	"fmt"
	"testing"

	"tracefw/internal/tracesvc"
)

// TestRingDeterministicAndBalanced pins the two placement properties
// the router relies on: two rings built from the same backend count
// agree on every key, and virtual nodes spread keys roughly evenly.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a := newRing(4, 64)
	b := newRing(4, 64)
	counts := make([]int, 4)
	const keys = 4000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("/traces/run-%d.ute", i)
		if a.lookup(k) != b.lookup(k) {
			t.Fatalf("rings disagree on %q", k)
		}
		counts[a.lookup(k)]++
	}
	for i, c := range counts {
		if c < keys/4/3 || c > keys*3/4 {
			t.Fatalf("backend %d owns %d of %d keys — ring badly skewed: %v", i, c, keys, counts)
		}
	}
	if a.size() != 4*64 {
		t.Fatalf("ring size %d, want 256", a.size())
	}
}

// TestRingStability: growing the fleet by one backend must move only a
// minority of keys — the consistent-hashing property that makes scale-up
// cheap (only the moved traces go cold).
func TestRingStability(t *testing.T) {
	small := newRing(3, 64)
	big := newRing(4, 64)
	const keys = 4000
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("trace-%d", i)
		from, to := small.lookup(k), big.lookup(k)
		if from != to {
			if to != 3 {
				t.Fatalf("key %q moved between old backends (%d -> %d)", k, from, to)
			}
			moved++
		}
	}
	// Fair share for the new backend is 1/4; allow generous slack.
	if moved > keys/2 {
		t.Fatalf("adding one backend moved %d/%d keys", moved, keys)
	}
	if moved == 0 {
		t.Fatal("new backend received no keys")
	}
}

// TestBuildSegments checks the dir-boundary splitter: segments tile the
// frame list, cut only at directory boundaries, and land on distinct
// backends; small traces stay whole.
func TestBuildSegments(t *testing.T) {
	mkDirs := func(sizes ...int) []tracesvc.DirInfo {
		dirs := make([]tracesvc.DirInfo, len(sizes))
		first := 0
		for i, n := range sizes {
			dirs[i] = tracesvc.DirInfo{
				FirstFrame: first, Frames: n,
				StartNs: int64(first) * 100, EndNs: int64(first+n) * 100,
			}
			first += n
		}
		return dirs
	}
	total := func(dirs []tracesvc.DirInfo) int {
		last := dirs[len(dirs)-1]
		return last.FirstFrame + last.Frames
	}

	for _, tc := range []struct {
		sizes    []int
		backends int
		wantSegs int
	}{
		{[]int{4, 4, 4, 4, 4, 4, 4, 2}, 2, 2},
		{[]int{4, 4, 4, 4, 4, 4, 4, 2}, 3, 3},
		{[]int{10, 1, 1, 1}, 4, 4},
		{[]int{5, 5}, 8, 2}, // never more segments than dirs
	} {
		dirs := mkDirs(tc.sizes...)
		info := tracesvc.TraceInfo{Frames: total(dirs), StartNs: 0, EndNs: int64(total(dirs)) * 100}
		segs := buildSegments(dirs, info, 0, tc.backends, 1)
		if len(segs) != tc.wantSegs {
			t.Fatalf("%v x %d backends: %d segments, want %d: %+v", tc.sizes, tc.backends, len(segs), tc.wantSegs, segs)
		}
		// Tiling: contiguous, starts at 0, ends at the frame count.
		next := 0
		owners := map[int]bool{}
		for _, s := range segs {
			if s.lo != next || s.hi <= s.lo {
				t.Fatalf("%v: segments do not tile: %+v", tc.sizes, segs)
			}
			next = s.hi
			if owners[s.owner] {
				t.Fatalf("%v: owner %d assigned twice: %+v", tc.sizes, s.owner, segs)
			}
			owners[s.owner] = true
			// Cuts only at dir boundaries.
			okLo, okHi := false, false
			for _, d := range dirs {
				if d.FirstFrame == s.lo {
					okLo = true
				}
				if d.FirstFrame+d.Frames == s.hi {
					okHi = true
				}
			}
			if !okLo || !okHi {
				t.Fatalf("%v: segment %+v cuts inside a directory", tc.sizes, s)
			}
		}
		if next != info.Frames {
			t.Fatalf("%v: segments cover %d of %d frames", tc.sizes, next, info.Frames)
		}
	}

	// Below the split threshold: one whole-trace segment on the ring owner.
	dirs := mkDirs(4, 4, 4)
	info := tracesvc.TraceInfo{Frames: 12, EndNs: 1200}
	segs := buildSegments(dirs, info, 1, 4, 100)
	if len(segs) != 1 || segs[0].lo != 0 || segs[0].hi != 12 || segs[0].owner != 1 {
		t.Fatalf("small trace split: %+v", segs)
	}
}
