// Package shard is the horizontal serving tier: a consistent-hash
// router that spreads traces — and, for a single huge trace, contiguous
// frame ranges split at frame-directory boundaries — across a fleet of
// utetraced backends, scatter-gathers the decomposable queries over
// pooled keep-alive connections, and merges partial responses in frame
// order so every body it returns is byte-identical to what one
// single-node daemon would have produced.
//
// All backends share a filesystem with the router and open the same
// trace files, so a "segment" is a routing and cache-affinity
// assignment, not a data partition: any backend holding a trace can
// answer any query over it authoritatively. That is what makes
// failover and hedging safe — a leg re-sent to a different backend
// returns the same bytes.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes. Keys and nodes
// hash onto the same 64-bit circle; a key belongs to the first node
// point at or after it (wrapping). Virtual nodes smooth the split:
// with ~100 points per backend the largest arc is within a few percent
// of fair share, and adding a backend moves only the keys that land on
// its new arcs.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // backend index
}

// newRing builds a ring over n backends with vnodes points each.
// Backend identity is positional: the ring hashes "i#v" labels, so two
// routers configured with the same backend list agree on placement.
func newRing(n, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{points: make([]ringPoint, 0, n*vnodes)}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%d#%d", i, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// lookup maps a key to its owning backend index.
func (r *ring) lookup(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// size returns the number of ring points (backends × vnodes).
func (r *ring) size() int { return len(r.points) }

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
