// Package cluster assembles the simulated SP machine: the sched
// discrete-event scheduler for the SMP nodes, one drifting local clock
// per node, one trace facility (raw trace file) per node, and the
// periodic global-clock sampling that the paper's framework uses to
// solve the clock-synchronization problem. All trace records carry
// *local* timestamps; global clock records carry (global, local) pairs.
//
// In the paper the clock pairs are collected by a thread per node, which
// can be de-scheduled between the two clock reads and record an outlier
// pair. Here sampling runs as a simulator event (so it cannot interfere
// with workload scheduling) and the de-schedule failure mode is injected
// explicitly with Config.OutlierProb, preserving the phenomenon the
// paper's Summary discusses without tying the experiment to scheduler
// noise.
package cluster

import (
	"fmt"
	"io"

	"tracefw/internal/clock"
	"tracefw/internal/sched"
	"tracefw/internal/trace"
	"tracefw/internal/xrand"
)

// Config describes the simulated machine and its tracing setup.
type Config struct {
	Nodes       int
	CPUsPerNode int
	Quantum     clock.Time     // scheduler time slice (0 = 10ms)
	Affinity    sched.Affinity // CPU placement rule of the default policy

	// Policy is the dispatch policy; nil selects sched.FIFO(Affinity),
	// the historical behavior. Oversubscribing policies expose more
	// dispatch slots than physical CPUs, and the node's trace facility
	// is sized to the slot count so every dispatch record has a lane.
	Policy sched.Policy

	// Trace options; Prefix is used only by file-backed machines.
	TraceOpts trace.Options

	// ClockInterval is the period of global-clock record sampling
	// (0 = 1s, the paper collects pairs "periodically").
	ClockInterval clock.Time

	// Drifts holds per-node fractional clock drifts; if shorter than
	// Nodes, missing entries are derived pseudo-randomly from Seed in
	// ±1e-4 (the magnitude implied by the paper's Figure 1).
	Drifts []float64

	// Offsets holds per-node clock offsets; missing entries are derived
	// from Seed within ±1s.
	Offsets []clock.Time

	// ClockJitterNS is read noise on clock-pair sampling (not on trace
	// timestamps, which must stay monotone per node).
	ClockJitterNS float64

	// Granularity quantizes local timestamps (0 = 100ns).
	Granularity clock.Time

	// OutlierProb is the probability that a clock-pair sample suffers a
	// simulated de-schedule between the global and local reads.
	OutlierProb float64

	// OutlierDelay is the extra delay of an outlier sample (0 = 5ms).
	OutlierDelay clock.Time

	// Seed drives every derived random quantity.
	Seed uint64
}

func (c *Config) fill() {
	if c.ClockInterval <= 0 {
		c.ClockInterval = clock.Second
	}
	if c.Granularity <= 0 {
		c.Granularity = 100 * clock.Nanosecond
	}
	if c.OutlierDelay <= 0 {
		c.OutlierDelay = 5 * clock.Millisecond
	}
	rng := xrand.New(c.Seed ^ 0xc10c)
	for len(c.Drifts) < c.Nodes {
		c.Drifts = append(c.Drifts, (rng.Float64()-0.5)*2e-4)
	}
	for len(c.Offsets) < c.Nodes {
		c.Offsets = append(c.Offsets, clock.Time(rng.Int63n(int64(2*clock.Second)))-clock.Second)
	}
}

// Machine is the assembled simulated system.
type Machine struct {
	Sim        *sched.Sim
	Clocks     []*clock.Local
	Facilities []*trace.Facility

	cfg    Config
	rng    *xrand.Rand
	active int // workload threads still running
}

// Option configures machine construction, mirroring the interval.Open
// options style: a sweep cell is an option list, and two cells diff as
// the options that differ.
type Option func(*Config)

// FromConfig replaces the whole configuration — the escape hatch for
// callers that already hold a Config. Options applied after it refine
// that base.
func FromConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// WithNodes sets the node count.
func WithNodes(n int) Option { return func(c *Config) { c.Nodes = n } }

// WithCPUs sets the physical CPUs per node.
func WithCPUs(n int) Option { return func(c *Config) { c.CPUsPerNode = n } }

// WithQuantum sets the scheduler time slice.
func WithQuantum(q clock.Time) Option { return func(c *Config) { c.Quantum = q } }

// WithAffinity sets the default policy's CPU placement rule.
func WithAffinity(a sched.Affinity) Option { return func(c *Config) { c.Affinity = a } }

// WithPolicy sets the dispatch policy (nil = the default FIFO).
func WithPolicy(p sched.Policy) Option { return func(c *Config) { c.Policy = p } }

// WithTraceOpts sets the trace facility options.
func WithTraceOpts(o trace.Options) Option { return func(c *Config) { c.TraceOpts = o } }

// WithClockInterval sets the global-clock sampling period.
func WithClockInterval(d clock.Time) Option { return func(c *Config) { c.ClockInterval = d } }

// WithDrifts sets explicit per-node clock drifts.
func WithDrifts(d []float64) Option { return func(c *Config) { c.Drifts = d } }

// WithOffsets sets explicit per-node clock offsets.
func WithOffsets(o []clock.Time) Option { return func(c *Config) { c.Offsets = o } }

// WithClockJitter sets read noise (ns) on clock-pair sampling.
func WithClockJitter(ns float64) Option { return func(c *Config) { c.ClockJitterNS = ns } }

// WithGranularity sets the local-timestamp quantization.
func WithGranularity(g clock.Time) Option { return func(c *Config) { c.Granularity = g } }

// WithOutliers sets the clock-pair de-schedule injection (probability
// and extra delay; delay 0 keeps the 5ms default).
func WithOutliers(prob float64, delay clock.Time) Option {
	return func(c *Config) { c.OutlierProb, c.OutlierDelay = prob, delay }
}

// WithSeed sets the seed for every derived random quantity.
func WithSeed(s uint64) Option { return func(c *Config) { c.Seed = s } }

// New builds a machine whose trace facilities write to the given
// writers, one per node (for tests and in-memory pipelines).
func New(writers []io.Writer, opts ...Option) (*Machine, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return build(cfg, writers)
}

func build(cfg Config, writers []io.Writer) (*Machine, error) {
	cfg.fill()
	if len(writers) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d writers for %d nodes", len(writers), cfg.Nodes)
	}
	m := &Machine{cfg: cfg, rng: xrand.New(cfg.Seed ^ 0xfacade)}
	m.Sim = sched.New(sched.Config{
		Nodes: cfg.Nodes, CPUsPerNode: cfg.CPUsPerNode,
		Quantum: cfg.Quantum, Affinity: cfg.Affinity, Policy: cfg.Policy,
	}, m)
	for n := 0; n < cfg.Nodes; n++ {
		m.Clocks = append(m.Clocks, clock.NewLocal(cfg.Offsets[n], cfg.Drifts[n], cfg.ClockJitterNS, 1, cfg.Seed+uint64(n)))
		f, err := trace.NewFacility(cfg.TraceOpts, n, m.Sim.CPUs(n), writers[n])
		if err != nil {
			return nil, err
		}
		m.Facilities = append(m.Facilities, f)
	}
	return m, nil
}

// NewFiles builds a machine writing raw trace files named
// TraceOpts.Prefix.<node>.
func NewFiles(opts ...Option) (*Machine, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.fill()
	writers := make([]io.Writer, cfg.Nodes)
	files := make([]io.Closer, 0, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		fp, err := openCreate(cfg.TraceOpts.FileName(n))
		if err != nil {
			for _, c := range files {
				c.Close()
			}
			return nil, err
		}
		writers[n] = fp
		files = append(files, fp)
	}
	return build(cfg, writers)
}

// Config returns the (filled-in) machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// LocalTime returns node's local-clock timestamp for the current virtual
// time, quantized but monotone (no jitter), as the trace facility
// stamps records.
func (m *Machine) LocalTime(node int) clock.Time {
	v := m.Clocks[node].ValueAt(m.Sim.Now())
	g := m.cfg.Granularity
	if g > 1 {
		v -= v % g
	}
	return v
}

// OnDispatch implements sched.Listener by cutting a dispatch record.
func (m *Machine) OnDispatch(node int, tid int32, cpu int, _ clock.Time) {
	m.Facilities[node].CutDispatch(tid, m.LocalTime(node), cpu)
}

// OnUndispatch implements sched.Listener by cutting an undispatch record.
func (m *Machine) OnUndispatch(node int, tid int32, cpu int, reason sched.UndispatchReason, _ clock.Time) {
	m.Facilities[node].CutUndispatch(tid, m.LocalTime(node), cpu, int(reason))
}

// OnThreadStart implements sched.Listener (thread-info records are cut
// by SpawnTraced, which knows the task binding; nothing to do here).
func (m *Machine) OnThreadStart(int, int32, clock.Time) {}

// Cut stamps rec with node's current local time and records it.
func (m *Machine) Cut(node int, rec *trace.Record) {
	rec.Time = m.LocalTime(node)
	m.Facilities[node].Cut(rec)
}

// SpawnTraced creates a workload thread on node bound to MPI task (use
// task -1 for non-MPI threads), cuts its thread-info record, and tracks
// it for clock-sampler lifetime. threadType is one of the events.Thread*
// categories.
func (m *Machine) SpawnTraced(node int, task int32, threadType int, fn func(*sched.Thread)) *sched.Thread {
	m.active++
	t := m.Sim.Spawn(node, func(th *sched.Thread) {
		fn(th)
		m.active--
	})
	pid := uint64(10000 + int(task))
	if task < 0 {
		pid = uint64(20000 + node)
	}
	systid := uint64(node)<<16 | uint64(uint32(t.ID))
	m.Facilities[node].CutThreadInfo(t.ID, m.LocalTime(node), pid, systid, task, threadType)
	return t
}

// StartClockSampling cuts the first global-clock record for every node
// immediately and re-samples every ClockInterval for as long as workload
// threads remain. Call once, before Run.
func (m *Machine) StartClockSampling() {
	var tick func()
	sample := func() {
		now := m.Sim.Now()
		for n := range m.Facilities {
			// The record is cut — and locally timestamped — *after* the
			// global clock was read, so a de-schedule between the two
			// reads makes the global value stale by OutlierDelay while
			// the local timestamp stays in sequence with every other
			// record of the node (the paper's §5 failure mode). Read
			// jitter likewise lands on the global value.
			global := now
			if m.cfg.OutlierProb > 0 && m.rng.Float64() < m.cfg.OutlierProb {
				global -= m.cfg.OutlierDelay
			}
			if m.cfg.ClockJitterNS > 0 {
				global += clock.Time(m.rng.NormFloat64() * m.cfg.ClockJitterNS)
			}
			m.Facilities[n].CutGlobalClock(-1, m.LocalTime(n), global)
		}
	}
	tick = func() {
		sample()
		if m.active > 0 {
			m.Sim.After(m.cfg.ClockInterval, tick)
		}
	}
	m.Sim.At(0, tick)
}

// Run executes the simulation to completion and flushes every facility.
// It returns the final virtual time.
func (m *Machine) Run() (clock.Time, error) {
	end := m.Sim.Run()
	for _, f := range m.Facilities {
		if err := f.Close(); err != nil {
			return end, err
		}
	}
	return end, nil
}
