package cluster

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/sched"
	"tracefw/internal/trace"
)

func memMachine(t *testing.T, cfg Config) (*Machine, []*bytes.Buffer) {
	t.Helper()
	bufs := make([]*bytes.Buffer, cfg.Nodes)
	ws := make([]io.Writer, cfg.Nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	m, err := New(ws, FromConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return m, bufs
}

func readAll(t *testing.T, buf *bytes.Buffer) []trace.Record {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func baseCfg(nodes int) Config {
	return Config{
		Nodes:       nodes,
		CPUsPerNode: 2,
		TraceOpts:   trace.Options{Enabled: events.MaskAll},
		Seed:        1,
	}
}

func TestDispatchRecordsHaveLocalTimestamps(t *testing.T) {
	cfg := baseCfg(1)
	cfg.Drifts = []float64{1e-4}
	cfg.Offsets = []clock.Time{3 * clock.Second}
	m, bufs := memMachine(t, cfg)
	m.SpawnTraced(0, 0, events.ThreadMPI, func(th *sched.Thread) {
		th.Compute(10 * clock.Second)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, bufs[0])
	var dispatch, undispatch *trace.Record
	for i := range recs {
		switch recs[i].Type {
		case events.EvDispatch:
			dispatch = &recs[i]
		case events.EvUndispatch:
			undispatch = &recs[i]
		}
	}
	if dispatch == nil || undispatch == nil {
		t.Fatalf("missing dispatch records: %+v", recs)
	}
	// Dispatch at true time 0 -> local 3s (quantized).
	if d := dispatch.Time - 3*clock.Second; d < -clock.Microsecond || d > clock.Microsecond {
		t.Fatalf("dispatch local time %v, want ~3s", dispatch.Time)
	}
	// Undispatch at true 10s -> local 3s + 10s*(1+1e-4) = 13.001s.
	want := 13*clock.Second + clock.Millisecond
	if d := undispatch.Time - want; d < -clock.Microsecond || d > clock.Microsecond {
		t.Fatalf("undispatch local time %v, want ~%v", undispatch.Time, want)
	}
}

func TestThreadInfoRecordCut(t *testing.T) {
	m, bufs := memMachine(t, baseCfg(1))
	m.SpawnTraced(0, 7, events.ThreadMPI, func(th *sched.Thread) {})
	m.SpawnTraced(0, -1, events.ThreadSystem, func(th *sched.Thread) {})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var infos []trace.Record
	for _, r := range readAll(t, bufs[0]) {
		if r.Type == events.EvThreadInfo {
			infos = append(infos, r)
		}
	}
	if len(infos) != 2 {
		t.Fatalf("thread-info records: %d, want 2", len(infos))
	}
	if int32(uint32(infos[0].Args[2])) != 7 || infos[0].Args[3] != events.ThreadMPI {
		t.Fatalf("first thread info: %+v", infos[0])
	}
	if int32(uint32(infos[1].Args[2])) != -1 || infos[1].Args[3] != events.ThreadSystem {
		t.Fatalf("second thread info: %+v", infos[1])
	}
}

func TestClockSamplingCoversRun(t *testing.T) {
	cfg := baseCfg(2)
	cfg.ClockInterval = clock.Second
	m, bufs := memMachine(t, cfg)
	for n := 0; n < 2; n++ {
		n := n
		m.SpawnTraced(n, int32(n), events.ThreadMPI, func(th *sched.Thread) {
			th.Compute(5500 * clock.Millisecond)
		})
	}
	m.StartClockSampling()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		var pairs []clock.Pair
		for _, r := range readAll(t, bufs[n]) {
			if r.Type == events.EvGlobalClock {
				pairs = append(pairs, clock.Pair{Global: clock.Time(r.Args[0]), Local: r.Time})
			}
		}
		// Samples at 0,1,2,3,4,5 s (active stops after 5.5s) and one at 6s
		// scheduled while still active — at least 6.
		if len(pairs) < 6 {
			t.Fatalf("node %d: %d clock pairs", n, len(pairs))
		}
		if pairs[0].Global != 0 {
			t.Fatalf("node %d: first pair global %v, want 0", n, pairs[0].Global)
		}
		// The ratio recovered from the pairs must match the configured drift.
		r := clock.RMSRatio(pairs)
		want := 1 / (1 + m.Config().Drifts[n])
		if diff := r - want; diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("node %d: recovered ratio %.9f, want %.9f", n, r, want)
		}
	}
}

func TestClockSamplingStopsAfterWorkload(t *testing.T) {
	cfg := baseCfg(1)
	cfg.ClockInterval = clock.Second
	m, bufs := memMachine(t, cfg)
	m.SpawnTraced(0, 0, events.ThreadMPI, func(th *sched.Thread) {
		th.Compute(1500 * clock.Millisecond)
	})
	m.StartClockSampling()
	end, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The sampler must not keep the simulation alive much past the
	// workload: last tick at 2s (first tick after active hit 0).
	if end > 2*clock.Second {
		t.Fatalf("simulation ran to %v", end)
	}
	n := 0
	for _, r := range readAll(t, bufs[0]) {
		if r.Type == events.EvGlobalClock {
			n++
		}
	}
	if n < 2 || n > 3 {
		t.Fatalf("%d clock records", n)
	}
}

func TestOutlierInjection(t *testing.T) {
	cfg := baseCfg(1)
	cfg.ClockInterval = clock.Second
	cfg.OutlierProb = 1.0 // every sample is an outlier
	cfg.OutlierDelay = 7 * clock.Millisecond
	cfg.Drifts = []float64{0}
	cfg.Offsets = []clock.Time{0}
	m, bufs := memMachine(t, cfg)
	m.SpawnTraced(0, 0, events.ThreadMPI, func(th *sched.Thread) {
		th.Compute(3 * clock.Second)
	})
	m.StartClockSampling()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range readAll(t, bufs[0]) {
		if r.Type == events.EvGlobalClock {
			if lag := r.Time - clock.Time(r.Args[0]); lag != 7*clock.Millisecond {
				t.Fatalf("outlier lag %v, want 7ms", lag)
			}
		}
	}
}

func TestNewFilesWritesRawTraces(t *testing.T) {
	dir := t.TempDir()
	cfg := baseCfg(2)
	cfg.TraceOpts.Prefix = filepath.Join(dir, "raw")
	m, err := NewFiles(FromConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		n := n
		m.SpawnTraced(n, int32(n), events.ThreadMPI, func(th *sched.Thread) {
			th.Compute(clock.Millisecond)
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		rd, err := trace.OpenFile(cfg.TraceOpts.FileName(n))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := rd.ReadAll()
		rd.Close()
		if err != nil || len(recs) == 0 {
			t.Fatalf("node %d: recs=%d err=%v", n, len(recs), err)
		}
		if rd.Info.Node != n {
			t.Fatalf("node %d file claims node %d", n, rd.Info.Node)
		}
	}
}

func TestWriterCountValidation(t *testing.T) {
	if _, err := New([]io.Writer{&bytes.Buffer{}}, FromConfig(baseCfg(2))); err == nil {
		t.Fatal("mismatched writer count accepted")
	}
}

func TestTimestampsMonotonePerNode(t *testing.T) {
	cfg := baseCfg(1)
	cfg.CPUsPerNode = 2
	cfg.Quantum = clock.Millisecond
	cfg.Drifts = []float64{-8e-5}
	m, bufs := memMachine(t, cfg)
	for i := 0; i < 6; i++ {
		m.SpawnTraced(0, int32(i), events.ThreadMPI, func(th *sched.Thread) {
			for j := 0; j < 5; j++ {
				th.Compute(3 * clock.Millisecond)
				th.Sleep(clock.Millisecond)
			}
		})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var prev clock.Time
	for i, r := range readAll(t, bufs[0]) {
		if r.Time < prev {
			t.Fatalf("record %d timestamp %v < previous %v", i, r.Time, prev)
		}
		prev = r.Time
	}
}
