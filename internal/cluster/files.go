package cluster

import "os"

// openCreate is a seam for tests; it simply creates the named file.
func openCreate(name string) (*os.File, error) { return os.Create(name) }
