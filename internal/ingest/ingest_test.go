package ingest_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"tracefw/internal/convert"
	"tracefw/internal/core"
	"tracefw/internal/events"
	"tracefw/internal/ingest"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
	"tracefw/internal/xrand"
)

// genRaws runs a random SPMD workload and returns the per-node raw
// trace bytes — the exact streams a live system would POST to ingest.
func genRaws(t *testing.T, seed uint64, nodes, steps int) [][]byte {
	t.Helper()
	drifts := make([]float64, nodes)
	for i := range drifts {
		drifts[i] = float64(i-1) * 30e-6
	}
	run, err := core.Execute(core.Config{
		Nodes:        nodes,
		CPUsPerNode:  2,
		TasksPerNode: 2,
		Seed:         seed,
		Drifts:       drifts,
	}, workload.Random{Seed: seed, Steps: steps}.Main())
	if err != nil {
		t.Fatal(err)
	}
	raws := run.RawTraces
	run.Close()
	return raws
}

// referenceMerge runs the batch pipeline — convert all, merge with
// EstimatorNone — over the same raw traces, with the same merged-file
// writer options the ingest path uses. This is the oracle every ingest
// result must match byte for byte.
func referenceMerge(t *testing.T, raws [][]byte, wopts interval.WriterOptions) []byte {
	t.Helper()
	outs, _, err := convert.ConvertBuffers(raws, convert.Options{
		Writer: interval.WriterOptions{FrameBytes: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*interval.File, len(outs))
	for i, sb := range outs {
		if files[i], err = interval.ReadHeader(sb); err != nil {
			t.Fatal(err)
		}
	}
	msb := interval.NewSeekBuffer()
	if _, err := merge.Merge(files, msb, merge.Options{
		Estimator: merge.EstimatorNone,
		Writer:    wopts,
		Parallel:  1,
	}); err != nil {
		t.Fatal(err)
	}
	return msb.Bytes()
}

// preambleCut returns the end offset of the last thread-info or
// marker-define record: everything up to it is the node's preamble
// batch (raw header plus whole records declaring all tables).
func preambleCut(t *testing.T, raw []byte) int {
	t.Helper()
	off := convert.RawHeaderSize
	cut := off
	for off < len(raw) {
		rec, n, err := trace.Decode(raw[off:])
		if err != nil {
			t.Fatalf("raw trace undecodable at %d: %v", off, err)
		}
		off += n
		if rec.Type == events.EvThreadInfo || rec.Type == events.EvMarkerDefine {
			cut = off
		}
	}
	return cut
}

// splitBatches cuts a raw trace into a preamble batch plus randomly
// sized byte chunks that deliberately ignore record boundaries.
func splitBatches(t *testing.T, rng *xrand.Rand, raw []byte) [][]byte {
	t.Helper()
	cut := preambleCut(t, raw)
	batches := [][]byte{raw[:cut]}
	rest := raw[cut:]
	for len(rest) > 0 {
		n := 1 + rng.Intn(2000)
		if n > len(rest) {
			n = len(rest)
		}
		batches = append(batches, rest[:n])
		rest = rest[n:]
	}
	return batches
}

// feedNode posts one node's batches, occasionally swapping adjacent
// sequence numbers to exercise the reordering window.
func feedNode(t *testing.T, s *ingest.Session, nodeIdx int, batches [][]byte, rng *xrand.Rand) {
	order := make([]int, len(batches))
	for i := range order {
		order[i] = i
	}
	for i := 1; i+1 < len(order); i += 2 {
		if rng.Intn(3) == 0 {
			order[i], order[i+1] = order[i+1], order[i]
		}
	}
	for _, idx := range order {
		last := idx == len(batches)-1
		if err := s.Batch(nodeIdx, uint64(idx), last, batches[idx]); err != nil {
			t.Errorf("node %d batch %d: %v", nodeIdx, idx, err)
			return
		}
	}
}

// TestIngestSingleBatchPerNode: each node POSTs its entire raw stream
// as batch 0 with last set (the curl one-liner from the README). The
// barrier replay must finish such nodes even though nothing is pending
// after it — a regression guard for the session hanging in streaming —
// and the result must still match the batch pipeline byte for byte.
func TestIngestSingleBatchPerNode(t *testing.T) {
	raws := genRaws(t, 11, 2, 30)
	wopts := interval.WriterOptions{FrameBytes: 2048, FramesPerDir: 2}
	want := referenceMerge(t, raws, wopts)

	m, err := ingest.NewManager(ingest.Config{Dir: t.TempDir(), Writer: wopts})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Begin("oneshot", len(raws), interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range raws {
		if err := s.Batch(i, 0, true, raw); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("session: %v", err)
	}
	if st := s.State(); st != ingest.StateDone {
		t.Fatalf("state %v", st)
	}
	got, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("single-batch ingest differs from batch pipeline (%d vs %d bytes)", len(got), len(want))
	}
}

// TestIngestMatchesBatchPipeline: streaming per-node batches (split at
// arbitrary byte positions, posted out of order, through tiny queues
// that force backpressure) yields a final file byte-identical to the
// batch convert→merge pipeline over the same raw traces.
func TestIngestMatchesBatchPipeline(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		nodes := 2 + int(seed%2)
		raws := genRaws(t, seed, nodes, 40)
		wopts := interval.WriterOptions{FrameBytes: 2048, FramesPerDir: 2}
		want := referenceMerge(t, raws, wopts)

		m, err := ingest.NewManager(ingest.Config{
			Dir:          t.TempDir(),
			Writer:       wopts,
			QueueRecords: 64, // tiny: exercise backpressure
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Begin(fmt.Sprintf("trace%d", seed), nodes, interval.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := range raws {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := xrand.New(seed*100 + uint64(i))
				feedNode(t, s, i, splitBatches(t, rng, raws[i]), rng)
			}(i)
		}
		wg.Wait()
		if err := s.Wait(); err != nil {
			t.Fatalf("seed %d: session: %v", seed, err)
		}
		if st := s.State(); st != ingest.StateDone {
			t.Fatalf("seed %d: state %v", seed, st)
		}
		got, err := os.ReadFile(s.Path())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: ingested file differs from batch pipeline (%d vs %d bytes)",
				seed, len(got), len(want))
		}
		si, gen := s.Sealed()
		if gen == 0 || !si.Final || si.Size != int64(len(got)) {
			t.Fatalf("seed %d: final seal %+v gen %d, file %d bytes", seed, si, gen, len(got))
		}
		st := m.Stats()
		if st.SessionsDone != 1 || st.SessionsActive != 0 || st.Seals == 0 {
			t.Fatalf("seed %d: stats %+v", seed, st)
		}
	}
}

// TestIngestLiveTailQueries: while batches stream in, snapshots opened
// at every published seal generation expose exactly a prefix of the
// batch-pipeline reference records — the trace is queryable mid-flight
// with no torn or invented data.
func TestIngestLiveTailQueries(t *testing.T) {
	const nodes = 3
	raws := genRaws(t, 7, nodes, 60)
	wopts := interval.WriterOptions{FrameBytes: 1024, FramesPerDir: 2}
	want := referenceMerge(t, raws, wopts)
	wf, err := interval.NewFile(interval.NewSeekBufferFrom(want))
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := wf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}

	m, err := ingest.NewManager(ingest.Config{
		Dir:          t.TempDir(),
		Writer:       wopts,
		QueueRecords: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Begin("live", nodes, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := range raws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := xrand.New(900 + uint64(i))
			feedNode(t, s, i, splitBatches(t, rng, raws[i]), rng)
		}(i)
	}

	// Reader: poll the seal generation and verify every snapshot.
	snapshots := 0
	var lastGen uint64
	done := make(chan struct{})
	go func() { wg.Wait(); s.Wait(); close(done) }()
	for {
		si, gen := s.Sealed()
		if gen > lastGen {
			lastGen = gen
			path, size, _, ready := s.LiveInfo()
			if !ready {
				t.Fatal("seal published but LiveInfo not ready")
			}
			if size < si.Size {
				t.Fatalf("LiveInfo size %d behind seal %d", size, si.Size)
			}
			f, err := interval.Open(path, interval.WithLiveTail(size), interval.WithPyramid(false))
			if err != nil {
				t.Fatalf("snapshot at gen %d (size %d): %v", gen, size, err)
			}
			recs, err := f.Scan().All()
			f.Close()
			if err != nil {
				t.Fatalf("snapshot scan at gen %d: %v", gen, err)
			}
			if len(recs) > len(wantRecs) {
				t.Fatalf("snapshot has %d records, reference only %d", len(recs), len(wantRecs))
			}
			for i := range recs {
				if !reflect.DeepEqual(recs[i], wantRecs[i]) {
					t.Fatalf("snapshot record %d differs from reference:\n%+v\n%+v",
						i, recs[i], wantRecs[i])
				}
			}
			snapshots++
		}
		select {
		case <-done:
			if err := s.Err(); err != nil {
				t.Fatal(err)
			}
			if snapshots == 0 {
				t.Fatal("no mid-flight snapshots observed")
			}
			// The final snapshot is the whole reference.
			si, _ := s.Sealed()
			if !si.Final || si.Size != int64(len(want)) {
				t.Fatalf("final seal %+v, want size %d", si, len(want))
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestIngestDrain: draining mid-stream closes open states exactly as
// the batch converter does at end of trace and seals a valid file whose
// records are a prefix-consistent merge of what each node delivered.
func TestIngestDrain(t *testing.T) {
	const nodes = 2
	raws := genRaws(t, 11, nodes, 40)
	wopts := interval.WriterOptions{FrameBytes: 2048, FramesPerDir: 2}

	m, err := ingest.NewManager(ingest.Config{Dir: t.TempDir(), Writer: wopts})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Begin("drainme", nodes, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Feed only a portion of each node's stream, cut mid-record.
	for i, raw := range raws {
		cut := preambleCut(t, raw)
		if err := s.Batch(i, 0, false, raw[:cut]); err != nil {
			t.Fatal(err)
		}
		part := (len(raw) - cut) / 3
		if err := s.Batch(i, 1, false, raw[cut:cut+part]); err != nil {
			t.Fatal(err)
		}
	}
	m.DrainAll()
	if st := s.State(); st != ingest.StateDone {
		t.Fatalf("state after drain: %v (%v)", st, s.Err())
	}
	f, err := interval.Open(s.Path(), interval.WithPyramid(false))
	if err != nil {
		t.Fatalf("drained file: %v", err)
	}
	defer f.Close()
	if _, err := f.Scan().All(); err != nil {
		t.Fatalf("drained file scan: %v", err)
	}
	// New sessions are refused while draining.
	if _, err := m.Begin("later", 1, interval.WriterOptions{}); !errors.Is(err, ingest.ErrDraining) {
		t.Fatalf("Begin while draining: %v", err)
	}
}

// TestIngestSequencer: the per-node sequencing rules — duplicates,
// window overflow, oversized batches, unknown nodes, posts after the
// final batch — are each rejected with their sentinel error.
func TestIngestSequencer(t *testing.T) {
	raws := genRaws(t, 13, 1, 10)
	m, err := ingest.NewManager(ingest.Config{
		Dir:            t.TempDir(),
		MaxBatchBytes:  1 << 20,
		PendingBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Begin("seq", 1, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw := raws[0]
	cut := preambleCut(t, raw)
	check := func(err, want error) {
		t.Helper()
		if !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
	}
	check(s.Batch(5, 0, false, raw[:cut]), ingest.ErrUnknownNode)
	check(s.Batch(0, 9, false, nil), ingest.ErrWindow)
	check(s.Batch(0, 0, false, make([]byte, 1<<20+1)), ingest.ErrTooLarge)
	if err := s.Batch(0, 1, false, raw[cut:cut+10]); err != nil {
		t.Fatal(err)
	}
	check(s.Batch(0, 1, false, raw[cut:cut+10]), ingest.ErrDuplicate)
	if err := s.Batch(0, 0, false, raw[:cut]); err != nil {
		t.Fatal(err)
	}
	check(s.Batch(0, 0, false, raw[:cut]), ingest.ErrDuplicate)
	if err := s.Batch(0, 2, true, raw[cut+10:]); err != nil {
		t.Fatal(err)
	}
	check(s.Batch(0, 3, false, nil), ingest.ErrFinished)
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	check(s.Batch(0, 3, false, nil), ingest.ErrSessionDone)
	if m.Stats().Errors == 0 {
		t.Fatal("sequencing violations not counted")
	}
}

// TestIngestManager: name validation, duplicate traces, and abort.
func TestIngestManager(t *testing.T) {
	m, err := ingest.NewManager(ingest.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".hidden", "a/b", "../x", "a b", string(make([]byte, 200))} {
		if _, err := m.Begin(bad, 1, interval.WriterOptions{}); !errors.Is(err, ingest.ErrBadName) {
			t.Fatalf("Begin(%q): %v", bad, err)
		}
	}
	if _, err := m.Begin("ok", 0, interval.WriterOptions{}); err == nil {
		t.Fatal("Begin with zero nodes succeeded")
	}
	s, err := m.Begin("ok", 2, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Begin("ok", 2, interval.WriterOptions{}); !errors.Is(err, ingest.ErrExists) {
		t.Fatalf("duplicate Begin: %v", err)
	}
	if got, okk := m.Get("ok"); !okk || got != s {
		t.Fatal("Get lost the session")
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); !errors.Is(err, ingest.ErrAborted) {
		t.Fatalf("Wait after abort: %v", err)
	}
	if st := s.State(); st != ingest.StateFailed {
		t.Fatalf("state after abort: %v", st)
	}
	m.Remove("ok")
	if _, okk := m.Get("ok"); okk {
		t.Fatal("Remove kept the session")
	}
	if _, err := ingest.NewManager(ingest.Config{Dir: ""}); err == nil {
		t.Fatal("NewManager with no dir succeeded")
	}
	if _, err := ingest.NewManager(ingest.Config{Dir: "/no/such/dir/anywhere"}); err == nil {
		t.Fatal("NewManager with missing dir succeeded")
	}
}

// TestIngestBadPreamble: a first batch that is not a self-contained
// preamble — wrong node id, mid-record cut, or post-preamble threads —
// fails the session while keeping any sealed prefix valid.
func TestIngestBadPreamble(t *testing.T) {
	raws := genRaws(t, 17, 2, 15)
	newSession := func() (*ingest.Manager, *ingest.Session) {
		m, err := ingest.NewManager(ingest.Config{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Begin("bad", 2, interval.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return m, s
	}

	// Node 1's stream posted as node 0: the raw header's node id must
	// match the URL's node index or the merge order would be wrong.
	_, s := newSession()
	cut := preambleCut(t, raws[1])
	if err := s.Batch(0, 0, true, raws[1][:cut]); err == nil {
		t.Fatal("cross-node preamble accepted")
	}
	if st := s.State(); st != ingest.StateFailed {
		t.Fatalf("state after bad preamble: %v", st)
	}

	// A preamble cut mid-record is rejected (it must be self-contained).
	_, s = newSession()
	cut = preambleCut(t, raws[0])
	if err := s.Batch(0, 0, false, raws[0][:cut-3]); err == nil {
		t.Fatal("torn preamble accepted")
	}

	// Garbage that is not a raw trace at all.
	_, s = newSession()
	if err := s.Batch(0, 0, false, []byte("not a trace")); err == nil {
		t.Fatal("garbage preamble accepted")
	}
}
