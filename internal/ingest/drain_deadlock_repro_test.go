package ingest_test

import (
	"testing"
	"time"

	"tracefw/internal/ingest"
	"tracefw/internal/interval"
)

// Repro: node 0's Batch blocks in LiveSource.Push (queue full) holding
// n0.mu while the merge waits for node 1's first record; Drain locks
// nodes in index order and hangs on n0.mu.
func TestDrainDeadlockRepro(t *testing.T) {
	raws := genRaws(t, 11, 2, 200)
	m, err := ingest.NewManager(ingest.Config{
		Dir:          t.TempDir(),
		QueueRecords: 2,
		Writer:       interval.WriterOptions{FrameBytes: 2048, FramesPerDir: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Begin("dl", 2, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Both preambles in -> barrier runs, streaming starts.
	for i, raw := range raws {
		cut := preambleCut(t, raw)
		if err := s.Batch(i, 0, false, raw[:cut]); err != nil {
			t.Fatal(err)
		}
	}
	// Node 0 posts its whole remaining stream; with a 2-record queue
	// this blocks in Push while the merge waits on node 1.
	posted := make(chan struct{})
	go func() {
		cut := preambleCut(t, raws[0])
		s.Batch(0, 1, true, raws[0][cut:])
		close(posted)
	}()
	select {
	case <-posted:
		t.Log("node 0 batch completed without blocking (no repro)")
	case <-time.After(500 * time.Millisecond):
		t.Log("node 0 batch blocked as expected")
	}

	done := make(chan struct{})
	go func() {
		s.Drain()
		close(done)
	}()
	select {
	case <-done:
		t.Log("drain completed: no deadlock")
	case <-time.After(5 * time.Second):
		t.Fatal("drain deadlocked")
	}
}
