package ingest

import (
	"fmt"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/profile"
	"tracefw/internal/trace"
)

// State is a session's lifecycle phase.
type State int

// Session states.
const (
	StateGathering State = iota // waiting for every node's preamble
	StateStreaming              // header written, records flowing
	StateDone                   // all nodes finished, file sealed
	StateFailed                 // poisoned; file sealed at its last good prefix
)

// String names the state for status endpoints.
func (s State) String() string {
	switch s {
	case StateGathering:
		return "gathering"
	case StateStreaming:
		return "streaming"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return "state?"
}

// Session is one live trace being ingested.
type Session struct {
	mgr   *Manager
	name  string
	path  string
	wopts interval.WriterOptions

	mu    sync.Mutex
	state State
	err   error
	nodes []*node
	// preambles gathered so far; the barrier fires when all are in.
	preambles []*convert.Preamble
	have      int
	markers   *convert.MarkerRegistry
	live      *merge.Live
	file      SinkFile
	mergeDone chan struct{}

	// Seal publication: read by the serving layer on every live query,
	// written by the merge goroutine's OnSeal callback. Generation 0
	// means no header yet (nothing to open).
	sealMu sync.Mutex
	seal   interval.SealInfo
	gen    uint64
}

// node is one producer's pipeline: sequencer → incremental record
// decoder → streaming converter → clock gate → live merge source.
type node struct {
	idx int

	mu       sync.Mutex
	next     uint64            // next sequence number to process
	pending  map[uint64][]byte // out-of-order batches
	lastSeq  uint64            // sequence of the final batch, +1; 0 = not seen
	preamble []byte            // batch 0, replayed at the barrier
	preDone  bool              // batch 0 accepted
	started  bool              // barrier done, stream live
	finished bool              // CloseSend done

	dec    convert.BatchDecoder
	stream *convert.Stream
	src    *merge.LiveSource

	adj    clock.Adjuster
	adjSet bool
	gate   []interval.Record // records awaiting the first clock pair
}

func newSession(m *Manager, name, path string, nodes int, wopts interval.WriterOptions) *Session {
	s := &Session{
		mgr:       m,
		name:      name,
		path:      path,
		wopts:     wopts,
		nodes:     make([]*node, nodes),
		preambles: make([]*convert.Preamble, nodes),
		markers:   convert.NewMarkerRegistry(),
		mergeDone: make(chan struct{}),
	}
	for i := range s.nodes {
		s.nodes[i] = &node{
			idx:     i,
			pending: make(map[uint64][]byte),
			src:     merge.NewLiveSource(m.cfg.QueueRecords),
		}
	}
	return s
}

// Name returns the trace name.
func (s *Session) Name() string { return s.name }

// Path returns the live trace's file path.
func (s *Session) Path() string { return s.path }

// Nodes returns the declared node count.
func (s *Session) Nodes() int { return len(s.nodes) }

// State returns the lifecycle phase.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Err returns the failure cause, if the session failed.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LiveInfo implements the serving layer's live-trace provider: the
// path, the sealed prefix length, a generation counter that bumps on
// every seal, and whether a header exists to open at all.
func (s *Session) LiveInfo() (path string, sealedSize int64, gen uint64, ready bool) {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	return s.path, s.seal.Size, s.gen, s.gen > 0
}

// Sealed returns the latest seal notification.
func (s *Session) Sealed() (interval.SealInfo, uint64) {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	return s.seal, s.gen
}

func (s *Session) publishSeal(si interval.SealInfo) {
	s.mgr.seals.Add(1)
	s.sealMu.Lock()
	s.seal = si
	s.gen++
	s.sealMu.Unlock()
}

// Batch ingests one sequence-numbered batch for a node. last marks the
// node's final batch (its body may be empty). Batches may arrive out of
// order within the configured window; each is applied exactly once.
func (s *Session) Batch(nodeIdx int, seq uint64, last bool, data []byte) error {
	if int64(len(data)) > s.mgr.cfg.maxBatchBytes() {
		return countErr(s.mgr, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data)))
	}
	if nodeIdx < 0 || nodeIdx >= len(s.nodes) {
		return countErr(s.mgr, fmt.Errorf("%w: node %d of %d", ErrUnknownNode, nodeIdx, len(s.nodes)))
	}
	switch st := s.State(); st {
	case StateDone:
		return countErr(s.mgr, ErrSessionDone)
	case StateFailed:
		return countErr(s.mgr, fmt.Errorf("ingest: session failed: %w", s.Err()))
	}
	n := s.nodes[nodeIdx]
	n.mu.Lock()
	defer n.mu.Unlock()

	if n.finished || (n.lastSeq > 0 && seq >= n.lastSeq) {
		return countErr(s.mgr, fmt.Errorf("%w: node %d sequence %d", ErrFinished, nodeIdx, seq))
	}
	if seq < n.next || (seq == 0 && n.preDone) {
		return countErr(s.mgr, fmt.Errorf("%w: node %d sequence %d already applied", ErrDuplicate, nodeIdx, seq))
	}
	if _, dup := n.pending[seq]; dup {
		return countErr(s.mgr, fmt.Errorf("%w: node %d sequence %d pending", ErrDuplicate, nodeIdx, seq))
	}
	if seq >= n.next+uint64(s.mgr.cfg.pendingBatches()) {
		return countErr(s.mgr, fmt.Errorf("%w: node %d sequence %d, window starts at %d", ErrWindow, nodeIdx, seq, n.next))
	}
	n.pending[seq] = append([]byte(nil), data...)
	if last {
		n.lastSeq = seq + 1
	}
	s.mgr.batches.Add(1)
	s.mgr.bytes.Add(int64(len(data)))
	return s.drainNodeLocked(n)
}

// drainNodeLocked applies every consecutive pending batch. Caller holds
// n.mu.
func (s *Session) drainNodeLocked(n *node) error {
	for {
		if n.finished {
			// Drain raced ahead of this node's replay goroutine and
			// closed its source; anything still stashed is dropped.
			return nil
		}
		// The finish check runs before looking for pending data so that
		// a node whose final batch was its preamble (a whole stream
		// POSTed as batch 0 with last set) finishes on the barrier
		// replay, when nothing is pending anymore.
		if n.started && n.lastSeq > 0 && n.next == n.lastSeq {
			if err := s.finishNodeLocked(n); err != nil {
				s.fail(err)
				return err
			}
			return nil
		}
		data, ok := n.pending[n.next]
		if !ok {
			return nil
		}
		if n.next == 0 {
			// The preamble cannot be applied until the header barrier:
			// scan it now; a per-node goroutine spawned by the barrier
			// replays it (and re-drains) once every node is in.
			if err := s.acceptPreamble(n, data); err != nil {
				s.fail(err)
				return err
			}
			delete(n.pending, 0)
			n.preDone = true
			return nil
		}
		if !n.started {
			return nil // waiting for the barrier replay
		}
		delete(n.pending, n.next)
		n.next++
		if err := s.feedLocked(n, data); err != nil {
			s.fail(err)
			return err
		}
	}
}

// acceptPreamble scans a node's batch 0 and, when it is the last one
// missing, runs the header barrier. Caller holds n.mu.
func (s *Session) acceptPreamble(n *node, data []byte) error {
	pre, err := convert.ScanPreamble(data)
	if err != nil {
		return fmt.Errorf("ingest: node %d: %w", n.idx, err)
	}
	if pre.Node != n.idx {
		return fmt.Errorf("ingest: batch for node %d carries a header for node %d", n.idx, pre.Node)
	}
	n.preamble = data

	s.mu.Lock()
	if s.state != StateGathering {
		s.mu.Unlock()
		return fmt.Errorf("ingest: preamble after the header barrier (node %d)", n.idx)
	}
	s.preambles[n.idx] = pre
	s.have++
	ready := s.have == len(s.nodes)
	s.mu.Unlock()
	if !ready {
		return nil
	}
	return s.barrier()
}

// barrier runs once, on the request goroutine that delivered the final
// preamble: it canonicalizes marker ids in node-then-first-seen order,
// writes the merged header, starts the merge goroutine, and spawns one
// replay goroutine per node. Replays must run concurrently — the k-way
// merge needs a watermark from every source before it can drain any of
// them, so a sequential replay could block on a full queue forever.
func (s *Session) barrier() error {
	s.mu.Lock()
	if s.state != StateGathering {
		err := s.err
		s.mu.Unlock()
		if err == nil {
			err = ErrSessionDone
		}
		return err
	}
	// Marker canonicalization, exactly as the batch pipeline: nodes in
	// index order, strings in first-seen order within each node.
	for _, pre := range s.preambles {
		for _, str := range pre.Defines {
			s.markers.ID(str)
		}
	}
	table := s.markers.Table()
	hdrs := make([]interval.Header, len(s.preambles))
	for i, pre := range s.preambles {
		hdrs[i] = interval.Header{
			ProfileVersion: profile.StdVersion,
			HeaderVersion:  interval.CurrentHeaderVersion,
			FieldMask:      profile.MaskIndividual,
			Threads:        pre.Threads,
			Markers:        table,
		}
	}
	file, err := s.mgr.cfg.create(s.path)
	if err != nil {
		s.mu.Unlock()
		err = fmt.Errorf("ingest: %w", err)
		s.fail(err)
		return err
	}
	wopts := s.wopts
	if user := wopts.OnSeal; user != nil {
		wopts.OnSeal = func(si interval.SealInfo) {
			s.publishSeal(si)
			user(si)
		}
	} else {
		wopts.OnSeal = s.publishSeal
	}
	sources := make([]*merge.LiveSource, len(s.nodes))
	for i, n := range s.nodes {
		sources[i] = n.src
	}
	live, err := merge.NewLive(file, hdrs, sources, merge.Options{
		Writer:   wopts,
		NoPseudo: s.mgr.cfg.NoPseudo,
		Linear:   s.mgr.cfg.Linear,
	})
	if err != nil {
		file.Close()
		s.mu.Unlock()
		s.fail(err)
		return err
	}
	s.file = file
	s.live = live
	s.state = StateStreaming
	s.mu.Unlock()

	go s.runMerge()

	// Wire every node's streaming converter, replay its preamble
	// records, and drain any batches that queued up before the barrier.
	// Errors poison the whole session (s.fail inside the helpers).
	for _, n := range s.nodes {
		go func(n *node) {
			n.mu.Lock()
			defer n.mu.Unlock()
			if err := s.ensureStartedLocked(n); err != nil {
				s.fail(err)
				return
			}
			s.drainNodeLocked(n)
		}(n)
	}
	return nil
}

// ensureStartedLocked builds a node's streaming converter and replays
// its preamble batch; idempotent. Caller holds n.mu; the barrier must
// have completed (Drain relies on this to start never-replayed nodes).
func (s *Session) ensureStartedLocked(n *node) error {
	if n.started {
		return nil
	}
	pre := s.preambles[n.idx]
	stream, err := convert.NewStream(pre, s.markers, func(r *interval.Record) error {
		return s.emit(n, r)
	})
	if err != nil {
		return err
	}
	n.stream = stream
	n.started = true
	n.next = 1
	data := n.preamble
	n.preamble = nil
	return s.feedLocked(n, data[convert.RawHeaderSize:])
}

// feedLocked pushes one batch's bytes through the node's decoder and
// converter. Caller holds n.mu.
func (s *Session) feedLocked(n *node, data []byte) error {
	return n.dec.Feed(data, func(rec *trace.Record) error {
		s.mgr.records.Add(1)
		return n.stream.Event(rec)
	})
}

// emit is the converter sink: it replicates the batch merge's stream
// stage — extract clock pairs, drop the clock records, adjust through
// the EstimatorNone adjuster anchored at the node's first pair — and
// pushes into the live merge. Records arriving before the first pair
// wait in the gate (bounded); a node that never syncs its clock flushes
// the gate unadjusted at finish.
func (s *Session) emit(n *node, r *interval.Record) error {
	if r.Type == events.EvGlobalClock {
		if !n.adjSet && len(r.Extra) > 0 {
			n.adj = &clock.RatioAdjuster{R: 1, G0: clock.Time(r.Extra[0]), L0: r.Start}
			n.adjSet = true
			return s.flushGate(n)
		}
		return nil
	}
	if !n.adjSet {
		if len(n.gate) >= s.mgr.cfg.gateRecords() {
			return fmt.Errorf("ingest: node %d emitted %d records before its first clock sync", n.idx, len(n.gate))
		}
		cp := *r
		cp.Extra = append([]uint64(nil), r.Extra...)
		cp.Vec = append([]uint64(nil), r.Vec...)
		n.gate = append(n.gate, cp)
		return nil
	}
	return s.push(n, r)
}

func (s *Session) flushGate(n *node) error {
	for i := range n.gate {
		if err := s.push(n, &n.gate[i]); err != nil {
			return err
		}
	}
	n.gate = nil
	return nil
}

func (s *Session) push(n *node, r *interval.Record) error {
	end := n.adj.Global(r.End())
	r.Start = n.adj.Global(r.Start)
	r.Dura = end - r.Start
	return n.src.Push(r)
}

// finishNodeLocked ends a node's stream: the byte stream must close on
// a record boundary, open states are closed exactly as the batch
// converter does at end of trace, a node that never saw a clock pair
// flushes its gate unadjusted, and the merge source is closed. Caller
// holds n.mu.
func (s *Session) finishNodeLocked(n *node) error {
	if n.finished {
		return nil
	}
	if err := n.dec.Finish(); err != nil {
		return fmt.Errorf("ingest: node %d: %w", n.idx, err)
	}
	if err := n.stream.Finish(); err != nil {
		return err
	}
	if !n.adjSet {
		n.adj = &clock.RatioAdjuster{R: 1}
		n.adjSet = true
		if err := s.flushGate(n); err != nil {
			return err
		}
	}
	n.finished = true
	n.pending = nil
	n.src.CloseSend()
	return nil
}

// runMerge is the session's merge goroutine: it drains the sources,
// seals the file, and settles the session state.
func (s *Session) runMerge() {
	err := s.live.Run()
	if cerr := s.syncClose(); err == nil {
		err = cerr
	}
	s.mu.Lock()
	if err != nil {
		if s.state != StateFailed {
			s.state = StateFailed
			s.err = err
			s.mgr.failed.Add(1)
		}
	} else if s.state == StateStreaming {
		s.state = StateDone
		s.mgr.done.Add(1)
	}
	s.mu.Unlock()
	close(s.mergeDone)
}

// syncClose flushes the file to stable storage and closes the handle.
func (s *Session) syncClose() error {
	s.mu.Lock()
	f := s.file
	s.file = nil
	s.mu.Unlock()
	if f == nil {
		return nil
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fail poisons the session: every source is failed so the merge loop
// and any blocked producers unwind, and the writer seals the merged
// prefix (runMerge observes the error and settles the state).
func (s *Session) fail(err error) {
	s.mgr.errsN.Add(1)
	s.mu.Lock()
	if s.state == StateDone || s.state == StateFailed {
		s.mu.Unlock()
		return
	}
	prev := s.state
	s.state = StateFailed
	s.err = err
	s.mgr.failed.Add(1)
	s.mu.Unlock()
	for _, n := range s.nodes {
		n.src.Fail(err)
	}
	if prev == StateGathering {
		// No merge goroutine exists yet; settle immediately.
		close(s.mergeDone)
	}
}

// Abort cancels the session. An in-flight file keeps its sealed prefix.
func (s *Session) Abort() error {
	s.fail(ErrAborted)
	return nil
}

// Drain finishes the session as if every unfinished node's trace ended
// now: open states close at the last seen timestamp, the merge runs
// dry, and the file seals completely. Gathering sessions (no header
// yet) are aborted instead. Blocks until the session settles.
func (s *Session) Drain() {
	switch s.State() {
	case StateGathering:
		s.fail(ErrDraining)
		<-s.mergeDone
		return
	case StateDone, StateFailed:
		// Already settled (nodes may never have started; there is
		// nothing to finish).
		<-s.mergeDone
		return
	}
	// Lift every queue bound first. The loop below finishes nodes one at
	// a time while the merge consumes in global end-time order: a bounded
	// Push here (or in a producer holding a node lock this loop needs)
	// can block on a full queue that the merge will not touch until a
	// later node's source closes — a deadlock this loop itself would
	// cause. Unbounded queues make every flush complete immediately; the
	// records left at drain time are finite.
	for _, n := range s.nodes {
		n.src.Unbound()
	}
	for _, n := range s.nodes {
		n.mu.Lock()
		if !n.finished {
			// A node whose barrier replay has not been scheduled yet is
			// started here (ensureStartedLocked is idempotent), so its
			// source reliably closes and the merge can run dry.
			err := s.ensureStartedLocked(n)
			if err == nil {
				// Tolerate a batch cut mid-record: the decoded prefix
				// was converted; the trailing bytes are dropped.
				n.dec = convert.BatchDecoder{}
				err = s.finishNodeLocked(n)
			}
			if err != nil {
				s.fail(err)
			}
		}
		n.mu.Unlock()
	}
	<-s.mergeDone
}

// Wait blocks until the session settles (done or failed).
func (s *Session) Wait() error {
	<-s.mergeDone
	return s.Err()
}

// NodeStatus summarizes one node for the status endpoint.
type NodeStatus struct {
	Node     int    `json:"node"`
	NextSeq  uint64 `json:"next_seq"`
	Pending  int    `json:"pending"`
	Finished bool   `json:"finished"`
}

// Status summarizes a node's sequencer state.
func (n *node) status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStatus{Node: n.idx, NextSeq: n.next, Pending: len(n.pending), Finished: n.finished}
}

// NodeStatuses reports every node's sequencer state.
func (s *Session) NodeStatuses() []NodeStatus {
	out := make([]NodeStatus, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = n.status()
	}
	return out
}

func countErr(m *Manager, err error) error {
	m.errsN.Add(1)
	return err
}
