// Package ingest is the streaming write path of the trace service: it
// accepts raw per-node event batches over HTTP (POSTed by the nodes of
// a running simulation), converts them incrementally with the streaming
// converter, aligns per-node clocks, fans the adjusted records into a
// live k-way merge, and seals v4 frames as directories fill — so window
// queries observe the live tail of a trace the moment a frame seals.
//
// The pipeline reuses the batch machinery layer for layer — the
// streaming converter shares the batch converter's event logic, the
// live merge shares the batch merge's write loop and pseudo-interval
// tracker, and the interval writer's steady state is append-only — so a
// completed ingest is byte-identical to running convert→merge (with
// EstimatorNone clock adjustment) over the same per-node streams, and
// any prefix of an in-flight file is a valid interval file.
//
// Contract per trace: a begin request declares the node count; each
// node then posts sequence-numbered byte batches of its raw trace
// stream. Batch 0 is the node's preamble — the raw trace header plus
// whole records containing every thread-info record and every marker
// definition string the node will ever use. Once all preambles have
// arrived (the header barrier), marker identifiers are assigned in
// node-then-first-seen order (exactly the batch pipeline's
// canonicalization), the merged header is written, and record
// streaming begins. Later batches may split records arbitrarily.
package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"

	"tracefw/internal/interval"
)

// SinkFile is the write target of a live trace — the subset of *os.File
// the live merge needs. Tests inject recording or fault-injecting
// writers through Config.Create.
type SinkFile interface {
	io.Writer
	io.Seeker
	Sync() error
	Close() error
}

// Config tunes the ingest manager.
type Config struct {
	// Dir is where live trace files are created (<name>.ute).
	Dir string
	// MaxBatchBytes bounds one POSTed batch (default 8 MiB).
	MaxBatchBytes int64
	// PendingBatches is the per-node reordering window: how many
	// out-of-order batches may wait for a gap to fill (default 32).
	PendingBatches int
	// QueueRecords is the per-node live-source capacity in records
	// (default 4096); full queues backpressure the node's POSTs.
	QueueRecords int
	// GateRecords bounds how many records a node may emit before its
	// first global-clock pair fixes the clock offset (default 1<<20).
	GateRecords int
	// Writer is the default frame sizing for live traces; a begin
	// request may override FrameBytes/FramesPerDir per trace.
	Writer interval.WriterOptions
	// NoPseudo and Linear pass through to the live merge (ablations).
	NoPseudo bool
	Linear   bool
	// Create opens a live trace's file for writing; nil means
	// os.Create. The crash harness injects fault writers here.
	Create func(path string) (SinkFile, error)
}

func (c Config) create(path string) (SinkFile, error) {
	if c.Create != nil {
		return c.Create(path)
	}
	return os.Create(path)
}

func (c Config) maxBatchBytes() int64 {
	if c.MaxBatchBytes <= 0 {
		return 8 << 20
	}
	return c.MaxBatchBytes
}

func (c Config) pendingBatches() int {
	if c.PendingBatches <= 0 {
		return 32
	}
	return c.PendingBatches
}

func (c Config) gateRecords() int {
	if c.GateRecords <= 0 {
		return 1 << 20
	}
	return c.GateRecords
}

// Errors mapped to HTTP statuses by the serving layer.
var (
	ErrBadName      = errors.New("ingest: bad trace name")
	ErrExists       = errors.New("ingest: trace already being ingested")
	ErrUnknownTrace = errors.New("ingest: unknown trace")
	ErrUnknownNode  = errors.New("ingest: node index out of range")
	ErrDuplicate    = errors.New("ingest: duplicate batch sequence number")
	ErrWindow       = errors.New("ingest: batch too far ahead of the sequence window")
	ErrTooLarge     = errors.New("ingest: batch exceeds the size limit")
	ErrFinished     = errors.New("ingest: node already posted its last batch")
	ErrSessionDone  = errors.New("ingest: session already complete")
	ErrAborted      = errors.New("ingest: session aborted")
	ErrDraining     = errors.New("ingest: server draining")
)

// traceName restricts trace names to a safe path component.
var traceName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidName reports whether a trace name is acceptable (no path
// separators, no leading dot, bounded length).
func ValidName(name string) bool { return traceName.MatchString(name) }

// Stats is a snapshot of the manager's counters for /metrics.
type Stats struct {
	SessionsActive int
	SessionsDone   int64
	SessionsFailed int64
	Batches        int64
	Bytes          int64
	Records        int64
	Seals          int64
	Errors         int64
}

// Manager owns the ingest sessions of one server.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	draining bool

	done, failed          atomic.Int64
	batches, bytes        atomic.Int64
	records, seals, errsN atomic.Int64
}

// NewManager validates the configuration (the directory must exist and
// be writable) and returns an empty manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ingest: no directory configured")
	}
	st, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: directory: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("ingest: %s is not a directory", cfg.Dir)
	}
	return &Manager{cfg: cfg, sessions: make(map[string]*Session)}, nil
}

// MaxBatchBytes exposes the batch size limit for the HTTP layer.
func (m *Manager) MaxBatchBytes() int64 { return m.cfg.maxBatchBytes() }

// Begin creates a live trace with the given node count. The optional
// writer options override the manager's frame sizing (zero fields keep
// the defaults).
func (m *Manager) Begin(name string, nodes int, wopts interval.WriterOptions) (*Session, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if nodes <= 0 || nodes > 1<<16 {
		return nil, fmt.Errorf("ingest: node count %d out of range", nodes)
	}
	w := m.cfg.Writer
	if wopts.FrameBytes > 0 {
		w.FrameBytes = wopts.FrameBytes
	}
	if wopts.FramesPerDir > 0 {
		w.FramesPerDir = wopts.FramesPerDir
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if _, ok := m.sessions[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	s := newSession(m, name, filepath.Join(m.cfg.Dir, name+".ute"), nodes, w)
	m.sessions[name] = s
	return s, nil
}

// Get returns the session for a live trace.
func (m *Manager) Get(name string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[name]
	return s, ok
}

// Sessions returns the current sessions, for status listings.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	return out
}

// Remove drops a session from the map (it stays usable by holders).
// Completed traces removed this way keep their file on disk.
func (m *Manager) Remove(name string) {
	m.mu.Lock()
	delete(m.sessions, name)
	m.mu.Unlock()
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	active := 0
	for _, s := range m.sessions {
		st := s.State()
		if st == StateGathering || st == StateStreaming {
			active++
		}
	}
	m.mu.Unlock()
	return Stats{
		SessionsActive: active,
		SessionsDone:   m.done.Load(),
		SessionsFailed: m.failed.Load(),
		Batches:        m.batches.Load(),
		Bytes:          m.bytes.Load(),
		Records:        m.records.Load(),
		Seals:          m.seals.Load(),
		Errors:         m.errsN.Load(),
	}
}

// DrainAll gracefully finishes every in-flight session: no new batches
// are accepted, each streaming node's open states are closed exactly as
// the batch converter closes them at end of trace, the merges run dry,
// and every file seals. Blocks until all sessions have settled.
func (m *Manager) DrainAll() {
	m.mu.Lock()
	m.draining = true
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.Drain()
	}
}
