package ingest_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"sync"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/ingest"
	"tracefw/internal/interval"
	"tracefw/internal/xrand"
)

// The crash-mid-ingest differential harness. A live ingest writes
// through a recording sink that captures the exact byte stream the
// merge writer produces, write by write. Because the writer's steady
// state is strictly append-only (the always-valid-prefix property —
// asserted here, not assumed), the on-disk image of a process killed at
// ANY byte horizon H is exactly stream[:H]. The harness therefore
// replays one real ingest and then "crashes" it at hundreds of seeded
// kill-points covering every writer stage: inside the file header,
// inside a directory header, inside an entry table, at and around every
// frame payload boundary, and exactly at every seal point.
//
// For every crash image the differential properties are:
//
//  1. salvage never panics, recovers every frame sealed at or below the
//     horizon, and emits nothing absent from the batch-pipeline
//     reference (bit-exact payloads, identical records);
//  2. the newest seal at or below the horizon opens via
//     interval.Open/NewFile + WithLiveTail and scans to an exact record
//     prefix of the reference;
//  3. window queries over the recovered prefix equal the same queries
//     against the reference file restricted to the same seal.

// appendSink is the recording SinkFile: it captures the written bytes
// and proves the append-only contract. Any write that lands below the
// current end of file is a rewrite; the only one the interval writer is
// allowed is Close's final-link patch, after the file has reached its
// final size. stream() returns the pure-append byte stream (the file as
// it existed before the first rewrite), which is what a crash at any
// pre-Close moment would leave on disk.
type appendSink struct {
	mu       sync.Mutex
	buf      []byte
	pos      int64
	prePatch []byte // snapshot taken just before the first rewrite
	rewrites []rewrite
}

type rewrite struct {
	off, n int64
	fileAt int64 // file length at the moment of the rewrite
}

func (a *appendSink) Write(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pos < int64(len(a.buf)) {
		if a.prePatch == nil {
			a.prePatch = append([]byte(nil), a.buf...)
		}
		a.rewrites = append(a.rewrites, rewrite{off: a.pos, n: int64(len(p)), fileAt: int64(len(a.buf))})
	}
	end := a.pos + int64(len(p))
	if end > int64(len(a.buf)) {
		a.buf = append(a.buf, make([]byte, end-int64(len(a.buf)))...)
	}
	copy(a.buf[a.pos:end], p)
	a.pos = end
	return len(p), nil
}

func (a *appendSink) Seek(offset int64, whence int) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch whence {
	case io.SeekStart:
		a.pos = offset
	case io.SeekCurrent:
		a.pos += offset
	case io.SeekEnd:
		a.pos = int64(len(a.buf)) + offset
	default:
		return 0, fmt.Errorf("bad whence %d", whence)
	}
	return a.pos, nil
}

func (a *appendSink) Sync() error  { return nil }
func (a *appendSink) Close() error { return nil }

// stream returns the pure-append byte stream: every crash image is a
// prefix of it.
func (a *appendSink) stream() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.prePatch != nil {
		return a.prePatch
	}
	return append([]byte(nil), a.buf...)
}

func (a *appendSink) final() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.buf...)
}

// refOracle is the batch-pipeline ground truth a crash image is judged
// against.
type refOracle struct {
	bytes   []byte
	frames  []interval.FrameEntry
	recs    [][]interval.Record // per frame, directory order
	cum     []int               // cum[i] = records in frames[:i]
	allRecs []interval.Record
	file    *interval.File
}

func buildOracle(t *testing.T, refBytes []byte) *refOracle {
	t.Helper()
	o := &refOracle{bytes: refBytes}
	f, err := interval.NewFile(interval.NewSeekBufferFrom(refBytes), interval.WithPyramid(false))
	if err != nil {
		t.Fatal(err)
	}
	o.file = f
	dirs, err := f.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	o.cum = append(o.cum, 0)
	for _, d := range dirs {
		for _, fe := range d.Entries {
			rs, err := f.FrameRecords(fe)
			if err != nil {
				t.Fatal(err)
			}
			o.frames = append(o.frames, fe)
			o.recs = append(o.recs, rs)
			o.cum = append(o.cum, o.cum[len(o.cum)-1]+len(rs))
			o.allRecs = append(o.allRecs, rs...)
		}
	}
	return o
}

// checkCrash verifies one crash image (stream[:horizon]) against the
// oracle. seal is the newest seal at or below the horizon (nil if the
// crash predates the first seal).
func checkCrash(t *testing.T, o *refOracle, img []byte, seal *interval.SealInfo, label string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panicked: %v", label, r)
		}
	}()
	f, err := interval.ReadHeader(interval.NewSeekBufferFrom(img))
	if err != nil {
		if seal != nil {
			t.Fatalf("%s: header unreadable despite a seal at %d: %v", label, seal.Size, err)
		}
		return // crashed inside the file header: nothing was promised
	}

	// Salvage soundness: nothing invented, recovered frames bit-exact.
	sv := f.Salvage()
	byOffset := map[int64]int{}
	for i, fe := range o.frames {
		byOffset[fe.Offset] = i
	}
	recovered := map[int64]bool{}
	for _, fe := range sv.Frames {
		i, ok := byOffset[fe.Offset]
		if !ok || o.frames[i] != fe {
			t.Fatalf("%s: salvage invented frame %+v", label, fe)
		}
		recovered[fe.Offset] = true
		if fe.Offset+int64(fe.Bytes) > int64(len(img)) {
			t.Fatalf("%s: salvage recovered frame past the crash horizon", label)
		}
		if !bytes.Equal(img[fe.Offset:fe.Offset+int64(fe.Bytes)], o.bytes[fe.Offset:fe.Offset+int64(fe.Bytes)]) {
			t.Fatalf("%s: frame at %d not bit-exact vs the batch reference", label, fe.Offset)
		}
		rs, err := f.FrameRecords(fe)
		if err != nil {
			t.Fatalf("%s: recovered frame at %d unreadable: %v", label, fe.Offset, err)
		}
		if !reflect.DeepEqual(rs, o.recs[i]) {
			t.Fatalf("%s: frame at %d: records differ from reference", label, fe.Offset)
		}
	}
	if seal == nil {
		return
	}
	// Salvage completeness: every frame sealed at or below the horizon
	// lives in a complete directory below it and must be recovered.
	for i := 0; i < seal.Frames; i++ {
		if !recovered[o.frames[i].Offset] {
			t.Fatalf("%s: sealed frame %d at %d not salvaged (report %+v)", label, i, o.frames[i].Offset, sv.Report)
		}
	}

	// The live-tail open of the sealed prefix scans to an exact record
	// prefix of the reference.
	lf, err := interval.NewFile(interval.NewSeekBufferFrom(img),
		interval.WithLiveTail(seal.Size), interval.WithPyramid(false))
	if err != nil {
		t.Fatalf("%s: sealed prefix of %d bytes does not open: %v", label, seal.Size, err)
	}
	got, err := lf.Scan().All()
	if err != nil {
		t.Fatalf("%s: scanning sealed prefix: %v", label, err)
	}
	want := o.allRecs[:o.cum[seal.Frames]]
	if len(got) != len(want) {
		t.Fatalf("%s: sealed prefix scans %d records, want %d", label, len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: sealed prefix records differ from reference prefix", label)
	}

	// Differential window query: the crash image and the pristine
	// reference, both restricted to the same seal, must answer
	// identically.
	if len(want) > 0 {
		rf, err := interval.NewFile(interval.NewSeekBufferFrom(o.bytes),
			interval.WithLiveTail(seal.Size), interval.WithPyramid(false))
		if err != nil {
			t.Fatal(err)
		}
		lo := want[0].Start
		hi := want[len(want)-1].End()
		mid := lo + (hi-lo)/2
		for _, w := range [][2]clock.Time{{lo, mid}, {mid, hi}} {
			a, err := lf.ScanWindow(w[0], w[1]).All()
			if err != nil {
				t.Fatalf("%s: window scan on crash image: %v", label, err)
			}
			b, err := rf.ScanWindow(w[0], w[1]).All()
			if err != nil {
				t.Fatalf("%s: window scan on reference: %v", label, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: window [%d,%d] differs between crash image and reference", label, w[0], w[1])
			}
		}
	}
}

// TestIngestCrashDifferential is the harness entry point: ≥ 200 seeded
// kill-points over one real streamed ingest.
func TestIngestCrashDifferential(t *testing.T) {
	const nodes = 3
	raws := genRaws(t, 99, nodes, 70)
	wopts := interval.WriterOptions{FrameBytes: 512, FramesPerDir: 2}
	refBytes := referenceMerge(t, raws, wopts)
	o := buildOracle(t, refBytes)

	// One real ingest through the recording sink, capturing every seal.
	sink := &appendSink{}
	var sealMu sync.Mutex
	var seals []interval.SealInfo
	m, err := ingest.NewManager(ingest.Config{
		Dir: t.TempDir(),
		Writer: interval.WriterOptions{
			FrameBytes:   wopts.FrameBytes,
			FramesPerDir: wopts.FramesPerDir,
			OnSeal: func(si interval.SealInfo) {
				sealMu.Lock()
				seals = append(seals, si)
				sealMu.Unlock()
			},
		},
		QueueRecords: 128,
		Create:       func(string) (ingest.SinkFile, error) { return sink, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Begin("crash", nodes, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := range raws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feedNode(t, sess, i, splitBatches(t, xrand.New(7000+uint64(i)), raws[i]), xrand.New(8000+uint64(i)))
		}(i)
	}
	wg.Wait()
	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}

	// The finished ingest is byte-identical to the batch pipeline, and
	// the writer held the append-only contract: the only rewrite ever
	// allowed is Close's final-link patch, after the last append.
	final := sink.final()
	if !bytes.Equal(final, refBytes) {
		t.Fatalf("ingested file differs from batch pipeline (%d vs %d bytes)", len(final), len(refBytes))
	}
	for _, rw := range sink.rewrites {
		if rw.fileAt != int64(len(final)) {
			t.Fatalf("writer rewrote [%d,+%d) while the file was still growing (%d of %d bytes): "+
				"a crash there would not be a pure prefix", rw.off, rw.n, rw.fileAt, len(final))
		}
	}
	if len(sink.rewrites) > 1 {
		t.Fatalf("writer performed %d rewrites; only Close's final-link patch is allowed", len(sink.rewrites))
	}
	stream := sink.stream()
	if int64(len(stream)) != int64(len(final)) {
		t.Fatalf("append stream is %d bytes, final file %d", len(stream), len(final))
	}
	if len(seals) == 0 || !seals[len(seals)-1].Final {
		t.Fatalf("seal log broken: %d seals", len(seals))
	}
	if got := seals[len(seals)-1]; got.Size != int64(len(final)) || got.Frames != len(o.frames) {
		t.Fatalf("final seal %+v does not cover the file (%d bytes, %d frames)", got, len(final), len(o.frames))
	}

	// Kill-points: every writer stage boundary, ±1 around it, every seal
	// point, plus seeded random horizons.
	horizons := map[int64]bool{}
	add := func(h int64) {
		if h >= 1 && h <= int64(len(stream)) {
			horizons[h] = true
		}
	}
	dirs, err := o.file.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		add(d.Offset - 1) // mid final frame of the previous group
		add(d.Offset)     // group flushed, directory not yet
		add(d.Offset + 3) // torn directory header
		if len(d.Entries) > 0 {
			dirSize := d.Entries[0].Offset - d.Offset
			add(d.Offset + dirSize/2) // torn entry table
			add(d.Offset + dirSize)   // entries down, frames missing
		}
	}
	for _, fe := range o.frames {
		add(fe.Offset + 1)                   // first payload byte
		add(fe.Offset + int64(fe.Bytes)/2)   // torn payload
		add(fe.Offset + int64(fe.Bytes) - 1) // one byte short
		add(fe.Offset + int64(fe.Bytes))     // frame complete
	}
	for _, si := range seals {
		add(si.Size - 1)
		add(si.Size)
		add(si.Size + 1)
	}
	rng := xrand.New(424242)
	for len(horizons) < 220 {
		add(1 + rng.Int63n(int64(len(stream))))
	}
	// Every stage of every frame/directory yields thousands of
	// kill-points on a trace this size; subsample deterministically to
	// keep the suite fast, but always keep the seal-point kills.
	if len(horizons) > 500 {
		sorted := make([]int64, 0, len(horizons))
		for h := range horizons {
			sorted = append(sorted, h)
		}
		slices.Sort(sorted)
		stride := len(sorted)/450 + 1
		keep := map[int64]bool{}
		for i, h := range sorted {
			if i%stride == 0 {
				keep[h] = true
			}
		}
		for _, si := range seals {
			for _, h := range []int64{si.Size - 1, si.Size, si.Size + 1} {
				if horizons[h] {
					keep[h] = true
				}
			}
		}
		horizons = keep
	}
	if len(horizons) < 200 {
		t.Fatalf("only %d crash scenarios, need >= 200", len(horizons))
	}
	t.Logf("%d crash scenarios over a %d-byte stream, %d seals, %d frames",
		len(horizons), len(stream), len(seals), len(o.frames))

	sealAt := func(h int64) *interval.SealInfo {
		var best *interval.SealInfo
		for i := range seals {
			if seals[i].Size <= h && (best == nil || seals[i].Size > best.Size) {
				best = &seals[i]
			}
		}
		return best
	}
	n := 0
	for h := range horizons {
		img := stream[:h]
		checkCrash(t, o, img, sealAt(h), fmt.Sprintf("horizon %d", h))
		// Every 16th scenario also goes through the on-disk salvage API.
		if n++; n%16 == 0 {
			p := filepath.Join(t.TempDir(), "crash.ute")
			if err := os.WriteFile(p, img, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, sv, err := interval.OpenSalvage(p); err != nil {
				if sealAt(h) != nil {
					t.Fatalf("horizon %d: OpenSalvage failed despite sealed data: %v", h, err)
				}
			} else {
				for _, fe := range sv.Frames {
					i, ok := byOffsetIndex(o, fe.Offset)
					if !ok || o.frames[i] != fe {
						t.Fatalf("horizon %d: OpenSalvage invented frame %+v", h, fe)
					}
				}
			}
		}
	}

	// The very first crash image that carries a seal must already be
	// servable through merge's live machinery too: sanity-check the
	// smallest seal explicitly.
	if first := seals[0]; first.Size > 0 {
		img := stream[:first.Size]
		lf, err := interval.NewFile(interval.NewSeekBufferFrom(img),
			interval.WithLiveTail(first.Size), interval.WithPyramid(false))
		if err != nil {
			t.Fatal(err)
		}
		got, err := lf.Scan().All()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != o.cum[first.Frames] {
			t.Fatalf("first seal scans %d records, want %d", len(got), o.cum[first.Frames])
		}
	}
}

func byOffsetIndex(o *refOracle, off int64) (int, bool) {
	for i, fe := range o.frames {
		if fe.Offset == off {
			return i, true
		}
	}
	return 0, false
}
