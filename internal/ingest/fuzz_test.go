// Fuzz target for the ingest wire format: arbitrary bytes posted as a
// node's preamble and record batches must never panic or hang any layer
// of the pipeline — preamble scan, incremental record decode, streaming
// conversion, live merge — and whatever the pipeline accepts must
// produce a valid interval file. The decoder must also be chunking-
// invariant: splitting the same byte stream differently can never
// change the decoded records.
//
// Plain `go test` executes every checked-in seed under
// testdata/fuzz/FuzzIngestBatch/ as a unit test; `go test -fuzz
// FuzzIngestBatch` mutates from there. Regenerate the corpus with
//
//	go test ./internal/ingest -run TestRegenIngestFuzzCorpus -regen-corpus
package ingest_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"tracefw/internal/convert"
	"tracefw/internal/ingest"
	"tracefw/internal/interval"
	"tracefw/internal/trace"
)

// fuzzBatchCap bounds mutated inputs; real preamble+stream seeds are a
// few KB, and every structure is proportional to input size.
const fuzzBatchCap = 256 << 10

// decodeChunked runs the incremental batch decoder over the stream cut
// into the given chunks, returning the decoded records and whether the
// stream was rejected (mid-feed or at Finish).
func decodeChunked(data []byte, cuts ...int) ([]trace.Record, bool) {
	var dec convert.BatchDecoder
	var recs []trace.Record
	sink := func(r *trace.Record) error {
		cp := *r
		cp.Args = append([]uint64(nil), r.Args...)
		recs = append(recs, cp)
		return nil
	}
	prev := 0
	for _, c := range append(cuts, len(data)) {
		if c < prev || c > len(data) {
			continue
		}
		if err := dec.Feed(data[prev:c], sink); err != nil {
			return recs, true
		}
		prev = c
	}
	return recs, dec.Finish() != nil
}

// ingestOne drives a full single-node session over the wire bytes:
// data[:cut] as the preamble batch, data[cut:] as the final record
// batch. Returns the session error and the produced file bytes.
func ingestOne(t *testing.T, dir string, data []byte, cut int) (error, []byte) {
	t.Helper()
	sink := &appendSink{}
	m, err := ingest.NewManager(ingest.Config{
		Dir:           dir,
		MaxBatchBytes: fuzzBatchCap + 1,
		QueueRecords:  64,
		GateRecords:   1 << 14,
		Writer:        interval.WriterOptions{FrameBytes: 1024, FramesPerDir: 2},
		Create:        func(string) (ingest.SinkFile, error) { return sink, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Begin("fuzz", 1, interval.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Batch(0, 0, false, data[:cut]); err != nil {
		// A sequencer rejection does not poison the session; make sure
		// Wait cannot block on a forever-gathering state.
		sess.Abort()
	} else if err := sess.Batch(0, 1, true, data[cut:]); err != nil {
		sess.Abort()
	}
	werr := sess.Wait()
	return werr, sink.final()
}

// FuzzIngestBatch: the wire format survives arbitrary inputs at every
// layer, decoding is chunking-invariant, and accepted inputs yield
// valid interval files.
func FuzzIngestBatch(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte("not a trace"), uint16(4))
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte, cut16 uint16) {
		if len(data) > fuzzBatchCap {
			return
		}
		// Preamble scan never panics.
		_, _ = convert.ScanPreamble(data)

		// Chunking invariance: the record stream after the raw header,
		// decoded whole and decoded split at the fuzzed cut, must agree
		// exactly — same records, same accept/reject verdict.
		if len(data) > convert.RawHeaderSize {
			body := data[convert.RawHeaderSize:]
			c := int(cut16) % (len(body) + 1)
			whole, wBad := decodeChunked(body)
			split, sBad := decodeChunked(body, c)
			if wBad != sBad {
				t.Fatalf("chunking changed the verdict: whole bad=%v, split@%d bad=%v", wBad, c, sBad)
			}
			if !wBad && !reflect.DeepEqual(whole, split) {
				t.Fatalf("chunking changed the decode: %d vs %d records", len(whole), len(split))
			}
		}

		// Full pipeline: never panics, and an accepted stream writes a
		// file that opens and validates.
		cut := int(cut16) % (len(data) + 1)
		werr, out := ingestOne(t, dir, data, cut)
		if werr == nil {
			fl, err := interval.ReadHeader(interval.NewSeekBufferFrom(out))
			if err != nil {
				t.Fatalf("accepted ingest produced an unopenable file: %v", err)
			}
			if _, err := fl.Validate(nil); err != nil {
				t.Fatalf("accepted ingest produced an invalid file: %v", err)
			}
		}
	})
}

// --- seed corpus -----------------------------------------------------

var regenCorpus = flag.Bool("regen-corpus", false, "regenerate the checked-in fuzz seed corpus")

// corpusDir is the checked-in seed location for FuzzIngestBatch.
var corpusDir = filepath.Join("testdata", "fuzz", "FuzzIngestBatch")

// TestRegenIngestFuzzCorpus writes real per-node raw streams (plus
// deliberately torn variants) as fuzz seeds, cut at their true preamble
// boundary so mutation starts from the accepting path.
func TestRegenIngestFuzzCorpus(t *testing.T) {
	if !*regenCorpus {
		t.Skip("pass -regen-corpus to regenerate the seed corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte, cut int) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\nuint16(%d)\n", strconv.Quote(string(data)), cut)
		if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Single-node sessions ingest node-0 streams; draw them from two
	// different workloads for variety.
	raws := [][]byte{genRaws(t, 5, 2, 12)[0], genRaws(t, 6, 2, 10)[0]}
	for i, raw := range raws {
		cut := preambleCut(t, raw)
		write(fmt.Sprintf("node0-%c", 'a'+i), raw, cut)
		// Torn stream: the same bytes cut mid-record.
		if len(raw) > cut+9 {
			write(fmt.Sprintf("node0-%c-torn", 'a'+i), raw[:len(raw)-5], cut)
		}
	}
	// Header-only and preamble-only degenerate streams.
	write("header-only", raws[0][:convert.RawHeaderSize], convert.RawHeaderSize)
	write("preamble-only", raws[0][:preambleCut(t, raws[0])], preambleCut(t, raws[0]))
}

// TestIngestFuzzCorpusSeedsValid guards the checked-in corpus against
// rot: every seed must still parse, and the full-stream seeds must
// still drive a complete, validating ingest.
func TestIngestFuzzCorpusSeedsValid(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("seed corpus missing (run -regen-corpus): %v", err)
	}
	full := 0
	for _, e := range entries {
		body, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data, cut := decodeIngestSeed(t, e.Name(), string(body))
		if strings.HasPrefix(e.Name(), "node") && !strings.Contains(e.Name(), "torn") {
			if _, err := convert.ScanPreamble(data[:cut]); err != nil {
				t.Fatalf("seed %s: preamble no longer scans: %v", e.Name(), err)
			}
			werr, out := ingestOne(t, t.TempDir(), data, cut)
			if werr != nil {
				t.Fatalf("seed %s no longer ingests: %v", e.Name(), werr)
			}
			fl, err := interval.ReadHeader(interval.NewSeekBufferFrom(out))
			if err != nil {
				t.Fatalf("seed %s: output does not open: %v", e.Name(), err)
			}
			if _, err := fl.Validate(nil); err != nil {
				t.Fatalf("seed %s: output no longer validates: %v", e.Name(), err)
			}
			full++
		}
	}
	if full < 2 {
		t.Fatalf("corpus has %d full-stream seeds, want >= 2 (rot?)", full)
	}
}

// decodeIngestSeed parses one `go test fuzz v1` seed with a []byte and
// a uint16 value.
func decodeIngestSeed(t *testing.T, name, body string) ([]byte, int) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a 2-value corpus file (%d lines)", name, len(lines))
	}
	const pre, post = "[]byte(", ")"
	bl := lines[1]
	if !strings.HasPrefix(bl, pre) || !strings.HasSuffix(bl, post) {
		t.Fatalf("%s: bad []byte line", name)
	}
	s, err := strconv.Unquote(bl[len(pre) : len(bl)-len(post)])
	if err != nil {
		t.Fatalf("%s: bad quoted literal: %v", name, err)
	}
	cl := lines[2]
	if !strings.HasPrefix(cl, "uint16(") || !strings.HasSuffix(cl, ")") {
		t.Fatalf("%s: bad uint16 line", name)
	}
	cut, err := strconv.Atoi(cl[len("uint16(") : len(cl)-1])
	if err != nil {
		t.Fatalf("%s: bad cut: %v", name, err)
	}
	return []byte(s), cut
}
