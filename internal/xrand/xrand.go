// Package xrand provides a small, fast, deterministic pseudo-random
// number generator used throughout the framework so that every simulated
// run and every experiment is exactly reproducible from an explicit seed.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// public-domain reference algorithms by Blackman and Vigna. It is not
// cryptographically secure and must never be used for security purposes.
package xrand

import "math"

// Rand is a deterministic PRNG. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that any
// seed (including 0) yields a well-mixed initial state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
