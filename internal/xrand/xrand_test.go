package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	// splitmix64 seeding must avoid the all-zero state, which would make
	// xoshiro emit zeros forever.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		n := r.Intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("Intn(17) out of range: %d", n)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		n := r.Int63n(1 << 40)
		if n < 0 || n >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential sample negative: %g", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(64)
		seen := make([]bool, 64)
		for _, v := range p {
			if v < 0 || v >= 64 || seen[v] {
				t.Fatalf("Perm produced invalid permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 100)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	r := New(31)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Distribution(t *testing.T) {
	// Rough bit-balance check: each of the 64 bits should be set about
	// half the time.
	r := New(37)
	const n = 20000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.47 || frac > 0.53 {
			t.Fatalf("bit %d set fraction %g, want ~0.5", b, frac)
		}
	}
}
