package convert

import (
	"bytes"
	"io"
	"os"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/mpisim"
	"tracefw/internal/profile"
	"tracefw/internal/trace"
)

// runWorkload executes main on a fresh in-memory world and returns the
// raw trace bytes per node.
func runWorkload(t *testing.T, nodes, tasksPerNode, cpus int, main func(*mpisim.Proc)) [][]byte {
	t.Helper()
	bufs := make([]*bytes.Buffer, nodes)
	ws := make([]io.Writer, nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       nodes,
			CPUsPerNode: cpus,
			TraceOpts:   trace.Options{Enabled: events.MaskAll},
			Seed:        42,
		},
		TasksPerNode: tasksPerNode,
	}
	w, err := mpisim.New(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(main)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	raws := make([][]byte, nodes)
	for i := range bufs {
		raws[i] = bufs[i].Bytes()
	}
	return raws
}

func convertAll(t *testing.T, raws [][]byte) ([]*interval.File, []*Result) {
	t.Helper()
	outs, results, err := ConvertBuffers(raws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*interval.File, len(outs))
	for i, sb := range outs {
		f, err := interval.ReadHeader(sb)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	return files, results
}

func TestSimpleSendRecvIntervals(t *testing.T) {
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		if p.Rank() == 0 {
			p.Compute(clock.Millisecond)
			p.Send(1, 7, 2048)
		} else {
			p.Recv(0, 7)
		}
	})
	files, results := convertAll(t, raws)

	// Node 0: one MPI_Send interval, uninterrupted -> Complete.
	recs, err := files[0].Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	var sends []interval.Record
	for _, r := range recs {
		if r.Type == events.EvMPISend {
			sends = append(sends, r)
		}
	}
	if len(sends) != 1 || sends[0].Bebits != profile.Complete {
		t.Fatalf("sends: %+v", sends)
	}
	if v, ok := sends[0].Field(events.FieldMsgSizeSent); !ok || v != 2048 {
		t.Fatalf("send msgSizeSent = %d %v", v, ok)
	}
	if v, ok := sends[0].Field(events.FieldPeer); !ok || v != 1 {
		t.Fatalf("send peer = %d %v", v, ok)
	}
	if results[0].Events == 0 || results[0].Records == 0 {
		t.Fatalf("empty result: %+v", results[0])
	}
}

func TestBlockedRecvSplitsIntoPieces(t *testing.T) {
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		if p.Rank() == 0 {
			p.Compute(20 * clock.Millisecond) // make the receiver block
			p.Send(1, 1, 128)
		} else {
			p.Recv(0, 1)
		}
	})
	files, _ := convertAll(t, raws)
	recs, _ := files[1].Scan().All()
	var pieces []interval.Record
	for _, r := range recs {
		if r.Type == events.EvMPIRecv {
			pieces = append(pieces, r)
		}
	}
	// The receive blocks -> thread undispatched -> at least begin + end.
	if len(pieces) < 2 {
		t.Fatalf("recv produced %d pieces, want >= 2: %+v", len(pieces), pieces)
	}
	if pieces[0].Bebits != profile.Begin {
		t.Fatalf("first piece bebits %s", pieces[0].Bebits)
	}
	last := pieces[len(pieces)-1]
	if last.Bebits != profile.End {
		t.Fatalf("last piece bebits %s", last.Bebits)
	}
	for _, mid := range pieces[1 : len(pieces)-1] {
		if mid.Bebits != profile.Continuation {
			t.Fatalf("middle piece bebits %s", mid.Bebits)
		}
	}
	// Only the final piece carries the message size; the sum over pieces
	// equals the message size (the Figure 5 invariant).
	var sum uint64
	for _, r := range pieces {
		v, _ := r.Field(events.FieldMsgSizeRecv)
		sum += v
	}
	if sum != 128 {
		t.Fatalf("msgSizeRecv sum over pieces = %d", sum)
	}
	// Pieces must not overlap and must be ordered.
	for i := 1; i < len(pieces); i++ {
		if pieces[i].Start < pieces[i-1].End() {
			t.Fatalf("pieces overlap: %v then %v", pieces[i-1], pieces[i])
		}
	}
}

func TestRunningStateFillsGaps(t *testing.T) {
	raws := runWorkload(t, 1, 1, 1, func(p *mpisim.Proc) {
		p.Compute(5 * clock.Millisecond)
		p.Barrier() // single-task barrier, instant
		p.Compute(5 * clock.Millisecond)
	})
	files, _ := convertAll(t, raws)
	recs, _ := files[0].Scan().All()
	var running, barrierCalls int
	for _, r := range recs {
		switch r.Type {
		case events.EvRunning:
			running++
		case events.EvMPIBarrier:
			// Count calls, not pieces: a call has exactly one record with
			// a begin edge.
			if r.Bebits == profile.Begin || r.Bebits == profile.Complete {
				barrierCalls++
			}
		}
	}
	if running < 2 {
		t.Fatalf("running pieces = %d, want >= 2 (before and after the barrier)", running)
	}
	if barrierCalls != 1 {
		t.Fatalf("barrier calls = %d", barrierCalls)
	}
}

func TestInnermostPiecesTileDispatchedTime(t *testing.T) {
	// Property: on every thread, the emitted pieces (which describe the
	// innermost active state) never overlap, and they exactly cover the
	// dispatched periods of the thread.
	raws := runWorkload(t, 2, 2, 2, func(p *mpisim.Proc) {
		peer := (p.Rank() + 1) % p.Size()
		m := p.DefineMarker("phase")
		p.InMarker(m, func() {
			for i := 0; i < 5; i++ {
				p.Compute(clock.Millisecond)
				if p.Rank()%2 == 0 {
					p.Send(peer, 1, 4096)
					p.Recv(mpisim.AnySource, 2)
				} else {
					p.Recv(mpisim.AnySource, 1)
					p.Send(peer, 2, 4096)
				}
			}
		})
		p.Barrier()
	})
	files, _ := convertAll(t, raws)
	for n, f := range files {
		recs, err := f.Scan().All()
		if err != nil {
			t.Fatal(err)
		}
		perThread := map[uint16][]interval.Record{}
		for _, r := range recs {
			if r.Type == events.EvGlobalClock {
				continue
			}
			perThread[r.Thread] = append(perThread[r.Thread], r)
		}
		for tid, rs := range perThread {
			// Sort by start; verify no overlaps among pieces.
			byStart := append([]interval.Record(nil), rs...)
			for i := range byStart {
				for j := i + 1; j < len(byStart); j++ {
					if byStart[j].Start < byStart[i].Start {
						byStart[i], byStart[j] = byStart[j], byStart[i]
					}
				}
			}
			for i := 1; i < len(byStart); i++ {
				if byStart[i].Start < byStart[i-1].End() {
					t.Fatalf("node %d thread %d: pieces overlap:\n%v\n%v",
						n, tid, byStart[i-1], byStart[i])
				}
			}
		}
	}
}

func TestMarkerPiecesSplitByMPI(t *testing.T) {
	// Paper §3.3: a marker state containing MPI calls is divided into
	// pieces by the MPI intervals.
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		m := p.DefineMarker("outer")
		p.MarkerBegin(m)
		p.Compute(clock.Millisecond)
		p.Barrier()
		p.Compute(clock.Millisecond)
		p.MarkerEnd(m)
	})
	files, _ := convertAll(t, raws)
	recs, _ := files[0].Scan().All()
	var marker []interval.Record
	for _, r := range recs {
		if r.Type == events.EvMarkerState {
			marker = append(marker, r)
		}
	}
	if len(marker) < 2 {
		t.Fatalf("marker state has %d pieces, want >= 2 (split by barrier)", len(marker))
	}
	if marker[0].Bebits != profile.Begin || marker[len(marker)-1].Bebits != profile.End {
		t.Fatalf("marker bebits: first %s last %s", marker[0].Bebits, marker[len(marker)-1].Bebits)
	}
	// End piece carries begin addr, end addr and the global marker id.
	last := marker[len(marker)-1]
	if v, _ := last.Field(events.FieldMarker); v == 0 {
		t.Fatal("marker id missing on end piece")
	}
	if v, _ := last.Field(events.FieldEndAddr); v == 0 {
		t.Fatal("endAddr missing on end piece")
	}
}

func TestMarkerIDReassignment(t *testing.T) {
	// Tasks define the same strings in different orders; after convert,
	// the same string must map to the same global id everywhere.
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		var a, b uint64
		if p.Rank() == 0 {
			a = p.DefineMarker("Initial Phase")
			b = p.DefineMarker("Compute Phase")
		} else {
			b = p.DefineMarker("Compute Phase")
			a = p.DefineMarker("Initial Phase")
		}
		p.InMarker(a, func() { p.Compute(clock.Millisecond) })
		p.InMarker(b, func() { p.Compute(clock.Millisecond) })
	})
	files, _ := convertAll(t, raws)

	idOf := func(f *interval.File, name string) uint64 {
		for id, s := range f.Header.Markers {
			if s == name {
				return id
			}
		}
		return 0
	}
	for _, name := range []string{"Initial Phase", "Compute Phase"} {
		id0, id1 := idOf(files[0], name), idOf(files[1], name)
		if id0 == 0 || id0 != id1 {
			t.Fatalf("marker %q ids differ across files: %d vs %d", name, id0, id1)
		}
	}
	// And the records reference the global ids, in both files.
	for fi, f := range files {
		recs, _ := f.Scan().All()
		seen := map[uint64]bool{}
		for _, r := range recs {
			if r.Type == events.EvMarkerState && (r.Bebits == profile.End || r.Bebits == profile.Complete) {
				id, _ := r.Field(events.FieldMarker)
				seen[id] = true
				if _, ok := f.Header.Markers[id]; !ok {
					t.Fatalf("file %d: marker record references unknown id %d", fi, id)
				}
			}
		}
		if len(seen) != 2 {
			t.Fatalf("file %d: saw marker ids %v", fi, seen)
		}
	}
}

func TestClockPairsCarriedThrough(t *testing.T) {
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		p.Compute(2500 * clock.Millisecond)
	})
	files, results := convertAll(t, raws)
	for n, f := range files {
		recs, _ := f.Scan().All()
		var pairs []clock.Pair
		for _, r := range recs {
			if r.Type == events.EvGlobalClock {
				g, _ := r.Field(events.FieldGlobal)
				pairs = append(pairs, clock.Pair{Global: clock.Time(g), Local: r.Start})
				if r.Dura != 0 {
					t.Fatalf("clock record with duration %v", r.Dura)
				}
			}
		}
		if len(pairs) < 3 {
			t.Fatalf("node %d: %d clock pairs in interval file", n, len(pairs))
		}
		if len(pairs) != len(results[n].ClockPairs) {
			t.Fatalf("node %d: result has %d pairs, file has %d", n, len(results[n].ClockPairs), len(pairs))
		}
		for i := range pairs {
			if pairs[i] != results[n].ClockPairs[i] {
				t.Fatalf("node %d pair %d mismatch", n, i)
			}
		}
	}
}

func TestThreadTableBuilt(t *testing.T) {
	raws := runWorkload(t, 1, 2, 4, func(p *mpisim.Proc) {
		p.Spawn(events.ThreadUser, func(q *mpisim.Proc) { q.Compute(clock.Millisecond) })
		p.Compute(clock.Millisecond)
		p.Barrier()
	})
	files, _ := convertAll(t, raws)
	th := files[0].Header.Threads
	if len(th) != 4 { // 2 tasks × (main + user)
		t.Fatalf("thread table has %d entries: %+v", len(th), th)
	}
	mpi, user := 0, 0
	for _, te := range th {
		switch te.Type {
		case events.ThreadMPI:
			mpi++
		case events.ThreadUser:
			user++
		}
		if te.Node != 0 {
			t.Fatalf("thread entry node %d", te.Node)
		}
	}
	if mpi != 2 || user != 2 {
		t.Fatalf("mpi=%d user=%d", mpi, user)
	}
	// LTIDs dense and sorted.
	for i, te := range th {
		if int(te.LTID) != i {
			t.Fatalf("thread table not sorted by LTID: %+v", th)
		}
	}
}

func TestCountMPICallsViaBebits(t *testing.T) {
	// Paper: "This type information allows us to properly count MPI
	// calls" — count records with a begin edge (Begin or Complete).
	const iters = 7
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		for i := 0; i < iters; i++ {
			if p.Rank() == 0 {
				p.Send(1, 1, 100<<10) // rendezvous: sender blocks, splits
			} else {
				p.Compute(2 * clock.Millisecond)
				p.Recv(0, 1)
			}
		}
	})
	files, _ := convertAll(t, raws)
	count := 0
	recs, _ := files[0].Scan().All()
	for _, r := range recs {
		if r.Type == events.EvMPISend && (r.Bebits == profile.Begin || r.Bebits == profile.Complete) {
			count++
		}
	}
	if count != iters {
		t.Fatalf("counted %d MPI_Send calls, want %d", count, iters)
	}
}

func TestConvertDeterministic(t *testing.T) {
	raws := runWorkload(t, 2, 2, 2, func(p *mpisim.Proc) {
		p.Alltoall(1024)
		p.Compute(clock.Millisecond)
		p.Allreduce(64)
	})
	out1, _, err := ConvertBuffers(raws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := ConvertBuffers(raws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out1 {
		if !bytes.Equal(out1[i].Bytes(), out2[i].Bytes()) {
			t.Fatalf("node %d: conversion not deterministic", i)
		}
	}
}

func TestEndTimeOrderingHolds(t *testing.T) {
	raws := runWorkload(t, 2, 2, 2, func(p *mpisim.Proc) {
		peer := (p.Rank() + 1) % p.Size()
		for i := 0; i < 20; i++ {
			p.Isend(peer, int32(i), 256)
			p.Recv(mpisim.AnySource, int32(i))
		}
		p.Barrier()
	})
	files, _ := convertAll(t, raws)
	for n, f := range files {
		recs, err := f.Scan().All()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].End() < recs[i-1].End() {
				t.Fatalf("node %d: record %d end %v < previous %v", n, i, recs[i].End(), recs[i-1].End())
			}
		}
	}
}

func TestMarkerRegistrySharedAcrossFiles(t *testing.T) {
	reg := NewMarkerRegistry()
	if reg.ID("a") != 1 || reg.ID("b") != 2 || reg.ID("a") != 1 {
		t.Fatal("registry ids not stable")
	}
	tbl := reg.Table()
	if tbl[1] != "a" || tbl[2] != "b" {
		t.Fatalf("table: %v", tbl)
	}
}

func TestConvertFilesOnDisk(t *testing.T) {
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, 64)
		} else {
			p.Recv(0, 1)
		}
	})
	dir := t.TempDir()
	rawPaths := make([]string, 2)
	outPaths := make([]string, 2)
	for i := range raws {
		rawPaths[i] = dir + "/raw." + string(rune('0'+i))
		outPaths[i] = dir + "/iv." + string(rune('0'+i))
		if err := writeFile(rawPaths[i], raws[i]); err != nil {
			t.Fatal(err)
		}
	}
	results, err := ConvertAll(rawPaths, outPaths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	f, err := interval.Open(outPaths[1])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.Scan().All()
	if err != nil || len(recs) == 0 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func writeFile(path string, b []byte) error {
	sb := interval.NewSeekBuffer()
	_, _ = sb.Write(b)
	return osWriteFile(path, sb.Bytes())
}

func osWriteFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

func TestIOIntervalsSplitAndPageMiss(t *testing.T) {
	// A blocking file read is undispatched mid-call: its interval splits
	// into pieces like a blocking MPI call; page misses become
	// zero-duration complete intervals.
	raws := runWorkload(t, 1, 1, 1, func(p *mpisim.Proc) {
		p.FileRead(1 << 20)
		p.PageMiss(0x1000)
		p.PageMiss(0x2000)
		p.Compute(clock.Millisecond)
	})
	files, _ := convertAll(t, raws)
	recs, _ := files[0].Scan().All()
	var ioPieces []interval.Record
	misses := 0
	for _, r := range recs {
		switch r.Type {
		case events.EvIORead:
			ioPieces = append(ioPieces, r)
		case events.EvPageMiss:
			misses++
			if r.Dura != 0 || r.Bebits != profile.Complete {
				t.Fatalf("page miss not a zero-duration complete: %v", r)
			}
		}
	}
	if len(ioPieces) < 2 {
		t.Fatalf("IO_Read pieces: %d, want >= 2 (split across the block)", len(ioPieces))
	}
	if ioPieces[0].Bebits != profile.Begin || ioPieces[len(ioPieces)-1].Bebits != profile.End {
		t.Fatalf("IO piece bebits: %v .. %v", ioPieces[0].Bebits, ioPieces[len(ioPieces)-1].Bebits)
	}
	var bytesSum uint64
	for _, r := range ioPieces {
		v, _ := r.Field(events.FieldIOBytes)
		bytesSum += v
	}
	if bytesSum != 1<<20 {
		t.Fatalf("ioBytes sum over pieces = %d", bytesSum)
	}
	if misses != 2 {
		t.Fatalf("page misses: %d", misses)
	}
}

func TestTolerantConvertOfWrappedTrace(t *testing.T) {
	// A wrap-mode trace starts mid-stream: entries/dispatches of open
	// states were evicted. Tolerant conversion must succeed, skip the
	// orphans, and keep the retained window's structure intact.
	bufs := make([]*bytes.Buffer, 2)
	ws := make([]io.Writer, 2)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       2,
			CPUsPerNode: 2,
			TraceOpts:   trace.Options{Enabled: events.MaskAll, Wrap: true, BufferSize: 4096},
			Seed:        42,
		},
		TasksPerNode: 1,
	}
	w, err := mpisim.New(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(func(p *mpisim.Proc) {
		m := p.DefineMarker("long phase")
		p.MarkerBegin(m)
		peer := 1 - p.Rank()
		for i := 0; i < 200; i++ {
			p.Compute(clock.Millisecond)
			if p.Rank() == 0 {
				p.Send(peer, int32(i), 256)
				p.Recv(int32(peer), int32(i))
			} else {
				p.Recv(int32(peer), int32(i))
				p.Send(peer, int32(i), 256)
			}
		}
		p.MarkerEnd(m)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	raws := [][]byte{bufs[0].Bytes(), bufs[1].Bytes()}

	// Strict conversion fails on the mid-stream trace.
	if _, _, err := ConvertBuffers(raws, Options{}); err == nil {
		t.Fatal("strict conversion of a wrapped trace unexpectedly succeeded")
	}

	// Tolerant conversion succeeds and reports skips.
	outs, results, err := ConvertBuffers(raws, Options{Tolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	var skipped int64
	for _, r := range results {
		skipped += r.Skipped
	}
	if skipped == 0 {
		t.Fatal("tolerant conversion of a wrapped trace skipped nothing")
	}
	// The outputs are structurally valid end-time-ordered interval files.
	for i, sb := range outs {
		f, err := interval.ReadHeader(sb)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Validate(profile.Standard()); err != nil {
			t.Fatalf("output %d invalid: %v", i, err)
		}
	}
}
