package convert

import (
	"bytes"
	"fmt"

	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/trace"
)

// Streaming conversion: the ingest path feeds raw events one at a time
// instead of handing over whole files. The interval-file header (thread
// table, marker table) must be written before any record, so streaming
// imposes a preamble contract on each node's event stream: the first
// batch carries the raw trace header, every EvThreadInfo record, and
// every EvMarkerDefine string the node will ever use. ScanPreamble
// extracts those tables with exactly the same rules as the batch table
// pass (scanTables), so a stream that honors the contract converts to
// byte-identical records.

// Preamble holds the tables extracted from a node's first batch.
type Preamble struct {
	Node    int
	Threads []interval.ThreadEntry
	// Defines lists the distinct marker strings in first-seen order —
	// the order the batch pipeline's canonicalization assigns global
	// identifiers in (node-then-first-seen across nodes).
	Defines []string
}

// ScanPreamble parses a node's complete first batch — the raw trace
// header followed by whole event records — and extracts its thread and
// marker tables. A batch that does not end on a record boundary is
// rejected: the preamble must be self-contained so the header barrier
// can run before any later batch arrives.
func ScanPreamble(batch []byte) (*Preamble, error) {
	tp, err := scanTables(bytes.NewReader(batch))
	if err != nil {
		return nil, fmt.Errorf("convert: preamble: %w", err)
	}
	if len(tp.placeholders) != 0 {
		return nil, fmt.Errorf("convert: preamble uses %d markers before their definitions", len(tp.placeholders))
	}
	return &Preamble{Node: tp.node, Threads: tp.threads, Defines: tp.defines}, nil
}

// Stream converts one node's raw events incrementally. Records emitted
// by the conversion go to sink in end-time order (local clock). The
// caller must have assigned global identifiers for every preamble
// define string (for all nodes, in node order) before the first Event —
// the header barrier — because the registry is frozen from then on.
type Stream struct {
	c converter
}

// NewStream builds a streaming converter from a node's preamble. The
// registry must already hold identifiers for pre.Defines.
func NewStream(pre *Preamble, markers *MarkerRegistry, sink func(*interval.Record) error) (*Stream, error) {
	for _, s := range pre.Defines {
		if _, ok := markers.Lookup(s); !ok {
			return nil, fmt.Errorf("convert: stream for node %d: marker %q not assigned at the header barrier", pre.Node, s)
		}
	}
	s := &Stream{c: converter{
		node:        pre.Node,
		sink:        sink,
		markers:     markers,
		threads:     make(map[int32]*threadState),
		localMarker: make(map[[2]int64]uint64),
		lastTime:    -1 << 62,
		lastEmitEnd: -1 << 62,
		res:         Result{Node: pre.Node},
	}}
	for _, te := range pre.Threads {
		s.c.threads[int32(te.LTID)] = &threadState{tid: int32(te.LTID), task: te.Task}
	}
	return s, nil
}

// Event converts one raw record. Beyond the batch converter's rules it
// enforces the streaming contract: no thread and no marker string may
// appear that the preamble (and with it the already-written header) did
// not declare.
func (s *Stream) Event(rec *trace.Record) error {
	switch rec.Type {
	case events.EvThreadInfo:
		if _, ok := s.c.threads[rec.TID]; !ok {
			return fmt.Errorf("convert: stream: thread %d introduced after the preamble", rec.TID)
		}
	case events.EvMarkerDefine:
		if _, ok := s.c.markers.Lookup(rec.Str); !ok {
			return fmt.Errorf("convert: stream: marker %q introduced after the preamble", rec.Str)
		}
	default:
		if rec.TID >= 0 {
			// The batch table pass synthesizes entries for threads seen
			// anywhere in the trace; a stream can only honor that for
			// threads seen in the preamble batch.
			if _, ok := s.c.threads[rec.TID]; !ok {
				return fmt.Errorf("convert: stream: record on thread %d unknown to the preamble", rec.TID)
			}
		}
	}
	s.c.res.Events++
	return s.c.event(rec)
}

// Finish closes the states of threads still live when the stream ends,
// exactly as the batch converter does at end of trace.
func (s *Stream) Finish() error { return s.c.finish() }

// Result summarizes the conversion so far. The ClockPairs carry the raw
// local readings of every global-clock record processed.
func (s *Stream) Result() *Result { return &s.c.res }

// RawHeaderSize is the length of the raw trace header that opens every
// node's preamble batch.
const RawHeaderSize = trace.RawHeaderSize

// maxRawRecord bounds a single encoded raw event record: the fixed
// header, the largest possible argument block (the 12-bit nargs field),
// and a maximal length-prefixed string.
const maxRawRecord = 16 + 8*4095 + 2 + 65535

// BatchDecoder incrementally splits a node's post-preamble byte stream
// into raw records. Batches need not align with record boundaries; the
// trailing partial record is buffered until the next batch arrives.
type BatchDecoder struct {
	rem []byte
}

// Feed appends one batch and invokes fn for every complete record now
// available. A malformed stream — a record that stays undecodable after
// more than the maximum encoded record size has been buffered — or an
// fn error stops the decode and is returned.
func (d *BatchDecoder) Feed(batch []byte, fn func(*trace.Record) error) error {
	b := batch
	if len(d.rem) > 0 {
		b = append(d.rem, batch...)
	}
	for len(b) > 0 {
		rec, n, err := trace.Decode(b)
		if err != nil {
			if len(b) > maxRawRecord {
				return fmt.Errorf("convert: undecodable event record (%d bytes buffered): %w", len(b), err)
			}
			break // truncated: wait for the next batch
		}
		b = b[n:]
		if err := fn(&rec); err != nil {
			return err
		}
	}
	d.rem = append(d.rem[:0], b...)
	return nil
}

// Buffered returns how many bytes of a partial trailing record are
// waiting for the next batch.
func (d *BatchDecoder) Buffered() int { return len(d.rem) }

// Finish reports whether the stream ended cleanly on a record boundary.
func (d *BatchDecoder) Finish() error {
	if len(d.rem) != 0 {
		return fmt.Errorf("convert: stream ended mid-record (%d trailing bytes)", len(d.rem))
	}
	return nil
}

// SplitPreamble validates that a first batch opens with the raw trace
// header and returns the records portion. It does not parse records —
// ScanPreamble does — but gives ingest a cheap early rejection for
// batches that cannot possibly be a preamble.
func SplitPreamble(batch []byte) (node int, records []byte, err error) {
	rd, err := trace.NewReader(bytes.NewReader(batch))
	if err != nil {
		return 0, nil, err
	}
	return rd.Info.Node, batch[RawHeaderSize:], nil
}
