package convert

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"

	"tracefw/internal/interval"
	"tracefw/internal/par"
)

// ConvertFile converts one raw trace file on disk into one interval file.
func ConvertFile(rawPath, outPath string, opts Options) (*Result, error) {
	src, err := os.Open(rawPath)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	dst, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	res, err := Convert(src, dst, opts)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	return res, err
}

// convertMany is the deterministic parallel conversion core shared by
// ConvertAll and ConvertBuffers. It runs in two phases around a
// canonicalization barrier:
//
//  1. Table pass (parallel): every input is scanned once for its node
//     id, thread table, and ordered marker strings. Two inputs claiming
//     the same node are rejected — they would target the same output.
//  2. Marker canonicalization (sequential, node order): identifiers are
//     assigned by walking the inputs in ascending node order and taking
//     each file's defines, then its tolerant-mode placeholders, in
//     first-seen order. This is precisely the assignment a sequential
//     ConvertFile loop over node-sorted inputs produces, so every
//     output file — header marker tables included — is byte-identical
//     to that loop's, regardless of worker schedule or input order.
//  3. Record pass (parallel): each input is converted with the frozen
//     registry; workers only read identifiers, never assign them.
//
// openSrc may be called twice per input (once per pass); results[i]
// always corresponds to input i. describe names an input in errors.
func convertMany(
	n int,
	openSrc func(i int) (io.ReadSeeker, io.Closer, error),
	openDst func(i int) (io.WriteSeeker, io.Closer, error),
	describe func(i int) string,
	opts Options,
) ([]*Result, error) {
	markers := opts.Markers
	if markers == nil {
		markers = NewMarkerRegistry()
	}
	workers := par.Workers(opts.Parallel, n)

	// Phase 1: parallel table pass.
	tps := make([]*tablePass, n)
	err := par.Do(n, workers, func(i int) error {
		src, closer, err := openSrc(i)
		if err != nil {
			return fmt.Errorf("convert: %s: %w", describe(i), err)
		}
		tp, err := scanTables(src)
		if closer != nil {
			if cerr := closer.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("convert: %s: %w", describe(i), err)
		}
		tps[i] = tp
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: canonical marker assignment in node order, snapshotting
	// the header table each file would have seen from a sequential loop
	// (markers known after its own table pass, before its record pass).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tps[order[a]].node < tps[order[b]].node })
	seenNode := map[int]int{}
	for _, i := range order {
		if j, dup := seenNode[tps[i].node]; dup {
			return nil, fmt.Errorf("convert: inputs %s and %s both claim node %d; each node must be converted exactly once",
				describe(j), describe(i), tps[i].node)
		}
		seenNode[tps[i].node] = i
	}
	hdrs := make([]map[uint64]string, n)
	for _, i := range order {
		for _, s := range tps[i].defines {
			markers.ID(s)
		}
		hdrs[i] = markers.Table()
		if opts.Tolerant {
			for _, s := range tps[i].placeholders {
				markers.ID(s)
			}
		}
	}

	// Phase 3: parallel record pass against the frozen registry.
	results := make([]*Result, n)
	err = par.Do(n, workers, func(i int) error {
		src, srcCloser, err := openSrc(i)
		if err != nil {
			return fmt.Errorf("convert: %s: %w", describe(i), err)
		}
		defer func() {
			if srcCloser != nil {
				srcCloser.Close()
			}
		}()
		dst, dstCloser, err := openDst(i)
		if err != nil {
			return fmt.Errorf("convert: %s: %w", describe(i), err)
		}
		res, err := convertRecords(src, dst, opts, tps[i], markers, hdrs[i])
		if dstCloser != nil {
			if cerr := dstCloser.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("convert: %s: %w", describe(i), err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ConvertAll converts a run's raw trace files (rawPaths[i] → outPaths[i])
// sharing one marker registry, so the same marker string receives the
// same global identifier in every output file. Conversions fan out over
// a bounded worker pool (Options.Parallel; 0 = GOMAXPROCS); the outputs
// are byte-identical to a sequential ConvertFile loop over the same
// inputs sorted by node id, whatever the input order or worker count.
func ConvertAll(rawPaths, outPaths []string, opts Options) ([]*Result, error) {
	if len(rawPaths) != len(outPaths) {
		return nil, fmt.Errorf("convert: %d inputs, %d outputs", len(rawPaths), len(outPaths))
	}
	return convertMany(len(rawPaths),
		func(i int) (io.ReadSeeker, io.Closer, error) {
			f, err := os.Open(rawPaths[i])
			return f, f, err
		},
		func(i int) (io.WriteSeeker, io.Closer, error) {
			f, err := os.Create(outPaths[i])
			return f, f, err
		},
		func(i int) string { return rawPaths[i] },
		opts)
}

// ConvertBuffers converts in-memory raw traces, returning the interval
// files as SeekBuffers; used by tests and the in-memory pipeline. It
// shares ConvertAll's deterministic parallel core.
func ConvertBuffers(raws [][]byte, opts Options) ([]*interval.SeekBuffer, []*Result, error) {
	outs := make([]*interval.SeekBuffer, len(raws))
	results, err := convertMany(len(raws),
		func(i int) (io.ReadSeeker, io.Closer, error) {
			return bytes.NewReader(raws[i]), nil, nil
		},
		func(i int) (io.WriteSeeker, io.Closer, error) {
			outs[i] = interval.NewSeekBuffer()
			return outs[i], nil, nil
		},
		func(i int) string { return fmt.Sprintf("buffer %d", i) },
		opts)
	if err != nil {
		return nil, nil, err
	}
	return outs, results, nil
}
