package convert

import (
	"fmt"
	"os"

	"tracefw/internal/interval"
)

// ConvertFile converts one raw trace file on disk into one interval file.
func ConvertFile(rawPath, outPath string, opts Options) (*Result, error) {
	src, err := os.Open(rawPath)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	dst, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	res, err := Convert(src, dst, opts)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	return res, err
}

// ConvertAll converts a run's raw trace files (rawPaths[i] → outPaths[i])
// sharing one marker registry, so the same marker string receives the
// same global identifier in every output file.
func ConvertAll(rawPaths, outPaths []string, opts Options) ([]*Result, error) {
	if len(rawPaths) != len(outPaths) {
		return nil, fmt.Errorf("convert: %d inputs, %d outputs", len(rawPaths), len(outPaths))
	}
	if opts.Markers == nil {
		opts.Markers = NewMarkerRegistry()
	}
	results := make([]*Result, 0, len(rawPaths))
	for i := range rawPaths {
		r, err := ConvertFile(rawPaths[i], outPaths[i], opts)
		if err != nil {
			return results, fmt.Errorf("convert: %s: %w", rawPaths[i], err)
		}
		results = append(results, r)
	}
	return results, nil
}

// ConvertBuffers converts in-memory raw traces, returning the interval
// files as SeekBuffers; used by tests and the in-memory pipeline.
func ConvertBuffers(raws [][]byte, opts Options) ([]*interval.SeekBuffer, []*Result, error) {
	if opts.Markers == nil {
		opts.Markers = NewMarkerRegistry()
	}
	var outs []*interval.SeekBuffer
	var results []*Result
	for i, raw := range raws {
		src := interval.NewSeekBuffer()
		if _, err := src.Write(raw); err != nil {
			return nil, nil, err
		}
		dst := interval.NewSeekBuffer()
		res, err := Convert(src, dst, opts)
		if err != nil {
			return outs, results, fmt.Errorf("convert: buffer %d: %w", i, err)
		}
		outs = append(outs, dst)
		results = append(results, res)
	}
	return outs, results, nil
}
