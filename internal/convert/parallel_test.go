package convert

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/mpisim"
	"tracefw/internal/trace"
	"tracefw/internal/xrand"
)

// sequentialConvert is the reference implementation the parallel path
// must reproduce byte-for-byte: a plain Convert loop over the inputs in
// the given order, sharing one marker registry.
func sequentialConvert(t *testing.T, raws [][]byte, opts Options) [][]byte {
	t.Helper()
	opts.Markers = NewMarkerRegistry()
	opts.Parallel = 1
	outs := make([][]byte, len(raws))
	for i, raw := range raws {
		sb := interval.NewSeekBuffer()
		if _, err := Convert(bytes.NewReader(raw), sb, opts); err != nil {
			t.Fatalf("sequential convert of input %d: %v", i, err)
		}
		outs[i] = sb.Bytes()
	}
	return outs
}

// markerWorkload produces per-node raw traces whose conversion assigns
// marker ids: tasks define overlapping marker sets in rank-dependent
// orders, so id assignment is sensitive to processing order.
func markerWorkload(t *testing.T, nodes int) [][]byte {
	t.Helper()
	return runWorkload(t, nodes, 2, 2, func(p *mpisim.Proc) {
		names := []string{"setup", "exchange", "solve", "io"}
		ids := make([]uint64, len(names))
		for k := range names {
			// Rank-dependent definition order.
			j := (k + p.Rank()) % len(names)
			ids[j] = p.DefineMarker(names[j])
		}
		peer := (p.Rank() + 1) % p.Size()
		p.InMarker(ids[0], func() { p.Compute(clock.Millisecond) })
		p.InMarker(ids[1], func() {
			if p.Rank()%2 == 0 {
				p.Send(peer, 1, 1024)
				p.Recv(mpisim.AnySource, 2)
			} else {
				p.Recv(mpisim.AnySource, 1)
				p.Send(peer, 2, 1024)
			}
		})
		p.InMarker(ids[2], func() { p.Compute(2 * clock.Millisecond) })
		p.Barrier()
	})
}

// TestConvertAllShuffledByteIdentical: converting the inputs in any
// order, with any worker count, produces outputs byte-identical (headers
// and marker tables included) to the sequential Convert loop over the
// inputs sorted by node.
func TestConvertAllShuffledByteIdentical(t *testing.T) {
	const nodes = 5
	raws := markerWorkload(t, nodes) // raws[i] is node i
	want := sequentialConvert(t, raws, Options{})

	rng := xrand.New(7)
	for trial := 0; trial < 6; trial++ {
		perm := rng.Perm(nodes)
		shuffled := make([][]byte, nodes)
		for i, p := range perm {
			shuffled[i] = raws[p]
		}
		for _, workers := range []int{0, 1, 3, 8} {
			outs, results, err := ConvertBuffers(shuffled, Options{Parallel: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i, p := range perm {
				if results[i] == nil {
					t.Fatalf("trial %d workers %d: missing result %d", trial, workers, i)
				}
				if !bytes.Equal(outs[i].Bytes(), want[p]) {
					t.Fatalf("trial %d workers %d: output for node %d (input slot %d) differs from sequential reference",
						trial, workers, p, i)
				}
			}
		}
	}
}

// TestConvertAllMarkerTablesIdentical: the header marker tables of the
// parallel conversion match the sequential run exactly, id for id.
func TestConvertAllMarkerTablesIdentical(t *testing.T) {
	const nodes = 4
	raws := markerWorkload(t, nodes)
	want := sequentialConvert(t, raws, Options{})

	// Reverse input order, maximum parallelism.
	rev := make([][]byte, nodes)
	for i := range raws {
		rev[i] = raws[nodes-1-i]
	}
	outs, _, err := ConvertBuffers(rev, Options{Parallel: nodes})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		node := nodes - 1 - i
		got, err := interval.ReadHeader(outs[i])
		if err != nil {
			t.Fatal(err)
		}
		ref, err := interval.ReadHeader(interval.NewSeekBufferFrom(want[node]))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Header.Markers) != len(ref.Header.Markers) {
			t.Fatalf("node %d: marker table size %d, want %d", node, len(got.Header.Markers), len(ref.Header.Markers))
		}
		for id, s := range ref.Header.Markers {
			if got.Header.Markers[id] != s {
				t.Fatalf("node %d: marker id %d = %q, want %q", node, id, got.Header.Markers[id], s)
			}
		}
	}
}

// TestConvertDuplicateNodeRejected: two inputs claiming the same node
// must fail with a clear error instead of silently overwriting one
// output with the other.
func TestConvertDuplicateNodeRejected(t *testing.T) {
	raws := runWorkload(t, 2, 1, 1, func(p *mpisim.Proc) {
		p.Compute(clock.Millisecond)
		p.Barrier()
	})
	dup := [][]byte{raws[0], raws[1], raws[0]}
	_, _, err := ConvertBuffers(dup, Options{})
	if err == nil {
		t.Fatal("duplicate-node conversion unexpectedly succeeded")
	}
	if !strings.Contains(err.Error(), "both claim node 0") {
		t.Fatalf("duplicate-node error does not name the node: %v", err)
	}
}

// TestTolerantParallelMatchesSequential: wrap-mode traces exercise the
// placeholder-marker path; the parallel prepass discovery must assign
// the same placeholder ids the sequential record pass did.
func TestTolerantParallelMatchesSequential(t *testing.T) {
	const nodes = 2
	bufs := make([]*bytes.Buffer, nodes)
	ws := make([]io.Writer, nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       nodes,
			CPUsPerNode: 2,
			TraceOpts:   trace.Options{Enabled: events.MaskAll, Wrap: true, BufferSize: 4096},
			Seed:        42,
		},
		TasksPerNode: 1,
	}
	w, err := mpisim.New(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(func(p *mpisim.Proc) {
		m := p.DefineMarker("long phase")
		p.MarkerBegin(m)
		peer := 1 - p.Rank()
		for i := 0; i < 200; i++ {
			p.Compute(clock.Millisecond)
			if p.Rank() == 0 {
				p.Send(peer, int32(i), 256)
				p.Recv(int32(peer), int32(i))
			} else {
				p.Recv(int32(peer), int32(i))
				p.Send(peer, int32(i), 256)
			}
		}
		p.MarkerEnd(m)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	raws := [][]byte{bufs[0].Bytes(), bufs[1].Bytes()}

	want := sequentialConvert(t, raws, Options{Tolerant: true})
	rev := [][]byte{raws[1], raws[0]}
	outs, _, err := ConvertBuffers(rev, Options{Tolerant: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		node := 1 - i
		if !bytes.Equal(outs[i].Bytes(), want[node]) {
			t.Fatalf("tolerant parallel output for node %d differs from sequential reference", node)
		}
	}
}
