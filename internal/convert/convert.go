// Package convert implements the paper's convert utility (§3.1): it
// turns a set of per-node raw event trace files into per-node interval
// files. A begin event is matched with its end event to create an
// interval; if other events intervene — thread dispatch events, user
// marker events, nested MPI calls — the interval is divided into
// multiple pieces typed by bebits (begin / continuation / end /
// complete). The converter also synthesizes the default Running state
// for dispatched time outside any MPI routine or marker region, carries
// global-clock pair records into the interval file for the merge
// utility, and re-assigns globally unique identifiers to user marker
// strings across all tasks.
package convert

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/trace"
)

// MarkerRegistry assigns globally unique marker identifiers to marker
// strings across every trace file of a run. Identifiers start at 1 in
// first-seen order. The registry is safe for concurrent use; the
// parallel conversion path pre-assigns every identifier in a canonical
// order before workers start, so identifiers never depend on goroutine
// schedule.
type MarkerRegistry struct {
	mu   sync.Mutex
	ids  map[string]uint64
	strs map[uint64]string
}

// NewMarkerRegistry returns an empty registry.
func NewMarkerRegistry() *MarkerRegistry {
	return &MarkerRegistry{ids: make(map[string]uint64), strs: make(map[uint64]string)}
}

// ID returns the global identifier for a marker string, assigning the
// next one on first sight.
func (m *MarkerRegistry) ID(s string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.ids[s]; ok {
		return id
	}
	id := uint64(len(m.ids) + 1)
	m.ids[s] = id
	m.strs[id] = s
	return id
}

// Lookup returns the identifier already assigned to a marker string,
// without assigning one. Streaming ingest uses it to enforce the frozen
// post-barrier registry: a define for an unknown string must be
// rejected, not assigned an id the already-written header lacks.
func (m *MarkerRegistry) Lookup(s string) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.ids[s]
	return id, ok
}

// Len returns how many marker strings have been assigned identifiers.
func (m *MarkerRegistry) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ids)
}

// Table returns a copy of the id → string table for interval headers.
func (m *MarkerRegistry) Table() map[uint64]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint64]string, len(m.strs))
	for k, v := range m.strs {
		out[k] = v
	}
	return out
}

// Options configures a conversion.
type Options struct {
	Writer interval.WriterOptions
	// Markers shares global marker identifiers across the files of one
	// run; nil creates a private registry.
	Markers *MarkerRegistry
	// Tolerant accepts traces that start mid-stream (the facility's wrap
	// mode evicts the oldest records): unmatched exits, undispatches of
	// never-dispatched threads, and marker events whose definitions were
	// evicted are skipped and counted instead of failing the conversion.
	Tolerant bool
	// Parallel bounds the worker pool of ConvertAll and ConvertBuffers:
	// 0 means runtime.GOMAXPROCS(0), 1 forces the sequential path, and
	// any value is capped by the input count. Outputs are byte-identical
	// at every setting: marker identifiers are canonicalized in
	// node-then-first-seen order before the record pass starts.
	Parallel int
	// headerMarkers, when non-nil, overrides the marker table written to
	// this file's header. ConvertAll uses it to reproduce, under any
	// worker schedule, exactly the tables a sequential node-order
	// ConvertFile loop would have written.
	headerMarkers map[uint64]string
}

// Result summarizes one converted file.
type Result struct {
	Node       int
	Events     int64 // raw event records processed
	Records    int64 // interval records emitted
	Skipped    int64 // events skipped in tolerant mode
	ClockPairs []clock.Pair
}

// openState is one entry of a thread's state stack. Only the top state
// accumulates time; the states below are suspended, their current pieces
// already emitted.
type openState struct {
	ty         events.Type
	pieces     int // pieces emitted so far
	pieceStart clock.Time
	extra      []uint64 // known extras; zero until the closing event for MPI
	vec        []uint64 // trailing vector field (final piece only)
	markerID   uint64   // task-local marker id (marker states)
}

type threadState struct {
	tid        int32
	cpu        uint16
	dispatched bool
	stack      []*openState
	task       int32 // MPI task, -1 unknown/non-MPI
}

type converter struct {
	node int
	// sink receives every emitted interval record in end-time order. The
	// batch path points it at an interval.Writer's Add; the streaming
	// path (Stream) at the ingest pipeline's adjust-and-enqueue stage.
	sink     func(*interval.Record) error
	markers  *MarkerRegistry
	tolerant bool
	threads  map[int32]*threadState
	// localMarker maps (task, task-local id) -> global id.
	localMarker map[[2]int64]uint64
	lastTime    clock.Time // latest local timestamp processed
	lastEmitEnd clock.Time // end time of the last emitted record
	res         Result
}

// markerEv is one marker-relevant raw event retained by the table pass
// so the tolerant-mode placeholder markers can be discovered (and
// assigned identifiers) before the record pass runs.
type markerEv struct {
	tid     int32
	define  bool
	localID uint64
}

// tablePass holds everything the first scan of a raw trace learns: the
// node id, the thread table, the distinct marker strings in first-seen
// order, and — for tolerant conversions of wrapped traces — the
// placeholder strings the record pass will synthesize for markers whose
// define records were evicted, in first-orphan order.
type tablePass struct {
	node         int
	threads      []interval.ThreadEntry
	defines      []string
	placeholders []string
}

// scanTables performs the table pass over a raw trace (the former
// pass 1 of Convert, factored out so ConvertAll can run it for every
// input before any record pass starts).
func scanTables(src io.ReadSeeker) (*tablePass, error) {
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	rd, err := trace.NewReader(src)
	if err != nil {
		return nil, err
	}
	tp := &tablePass{node: rd.Info.Node}
	haveInfo := map[int32]bool{}
	seenTID := map[int32]bool{}
	definedStr := map[string]bool{}
	var evs []markerEv
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.TID >= 0 {
			seenTID[rec.TID] = true
		}
		switch rec.Type {
		case events.EvThreadInfo:
			if len(rec.Args) < 4 {
				return nil, fmt.Errorf("convert: thread-info record with %d args (want 4)", len(rec.Args))
			}
			haveInfo[rec.TID] = true
			tp.threads = append(tp.threads, interval.ThreadEntry{
				Task:   int32(uint32(rec.Args[2])),
				PID:    rec.Args[0],
				SysTID: rec.Args[1],
				Node:   uint16(tp.node),
				LTID:   uint16(rec.TID),
				Type:   uint8(rec.Args[3]),
			})
		case events.EvMarkerDefine:
			if len(rec.Args) < 1 {
				return nil, fmt.Errorf("convert: marker-define record with no args")
			}
			if !definedStr[rec.Str] {
				definedStr[rec.Str] = true
				tp.defines = append(tp.defines, rec.Str)
			}
			evs = append(evs, markerEv{tid: rec.TID, define: true, localID: rec.Args[0]})
		case events.EvMarkerBegin:
			if len(rec.Args) < 1 {
				return nil, fmt.Errorf("convert: marker-begin record with no args")
			}
			evs = append(evs, markerEv{tid: rec.TID, localID: rec.Args[0]})
		}
	}
	// Threads whose info records were evicted (wrap mode) still get a
	// table entry so views and statistics can label them.
	for tid := range seenTID {
		if !haveInfo[tid] {
			tp.threads = append(tp.threads, interval.ThreadEntry{
				Task: -1, Node: uint16(tp.node), LTID: uint16(tid), Type: events.ThreadSystem,
			})
		}
	}
	sort.Slice(tp.threads, func(i, j int) bool { return tp.threads[i].LTID < tp.threads[j].LTID })

	// Replay the marker events against the completed thread table to
	// find orphan begins, mirroring exactly how the record pass resolves
	// (task, local id): the first begin with no prior define synthesizes
	// a placeholder, later defines of the same key do not.
	taskOf := make(map[int32]int32, len(tp.threads))
	for _, te := range tp.threads {
		taskOf[int32(te.LTID)] = te.Task
	}
	defined := map[[2]int64]bool{}
	for _, ev := range evs {
		task := int64(-1)
		if t, ok := taskOf[ev.tid]; ok {
			task = int64(t)
		}
		k := [2]int64{task, int64(ev.localID)}
		if ev.define {
			defined[k] = true
		} else if !defined[k] {
			defined[k] = true
			tp.placeholders = append(tp.placeholders, placeholderName(task, ev.localID))
		}
	}
	return tp, nil
}

// placeholderName is the stable name tolerant conversions give a marker
// whose define record was evicted by the wrap-mode trace buffer.
func placeholderName(task int64, localID uint64) string {
	return fmt.Sprintf("marker#%d:%d", task, localID)
}

// Convert reads the raw trace in src (twice: a table pass and a record
// pass) and writes one interval file to dst.
func Convert(src io.ReadSeeker, dst io.WriteSeeker, opts Options) (*Result, error) {
	markers := opts.Markers
	if markers == nil {
		markers = NewMarkerRegistry()
	}
	tp, err := scanTables(src)
	if err != nil {
		return nil, err
	}
	for _, s := range tp.defines {
		markers.ID(s)
	}
	hdrMarkers := opts.headerMarkers
	if hdrMarkers == nil {
		hdrMarkers = markers.Table()
	}
	return convertRecords(src, dst, opts, tp, markers, hdrMarkers)
}

// convertRecords is the record pass: it writes the interval-file header
// from the table pass's results and converts every raw event. markers
// must already hold identifiers for all of tp's define strings (and, in
// tolerant mode under ConvertAll, its placeholder strings too).
func convertRecords(src io.ReadSeeker, dst io.WriteSeeker, opts Options, tp *tablePass, markers *MarkerRegistry, hdrMarkers map[uint64]string) (*Result, error) {
	hdr := interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Threads:        tp.threads,
		Markers:        hdrMarkers,
	}
	w, err := interval.NewWriter(dst, hdr, opts.Writer)
	if err != nil {
		return nil, err
	}

	c := &converter{
		node:        tp.node,
		sink:        w.Add,
		markers:     markers,
		tolerant:    opts.Tolerant,
		threads:     make(map[int32]*threadState),
		localMarker: make(map[[2]int64]uint64),
		lastTime:    clock.Time(-1 << 62),
		lastEmitEnd: clock.Time(-1 << 62), // local clocks may start negative
		res:         Result{Node: tp.node},
	}
	for _, te := range tp.threads {
		c.threads[int32(te.LTID)] = &threadState{tid: int32(te.LTID), task: te.Task}
	}

	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	rd, err := trace.NewReader(src)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		c.res.Events++
		if err := c.event(&rec); err != nil {
			return nil, err
		}
	}
	// Threads still live at end of trace: close their open states so the
	// file accounts for all observed time.
	if err := c.finish(); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &c.res, nil
}

func (c *converter) thread(tid int32) *threadState {
	ts := c.threads[tid]
	if ts == nil {
		ts = &threadState{tid: tid, task: -1}
		c.threads[tid] = ts
	}
	return ts
}

func (c *converter) event(rec *trace.Record) error {
	now := rec.Time
	if now > c.lastTime {
		c.lastTime = now
	}
	// Arity guard for the argument words indexed below; a well-formed
	// tracer always emits them, but the streaming ingest path feeds this
	// converter untrusted wire bytes.
	need := 0
	switch rec.Type {
	case events.EvGlobalClock, events.EvDispatch, events.EvMarkerDefine:
		need = 1
	case events.EvMarkerBegin, events.EvMarkerEnd:
		need = 2
	}
	if len(rec.Args) < need {
		return fmt.Errorf("convert: %s record with %d args (want %d)", rec.Type.Name(), len(rec.Args), need)
	}
	switch rec.Type {
	case events.EvThreadInfo:
		return nil // consumed in pass 1
	case events.EvGlobalClock:
		// The pair keeps the raw local reading (the merge utility's
		// estimators want it, outliers included); the emitted record's
		// position is clamped so a de-schedule-delayed reading cannot
		// break the file's end-time ordering.
		c.res.ClockPairs = append(c.res.ClockPairs, clock.Pair{
			Global: clock.Time(rec.Args[0]), Local: now,
		})
		at := now
		if at < c.lastEmitEnd {
			at = c.lastEmitEnd
		}
		return c.emit(&interval.Record{
			Type: events.EvGlobalClock, Bebits: profile.Complete,
			Start: at, Dura: 0, Node: uint16(c.node),
			Extra: []uint64{rec.Args[0]},
		})
	case events.EvDispatch:
		ts := c.thread(rec.TID)
		ts.dispatched = true
		ts.cpu = uint16(rec.Args[0])
		if len(ts.stack) == 0 {
			ts.stack = append(ts.stack, &openState{ty: events.EvRunning})
		}
		c.top(ts).pieceStart = now
		return nil
	case events.EvUndispatch:
		ts := c.thread(rec.TID)
		if !ts.dispatched {
			if c.tolerant {
				c.res.Skipped++
				return nil
			}
			return fmt.Errorf("convert: undispatch of idle thread %d at %v", rec.TID, now)
		}
		if len(ts.stack) > 0 {
			if err := c.closePiece(ts, now, false); err != nil {
				return err
			}
		}
		ts.dispatched = false
		if len(rec.Args) > 1 && rec.Args[1] == events.UndispatchExit {
			return c.closeAll(ts, now)
		}
		return nil
	case events.EvMarkerDefine:
		ts := c.thread(rec.TID)
		gid := c.markers.ID(rec.Str)
		c.localMarker[[2]int64{int64(ts.task), int64(rec.Args[0])}] = gid
		return nil
	case events.EvMarkerBegin:
		ts := c.thread(rec.TID)
		gid, ok := c.localMarker[[2]int64{int64(ts.task), int64(rec.Args[0])}]
		if !ok {
			if !c.tolerant {
				return fmt.Errorf("convert: marker %d used before definition on task %d", rec.Args[0], ts.task)
			}
			// The define record was evicted (wrap mode): synthesize a
			// stable placeholder name.
			gid = c.markers.ID(placeholderName(int64(ts.task), rec.Args[0]))
			c.localMarker[[2]int64{int64(ts.task), int64(rec.Args[0])}] = gid
		}
		st := &openState{
			ty:       events.EvMarkerState,
			extra:    []uint64{gid, rec.Args[1], 0},
			markerID: rec.Args[0],
		}
		return c.push(ts, st, now)
	case events.EvMarkerEnd:
		ts := c.thread(rec.TID)
		top := c.top(ts)
		if top == nil || top.ty != events.EvMarkerState || top.markerID != rec.Args[0] {
			if c.tolerant {
				c.res.Skipped++
				return nil
			}
			return fmt.Errorf("convert: marker end %d does not match open state on thread %d", rec.Args[0], rec.TID)
		}
		top.extra[2] = rec.Args[1] // endAddr
		return c.pop(ts, now)
	}
	if rec.Type == events.EvPageMiss {
		// Point event: a zero-duration complete interval that does not
		// split the enclosing state.
		ts := c.thread(rec.TID)
		return c.emit(&interval.Record{
			Type: events.EvPageMiss, Bebits: profile.Complete,
			Start: now, Dura: 0,
			CPU: ts.cpu, Node: uint16(c.node), Thread: uint16(rec.TID),
			Extra: rec.Args,
		})
	}
	if events.IsMPI(rec.Type) || events.IsIO(rec.Type) {
		ts := c.thread(rec.TID)
		switch rec.Edge {
		case events.Entry:
			return c.push(ts, &openState{ty: rec.Type}, now)
		case events.Exit:
			top := c.top(ts)
			if top == nil || top.ty != rec.Type {
				if c.tolerant {
					c.res.Skipped++
					return nil
				}
				return fmt.Errorf("convert: %s exit without matching entry on thread %d at %v", rec.Type.Name(), rec.TID, now)
			}
			top.extra = rec.Args
			// Types with a trailing vector field carry it after the fixed
			// extras in the raw record's args.
			if events.VectorField(rec.Type) != "" {
				if nx := len(events.ExtraFields(rec.Type)); len(rec.Args) >= nx {
					top.extra = rec.Args[:nx]
					top.vec = rec.Args[nx:]
				}
			}
			return c.pop(ts, now)
		}
		return fmt.Errorf("convert: state event %s with point edge", rec.Type.Name())
	}
	return fmt.Errorf("convert: unhandled event type %s", rec.Type.Name())
}

func (c *converter) top(ts *threadState) *openState {
	if len(ts.stack) == 0 {
		return nil
	}
	return ts.stack[len(ts.stack)-1]
}

// push suspends the current top state's piece and makes st the new
// active state.
func (c *converter) push(ts *threadState, st *openState, now clock.Time) error {
	if !ts.dispatched {
		if c.tolerant {
			// Wrap mode evicted the dispatch: treat the thread as
			// dispatched on an unknown CPU from this point.
			ts.dispatched = true
			if len(ts.stack) == 0 {
				ts.stack = append(ts.stack, &openState{ty: events.EvRunning, pieceStart: now})
			}
		} else {
			return fmt.Errorf("convert: state %s opened on undispatched thread %d at %v", st.ty.Name(), ts.tid, now)
		}
	}
	if top := c.top(ts); top != nil {
		if err := c.closePiece(ts, now, false); err != nil {
			return err
		}
	}
	st.pieceStart = now
	ts.stack = append(ts.stack, st)
	return nil
}

// pop closes the top state (emitting its last piece) and resumes the
// state below it.
func (c *converter) pop(ts *threadState, now clock.Time) error {
	if err := c.closePiece(ts, now, true); err != nil {
		return err
	}
	ts.stack = ts.stack[:len(ts.stack)-1]
	if below := c.top(ts); below != nil && ts.dispatched {
		below.pieceStart = now
	} else if below == nil && ts.dispatched {
		// Back to the default Running state.
		ts.stack = append(ts.stack, &openState{ty: events.EvRunning, pieceStart: now})
	}
	return nil
}

// closePiece emits the top state's current piece ending now. last marks
// the state's final piece (end or complete).
func (c *converter) closePiece(ts *threadState, now clock.Time, last bool) error {
	st := c.top(ts)
	if st == nil {
		return fmt.Errorf("convert: no open state on thread %d", ts.tid)
	}
	var bb profile.Bebits
	switch {
	case last && st.pieces == 0:
		bb = profile.Complete
	case last:
		bb = profile.End
	case st.pieces == 0:
		bb = profile.Begin
	default:
		bb = profile.Continuation
	}
	extra := st.extra
	if want := len(events.ExtraFields(st.ty)); len(extra) != want {
		// Pieces emitted before the closing event carry zeroed extras of
		// the profile-declared width; sums over pieces stay correct
		// because only the final piece carries the real values.
		extra = make([]uint64, want)
		copy(extra, st.extra)
	}
	var vec []uint64
	if last {
		vec = st.vec
	}
	st.pieces++
	return c.emit(&interval.Record{
		Type:   st.ty,
		Bebits: bb,
		Start:  st.pieceStart,
		Dura:   now - st.pieceStart,
		CPU:    ts.cpu,
		Node:   uint16(c.node),
		Thread: uint16(ts.tid),
		Extra:  extra,
		Vec:    vec,
	})
}

// closeAll force-closes every open state of an exiting thread, top down.
// Each state's running piece was already closed (by the undispatch or by
// being suspended), so every state gets a zero-length final piece at now.
func (c *converter) closeAll(ts *threadState, now clock.Time) error {
	for len(ts.stack) > 0 {
		c.top(ts).pieceStart = now
		if err := c.closePiece(ts, now, true); err != nil {
			return err
		}
		ts.stack = ts.stack[:len(ts.stack)-1]
	}
	return nil
}

func (c *converter) emit(r *interval.Record) error {
	c.res.Records++
	if e := r.End(); e > c.lastEmitEnd {
		c.lastEmitEnd = e
	}
	return c.sink(r)
}

// finish closes states of threads that are still live when the trace
// ends (tracing stopped mid-run). Dispatched threads get their running
// piece extended to the last timestamp seen in the trace; every open
// state then receives a final piece there, keeping the file's end-time
// ordering intact.
func (c *converter) finish() error {
	tids := make([]int32, 0, len(c.threads))
	for tid := range c.threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		ts := c.threads[tid]
		if len(ts.stack) == 0 {
			continue
		}
		if ts.dispatched {
			if err := c.closePiece(ts, c.lastTime, false); err != nil {
				return err
			}
		}
		if err := c.closeAll(ts, c.lastTime); err != nil {
			return err
		}
	}
	return nil
}
