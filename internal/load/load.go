// Package load is the serving-tier load generator behind cmd/uteload:
// N concurrent clients replay a configurable mix of window-stats,
// preview, time-resolved, and record-count queries against a tracesvc
// or uterouter endpoint, with zipfian trace popularity and a bounded
// per-trace window pool so the run has a natural cold phase (first
// touch of each window decodes frames) and a warm phase (repeats hit
// the decoded-frame caches). The report carries QPS, latency
// percentiles, error rates, and — when backend URLs are given —
// per-backend cache hit ratios scraped from /metrics.
package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tracefw/internal/tracesvc"
	"tracefw/internal/xrand"
)

// Mix weights the query types; a zero Mix selects the default blend
// (stats-heavy, matching the paper's preview-then-drill-down usage).
type Mix struct {
	Stats        int `json:"stats"`
	Preview      int `json:"preview"`
	TimeResolved int `json:"timeresolved"`
	Records      int `json:"records"`
}

func (m Mix) total() int { return m.Stats + m.Preview + m.TimeResolved + m.Records }

// Config tunes one load run; zero values select the defaults.
type Config struct {
	// BaseURL is the service under test (a utetraced or uterouter).
	BaseURL string
	// BackendURLs, when set, are scraped for decoded-frame cache hit
	// ratios before and after the measured phase.
	BackendURLs []string
	// Clients is the concurrent client count (default 4).
	Clients int
	// Requests is the measured warm-phase request count (default 200).
	Requests int
	// Mix weights the query types (zero value: 4/2/1/3).
	Mix Mix
	// ZipfS is the zipf exponent for trace popularity (default 1.1):
	// rank r drawn with probability proportional to 1/(r+1)^s.
	ZipfS float64
	// Seed makes the request sequence reproducible (default 1).
	Seed uint64
	// Bins is the bins parameter sent on stats/preview queries
	// (default 16).
	Bins int
	// Windows is the per-trace window-pool size (default 16). A finite
	// pool is what creates the warm phase: the cold pass touches every
	// window once, the measured pass replays them.
	Windows int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Mix.total() <= 0 {
		c.Mix = Mix{Stats: 4, Preview: 2, TimeResolved: 1, Records: 3}
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Bins <= 0 {
		c.Bins = 16
	}
	if c.Windows <= 0 {
		c.Windows = 16
	}
	return c
}

// Phase is the measured result of one run phase.
type Phase struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// BackendCache is one backend's decoded-frame cache movement over the
// measured phase.
type BackendCache struct {
	URL      string  `json:"url"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// Report is the full run result.
type Report struct {
	Traces   int            `json:"traces"`
	Clients  int            `json:"clients"`
	Mix      Mix            `json:"mix"`
	Cold     Phase          `json:"cold"`
	Warm     Phase          `json:"warm"`
	Backends []BackendCache `json:"backends,omitempty"`
}

// zipf is a small cumulative-table zipfian sampler over ranks [0, n).
type zipf struct {
	cum []float64
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cum: make([]float64, n)}
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), s)
		z.cum[r] = sum
	}
	for r := range z.cum {
		z.cum[r] /= sum
	}
	return z
}

func (z *zipf) rank(u float64) int {
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// query is one templated request.
type query struct {
	kind string
	url  string
}

// Run executes the load: discover traces, build window pools, run the
// cold pass (every window touched once), then the measured warm phase.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: cfg.Clients * 2,
		IdleConnTimeout:     90 * time.Second,
	}}
	defer client.CloseIdleConnections()

	traces, err := listTraces(ctx, client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("load: service has no traces registered")
	}

	// Window pools: random sub-spans of each trace's run, reproducible
	// from the seed. Spans between 10%% and 50%% of the run keep queries
	// nontrivial without always touching every frame.
	rng := xrand.New(cfg.Seed)
	pools := make([][]string, len(traces))
	for i, tr := range traces {
		dur := tr.EndSec - tr.StartSec
		pools[i] = make([]string, cfg.Windows)
		for w := range pools[i] {
			span := dur * (0.1 + 0.4*rng.Float64())
			lo := tr.StartSec + (dur-span)*rng.Float64()
			pools[i][w] = fmt.Sprintf("%.6f:%.6f", lo, lo+span)
		}
	}

	kinds := mixTable(cfg.Mix)
	mkQuery := func(ti, wi, ki int) query {
		id := traces[ti].ID
		window := pools[ti][wi]
		switch kinds[ki%len(kinds)] {
		case "stats":
			return query{"stats", fmt.Sprintf("/v1/traces/%s/stats?bins=%d&window=%s", id, cfg.Bins, window)}
		case "preview":
			return query{"preview", fmt.Sprintf("/v1/traces/%s/preview.svg?view=preview&bins=%d&window=%s", id, cfg.Bins, window)}
		case "timeresolved":
			return query{"timeresolved", fmt.Sprintf("/v1/traces/%s/stats?timeresolved=1&bins=%d&window=%s", id, cfg.Bins, window)}
		default:
			return query{"records", fmt.Sprintf("/v1/traces/%s/records?count=1&window=%s", id, window)}
		}
	}

	// Cold pass: every (trace, window) pair once, query kind rotating
	// through the mix, spread over the clients.
	var cold []query
	k := 0
	for ti := range traces {
		for wi := range pools[ti] {
			cold = append(cold, mkQuery(ti, wi, k))
			k++
		}
	}
	coldPhase, err := runPhase(ctx, client, cfg, cold)
	if err != nil {
		return nil, err
	}

	// Warm phase: zipfian trace choice, uniform window from the pool,
	// weighted kind — the measured workload.
	z := newZipf(len(traces), cfg.ZipfS)
	warm := make([]query, cfg.Requests)
	for i := range warm {
		ti := z.rank(rng.Float64())
		warm[i] = mkQuery(ti, rng.Intn(cfg.Windows), rng.Intn(len(kinds)))
	}

	before := scrapeCaches(ctx, client, cfg.BackendURLs)
	warmPhase, err := runPhase(ctx, client, cfg, warm)
	if err != nil {
		return nil, err
	}
	after := scrapeCaches(ctx, client, cfg.BackendURLs)

	rep := &Report{
		Traces:  len(traces),
		Clients: cfg.Clients,
		Mix:     cfg.Mix,
		Cold:    coldPhase,
		Warm:    warmPhase,
	}
	for i, url := range cfg.BackendURLs {
		hits := after[i].hits - before[i].hits
		misses := after[i].misses - before[i].misses
		bc := BackendCache{URL: url, Hits: hits, Misses: misses}
		if hits+misses > 0 {
			bc.HitRatio = float64(hits) / float64(hits+misses)
		}
		rep.Backends = append(rep.Backends, bc)
	}
	return rep, nil
}

// mixTable expands the mix weights into a lookup table of kinds.
func mixTable(m Mix) []string {
	var t []string
	for i := 0; i < m.Stats; i++ {
		t = append(t, "stats")
	}
	for i := 0; i < m.Preview; i++ {
		t = append(t, "preview")
	}
	for i := 0; i < m.TimeResolved; i++ {
		t = append(t, "timeresolved")
	}
	for i := 0; i < m.Records; i++ {
		t = append(t, "records")
	}
	return t
}

// runPhase fires the queries from cfg.Clients goroutines, each pulling
// from a shared index, and folds the latency samples into a Phase.
func runPhase(ctx context.Context, client *http.Client, cfg Config, queries []query) (Phase, error) {
	if len(queries) == 0 {
		return Phase{}, nil
	}
	var (
		next    int64
		nextMu  sync.Mutex
		lats    = make([]time.Duration, 0, len(queries))
		latMu   sync.Mutex
		errs    int64
		wg      sync.WaitGroup
		ctxErr  error
		ctxErrM sync.Mutex
	)
	take := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		if int(next) >= len(queries) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	t0 := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(queries)/cfg.Clients+1)
			for {
				i := take()
				if i < 0 || ctx.Err() != nil {
					break
				}
				q := queries[i]
				s0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, "GET", cfg.BaseURL+q.url, nil)
				if err != nil {
					ctxErrM.Lock()
					if ctxErr == nil {
						ctxErr = err
					}
					ctxErrM.Unlock()
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					latMu.Lock()
					errs++
					latMu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := time.Since(s0)
				local = append(local, d)
				if resp.StatusCode != http.StatusOK {
					latMu.Lock()
					errs++
					latMu.Unlock()
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	if ctxErr != nil {
		return Phase{}, ctxErr
	}
	if err := ctx.Err(); err != nil {
		return Phase{}, err
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ph := Phase{
		Requests: len(queries),
		Errors:   int(errs),
		Seconds:  wall.Seconds(),
		QPS:      float64(len(queries)) / wall.Seconds(),
	}
	if len(lats) > 0 {
		ph.P50Ms = ms(percentile(lats, 0.50))
		ph.P95Ms = ms(percentile(lats, 0.95))
		ph.P99Ms = ms(percentile(lats, 0.99))
		ph.MaxMs = ms(lats[len(lats)-1])
	}
	return ph, nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func listTraces(ctx context.Context, client *http.Client, base string) ([]tracesvc.TraceInfo, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/traces", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("load: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: list traces: %s", resp.Status)
	}
	var tl tracesvc.TraceList
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		return nil, fmt.Errorf("load: list traces: %v", err)
	}
	return tl.Traces, nil
}

// cacheCounters is one scrape of a backend's frame-cache counters.
type cacheCounters struct{ hits, misses int64 }

// scrapeCaches reads tracesvc_cache_{hits,misses}_total from each
// backend's /metrics; unreachable backends read as zero (the delta then
// reports 0/0, not an error — the load run itself is the result).
func scrapeCaches(ctx context.Context, client *http.Client, urls []string) []cacheCounters {
	out := make([]cacheCounters, len(urls))
	for i, u := range urls {
		req, err := http.NewRequestWithContext(ctx, "GET", u+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(body), "\n") {
			if v, ok := strings.CutPrefix(line, "tracesvc_cache_hits_total "); ok {
				out[i].hits, _ = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			}
			if v, ok := strings.CutPrefix(line, "tracesvc_cache_misses_total "); ok {
				out[i].misses, _ = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			}
		}
	}
	return out
}
