package load

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/tracesvc"
	"tracefw/internal/xrand"
)

// writeTrace writes a small valid interval file (512 B frames, 4
// frames per directory) the load generator can query.
func writeTrace(t testing.TB, dir string, n int) string {
	t.Helper()
	rng := xrand.New(7)
	recs := make([]interval.Record, n)
	end := clock.Time(0)
	for i := range recs {
		end += clock.Time(rng.Int63n(int64(clock.Millisecond)))
		recs[i] = interval.Record{
			Type:   events.EvMPISend,
			Bebits: profile.Complete,
			Start:  end - clock.Time(rng.Int63n(int64(clock.Microsecond))),
			CPU:    uint16(i % 4),
			Node:   uint16(i % 2),
			Thread: uint16(i % 3),
			Extra:  []uint64{uint64(i), 7, 0, 0, 0, 0},
		}
		recs[i].Dura = end - recs[i].Start
	}
	hdr := interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Threads: []interval.ThreadEntry{
			{Task: 0, PID: 100, SysTID: 1, Node: 0, LTID: 0, Type: events.ThreadMPI},
		},
	}
	path := filepath.Join(dir, "load.ute")
	fl, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := interval.NewWriter(fl, hdr, interval.WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunAgainstService drives a full cold+warm run against a real
// tracesvc and checks the report's accounting: request counts add up,
// nothing errors, percentiles are ordered, and the backend cache scrape
// shows warm-phase hits (the warm phase replays windows the cold pass
// already decoded).
func TestRunAgainstService(t *testing.T) {
	svc := tracesvc.New(tracesvc.Config{})
	svc.SetReady()
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()

	path := writeTrace(t, t.TempDir(), 300)
	if _, err := svc.Registry().Open(path); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		BaseURL:     ts.URL,
		BackendURLs: []string{ts.URL},
		Clients:     3,
		Requests:    60,
		Windows:     8,
		Seed:        42,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Traces != 1 || rep.Clients != 3 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	// Cold pass: every (trace, window) pair exactly once.
	if rep.Cold.Requests != 8 {
		t.Fatalf("cold requests = %d, want 8", rep.Cold.Requests)
	}
	if rep.Warm.Requests != 60 {
		t.Fatalf("warm requests = %d, want 60", rep.Warm.Requests)
	}
	if rep.Cold.Errors != 0 || rep.Warm.Errors != 0 {
		t.Fatalf("errors in report: cold=%d warm=%d", rep.Cold.Errors, rep.Warm.Errors)
	}
	for _, p := range []Phase{rep.Cold, rep.Warm} {
		if p.QPS <= 0 || p.P50Ms <= 0 || p.P50Ms > p.P95Ms || p.P95Ms > p.P99Ms || p.P99Ms > p.MaxMs {
			t.Fatalf("phase percentiles not ordered: %+v", p)
		}
	}
	if len(rep.Backends) != 1 {
		t.Fatalf("backend scrape missing: %+v", rep.Backends)
	}
	bc := rep.Backends[0]
	if bc.Hits <= 0 || bc.HitRatio <= 0 {
		t.Fatalf("warm phase produced no cache hits: %+v", bc)
	}
}

// TestRunReproducible: same seed, same request sequence — the two runs
// must agree on everything but timing.
func TestRunReproducible(t *testing.T) {
	svc := tracesvc.New(tracesvc.Config{})
	svc.SetReady()
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()
	path := writeTrace(t, t.TempDir(), 200)
	if _, err := svc.Registry().Open(path); err != nil {
		t.Fatal(err)
	}

	cfg := Config{BaseURL: ts.URL, Clients: 2, Requests: 30, Windows: 4, Seed: 9}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cold.Requests != b.Cold.Requests || a.Warm.Requests != b.Warm.Requests ||
		a.Cold.Errors != b.Cold.Errors || a.Warm.Errors != b.Warm.Errors {
		t.Fatalf("runs with the same seed disagree: %+v vs %+v", a, b)
	}
}

// TestRunNoTraces: an empty service is a usage error, not a panic.
func TestRunNoTraces(t *testing.T) {
	svc := tracesvc.New(tracesvc.Config{})
	svc.SetReady()
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()
	_, err := Run(context.Background(), Config{BaseURL: ts.URL})
	if err == nil || !strings.Contains(err.Error(), "no traces") {
		t.Fatalf("want 'no traces' error, got %v", err)
	}
}

// TestZipfSkew: low ranks must be sampled more often than high ranks.
func TestZipfSkew(t *testing.T) {
	z := newZipf(10, 1.1)
	rng := xrand.New(1)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.rank(rng.Float64())]++
	}
	if counts[0] <= counts[9]*2 {
		t.Fatalf("zipf not skewed: %v", counts)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 10000 {
		t.Fatalf("samples lost: %v", counts)
	}
}
