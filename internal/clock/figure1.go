package clock

import (
	"fmt"
	"strings"
)

// DiscrepancySeries reproduces the data behind the paper's Figure 1:
// the accumulated timestamp discrepancies among a set of local clocks,
// measured against one of them used as the reference. For each sample
// instant t (in the reference clock's elapsed time) and each clock i,
// the discrepancy is
//
//	D_i(t) = (local_i(t) − local_i(0)) − (local_ref(t) − local_ref(0)),
//
// i.e. how far clock i's elapsed time has diverged from the reference
// clock's elapsed time. The reference's own series is identically zero.
type DiscrepancySeries struct {
	Reference int      // index of the reference clock
	SampleAt  []Time   // elapsed true time of each sample
	Disc      [][]Time // Disc[i][k] = discrepancy of clock i at sample k
}

// Figure1 samples nclocks simulated local clocks every step for total
// elapsed time and returns the discrepancy series against the clock at
// index ref. Drifts supplies the per-clock fractional drift rates; its
// length must equal nclocks.
func Figure1(drifts []float64, ref int, total, step Time, seed uint64) *DiscrepancySeries {
	n := len(drifts)
	if ref < 0 || ref >= n {
		panic("clock: reference index out of range")
	}
	clocks := make([]*Local, n)
	for i, d := range drifts {
		// Offsets are arbitrary: discrepancies are elapsed-time based.
		clocks[i] = NewLocal(Time(i)*37*Millisecond, d, 0, 1, seed+uint64(i))
	}
	s := &DiscrepancySeries{Reference: ref}
	base := make([]Time, n)
	for i, c := range clocks {
		base[i] = c.ValueAt(0)
	}
	s.Disc = make([][]Time, n)
	for t := Time(0); t <= total; t += step {
		s.SampleAt = append(s.SampleAt, t)
		refElapsed := clocks[ref].ValueAt(t) - base[ref]
		for i, c := range clocks {
			elapsed := c.ValueAt(t) - base[i]
			s.Disc[i] = append(s.Disc[i], elapsed-refElapsed)
		}
	}
	return s
}

// TSV renders the series as a tab-separated table with a header row:
// elapsed seconds of the reference clock, then one discrepancy column
// (in microseconds) per clock.
func (s *DiscrepancySeries) TSV() string {
	var b strings.Builder
	b.WriteString("elapsed_s")
	for i := range s.Disc {
		fmt.Fprintf(&b, "\tclock%d_us", i)
	}
	b.WriteByte('\n')
	for k, t := range s.SampleAt {
		fmt.Fprintf(&b, "%.3f", t.Seconds())
		for i := range s.Disc {
			fmt.Fprintf(&b, "\t%.1f", float64(s.Disc[i][k])/float64(Microsecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxDivergence returns the largest absolute discrepancy of any clock at
// the final sample — the "accumulated" spread the figure illustrates.
func (s *DiscrepancySeries) MaxDivergence() Time {
	var worst Time
	if len(s.SampleAt) == 0 {
		return 0
	}
	last := len(s.SampleAt) - 1
	for i := range s.Disc {
		d := s.Disc[i][last]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
