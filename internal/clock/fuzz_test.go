package clock

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseWindow checks the -window parser's contract on arbitrary
// input: it never panics, and whenever it succeeds the bounds are
// ordered and came from finite, in-range numbers.
func FuzzParseWindow(f *testing.F) {
	for _, s := range []string{
		"0.5:2", ":2", "0.5:", ":", "2:1", "nope", "a:1", "1:b",
		"NaN:1", "Inf:", "-Inf:Inf", "1e300:2e300", "-0:0", "1:1",
		"0x1p4:0x1p5", "1_0:2_0", ":::", "-1:-0.5",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		lo, hi, err := ParseWindow(s)
		if err != nil {
			return
		}
		if !strings.Contains(s, ":") {
			t.Fatalf("ParseWindow(%q) accepted input without a separator", s)
		}
		if lo > hi {
			t.Fatalf("ParseWindow(%q) = [%d, %d]: start after end", s, lo, hi)
		}
		// An explicit bound must round-trip from a finite float; the
		// sentinel extremes are only legal for an empty side.
		i := strings.IndexByte(s, ':')
		if s[:i] != "" {
			if v := lo.Seconds(); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ParseWindow(%q): non-finite start %v", s, lo)
			}
		} else if lo != math.MinInt64 {
			t.Fatalf("ParseWindow(%q): empty start gave %d", s, lo)
		}
		if s[i+1:] != "" {
			if v := hi.Seconds(); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ParseWindow(%q): non-finite end %v", s, hi)
			}
		} else if hi != math.MaxInt64 {
			t.Fatalf("ParseWindow(%q): empty end gave %d", s, hi)
		}
	})
}
