package clock

import (
	"strings"
	"testing"
)

var fig1Drifts = []float64{0, 2.5e-5, -3.5e-5, 6e-5}

func TestFigure1ReferenceIsZero(t *testing.T) {
	s := Figure1(fig1Drifts, 0, 140*Second, Second, 1)
	for k := range s.SampleAt {
		if s.Disc[0][k] != 0 {
			t.Fatalf("reference clock discrepancy nonzero at sample %d: %v", k, s.Disc[0][k])
		}
	}
}

func TestFigure1DiscrepancyGrows(t *testing.T) {
	s := Figure1(fig1Drifts, 0, 140*Second, Second, 1)
	// Each non-reference clock's |discrepancy| must be (weakly) increasing
	// and reach the drift-predicted magnitude at the end.
	for i := 1; i < len(fig1Drifts); i++ {
		series := s.Disc[i]
		last := abs(series[len(series)-1])
		first := abs(series[1])
		if last <= first {
			t.Fatalf("clock %d discrepancy did not accumulate: first %v last %v", i, first, last)
		}
		predicted := Time(fig1Drifts[i] * float64(140*Second))
		if predicted < 0 {
			predicted = -predicted
		}
		diff := last - predicted
		if diff < 0 {
			diff = -diff
		}
		if diff > predicted/10+Microsecond {
			t.Fatalf("clock %d final discrepancy %v, predicted %v", i, last, predicted)
		}
	}
}

func TestFigure1AnyReference(t *testing.T) {
	// The figure's caption: discrepancies increase regardless of the
	// reference clock. Check max divergence is nonzero for every choice.
	for ref := range fig1Drifts {
		s := Figure1(fig1Drifts, ref, 140*Second, Second, 1)
		if s.MaxDivergence() < Millisecond {
			t.Fatalf("ref %d: max divergence %v implausibly small", ref, s.MaxDivergence())
		}
	}
}

func TestFigure1SampleCount(t *testing.T) {
	s := Figure1(fig1Drifts, 0, 10*Second, Second, 1)
	if len(s.SampleAt) != 11 {
		t.Fatalf("got %d samples, want 11", len(s.SampleAt))
	}
	for i := range s.Disc {
		if len(s.Disc[i]) != 11 {
			t.Fatalf("clock %d has %d samples", i, len(s.Disc[i]))
		}
	}
}

func TestFigure1TSV(t *testing.T) {
	s := Figure1(fig1Drifts, 0, 5*Second, Second, 1)
	tsv := s.TSV()
	lines := strings.Split(strings.TrimRight(tsv, "\n"), "\n")
	if len(lines) != 7 { // header + 6 samples
		t.Fatalf("TSV has %d lines, want 7", len(lines))
	}
	if !strings.HasPrefix(lines[0], "elapsed_s\tclock0_us") {
		t.Fatalf("bad header: %q", lines[0])
	}
	for _, ln := range lines[1:] {
		if got := strings.Count(ln, "\t"); got != len(fig1Drifts) {
			t.Fatalf("row has %d tabs, want %d: %q", got, len(fig1Drifts), ln)
		}
	}
}

func TestFigure1PanicsOnBadRef(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range reference")
		}
	}()
	Figure1(fig1Drifts, 9, Second, Second, 1)
}

func abs(t Time) Time {
	if t < 0 {
		return -t
	}
	return t
}
