package clock

import (
	"math"
	"testing"
	"testing/quick"

	"tracefw/internal/xrand"
)

func TestLocalValueAtNoDrift(t *testing.T) {
	c := NewLocal(5*Second, 0, 0, 1, 1)
	if got := c.ValueAt(10 * Second); got != 15*Second {
		t.Fatalf("ValueAt = %v, want 15s", got)
	}
}

func TestLocalValueAtDrift(t *testing.T) {
	c := NewLocal(0, 1e-4, 0, 1, 1)
	// After 100 s of true time the clock should be ahead by 10 ms.
	got := c.ValueAt(100 * Second)
	want := 100*Second + 10*Millisecond
	if got != want {
		t.Fatalf("ValueAt = %v, want %v", got, want)
	}
}

func TestLocalNegativeDrift(t *testing.T) {
	c := NewLocal(0, -5e-5, 0, 1, 1)
	got := c.ValueAt(200 * Second)
	want := 200*Second - 10*Millisecond
	if got != want {
		t.Fatalf("ValueAt = %v, want %v", got, want)
	}
}

func TestTrueAtInvertsValueAt(t *testing.T) {
	c := NewLocal(3*Second, 7e-5, 0, 1, 1)
	for _, tt := range []Time{0, Second, 17 * Second, 140 * Second} {
		l := c.ValueAt(tt)
		back := c.TrueAt(l)
		diff := back - tt
		if diff < -1 || diff > 1 { // rounding tolerance
			t.Fatalf("TrueAt(ValueAt(%v)) = %v", tt, back)
		}
	}
}

func TestReadAtGranularity(t *testing.T) {
	c := NewLocal(0, 0, 0, Microsecond, 1)
	v := c.ReadAt(1234567) // 1.234567 ms
	if v%Microsecond != 0 {
		t.Fatalf("granular read %d not a multiple of 1µs", v)
	}
}

func TestReadAtJitterBounded(t *testing.T) {
	c := NewLocal(0, 0, 100, 1, 42) // 100 ns jitter
	for i := 0; i < 1000; i++ {
		v := c.ReadAt(Second)
		d := v - Second
		if d < -1000 || d > 1000 { // 10 sigma
			t.Fatalf("jittered read off by %d ns", d)
		}
	}
}

func samplePairs(c *Local, n int, step Time) []Pair {
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		t := Time(i) * step
		pairs[i] = Pair{Global: t, Local: c.ValueAt(t)}
	}
	return pairs
}

func TestRMSRatioExactOnCleanDrift(t *testing.T) {
	for _, drift := range []float64{0, 1e-5, -1e-5, 1e-4, -2e-4} {
		c := NewLocal(Second, drift, 0, 1, 1)
		pairs := samplePairs(c, 20, Second)
		r := RMSRatio(pairs)
		want := 1 / (1 + drift)
		if math.Abs(r-want) > 1e-9 {
			t.Fatalf("drift %g: RMSRatio = %.12f, want %.12f", drift, r, want)
		}
	}
}

func TestRMSRatioFewPairs(t *testing.T) {
	if r := RMSRatio(nil); r != 1 {
		t.Fatalf("RMSRatio(nil) = %g, want 1", r)
	}
	if r := RMSRatio([]Pair{{0, 0}}); r != 1 {
		t.Fatalf("RMSRatio(one) = %g, want 1", r)
	}
}

func TestRMSRatioSkipsZeroLocalProgress(t *testing.T) {
	// All segments degenerate: no information, ratio defaults to 1.
	pairs := []Pair{{0, 0}, {Second, 0}}
	if r := RMSRatio(pairs); r != 1 {
		t.Fatalf("RMSRatio with only degenerate segments = %g, want 1", r)
	}
	// A degenerate segment amid valid ones is skipped, not a div-by-zero;
	// the following segment's slope spans the stall.
	pairs = []Pair{{0, 0}, {Second, 0}, {2 * Second, 2 * Second}}
	if r := RMSRatio(pairs); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("RMSRatio skipping degenerate segment = %g, want 0.5", r)
	}
}

func TestLastPairRatio(t *testing.T) {
	c := NewLocal(0, 2e-5, 0, 1, 1)
	pairs := samplePairs(c, 10, Second)
	r := LastPairRatio(pairs)
	want := 1 / (1 + 2e-5)
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("LastPairRatio = %.12f, want %.12f", r, want)
	}
}

func TestFirstPointRatioBiasedByFirstPoint(t *testing.T) {
	// Corrupt the first pair: first-point anchoring must be affected more
	// than the adjacent-segment RMS (which only loses one segment).
	c := NewLocal(0, 5e-5, 0, 1, 1)
	pairs := samplePairs(c, 30, Second)
	pairs[0].Local += 10 * Millisecond // gross error at the anchor
	want := 1 / (1 + 5e-5)
	errRMS := math.Abs(RMSRatio(pairs) - want)
	errFP := math.Abs(FirstPointRatio(pairs) - want)
	if errFP <= errRMS {
		t.Fatalf("first-point error %g not worse than RMS error %g", errFP, errRMS)
	}
}

func TestRatioAdjusterRoundTrip(t *testing.T) {
	c := NewLocal(9*Second, 8e-5, 0, 1, 1)
	pairs := samplePairs(c, 140, Second)
	a := NewRatioAdjuster(pairs)
	for _, tt := range []Time{0, Second / 2, 70 * Second, 139 * Second} {
		adj := a.Global(c.ValueAt(tt))
		err := adj - tt
		if err < 0 {
			err = -err
		}
		if err > 10*Microsecond {
			t.Fatalf("adjusted(%v) off by %v", tt, err)
		}
	}
}

func TestRatioAdjusterDuration(t *testing.T) {
	a := &RatioAdjuster{R: 0.5}
	if d := a.Duration(10 * Second); d != 5*Second {
		t.Fatalf("Duration = %v, want 5s", d)
	}
}

func TestRatioAdjusterAnchorsAtFirstPair(t *testing.T) {
	pairs := []Pair{{Global: 100 * Second, Local: 7 * Second}, {Global: 101 * Second, Local: 8 * Second}}
	a := NewRatioAdjuster(pairs)
	if g := a.Global(7 * Second); g != 100*Second {
		t.Fatalf("anchor mapping = %v, want 100s", g)
	}
}

func TestLastPairAdjuster(t *testing.T) {
	c := NewLocal(Second, -6e-5, 0, 1, 1)
	pairs := samplePairs(c, 100, Second)
	a := NewLastPairAdjuster(pairs)
	adj := a.Global(c.ValueAt(99 * Second))
	err := adj - 99*Second
	if err < 0 {
		err = -err
	}
	if err > 5*Microsecond {
		t.Fatalf("last-pair adjusted off by %v", err)
	}
}

func TestPiecewiseAdjusterTracksVaryingDrift(t *testing.T) {
	// Drift changes midway (temperature change); piecewise should track it
	// while a single ratio cannot.
	var pairs []Pair
	local := Time(0)
	for i := 0; i <= 100; i++ {
		g := Time(i) * Second
		pairs = append(pairs, Pair{Global: g, Local: local})
		rate := 1.0 + 1e-4
		if i >= 50 {
			rate = 1.0 - 1e-4
		}
		local += Time(float64(Second) * rate)
	}
	pw := NewPiecewiseAdjuster(pairs)
	single := NewRatioAdjuster(pairs)

	// Evaluate at the pair points' midpoints.
	var worstPW, worstSingle Time
	for i := 0; i < 100; i++ {
		trueT := Time(i)*Second + Second/2
		lv := (pairs[i].Local + pairs[i+1].Local) / 2
		for _, probe := range []struct {
			a Adjuster
			w *Time
		}{{pw, &worstPW}, {single, &worstSingle}} {
			err := probe.a.Global(lv) - trueT
			if err < 0 {
				err = -err
			}
			if err > *probe.w {
				*probe.w = err
			}
		}
	}
	if worstPW > 2*Microsecond {
		t.Fatalf("piecewise worst error %v too large", worstPW)
	}
	if worstSingle < 10*worstPW {
		t.Fatalf("single-ratio worst error %v not clearly worse than piecewise %v", worstSingle, worstPW)
	}
}

func TestPiecewiseAdjusterEdges(t *testing.T) {
	pairs := []Pair{{0, 0}, {Second, Second}, {2 * Second, 2 * Second}}
	p := NewPiecewiseAdjuster(pairs)
	if g := p.Global(-Second); g != -Second {
		t.Fatalf("extrapolate before first = %v", g)
	}
	if g := p.Global(3 * Second); g != 3*Second {
		t.Fatalf("extrapolate after last = %v", g)
	}
	if d := p.Duration(Second); d != Second {
		t.Fatalf("Duration = %v", d)
	}
}

func TestPiecewiseAdjusterDegenerate(t *testing.T) {
	p := NewPiecewiseAdjuster(nil)
	if g := p.Global(5); g != 5 {
		t.Fatalf("empty piecewise Global = %v", g)
	}
	p = NewPiecewiseAdjuster([]Pair{{10, 3}})
	if g := p.Global(5); g != 12 {
		t.Fatalf("single-pair piecewise Global = %v, want offset mapping 12", g)
	}
}

func TestFilterOutliersDropsDescheduledPair(t *testing.T) {
	c := NewLocal(0, 1e-5, 0, 1, 1)
	pairs := samplePairs(c, 50, Second)
	// Pair 25 suffered a 5 ms de-schedule between the global and local read.
	pairs[25].Local += 5 * Millisecond
	filtered := FilterOutliers(pairs, 1e-3)
	if len(filtered) != len(pairs)-1 {
		t.Fatalf("filtered %d pairs, want %d", len(filtered), len(pairs)-1)
	}
	for _, p := range filtered {
		if p == pairs[25] {
			t.Fatal("outlier pair survived filtering")
		}
	}
	// Ratio from filtered pairs should be near-exact again.
	want := 1 / (1 + 1e-5)
	if r := RMSRatio(filtered); math.Abs(r-want) > 1e-9 {
		t.Fatalf("post-filter RMSRatio = %.12f, want %.12f", r, want)
	}
}

func TestFilterOutliersKeepsCleanData(t *testing.T) {
	c := NewLocal(0, 3e-5, 0, 1, 1)
	pairs := samplePairs(c, 30, Second)
	filtered := FilterOutliers(pairs, 1e-3)
	if len(filtered) != len(pairs) {
		t.Fatalf("clean data lost %d pairs", len(pairs)-len(filtered))
	}
}

func TestFilterOutliersSmallInputs(t *testing.T) {
	pairs := []Pair{{0, 0}, {1, 1}}
	got := FilterOutliers(pairs, 1e-3)
	if len(got) != 2 {
		t.Fatalf("small input mangled: %v", got)
	}
}

func TestRMSRatioWithJitterCloseToTruth(t *testing.T) {
	c := NewLocal(0, 4e-5, 500, Microsecond, 99)
	var pairs []Pair
	for i := 0; i < 140; i++ {
		pairs = append(pairs, SamplePair(c, Time(i)*Second, 0))
	}
	r := RMSRatio(pairs)
	want := 1 / (1 + 4e-5)
	if math.Abs(r-want) > 5e-6 {
		t.Fatalf("jittered RMSRatio = %.9f, want ~%.9f", r, want)
	}
}

func TestSamplePairDescheduleDelayShowsUp(t *testing.T) {
	c := NewLocal(0, 0, 0, 1, 1)
	p := SamplePair(c, 10*Second, 3*Millisecond)
	if p.Local-p.Global != 3*Millisecond {
		t.Fatalf("deschedule delay not reflected: %+v", p)
	}
}

func TestQuickScaleMonotone(t *testing.T) {
	f := func(a, b int32, rSeed uint8) bool {
		r := 0.999 + float64(rSeed)/128000.0 // ratios near 1
		x, y := Time(a), Time(b)
		if x > y {
			x, y = y, x
		}
		return scale(x, r) <= scale(y, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRatioAdjusterRecoversDrift(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 40; trial++ {
		drift := (rng.Float64() - 0.5) * 4e-4
		offset := Time(rng.Int63n(int64(10 * Second)))
		c := NewLocal(offset, drift, 0, 1, 1)
		pairs := samplePairs(c, 30, 2*Second)
		a := NewRatioAdjuster(pairs)
		samples := []Time{Second, 13 * Second, 55 * Second}
		if worst := MaxAbsError(a, c, samples); worst > 20*Microsecond {
			t.Fatalf("trial %d (drift %g): worst error %v", trial, drift, worst)
		}
	}
}

func TestMaxAbsError(t *testing.T) {
	c := NewLocal(0, 0, 0, 1, 1)
	bad := &RatioAdjuster{G0: 0, L0: 0, R: 1.001}
	got := MaxAbsError(bad, c, []Time{1000 * Second})
	if got != Second {
		t.Fatalf("MaxAbsError = %v, want 1s", got)
	}
}

func TestParseWindow(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi Time
		ok     bool
	}{
		{"0.5:2", FromSeconds(0.5), 2 * Second, true},
		{":2", math.MinInt64, 2 * Second, true},
		{"0.5:", FromSeconds(0.5), math.MaxInt64, true},
		{":", math.MinInt64, math.MaxInt64, true},
		{"2:1", 0, 0, false},
		{"nope", 0, 0, false},
		{"a:1", 0, 0, false},
		{"1:b", 0, 0, false},
		// ParseFloat accepts these; ParseWindow must not.
		{"NaN:1", 0, 0, false},
		{"1:NaN", 0, 0, false},
		{"Inf:1", 0, 0, false},
		{"-Inf:Inf", 0, 0, false},
		{"1:+Inf", 0, 0, false},
		{"1e300:2e300", 0, 0, false},
		{"-1e300:", 0, 0, false},
	}
	for _, tc := range cases {
		lo, hi, err := ParseWindow(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseWindow(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (lo != tc.lo || hi != tc.hi) {
			t.Errorf("ParseWindow(%q) = [%d %d], want [%d %d]", tc.in, lo, hi, tc.lo, tc.hi)
		}
	}
}
