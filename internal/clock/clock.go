// Package clock models the clock environment of the paper's IBM SP
// system: each SMP node has a free-running local clock whose crystal
// drifts relative to true time, and the switch adapter provides a
// globally synchronized clock that is expensive to read. It also
// implements the paper's clock-synchronization arithmetic (§2.2): the
// periodic (global, local) timestamp pairs, the global-to-local ratio
// computed as the root mean square of adjacent slope segments, the
// alternatives the paper discusses (first-point slopes, last-pair slope,
// piecewise segment ratios), and the outlier filtering the paper's
// Summary suggests for pairs polluted by a thread de-schedule between
// the two clock reads.
package clock

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"tracefw/internal/xrand"
)

// Time is a point in time or a duration in nanoseconds. True (switch
// adapter) time and local clock readings share this representation.
type Time int64

// Common duration units, in Time (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to Time.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// String formats the time in seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// ParseWindow parses a "lo:hi" time window in seconds (e.g. "0.5:2")
// as used by the analysis CLIs' -window flags. Either side may be empty:
// ":2" means from the start of the run, "0.5:" means to the end (hi
// becomes the maximum Time). lo must not exceed hi.
func ParseWindow(s string) (lo, hi Time, err error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("clock: window %q is not lo:hi", s)
	}
	lo, hi = math.MinInt64, math.MaxInt64
	if left := s[:i]; left != "" {
		if lo, err = parseWindowBound("start", left); err != nil {
			return 0, 0, err
		}
	}
	if right := s[i+1:]; right != "" {
		if hi, err = parseWindowBound("end", right); err != nil {
			return 0, 0, err
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("clock: window %q has start after end", s)
	}
	return lo, hi, nil
}

// parseWindowBound parses one side of a window. ParseFloat accepts
// "NaN" and "Inf", which would turn into nonsense Time values (the
// float-to-int conversion of a non-finite or out-of-range value is not
// specified), so both are rejected here along with any magnitude the
// Time range cannot hold.
func parseWindowBound(side, s string) (Time, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("clock: window %s %q: %w", side, s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("clock: window %s %q is not finite", side, s)
	}
	if math.Abs(v) > math.MaxInt64/float64(Second) {
		return 0, fmt.Errorf("clock: window %s %q overflows the time range", side, s)
	}
	return FromSeconds(v), nil
}

// Local is a simulated local clock. The clock reading at true time t is
//
//	local(t) = Offset + (1+Drift)·t  (+ jitter, quantized to Granularity)
//
// Drift is the fractional frequency error of the crystal; values around
// ±1e-5..1e-4 (10–100 µs/s) match the magnitudes visible in the paper's
// Figure 1, where discrepancies of several milliseconds accumulate over
// 140 seconds.
type Local struct {
	Offset      Time    // local reading at true time zero
	Drift       float64 // fractional rate error ((1+Drift) local units per true unit)
	JitterNS    float64 // stddev of symmetric read noise, nanoseconds
	Granularity Time    // reading is truncated to a multiple of this (0 or 1: none)

	rng *xrand.Rand
}

// NewLocal builds a local clock. seed controls the jitter stream only;
// two clocks with equal parameters and seeds read identically.
func NewLocal(offset Time, drift float64, jitterNS float64, granularity Time, seed uint64) *Local {
	return &Local{
		Offset:      offset,
		Drift:       drift,
		JitterNS:    jitterNS,
		Granularity: granularity,
		rng:         xrand.New(seed),
	}
}

// ReadAt returns the local clock value at true time t. Successive calls
// with the same t may differ by jitter; the noiseless value is ValueAt.
func (c *Local) ReadAt(t Time) Time {
	v := c.ValueAt(t)
	if c.JitterNS > 0 && c.rng != nil {
		v += Time(math.Round(c.rng.NormFloat64() * c.JitterNS))
	}
	if c.Granularity > 1 {
		v -= v % c.Granularity
	}
	return v
}

// ValueAt returns the ideal (noise-free, unquantized) local clock value
// at true time t.
func (c *Local) ValueAt(t Time) Time {
	return c.Offset + t + Time(math.Round(c.Drift*float64(t)))
}

// TrueAt inverts ValueAt: the true time at which the noiseless clock
// reads local. Useful in tests.
func (c *Local) TrueAt(local Time) Time {
	return Time(math.Round(float64(local-c.Offset) / (1 + c.Drift)))
}

// Pair is one global-clock record payload: a reading of the switch
// adapter's global clock and of the node's local clock taken (nominally)
// at the same instant.
type Pair struct {
	Global Time
	Local  Time
}

// SamplePair reads the global clock (identity on true time) and the
// local clock at true time t. descheduleDelay models the paper's failure
// mode: the sampling thread is preempted between the global read and the
// local read, so the local reading is taken descheduleDelay later.
func SamplePair(c *Local, t Time, descheduleDelay Time) Pair {
	return Pair{Global: t, Local: c.ReadAt(t + descheduleDelay)}
}

// RMSRatio implements the paper's equation for the global-to-local clock
// ratio R: the root mean square of the slope segments constructed by
// adjacent pairs of timestamp points,
//
//	R = sqrt( (1/n) · Σ_{i=1..n} ((Gi−Gi−1)/(Li−Li−1))² ).
//
// It returns 1 when fewer than two pairs are given (no drift information),
// and skips degenerate segments with zero local progress.
func RMSRatio(pairs []Pair) float64 {
	sum := 0.0
	n := 0
	for i := 1; i < len(pairs); i++ {
		dl := pairs[i].Local - pairs[i-1].Local
		dg := pairs[i].Global - pairs[i-1].Global
		if dl == 0 {
			continue
		}
		s := float64(dg) / float64(dl)
		sum += s * s
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Sqrt(sum / float64(n))
}

// FirstPointRatio is the alternative the paper rejects: the root mean
// square of all slopes anchored at the first pair (G0,L0), which "gives
// too much weight on the first point in the sequence".
func FirstPointRatio(pairs []Pair) float64 {
	if len(pairs) < 2 {
		return 1
	}
	g0, l0 := pairs[0].Global, pairs[0].Local
	sum := 0.0
	n := 0
	for i := 1; i < len(pairs); i++ {
		dl := pairs[i].Local - l0
		dg := pairs[i].Global - g0
		if dl == 0 {
			continue
		}
		s := float64(dg) / float64(dl)
		sum += s * s
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Sqrt(sum / float64(n))
}

// LastPairRatio is the paper's "slope of the last timestamp pair"
// alternative, suitable when the elapsed trace time is reasonably long:
// the overall slope between the first and last pairs.
func LastPairRatio(pairs []Pair) float64 {
	if len(pairs) < 2 {
		return 1
	}
	first, last := pairs[0], pairs[len(pairs)-1]
	dl := last.Local - first.Local
	if dl == 0 {
		return 1
	}
	return float64(last.Global-first.Global) / float64(dl)
}

// FilterOutliers drops pairs whose adjacent-segment slope deviates from
// the median segment slope by more than tol (fractional, e.g. 1e-3).
// This removes records where "significant discrepancy between the global
// and local clock may be recorded due to, say, thread de-scheduling right
// after accessing the global clock" (paper §5). The first pair is always
// kept; a dropped pair removes only itself.
func FilterOutliers(pairs []Pair, tol float64) []Pair {
	if len(pairs) < 3 {
		return append([]Pair(nil), pairs...)
	}
	slopes := make([]float64, 0, len(pairs)-1)
	for i := 1; i < len(pairs); i++ {
		dl := pairs[i].Local - pairs[i-1].Local
		if dl == 0 {
			continue
		}
		slopes = append(slopes, float64(pairs[i].Global-pairs[i-1].Global)/float64(dl))
	}
	if len(slopes) == 0 {
		return append([]Pair(nil), pairs...)
	}
	sorted := append([]float64(nil), slopes...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]

	out := make([]Pair, 0, len(pairs))
	out = append(out, pairs[0])
	for i := 1; i < len(pairs); i++ {
		prev := out[len(out)-1]
		dl := pairs[i].Local - prev.Local
		if dl == 0 {
			continue
		}
		s := float64(pairs[i].Global-prev.Global) / float64(dl)
		if math.Abs(s-median) <= tol*math.Abs(median) {
			out = append(out, pairs[i])
		}
	}
	return out
}
