package clock

import "sort"

// Adjuster maps local timestamps and durations from one node's trace
// into the global (switch adapter) timebase. The merge utility builds
// one Adjuster per input interval file (paper §3.1).
type Adjuster interface {
	// Global converts a local timestamp to a global timestamp.
	Global(local Time) Time
	// Duration converts a local duration to a global duration.
	Duration(d Time) Time
}

// RatioAdjuster is the paper's primary scheme: the first global clock
// record anchors the start, and a single ratio R (from RMSRatio) scales
// everything after it — "an interval generated from the node with a
// local timestamp S and duration D can be adjusted with a global
// timestamp R*S and duration R*D", applied relative to the anchor so
// independently-started node clocks align.
type RatioAdjuster struct {
	G0, L0 Time    // anchor: the first global clock record
	R      float64 // global-to-local clock ratio
}

// NewRatioAdjuster anchors at the first pair and estimates R with the
// paper's RMS-of-adjacent-slopes equation. With fewer than two pairs the
// ratio defaults to 1 (offset-only alignment).
func NewRatioAdjuster(pairs []Pair) *RatioAdjuster {
	a := &RatioAdjuster{R: 1}
	if len(pairs) > 0 {
		a.G0, a.L0 = pairs[0].Global, pairs[0].Local
	}
	if len(pairs) >= 2 {
		a.R = RMSRatio(pairs)
	}
	return a
}

// Global implements Adjuster.
func (a *RatioAdjuster) Global(local Time) Time {
	return a.G0 + scale(local-a.L0, a.R)
}

// Duration implements Adjuster.
func (a *RatioAdjuster) Duration(d Time) Time { return scale(d, a.R) }

// LastPairAdjuster uses the paper's alternative ratio: the overall slope
// between the first and last pair, "if the elapsed time of the trace is
// reasonably long".
type LastPairAdjuster struct{ RatioAdjuster }

// NewLastPairAdjuster builds the last-pair-slope variant.
func NewLastPairAdjuster(pairs []Pair) *LastPairAdjuster {
	a := &LastPairAdjuster{}
	a.R = 1
	if len(pairs) > 0 {
		a.G0, a.L0 = pairs[0].Global, pairs[0].Local
	}
	if len(pairs) >= 2 {
		a.R = LastPairRatio(pairs)
	}
	return a
}

// PiecewiseAdjuster implements the paper's third scheme: "adjust local
// timestamps using slopes of individual slope segments", partitioning
// elapsed time into n segments each with its own global-to-local ratio.
// Timestamps before the first pair extrapolate with the first segment's
// slope; after the last pair, with the last segment's slope.
type PiecewiseAdjuster struct {
	pairs  []Pair
	slopes []float64 // slopes[i] covers [pairs[i].Local, pairs[i+1].Local)
}

// NewPiecewiseAdjuster builds a per-segment adjuster. Pairs must be in
// increasing local order; degenerate segments are assigned slope 1.
func NewPiecewiseAdjuster(pairs []Pair) *PiecewiseAdjuster {
	p := &PiecewiseAdjuster{pairs: append([]Pair(nil), pairs...)}
	if len(pairs) >= 2 {
		p.slopes = make([]float64, len(pairs)-1)
		for i := 1; i < len(pairs); i++ {
			dl := pairs[i].Local - pairs[i-1].Local
			if dl == 0 {
				p.slopes[i-1] = 1
				continue
			}
			p.slopes[i-1] = float64(pairs[i].Global-pairs[i-1].Global) / float64(dl)
		}
	}
	return p
}

// Global implements Adjuster by linear interpolation inside the segment
// containing local.
func (p *PiecewiseAdjuster) Global(local Time) Time {
	if len(p.pairs) == 0 {
		return local
	}
	if len(p.pairs) == 1 || len(p.slopes) == 0 {
		return p.pairs[0].Global + (local - p.pairs[0].Local)
	}
	// Find the last pair whose Local <= local.
	i := sort.Search(len(p.pairs), func(i int) bool { return p.pairs[i].Local > local }) - 1
	if i < 0 {
		i = 0
	}
	si := i
	if si >= len(p.slopes) {
		si = len(p.slopes) - 1
	}
	return p.pairs[i].Global + scale(local-p.pairs[i].Local, p.slopes[si])
}

// Duration implements Adjuster using the mean segment slope; durations
// are short relative to segment length so any segment's slope is a close
// approximation, and the mean is stable.
func (p *PiecewiseAdjuster) Duration(d Time) Time {
	if len(p.slopes) == 0 {
		return d
	}
	sum := 0.0
	for _, s := range p.slopes {
		sum += s
	}
	return scale(d, sum/float64(len(p.slopes)))
}

func scale(t Time, r float64) Time {
	// Round-to-nearest keeps the mapping monotone for the slope ranges
	// that occur in practice (|r−1| ≪ 1).
	v := float64(t) * r
	if v >= 0 {
		return Time(v + 0.5)
	}
	return Time(v - 0.5)
}

// MaxAbsError evaluates an adjuster against the true mapping of a Local
// clock at the given true-time sample points: it reads the noiseless
// local clock at each point, adjusts it, and returns the maximum
// |adjusted − true| over all samples. Used by the §2.2 estimator
// comparison experiment.
func MaxAbsError(a Adjuster, c *Local, samples []Time) Time {
	var worst Time
	for _, t := range samples {
		adj := a.Global(c.ValueAt(t))
		err := adj - t
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	return worst
}
