package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(4, 2); w != 2 {
		t.Fatalf("Workers(4,2) = %d", w)
	}
	if w := Workers(1, 100); w != 1 {
		t.Fatalf("Workers(1,100) = %d", w)
	}
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0,100) = %d", w)
	}
	if w := Workers(-3, 0); w != 1 {
		t.Fatalf("Workers(-3,0) = %d", w)
	}
}

func TestDoRunsEveryItem(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		var hits [100]int32
		if err := Do(len(hits), p, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("p=%d: item %d ran %d times", p, i, h)
			}
		}
	}
}

func TestDoReportsLowestFailingItem(t *testing.T) {
	errA := errors.New("a")
	for _, p := range []int{1, 2, 8} {
		err := Do(64, p, func(i int) error {
			switch i {
			case 7:
				return fmt.Errorf("item 7: %w", errA)
			case 3:
				return fmt.Errorf("item 3: %w", errA)
			}
			return nil
		})
		if err == nil || !errors.Is(err, errA) {
			t.Fatalf("p=%d: err = %v", p, err)
		}
		// With one worker the loop stops at item 3; with more workers,
		// item 7 may also fail first, but the reported error must still
		// be the lowest-numbered failure that actually ran. Sequential
		// must be exactly item 3.
		if p == 1 && err.Error() != "item 3: a" {
			t.Fatalf("sequential error = %v", err)
		}
	}
}

func TestDoStopsIssuingAfterFailure(t *testing.T) {
	var ran int32
	err := Do(1000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := atomic.LoadInt32(&ran); n > 16 {
		t.Fatalf("%d items ran after failure", n)
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestOrderedReducerOrder: reductions land in ascending item order no
// matter how the workers interleave.
func TestOrderedReducerOrder(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		red := NewOrderedReducer()
		var got []int
		if err := Do(200, p, func(i int) error {
			return red.Reduce(i, func() error {
				got = append(got, i)
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 200 {
			t.Fatalf("p=%d: %d reductions", p, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("p=%d: reduction %d got item %d", p, i, v)
			}
		}
	}
}

// TestOrderedReducerAbort: after an abort, parked workers return nil
// promptly instead of waiting for a turn that never comes.
func TestOrderedReducerAbort(t *testing.T) {
	red := NewOrderedReducer()
	var reduced int32
	err := Do(64, 4, func(i int) error {
		if i == 0 {
			red.Abort()
			return errors.New("item 0 failed")
		}
		return red.Reduce(i, func() error {
			atomic.AddInt32(&reduced, 1)
			return nil
		})
	})
	if err == nil || err.Error() != "item 0 failed" {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&reduced); n != 0 {
		t.Fatalf("%d reductions ran after abort of item 0", n)
	}
}

// TestOrderedReducerError: a failing reduction poisons the reducer —
// later items do not reduce.
func TestOrderedReducerError(t *testing.T) {
	red := NewOrderedReducer()
	var after int32
	err := Do(32, 4, func(i int) error {
		return red.Reduce(i, func() error {
			if i == 3 {
				return errors.New("reduce 3 failed")
			}
			if i > 3 {
				atomic.AddInt32(&after, 1)
			}
			return nil
		})
	})
	if err == nil || err.Error() != "reduce 3 failed" {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&after); n != 0 {
		t.Fatalf("%d reductions ran past the failing one", n)
	}
}
