// Package par provides the tiny bounded worker pool the trace-processing
// utilities share. It exists so that the parallel convert and merge
// paths agree on worker accounting and error semantics: work items are
// independent, the pool is bounded, and the error reported is the one
// from the lowest-numbered failing item, which keeps parallel failures
// deterministic even though completion order is not.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: p <= 0 means GOMAXPROCS(0), and
// the result is capped by the item count n.
func Workers(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// OrderedReducer serializes reduce calls into ascending item order: work
// items complete on any goroutine in any order, and each then waits its
// turn here, so the reduction observes partial results in exactly the
// sequence a sequential run would produce. It is the byte-identity
// backbone of the interval map-reduce engine, and the shard router's
// scatter-gather reuses it to merge per-backend partial responses in
// frame (segment) order. Because a worker only takes a new item after
// reducing its previous one, at most pool-size items are ever parked.
type OrderedReducer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	next   int
	failed bool
}

// NewOrderedReducer builds a reducer expecting items numbered from 0.
func NewOrderedReducer() *OrderedReducer {
	o := &OrderedReducer{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Abort wakes every parked worker after a failure so none waits for a
// turn that will never come.
func (o *OrderedReducer) Abort() {
	o.mu.Lock()
	o.failed = true
	o.cond.Broadcast()
	o.mu.Unlock()
}

// Reduce runs fn once items 0..i-1 have reduced. After an Abort it
// returns nil without running fn; the aborting item's error is the one
// the caller reports.
func (o *OrderedReducer) Reduce(i int, fn func() error) error {
	o.mu.Lock()
	for o.next != i && !o.failed {
		o.cond.Wait()
	}
	if o.failed {
		o.mu.Unlock()
		return nil
	}
	err := fn()
	if err != nil {
		o.failed = true
	}
	o.next++
	o.cond.Broadcast()
	o.mu.Unlock()
	return err
}

// Do runs fn(0) … fn(n-1) on at most Workers(p, n) goroutines and waits
// for completion. With one worker it runs inline on the caller's
// goroutine and stops at the first error, exactly like a plain loop.
// With more workers, all items may start; once any item fails no new
// items are started, and the error returned is the one from the
// lowest-numbered item that failed.
func Do(n, p int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	p = Workers(p, n)
	if p == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    int64 = -1
		failed  atomic.Bool
		mu      sync.Mutex
		errIdx  = n
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
