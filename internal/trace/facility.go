package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

// Options configures tracing for one run (paper §2.1: "a mechanism is
// provided to specify a set of trace options, such as the name prefix of
// the trace files, trace buffer size, and events to be traced").
type Options struct {
	// Prefix is the trace file name prefix; node n writes Prefix.n.
	Prefix string
	// BufferSize is the in-memory trace buffer size in bytes before a
	// flush to the file. Zero selects a default of 1 MiB.
	BufferSize int
	// Enabled selects which event classes are traced.
	Enabled events.Mask
	// DelayStart suppresses tracing until Start is called, so only a
	// portion of the code is traced "to substantially reduce the amount
	// of trace data".
	DelayStart bool
	// Wrap selects the AIX trace facility's circular mode: instead of
	// flushing to the file as the buffer fills, only the most recent
	// BufferSize bytes of records are retained and written at Flush or
	// Close. The resulting trace starts mid-stream; convert it with the
	// tolerant option.
	Wrap bool
}

func (o Options) bufferSize() int {
	if o.BufferSize <= 0 {
		return 1 << 20
	}
	return o.BufferSize
}

// FileName returns the raw trace file name for a node under these options.
func (o Options) FileName(node int) string {
	return fmt.Sprintf("%s.%d", o.Prefix, node)
}

// Raw trace file header: magic, version, node id, cpu count, enabled mask.
const (
	rawMagic      = "UTRAW1\x00\x00"
	rawHeaderSize = RawHeaderSize
)

// RawHeaderSize is the length of the raw trace file header (magic,
// version, node id, cpu count, enabled mask). Streaming ingest uses it
// to split a node's preamble batch into header and records.
const RawHeaderSize = 8 + 4 + 4 + 4 + 4

// Facility is the per-node trace recorder. Methods are safe for
// concurrent use by the simulated threads of one node.
type Facility struct {
	mu     sync.Mutex
	opts   Options
	node   int
	ncpus  int
	w      io.Writer
	closer io.Closer
	buf    []byte
	// Wrap mode: ring of encoded records, evicted oldest-first.
	ring      [][]byte
	ringBytes int
	started   bool
	dropped   int64               // records suppressed while stopped/disabled
	cut       int64               // records written
	seqno     map[[2]int32]uint64 // per (src,dst) message sequence numbers
	err       error
}

// NewFacility creates the trace recorder for one node, writing the raw
// trace file header immediately. The caller owns closing via Close.
func NewFacility(opts Options, node, ncpus int, w io.Writer) (*Facility, error) {
	f := &Facility{
		opts:    opts,
		node:    node,
		ncpus:   ncpus,
		w:       w,
		buf:     make([]byte, 0, opts.bufferSize()),
		started: !opts.DelayStart,
		seqno:   make(map[[2]int32]uint64),
	}
	if c, ok := w.(io.Closer); ok {
		f.closer = c
	}
	var hdr [rawHeaderSize]byte
	copy(hdr[:8], rawMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(node))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(ncpus))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(opts.Enabled))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing raw header: %w", err)
	}
	return f, nil
}

// CreateNodeFile opens the node's raw trace file per the options prefix
// and returns a Facility writing to it.
func CreateNodeFile(opts Options, node, ncpus int) (*Facility, error) {
	fp, err := os.Create(opts.FileName(node))
	if err != nil {
		return nil, err
	}
	f, err := NewFacility(opts, node, ncpus, fp)
	if err != nil {
		fp.Close()
		return nil, err
	}
	return f, nil
}

// Node returns the node id this facility records for.
func (f *Facility) Node() int { return f.node }

// Start enables tracing (used with Options.DelayStart).
func (f *Facility) Start() {
	f.mu.Lock()
	f.started = true
	f.mu.Unlock()
}

// Stop disables tracing; records cut while stopped are counted as dropped.
func (f *Facility) Stop() {
	f.mu.Lock()
	f.started = false
	f.mu.Unlock()
}

// Cut records one event. This is the hot path: it tests whether the
// event is enabled, then appends the encoded record to the trace buffer,
// flushing to the file when the buffer fills (paper §2.1's three-part
// cost model; the first two parts happen here).
func (f *Facility) Cut(r *Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.started || !f.opts.Enabled.Enabled(r.Type) {
		f.dropped++
		return
	}
	if f.opts.Wrap {
		enc := r.Encode(nil)
		f.ring = append(f.ring, enc)
		f.ringBytes += len(enc)
		limit := f.opts.bufferSize()
		for f.ringBytes > limit && len(f.ring) > 1 {
			f.ringBytes -= len(f.ring[0])
			f.ring[0] = nil
			f.ring = f.ring[1:]
			f.dropped++
		}
		f.cut++
		return
	}
	if len(f.buf)+r.EncodedSize() > cap(f.buf) {
		f.flushLocked()
	}
	f.buf = r.Encode(f.buf)
	f.cut++
}

// NextSeqno returns the next point-to-point message sequence number for
// the (srcTask, dstTask) pair. The tracing library "adds a unique
// sequence number to each point-to-point message passing event record so
// that utilities can match sends with corresponding receives".
func (f *Facility) NextSeqno(src, dst int32) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := [2]int32{src, dst}
	f.seqno[k]++
	return f.seqno[k]
}

// Counts returns (records written, records dropped).
func (f *Facility) Counts() (cut, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cut, f.dropped
}

func (f *Facility) flushLocked() {
	if f.err != nil {
		f.buf = f.buf[:0]
		return
	}
	if f.opts.Wrap {
		for _, enc := range f.ring {
			if _, err := f.w.Write(enc); err != nil {
				f.err = fmt.Errorf("trace: flushing wrap ring: %w", err)
				break
			}
		}
		f.ring = nil
		f.ringBytes = 0
		return
	}
	if len(f.buf) == 0 {
		return
	}
	if _, err := f.w.Write(f.buf); err != nil && f.err == nil {
		f.err = fmt.Errorf("trace: flushing buffer: %w", err)
	}
	f.buf = f.buf[:0]
}

// Flush writes any buffered records to the underlying writer.
func (f *Facility) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushLocked()
	return f.err
}

// Close flushes and closes the underlying file (if it is a Closer).
func (f *Facility) Close() error {
	f.mu.Lock()
	f.flushLocked()
	err := f.err
	closer := f.closer
	f.closer = nil
	f.mu.Unlock()
	if closer != nil {
		if cerr := closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Convenience cutters used by the runtime layers.

// CutDispatch records a thread being placed on a CPU.
func (f *Facility) CutDispatch(tid int32, t clock.Time, cpu int) {
	f.Cut(&Record{Type: events.EvDispatch, TID: tid, Time: t, Args: []uint64{uint64(cpu)}})
}

// CutUndispatch records a thread leaving a CPU for the given reason.
func (f *Facility) CutUndispatch(tid int32, t clock.Time, cpu, reason int) {
	f.Cut(&Record{Type: events.EvUndispatch, TID: tid, Time: t, Args: []uint64{uint64(cpu), uint64(reason)}})
}

// CutThreadInfo records a thread-registry entry (pid, system thread id,
// MPI task id, thread category) used to build the interval file's thread
// table.
func (f *Facility) CutThreadInfo(tid int32, t clock.Time, pid, systid uint64, task int32, threadType int) {
	f.Cut(&Record{Type: events.EvThreadInfo, TID: tid, Time: t,
		Args: []uint64{pid, systid, uint64(uint32(task)), uint64(threadType)}})
}

// CutGlobalClock records a (global, local) clock pair; the record's Time
// is the local reading, args[0] the global reading.
func (f *Facility) CutGlobalClock(tid int32, local, global clock.Time) {
	f.Cut(&Record{Type: events.EvGlobalClock, TID: tid, Time: local, Args: []uint64{uint64(global)}})
}
