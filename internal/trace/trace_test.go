package trace

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{Type: events.EvDispatch, TID: 3, Time: 12345, Args: []uint64{2}},
		{Type: events.EvMPISend, Edge: events.Entry, TID: 0, Time: -1, Args: []uint64{1, 99, 4096, 7, 0, 0xdead}},
		{Type: events.EvMPISend, Edge: events.Exit, TID: 511, Time: 1 << 60},
		{Type: events.EvMarkerDefine, TID: 5, Time: 42, Args: []uint64{17}, Str: "Initial Phase"},
		{Type: events.EvGlobalClock, TID: 1, Time: 1000, Args: []uint64{999}},
	}
	for i, want := range cases {
		b := want.Encode(nil)
		if len(b) != want.EncodedSize() {
			t.Fatalf("case %d: encoded %d bytes, EncodedSize says %d", i, len(b), want.EncodedSize())
		}
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(b))
		}
		if got.Type != want.Type || got.Edge != want.Edge || got.TID != want.TID ||
			got.Time != want.Time || got.Str != want.Str || !reflect.DeepEqual(got.Args, want.Args) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	r := Record{Type: events.EvMPIRecv, Edge: events.Entry, Args: []uint64{1, 2, 3}}
	b := r.Encode(nil)
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes did not fail", cut, len(b))
		}
	}
}

func TestDecodeConsecutive(t *testing.T) {
	var b []byte
	want := []Record{
		{Type: events.EvDispatch, TID: 1, Time: 10, Args: []uint64{0}},
		{Type: events.EvMarkerBegin, TID: 1, Time: 20, Args: []uint64{3, 0x1234}},
		{Type: events.EvUndispatch, TID: 1, Time: 30, Args: []uint64{0, 1}},
	}
	for i := range want {
		b = want[i].Encode(b)
	}
	off := 0
	for i := range want {
		got, n, err := Decode(b[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
		if got.Type != want[i].Type || got.Time != want[i].Time {
			t.Fatalf("record %d mismatch: %+v", i, got)
		}
	}
	if off != len(b) {
		t.Fatalf("leftover bytes: %d", len(b)-off)
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(ty uint16, edge uint8, tid int32, tm int64, args []uint64, s string) bool {
		if len(args) > 64 {
			args = args[:64]
		}
		if len(s) > 1000 {
			s = s[:1000]
		}
		r := Record{
			Type: events.Type(ty), Edge: events.Edge(edge % 3), TID: tid,
			Time: clock.Time(tm), Args: args, Str: s,
		}
		b := r.Encode(nil)
		got, n, err := Decode(b)
		if err != nil || n != len(b) {
			return false
		}
		if len(args) == 0 && got.Args != nil && len(got.Args) != 0 {
			return false
		}
		for i := range args {
			if got.Args[i] != args[i] {
				return false
			}
		}
		return got.Type == r.Type && got.Edge == r.Edge && got.TID == r.TID &&
			got.Time == r.Time && got.Str == r.Str
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFacilityWriteRead(t *testing.T) {
	var buf bytes.Buffer
	f, err := NewFacility(Options{Enabled: events.MaskAll}, 2, 8, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f.CutDispatch(0, 100, 3)
	f.CutThreadInfo(0, 100, 1234, 5678, 2, events.ThreadMPI)
	f.CutGlobalClock(1, 200, 195)
	f.CutUndispatch(0, 300, 3, events.UndispatchBlock)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Info.Node != 2 || rd.Info.NumCPUs != 8 || rd.Info.Enabled != events.MaskAll {
		t.Fatalf("header mismatch: %+v", rd.Info)
	}
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("read %d records, want 4", len(recs))
	}
	if recs[0].Type != events.EvDispatch || recs[0].Args[0] != 3 {
		t.Fatalf("record 0: %+v", recs[0])
	}
	if recs[2].Type != events.EvGlobalClock || recs[2].Time != 200 || recs[2].Args[0] != 195 {
		t.Fatalf("clock record: %+v", recs[2])
	}
	if recs[3].Args[1] != events.UndispatchBlock {
		t.Fatalf("undispatch reason: %+v", recs[3])
	}
}

func TestFacilityMaskFiltersClasses(t *testing.T) {
	var buf bytes.Buffer
	f, err := NewFacility(Options{Enabled: events.MaskMPI}, 0, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f.CutDispatch(0, 1, 0) // system class: dropped
	f.Cut(&Record{Type: events.EvMPISend, Edge: events.Entry, Time: 2})
	f.CutGlobalClock(0, 3, 3) // infrastructure: always kept
	f.Flush()
	cut, dropped := f.Counts()
	if cut != 2 || dropped != 1 {
		t.Fatalf("cut=%d dropped=%d, want 2/1", cut, dropped)
	}
	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	recs, _ := rd.ReadAll()
	if len(recs) != 2 || recs[0].Type != events.EvMPISend || recs[1].Type != events.EvGlobalClock {
		t.Fatalf("unexpected records: %+v", recs)
	}
}

func TestFacilityDelayedStart(t *testing.T) {
	var buf bytes.Buffer
	f, _ := NewFacility(Options{Enabled: events.MaskAll, DelayStart: true}, 0, 1, &buf)
	f.CutDispatch(0, 1, 0) // before Start: dropped
	f.Start()
	f.CutDispatch(0, 2, 0)
	f.Stop()
	f.CutDispatch(0, 3, 0) // after Stop: dropped
	f.Flush()
	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	recs, _ := rd.ReadAll()
	if len(recs) != 1 || recs[0].Time != 2 {
		t.Fatalf("delayed start window wrong: %+v", recs)
	}
}

func TestFacilityBufferFlushing(t *testing.T) {
	var buf bytes.Buffer
	// Tiny buffer forces many flushes; everything must still arrive.
	f, _ := NewFacility(Options{Enabled: events.MaskAll, BufferSize: 64}, 0, 1, &buf)
	const n = 1000
	for i := 0; i < n; i++ {
		f.CutDispatch(int32(i%4), clock.Time(i), i%2)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Time != clock.Time(i) {
			t.Fatalf("record %d out of order: time %d", i, r.Time)
		}
	}
}

func TestSeqnoPerPair(t *testing.T) {
	var buf bytes.Buffer
	f, _ := NewFacility(Options{Enabled: events.MaskAll}, 0, 1, &buf)
	if s := f.NextSeqno(0, 1); s != 1 {
		t.Fatalf("first seqno = %d", s)
	}
	if s := f.NextSeqno(0, 1); s != 2 {
		t.Fatalf("second seqno = %d", s)
	}
	if s := f.NextSeqno(1, 0); s != 1 {
		t.Fatalf("reverse pair seqno = %d", s)
	}
	if s := f.NextSeqno(0, 2); s != 1 {
		t.Fatalf("other pair seqno = %d", s)
	}
}

func TestCreateNodeFileAndOpenFile(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Prefix: filepath.Join(dir, "tr"), Enabled: events.MaskAll}
	f, err := CreateNodeFile(opts, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.CutDispatch(0, 7, 1)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenFile(opts.FileName(3))
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Info.Node != 3 || rd.Info.NumCPUs != 4 {
		t.Fatalf("file info: %+v", rd.Info)
	}
	recs, err := rd.ReadAll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACEFILE WITH ENOUGH BYTES"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderEOFAfterLastRecord(t *testing.T) {
	var buf bytes.Buffer
	f, _ := NewFacility(Options{Enabled: events.MaskAll}, 0, 1, &buf)
	f.CutDispatch(0, 1, 0)
	f.Flush()
	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestFileNameFormat(t *testing.T) {
	o := Options{Prefix: "/tmp/run"}
	if got := o.FileName(12); got != "/tmp/run.12" {
		t.Fatalf("FileName = %q", got)
	}
}

func BenchmarkCutTraceRecord(b *testing.B) {
	// Paper §2.1: the first two parts of cutting a record (enable test +
	// buffer insertion) cost a small fraction of a microsecond.
	f, _ := NewFacility(Options{Enabled: events.MaskAll, BufferSize: 1 << 22}, 0, 1, io.Discard)
	rec := &Record{Type: events.EvMPISend, Edge: events.Entry, TID: 1, Args: []uint64{1, 2, 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Time = clock.Time(i)
		f.Cut(rec)
	}
}

func TestWrapModeKeepsNewestRecords(t *testing.T) {
	var buf bytes.Buffer
	f, err := NewFacility(Options{Enabled: events.MaskAll, Wrap: true, BufferSize: 512}, 0, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		f.CutDispatch(0, clock.Time(i), 0)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= n || len(recs) == 0 {
		t.Fatalf("wrap kept %d of %d records", len(recs), n)
	}
	// The retained window is the newest suffix, contiguous and in order.
	first := recs[0].Time
	for i, r := range recs {
		if r.Time != first+clock.Time(i) {
			t.Fatalf("window not contiguous at %d: %v", i, r.Time)
		}
	}
	if recs[len(recs)-1].Time != clock.Time(n-1) {
		t.Fatalf("newest record missing: %v", recs[len(recs)-1].Time)
	}
	cut, dropped := f.Counts()
	if cut != n || dropped != int64(n-len(recs)) {
		t.Fatalf("cut=%d dropped=%d retained=%d", cut, dropped, len(recs))
	}
}

func TestWrapModeBounded(t *testing.T) {
	var buf bytes.Buffer
	f, _ := NewFacility(Options{Enabled: events.MaskAll, Wrap: true, BufferSize: 1024}, 0, 1, &buf)
	for i := 0; i < 100000; i++ {
		f.CutDispatch(int32(i%8), clock.Time(i), i%2)
	}
	f.Flush()
	if buf.Len() > 1024+rawHeaderSize+64 {
		t.Fatalf("wrap buffer leaked: %d bytes written", buf.Len())
	}
}
