// Package trace implements the unified tracing facility of the paper's
// §2: an AIX-trace-like, per-node event recorder. Each record starts
// with a hookword identifying the event type and record length, followed
// by a local-clock timestamp and payload words; one raw trace file is
// produced per SMP node. The facility supports trace options (file name
// prefix, buffer size, enabled event classes, delayed start) and is
// cheap enough that cutting a record costs a small fraction of a
// microsecond (benchmarked in the repository root).
package trace

import (
	"encoding/binary"
	"fmt"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

// Record is one raw trace event.
type Record struct {
	Type events.Type // event type (hookword high bits)
	Edge events.Edge // point/entry/exit
	TID  int32       // node-local logical thread id
	Time clock.Time  // local-clock timestamp
	Args []uint64    // payload words, layout per event type
	Str  string      // optional string payload (marker names)
}

// Record header layout:
//
//	u32 hookword = type<<16 | edge<<12 | nargs (nargs in low 12 bits)
//	u32 tid
//	i64 local timestamp
//	nargs × u64 args
//	u16 strlen, strlen bytes   (only if hook flag strBit set)
//
// The hookword's bit 15 flags a string payload.
const (
	recHeaderSize = 4 + 4 + 8
	strBit        = 1 << 15
	maxArgs       = 1<<12 - 1
)

// EncodedSize returns the number of bytes Encode will produce.
func (r *Record) EncodedSize() int {
	n := recHeaderSize + 8*len(r.Args)
	if r.Str != "" {
		n += 2 + len(r.Str)
	}
	return n
}

// Encode appends the binary form of r to dst and returns the extended
// slice. It panics on impossible records (too many args, oversized
// string): those are programming errors in the tracing library, not
// runtime conditions.
func (r *Record) Encode(dst []byte) []byte {
	if len(r.Args) > maxArgs {
		panic(fmt.Sprintf("trace: record with %d args", len(r.Args)))
	}
	if len(r.Str) > 0xffff {
		panic("trace: string payload too long")
	}
	hook := uint32(r.Type)<<16 | uint32(r.Edge&0x7)<<12 | uint32(len(r.Args))
	if r.Str != "" {
		hook |= strBit
	}
	var buf [recHeaderSize]byte
	binary.LittleEndian.PutUint32(buf[0:], hook)
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.TID))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.Time))
	dst = append(dst, buf[:]...)
	var w [8]byte
	for _, a := range r.Args {
		binary.LittleEndian.PutUint64(w[:], a)
		dst = append(dst, w[:]...)
	}
	if r.Str != "" {
		binary.LittleEndian.PutUint16(w[:2], uint16(len(r.Str)))
		dst = append(dst, w[:2]...)
		dst = append(dst, r.Str...)
	}
	return dst
}

// Decode parses one record from b, returning the record and the number
// of bytes consumed.
func Decode(b []byte) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, fmt.Errorf("trace: truncated record header (%d bytes)", len(b))
	}
	hook := binary.LittleEndian.Uint32(b[0:])
	r := Record{
		Type: events.Type(hook >> 16),
		Edge: events.Edge(hook >> 12 & 0x7),
		TID:  int32(binary.LittleEndian.Uint32(b[4:])),
		Time: clock.Time(binary.LittleEndian.Uint64(b[8:])),
	}
	nargs := int(hook & 0xfff)
	n := recHeaderSize
	if len(b) < n+8*nargs {
		return Record{}, 0, fmt.Errorf("trace: truncated record args (want %d words)", nargs)
	}
	if nargs > 0 {
		r.Args = make([]uint64, nargs)
		for i := range r.Args {
			r.Args[i] = binary.LittleEndian.Uint64(b[n:])
			n += 8
		}
	}
	if hook&strBit != 0 {
		if len(b) < n+2 {
			return Record{}, 0, fmt.Errorf("trace: truncated string length")
		}
		sl := int(binary.LittleEndian.Uint16(b[n:]))
		n += 2
		if len(b) < n+sl {
			return Record{}, 0, fmt.Errorf("trace: truncated string payload")
		}
		r.Str = string(b[n : n+sl])
		n += sl
	}
	return r, n, nil
}
