package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"tracefw/internal/events"
)

// FileInfo is the decoded raw trace file header.
type FileInfo struct {
	Node    int
	NumCPUs int
	Enabled events.Mask
}

// Reader iterates over the records of one raw trace file.
type Reader struct {
	Info FileInfo

	r      *bufio.Reader
	closer io.Closer
	// staging buffer for one record
	hdr [recHeaderSize]byte
	buf []byte
}

// NewReader parses the raw trace header from r and returns a record
// iterator.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [rawHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading raw header: %w", err)
	}
	if string(hdr[:8]) != rawMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:8])
	}
	rd := &Reader{
		Info: FileInfo{
			Node:    int(binary.LittleEndian.Uint32(hdr[8:])),
			NumCPUs: int(binary.LittleEndian.Uint32(hdr[12:])),
			Enabled: events.Mask(binary.LittleEndian.Uint32(hdr[16:])),
		},
		r: br,
	}
	if c, ok := r.(io.Closer); ok {
		rd.closer = c
	}
	return rd, nil
}

// OpenFile opens the named raw trace file.
func OpenFile(name string) (*Reader, error) {
	fp, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	rd, err := NewReader(fp)
	if err != nil {
		fp.Close()
		return nil, err
	}
	return rd, nil
}

// Next returns the next record, or io.EOF after the last one.
func (rd *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading record header: %w", err)
	}
	hook := binary.LittleEndian.Uint32(rd.hdr[0:])
	nargs := int(hook & 0xfff)
	rest := 8 * nargs
	hasStr := hook&strBit != 0
	if hasStr {
		rest += 2
	}
	if cap(rd.buf) < rest {
		rd.buf = make([]byte, rest, rest+256)
	}
	rd.buf = rd.buf[:rest]
	if _, err := io.ReadFull(rd.r, rd.buf); err != nil {
		return Record{}, fmt.Errorf("trace: reading record body: %w", err)
	}
	var strBytes []byte
	if hasStr {
		sl := int(binary.LittleEndian.Uint16(rd.buf[rest-2:]))
		strBytes = make([]byte, sl)
		if _, err := io.ReadFull(rd.r, strBytes); err != nil {
			return Record{}, fmt.Errorf("trace: reading string payload: %w", err)
		}
	}
	// Reassemble a contiguous byte image and use Decode so the two code
	// paths cannot diverge.
	full := make([]byte, 0, recHeaderSize+rest+len(strBytes))
	full = append(full, rd.hdr[:]...)
	full = append(full, rd.buf...)
	full = append(full, strBytes...)
	rec, _, err := Decode(full)
	if err != nil {
		return Record{}, err
	}
	return rec, nil
}

// ReadAll drains the reader, returning every remaining record.
func (rd *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		r, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
}

// Close closes the underlying file if the reader owns one.
func (rd *Reader) Close() error {
	if rd.closer != nil {
		c := rd.closer
		rd.closer = nil
		return c.Close()
	}
	return nil
}
