package render

import (
	"fmt"
	"strings"

	"tracefw/internal/clock"
	"tracefw/internal/slog"
	"tracefw/internal/stats"
)

// PreviewSVG renders the whole-run preview of a SLOG file (the smaller
// window of the paper's Figure 7): one stacked bar per time bin, state
// durations stacked by color.
func PreviewSVG(p *slog.Preview) string {
	keys := make([]string, len(p.States))
	for i, ty := range p.States {
		keys[i] = ty.Name()
	}
	const (
		w      = 800.0
		h      = 220.0
		left   = 60.0
		bottom = 40.0
	)
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, int(w+left+20), int(h+bottom+40))
	sb.WriteString(`<text x="4" y="14" font-weight="bold">preview</text>` + "\n")
	if len(p.Dur) == 0 || len(p.Dur[0]) == 0 {
		// Empty preview (no states or zero bins): an empty chart shell
		// rather than a panic.
		sb.WriteString(emptyPreviewNote(p))
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	bins := len(p.Dur[0])
	// Peak stacked duration over bins scales the y axis.
	totals, peak := stackedPeak(p.Dur, -1)
	if allZero(totals) {
		// A window that overlaps no records: a placeholder note instead
		// of an axis over bounds no bar will ever reference.
		sb.WriteString(emptyPreviewNote(p))
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	bw := w / float64(bins)
	for b := 0; b < bins; b++ {
		y := h + 20
		for s := range p.Dur {
			d := p.Dur[s][b]
			if d == 0 {
				continue
			}
			hh := float64(d) / float64(peak) * h
			y -= hh
			fmt.Fprintf(&sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"><title>%s bin %d: %v</title></rect>`+"\n",
				left+float64(b)*bw, y, bw-0.5, hh, colorFor(keys, keys[s]), keys[s], b, d)
		}
	}
	// Axis: run time across bins. Legend only for states that appear.
	timeAxis(&sb, p.TStart, p.TEnd, 5, left, w, h+34, 0, 0, "%.1fs")
	legend(&sb, keys, func(s int) bool {
		var tot clock.Time
		for _, d := range p.Dur[s] {
			tot += d
		}
		return tot != 0
	}, left, left+w-120, h+48.0)
	sb.WriteString("</svg>\n")
	return sb.String()
}

// PreviewASCII renders the preview as a text histogram: one line per bin
// with a bar proportional to the bin's total non-Running duration.
func PreviewASCII(p *slog.Preview, width int) string {
	if width <= 0 {
		width = 60
	}
	runningIdx := -1
	for i, ty := range p.States {
		if ty.Name() == "Running" {
			runningIdx = i
		}
	}
	// Running time is background, not signal; exclude it from the bars.
	totals, peak := stackedPeak(p.Dur, runningIdx)
	var sb strings.Builder
	fmt.Fprintf(&sb, "preview: interesting time per bin, run [%v .. %v]\n", p.TStart, p.TEnd)
	if allZero(stackedTotals(p.Dur)) {
		sb.WriteString("(no data in window)\n")
		return sb.String()
	}
	for b := range totals {
		lo, _ := p.BinBounds(b)
		n := int(int64(totals[b]) * int64(width) / int64(peak))
		fmt.Fprintf(&sb, "%8.2fs |%s\n", lo.Seconds(), strings.Repeat("#", n))
	}
	return sb.String()
}

// StatsHeatmapSVG renders a two-free-variable table (like Figure 6's
// node × bin table) as a heatmap: x = second free variable, y = first,
// cell intensity = first y column.
func StatsHeatmapSVG(tb *stats.Table) string {
	// Collect axes.
	var ys, xs []string
	seenY, seenX := map[string]bool{}, map[string]bool{}
	vals := map[[2]string]float64{}
	var peak float64
	for _, r := range tb.Rows {
		if len(r.X) < 2 || len(r.Y) < 1 {
			continue
		}
		yk, xk := r.X[0].Text(), r.X[1].Text()
		if !seenY[yk] {
			seenY[yk] = true
			ys = append(ys, yk)
		}
		if !seenX[xk] {
			seenX[xk] = true
			xs = append(xs, xk)
		}
		vals[[2]string{yk, xk}] = r.Y[0]
		if r.Y[0] > peak {
			peak = r.Y[0]
		}
	}
	peak = peakOr1(peak)
	const cell = 14.0
	left, top := 80.0, 30.0
	wTotal := int(left + float64(len(xs))*cell + 20)
	hTotal := int(top + float64(len(ys))*cell + 50)
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, wTotal, hTotal)
	fmt.Fprintf(&sb, `<text x="4" y="14" font-weight="bold">%s</text>`+"\n", escape(tb.Name))
	for yi, yk := range ys {
		fmt.Fprintf(&sb, `<text x="4" y="%.1f">%s</text>`+"\n", top+float64(yi)*cell+11, escape(yk))
		for xi, xk := range xs {
			v := vals[[2]string{yk, xk}]
			shade := int(255 - v/peak*200)
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,255)" stroke="#eee" stroke-width="0.5"><title>%s/%s = %g</title></rect>`+"\n",
				left+float64(xi)*cell, top+float64(yi)*cell, cell, cell, shade, shade, escape(yk), escape(xk), v)
		}
	}
	fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" fill="#555">%s →</text>`+"\n",
		left, top+float64(len(ys))*cell+16, escape(xLabel(tb)))
	sb.WriteString("</svg>\n")
	return sb.String()
}

// StatsBarsSVG renders a one-free-variable table as horizontal bars
// using the first y column.
func StatsBarsSVG(tb *stats.Table) string {
	var peak float64
	for _, r := range tb.Rows {
		if len(r.Y) > 0 && r.Y[0] > peak {
			peak = r.Y[0]
		}
	}
	peak = peakOr1(peak)
	const rowHt = 16.0
	left := 160.0
	w := 600.0
	hTotal := int(30 + float64(len(tb.Rows))*rowHt + 20)
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, int(left+w+80), hTotal)
	fmt.Fprintf(&sb, `<text x="4" y="14" font-weight="bold">%s</text>`+"\n", escape(tb.Name))
	for i, r := range tb.Rows {
		y := 24 + float64(i)*rowHt
		label := ""
		for j, x := range r.X {
			if j > 0 {
				label += "/"
			}
			label += x.Text()
		}
		v := 0.0
		if len(r.Y) > 0 {
			v = r.Y[0]
		}
		fmt.Fprintf(&sb, `<text x="4" y="%.1f">%s</text>`+"\n", y+11, escape(label))
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.1f" fill="%s"/>`+"\n",
			left, y, v/peak*w, rowHt-3, palette[0])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" fill="#555">%g</text>`+"\n", left+v/peak*w+4, y+11, v)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// emptyPreviewNote is the shared placeholder drawn when a preview has
// nothing to show — no states, zero bins, or a window overlapping no
// records.
func emptyPreviewNote(p *slog.Preview) string {
	return fmt.Sprintf(`<text x="60" y="120" fill="#888">no data in window [%v .. %v]</text>`+"\n", p.TStart, p.TEnd)
}

func allZero(totals []clock.Time) bool {
	for _, t := range totals {
		if t != 0 {
			return false
		}
	}
	return true
}

// stackedTotals sums all states per bin (nothing skipped).
func stackedTotals(dur [][]clock.Time) []clock.Time {
	totals, _ := stackedPeak(dur, -1)
	return totals
}

func xLabel(tb *stats.Table) string {
	if len(tb.XLabels) >= 2 {
		return tb.XLabels[1]
	}
	return ""
}
