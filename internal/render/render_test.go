package render_test

import (
	"encoding/json"
	"strings"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/render"
	"tracefw/internal/slog"
	"tracefw/internal/stats"
	"tracefw/internal/testutil"
)

// sppmish: 2 nodes × 2 CPUs, 1 task per node with one extra idle user
// thread, message exchange on the main thread — a miniature of the
// paper's Figure 8/9 setup.
var shape = testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 2, Seed: 21}

func sppmish(p *mpisim.Proc) {
	p.Spawn(events.ThreadUser, func(q *mpisim.Proc) {
		// Worker thread: short compute bursts, then idle.
		for i := 0; i < 5; i++ {
			q.Compute(2 * clock.Millisecond)
			q.Sleep(2 * clock.Millisecond)
		}
	})
	peer := 1 - p.Rank()
	for i := 0; i < 20; i++ {
		p.Compute(clock.Millisecond)
		if p.Rank() == 0 {
			p.Send(peer, int32(i), 2048)
			p.Recv(int32(peer), int32(i))
		} else {
			p.Recv(int32(peer), int32(i))
			p.Send(peer, int32(i), 2048)
		}
	}
	p.Barrier()
}

func merged(t *testing.T) *interval.File {
	t.Helper()
	mf, _ := testutil.Pipeline(t, shape, merge.Options{}, sppmish)
	return mf
}

func TestThreadActivityView(t *testing.T) {
	d, err := render.BuildDiagram(merged(t), render.ThreadActivity, render.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes × 2 threads = 4 rows, pre-seeded from the thread table.
	if len(d.Rows) != 4 {
		t.Fatalf("rows: %d (%v)", len(d.Rows), labels(d))
	}
	// MPI states appear only on main threads; Running everywhere active.
	hasKey := func(k string) bool {
		for _, s := range d.Keys {
			if s == k {
				return true
			}
		}
		return false
	}
	if !hasKey("MPI_Send") || !hasKey("MPI_Recv") || !hasKey("Running") {
		t.Fatalf("keys: %v", d.Keys)
	}
	// Segments within a row must be time-ordered and non-overlapping.
	for _, row := range d.Rows {
		for i := 1; i < len(row.Segs); i++ {
			if row.Segs[i].Start < row.Segs[i-1].End {
				t.Fatalf("row %s: overlapping segs %v %v", row.Label, row.Segs[i-1], row.Segs[i])
			}
		}
	}
}

func TestProcessorActivityView(t *testing.T) {
	d, err := render.BuildDiagram(merged(t), render.ProcessorActivity, render.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if !strings.Contains(row.Label, "cpu") {
			t.Fatalf("row label %q", row.Label)
		}
	}
	if len(d.Rows) == 0 || len(d.Rows) > 4 {
		t.Fatalf("rows: %v", labels(d))
	}
}

func TestThreadProcessorViewShowsMigration(t *testing.T) {
	// Oversubscribed node: 3 busy threads on 2 CPUs with a short quantum
	// force migrations.
	sh := testutil.Shape{Nodes: 1, TasksPerNode: 1, CPUs: 2, Seed: 23, Quantum: int64(clock.Millisecond)}
	mf, _ := testutil.Pipeline(t, sh, merge.Options{}, func(p *mpisim.Proc) {
		for i := 0; i < 2; i++ {
			p.Spawn(events.ThreadUser, func(q *mpisim.Proc) {
				q.Compute(30 * clock.Millisecond)
			})
		}
		p.Compute(30 * clock.Millisecond)
	})
	d, err := render.BuildDiagram(mf, render.ThreadProcessor, render.Options{})
	if err != nil {
		t.Fatal(err)
	}
	migrated := 0
	for _, n := range d.DistinctKeysPerRow() {
		if n > 1 {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatalf("no thread migrated across CPUs: keys/row %v", d.DistinctKeysPerRow())
	}
}

func TestProcessorThreadView(t *testing.T) {
	d, err := render.BuildDiagram(merged(t), render.ProcessorThread, render.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range d.Keys {
		if !strings.HasPrefix(k, "thread") {
			t.Fatalf("key %q", k)
		}
	}
}

func TestConnectedViewMergesPieces(t *testing.T) {
	// A blocking recv is split into pieces; the connected view must show
	// one segment per call, the pieces view several.
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 1, Seed: 29}
	work := func(p *mpisim.Proc) {
		if p.Rank() == 0 {
			p.Compute(20 * clock.Millisecond)
			p.Send(1, 1, 128)
		} else {
			p.Recv(0, 1)
		}
	}
	mf, _ := testutil.Pipeline(t, sh, merge.Options{}, work)
	pieces, err := render.BuildDiagram(mf, render.ThreadActivity, render.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mf2, _ := testutil.Pipeline(t, sh, merge.Options{}, work)
	conn, err := render.BuildDiagram(mf2, render.ThreadActivity, render.Options{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	count := func(d *render.Diagram, key string) (n int) {
		for _, row := range d.Rows {
			for _, s := range row.Segs {
				if s.Key == key {
					n++
				}
			}
		}
		return
	}
	if p, c := count(pieces, "MPI_Recv"), count(conn, "MPI_Recv"); c != 1 || p < 2 {
		t.Fatalf("recv segments: pieces=%d connected=%d", p, c)
	}
	// The connected segment must span the whole call.
	var span clock.Time
	for _, row := range conn.Rows {
		for _, s := range row.Segs {
			if s.Key == "MPI_Recv" {
				span = s.End - s.Start
			}
		}
	}
	if span < 19*clock.Millisecond {
		t.Fatalf("connected recv spans only %v", span)
	}
}

func TestWindowRestriction(t *testing.T) {
	mf := merged(t)
	full, _ := render.BuildDiagram(mf, render.ThreadActivity, render.Options{})
	mid := (full.T0 + full.T1) / 2
	mf2 := merged(t)
	win, err := render.BuildDiagram(mf2, render.ThreadActivity, render.Options{T0: mid, T1: full.T1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range win.Rows {
		for _, s := range row.Segs {
			if s.End <= mid {
				t.Fatalf("segment outside window: %+v", s)
			}
		}
	}
	nFull, nWin := 0, 0
	for _, r := range full.Rows {
		nFull += len(r.Segs)
	}
	for _, r := range win.Rows {
		nWin += len(r.Segs)
	}
	if nWin >= nFull {
		t.Fatalf("window did not reduce segments: %d vs %d", nWin, nFull)
	}
}

func TestArrowsMappedToRows(t *testing.T) {
	raws := testutil.RunWorkload(t, shape, sppmish)
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	sb := interval.NewSeekBuffer()
	if _, _, err := slog.Slogmerge(files, sb, merge.Options{}, slog.Options{}); err != nil {
		t.Fatal(err)
	}
	sf, err := slog.Read(sb)
	if err != nil {
		t.Fatal(err)
	}
	var arrows []slog.Arrow
	for i := range sf.Index {
		fd, _ := sf.ReadFrame(i)
		arrows = append(arrows, fd.Arrows...)
	}
	if len(arrows) == 0 {
		t.Fatal("no arrows")
	}
	mf := merged(t)
	d, err := render.BuildDiagram(mf, render.ThreadActivity, render.Options{Arrows: arrows})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Arrows) == 0 {
		t.Fatal("no arrows mapped")
	}
	for _, a := range d.Arrows {
		if a.FromRow == a.ToRow {
			t.Fatalf("arrow maps to one row: %+v", a)
		}
		if a.FromRow < 0 || a.FromRow >= len(d.Rows) || a.ToRow < 0 || a.ToRow >= len(d.Rows) {
			t.Fatalf("arrow row out of range: %+v", a)
		}
	}
}

func TestBusyFraction(t *testing.T) {
	d, _ := render.BuildDiagram(merged(t), render.ProcessorActivity, render.Options{})
	fr := d.BusyFraction()
	for i, f := range fr {
		if f < 0 || f > 1.000001 {
			t.Fatalf("row %d busy fraction %v", i, f)
		}
	}
	// CPU 1 on each node hosts only the worker thread: mostly idle.
	var anyLow bool
	for _, f := range fr {
		if f < 0.5 {
			anyLow = true
		}
	}
	if !anyLow {
		t.Fatalf("expected a mostly-idle CPU: %v", fr)
	}
}

func TestSVGWellFormed(t *testing.T) {
	d, _ := render.BuildDiagram(merged(t), render.ThreadActivity, render.Options{})
	svg := d.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("svg not well formed")
	}
	if strings.Count(svg, "<rect") < 10 {
		t.Fatal("suspiciously few rects")
	}
	for _, k := range d.Keys {
		if !strings.Contains(svg, k) {
			t.Fatalf("legend key %q missing", k)
		}
	}
}

func TestASCIIView(t *testing.T) {
	d, _ := render.BuildDiagram(merged(t), render.ThreadActivity, render.Options{})
	out := d.ASCII(80)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 rows + legend.
	if len(lines) != 6 {
		t.Fatalf("ascii lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[len(lines)-1], "legend:") {
		t.Fatalf("no legend: %q", lines[len(lines)-1])
	}
}

func TestPreviewRenderers(t *testing.T) {
	raws := testutil.RunWorkload(t, shape, sppmish)
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	sb := interval.NewSeekBuffer()
	if _, _, err := slog.Slogmerge(files, sb, merge.Options{}, slog.Options{Bins: 30}); err != nil {
		t.Fatal(err)
	}
	sf, _ := slog.Read(sb)
	svg := render.PreviewSVG(sf.Preview)
	if !strings.Contains(svg, "preview") || strings.Count(svg, "<rect") < 10 {
		t.Fatal("preview svg too empty")
	}
	txt := render.PreviewASCII(sf.Preview, 40)
	if !strings.Contains(txt, "#") {
		t.Fatalf("preview ascii has no bars:\n%s", txt)
	}
	if got := strings.Count(txt, "\n"); got != 31 { // header + 30 bins
		t.Fatalf("preview ascii lines: %d", got)
	}
}

func TestStatsRenderers(t *testing.T) {
	mf := merged(t)
	tables, err := stats.Generate(stats.Predefined(20), []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	heat := render.StatsHeatmapSVG(tables[0])
	if !strings.Contains(heat, "interesting_by_node_bin") || strings.Count(heat, "<rect") < 5 {
		t.Fatal("heatmap svg too empty")
	}
	bars := render.StatsBarsSVG(tables[1])
	if !strings.Contains(bars, "duration_by_state") || strings.Count(bars, "<rect") < 3 {
		t.Fatal("bars svg too empty")
	}
}

func TestParseView(t *testing.T) {
	for s, want := range map[string]render.ViewKind{
		"":                   render.ThreadActivity,
		"threads":            render.ThreadActivity,
		"thread-activity":    render.ThreadActivity,
		"cpus":               render.ProcessorActivity,
		"processor-activity": render.ProcessorActivity,
		"thread-processor":   render.ThreadProcessor,
		"processor-thread":   render.ProcessorThread,
	} {
		got, err := render.ParseView(s)
		if err != nil || got != want {
			t.Fatalf("ParseView(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := render.ParseView("nope"); err == nil {
		t.Fatal("bad view accepted")
	}
}

func labels(d *render.Diagram) []string {
	var ls []string
	for _, r := range d.Rows {
		ls = append(ls, r.Label)
	}
	return ls
}

func TestStateActivityView(t *testing.T) {
	d, err := render.BuildDiagram(merged(t), render.StateActivity, render.Options{})
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, row := range d.Rows {
		labels[row.Label] = true
	}
	for _, want := range []string{"Running", "MPI_Send", "MPI_Recv"} {
		if !labels[want] {
			t.Fatalf("state row %q missing: %v", want, labels)
		}
	}
	// Keys are nodes.
	for _, k := range d.Keys {
		if !strings.HasPrefix(k, "node") {
			t.Fatalf("key %q", k)
		}
	}
	if kind, err := render.ParseView("states"); err != nil || kind != render.StateActivity {
		t.Fatalf("ParseView(states) = %v, %v", kind, err)
	}
	if !strings.Contains(d.SVG(), "state-activity view") {
		t.Fatal("svg title missing")
	}
}

func TestViewerHTML(t *testing.T) {
	raws := testutil.RunWorkload(t, shape, sppmish)
	files := testutil.ConvertRun(t, raws, interval.WriterOptions{})
	sb := interval.NewSeekBuffer()
	if _, _, err := slog.Slogmerge(files, sb, merge.Options{}, slog.Options{FrameBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	sf, err := slog.Read(sb)
	if err != nil {
		t.Fatal(err)
	}
	html, err := render.ViewerHTML(sf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "const DATA = {", `"states":`, `"frames":`,
		"MPI_Send", "buildPreview()", "</html>",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("viewer html missing %q", want)
		}
	}
	// The embedded JSON must parse.
	start := strings.Index(html, "const DATA = ") + len("const DATA = ")
	end := strings.Index(html[start:], ";\n")
	var doc map[string]interface{}
	if err := jsonUnmarshal(html[start:start+end], &doc); err != nil {
		t.Fatalf("embedded JSON invalid: %v", err)
	}
	if doc["frames"] == nil || doc["states"] == nil || doc["threads"] == nil {
		t.Fatalf("embedded JSON incomplete: %v", doc)
	}
}

func jsonUnmarshal(s string, v interface{}) error { return json.Unmarshal([]byte(s), v) }

func TestNestedDepthsInConnectedView(t *testing.T) {
	// Marker around MPI calls: in the connected view the marker segment
	// has depth 0 and the MPI segments nest at depth >= 1; the pieces
	// view keeps everything at depth 0.
	sh := testutil.Shape{Nodes: 2, TasksPerNode: 1, CPUs: 1, Seed: 31}
	work := func(p *mpisim.Proc) {
		m := p.DefineMarker("outer")
		p.InMarker(m, func() {
			p.Compute(clock.Millisecond)
			p.Barrier()
			p.Compute(clock.Millisecond)
		})
	}
	mf, _ := testutil.Pipeline(t, sh, merge.Options{}, work)
	conn, err := render.BuildDiagram(mf, render.ThreadActivity, render.Options{Connected: true})
	if err != nil {
		t.Fatal(err)
	}
	var runningDepth, markerDepth, barrierDepth = -1, -1, -1
	for _, row := range conn.Rows {
		for _, s := range row.Segs {
			switch s.Key {
			case "Running":
				runningDepth = s.Depth
			case "Marker":
				markerDepth = s.Depth
			case "MPI_Barrier":
				barrierDepth = s.Depth
			}
		}
	}
	// Nesting: Running (the default outer state) encloses the marker,
	// which encloses the barrier.
	if runningDepth != 0 {
		t.Fatalf("running depth %d, want 0", runningDepth)
	}
	if markerDepth != runningDepth+1 {
		t.Fatalf("marker depth %d, want %d", markerDepth, runningDepth+1)
	}
	if barrierDepth <= markerDepth {
		t.Fatalf("barrier depth %d, want > marker depth %d", barrierDepth, markerDepth)
	}
	mf2, _ := testutil.Pipeline(t, sh, merge.Options{}, work)
	pieces, _ := render.BuildDiagram(mf2, render.ThreadActivity, render.Options{})
	for _, row := range pieces.Rows {
		for _, s := range row.Segs {
			if s.Depth != 0 {
				t.Fatalf("pieces view has depth %d segment", s.Depth)
			}
		}
	}
	if !strings.Contains(conn.SVG(), "depth 1") {
		t.Fatal("nested depth missing from SVG titles")
	}
}
