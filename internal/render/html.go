package render

import (
	"encoding/json"
	"fmt"
	"strings"

	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/slog"
)

// ViewerHTML builds a self-contained interactive HTML page from an SLOG
// file — the repository's stand-in for the Jumpshot session of the
// paper's Figure 7: a whole-run preview histogram on top (one stacked
// bar per time bin), and below it a time-space diagram of the selected
// frame, navigated by clicking preview bins or the prev/next controls.
// All frame data is embedded in the page; no server is needed.
func ViewerHTML(sf *slog.File) (string, error) {
	type jsRec struct {
		T  string  `json:"t"`  // state name
		B  uint8   `json:"b"`  // bebits
		S  float64 `json:"s"`  // start, seconds
		D  float64 `json:"d"`  // duration, seconds
		N  uint16  `json:"n"`  // node
		Th uint16  `json:"th"` // thread
		C  uint16  `json:"c"`  // cpu
		P  bool    `json:"p"`  // pseudo record
	}
	type jsArrow struct {
		S   float64 `json:"s"` // send time, seconds
		R   float64 `json:"r"` // recv time, seconds
		SN  uint16  `json:"sn"`
		STh uint16  `json:"st"`
		DN  uint16  `json:"dn"`
		DTh uint16  `json:"dt"`
		B   uint64  `json:"b"` // bytes
	}
	type jsFrame struct {
		Start  float64   `json:"start"`
		End    float64   `json:"end"`
		Recs   []jsRec   `json:"recs"`
		Arrows []jsArrow `json:"arrows"`
	}
	type jsThread struct {
		Node uint16 `json:"node"`
		LTID uint16 `json:"ltid"`
		Task int32  `json:"task"`
		Kind string `json:"kind"`
	}
	type jsDoc struct {
		TStart  float64     `json:"tstart"`
		TEnd    float64     `json:"tend"`
		States  []string    `json:"states"`
		Preview [][]float64 `json:"preview"` // [state][bin] seconds
		Threads []jsThread  `json:"threads"`
		Frames  []jsFrame   `json:"frames"`
	}

	doc := jsDoc{
		TStart: sf.TStart.Seconds(),
		TEnd:   sf.TEnd.Seconds(),
	}
	for _, ty := range sf.Preview.States {
		doc.States = append(doc.States, ty.Name())
	}
	for _, row := range sf.Preview.Dur {
		sec := make([]float64, len(row))
		for i, d := range row {
			sec[i] = d.Seconds()
		}
		doc.Preview = append(doc.Preview, sec)
	}
	for _, te := range sf.Threads {
		doc.Threads = append(doc.Threads, jsThread{
			Node: te.Node, LTID: te.LTID, Task: te.Task,
			Kind: events.ThreadTypeName(int(te.Type)),
		})
	}
	for i := range sf.Index {
		fd, err := sf.ReadFrame(i)
		if err != nil {
			return "", err
		}
		jf := jsFrame{Start: sf.Index[i].Start.Seconds(), End: sf.Index[i].End.Seconds()}
		add := func(rs []interval.Record, pseudo bool) {
			for _, r := range rs {
				jf.Recs = append(jf.Recs, jsRec{
					T: r.Type.Name(), B: uint8(r.Bebits), S: r.Start.Seconds(), D: r.Dura.Seconds(),
					N: r.Node, Th: r.Thread, C: r.CPU, P: pseudo,
				})
			}
		}
		add(fd.Intervals, false)
		add(fd.Pseudo, true)
		for _, a := range append(append([]slog.Arrow{}, fd.Arrows...), fd.Crossing...) {
			jf.Arrows = append(jf.Arrows, jsArrow{
				S: a.SendTime.Seconds(), R: a.RecvTime.Seconds(),
				SN: a.SrcNode, STh: a.SrcThread, DN: a.DstNode, DTh: a.DstThread,
				B: a.Bytes,
			})
		}
		doc.Frames = append(doc.Frames, jf)
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(viewerHTMLHead)
	fmt.Fprintf(&b, "<script>const DATA = %s;\n%s</script></body></html>\n", blob, viewerHTMLScript)
	return b.String(), nil
}

const viewerHTMLHead = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>tracefw viewer</title>
<style>
body { font-family: monospace; font-size: 12px; margin: 12px; background: #fafafa; }
h1 { font-size: 14px; }
#preview { display: flex; align-items: flex-end; height: 120px; border-bottom: 1px solid #888; margin-bottom: 4px; }
#preview .bin { flex: 1; display: flex; flex-direction: column-reverse; cursor: pointer; margin-right: 1px; }
#preview .bin:hover { outline: 1px solid #333; }
#controls { margin: 8px 0; }
#controls button { font-family: monospace; margin-right: 6px; }
#frameinfo { color: #555; }
#timeline { position: relative; border: 1px solid #ccc; background: #fff; }
.row { position: relative; height: 18px; border-bottom: 1px solid #f0f0f0; }
.rowlabel { position: absolute; left: 2px; top: 2px; color: #777; z-index: 2; pointer-events: none; }
.seg { position: absolute; top: 2px; height: 14px; }
.seg.pseudo { opacity: 0.45; border: 1px dashed #333; }
#legend span { display: inline-block; margin-right: 10px; }
#legend i { display: inline-block; width: 10px; height: 10px; margin-right: 3px; }
svg.arrows { position: absolute; left: 0; top: 0; pointer-events: none; }
</style></head><body>
<h1>tracefw viewer — preview + frame display (Jumpshot stand-in)</h1>
<div id="preview"></div>
<div id="controls">
  <button id="prev">&#9664; prev frame</button>
  <button id="next">next frame &#9654;</button>
  <span id="frameinfo"></span>
</div>
<div id="timeline"></div>
<div id="legend"></div>
`

const viewerHTMLScript = `
const palette = ["#4e79a7","#f28e2b","#e15759","#76b7b2","#59a14f","#edc948",
  "#b07aa1","#ff9da7","#9c755f","#bab0ac","#1f77b4","#d62728","#2ca02c",
  "#9467bd","#8c564b","#e377c2","#7f7f7f","#bcbd22"];
const stateColor = {};
DATA.states.forEach((s, i) => stateColor[s] = palette[i % palette.length]);

let current = 0;

function findFrame(t) {
  for (let i = 0; i < DATA.frames.length; i++) {
    if (DATA.frames[i].end >= t) return i;
  }
  return DATA.frames.length - 1;
}

function buildPreview() {
  const el = document.getElementById("preview");
  const bins = DATA.preview[0] ? DATA.preview[0].length : 0;
  let peak = 0;
  const totals = [];
  for (let b = 0; b < bins; b++) {
    let tot = 0;
    for (let s = 0; s < DATA.states.length; s++) tot += DATA.preview[s][b];
    totals.push(tot);
    peak = Math.max(peak, tot);
  }
  for (let b = 0; b < bins; b++) {
    const bin = document.createElement("div");
    bin.className = "bin";
    const t0 = DATA.tstart + (DATA.tend - DATA.tstart) * b / bins;
    bin.title = t0.toFixed(3) + "s";
    for (let s = 0; s < DATA.states.length; s++) {
      const d = DATA.preview[s][b];
      if (d <= 0) continue;
      const seg = document.createElement("div");
      seg.style.height = (d / (peak || 1) * 110) + "px";
      seg.style.background = stateColor[DATA.states[s]];
      bin.appendChild(seg);
    }
    bin.onclick = () => show(findFrame(t0));
    el.appendChild(bin);
  }
}

function rowKeyList(frame) {
  const keys = new Set();
  DATA.threads.forEach(t => keys.add(t.node + "/" + t.ltid));
  frame.recs.forEach(r => keys.add(r.n + "/" + r.th));
  return [...keys].sort((a, b) => {
    const [an, at] = a.split("/").map(Number), [bn, bt] = b.split("/").map(Number);
    return an - bn || at - bt;
  });
}

function show(i) {
  current = Math.max(0, Math.min(DATA.frames.length - 1, i));
  const f = DATA.frames[current];
  document.getElementById("frameinfo").textContent =
    "frame " + current + " / " + (DATA.frames.length - 1) +
    "  [" + f.start.toFixed(4) + "s .. " + f.end.toFixed(4) + "s]  " +
    f.recs.length + " records, " + f.arrows.length + " arrows";
  const tl = document.getElementById("timeline");
  tl.innerHTML = "";
  const rows = rowKeyList(f);
  const rowIdx = {};
  rows.forEach((k, idx) => rowIdx[k] = idx);
  const span = Math.max(f.end - f.start, 1e-9);
  const width = tl.clientWidth || 900;
  rows.forEach(k => {
    const row = document.createElement("div");
    row.className = "row";
    const lbl = document.createElement("span");
    lbl.className = "rowlabel";
    lbl.textContent = "n" + k.replace("/", "/t");
    row.appendChild(lbl);
    tl.appendChild(row);
  });
  f.recs.forEach(r => {
    const idx = rowIdx[r.n + "/" + r.th];
    if (idx === undefined) return;
    const seg = document.createElement("div");
    seg.className = "seg" + (r.p ? " pseudo" : "");
    const x = (Math.max(r.s, f.start) - f.start) / span * width;
    const w = Math.max(r.d / span * width, 1.5);
    seg.style.left = x + "px";
    seg.style.width = w + "px";
    seg.style.background = stateColor[r.t] || "#ccc";
    seg.title = r.t + (r.p ? " (pseudo)" : "") + "  [" + r.s.toFixed(6) + "s +" + r.d.toFixed(6) + "s]  cpu" + r.c;
    tl.children[idx].appendChild(seg);
  });
  // Arrows as one SVG overlay.
  const svgNS = "http://www.w3.org/2000/svg";
  const svg = document.createElementNS(svgNS, "svg");
  svg.setAttribute("class", "arrows");
  svg.setAttribute("width", width);
  svg.setAttribute("height", rows.length * 19);
  f.arrows.forEach(a => {
    const fi = rowIdx[a.sn + "/" + a.st], ti = rowIdx[a.dn + "/" + a.dt];
    if (fi === undefined || ti === undefined) return;
    const line = document.createElementNS(svgNS, "line");
    line.setAttribute("x1", (Math.max(a.s, f.start) - f.start) / span * width);
    line.setAttribute("y1", fi * 19 + 9);
    line.setAttribute("x2", (Math.min(a.r, f.end) - f.start) / span * width);
    line.setAttribute("y2", ti * 19 + 9);
    line.setAttribute("stroke", "#000");
    line.setAttribute("stroke-width", "0.8");
    svg.appendChild(line);
  });
  tl.appendChild(svg);
  const legend = document.getElementById("legend");
  legend.innerHTML = "";
  const used = new Set(f.recs.map(r => r.t));
  [...used].sort().forEach(sname => {
    const sp = document.createElement("span");
    const sw = document.createElement("i");
    sw.style.background = stateColor[sname];
    sp.appendChild(sw);
    sp.appendChild(document.createTextNode(sname));
    legend.appendChild(sp);
  });
}

document.getElementById("prev").onclick = () => show(current - 1);
document.getElementById("next").onclick = () => show(current + 1);
buildPreview();
show(0);
`
