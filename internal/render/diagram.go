// Package render draws the visualizations of the paper's §4 without a
// GUI toolkit: the multiple time-space diagrams derivable from one
// interval file (thread-activity, processor-activity, thread-processor,
// processor-thread — §1.2), the whole-run preview histogram, and the
// statistics viewer of Figure 6, as SVG documents and as ASCII for
// terminals. The diagrams are data first (Diagram), then rendered, so
// tests can assert on structure rather than markup.
package render

import (
	"context"
	"fmt"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/slog"
)

// ViewKind selects the time-space diagram (paper §1.2).
type ViewKind int

// The four views of §1.2.
const (
	// ThreadActivity: one timeline per thread, colored by state.
	ThreadActivity ViewKind = iota
	// ProcessorActivity: one timeline per processor, colored by state.
	ProcessorActivity
	// ThreadProcessor: one timeline per thread, colored by the processor
	// it occupies — shows how threads jump among processors.
	ThreadProcessor
	// ProcessorThread: one timeline per processor, colored by the thread
	// occupying it — shows processor allocation among threads.
	ProcessorThread
	// StateActivity uses the record type as the significant discriminator
	// along the y axis (paper §1.2's "other possible views"): one
	// timeline per state type, colored by node.
	StateActivity
)

// String names the view.
func (v ViewKind) String() string {
	switch v {
	case ThreadActivity:
		return "thread-activity"
	case ProcessorActivity:
		return "processor-activity"
	case ThreadProcessor:
		return "thread-processor"
	case ProcessorThread:
		return "processor-thread"
	case StateActivity:
		return "state-activity"
	}
	return "view?"
}

// ParseView converts a command-line name.
func ParseView(s string) (ViewKind, error) {
	switch s {
	case "thread-activity", "threads", "":
		return ThreadActivity, nil
	case "processor-activity", "cpus":
		return ProcessorActivity, nil
	case "thread-processor":
		return ThreadProcessor, nil
	case "processor-thread":
		return ProcessorThread, nil
	case "state-activity", "states":
		return StateActivity, nil
	}
	return 0, fmt.Errorf("render: unknown view %q", s)
}

// Seg is one colored segment on a timeline.
type Seg struct {
	Start, End clock.Time
	Key        string // legend key (state name, CPU id, thread id)
	// Depth is the nesting level in the Connected thread-activity view
	// (0 = outermost): the paper's "view with connected and nested
	// states". Deeper states render inset on top of their enclosing
	// states. Always 0 in the pieces views.
	Depth int
}

// Timeline is one row of a diagram.
type Timeline struct {
	Label string
	Segs  []Seg
}

// ArrowSeg is a message arrow mapped onto diagram rows.
type ArrowSeg struct {
	FromRow, ToRow int
	Send, Recv     clock.Time
}

// Diagram is a fully prepared time-space diagram.
type Diagram struct {
	Kind   ViewKind
	T0, T1 clock.Time
	Rows   []Timeline
	Keys   []string // legend, in first-seen deterministic order
	Arrows []ArrowSeg
}

// Options controls diagram construction.
type Options struct {
	// Window selects [T0, T1); zero values select the whole run.
	T0, T1 clock.Time
	// Connected merges the begin/continuation/end pieces of each state
	// into one segment spanning the whole call (the paper's "view with
	// connected and nested states"); the default shows raw pieces.
	Connected bool
	// Arrows overlays message arrows (thread rows only).
	Arrows []slog.Arrow
	// Parallel is the frame-decode worker count (<= 0 = GOMAXPROCS);
	// the diagram is identical for every value.
	Parallel int
	// Context, when non-nil, aborts construction once it is cancelled
	// (checked per frame by the map-reduce engine). The trace query
	// service sets it to the request context; CLIs leave it nil.
	Context context.Context
}

type rowKey struct {
	node uint16
	id   uint16 // thread or cpu
}

// BuildDiagram prepares a view from a merged interval file.
func BuildDiagram(mf *interval.File, kind ViewKind, opts Options) (*Diagram, error) {
	t0, t1 := opts.T0, opts.T1
	if t1 <= t0 {
		fs, fe, _, err := mf.Stats()
		if err != nil {
			return nil, err
		}
		t0, t1 = fs, fe
	}
	d := &Diagram{Kind: kind, T0: t0, T1: t1}

	rows := map[rowKey]int{}
	var rowOrder []rowKey
	threadRows := kind == ThreadActivity || kind == ThreadProcessor
	// Pre-seed thread rows from the thread table so idle threads appear
	// (Figure 8's point: "one thread is idle during this part").
	if threadRows {
		for _, te := range mf.Header.Threads {
			k := rowKey{te.Node, te.LTID}
			if _, ok := rows[k]; !ok {
				rows[k] = len(rowOrder)
				rowOrder = append(rowOrder, k)
			}
		}
	}
	keyIdx := map[string]int{}
	addKey := func(s string) {
		if _, ok := keyIdx[s]; !ok {
			keyIdx[s] = len(d.Keys)
			d.Keys = append(d.Keys, s)
		}
	}
	segs := map[rowKey][]Seg{}

	// open tracks in-progress calls for the Connected option.
	type openState struct {
		start clock.Time
		key   string
		depth int
	}
	open := map[rowKey][]openState{}

	// Frames decode concurrently on the map-reduce engine; the
	// order-sensitive row/segment construction below runs in the
	// frame-order reduce, so the diagram matches a sequential scan
	// exactly. An explicit window skips non-overlapping frames entirely
	// — except in Connected mode, which must see Begin pieces recorded
	// before the window opens.
	mopts := interval.MapOptions{Parallel: opts.Parallel, Context: opts.Context}
	if opts.T1 > opts.T0 && !(opts.Connected && kind == ThreadActivity) {
		mopts.Window, mopts.Lo, mopts.Hi = true, t0, t1
	}
	err := interval.MapFrames(mf, mopts,
		func(_ interval.FrameEntry, recs []interval.Record) ([]interval.Record, error) {
			return recs, nil
		},
		func(_ interval.FrameEntry, recs []interval.Record) error {
			for ri := range recs {
				r := recs[ri]
				if r.Type == events.EvGlobalClock {
					continue
				}
				var k rowKey
				var key string
				switch kind {
				case ThreadActivity:
					k = rowKey{r.Node, r.Thread}
					key = r.Type.Name()
				case ProcessorActivity:
					k = rowKey{r.Node, r.CPU}
					key = r.Type.Name()
				case ThreadProcessor:
					k = rowKey{r.Node, r.Thread}
					key = fmt.Sprintf("cpu%d", r.CPU)
				case ProcessorThread:
					k = rowKey{r.Node, r.CPU}
					key = fmt.Sprintf("thread%d", r.Thread)
				case StateActivity:
					k = rowKey{0, uint16(r.Type)}
					key = fmt.Sprintf("node%d", r.Node)
				}
				if opts.Connected && kind == ThreadActivity {
					switch r.Bebits {
					case profile.Begin:
						open[k] = append(open[k], openState{start: r.Start, key: key, depth: len(open[k])})
						continue
					case profile.Continuation:
						continue
					case profile.End:
						stack := open[k]
						merged := false
						for i := len(stack) - 1; i >= 0; i-- {
							if stack[i].key == key {
								seg := Seg{Start: stack[i].start, End: r.End(), Key: key, Depth: stack[i].depth}
								open[k] = append(stack[:i], stack[i+1:]...)
								if seg.End >= t0 && seg.Start <= t1 {
									addKey(key)
									ensureRow(rows, &rowOrder, k)
									segs[k] = append(segs[k], seg)
								}
								merged = true
								break
							}
						}
						if merged {
							continue
						}
					}
				}
				if r.End() < t0 || r.Start > t1 {
					continue
				}
				seg := Seg{Start: r.Start, End: r.End(), Key: key}
				if opts.Connected && kind == ThreadActivity {
					// Complete records nest inside whatever is currently open.
					seg.Depth = len(open[k])
				}
				addKey(key)
				ensureRow(rows, &rowOrder, k)
				segs[k] = append(segs[k], seg)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	// Deterministic row order: (node, id).
	sort.SliceStable(rowOrder, func(i, j int) bool {
		if rowOrder[i].node != rowOrder[j].node {
			return rowOrder[i].node < rowOrder[j].node
		}
		return rowOrder[i].id < rowOrder[j].id
	})
	finalIdx := map[rowKey]int{}
	for i, k := range rowOrder {
		finalIdx[k] = i
		label := ""
		switch kind {
		case ThreadActivity, ThreadProcessor:
			label = fmt.Sprintf("n%d/t%d", k.node, k.id)
		case StateActivity:
			label = events.Type(k.id).Name()
		default:
			label = fmt.Sprintf("n%d/cpu%d", k.node, k.id)
		}
		ss := segs[k]
		// Order by start time, outer states first at equal starts, so
		// renderers can paint in slice order and nested states land on
		// top of their enclosing states.
		sort.SliceStable(ss, func(a, b int) bool {
			if ss[a].Start != ss[b].Start {
				return ss[a].Start < ss[b].Start
			}
			return ss[a].Depth < ss[b].Depth
		})
		d.Rows = append(d.Rows, Timeline{Label: label, Segs: ss})
	}
	sort.Strings(d.Keys)

	if threadRows {
		for _, a := range opts.Arrows {
			if a.RecvTime <= t0 || a.SendTime >= t1 {
				continue
			}
			fi, ok1 := finalIdx[rowKey{a.SrcNode, a.SrcThread}]
			ti, ok2 := finalIdx[rowKey{a.DstNode, a.DstThread}]
			if ok1 && ok2 {
				d.Arrows = append(d.Arrows, ArrowSeg{FromRow: fi, ToRow: ti, Send: a.SendTime, Recv: a.RecvTime})
			}
		}
	}
	return d, nil
}

func ensureRow(rows map[rowKey]int, order *[]rowKey, k rowKey) {
	if _, ok := rows[k]; !ok {
		rows[k] = len(*order)
		*order = append(*order, k)
	}
}

// BusyFraction returns, per row, the fraction of the window covered by
// segments whose key is not one of the idle keys. Used by experiments to
// summarize a view numerically (e.g. Figure 9's "CPUs are mostly idle").
func (d *Diagram) BusyFraction(idleKeys ...string) []float64 {
	idle := map[string]bool{}
	for _, k := range idleKeys {
		idle[k] = true
	}
	span := float64(d.T1 - d.T0)
	out := make([]float64, len(d.Rows))
	if span <= 0 {
		return out
	}
	for i, row := range d.Rows {
		var busy clock.Time
		for _, s := range row.Segs {
			if idle[s.Key] {
				continue
			}
			lo, hi := s.Start, s.End
			if lo < d.T0 {
				lo = d.T0
			}
			if hi > d.T1 {
				hi = d.T1
			}
			if hi > lo {
				busy += hi - lo
			}
		}
		out[i] = float64(busy) / span
	}
	return out
}

// DistinctKeysPerRow reports how many distinct keys each row uses —
// e.g. in a thread-processor view, the number of CPUs a thread visited
// (the migration the paper points out in Figure 9).
func (d *Diagram) DistinctKeysPerRow() []int {
	out := make([]int, len(d.Rows))
	for i, row := range d.Rows {
		seen := map[string]bool{}
		for _, s := range row.Segs {
			seen[s.Key] = true
		}
		out[i] = len(seen)
	}
	return out
}
