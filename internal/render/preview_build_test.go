package render_test

// Differential and regression tests for BuildPreview (the merged-file
// preview path) and the empty-window placeholders: the pyramid and scan
// engines must render byte-identical documents, and a window that
// overlaps no records must produce the placeholder note, never an
// axis-only or full-run document.

import (
	"strings"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
	"tracefw/internal/render"
	"tracefw/internal/slog"
)

func pyramidMerged(t *testing.T) *interval.File {
	t.Helper()
	mf := merged(t)
	p, err := interval.BuildPyramid(mf, interval.PyramidOptions{BaseCells: 128, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	mf.AttachPyramid(p)
	return mf
}

func TestBuildPreviewDifferential(t *testing.T) {
	mf := pyramidMerged(t)
	t0, t1, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	span := t1 - t0
	for _, tc := range []struct {
		name   string
		bins   int
		lo, hi clock.Time
	}{
		{"full-default", 0, 0, 0},
		{"full-64", 64, 0, 0},
		{"interior", 30, t0 + span/4, t0 + 3*span/4},
		{"odd", 17, t0 + 13, t1 - 7},
		{"overhang", 25, t0 - span, t1 + span},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := render.PreviewOptions{Bins: tc.bins, T0: tc.lo, T1: tc.hi}
			pyrOpts, scanOpts := opts, opts
			pyrOpts.Engine = interval.SummaryPyramid
			scanOpts.Engine = interval.SummaryScan
			pyr, err := render.BuildPreview(mf, pyrOpts)
			if err != nil {
				t.Fatal(err)
			}
			scan, err := render.BuildPreview(mf, scanOpts)
			if err != nil {
				t.Fatal(err)
			}
			if pyr.Engine != "pyramid" || scan.Engine != "scan" {
				t.Fatalf("engines %q/%q", pyr.Engine, scan.Engine)
			}
			if pyr.CellsUsed == 0 {
				t.Fatal("pyramid engine consulted no cells")
			}
			if got, want := render.PreviewSVG(pyr.Preview), render.PreviewSVG(scan.Preview); got != want {
				t.Errorf("SVG differs between engines")
			}
			if got, want := render.PreviewASCII(pyr.Preview, 60), render.PreviewASCII(scan.Preview, 60); got != want {
				t.Errorf("ASCII differs between engines:\npyramid:\n%s\nscan:\n%s", got, want)
			}
			// Auto must agree too (and pick the pyramid on this file).
			auto, err := render.BuildPreview(mf, opts)
			if err != nil {
				t.Fatal(err)
			}
			if auto.Engine != "pyramid" {
				t.Fatalf("auto answered with %q", auto.Engine)
			}
			if render.PreviewSVG(auto.Preview) != render.PreviewSVG(scan.Preview) {
				t.Error("auto SVG differs from scan")
			}
		})
	}
}

func TestBuildPreviewWithoutPyramidScans(t *testing.T) {
	mf := merged(t)
	res, err := render.BuildPreview(mf, render.PreviewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "scan" {
		t.Fatalf("auto with no pyramid answered %q", res.Engine)
	}
	if res.FramesDecoded == 0 {
		t.Fatal("scan decoded no frames")
	}
	svg := render.PreviewSVG(res.Preview)
	if strings.Count(svg, "<rect") < 10 {
		t.Fatalf("preview svg too empty:\n%s", svg)
	}
}

// TestBuildPreviewEmptyWindow: a window beyond the run must render the
// placeholder note — not an axis-only document and (the old bug) not
// the full run after inverted clamping.
func TestBuildPreviewEmptyWindow(t *testing.T) {
	mf := pyramidMerged(t)
	_, t1, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []interval.SummaryEngine{interval.SummaryAuto, interval.SummaryScan} {
		res, err := render.BuildPreview(mf, render.PreviewOptions{
			T0: t1 + clock.Second, T1: t1 + 2*clock.Second, Engine: eng,
		})
		if err != nil {
			t.Fatal(err)
		}
		svg := render.PreviewSVG(res.Preview)
		if !strings.Contains(svg, "no data in window") {
			t.Fatalf("engine %v: placeholder missing:\n%s", eng, svg)
		}
		if strings.Contains(svg, "<rect") {
			t.Fatalf("engine %v: empty window rendered bars", eng)
		}
		txt := render.PreviewASCII(res.Preview, 40)
		if !strings.Contains(txt, "(no data in window)") {
			t.Fatalf("engine %v: ascii placeholder missing:\n%s", eng, txt)
		}
	}
}

// TestPreviewPlaceholderShapes covers the structural-empty cases the
// renderer must survive: no states, zero bins, all-zero durations.
func TestPreviewPlaceholderShapes(t *testing.T) {
	for _, p := range []*slog.Preview{
		{TStart: 0, TEnd: clock.Second},
		{TStart: 0, TEnd: clock.Second, Dur: [][]clock.Time{}},
		{TStart: 0, TEnd: clock.Second, Dur: [][]clock.Time{make([]clock.Time, 10)}},
	} {
		svg := render.PreviewSVG(p)
		if !strings.Contains(svg, "no data in window") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
			t.Fatalf("placeholder svg malformed:\n%s", svg)
		}
	}
}

// TestDiagramEmptyWindow: a diagram window overlapping no frames must
// render the placeholder, keeping the requested (not inverted) bounds.
func TestDiagramEmptyWindow(t *testing.T) {
	mf := merged(t)
	_, t1, _, err := mf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	d, err := render.BuildDiagram(mf, render.ProcessorActivity,
		render.Options{T0: t1 + clock.Second, T1: t1 + 2*clock.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 0 {
		t.Fatalf("beyond-run window produced %d rows", len(d.Rows))
	}
	svg := d.SVG()
	if !strings.Contains(svg, "no data in window") {
		t.Fatalf("svg placeholder missing:\n%s", svg)
	}
	if strings.Contains(svg, "<rect") {
		t.Fatal("empty diagram rendered segments")
	}
	if !strings.Contains(d.ASCII(40), "(no data in window)") {
		t.Fatalf("ascii placeholder missing:\n%s", d.ASCII(40))
	}
}
