package render

// BuildPreview computes the whole-run (or windowed) preview histogram
// directly from a merged interval file, without a SLOG build: the bins
// come from interval.SummarizeWindow, so a file with a summary pyramid
// answers in O(bins) cells and a file without one falls back to the
// frame-scan engine — byte-identically, per the interval package's
// differential suite. The result plugs into the same PreviewSVG /
// PreviewASCII renderers as a SLOG file's stored preview.

import (
	"context"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/slog"
)

// DefaultPreviewBins is the histogram width used when PreviewOptions
// leaves Bins unset — matches the SLOG builder's default.
const DefaultPreviewBins = 50

// PreviewOptions configures BuildPreview.
type PreviewOptions struct {
	// Bins is the number of time buckets; <= 0 means DefaultPreviewBins.
	Bins int
	// T0/T1 select the window; T1 <= T0 selects the whole run.
	T0, T1 clock.Time
	// Engine picks the summary evaluator (auto/pyramid/scan).
	Engine interval.SummaryEngine
	// Context, when non-nil, aborts construction between frames.
	Context context.Context
}

// PreviewResult is a built preview plus the observability the query
// planner reports: which engine answered and what it cost.
type PreviewResult struct {
	Preview *slog.Preview
	// Engine is "pyramid" or "scan".
	Engine string
	// CellsUsed counts pyramid cells consulted (0 on the scan engine).
	CellsUsed int
	// FramesDecoded counts the frames the query materialized.
	FramesDecoded int
}

// BuildPreview renders the preview histogram of a merged interval file.
// Unlike a SLOG file's stored preview the call-count column is not
// carried (Count stays zero); no renderer draws it.
func BuildPreview(mf *interval.File, opts PreviewOptions) (*PreviewResult, error) {
	bins := opts.Bins
	if bins <= 0 {
		bins = DefaultPreviewBins
	}
	t0, t1 := opts.T0, opts.T1
	if t1 <= t0 {
		fs, fe, _, err := mf.Stats()
		if err != nil {
			return nil, err
		}
		t0, t1 = fs, fe
		if t1 <= t0 {
			t1 = t0 + 1 // degenerate runs still get a well-formed axis
		}
	}
	ws, err := mf.SummarizeWindow(interval.WindowSummaryOptions{
		Bins:    bins,
		Lo:      t0,
		Hi:      t1,
		Engine:  opts.Engine,
		Context: opts.Context,
	})
	if err != nil {
		return nil, err
	}
	p := &slog.Preview{
		TStart: t0,
		TEnd:   t1,
		States: events.StateTypes,
		Dur:    make([][]clock.Time, len(events.StateTypes)),
		Count:  make([]int64, len(events.StateTypes)),
	}
	for si, ty := range events.StateTypes {
		row := make([]clock.Time, bins)
		for bi := range ws.Bins {
			row[bi] = ws.Bins[bi].BusyByType[ty]
		}
		p.Dur[si] = row
	}
	return &PreviewResult{
		Preview:       p,
		Engine:        ws.Engine,
		CellsUsed:     ws.CellsUsed,
		FramesDecoded: ws.FramesDecoded,
	}, nil
}
