package render

import (
	"fmt"
	"strings"

	"tracefw/internal/clock"
)

// palette is a fixed, deterministic color cycle for legend keys.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
	"#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#1f77b4", "#d62728",
	"#2ca02c", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22",
}

func colorFor(keys []string, key string) string {
	for i, k := range keys {
		if k == key {
			return palette[i%len(palette)]
		}
	}
	return "#cccccc"
}

const (
	labelW    = 110.0
	rowH      = 18.0
	rowGap    = 4.0
	legendH   = 22.0
	axisH     = 24.0
	chartW    = 900.0
	svgHeader = `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">` + "\n"
)

// stackedPeak sums each bin's stacked duration across states (state
// index skip excluded; pass -1 to keep all) and returns the per-bin
// totals with the peak total, floored at 1 so callers can divide by it.
// A preview with no states or no bins yields nil totals and peak 1.
func stackedPeak(dur [][]clock.Time, skip int) ([]clock.Time, clock.Time) {
	if len(dur) == 0 || len(dur[0]) == 0 {
		return nil, 1
	}
	totals := make([]clock.Time, len(dur[0]))
	var peak clock.Time
	for b := range totals {
		for s := range dur {
			if s == skip {
				continue
			}
			totals[b] += dur[s][b]
		}
		if totals[b] > peak {
			peak = totals[b]
		}
	}
	if peak == 0 {
		peak = 1
	}
	return totals, peak
}

// peakOr1 guards a bar/heatmap scale against an all-zero table.
func peakOr1(p float64) float64 {
	if p == 0 {
		return 1
	}
	return p
}

// timeAxis writes n+1 evenly spaced time labels along a horizontal axis
// from x0 over width, with tick marks between tickTop and tickBot when
// tickBot > tickTop. format renders the label from the tick time in
// seconds (e.g. "%.3fs").
func timeAxis(b *strings.Builder, t0, t1 clock.Time, n int, x0, width, textY, tickTop, tickBot float64, format string) {
	for i := 0; i <= n; i++ {
		t := t0 + clock.Time(float64(t1-t0)*float64(i)/float64(n))
		x := x0 + width*float64(i)/float64(n)
		if tickBot > tickTop {
			fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999"/>`+"\n", x, tickTop, x, tickBot)
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#555">`+format+`</text>`+"\n", x, textY, t.Seconds())
	}
}

// legend writes color-swatch/name rows for keys, wrapping to a new line
// once a row extends past wrapX. include filters keys (nil keeps all);
// colors come from colorFor over the full key list, so filtered and
// unfiltered legends agree with the chart body.
func legend(b *strings.Builder, keys []string, include func(i int) bool, left, wrapX, y float64) {
	lx, ly := left, y
	for i, k := range keys {
		if include != nil && !include(i) {
			continue
		}
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly, colorFor(keys, k))
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f">%s</text>`+"\n", lx+13, ly+9, escape(k))
		lx += 13 + float64(7*len(k)) + 18
		if lx > wrapX {
			lx = left
			ly += 14
		}
	}
}

// SVG renders the diagram as a standalone SVG document.
func (d *Diagram) SVG() string {
	var b strings.Builder
	rows := len(d.Rows)
	height := int(float64(rows)*(rowH+rowGap) + axisH + legendH + 30)
	width := int(labelW + chartW + 20)
	fmt.Fprintf(&b, svgHeader, width, height)
	fmt.Fprintf(&b, `<text x="4" y="14" font-weight="bold">%s view</text>`+"\n", d.Kind)
	if rows == 0 {
		// A window that overlaps no frames: a placeholder note instead of
		// an axis over bounds no segment will ever reference.
		fmt.Fprintf(&b, `<text x="%.1f" y="40" fill="#888">no data in window [%v .. %v]</text>`+"\n", labelW, d.T0, d.T1)
		b.WriteString("</svg>\n")
		return b.String()
	}

	span := float64(d.T1 - d.T0)
	if span <= 0 {
		span = 1
	}
	xOf := func(t clock.Time) float64 {
		return labelW + (float64(t-d.T0)/span)*chartW
	}
	top := 22.0
	for i, row := range d.Rows {
		y := top + float64(i)*(rowH+rowGap)
		fmt.Fprintf(&b, `<text x="4" y="%.1f">%s</text>`+"\n", y+rowH-5, escape(row.Label))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#e0e0e0"/>`+"\n",
			labelW, y+rowH/2, labelW+chartW, y+rowH/2)
		for _, s := range row.Segs {
			x0, x1 := xOf(maxTime(s.Start, d.T0)), xOf(minTime(s.End, d.T1))
			w := x1 - x0
			if w < 0.5 {
				w = 0.5
			}
			// Nested states render inset inside their enclosing states
			// (paper §1.2: "a view with connected and nested states").
			inset := float64(s.Depth) * 3
			if inset > rowH/2-2 {
				inset = rowH/2 - 2
			}
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.1f" width="%.2f" height="%.1f" fill="%s"><title>%s [%v,%v) depth %d</title></rect>`+"\n",
				x0, y+inset, w, rowH-2*inset, colorFor(d.Keys, s.Key), escape(s.Key), s.Start, s.End, s.Depth)
		}
	}
	// Arrows.
	for _, a := range d.Arrows {
		y0 := top + float64(a.FromRow)*(rowH+rowGap) + rowH/2
		y1 := top + float64(a.ToRow)*(rowH+rowGap) + rowH/2
		fmt.Fprintf(&b, `<line x1="%.2f" y1="%.1f" x2="%.2f" y2="%.1f" stroke="#000" stroke-width="0.7" marker-end="url(#ah)"/>`+"\n",
			xOf(maxTime(a.Send, d.T0)), y0, xOf(minTime(a.Recv, d.T1)), y1)
	}
	if len(d.Arrows) > 0 {
		b.WriteString(`<defs><marker id="ah" markerWidth="6" markerHeight="6" refX="5" refY="3" orient="auto"><path d="M0,0 L6,3 L0,6 z"/></marker></defs>` + "\n")
	}
	// Time axis and legend (helpers shared with the preview renderer).
	axisY := top + float64(rows)*(rowH+rowGap) + 12
	timeAxis(&b, d.T0, d.T1, 10, labelW, chartW, axisY+9, axisY-6, axisY-2, "%.3fs")
	legend(&b, d.Keys, nil, labelW, labelW+chartW-100, axisY+16)
	b.WriteString("</svg>\n")
	return b.String()
}

// ASCII renders the diagram as text, one row per timeline, sampling the
// window at width columns. Idle time shows as '.', segments as the first
// letter of their key (legend printed below).
func (d *Diagram) ASCII(width int) string {
	if width <= 0 {
		width = 100
	}
	symbols := map[string]byte{}
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	for i, k := range d.Keys {
		symbols[k] = alphabet[i%len(alphabet)]
	}
	span := d.T1 - d.T0
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s view  [%v .. %v]\n", d.Kind, d.T0, d.T1)
	if len(d.Rows) == 0 {
		b.WriteString("(no data in window)\n")
		return b.String()
	}
	labelWidth := 0
	for _, r := range d.Rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	for _, row := range d.Rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, s := range row.Segs {
			c0 := int(int64(s.Start-d.T0) * int64(width) / int64(span))
			c1 := int(int64(s.End-d.T0) * int64(width) / int64(span))
			if c1 == c0 {
				c1 = c0 + 1
			}
			for c := maxInt(c0, 0); c < minInt(c1, width); c++ {
				line[c] = symbols[s.Key]
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelWidth, row.Label, line)
	}
	b.WriteString("legend:")
	for _, k := range d.Keys {
		fmt.Fprintf(&b, " %c=%s", symbols[k], k)
	}
	b.WriteByte('\n')
	return b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

func maxTime(a, b clock.Time) clock.Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b clock.Time) clock.Time {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
