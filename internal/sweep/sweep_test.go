package sweep

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"tracefw/internal/cluster"
	"tracefw/internal/mpisim"
	"tracefw/internal/sched"
	"tracefw/internal/workload"
)

func testGrid() Grid {
	return Grid{
		Policies: []string{"fifo", "bestfit", "oversub"},
		Scenarios: []Scenario{
			{Name: "imbalance", Params: workload.Params{"iters": 3}},
			{Name: "stragglers", Params: workload.Params{"iters": 3}},
			{Name: "bursty", Params: workload.Params{"iters": 2}},
		},
	}
}

func testOpts(parallel int) Options {
	return Options{Nodes: 4, CPUsPerNode: 2, TasksPerNode: 1, Seed: 11, Parallel: parallel}
}

// TestSweepDeterministicAcrossParallelism is the sweep half of the
// determinism property: the TSV and JSON tables must be byte-identical
// across reruns and across every -j, in the spirit of the pipeline's
// parallel/sequential byte-identity suites.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	var wantTSV, wantJSON []byte
	for _, p := range []int{1, 2, 4, 0} {
		res, err := Run(testGrid(), testOpts(p))
		if err != nil {
			t.Fatalf("parallel=%d: %v", p, err)
		}
		tsv := res.TSV()
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if wantTSV == nil {
			wantTSV, wantJSON = tsv, js
			continue
		}
		if !bytes.Equal(tsv, wantTSV) {
			t.Fatalf("parallel=%d: TSV differs from parallel=1", p)
		}
		if !bytes.Equal(js, wantJSON) {
			t.Fatalf("parallel=%d: JSON differs from parallel=1", p)
		}
	}
}

// TestRawTraceDeterministicPerPolicy is the generation half: the same
// seed and scenario must produce byte-identical raw trace files under
// every policy, run-to-run.
func TestRawTraceDeterministicPerPolicy(t *testing.T) {
	gen := func(polName string) [][]byte {
		pol, err := sched.ParsePolicy(polName)
		if err != nil {
			t.Fatal(err)
		}
		main, err := workload.Build("stragglers", workload.Params{"iters": 3})
		if err != nil {
			t.Fatal(err)
		}
		const nodes = 3
		bufs := make([]*bytes.Buffer, nodes)
		ws := make([]io.Writer, nodes)
		for i := range bufs {
			bufs[i] = &bytes.Buffer{}
			ws[i] = bufs[i]
		}
		w, err := mpisim.New(mpisim.Config{
			Cluster:      cluster.Config{Nodes: nodes, CPUsPerNode: 2, Policy: pol, Seed: 5},
			TasksPerNode: 2,
		}, ws)
		if err != nil {
			t.Fatal(err)
		}
		w.Start(main)
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, nodes)
		for i, b := range bufs {
			out[i] = b.Bytes()
		}
		return out
	}
	for _, pol := range []string{"fifo", "bestfit", "worstfit", "oversub", "oversub:4"} {
		a, b := gen(pol), gen(pol)
		for n := range a {
			if !bytes.Equal(a[n], b[n]) {
				t.Fatalf("policy %s: node %d raw trace not reproducible", pol, n)
			}
		}
	}
}

// TestSweepCellMetrics sanity-checks the metric extraction on a single
// cell: a run must report events, records, busy time, and a plausible
// peak concurrency.
func TestSweepCellMetrics(t *testing.T) {
	res, err := Run(Grid{
		Policies:  []string{"fifo"},
		Scenarios: []Scenario{{Name: "imbalance", Params: workload.Params{"iters": 4}}},
	}, testOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.RawEvents == 0 || c.Records == 0 {
		t.Fatalf("empty cell: %+v", c)
	}
	if c.TotalBusy <= 0 || c.MeanBusy <= 0 || c.MaxBusy < c.MeanBusy {
		t.Fatalf("busy metrics implausible: %+v", c)
	}
	if c.Imbalance <= 1 {
		t.Fatalf("imbalance workload reported imbalance %v", c.Imbalance)
	}
	if c.PeakConcurrency < 1 || c.PeakConcurrency > int64(res.Options.Nodes*res.Options.CPUsPerNode) {
		t.Fatalf("peak concurrency %d out of range", c.PeakConcurrency)
	}
	if c.VirtualEnd <= 0 {
		t.Fatalf("virtual end %v", c.VirtualEnd)
	}
	if len(c.BusyByType) == 0 {
		t.Fatal("no busy-by-type rows")
	}
	if c.WallSeconds <= 0 {
		t.Fatal("wall clock not measured")
	}
}

// TestSweepPoliciesDiffer ensures the sweep actually discriminates:
// oversub must change the schedule metrics of a contended scenario
// relative to fifo.
func TestSweepPoliciesDiffer(t *testing.T) {
	res, err := Run(Grid{
		Policies:  []string{"fifo", "oversub:4"},
		Scenarios: []Scenario{{Name: "bursty", Params: workload.Params{"iters": 3}}},
	}, Options{Nodes: 2, CPUsPerNode: 1, TasksPerNode: 2, Seed: 3, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	fifo, over := res.Cells[0], res.Cells[1]
	if fifo.VirtualEnd == over.VirtualEnd && fifo.PeakConcurrency == over.PeakConcurrency {
		t.Fatalf("fifo and oversub:4 indistinguishable: end %v peak %d", fifo.VirtualEnd, fifo.PeakConcurrency)
	}
}

func TestSweepValidation(t *testing.T) {
	opts := testOpts(1)
	cases := []struct {
		g    Grid
		want string
	}{
		{Grid{}, "at least one"},
		{Grid{Policies: []string{"nope"}, Scenarios: []Scenario{{Name: "ring"}}}, "unknown policy"},
		{Grid{Policies: []string{"fifo"}, Scenarios: []Scenario{{Name: "nope"}}}, "unknown workload"},
		{Grid{Policies: []string{"fifo"}, Scenarios: []Scenario{{Name: "ring", Params: workload.Params{"iters": -1}}}}, "outside"},
	}
	for _, c := range cases {
		_, err := Run(c.g, opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Run(%+v): err %v, want substring %q", c.g, err, c.want)
		}
	}
	if _, err := Run(testGrid(), Options{}); err == nil {
		t.Error("zero options accepted")
	}
}
