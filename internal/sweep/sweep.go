// Package sweep runs policy × workload scenario grids through the full
// trace pipeline: each cell simulates the configured machine under one
// (scheduling policy, workload) pair, converts the per-node raw traces,
// merges them with clock adjustment, and reduces the merged interval
// file to the time-resolved summary metrics (busy time, load balance,
// peak concurrency). Cells are independent and run under internal/par,
// and every table output is deterministic: byte-identical across reruns
// and across -j values, because cell results are collected by grid
// index and contain no wall-clock quantities (throughput numbers are
// reported separately and never enter the tables).
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/par"
	"tracefw/internal/sched"
	"tracefw/internal/stats"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
)

// Scenario is one workload instance of the grid: a registry name plus
// parameter overrides.
type Scenario struct {
	Name   string          `json:"name"`
	Params workload.Params `json:"params,omitempty"`
}

// Label renders the scenario for table rows: "name" or
// "name(k=v,k=v)" with parameters sorted by name.
func (s Scenario) Label() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, s.Params[k])
	}
	b.WriteByte(')')
	return b.String()
}

// Grid is the cross product to sweep: every scenario under every
// policy. The first policy is the baseline the delta columns compare
// against.
type Grid struct {
	Policies  []string   `json:"policies"`
	Scenarios []Scenario `json:"scenarios"`
}

// Options fixes the machine every cell runs on and the driver width.
type Options struct {
	Nodes        int        `json:"nodes"`
	CPUsPerNode  int        `json:"cpus_per_node"`
	TasksPerNode int        `json:"tasks_per_node"`
	Quantum      clock.Time `json:"quantum,omitempty"` // 0 = scheduler default
	Seed         uint64     `json:"seed"`
	// Parallel is the number of cells in flight (0 = GOMAXPROCS). Table
	// outputs do not depend on it.
	Parallel int `json:"-"`
}

// Cell is one (scenario, policy) run. All exported fields except the
// wall-clock throughput pair are deterministic functions of the grid,
// options, and seed.
type Cell struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`

	// VirtualEnd is the simulated completion time.
	VirtualEnd clock.Time `json:"virtual_end"`
	// RawEvents counts raw trace event records across nodes.
	RawEvents int64 `json:"raw_events"`
	// Records counts merged interval records (incl. pseudo-intervals).
	Records int64 `json:"records"`
	// TotalBusy sums busy time (seconds) over every traced state.
	TotalBusy float64 `json:"total_busy_s"`
	// BusyByType breaks TotalBusy down by state name, sorted by name.
	BusyByType []TypeBusy `json:"busy_by_type"`
	// MeanBusy/MaxBusy/Imbalance are the tr_load_balance metrics over
	// the whole run: per-lane busy mean and max (seconds) and their
	// ratio (1.0 = perfectly balanced).
	MeanBusy  float64 `json:"mean_busy_s"`
	MaxBusy   float64 `json:"max_busy_s"`
	Imbalance float64 `json:"imbalance"`
	// PeakConcurrency is the peak number of simultaneously busy lanes.
	PeakConcurrency int64 `json:"peak_concurrency"`

	// Wall-clock throughput of the cell on the host machine. Excluded
	// from JSON and TSV: not deterministic.
	WallSeconds   float64 `json:"-"`
	EventsPerSec  float64 `json:"-"`
	RawTraceBytes int64   `json:"-"`
}

// TypeBusy is one state's share of a cell's busy time.
type TypeBusy struct {
	State string  `json:"state"`
	Busy  float64 `json:"busy"`
}

// Result is a completed sweep: cells in grid order (scenario-major,
// policy-minor).
type Result struct {
	Grid    Grid    `json:"grid"`
	Options Options `json:"options"`
	Cells   []Cell  `json:"cells"`
}

// Run executes the grid. The whole grid is validated before any cell
// runs: unknown policies, unknown workloads, and out-of-bounds
// parameters fail fast with no partial output.
func Run(g Grid, opts Options) (*Result, error) {
	if len(g.Policies) == 0 || len(g.Scenarios) == 0 {
		return nil, fmt.Errorf("sweep: grid needs at least one policy and one scenario")
	}
	if opts.Nodes <= 0 || opts.CPUsPerNode <= 0 || opts.TasksPerNode <= 0 {
		return nil, fmt.Errorf("sweep: options need nodes, cpus, and tasks per node")
	}
	for _, p := range g.Policies {
		if _, err := sched.ParsePolicy(p); err != nil {
			return nil, err
		}
	}
	for _, sc := range g.Scenarios {
		if _, err := workload.Build(sc.Name, sc.Params); err != nil {
			return nil, err
		}
	}
	res := &Result{Grid: g, Options: opts, Cells: make([]Cell, len(g.Policies)*len(g.Scenarios))}
	err := par.Do(len(res.Cells), opts.Parallel, func(i int) error {
		sc := g.Scenarios[i/len(g.Policies)]
		pol := g.Policies[i%len(g.Policies)]
		cell, err := runCell(sc, pol, opts)
		if err != nil {
			return fmt.Errorf("sweep: cell %s/%s: %w", sc.Label(), pol, err)
		}
		res.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runCell simulates one (scenario, policy) pair and reduces the merged
// trace to the cell metrics.
func runCell(sc Scenario, polName string, opts Options) (Cell, error) {
	start := time.Now()
	pol, err := sched.ParsePolicy(polName)
	if err != nil {
		return Cell{}, err
	}
	main, err := workload.Build(sc.Name, sc.Params)
	if err != nil {
		return Cell{}, err
	}
	cell := Cell{Workload: sc.Label(), Policy: polName}

	// Generate: one raw trace buffer per node.
	bufs := make([]*bytes.Buffer, opts.Nodes)
	writers := make([]io.Writer, opts.Nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		writers[i] = bufs[i]
	}
	world, err := mpisim.New(mpisim.Config{
		Cluster: cluster.Config{
			Nodes: opts.Nodes, CPUsPerNode: opts.CPUsPerNode,
			Quantum: opts.Quantum, Policy: pol, Seed: opts.Seed,
			TraceOpts: trace.Options{Enabled: events.MaskAll},
			// The default 1s sampling interval quantizes VirtualEnd (the
			// last event of a run is a clock sample); 10ms keeps the
			// end-time deltas between policies visible.
			ClockInterval: 10 * clock.Millisecond,
		},
		TasksPerNode: opts.TasksPerNode,
	}, writers)
	if err != nil {
		return Cell{}, err
	}
	world.Start(main)
	if cell.VirtualEnd, err = world.Run(); err != nil {
		return Cell{}, err
	}
	raw := make([][]byte, opts.Nodes)
	for i, b := range bufs {
		raw[i] = b.Bytes()
		cell.RawTraceBytes += int64(len(raw[i]))
	}

	// Convert. Cells parallelize across the grid, so each stage inside a
	// cell runs sequentially (Parallel: 1).
	outs, convResults, err := convert.ConvertBuffers(raw, convert.Options{
		Markers: convert.NewMarkerRegistry(), Parallel: 1,
	})
	if err != nil {
		return Cell{}, err
	}
	for _, r := range convResults {
		cell.RawEvents += r.Events
	}
	files := make([]*interval.File, len(outs))
	for i, sb := range outs {
		if files[i], err = interval.ReadHeader(sb); err != nil {
			return Cell{}, err
		}
	}

	// Merge with clock adjustment.
	sb := interval.NewSeekBuffer()
	mres, err := merge.Merge(files, sb, merge.Options{Parallel: 1})
	if err != nil {
		return Cell{}, err
	}
	cell.Records = mres.Records
	merged, err := interval.ReadHeader(sb)
	if err != nil {
		return Cell{}, err
	}

	// Stats: the three time-resolved tables with a single bin are
	// exactly the cell metrics — busy by type, lane load balance, and
	// peak concurrency over the whole run.
	tabs, err := stats.TimeResolved([]*interval.File{merged}, 1, stats.Options{Parallel: 1})
	if err != nil {
		return Cell{}, err
	}
	for _, t := range tabs {
		switch t.Name {
		case "tr_busy_by_type":
			for _, row := range t.Rows {
				state := row.X[len(row.X)-1].S
				busy := row.Y[0]
				cell.BusyByType = append(cell.BusyByType, TypeBusy{State: state, Busy: busy})
				cell.TotalBusy += busy
			}
			sort.Slice(cell.BusyByType, func(i, j int) bool {
				return cell.BusyByType[i].State < cell.BusyByType[j].State
			})
		case "tr_load_balance":
			if len(t.Rows) > 0 {
				cell.MeanBusy = t.Rows[0].Y[0]
				cell.MaxBusy = t.Rows[0].Y[1]
				cell.Imbalance = t.Rows[0].Y[2]
			}
		case "tr_concurrency":
			for _, row := range t.Rows {
				if p := int64(row.Y[0]); p > cell.PeakConcurrency {
					cell.PeakConcurrency = p
				}
			}
		}
	}

	cell.WallSeconds = time.Since(start).Seconds()
	if cell.WallSeconds > 0 {
		cell.EventsPerSec = float64(cell.RawEvents) / cell.WallSeconds
	}
	return cell, nil
}

// baseline returns the cell of the same scenario under the grid's first
// policy.
func (r *Result) baseline(i int) Cell {
	return r.Cells[(i/len(r.Grid.Policies))*len(r.Grid.Policies)]
}

// TSV renders the deterministic comparison table: one row per cell with
// the absolute metrics and, for non-baseline policies, delta columns
// against the scenario's run under the first policy.
func (r *Result) TSV() []byte {
	var b bytes.Buffer
	b.WriteString("workload\tpolicy\tvirtual_end_ms\traw_events\trecords\ttotal_busy_s\tmean_busy_s\tmax_busy_s\timbalance\tpeak_conc\td_end_pct\td_imbalance\td_peak\n")
	for i, c := range r.Cells {
		base := r.baseline(i)
		fmt.Fprintf(&b, "%s\t%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\t%d",
			c.Workload, c.Policy,
			ms(float64(c.VirtualEnd)), c.RawEvents, c.Records,
			f6(c.TotalBusy), f6(c.MeanBusy), f6(c.MaxBusy),
			f4(c.Imbalance), c.PeakConcurrency)
		if i%len(r.Grid.Policies) == 0 {
			b.WriteString("\t-\t-\t-\n")
			continue
		}
		dEnd := 0.0
		if base.VirtualEnd > 0 {
			dEnd = 100 * (float64(c.VirtualEnd) - float64(base.VirtualEnd)) / float64(base.VirtualEnd)
		}
		fmt.Fprintf(&b, "\t%s\t%s\t%+d\n",
			f2signed(dEnd), f4signed(c.Imbalance-base.Imbalance),
			c.PeakConcurrency-base.PeakConcurrency)
	}
	return b.Bytes()
}

// JSON renders the deterministic sweep result (grid, options, cells —
// no wall-clock fields).
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Throughput renders the per-cell wall-clock report (host-dependent;
// never part of TSV/JSON).
func (r *Result) Throughput() string {
	var b strings.Builder
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-28s %-10s %8.3fs wall  %9d events  %12.0f events/s  %d raw bytes\n",
			c.Workload, c.Policy, c.WallSeconds, c.RawEvents, c.EventsPerSec, c.RawTraceBytes)
	}
	return b.String()
}

func ms(ns float64) string { return strconv.FormatFloat(ns/1e6, 'f', 3, 64) }

func f6(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func f2signed(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	if v >= 0 && !strings.HasPrefix(s, "-") {
		return "+" + s
	}
	return s
}

func f4signed(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	if v >= 0 && !strings.HasPrefix(s, "-") {
		return "+" + s
	}
	return s
}
