package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"tracefw/internal/core"
	"tracefw/internal/mpisim"
	"tracefw/internal/render"
	"tracefw/internal/workload"
)

func baseConfig() core.Config {
	return core.Config{
		Nodes:        2,
		CPUsPerNode:  2,
		TasksPerNode: 1,
		Seed:         17,
	}
}

func TestExecuteInMemory(t *testing.T) {
	run, err := core.Execute(baseConfig(), workload.Ring{Iters: 5}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.VirtualEnd <= 0 {
		t.Fatalf("virtual end %v", run.VirtualEnd)
	}
	if len(run.RawTraces) != 2 || len(run.Intervals) != 2 {
		t.Fatalf("artifacts: %d raw, %d interval", len(run.RawTraces), len(run.Intervals))
	}
	if run.Merged == nil || run.Slog == nil {
		t.Fatal("missing merged/slog artifacts")
	}
	if run.TotalEvents() == 0 {
		t.Fatal("no events")
	}
	if run.MergeResult.Records == 0 || run.SlogResult.Frames == 0 {
		t.Fatalf("results: %+v %+v", run.MergeResult, run.SlogResult)
	}
}

func TestExecuteToFiles(t *testing.T) {
	cfg := baseConfig()
	cfg.OutDir = t.TempDir()
	run, err := core.Execute(cfg, workload.Ring{Iters: 5}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	for _, name := range []string{"raw.0", "raw.1", "trace.0.ute", "trace.1.ute", "merged.ute", "trace.slog"} {
		if _, err := os.Stat(filepath.Join(cfg.OutDir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	if len(run.RawPaths) != 2 {
		t.Fatalf("raw paths: %v", run.RawPaths)
	}
}

func TestRunStatsAndViews(t *testing.T) {
	run, err := core.Execute(baseConfig(), workload.Stencil{Steps: 6}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	tables, err := run.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 5 {
		t.Fatalf("predefined tables: %d", len(tables))
	}
	for _, kind := range []render.ViewKind{
		render.ThreadActivity, render.ProcessorActivity,
		render.ThreadProcessor, render.ProcessorThread,
	} {
		d, err := run.View(kind, render.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Rows) == 0 {
			t.Fatalf("%v view empty", kind)
		}
	}
	arrows, err := run.Arrows()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrows) == 0 {
		t.Fatal("no arrows")
	}
}

func TestExecuteValidatesConfig(t *testing.T) {
	if _, err := core.Execute(core.Config{}, func(*mpisim.Proc) {}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestCustomStatsProgram(t *testing.T) {
	run, err := core.Execute(baseConfig(), workload.Ring{Iters: 4, Bytes: 100}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	tables, err := run.Stats(`table name=bytes
		condition=(state == "MPI_Send")
		y=("total", msgSizeSent, sum)`)
	if err != nil {
		t.Fatal(err)
	}
	// 2 tasks × 4 sends × 100 bytes.
	if got := tables[0].Rows[0].Y[0]; got != 800 {
		t.Fatalf("total bytes %v, want 800", got)
	}
}

func TestNetworkAndWrapThreading(t *testing.T) {
	// Slower network -> longer virtual run; wrap mode -> tolerant convert
	// still yields a usable pipeline.
	slow, err := core.Execute(core.Config{
		Nodes: 2, CPUsPerNode: 2, TasksPerNode: 1, Seed: 17,
		Network: mpisim.Network{BWInter: 10e6, LatencyInter: 500 * 1000}, // 10 MB/s, 500µs
	}, workload.Ring{Iters: 5, Bytes: 1 << 20}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fast, err := core.Execute(baseConfig(), workload.Ring{Iters: 5, Bytes: 1 << 20}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if slow.VirtualEnd <= fast.VirtualEnd {
		t.Fatalf("slow network ran faster: %v vs %v", slow.VirtualEnd, fast.VirtualEnd)
	}

	cfg := baseConfig()
	cfg.Wrap = true
	cfg.BufferSize = 8 << 10
	run, err := core.Execute(cfg, workload.Ring{Iters: 100, Bytes: 256}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	var skipped int64
	for _, r := range run.ConvertResults {
		skipped += r.Skipped
	}
	if skipped == 0 {
		t.Fatal("wrap run skipped nothing; window too large or tolerance unused")
	}
	if run.MergeResult.Records == 0 {
		t.Fatal("wrap pipeline produced no merged records")
	}
}
