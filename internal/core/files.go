package core

import (
	"io"
	"os"
)

// createSeeker opens path for writing, returning it both as the
// WriteSeeker the format writers need and as the Closer the caller owns.
func createSeeker(path string) (io.WriteSeeker, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f, nil
}
