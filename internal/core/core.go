// Package core is the framework facade: it wires the whole paper
// pipeline of Figure 2 — run an instrumented program on the simulated SP
// machine producing one raw trace file per node, convert the event
// traces to interval files, merge them into a single clock-adjusted
// interval file, and derive the SLOG file, statistics tables, and
// time-space diagrams — behind one configuration struct. Each stage's
// artifact stays accessible, so callers can stop anywhere in the middle
// exactly like the command-line utilities do.
package core

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/render"
	"tracefw/internal/sched"
	"tracefw/internal/slog"
	"tracefw/internal/stats"
	"tracefw/internal/trace"
)

// Config assembles every stage's configuration.
type Config struct {
	// Machine shape.
	Nodes        int
	CPUsPerNode  int
	TasksPerNode int
	Quantum      clock.Time
	Affinity     sched.Affinity
	// Policy is the dispatch policy (nil = the default FIFO with
	// Affinity placement).
	Policy sched.Policy

	// Clock environment.
	Drifts        []float64
	Offsets       []clock.Time
	ClockInterval clock.Time
	OutlierProb   float64
	ClockJitterNS float64

	// Network/IO cost model overrides (zero values = defaults).
	Network mpisim.Network

	// Tracing.
	Enabled    events.Mask // zero = MaskAll
	BufferSize int
	DelayStart bool
	// Wrap selects the circular trace buffer (convert then runs in
	// tolerant mode automatically).
	Wrap bool

	Seed uint64

	// Parallel sets the pipeline width for the convert and merge stages
	// (0 = GOMAXPROCS, 1 = fully sequential). Merge.Parallel, when set,
	// overrides it for the merge stage. Outputs do not depend on the
	// width.
	Parallel int

	// Per-stage options.
	Convert interval.WriterOptions
	Merge   merge.Options
	Slog    slog.Options

	// OutDir, when non-empty, makes Execute write every artifact to disk
	// under this directory (raw.N, trace.N.ute, merged.ute, trace.slog,
	// profile.ute); otherwise everything stays in memory.
	OutDir string
}

func (c Config) clusterConfig() cluster.Config {
	enabled := c.Enabled
	if enabled == 0 {
		enabled = events.MaskAll
	}
	cc := cluster.Config{
		Nodes:         c.Nodes,
		CPUsPerNode:   c.CPUsPerNode,
		Quantum:       c.Quantum,
		Affinity:      c.Affinity,
		Policy:        c.Policy,
		ClockInterval: c.ClockInterval,
		Drifts:        c.Drifts,
		Offsets:       c.Offsets,
		ClockJitterNS: c.ClockJitterNS,
		OutlierProb:   c.OutlierProb,
		Seed:          c.Seed,
		TraceOpts: trace.Options{
			BufferSize: c.BufferSize,
			Enabled:    enabled,
			DelayStart: c.DelayStart,
			Wrap:       c.Wrap,
		},
	}
	if c.OutDir != "" {
		cc.TraceOpts.Prefix = filepath.Join(c.OutDir, "raw")
	}
	return cc
}

// Run holds every pipeline artifact.
type Run struct {
	Config Config

	// VirtualEnd is the simulated completion time.
	VirtualEnd clock.Time

	// RawTraces holds the per-node raw trace bytes (in-memory runs).
	RawTraces [][]byte
	// RawPaths holds the raw trace file names (file-backed runs).
	RawPaths []string

	// Intervals holds the per-node individual interval files.
	Intervals []*interval.File
	// ConvertResults holds per-node conversion summaries.
	ConvertResults []*convert.Result

	// Merged is the single merged, clock-adjusted interval file.
	Merged *interval.File
	// MergeResult summarizes the merge (ratios, pseudo counts).
	MergeResult *merge.Result

	// Slog is the viewer-ready SLOG file.
	Slog *slog.File
	// SlogResult summarizes the SLOG build.
	SlogResult *slog.BuildResult
}

// Execute runs the complete pipeline for a workload.
func Execute(cfg Config, main func(*mpisim.Proc)) (*Run, error) {
	if cfg.Nodes <= 0 || cfg.CPUsPerNode <= 0 {
		return nil, fmt.Errorf("core: config needs nodes and cpus")
	}
	run := &Run{Config: cfg}

	// Stage 1: trace generation on the simulated machine.
	mcfg := mpisim.Config{Cluster: cfg.clusterConfig(), TasksPerNode: cfg.TasksPerNode, Network: cfg.Network}
	var world *mpisim.World
	var bufs []*bytes.Buffer
	var err error
	if cfg.OutDir != "" {
		world, err = mpisim.NewFiles(mcfg)
	} else {
		bufs = make([]*bytes.Buffer, cfg.Nodes)
		writers := make([]io.Writer, cfg.Nodes)
		for i := range bufs {
			bufs[i] = &bytes.Buffer{}
			writers[i] = bufs[i]
		}
		world, err = mpisim.New(mcfg, writers)
	}
	if err != nil {
		return nil, err
	}
	world.Start(main)
	if run.VirtualEnd, err = world.Run(); err != nil {
		return nil, err
	}

	// Stage 2: convert raw traces to interval files.
	reg := convert.NewMarkerRegistry()
	copts := convert.Options{Writer: cfg.Convert, Markers: reg, Tolerant: cfg.Wrap, Parallel: cfg.Parallel}
	if cfg.OutDir != "" {
		for n := 0; n < cfg.Nodes; n++ {
			run.RawPaths = append(run.RawPaths, mcfg.Cluster.TraceOpts.FileName(n))
		}
		outPaths := make([]string, cfg.Nodes)
		for n := range outPaths {
			outPaths[n] = filepath.Join(cfg.OutDir, fmt.Sprintf("trace.%d.ute", n))
		}
		results, err := convert.ConvertAll(run.RawPaths, outPaths, copts)
		if err != nil {
			return nil, err
		}
		run.ConvertResults = results
		for _, p := range outPaths {
			f, err := interval.Open(p)
			if err != nil {
				return nil, err
			}
			run.Intervals = append(run.Intervals, f)
		}
	} else {
		run.RawTraces = make([][]byte, cfg.Nodes)
		for i, b := range bufs {
			run.RawTraces[i] = b.Bytes()
		}
		outs, results, err := convert.ConvertBuffers(run.RawTraces, copts)
		if err != nil {
			return nil, err
		}
		run.ConvertResults = results
		for _, sb := range outs {
			f, err := interval.ReadHeader(sb)
			if err != nil {
				return nil, err
			}
			run.Intervals = append(run.Intervals, f)
		}
	}

	// Stage 3: merge with clock adjustment.
	mopts := cfg.Merge
	mopts.Writer = cfg.Convert
	if mopts.Parallel == 0 {
		mopts.Parallel = cfg.Parallel
	}
	var mergedRS io.ReadSeeker
	if cfg.OutDir != "" {
		path := filepath.Join(cfg.OutDir, "merged.ute")
		if run.MergeResult, err = mergeToFile(run.Intervals, path, mopts); err != nil {
			return nil, err
		}
		if run.Merged, err = interval.Open(path); err != nil {
			return nil, err
		}
	} else {
		sb := interval.NewSeekBuffer()
		if run.MergeResult, err = merge.Merge(run.Intervals, sb, mopts); err != nil {
			return nil, err
		}
		mergedRS = sb
		if run.Merged, err = interval.ReadHeader(mergedRS); err != nil {
			return nil, err
		}
	}

	// Stage 4: SLOG for the viewer.
	if cfg.OutDir != "" {
		path := filepath.Join(cfg.OutDir, "trace.slog")
		if run.SlogResult, err = buildSlogFile(run.Merged, path, cfg.Slog); err != nil {
			return nil, err
		}
		if run.Slog, err = slog.Open(path); err != nil {
			return nil, err
		}
	} else {
		sb := interval.NewSeekBuffer()
		if run.SlogResult, err = slog.Build(run.Merged, sb, cfg.Slog); err != nil {
			return nil, err
		}
		if run.Slog, err = slog.Read(sb); err != nil {
			return nil, err
		}
	}
	return run, nil
}

func mergeToFile(files []*interval.File, path string, opts merge.Options) (*merge.Result, error) {
	out, fp, err := createSeeker(path)
	if err != nil {
		return nil, err
	}
	res, err := merge.Merge(files, out, opts)
	if cerr := fp.Close(); err == nil {
		err = cerr
	}
	return res, err
}

func buildSlogFile(mf *interval.File, path string, opts slog.Options) (*slog.BuildResult, error) {
	out, fp, err := createSeeker(path)
	if err != nil {
		return nil, err
	}
	res, err := slog.Build(mf, out, opts)
	if cerr := fp.Close(); err == nil {
		err = cerr
	}
	return res, err
}

// Stats runs a statistics program (empty = the predefined tables) over
// the merged file.
func (r *Run) Stats(program string) ([]*stats.Table, error) {
	if program == "" {
		program = stats.Predefined(50)
	}
	return stats.Generate(program, []*interval.File{r.Merged})
}

// View builds one of the four time-space diagrams from the merged file.
func (r *Run) View(kind render.ViewKind, opts render.Options) (*render.Diagram, error) {
	return render.BuildDiagram(r.Merged, kind, opts)
}

// Arrows collects every message arrow from the SLOG file.
func (r *Run) Arrows() ([]slog.Arrow, error) {
	var arrows []slog.Arrow
	for i := range r.Slog.Index {
		fd, err := r.Slog.ReadFrame(i)
		if err != nil {
			return nil, err
		}
		arrows = append(arrows, fd.Arrows...)
	}
	return arrows, nil
}

// TotalEvents sums raw events over all nodes.
func (r *Run) TotalEvents() int64 {
	var n int64
	for _, c := range r.ConvertResults {
		n += c.Events
	}
	return n
}

// Close releases file handles of file-backed runs.
func (r *Run) Close() error {
	var first error
	for _, f := range r.Intervals {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if r.Merged != nil {
		if err := r.Merged.Close(); err != nil && first == nil {
			first = err
		}
	}
	if r.Slog != nil {
		if err := r.Slog.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
