// Package testutil provides pipeline helpers shared by the test suites
// of the utilities that sit on top of the simulated machine: run a
// workload, convert its raw traces, and merge the interval files, all in
// memory. It is imported only from external test packages (package
// x_test), so it may depend on every pipeline stage without cycles.
package testutil

import (
	"bytes"
	"io"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/trace"
)

// Shape describes the simulated machine for a test run.
type Shape struct {
	Nodes        int
	TasksPerNode int
	CPUs         int
	Seed         uint64
	Drifts       []float64 // optional explicit drifts
	Quantum      int64     // optional scheduler quantum, ns
}

// RunWorkload executes main on every task of a fresh in-memory world and
// returns the per-node raw trace bytes.
func RunWorkload(t testing.TB, sh Shape, main func(*mpisim.Proc)) [][]byte {
	t.Helper()
	if sh.Seed == 0 {
		sh.Seed = 42
	}
	bufs := make([]*bytes.Buffer, sh.Nodes)
	ws := make([]io.Writer, sh.Nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       sh.Nodes,
			CPUsPerNode: sh.CPUs,
			TraceOpts:   trace.Options{Enabled: events.MaskAll},
			Drifts:      sh.Drifts,
			Seed:        sh.Seed,
		},
		TasksPerNode: sh.TasksPerNode,
	}
	if sh.Quantum > 0 {
		cfg.Cluster.Quantum = clock.Time(sh.Quantum)
	}
	w, err := mpisim.New(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(main)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	raws := make([][]byte, sh.Nodes)
	for i := range bufs {
		raws[i] = bufs[i].Bytes()
	}
	return raws
}

// ConvertRun converts raw traces into interval files (in memory).
func ConvertRun(t testing.TB, raws [][]byte, wopts interval.WriterOptions) []*interval.File {
	t.Helper()
	outs, _, err := convert.ConvertBuffers(raws, convert.Options{Writer: wopts})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*interval.File, len(outs))
	for i, sb := range outs {
		f, err := interval.ReadHeader(sb)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	return files
}

// MergeRun merges interval files into one (in memory).
func MergeRun(t testing.TB, files []*interval.File, opts merge.Options) (*interval.File, *merge.Result) {
	t.Helper()
	sb := interval.NewSeekBuffer()
	res, err := merge.Merge(files, sb, opts)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := interval.ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	return mf, res
}

// Pipeline runs workload → convert → merge and returns the merged file.
func Pipeline(t testing.TB, sh Shape, mopts merge.Options, main func(*mpisim.Proc)) (*interval.File, *merge.Result) {
	t.Helper()
	raws := RunWorkload(t, sh, main)
	files := ConvertRun(t, raws, interval.WriterOptions{})
	return MergeRun(t, files, mopts)
}
