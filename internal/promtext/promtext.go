// Package promtext is the hand-rolled Prometheus text-exposition kit
// the serving layers share (stdlib only, per the repo's
// no-new-dependencies rule): atomic counters and gauges plus
// fixed-bucket latency histograms, rendered in the exposition format's
// deterministic order so scrapes are diffable. Both the trace query
// daemon (internal/tracesvc) and the shard router (internal/shard)
// build their /metrics endpoints on it.
package promtext

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down; it shares Counter's
// representation (Add with a negative delta decreases it).
type Gauge = Counter

// LatencyBuckets are the default histogram upper bounds in seconds,
// spanning cache-hit microseconds to multi-second cold scans.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NumBuckets must equal len(LatencyBuckets); a const so the bucket
// array needs no allocation. Checked at init.
const NumBuckets = 16

func init() {
	if len(LatencyBuckets) != NumBuckets {
		panic("promtext: NumBuckets out of sync with LatencyBuckets")
	}
}

// Histogram is a fixed-bucket latency histogram over LatencyBuckets.
// Observations and rendering are lock-free; the rendered snapshot is
// approximate under concurrency, which the exposition format permits.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	for i, ub := range LatencyBuckets {
		if sec <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// WriteBuckets renders the histogram's bucket/sum/count lines for one
// label set. labels is the rendered label body without braces (e.g.
// `endpoint="stats"`); empty means no labels.
func (h *Histogram) WriteBuckets(w io.Writer, family, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for bi, ub := range LatencyBuckets {
		cum += h.buckets[bi].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", family, labels, sep, TrimFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", family, labels, sep, h.count.Load())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", family, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", family, h.count.Load())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", family, labels, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", family, labels, h.count.Load())
}

// Header writes one family's HELP and TYPE lines.
func Header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// TrimFloat renders a bucket bound the way Prometheus clients do:
// shortest representation, no exponent for these magnitudes.
func TrimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
