package promtext

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	var g Gauge
	g.Add(7)
	g.Add(-4)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

// TestHistogramRendering pins the exposition format: cumulative
// buckets, +Inf, sum in seconds, count — labelled and unlabelled.
func TestHistogramRendering(t *testing.T) {
	var h Histogram
	h.Observe(50 * time.Microsecond) // first bucket (<= 0.0001)
	h.Observe(2 * time.Millisecond)  // <= 0.0025
	h.Observe(20 * time.Second)      // over every bound: +Inf only

	var b strings.Builder
	h.WriteBuckets(&b, "x_seconds", `backend="b1"`)
	out := b.String()
	for _, want := range []string{
		"x_seconds_bucket{backend=\"b1\",le=\"0.0001\"} 1\n",
		"x_seconds_bucket{backend=\"b1\",le=\"0.0025\"} 2\n",
		"x_seconds_bucket{backend=\"b1\",le=\"10\"} 2\n",
		"x_seconds_bucket{backend=\"b1\",le=\"+Inf\"} 3\n",
		"x_seconds_count{backend=\"b1\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, out)
		}
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}

	b.Reset()
	h.WriteBuckets(&b, "y_seconds", "")
	out = b.String()
	for _, want := range []string{
		"y_seconds_bucket{le=\"+Inf\"} 3\n",
		"y_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("unlabelled rendering lacks %q:\n%s", want, out)
		}
	}
}

func TestHeader(t *testing.T) {
	var b strings.Builder
	Header(&b, "foo_total", "counter", "Foos.")
	if b.String() != "# HELP foo_total Foos.\n# TYPE foo_total counter\n" {
		t.Fatalf("header = %q", b.String())
	}
}
