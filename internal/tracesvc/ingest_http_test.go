package tracesvc_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"tracefw/internal/convert"
	"tracefw/internal/core"
	"tracefw/internal/events"
	"tracefw/internal/ingest"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/trace"
	"tracefw/internal/tracesvc"
	"tracefw/internal/workload"
	"tracefw/internal/xrand"
)

// ingestService builds a service with streaming ingest enabled.
func ingestService(t testing.TB, dir string, wopts interval.WriterOptions) *tracesvc.Service {
	t.Helper()
	s := tracesvc.New(tracesvc.Config{})
	m, err := ingest.NewManager(ingest.Config{Dir: dir, Writer: wopts, QueueRecords: 128})
	if err != nil {
		t.Fatal(err)
	}
	s.EnableIngest(m)
	return s
}

// doBytes is do() for raw (non-string) bodies.
func doBytes(t testing.TB, s *tracesvc.Service, method, url string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(method, url, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// ingestRaws generates a random workload's per-node raw traces.
func ingestRaws(t testing.TB, seed uint64, nodes, steps int) [][]byte {
	t.Helper()
	drifts := make([]float64, nodes)
	for i := range drifts {
		drifts[i] = float64(i-1) * 25e-6
	}
	run, err := core.Execute(core.Config{
		Nodes: nodes, CPUsPerNode: 2, TasksPerNode: 2, Seed: seed, Drifts: drifts,
	}, workload.Random{Seed: seed, Steps: steps}.Main())
	if err != nil {
		t.Fatal(err)
	}
	raws := run.RawTraces
	run.Close()
	return raws
}

// rawPreambleCut finds the end of the last table-defining record.
func rawPreambleCut(t testing.TB, raw []byte) int {
	t.Helper()
	off := convert.RawHeaderSize
	cut := off
	for off < len(raw) {
		rec, n, err := trace.Decode(raw[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		if rec.Type == events.EvThreadInfo || rec.Type == events.EvMarkerDefine {
			cut = off
		}
	}
	return cut
}

// recordKey is the order-defining view of a record used to compare live
// snapshots against the batch reference.
type recordKey struct {
	Type    string
	StartNs int64
	DuraNs  int64
	Node    uint16
	Thread  uint16
	CPU     uint16
}

// TestIngestHTTPConcurrent is the serving-layer race and byte-identity
// proof: N goroutine "nodes" post interleaved batches over the real
// HTTP surface while reader goroutines continuously query the live tail
// (stats, records, previews). When the dust settles, the sealed file is
// byte-identical to the sequential convert→merge pipeline, the HTTP
// stats/preview bodies are byte-identical to a service serving the
// reference file, and every mid-flight records response was an exact
// prefix of the reference. Run it under -race.
func TestIngestHTTPConcurrent(t *testing.T) {
	const nodes = 3
	raws := ingestRaws(t, 23, nodes, 60)
	wopts := interval.WriterOptions{FrameBytes: 1024, FramesPerDir: 2}

	// Batch-pipeline reference, and a second service serving it.
	outs, _, err := convert.ConvertBuffers(raws, convert.Options{
		Writer: interval.WriterOptions{FrameBytes: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*interval.File, len(outs))
	for i, sb := range outs {
		if files[i], err = interval.ReadHeader(sb); err != nil {
			t.Fatal(err)
		}
	}
	msb := interval.NewSeekBuffer()
	if _, err := merge.Merge(files, msb, merge.Options{
		Estimator: merge.EstimatorNone, Writer: wopts, Parallel: 1,
	}); err != nil {
		t.Fatal(err)
	}
	want := msb.Bytes()
	refDir := t.TempDir()
	refPath := refDir + "/ref.ute"
	if err := os.WriteFile(refPath, want, 0o644); err != nil {
		t.Fatal(err)
	}
	refSvc := tracesvc.New(tracesvc.Config{})
	defer refSvc.Close()
	refID := openTrace(t, refSvc, refPath)
	wf, err := interval.NewFile(interval.NewSeekBufferFrom(want))
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := wf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := make([]recordKey, len(wantRecs))
	for i := range wantRecs {
		r := &wantRecs[i]
		wantKeys[i] = recordKey{r.Type.Name(), int64(r.Start), int64(r.Dura), r.Node, r.Thread, r.CPU}
	}

	// The live service.
	s := ingestService(t, t.TempDir(), wopts)
	defer s.Close()
	w := doBytes(t, s, "POST", "/v1/ingest/run?op=begin&nodes=3", nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("begin: %d %s", w.Code, w.Body)
	}
	var began struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &began); err != nil || began.ID == "" {
		t.Fatalf("begin response %q: %v", w.Body, err)
	}
	id := began.ID

	// Writers: one goroutine per node posting random-size batches.
	var wg sync.WaitGroup
	for i := range raws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := xrand.New(500 + uint64(i))
			raw := raws[i]
			cut := rawPreambleCut(t, raw)
			batches := [][]byte{raw[:cut]}
			rest := raw[cut:]
			for len(rest) > 0 {
				n := 1 + rng.Intn(1500)
				if n > len(rest) {
					n = len(rest)
				}
				batches = append(batches, rest[:n])
				rest = rest[n:]
			}
			for seq, b := range batches {
				url := fmt.Sprintf("/v1/ingest/run?node=%d&seq=%d", i, seq)
				if seq == len(batches)-1 {
					url += "&last=1"
				}
				if w := doBytes(t, s, "POST", url, b); w.Code != http.StatusAccepted {
					t.Errorf("node %d seq %d: %d %s", i, seq, w.Code, w.Body)
					return
				}
			}
		}(i)
	}

	// Readers: hammer the live tail until the writers finish. Snapshot
	// resolution may race the first seal (503) — everything else must
	// succeed, and every records body must be a reference prefix.
	stop := make(chan struct{})
	var liveReads, prefixChecks atomic.Int64
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := doBytes(t, s, "GET", "/v1/traces/"+id+"/records?limit=100000", nil)
				switch w.Code {
				case http.StatusServiceUnavailable:
					continue // no sealed data yet, or a retired snapshot
				case http.StatusOK:
				default:
					t.Errorf("reader %d: records: %d %s", r, w.Code, w.Body)
					return
				}
				liveReads.Add(1)
				var page struct {
					Total   int `json:"total"`
					Records []struct {
						Type    string `json:"type"`
						StartNs int64  `json:"startNs"`
						DuraNs  int64  `json:"duraNs"`
						CPU     uint16 `json:"cpu"`
						Node    uint16 `json:"node"`
						Thread  uint16 `json:"thread"`
					} `json:"records"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if page.Total > len(wantKeys) {
					t.Errorf("live tail has %d records, reference only %d", page.Total, len(wantKeys))
					return
				}
				for i, rec := range page.Records {
					got := recordKey{rec.Type, rec.StartNs, rec.DuraNs, rec.Node, rec.Thread, rec.CPU}
					if got != wantKeys[i] {
						t.Errorf("live record %d = %+v, reference %+v", i, got, wantKeys[i])
						return
					}
				}
				prefixChecks.Add(1)
				// Exercise the other read paths for the race detector.
				doBytes(t, s, "GET", "/v1/traces/"+id+"/stats?bins=8", nil)
				doBytes(t, s, "GET", "/v1/traces/"+id+"/preview.svg?view=preview&bins=8", nil)
				doBytes(t, s, "GET", "/v1/ingest/run", nil)
			}
		}(r)
	}
	wg.Wait()
	sess, ok := s.IngestManager().Get("run")
	if !ok {
		t.Fatal("session vanished")
	}
	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	rg.Wait()
	if t.Failed() {
		return
	}
	if prefixChecks.Load() == 0 {
		// On a slow box the whole ingest can finish before any reader
		// lands a 200; the prefix property still must hold, now over the
		// complete trace.
		w := doBytes(t, s, "GET", "/v1/traces/"+id+"/records?limit=100000", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("post-ingest records read: %d %s", w.Code, w.Body)
		}
		var page struct {
			Records []struct {
				Type    string `json:"type"`
				StartNs int64  `json:"startNs"`
				DuraNs  int64  `json:"duraNs"`
				CPU     uint16 `json:"cpu"`
				Node    uint16 `json:"node"`
				Thread  uint16 `json:"thread"`
			} `json:"records"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Records) != len(wantKeys) {
			t.Fatalf("post-ingest read: %d records, reference %d", len(page.Records), len(wantKeys))
		}
		for i, rec := range page.Records {
			got := recordKey{rec.Type, rec.StartNs, rec.DuraNs, rec.Node, rec.Thread, rec.CPU}
			if got != wantKeys[i] {
				t.Fatalf("post-ingest record %d = %+v, reference %+v", i, got, wantKeys[i])
			}
		}
	}

	// Final file: byte-identical to the batch pipeline.
	got, err := os.ReadFile(sess.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ingested file differs from batch pipeline (%d vs %d bytes)", len(got), len(want))
	}

	// HTTP bodies over the finished live trace are byte-identical to the
	// reference service's.
	for _, q := range []string{"/stats?bins=16", "/records?limit=50", "/preview.svg?view=preview&bins=12"} {
		lw := doBytes(t, s, "GET", "/v1/traces/"+id+q, nil)
		rw := doBytes(t, refSvc, "GET", "/v1/traces/"+refID+q, nil)
		if lw.Code != 200 || rw.Code != 200 {
			t.Fatalf("%s: live %d, reference %d", q, lw.Code, rw.Code)
		}
		if !bytes.Equal(lw.Body.Bytes(), rw.Body.Bytes()) {
			t.Fatalf("%s: live body differs from reference service", q)
		}
	}

	// Session status reports completion.
	w = doBytes(t, s, "GET", "/v1/ingest/run", nil)
	var status struct {
		State string `json:"state"`
		Final bool   `json:"final"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.State != "done" || !status.Final {
		t.Fatalf("final status: %s", w.Body)
	}
	// Ingest metrics are exported.
	mw := doBytes(t, s, "GET", "/metrics", nil)
	for _, metric := range []string{
		"tracesvc_ingest_sessions_done_total 1",
		"tracesvc_ingest_seals_total",
		"tracesvc_ingest_records_total",
	} {
		if !bytes.Contains(mw.Body.Bytes(), []byte(metric)) {
			t.Fatalf("/metrics missing %q:\n%s", metric, mw.Body)
		}
	}
}

// TestIngestHTTPErrors: the endpoint's error paths map to the
// documented statuses.
func TestIngestHTTPErrors(t *testing.T) {
	// Disabled service: 403 everywhere.
	off := tracesvc.New(tracesvc.Config{})
	defer off.Close()
	if w := doBytes(t, off, "POST", "/v1/ingest/x?op=begin&nodes=1", nil); w.Code != http.StatusForbidden {
		t.Fatalf("disabled begin: %d", w.Code)
	}
	if w := doBytes(t, off, "GET", "/v1/ingest", nil); w.Code != http.StatusForbidden {
		t.Fatalf("disabled list: %d", w.Code)
	}

	dir := t.TempDir()
	m, err := ingest.NewManager(ingest.Config{Dir: dir, MaxBatchBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	s.EnableIngest(m)

	cases := []struct {
		method, url string
		body        []byte
		code        int
	}{
		{"POST", "/v1/ingest/bad..%2Fname?op=begin&nodes=1", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/.hidden?op=begin&nodes=1", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?op=begin&nodes=0", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?op=begin&nodes=junk", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?op=begin&nodes=1&framebytes=-1", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?op=begin&nodes=1", nil, http.StatusCreated},
		{"POST", "/v1/ingest/ok?op=begin&nodes=1", nil, http.StatusConflict},
		{"POST", "/v1/ingest/ok?op=weird", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?node=junk&seq=0", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?node=0&seq=junk", nil, http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?node=5&seq=0", []byte("x"), http.StatusBadRequest},
		{"POST", "/v1/ingest/ok?node=0&seq=0", make([]byte, 5000), http.StatusRequestEntityTooLarge},
		{"POST", "/v1/ingest/ok?node=0&seq=90", []byte("x"), http.StatusConflict},
		{"POST", "/v1/ingest/missing?node=0&seq=0", []byte("x"), http.StatusNotFound},
		{"GET", "/v1/ingest/missing", nil, http.StatusNotFound},
		{"POST", "/v1/ingest/missing?op=abort", nil, http.StatusNotFound},
		{"GET", "/v1/ingest/ok", nil, http.StatusOK},
		{"POST", "/v1/ingest/ok?op=abort", nil, http.StatusOK},
	}
	for _, c := range cases {
		if w := doBytes(t, s, c.method, c.url, c.body); w.Code != c.code {
			t.Fatalf("%s %s: got %d want %d (%s)", c.method, c.url, w.Code, c.code, w.Body)
		}
	}
	// A live trace with no sealed data resolves to 503.
	if w := doBytes(t, s, "POST", "/v1/ingest/empty?op=begin&nodes=1", nil); w.Code != http.StatusCreated {
		t.Fatal("begin empty")
	}
	var began struct {
		ID string `json:"id"`
	}
	json.Unmarshal(doBytes(t, s, "GET", "/v1/ingest/empty", nil).Body.Bytes(), &began)
	if began.ID == "" {
		t.Fatal("no registry id for live trace")
	}
	if w := doBytes(t, s, "GET", "/v1/traces/"+began.ID+"/stats", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unready live trace: %d %s", w.Code, w.Body)
	}
}
