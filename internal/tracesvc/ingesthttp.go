package tracesvc

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"tracefw/internal/ingest"
	"tracefw/internal/interval"
)

// Streaming ingest endpoints. All under /v1/ingest/{trace}:
//
//	POST ?op=begin&nodes=N [&framebytes=B&framesperdir=D]  start a live trace
//	POST ?node=I&seq=S[&last=1]   one raw batch (body = bytes)
//	POST ?op=abort                cancel; the sealed prefix stays valid
//	GET  /v1/ingest               all sessions (JSON)
//	GET  /v1/ingest/{trace}       one session's status (JSON)
//
// Batch POSTs are registered without the per-request deadline: a push
// into a full merge queue legitimately blocks until the merge catches
// up — that block IS the backpressure that bounds ingest memory.
//
// The endpoints answer 403 until EnableIngest is called (the daemon
// enables them with -ingest-dir).

// ingestState carries the ingest manager and the trace-name → registry
// ID mapping for sessions begun over HTTP.
type ingestState struct {
	mgr *ingest.Manager

	mu  sync.Mutex
	ids map[string]string
}

// EnableIngest switches the ingest endpoints on. Must be called before
// the service starts handling requests.
func (s *Service) EnableIngest(m *ingest.Manager) {
	s.ing = &ingestState{mgr: m, ids: make(map[string]string)}
}

// IngestManager returns the enabled manager, or nil.
func (s *Service) IngestManager() *ingest.Manager {
	if s.ing == nil {
		return nil
	}
	return s.ing.mgr
}

// ingestErrStatus maps the ingest sentinel errors to HTTP statuses.
func ingestErrStatus(err error) error {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ingest.ErrUnknownTrace):
		code = http.StatusNotFound
	case errors.Is(err, ingest.ErrExists),
		errors.Is(err, ingest.ErrDuplicate),
		errors.Is(err, ingest.ErrWindow),
		errors.Is(err, ingest.ErrFinished),
		errors.Is(err, ingest.ErrSessionDone):
		code = http.StatusConflict
	case errors.Is(err, ingest.ErrTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ingest.ErrDraining):
		code = http.StatusServiceUnavailable
	}
	return &httpErr{code: code, msg: err.Error()}
}

var errIngestDisabled = &httpErr{
	code: http.StatusForbidden,
	msg:  "ingest disabled (start utetraced with -ingest-dir)",
}

// sessionStatus is the JSON shape of one ingest session.
type sessionStatus struct {
	Trace        string              `json:"trace"`
	ID           string              `json:"id,omitempty"`
	Path         string              `json:"path"`
	State        string              `json:"state"`
	Error        string              `json:"error,omitempty"`
	Nodes        []ingest.NodeStatus `json:"nodes"`
	SealedBytes  int64               `json:"sealedBytes"`
	SealedFrames int                 `json:"sealedFrames"`
	Generation   uint64              `json:"generation"`
	Final        bool                `json:"final"`
}

func (s *Service) sessionStatus(sess *ingest.Session) sessionStatus {
	si, gen := sess.Sealed()
	st := sessionStatus{
		Trace:        sess.Name(),
		Path:         sess.Path(),
		State:        sess.State().String(),
		Nodes:        sess.NodeStatuses(),
		SealedBytes:  si.Size,
		SealedFrames: si.Frames,
		Generation:   gen,
		Final:        si.Final,
	}
	if err := sess.Err(); err != nil {
		st.Error = err.Error()
	}
	s.ing.mu.Lock()
	st.ID = s.ing.ids[sess.Name()]
	s.ing.mu.Unlock()
	return st
}

func (s *Service) handleIngestList(*http.Request) (*response, error) {
	if s.ing == nil {
		return nil, errIngestDisabled
	}
	sessions := s.ing.mgr.Sessions()
	out := make([]sessionStatus, len(sessions))
	for i, sess := range sessions {
		out[i] = s.sessionStatus(sess)
	}
	st := s.ing.mgr.Stats()
	return jsonResponse(http.StatusOK, struct {
		Sessions []sessionStatus `json:"sessions"`
		Stats    ingest.Stats    `json:"stats"`
	}{out, st})
}

func (s *Service) handleIngestStatus(r *http.Request) (*response, error) {
	if s.ing == nil {
		return nil, errIngestDisabled
	}
	name := r.PathValue("trace")
	sess, ok := s.ing.mgr.Get(name)
	if !ok {
		return nil, ingestErrStatus(fmt.Errorf("%w: %q", ingest.ErrUnknownTrace, name))
	}
	return jsonResponse(http.StatusOK, s.sessionStatus(sess))
}

func (s *Service) handleIngestPost(r *http.Request) (*response, error) {
	if s.ing == nil {
		return nil, errIngestDisabled
	}
	name := r.PathValue("trace")
	q := r.URL.Query()
	switch op := q.Get("op"); op {
	case "begin":
		return s.ingestBegin(name, r)
	case "abort":
		sess, ok := s.ing.mgr.Get(name)
		if !ok {
			return nil, ingestErrStatus(fmt.Errorf("%w: %q", ingest.ErrUnknownTrace, name))
		}
		sess.Abort()
		sess.Wait()
		return jsonResponse(http.StatusOK, s.sessionStatus(sess))
	case "":
		return s.ingestBatch(name, r)
	default:
		return nil, badRequest("bad op %q", op)
	}
}

func (s *Service) ingestBegin(name string, r *http.Request) (*response, error) {
	q := r.URL.Query()
	nodes, err := strconv.Atoi(q.Get("nodes"))
	if err != nil {
		return nil, badRequest("bad nodes %q", q.Get("nodes"))
	}
	var wopts interval.WriterOptions
	if fb := q.Get("framebytes"); fb != "" {
		if wopts.FrameBytes, err = strconv.Atoi(fb); err != nil || wopts.FrameBytes < 1 {
			return nil, badRequest("bad framebytes %q", fb)
		}
	}
	if fd := q.Get("framesperdir"); fd != "" {
		if wopts.FramesPerDir, err = strconv.Atoi(fd); err != nil || wopts.FramesPerDir < 1 {
			return nil, badRequest("bad framesperdir %q", fd)
		}
	}
	sess, err := s.ing.mgr.Begin(name, nodes, wopts)
	if err != nil {
		return nil, ingestErrStatus(err)
	}
	id := s.reg.AddLive(sess)
	s.ing.mu.Lock()
	s.ing.ids[name] = id
	s.ing.mu.Unlock()
	return jsonResponse(http.StatusCreated, s.sessionStatus(sess))
}

func (s *Service) ingestBatch(name string, r *http.Request) (*response, error) {
	sess, ok := s.ing.mgr.Get(name)
	if !ok {
		return nil, ingestErrStatus(fmt.Errorf("%w: %q", ingest.ErrUnknownTrace, name))
	}
	q := r.URL.Query()
	node, err := strconv.Atoi(q.Get("node"))
	if err != nil {
		return nil, badRequest("bad node %q", q.Get("node"))
	}
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		return nil, badRequest("bad seq %q", q.Get("seq"))
	}
	max := s.ing.mgr.MaxBatchBytes()
	data, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		return nil, badRequest("reading batch body: %v", err)
	}
	if int64(len(data)) > max {
		return nil, ingestErrStatus(fmt.Errorf("%w: over %d bytes", ingest.ErrTooLarge, max))
	}
	if err := sess.Batch(node, seq, q.Get("last") == "1", data); err != nil {
		return nil, ingestErrStatus(err)
	}
	return jsonResponse(http.StatusAccepted, struct {
		Trace string `json:"trace"`
		Node  int    `json:"node"`
		Seq   uint64 `json:"seq"`
	}{name, node, seq})
}
