package tracesvc

import (
	"fmt"
	"sort"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
)

// Trace is one registered interval file plus the metadata the serving
// layer keeps resident: the preloaded directory chain, the flattened
// frame list, and the whole-run bounds. The embedded *interval.File is
// safe for concurrent window queries (Preload + positioned reads) and
// its frame decodes go through the shared cache via the decode hook.
type Trace struct {
	ID   string
	Path string
	// num is the cache key namespace for this registration; a reopened
	// path gets a fresh number, so stale cache entries can never serve.
	num    uint64
	file   *interval.File
	frames []interval.FrameEntry
	dirs   int
	// dirInfos maps each frame directory to its contiguous range in the
	// flattened frame list plus its aggregates — the boundaries the shard
	// router splits a huge trace at.
	dirInfos []DirInfo
	start    clock.Time
	end      clock.Time
	recs     int64
}

// File returns the underlying interval file.
func (t *Trace) File() *interval.File { return t.file }

// Frames returns the resident frame list; callers must not modify it.
func (t *Trace) Frames() []interval.FrameEntry { return t.frames }

// Bounds returns the run's first start time, last end time, and record
// count, from directory metadata resident since registration.
func (t *Trace) Bounds() (clock.Time, clock.Time, int64) { return t.start, t.end, t.recs }

// Registry holds the opened traces. IDs are small and stable ("t1",
// "t2", …) in registration order; closing a trace frees its slot but
// never recycles the cache namespace.
type Registry struct {
	cache *FrameCache

	mu       sync.RWMutex
	byID     map[string]*Trace
	liveByID map[string]*liveEntry
	nextID   uint64
}

// NewRegistry builds an empty registry whose traces decode frames
// through the given cache.
func NewRegistry(cache *FrameCache) *Registry {
	return &Registry{
		cache:    cache,
		byID:     make(map[string]*Trace),
		liveByID: make(map[string]*liveEntry),
	}
}

// Open opens and registers the interval file at path: the directory
// chain is preloaded into memory, the frame list flattened, and the
// cache decode hook installed — all before the trace becomes visible to
// queries. Files that cannot serve concurrent (positioned) frame reads
// are rejected; every real file and SeekBuffer can.
func (r *Registry) Open(path string) (*Trace, error) {
	f, err := interval.Open(path)
	if err != nil {
		return nil, err
	}
	t, err := r.register(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// register wires an already-open file into the registry (Open's tail;
// tests use it with in-memory files). A failed registration burns the
// allocated ID — IDs stay stable and unrecycled either way.
func (r *Registry) register(path string, f *interval.File) (*Trace, error) {
	r.mu.Lock()
	r.nextID++
	id, num := fmt.Sprintf("t%d", r.nextID), r.nextID
	r.mu.Unlock()
	t, err := buildTrace(id, path, num, f, r.cache)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.byID[t.ID] = t
	r.mu.Unlock()
	return t, nil
}

// buildTrace preloads an open file and assembles the resident Trace —
// shared by static registration and live-snapshot resolution (which
// reuses one cache namespace across generations).
func buildTrace(id, path string, num uint64, f *interval.File, cache *FrameCache) (*Trace, error) {
	if !f.ConcurrentReads() {
		return nil, fmt.Errorf("tracesvc: %s: reader does not support concurrent frame reads", path)
	}
	if err := f.Preload(); err != nil {
		return nil, err
	}
	frames, err := f.Frames()
	if err != nil {
		return nil, err
	}
	start, end, recs, err := f.Stats()
	if err != nil {
		return nil, err
	}
	dirs, err := f.Dirs()
	if err != nil {
		return nil, err
	}
	dirInfos := make([]DirInfo, len(dirs))
	first := 0
	for i, d := range dirs {
		dirInfos[i] = DirInfo{
			FirstFrame: first,
			Frames:     len(d.Entries),
			Records:    d.Records,
			StartNs:    int64(d.Start),
			EndNs:      int64(d.End),
		}
		first += len(d.Entries)
	}
	t := &Trace{
		ID:       id,
		Path:     path,
		num:      num,
		file:     f,
		frames:   frames,
		dirs:     len(dirs),
		dirInfos: dirInfos,
		start:    start,
		end:      end,
		recs:     recs,
	}
	// The hook makes every frame decode — map-reduce engine, scanners,
	// DecodeFrame — hit the shared cache. Installed before the trace is
	// published, never changed after, as SetFrameDecoder requires.
	f.SetFrameDecoder(func(f *interval.File, fe interval.FrameEntry) ([]interval.Record, error) {
		return cache.Get(num, fe.Offset, func() ([]interval.Record, error) {
			return f.DecodeFrameDirect(fe)
		})
	})
	return t, nil
}

// Get looks a static trace up by ID (live traces resolve via Resolve).
func (r *Registry) Get(id string) (*Trace, bool) {
	r.mu.RLock()
	t, ok := r.byID[id]
	r.mu.RUnlock()
	return t, ok
}

// Resolve looks a trace up by ID, resolving live traces to a snapshot
// of their newest seal generation.
func (r *Registry) Resolve(id string) (*Trace, error) {
	r.mu.RLock()
	t, ok := r.byID[id]
	var e *liveEntry
	if !ok {
		e, ok = r.liveByID[id]
	}
	r.mu.RUnlock()
	if !ok {
		return nil, notFound(id)
	}
	if e != nil {
		return e.resolve(r.cache)
	}
	return t, nil
}

// List returns the registered traces in ID (registration) order. Live
// traces appear as their newest resolved snapshot; ones with no sealed
// data yet (or whose resolution fails) are omitted.
func (r *Registry) List() []*Trace {
	r.mu.RLock()
	ts := make([]*Trace, 0, len(r.byID)+len(r.liveByID))
	for _, t := range r.byID {
		ts = append(ts, t)
	}
	lives := make([]*liveEntry, 0, len(r.liveByID))
	for _, e := range r.liveByID {
		lives = append(lives, e)
	}
	r.mu.RUnlock()
	for _, e := range lives {
		if t, err := e.resolve(r.cache); err == nil {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].num < ts[j].num })
	return ts
}

// Len returns the number of registered traces (live ones included).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID) + len(r.liveByID)
}

// Close unregisters a trace, drops its cached frames, and closes the
// file. In-flight queries against it fail with interval.ErrClosed —
// promptly and safely, never with a crash — which handlers map to 503.
func (r *Registry) Close(id string) bool {
	r.mu.Lock()
	t, ok := r.byID[id]
	if ok {
		delete(r.byID, id)
	}
	var e *liveEntry
	if !ok {
		if e, ok = r.liveByID[id]; ok {
			delete(r.liveByID, id)
		}
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	if e != nil {
		e.close()
		r.cache.InvalidateFile(e.num)
		return true
	}
	r.cache.InvalidateFile(t.num)
	t.file.Close()
	return true
}

// CloseAll closes every registered trace (daemon shutdown), including
// live ones that never sealed any data.
func (r *Registry) CloseAll() {
	r.mu.RLock()
	ids := make([]string, 0, len(r.byID)+len(r.liveByID))
	for id := range r.byID {
		ids = append(ids, id)
	}
	for id := range r.liveByID {
		ids = append(ids, id)
	}
	r.mu.RUnlock()
	for _, id := range ids {
		r.Close(id)
	}
}

// framesDecoded sums the frame payload reads of every registered trace
// — the warm/cold proof counter exported via /metrics. Live traces
// count their current snapshot without forcing a resolve.
func (r *Registry) framesDecoded() int64 {
	r.mu.RLock()
	files := make([]*interval.File, 0, len(r.byID)+len(r.liveByID))
	for _, t := range r.byID {
		files = append(files, t.file)
	}
	for _, e := range r.liveByID {
		if f := e.file(); f != nil {
			files = append(files, f)
		}
	}
	r.mu.RUnlock()
	var n int64
	for _, f := range files {
		n += f.DecodedFrames()
	}
	return n
}
