package tracesvc

import (
	"fmt"
	"sort"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
)

// Trace is one registered interval file plus the metadata the serving
// layer keeps resident: the preloaded directory chain, the flattened
// frame list, and the whole-run bounds. The embedded *interval.File is
// safe for concurrent window queries (Preload + positioned reads) and
// its frame decodes go through the shared cache via the decode hook.
type Trace struct {
	ID   string
	Path string
	// num is the cache key namespace for this registration; a reopened
	// path gets a fresh number, so stale cache entries can never serve.
	num    uint64
	file   *interval.File
	frames []interval.FrameEntry
	dirs   int
	start  clock.Time
	end    clock.Time
	recs   int64
}

// File returns the underlying interval file.
func (t *Trace) File() *interval.File { return t.file }

// Frames returns the resident frame list; callers must not modify it.
func (t *Trace) Frames() []interval.FrameEntry { return t.frames }

// Bounds returns the run's first start time, last end time, and record
// count, from directory metadata resident since registration.
func (t *Trace) Bounds() (clock.Time, clock.Time, int64) { return t.start, t.end, t.recs }

// Registry holds the opened traces. IDs are small and stable ("t1",
// "t2", …) in registration order; closing a trace frees its slot but
// never recycles the cache namespace.
type Registry struct {
	cache *FrameCache

	mu     sync.RWMutex
	byID   map[string]*Trace
	nextID uint64
}

// NewRegistry builds an empty registry whose traces decode frames
// through the given cache.
func NewRegistry(cache *FrameCache) *Registry {
	return &Registry{cache: cache, byID: make(map[string]*Trace)}
}

// Open opens and registers the interval file at path: the directory
// chain is preloaded into memory, the frame list flattened, and the
// cache decode hook installed — all before the trace becomes visible to
// queries. Files that cannot serve concurrent (positioned) frame reads
// are rejected; every real file and SeekBuffer can.
func (r *Registry) Open(path string) (*Trace, error) {
	f, err := interval.Open(path)
	if err != nil {
		return nil, err
	}
	t, err := r.register(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// register wires an already-open file into the registry (Open's tail;
// tests use it with in-memory files).
func (r *Registry) register(path string, f *interval.File) (*Trace, error) {
	if !f.ConcurrentReads() {
		return nil, fmt.Errorf("tracesvc: %s: reader does not support concurrent frame reads", path)
	}
	if err := f.Preload(); err != nil {
		return nil, err
	}
	frames, err := f.Frames()
	if err != nil {
		return nil, err
	}
	start, end, recs, err := f.Stats()
	if err != nil {
		return nil, err
	}
	dirs, err := f.Dirs()
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	r.nextID++
	t := &Trace{
		ID:     fmt.Sprintf("t%d", r.nextID),
		Path:   path,
		num:    r.nextID,
		file:   f,
		frames: frames,
		dirs:   len(dirs),
		start:  start,
		end:    end,
		recs:   recs,
	}
	// The hook makes every frame decode — map-reduce engine, scanners,
	// DecodeFrame — hit the shared cache. Installed before the trace is
	// published, never changed after, as SetFrameDecoder requires.
	cache, num := r.cache, t.num
	f.SetFrameDecoder(func(f *interval.File, fe interval.FrameEntry) ([]interval.Record, error) {
		return cache.Get(num, fe.Offset, func() ([]interval.Record, error) {
			return f.DecodeFrameDirect(fe)
		})
	})
	r.byID[t.ID] = t
	r.mu.Unlock()
	return t, nil
}

// Get looks a trace up by ID.
func (r *Registry) Get(id string) (*Trace, bool) {
	r.mu.RLock()
	t, ok := r.byID[id]
	r.mu.RUnlock()
	return t, ok
}

// List returns the registered traces in ID (registration) order.
func (r *Registry) List() []*Trace {
	r.mu.RLock()
	ts := make([]*Trace, 0, len(r.byID))
	for _, t := range r.byID {
		ts = append(ts, t)
	}
	r.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].num < ts[j].num })
	return ts
}

// Len returns the number of registered traces.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// Close unregisters a trace, drops its cached frames, and closes the
// file. In-flight queries against it fail with interval.ErrClosed —
// promptly and safely, never with a crash — which handlers map to 503.
func (r *Registry) Close(id string) bool {
	r.mu.Lock()
	t, ok := r.byID[id]
	if ok {
		delete(r.byID, id)
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	r.cache.InvalidateFile(t.num)
	t.file.Close()
	return true
}

// CloseAll closes every registered trace (daemon shutdown).
func (r *Registry) CloseAll() {
	for _, t := range r.List() {
		r.Close(t.ID)
	}
}

// framesDecoded sums the frame payload reads of every registered trace
// — the warm/cold proof counter exported via /metrics.
func (r *Registry) framesDecoded() int64 {
	var n int64
	for _, t := range r.List() {
		n += t.file.DecodedFrames()
	}
	return n
}
