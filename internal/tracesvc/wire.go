package tracesvc

// Wire shapes of the JSON endpoints, exported so the shard router
// (internal/shard) can rebuild scatter-gathered responses from the same
// struct definitions the handlers marshal — field order, tags, and
// omitempty behavior are then identical by construction, which is what
// makes a merged router response byte-identical to a single-node
// answer.

// TraceInfo is the JSON shape of one registered trace: identity plus
// the header and directory metadata resident since registration.
type TraceInfo struct {
	ID             string  `json:"id"`
	Path           string  `json:"path"`
	HeaderVersion  uint32  `json:"headerVersion"`
	ProfileVersion uint32  `json:"profileVersion"`
	Threads        int     `json:"threads"`
	Dirs           int     `json:"dirs"`
	Frames         int     `json:"frames"`
	Records        int64   `json:"records"`
	StartNs        int64   `json:"startNs"`
	EndNs          int64   `json:"endNs"`
	StartSec       float64 `json:"startSec"`
	EndSec         float64 `json:"endSec"`
}

// TraceList is the GET /v1/traces body.
type TraceList struct {
	Traces []TraceInfo `json:"traces"`
}

// FrameInfo is one frame directory entry on the wire.
type FrameInfo struct {
	Offset  int64  `json:"offset"`
	Bytes   uint32 `json:"bytes"`
	Records uint32 `json:"records"`
	StartNs int64  `json:"startNs"`
	EndNs   int64  `json:"endNs"`
}

// DirInfo is one frame directory's aggregate metadata: the frame-index
// range it spans in the flattened frame list plus its time bounds. The
// shard router splits a huge trace into contiguous frame ranges at
// these boundaries.
type DirInfo struct {
	FirstFrame int   `json:"firstFrame"`
	Frames     int   `json:"frames"`
	Records    int64 `json:"records"`
	StartNs    int64 `json:"startNs"`
	EndNs      int64 `json:"endNs"`
}

// FrameList is the GET /v1/traces/{id}/frames body.
type FrameList struct {
	Frames []FrameInfo `json:"frames"`
	Dirs   []DirInfo   `json:"dirs"`
}

// RecordJSON is the JSON shape of one interval record.
type RecordJSON struct {
	Type    string   `json:"type"`
	Bebits  string   `json:"bebits"`
	StartNs int64    `json:"startNs"`
	DuraNs  int64    `json:"duraNs"`
	EndNs   int64    `json:"endNs"`
	CPU     uint16   `json:"cpu"`
	Node    uint16   `json:"node"`
	Thread  uint16   `json:"thread"`
	Extra   []uint64 `json:"extra,omitempty"`
	Vec     []uint64 `json:"vec,omitempty"`
}

// RecordsPage is the GET /v1/traces/{id}/records body.
type RecordsPage struct {
	Total   int          `json:"total"`
	Offset  int          `json:"offset"`
	Records []RecordJSON `json:"records"`
}

// RecordCount is the GET /v1/traces/{id}/records?count=1 body.
type RecordCount struct {
	Count int `json:"count"`
}
