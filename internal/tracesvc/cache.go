// Package tracesvc is the long-running serving layer over the interval
// format: a registry of opened trace files, a sharded byte-budgeted LRU
// cache of decoded frames, and the HTTP handlers behind cmd/utetraced.
// The paper's utilities are one-shot — every stats table or preview
// re-opens and re-decodes the trace — while the serving layer keeps
// directories and hot decoded frames resident, so repeated window
// queries against the same trace become sublinear (the VampirServer /
// Jumpshot preview-then-drill-down model).
package tracesvc

import (
	"sync"

	"tracefw/internal/interval"
	"tracefw/internal/promtext"
)

// frameKey identifies one cached frame: the registry-assigned file
// number plus the frame's byte offset (unique within a file).
type frameKey struct {
	file uint64
	off  int64
}

// FrameCache is a sharded LRU cache of decoded frames, keyed by
// (file, frame offset) and bounded by an approximate byte budget.
// Concurrent requests for the same missing frame are collapsed into a
// single decode (singleflight); everyone else blocks on the winner.
// Cached record slices are shared with every caller: they are read-only
// by contract (the same contract interval.FrameDecoder states).
type FrameCache struct {
	shards      []cacheShard
	shardBudget int64

	// stats are approximate across shards and exported via /metrics.
	hits      promtext.Counter
	misses    promtext.Counter
	evictions promtext.Counter
	bytes     promtext.Gauge
	entries   promtext.Gauge
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[frameKey]*cacheEntry
	// LRU list of ready entries: head is most recent, tail the next
	// victim. In-flight entries sit in the map but not in the list, so
	// eviction can never pick a frame that is still decoding.
	head, tail *cacheEntry
	bytes      int64
}

type cacheEntry struct {
	key        frameKey
	recs       []interval.Record
	size       int64
	prev, next *cacheEntry
	// ready closes when the decode finished; err is set before ready
	// closes and never written afterwards.
	ready chan struct{}
	err   error
	// linked tracks list membership: an entry can leave the list (and
	// the map) through invalidation while a waiter still holds it.
	linked bool
}

// NewFrameCache builds a cache with the given total byte budget spread
// over nShards shards (both floored to sane minimums). The budget is
// approximate: it counts decoded record payloads, not allocator
// overhead.
func NewFrameCache(budgetBytes int64, nShards int) *FrameCache {
	if nShards < 1 {
		nShards = 1
	}
	if budgetBytes < 1<<16 {
		budgetBytes = 1 << 16
	}
	c := &FrameCache{
		shards:      make([]cacheShard, nShards),
		shardBudget: budgetBytes / int64(nShards),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[frameKey]*cacheEntry)
	}
	return c
}

func (c *FrameCache) shard(k frameKey) *cacheShard {
	// Frame offsets are distinct multiples of small sizes; fold both key
	// halves through a 64-bit mix (splitmix64 finalizer) so shard
	// assignment is uniform regardless of alignment.
	h := k.file*0x9e3779b97f4a7c15 + uint64(k.off)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return &c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached records for key (file, off), or runs load
// exactly once — however many callers ask concurrently — and caches its
// result. A failed load is not cached; every waiter sees the error and
// the next Get retries.
func (c *FrameCache) Get(file uint64, off int64, load func() ([]interval.Record, error)) ([]interval.Record, error) {
	k := frameKey{file, off}
	sh := c.shard(k)

	sh.mu.Lock()
	if e := sh.entries[k]; e != nil {
		select {
		case <-e.ready:
			// Ready entry: bump it to the front and serve.
			sh.moveToFront(e)
			sh.mu.Unlock()
			c.hits.Add(1)
			return e.recs, e.err
		default:
		}
		// Another goroutine is decoding this frame right now: wait for
		// it outside the lock. Counted as a hit — no second decode runs.
		sh.mu.Unlock()
		<-e.ready
		c.hits.Add(1)
		return e.recs, e.err
	}
	e := &cacheEntry{key: k, ready: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()
	c.misses.Add(1)

	recs, err := load()
	e.recs, e.err = recs, err

	sh.mu.Lock()
	if err != nil {
		// Do not cache failures; drop our placeholder unless an
		// invalidation already removed it.
		if sh.entries[k] == e {
			delete(sh.entries, k)
		}
	} else if sh.entries[k] == e {
		e.size = recordsBytes(recs)
		sh.linkFront(e)
		sh.bytes += e.size
		c.bytes.Add(e.size)
		c.entries.Add(1)
		c.evictLocked(sh)
	}
	sh.mu.Unlock()
	close(e.ready)
	return recs, err
}

// evictLocked drops least-recently-used entries until the shard is back
// under its budget. The caller holds the shard lock.
func (c *FrameCache) evictLocked(sh *cacheShard) {
	for sh.bytes > c.shardBudget && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		sh.bytes -= victim.size
		c.bytes.Add(-victim.size)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
}

// InvalidateFile removes every cached frame of the given file; the
// registry calls it when a trace is closed so a later reopen can never
// see stale frames.
func (c *FrameCache) InvalidateFile(file uint64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.file != file {
				continue
			}
			delete(sh.entries, k)
			if e.linked {
				sh.unlink(e)
				sh.bytes -= e.size
				c.bytes.Add(-e.size)
				c.entries.Add(-1)
			}
		}
		sh.mu.Unlock()
	}
}

// Flush empties the cache entirely (benchmarks use it to measure the
// cold path).
func (c *FrameCache) Flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			delete(sh.entries, k)
			if e.linked {
				sh.unlink(e)
				sh.bytes -= e.size
				c.bytes.Add(-e.size)
				c.entries.Add(-1)
			}
		}
		sh.mu.Unlock()
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Bytes, Entries          int64
}

// Stats snapshots the counters (approximate under concurrency).
func (c *FrameCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Bytes:     c.bytes.Value(),
		Entries:   c.entries.Value(),
	}
}

// list management — the caller holds the shard lock throughout.

func (sh *cacheShard) linkFront(e *cacheEntry) {
	e.linked = true
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}

func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if !e.linked || sh.head == e {
		return
	}
	sh.unlink(e)
	sh.linkFront(e)
}

// recordsBytes estimates the resident size of a decoded frame: the
// record structs plus their Extra/Vec payloads. It is a budget measure,
// not an exact allocator accounting.
func recordsBytes(recs []interval.Record) int64 {
	const recordSize = 96 // struct fields + two slice headers, rounded up
	n := int64(len(recs)) * recordSize
	for i := range recs {
		n += int64(len(recs[i].Extra)+len(recs[i].Vec)) * 8
	}
	return n
}
