package tracesvc_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/render"
	"tracefw/internal/stats"
	"tracefw/internal/tracesvc"
	"tracefw/internal/xrand"
)

// writeTrace writes a small valid interval file and returns its path.
// Tiny frame/dir limits force many frames, so the cache has something
// to shard.
func writeTrace(t testing.TB, dir string, n int) string {
	t.Helper()
	rng := xrand.New(42)
	recs := make([]interval.Record, n)
	end := clock.Time(0)
	for i := range recs {
		end += clock.Time(rng.Int63n(int64(clock.Millisecond)))
		recs[i] = interval.Record{
			Type:   events.EvMPISend,
			Bebits: profile.Complete,
			Start:  end - clock.Time(rng.Int63n(int64(clock.Microsecond))),
			CPU:    uint16(i % 4),
			Node:   uint16(i % 2),
			Thread: uint16(i % 3),
			Extra:  []uint64{uint64(i), 7, 0, 0, 0, 0},
		}
		recs[i].Dura = end - recs[i].Start
	}
	hdr := interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  interval.CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Threads: []interval.ThreadEntry{
			{Task: 0, PID: 100, SysTID: 1, Node: 0, LTID: 0, Type: events.ThreadMPI},
			{Task: 1, PID: 101, SysTID: 2, Node: 1, LTID: 0, Type: events.ThreadMPI},
		},
	}
	path := filepath.Join(dir, "trace.ute")
	fl, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := interval.NewWriter(fl, hdr, interval.WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// do runs one request against the service handler.
func do(t testing.TB, s *tracesvc.Service, method, url string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, url, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, url, nil)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

func openTrace(t testing.TB, s *tracesvc.Service, path string) string {
	t.Helper()
	w := do(t, s, "POST", "/v1/traces", fmt.Sprintf(`{"path":%q}`, path))
	if w.Code != http.StatusCreated {
		t.Fatalf("POST /v1/traces: %d %s", w.Code, w.Body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	return info.ID
}

func TestServiceCRUD(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 300)
	id := openTrace(t, s, path)

	w := do(t, s, "GET", "/v1/traces", "")
	if w.Code != 200 || !strings.Contains(w.Body.String(), path) {
		t.Fatalf("list: %d %s", w.Code, w.Body)
	}
	w = do(t, s, "GET", "/v1/traces/"+id, "")
	var info struct {
		Records int64 `json:"records"`
		Frames  int   `json:"frames"`
		Dirs    int   `json:"dirs"`
	}
	if w.Code != 200 {
		t.Fatalf("get: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Records != 300 || info.Frames < 4 || info.Dirs < 1 {
		t.Fatalf("metadata: %+v", info)
	}

	w = do(t, s, "GET", "/v1/traces/"+id+"/frames", "")
	var fr struct {
		Frames []struct {
			Records uint32 `json:"records"`
		} `json:"frames"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	var sum int
	for _, fe := range fr.Frames {
		sum += int(fe.Records)
	}
	if len(fr.Frames) != info.Frames || sum != 300 {
		t.Fatalf("frames endpoint: %d frames, %d records", len(fr.Frames), sum)
	}

	// Paged records: pages concatenate to the full set, count mode
	// agrees, and a windowed count matches a record-level oracle.
	var got int
	for off := 0; ; off += 100 {
		w = do(t, s, "GET", fmt.Sprintf("/v1/traces/%s/records?offset=%d&limit=100", id, off), "")
		var page struct {
			Total   int               `json:"total"`
			Records []json.RawMessage `json:"records"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if page.Total != 300 {
			t.Fatalf("total %d, want 300", page.Total)
		}
		got += len(page.Records)
		if len(page.Records) == 0 {
			break
		}
	}
	if got != 300 {
		t.Fatalf("pages sum to %d records, want 300", got)
	}
	w = do(t, s, "GET", "/v1/traces/"+id+"/records?count=1", "")
	if !strings.Contains(w.Body.String(), `"count": 300`) {
		t.Fatalf("count mode: %s", w.Body)
	}

	if w = do(t, s, "DELETE", "/v1/traces/"+id, ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	if w = do(t, s, "GET", "/v1/traces/"+id, ""); w.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", w.Code)
	}
	if w = do(t, s, "DELETE", "/v1/traces/"+id, ""); w.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", w.Code)
	}
}

// TestStatsByteIdentical: the stats endpoint's body equals utestats's
// stdout — the same tables through the same TSV rendering and the same
// "# table" framing — windowed and unwindowed, predefined and explicit
// programs.
func TestStatsByteIdentical(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 400)
	id := openTrace(t, s, path)

	expect := func(program string, opts stats.Options) string {
		f, err := interval.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tables, err := stats.GenerateOpts(program, []*interval.File{f}, opts)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, tb := range tables {
			fmt.Fprintf(&b, "# table %s\n%s\n", tb.Name, tb.TSV())
		}
		return b.String()
	}

	w := do(t, s, "GET", "/v1/traces/"+id+"/stats", "")
	if w.Code != 200 {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
	if want := expect(stats.Predefined(50), stats.Options{}); w.Body.String() != want {
		t.Fatalf("predefined stats differ from utestats output:\n--- got ---\n%s\n--- want ---\n%s", w.Body, want)
	}

	lo, hi, err := clock.ParseWindow("0.02:0.09")
	if err != nil {
		t.Fatal(err)
	}
	w = do(t, s, "GET", "/v1/traces/"+id+"/stats?window=0.02:0.09&bins=10", "")
	want := expect(stats.Predefined(10), stats.Options{Window: true, Lo: lo, Hi: hi})
	if w.Body.String() != want {
		t.Fatal("windowed stats differ from utestats output")
	}

	prog := `table name=bynode x=("node", node) y=("n", dura, count)`
	w = do(t, s, "GET", "/v1/traces/"+id+"/stats?expr="+
		"table+name%3Dbynode+x%3D%28%22node%22%2C+node%29+y%3D%28%22n%22%2C+dura%2C+count%29", "")
	if w.Code != 200 {
		t.Fatalf("expr stats: %d %s", w.Code, w.Body)
	}
	if want := expect(prog, stats.Options{}); w.Body.String() != want {
		t.Fatal("expr stats differ from utestats output")
	}
}

// TestPreviewByteIdentical: the preview endpoint's SVG equals uteview's
// for the same view and window, including the resolution of open-ended
// window sides to the run bounds.
func TestPreviewByteIdentical(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 400)
	id := openTrace(t, s, path)

	expect := func(view string, window string) string {
		f, err := interval.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		kind, err := render.ParseView(view)
		if err != nil {
			t.Fatal(err)
		}
		var opts render.Options
		if window != "" {
			lo, hi, err := clock.ParseWindow(window)
			if err != nil {
				t.Fatal(err)
			}
			fs, fe, _, err := f.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if lo == math.MinInt64 {
				lo = fs
			}
			if hi == math.MaxInt64 {
				hi = fe
			}
			if hi <= lo {
				hi = lo + 1
			}
			opts.T0, opts.T1 = lo, hi
		}
		d, err := render.BuildDiagram(f, kind, opts)
		if err != nil {
			t.Fatal(err)
		}
		return d.SVG()
	}

	for _, tc := range []struct{ view, window string }{
		{"", ""},
		{"processor-activity", "0.01:0.05"},
		{"thread-activity", ":0.08"},
	} {
		url := "/v1/traces/" + id + "/preview.svg?view=" + tc.view
		if tc.window != "" {
			url += "&window=" + tc.window
		}
		w := do(t, s, "GET", url, "")
		if w.Code != 200 {
			t.Fatalf("preview %+v: %d %s", tc, w.Code, w.Body)
		}
		if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("preview content type %q", ct)
		}
		if w.Body.String() != expect(tc.view, tc.window) {
			t.Fatalf("preview %+v differs from uteview output", tc)
		}
	}
}

// TestWarmCacheDecodesNoFrames is the acceptance proof for the cache: a
// repeated window query decodes zero frames — DecodedFrames (frame
// payload reads) stays flat while cache hits climb.
func TestWarmCacheDecodesNoFrames(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 500)
	id := openTrace(t, s, path)
	tr, _ := s.Registry().Get(id)

	if w := do(t, s, "GET", "/v1/traces/"+id+"/records?window=0.05:0.2&count=1", ""); w.Code != 200 {
		t.Fatalf("cold query: %d %s", w.Code, w.Body)
	}
	cold := tr.File().DecodedFrames()
	if cold == 0 {
		t.Fatal("cold query decoded nothing")
	}
	hits0 := s.Cache().Stats().Hits

	for i := 0; i < 3; i++ {
		if w := do(t, s, "GET", "/v1/traces/"+id+"/records?window=0.05:0.2&count=1", ""); w.Code != 200 {
			t.Fatalf("warm query: %d %s", w.Code, w.Body)
		}
	}
	if got := tr.File().DecodedFrames(); got != cold {
		t.Fatalf("warm queries decoded %d frames (total %d, cold %d): cache not serving", got-cold, got, cold)
	}
	if hits := s.Cache().Stats().Hits; hits <= hits0 {
		t.Fatalf("cache hits did not grow: %d -> %d", hits0, hits)
	}

	// Stats over the same window also rides the cache: still no decodes.
	if w := do(t, s, "GET", "/v1/traces/"+id+"/stats?window=0.05:0.2", ""); w.Code != 200 {
		t.Fatalf("warm stats: %d %s", w.Code, w.Body)
	}
	if got := tr.File().DecodedFrames(); got != cold {
		t.Fatalf("warm stats decoded %d extra frames", got-cold)
	}
}

// TestSingleflightDecodesOnce: N concurrent cold queries over the same
// window must decode every frame exactly once — the singleflight
// collapses the duplicate loads.
func TestSingleflightDecodesOnce(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 500)
	id := openTrace(t, s, path)
	tr, _ := s.Registry().Get(id)
	nframes := int64(len(tr.Frames()))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, s, "GET", "/v1/traces/"+id+"/records?count=1", "")
			if w.Code != 200 {
				t.Errorf("concurrent cold query: %d", w.Code)
			}
		}()
	}
	wg.Wait()
	if got := tr.File().DecodedFrames(); got != nframes {
		t.Fatalf("8 concurrent cold full scans decoded %d frames, file has %d: singleflight failed", got, nframes)
	}
}

// TestConcurrentQueriesWithClose hammers mixed endpoints from many
// goroutines while a DELETE lands mid-flight; run under -race. Requests
// racing the close may see 200, 404, or 503 — anything else fails.
func TestConcurrentQueriesWithClose(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	dir := t.TempDir()
	path := writeTrace(t, dir, 600)
	keep := openTrace(t, s, path)
	doomed := openTrace(t, s, path)

	urls := []string{
		"/v1/traces/%s/records?window=0.01:0.1&count=1",
		"/v1/traces/%s/records?window=0.2:0.3&limit=50",
		"/v1/traces/%s/stats?window=0.05:0.25&bins=8",
		"/v1/traces/%s/preview.svg?window=0.1:0.2",
		"/v1/traces/%s/frames",
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		for _, id := range []string{keep, doomed} {
			wg.Add(1)
			go func(g int, id string) {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					u := fmt.Sprintf(urls[(g+i)%len(urls)], id)
					w := do(t, s, "GET", u, "")
					switch w.Code {
					case 200, 404, 503:
					default:
						t.Errorf("GET %s: %d %s", u, w.Code, w.Body)
					}
				}
			}(g, id)
		}
	}
	close(start)
	time.Sleep(time.Millisecond)
	if w := do(t, s, "DELETE", "/v1/traces/"+doomed, ""); w.Code != http.StatusNoContent {
		t.Errorf("delete: %d", w.Code)
	}
	wg.Wait()

	// The surviving trace still answers, byte-identically to before.
	if w := do(t, s, "GET", "/v1/traces/"+keep+"/records?count=1", ""); w.Code != 200 {
		t.Fatalf("survivor query: %d %s", w.Code, w.Body)
	}
}

// TestCacheEviction: a cache far smaller than the decoded trace must
// evict and stay under budget, while queries keep answering correctly.
func TestCacheEviction(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{CacheBytes: 1 << 16, CacheShards: 1})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 4000)
	id := openTrace(t, s, path)

	for i := 0; i < 2; i++ {
		w := do(t, s, "GET", "/v1/traces/"+id+"/records?count=1", "")
		if w.Code != 200 || !strings.Contains(w.Body.String(), `"count": 4000`) {
			t.Fatalf("scan %d: %d %s", i, w.Code, w.Body)
		}
	}
	cs := s.Cache().Stats()
	if cs.Evictions == 0 {
		t.Fatal("no evictions despite a 64KiB budget")
	}
	if cs.Bytes > 1<<16 {
		t.Fatalf("cache holds %d bytes, budget %d", cs.Bytes, 1<<16)
	}
	if cs.Bytes < 0 || cs.Entries < 0 {
		t.Fatalf("negative accounting: %+v", cs)
	}
}

// TestRequestTimeout: an unmeetable deadline surfaces as 504, routed
// through the map-reduce engine's context check.
func TestRequestTimeout(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{RequestTimeout: time.Nanosecond})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 300)

	// Registration must not be subject to the request deadline's
	// map-reduce path: open directly.
	tr, err := s.Registry().Open(path)
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "GET", "/v1/traces/"+tr.ID+"/stats", "")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("stats under 1ns deadline: %d %s", w.Code, w.Body)
	}
	w = do(t, s, "GET", "/v1/traces/"+tr.ID+"/records", "")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("records under 1ns deadline: %d %s", w.Code, w.Body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 300)
	id := openTrace(t, s, path)
	do(t, s, "GET", "/v1/traces/"+id+"/records?count=1", "")
	do(t, s, "GET", "/v1/traces/"+id+"/records?count=1", "")

	w := do(t, s, "GET", "/metrics", "")
	if w.Code != 200 {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"tracesvc_cache_hits_total ",
		"tracesvc_cache_misses_total ",
		"tracesvc_cache_bytes_resident ",
		"tracesvc_traces_open 1",
		"tracesvc_frames_decoded_total ",
		`tracesvc_requests_total{endpoint="records"} 2`,
		`tracesvc_request_seconds_bucket{endpoint="records",le="+Inf"} 2`,
		`tracesvc_request_seconds_count{endpoint="records"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body lacks %q:\n%s", want, body)
		}
	}

	// Errors count: a 404 increments the error counter.
	do(t, s, "GET", "/v1/traces/nope", "")
	body = do(t, s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(body, `tracesvc_request_errors_total{endpoint="get"} 1`) {
		t.Fatalf("404 not counted as an error:\n%s", body)
	}
}

// TestBadRequests: malformed parameters map to 400, unknown IDs to 404.
func TestBadRequests(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 100)
	id := openTrace(t, s, path)

	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/traces/zzz/stats", 404},
		{"/v1/traces/" + id + "/stats?window=bogus", 400},
		{"/v1/traces/" + id + "/stats?bins=-1", 400},
		{"/v1/traces/" + id + "/records?limit=0", 400},
		{"/v1/traces/" + id + "/records?offset=-2", 400},
		{"/v1/traces/" + id + "/preview.svg?view=nope", 400},
	} {
		if w := do(t, s, "GET", tc.url, ""); w.Code != tc.code {
			t.Errorf("GET %s: %d, want %d", tc.url, w.Code, tc.code)
		}
	}
	if w := do(t, s, "POST", "/v1/traces", `{"path":"/does/not/exist.ute"}`); w.Code != 400 {
		t.Errorf("open missing file: %d", w.Code)
	}
	if w := do(t, s, "POST", "/v1/traces", `{`); w.Code != 400 {
		t.Errorf("bad JSON: %d", w.Code)
	}
}

// TestStatsEngineAndJSON covers the stats endpoint's engine selection,
// JSON format, time-resolved tables, and the stats counters on /metrics.
func TestStatsEngineAndJSON(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 400)
	id := openTrace(t, s, path)

	// Engine selection: scalar and columnar answers are byte-identical.
	base := do(t, s, "GET", "/v1/traces/"+id+"/stats?engine=scalar", "")
	col := do(t, s, "GET", "/v1/traces/"+id+"/stats?engine=columnar", "")
	if base.Code != 200 || col.Code != 200 {
		t.Fatalf("engine stats: %d / %d", base.Code, col.Code)
	}
	if base.Body.String() != col.Body.String() {
		t.Fatal("scalar and columnar endpoint bodies differ")
	}
	if w := do(t, s, "GET", "/v1/traces/"+id+"/stats?engine=nope", ""); w.Code != 400 {
		t.Fatalf("bad engine: %d", w.Code)
	}

	// JSON format carries the engine flag and the excluded-record count.
	w := do(t, s, "GET", "/v1/traces/"+id+"/stats?format=json&expr="+
		"table+name%3Dt+y%3D%28%22n%22%2C+dura%2C+count%29", "")
	if w.Code != 200 {
		t.Fatalf("json stats: %d %s", w.Code, w.Body)
	}
	var got struct {
		Tables []struct {
			Name     string `json:"name"`
			Columnar bool   `json:"columnar"`
			Skipped  int64  `json:"skipped"`
			Rows     int    `json:"rows"`
			TSV      string `json:"tsv"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 1 || got.Tables[0].Name != "t" || !got.Tables[0].Columnar || got.Tables[0].TSV == "" {
		t.Fatalf("unexpected json stats payload: %+v", got)
	}

	// Time-resolved tables: three of them, with the expected names.
	w = do(t, s, "GET", "/v1/traces/"+id+"/stats?timeresolved=1&bins=12&format=json", "")
	if w.Code != 200 {
		t.Fatalf("timeresolved: %d %s", w.Code, w.Body)
	}
	got.Tables = nil
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(got.Tables))
	for i, tb := range got.Tables {
		names[i] = tb.Name
	}
	if fmt.Sprint(names) != "[tr_busy_by_type tr_load_balance tr_concurrency]" {
		t.Fatalf("timeresolved tables = %v", names)
	}
	if w := do(t, s, "GET", "/v1/traces/"+id+"/stats?timeresolved=1&expr=x", ""); w.Code != 400 {
		t.Fatalf("timeresolved with expr: %d", w.Code)
	}

	// The engine counters moved: the engine=scalar request above counts
	// scalar tables, everything else counts columnar ones.
	body := do(t, s, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"tracesvc_stats_tables_columnar_total ",
		"tracesvc_stats_tables_scalar_total ",
		"tracesvc_stats_records_skipped_total ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body lacks %q:\n%s", want, body)
		}
	}
	for _, never := range []string{
		"tracesvc_stats_tables_columnar_total 0\n",
		"tracesvc_stats_tables_scalar_total 0\n",
	} {
		if strings.Contains(body, never) {
			t.Fatalf("counter never moved: %q", never)
		}
	}
}
