package tracesvc_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"tracefw/internal/interval"
	"tracefw/internal/tracesvc"
)

// TestHealthReadyLifecycle pins the liveness/readiness contract:
// /healthz is always 200, /readyz is 503 until SetReady, 200 after,
// and 503 again once Close begins draining.
func TestHealthReadyLifecycle(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})

	if w := do(t, s, "GET", "/healthz", ""); w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("healthz before ready: %d %q", w.Code, w.Body)
	}
	if w := do(t, s, "GET", "/readyz", ""); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "starting") {
		t.Fatalf("readyz before SetReady: %d %q", w.Code, w.Body)
	}
	s.SetReady()
	if w := do(t, s, "GET", "/readyz", ""); w.Code != http.StatusOK || w.Body.String() != "ready\n" {
		t.Fatalf("readyz after SetReady: %d %q", w.Code, w.Body)
	}
	s.Close()
	if w := do(t, s, "GET", "/readyz", ""); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("readyz after Close: %d %q", w.Code, w.Body)
	}
	if w := do(t, s, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz after Close: %d %q", w.Code, w.Body)
	}
}

// TestLiveRetryAfter asserts the 503 before a live trace's first sealed
// frame group carries a Retry-After header, so pollers back off instead
// of spinning.
func TestLiveRetryAfter(t *testing.T) {
	s := ingestService(t, t.TempDir(), interval.WriterOptions{})
	defer s.Close()
	w := doBytes(t, s, "POST", "/v1/ingest/pending?op=begin&nodes=1", nil)
	if w.Code != http.StatusCreated {
		t.Fatalf("begin: %d %s", w.Code, w.Body)
	}
	var began struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &began); err != nil || began.ID == "" {
		t.Fatalf("begin response %q: %v", w.Body, err)
	}

	w = do(t, s, "GET", "/v1/traces/"+began.ID, "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("get before first seal: %d %s", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
}

// TestRecordsFrameRange exercises ?frames=lo:hi: the dir boundaries
// published by /frames partition the frame list, per-range pages
// concatenate to the whole-trace page, per-range counts sum to the
// total, and malformed ranges answer 400.
func TestRecordsFrameRange(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	path := writeTrace(t, t.TempDir(), 400)
	id := openTrace(t, s, path)

	w := do(t, s, "GET", "/v1/traces/"+id+"/frames", "")
	if w.Code != http.StatusOK {
		t.Fatalf("frames: %d %s", w.Code, w.Body)
	}
	var fl tracesvc.FrameList
	if err := json.Unmarshal(w.Body.Bytes(), &fl); err != nil {
		t.Fatal(err)
	}
	if len(fl.Dirs) < 2 {
		t.Fatalf("want >=2 dirs, got %d", len(fl.Dirs))
	}
	// Dirs must tile the frame list: contiguous, complete, gapless.
	next := 0
	var dirRecs int64
	for i, d := range fl.Dirs {
		if d.FirstFrame != next {
			t.Fatalf("dir %d: firstFrame %d, want %d", i, d.FirstFrame, next)
		}
		next += d.Frames
		dirRecs += d.Records
	}
	if next != len(fl.Frames) {
		t.Fatalf("dirs cover %d frames, list has %d", next, len(fl.Frames))
	}

	full := recordsPage(t, s, "/v1/traces/"+id+"/records?limit=100000")
	if int64(full.Total) != dirRecs {
		t.Fatalf("total %d, dir aggregate %d", full.Total, dirRecs)
	}

	// Concatenating the per-dir ranges must reproduce the full page, and
	// their counts must sum to the total.
	var cat []tracesvc.RecordJSON
	sum := 0
	for _, d := range fl.Dirs {
		url := fmt.Sprintf("/v1/traces/%s/records?limit=100000&frames=%d:%d", id, d.FirstFrame, d.FirstFrame+d.Frames)
		page := recordsPage(t, s, url)
		sum += page.Total
		cat = append(cat, page.Records...)
	}
	if sum != full.Total {
		t.Fatalf("per-range totals sum to %d, want %d", sum, full.Total)
	}
	a, _ := json.Marshal(cat)
	b, _ := json.Marshal(full.Records)
	if string(a) != string(b) {
		t.Fatal("concatenated per-range records differ from the whole-trace page")
	}

	// A windowed range query only sees its own frames.
	mid := fl.Dirs[1].FirstFrame
	head := recordsPage(t, s, fmt.Sprintf("/v1/traces/%s/records?limit=100000&frames=0:%d", id, mid))
	if head.Total+sumTotals(t, s, id, fl.Dirs[1:]) != full.Total {
		t.Fatal("split at dir 1 does not partition the records")
	}

	// Empty range is legal and empty; malformed or out-of-range is 400.
	empty := recordsPage(t, s, "/v1/traces/"+id+"/records?frames=3:3")
	if empty.Total != 0 || len(empty.Records) != 0 {
		t.Fatalf("empty range: total %d, %d records", empty.Total, len(empty.Records))
	}
	for _, bad := range []string{"x:2", "2", "-1:2", "5:2", fmt.Sprintf("0:%d", len(fl.Frames)+1), "1:2:3"} {
		w := do(t, s, "GET", "/v1/traces/"+id+"/records?frames="+bad, "")
		if w.Code != http.StatusBadRequest {
			t.Fatalf("frames=%q: %d, want 400", bad, w.Code)
		}
	}

	// The range-leg counter moved.
	if m := do(t, s, "GET", "/metrics", "").Body.String(); !strings.Contains(m, "tracesvc_range_queries_total") {
		t.Fatal("metrics lack tracesvc_range_queries_total")
	}
}

func recordsPage(t *testing.T, s *tracesvc.Service, url string) tracesvc.RecordsPage {
	t.Helper()
	w := do(t, s, "GET", url, "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, w.Code, w.Body)
	}
	var page tracesvc.RecordsPage
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	return page
}

func sumTotals(t *testing.T, s *tracesvc.Service, id string, dirs []tracesvc.DirInfo) int {
	t.Helper()
	sum := 0
	for _, d := range dirs {
		url := fmt.Sprintf("/v1/traces/%s/records?count=1&frames=%d:%d", id, d.FirstFrame, d.FirstFrame+d.Frames)
		w := do(t, s, "GET", url, "")
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", url, w.Code, w.Body)
		}
		var c tracesvc.RecordCount
		if err := json.Unmarshal(w.Body.Bytes(), &c); err != nil {
			t.Fatal(err)
		}
		sum += c.Count
	}
	return sum
}
