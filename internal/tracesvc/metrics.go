package tracesvc

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tracefw/internal/ingest"
)

// Hand-rolled Prometheus text-format metrics (stdlib only, per the
// repo's no-new-dependencies rule): atomic counters and gauges plus
// fixed-bucket latency histograms, rendered by writePrometheus in the
// exposition format's deterministic order.

type counter struct{ v atomic.Int64 }

func (c *counter) add(n int64) { c.v.Add(n) }
func (c *counter) value() int64 {
	return c.v.Load()
}

type gauge = counter

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache-hit microseconds to multi-second cold scans.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. Observations and
// rendering are lock-free; the rendered snapshot is approximate under
// concurrency, which the exposition format permits.
type histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// numBuckets must equal len(latencyBuckets); a const so the bucket
// array needs no allocation. Checked at init.
const numBuckets = 16

func init() {
	if len(latencyBuckets) != numBuckets {
		panic("tracesvc: numBuckets out of sync with latencyBuckets")
	}
}

// observe records one request duration.
func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// metrics aggregates everything /metrics exposes. Per-endpoint
// histograms and request counters are created up front for the fixed
// endpoint set, so no lock is needed on the request path.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	// Stats-engine counters: tables produced by each evaluator and the
	// running total of records excluded by the errSkip path (previously
	// dropped silently).
	statsColumnar counter
	statsScalar   counter
	statsSkipped  counter
	// Summary-planner counters: queries answered from pyramid cells vs
	// by the frame-scan fallback, plus what each cost.
	summaryPyramid counter
	summaryScan    counter
	summaryCells   counter
	summaryFrames  counter
}

// observeSummary records one summary-planner query (a preview build or
// a time-resolved stats run): the engine that answered it, the pyramid
// cells it consulted, and the frames it decoded.
func (m *metrics) observeSummary(engine string, cells, frames int) {
	if engine == "pyramid" {
		m.summaryPyramid.add(1)
	} else {
		m.summaryScan.add(1)
	}
	m.summaryCells.add(int64(cells))
	m.summaryFrames.add(int64(frames))
}

type endpointMetrics struct {
	requests counter
	errors   counter
	latency  histogram
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

// endpoint returns (registering on first use) the metrics bundle for a
// named endpoint. Registration happens once per endpoint at mux setup,
// so the lock never contends with request traffic.
func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[name]
	if em == nil {
		em = &endpointMetrics{}
		m.endpoints[name] = em
	}
	return em
}

// writePrometheus renders every metric in Prometheus text exposition
// format. Families are rendered in a fixed order and endpoint labels
// sorted, so scrapes are diffable.
func (m *metrics) writePrometheus(w io.Writer, cache CacheStats, tracesOpen int64, framesDecoded int64) {
	fmt.Fprintf(w, "# HELP tracesvc_cache_hits_total Decoded-frame cache hits (including singleflight waiters).\n")
	fmt.Fprintf(w, "# TYPE tracesvc_cache_hits_total counter\n")
	fmt.Fprintf(w, "tracesvc_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "# HELP tracesvc_cache_misses_total Decoded-frame cache misses (each one decode).\n")
	fmt.Fprintf(w, "# TYPE tracesvc_cache_misses_total counter\n")
	fmt.Fprintf(w, "tracesvc_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "# HELP tracesvc_cache_evictions_total Frames evicted to stay under the byte budget.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_cache_evictions_total counter\n")
	fmt.Fprintf(w, "tracesvc_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "# HELP tracesvc_cache_bytes_resident Approximate bytes of decoded records resident in the cache.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_cache_bytes_resident gauge\n")
	fmt.Fprintf(w, "tracesvc_cache_bytes_resident %d\n", cache.Bytes)
	fmt.Fprintf(w, "# HELP tracesvc_cache_frames_resident Decoded frames resident in the cache.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_cache_frames_resident gauge\n")
	fmt.Fprintf(w, "tracesvc_cache_frames_resident %d\n", cache.Entries)
	fmt.Fprintf(w, "# HELP tracesvc_traces_open Trace files currently registered.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_traces_open gauge\n")
	fmt.Fprintf(w, "tracesvc_traces_open %d\n", tracesOpen)
	fmt.Fprintf(w, "# HELP tracesvc_frames_decoded_total Frame payload reads across all registered traces.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_frames_decoded_total counter\n")
	fmt.Fprintf(w, "tracesvc_frames_decoded_total %d\n", framesDecoded)
	fmt.Fprintf(w, "# HELP tracesvc_stats_tables_columnar_total Statistics tables produced by the vectorized columnar engine.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_stats_tables_columnar_total counter\n")
	fmt.Fprintf(w, "tracesvc_stats_tables_columnar_total %d\n", m.statsColumnar.value())
	fmt.Fprintf(w, "# HELP tracesvc_stats_tables_scalar_total Statistics tables produced by the record-at-a-time engine.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_stats_tables_scalar_total counter\n")
	fmt.Fprintf(w, "tracesvc_stats_tables_scalar_total %d\n", m.statsScalar.value())
	fmt.Fprintf(w, "# HELP tracesvc_stats_records_skipped_total Records excluded from statistics tables because an expression referenced a field their state type does not carry.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_stats_records_skipped_total counter\n")
	fmt.Fprintf(w, "tracesvc_stats_records_skipped_total %d\n", m.statsSkipped.value())
	fmt.Fprintf(w, "# HELP tracesvc_summary_queries_total Summary-planner queries (previews, time-resolved tables), by answering engine.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_summary_queries_total counter\n")
	fmt.Fprintf(w, "tracesvc_summary_queries_total{engine=\"pyramid\"} %d\n", m.summaryPyramid.value())
	fmt.Fprintf(w, "tracesvc_summary_queries_total{engine=\"scan\"} %d\n", m.summaryScan.value())
	fmt.Fprintf(w, "# HELP tracesvc_summary_pyramid_cells_total Pyramid cells consulted by summary-planner queries.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_summary_pyramid_cells_total counter\n")
	fmt.Fprintf(w, "tracesvc_summary_pyramid_cells_total %d\n", m.summaryCells.value())
	fmt.Fprintf(w, "# HELP tracesvc_summary_frames_decoded_total Frames decoded by summary-planner queries (scan fallbacks and pyramid window edges).\n")
	fmt.Fprintf(w, "# TYPE tracesvc_summary_frames_decoded_total counter\n")
	fmt.Fprintf(w, "tracesvc_summary_frames_decoded_total %d\n", m.summaryFrames.value())

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	ems := make([]*endpointMetrics, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ems = append(ems, m.endpoints[name])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP tracesvc_requests_total Requests served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_requests_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "tracesvc_requests_total{endpoint=%q} %d\n", name, ems[i].requests.value())
	}
	fmt.Fprintf(w, "# HELP tracesvc_request_errors_total Requests answered with a 4xx/5xx status, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_request_errors_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "tracesvc_request_errors_total{endpoint=%q} %d\n", name, ems[i].errors.value())
	}
	fmt.Fprintf(w, "# HELP tracesvc_request_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_request_seconds histogram\n")
	for i, name := range names {
		h := &ems[i].latency
		var cum int64
		for bi, ub := range latencyBuckets {
			cum += h.buckets[bi].Load()
			fmt.Fprintf(w, "tracesvc_request_seconds_bucket{endpoint=%q,le=%q} %d\n", name, trimFloat(ub), cum)
		}
		fmt.Fprintf(w, "tracesvc_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, h.count.Load())
		fmt.Fprintf(w, "tracesvc_request_seconds_sum{endpoint=%q} %g\n", name, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "tracesvc_request_seconds_count{endpoint=%q} %d\n", name, h.count.Load())
	}
}

// trimFloat renders a bucket bound the way Prometheus clients do:
// shortest representation, no exponent for these magnitudes.
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// writeIngestMetrics appends the streaming-ingest counters; only
// emitted when ingest is enabled, so scrapes of a query-only daemon are
// unchanged.
func writeIngestMetrics(w io.Writer, st ingest.Stats) {
	fmt.Fprintf(w, "# HELP tracesvc_ingest_sessions_active Live traces currently being ingested.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_sessions_active gauge\n")
	fmt.Fprintf(w, "tracesvc_ingest_sessions_active %d\n", st.SessionsActive)
	fmt.Fprintf(w, "# HELP tracesvc_ingest_sessions_done_total Ingest sessions completed (all nodes finished or drained).\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_sessions_done_total counter\n")
	fmt.Fprintf(w, "tracesvc_ingest_sessions_done_total %d\n", st.SessionsDone)
	fmt.Fprintf(w, "# HELP tracesvc_ingest_sessions_failed_total Ingest sessions that failed or were aborted (their sealed prefix stays valid).\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_sessions_failed_total counter\n")
	fmt.Fprintf(w, "tracesvc_ingest_sessions_failed_total %d\n", st.SessionsFailed)
	fmt.Fprintf(w, "# HELP tracesvc_ingest_batches_total Batches accepted across all sessions.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_batches_total counter\n")
	fmt.Fprintf(w, "tracesvc_ingest_batches_total %d\n", st.Batches)
	fmt.Fprintf(w, "# HELP tracesvc_ingest_bytes_total Raw batch bytes accepted across all sessions.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_bytes_total counter\n")
	fmt.Fprintf(w, "tracesvc_ingest_bytes_total %d\n", st.Bytes)
	fmt.Fprintf(w, "# HELP tracesvc_ingest_records_total Raw event records decoded across all sessions.\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_records_total counter\n")
	fmt.Fprintf(w, "tracesvc_ingest_records_total %d\n", st.Records)
	fmt.Fprintf(w, "# HELP tracesvc_ingest_seals_total Frame-group seals published by live writers (each one advances the queryable tail).\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_seals_total counter\n")
	fmt.Fprintf(w, "tracesvc_ingest_seals_total %d\n", st.Seals)
	fmt.Fprintf(w, "# HELP tracesvc_ingest_errors_total Rejected ingest requests (bad sequence, oversized batch, contract violations).\n")
	fmt.Fprintf(w, "# TYPE tracesvc_ingest_errors_total counter\n")
	fmt.Fprintf(w, "tracesvc_ingest_errors_total %d\n", st.Errors)
}
