package tracesvc

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tracefw/internal/ingest"
	"tracefw/internal/promtext"
)

// /metrics is rendered with the shared hand-rolled Prometheus kit
// (internal/promtext): atomic counters and gauges plus fixed-bucket
// latency histograms, families in a fixed order and endpoint labels
// sorted, so scrapes are diffable.

// metrics aggregates everything /metrics exposes. Per-endpoint
// histograms and request counters are created up front for the fixed
// endpoint set, so no lock is needed on the request path.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	// Stats-engine counters: tables produced by each evaluator and the
	// running total of records excluded by the errSkip path (previously
	// dropped silently).
	statsColumnar promtext.Counter
	statsScalar   promtext.Counter
	statsSkipped  promtext.Counter
	// Summary-planner counters: queries answered from pyramid cells vs
	// by the frame-scan fallback, plus what each cost.
	summaryPyramid promtext.Counter
	summaryScan    promtext.Counter
	summaryCells   promtext.Counter
	summaryFrames  promtext.Counter
	// rangeQueries counts requests that restricted their scan to an
	// explicit frame-index range (?frames=lo:hi) — the shard router's
	// scatter-gather legs, so a backend can tell fan-out traffic from
	// whole-trace queries.
	rangeQueries promtext.Counter
}

// observeSummary records one summary-planner query (a preview build or
// a time-resolved stats run): the engine that answered it, the pyramid
// cells it consulted, and the frames it decoded.
func (m *metrics) observeSummary(engine string, cells, frames int) {
	if engine == "pyramid" {
		m.summaryPyramid.Add(1)
	} else {
		m.summaryScan.Add(1)
	}
	m.summaryCells.Add(int64(cells))
	m.summaryFrames.Add(int64(frames))
}

type endpointMetrics struct {
	requests promtext.Counter
	errors   promtext.Counter
	latency  promtext.Histogram
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

// endpoint returns (registering on first use) the metrics bundle for a
// named endpoint. Registration happens once per endpoint at mux setup,
// so the lock never contends with request traffic.
func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[name]
	if em == nil {
		em = &endpointMetrics{}
		m.endpoints[name] = em
	}
	return em
}

// writePrometheus renders every metric in Prometheus text exposition
// format.
func (m *metrics) writePrometheus(w io.Writer, cache CacheStats, tracesOpen int64, framesDecoded int64) {
	promtext.Header(w, "tracesvc_cache_hits_total", "counter", "Decoded-frame cache hits (including singleflight waiters).")
	fmt.Fprintf(w, "tracesvc_cache_hits_total %d\n", cache.Hits)
	promtext.Header(w, "tracesvc_cache_misses_total", "counter", "Decoded-frame cache misses (each one decode).")
	fmt.Fprintf(w, "tracesvc_cache_misses_total %d\n", cache.Misses)
	promtext.Header(w, "tracesvc_cache_evictions_total", "counter", "Frames evicted to stay under the byte budget.")
	fmt.Fprintf(w, "tracesvc_cache_evictions_total %d\n", cache.Evictions)
	promtext.Header(w, "tracesvc_cache_bytes_resident", "gauge", "Approximate bytes of decoded records resident in the cache.")
	fmt.Fprintf(w, "tracesvc_cache_bytes_resident %d\n", cache.Bytes)
	promtext.Header(w, "tracesvc_cache_frames_resident", "gauge", "Decoded frames resident in the cache.")
	fmt.Fprintf(w, "tracesvc_cache_frames_resident %d\n", cache.Entries)
	promtext.Header(w, "tracesvc_traces_open", "gauge", "Trace files currently registered.")
	fmt.Fprintf(w, "tracesvc_traces_open %d\n", tracesOpen)
	promtext.Header(w, "tracesvc_frames_decoded_total", "counter", "Frame payload reads across all registered traces.")
	fmt.Fprintf(w, "tracesvc_frames_decoded_total %d\n", framesDecoded)
	promtext.Header(w, "tracesvc_stats_tables_columnar_total", "counter", "Statistics tables produced by the vectorized columnar engine.")
	fmt.Fprintf(w, "tracesvc_stats_tables_columnar_total %d\n", m.statsColumnar.Value())
	promtext.Header(w, "tracesvc_stats_tables_scalar_total", "counter", "Statistics tables produced by the record-at-a-time engine.")
	fmt.Fprintf(w, "tracesvc_stats_tables_scalar_total %d\n", m.statsScalar.Value())
	promtext.Header(w, "tracesvc_stats_records_skipped_total", "counter", "Records excluded from statistics tables because an expression referenced a field their state type does not carry.")
	fmt.Fprintf(w, "tracesvc_stats_records_skipped_total %d\n", m.statsSkipped.Value())
	promtext.Header(w, "tracesvc_summary_queries_total", "counter", "Summary-planner queries (previews, time-resolved tables), by answering engine.")
	fmt.Fprintf(w, "tracesvc_summary_queries_total{engine=\"pyramid\"} %d\n", m.summaryPyramid.Value())
	fmt.Fprintf(w, "tracesvc_summary_queries_total{engine=\"scan\"} %d\n", m.summaryScan.Value())
	promtext.Header(w, "tracesvc_summary_pyramid_cells_total", "counter", "Pyramid cells consulted by summary-planner queries.")
	fmt.Fprintf(w, "tracesvc_summary_pyramid_cells_total %d\n", m.summaryCells.Value())
	promtext.Header(w, "tracesvc_summary_frames_decoded_total", "counter", "Frames decoded by summary-planner queries (scan fallbacks and pyramid window edges).")
	fmt.Fprintf(w, "tracesvc_summary_frames_decoded_total %d\n", m.summaryFrames.Value())
	promtext.Header(w, "tracesvc_range_queries_total", "counter", "Requests restricted to an explicit frame-index range (?frames=lo:hi) — the shard router's scatter-gather legs.")
	fmt.Fprintf(w, "tracesvc_range_queries_total %d\n", m.rangeQueries.Value())

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	ems := make([]*endpointMetrics, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ems = append(ems, m.endpoints[name])
	}
	m.mu.Unlock()

	promtext.Header(w, "tracesvc_requests_total", "counter", "Requests served, by endpoint.")
	for i, name := range names {
		fmt.Fprintf(w, "tracesvc_requests_total{endpoint=%q} %d\n", name, ems[i].requests.Value())
	}
	promtext.Header(w, "tracesvc_request_errors_total", "counter", "Requests answered with a 4xx/5xx status, by endpoint.")
	for i, name := range names {
		fmt.Fprintf(w, "tracesvc_request_errors_total{endpoint=%q} %d\n", name, ems[i].errors.Value())
	}
	promtext.Header(w, "tracesvc_request_seconds", "histogram", "Request latency, by endpoint.")
	for i, name := range names {
		ems[i].latency.WriteBuckets(w, "tracesvc_request_seconds", fmt.Sprintf("endpoint=%q", name))
	}
}

// writeIngestMetrics appends the streaming-ingest counters; only
// emitted when ingest is enabled, so scrapes of a query-only daemon are
// unchanged.
func writeIngestMetrics(w io.Writer, st ingest.Stats) {
	promtext.Header(w, "tracesvc_ingest_sessions_active", "gauge", "Live traces currently being ingested.")
	fmt.Fprintf(w, "tracesvc_ingest_sessions_active %d\n", st.SessionsActive)
	promtext.Header(w, "tracesvc_ingest_sessions_done_total", "counter", "Ingest sessions completed (all nodes finished or drained).")
	fmt.Fprintf(w, "tracesvc_ingest_sessions_done_total %d\n", st.SessionsDone)
	promtext.Header(w, "tracesvc_ingest_sessions_failed_total", "counter", "Ingest sessions that failed or were aborted (their sealed prefix stays valid).")
	fmt.Fprintf(w, "tracesvc_ingest_sessions_failed_total %d\n", st.SessionsFailed)
	promtext.Header(w, "tracesvc_ingest_batches_total", "counter", "Batches accepted across all sessions.")
	fmt.Fprintf(w, "tracesvc_ingest_batches_total %d\n", st.Batches)
	promtext.Header(w, "tracesvc_ingest_bytes_total", "counter", "Raw batch bytes accepted across all sessions.")
	fmt.Fprintf(w, "tracesvc_ingest_bytes_total %d\n", st.Bytes)
	promtext.Header(w, "tracesvc_ingest_records_total", "counter", "Raw event records decoded across all sessions.")
	fmt.Fprintf(w, "tracesvc_ingest_records_total %d\n", st.Records)
	promtext.Header(w, "tracesvc_ingest_seals_total", "counter", "Frame-group seals published by live writers (each one advances the queryable tail).")
	fmt.Fprintf(w, "tracesvc_ingest_seals_total %d\n", st.Seals)
	promtext.Header(w, "tracesvc_ingest_errors_total", "counter", "Rejected ingest requests (bad sequence, oversized batch, contract violations).")
	fmt.Fprintf(w, "tracesvc_ingest_errors_total %d\n", st.Errors)
}
