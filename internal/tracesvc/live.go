package tracesvc

import (
	"fmt"
	"net/http"
	"sync"

	"tracefw/internal/interval"
)

// Live traces: a trace still being written by the streaming ingest
// pipeline is registered through AddLive with a provider instead of a
// finished file. Every query resolves the provider's latest seal
// generation to an interval snapshot opened with WithLiveTail, so
// readers observe the live tail the moment a frame seals, and never a
// torn suffix.
//
// Cache coherence across seals needs no invalidation: the writer's
// steady state is append-only, so a sealed frame's bytes at a given
// offset never change, and decoded-frame cache entries keyed by the
// entry's stable namespace number stay valid across generations — a
// query against generation g+1 reuses every frame generation g already
// decoded. Only closing the live trace invalidates its namespace.

// LiveProvider is what the registry needs from an ingest session; it is
// structural so the ingest package does not import the serving layer.
// Ready turns true once the merged header is on disk (the first seal);
// gen increases monotonically with every seal.
type LiveProvider interface {
	LiveInfo() (path string, sealedSize int64, gen uint64, ready bool)
}

// liveRetireRing is how many superseded snapshot files stay open for
// queries that still hold them; older ones are closed, failing those
// queries with interval.ErrClosed (mapped to 503, a retry resolves the
// fresh snapshot).
const liveRetireRing = 8

// liveEntry is one registered live trace: the provider plus the cached
// snapshot of its newest resolved generation.
type liveEntry struct {
	id   string
	num  uint64 // cache namespace, stable across seal generations
	prov LiveProvider

	mu      sync.Mutex
	gen     uint64
	cur     *Trace
	retired []*interval.File
}

// AddLive registers a live trace and returns its ID. The trace becomes
// queryable once the provider reports ready; until then queries get 503.
func (r *Registry) AddLive(prov LiveProvider) string {
	r.mu.Lock()
	r.nextID++
	e := &liveEntry{id: fmt.Sprintf("t%d", r.nextID), num: r.nextID, prov: prov}
	r.liveByID[e.id] = e
	r.mu.Unlock()
	return e.id
}

// resolve returns the Trace for the provider's newest seal generation,
// reopening a snapshot only when the generation advanced since the last
// call. Because a finished file's WithLiveTail(final size) view is
// identical to a plain open, a completed ingest keeps serving through
// its last snapshot with no handover.
func (e *liveEntry) resolve(cache *FrameCache) (*Trace, error) {
	path, size, gen, ready := e.prov.LiveInfo()
	if !ready {
		// retryAfter tells clients when to poll again: the first frame
		// group usually seals within a second of ingest starting.
		return nil, &httpErr{code: http.StatusServiceUnavailable,
			msg:        fmt.Sprintf("live trace %s has no sealed data yet", e.id),
			retryAfter: 1}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cur != nil && e.gen == gen {
		return e.cur, nil
	}
	f, err := interval.Open(path, interval.WithLiveTail(size), interval.WithPyramid(false))
	if err != nil {
		return nil, fmt.Errorf("tracesvc: live snapshot %s@%d: %w", path, size, err)
	}
	t, err := buildTrace(e.id, path, e.num, f, cache)
	if err != nil {
		f.Close()
		return nil, err
	}
	if e.cur != nil {
		e.retired = append(e.retired, e.cur.file)
		if len(e.retired) > liveRetireRing {
			e.retired[0].Close()
			e.retired = e.retired[1:]
		}
	}
	e.cur, e.gen = t, gen
	return t, nil
}

// file returns the current snapshot's file without forcing a resolve.
func (e *liveEntry) file() *interval.File {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cur == nil {
		return nil
	}
	return e.cur.file
}

// close shuts the current snapshot and every retired one.
func (e *liveEntry) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cur != nil {
		e.cur.file.Close()
		e.cur = nil
	}
	for _, f := range e.retired {
		f.Close()
	}
	e.retired = nil
}
