package tracesvc_test

// Service-level tests for the summary-pyramid query paths: the
// view=preview histogram mode, the summary= engine switch on
// time-resolved stats, the empty-window placeholder, and the /metrics
// counters that prove which engine answered.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"tracefw/internal/interval"
	"tracefw/internal/tracesvc"
)

// writePyramidTrace writes a trace plus its .pyr sidecar; the registry
// auto-loads the sidecar on open.
func writePyramidTrace(t *testing.T, n int) string {
	t.Helper()
	path := writeTrace(t, t.TempDir(), n)
	if _, err := interval.BuildPyramidSidecar(path, interval.PyramidOptions{BaseCells: 128, TopK: 8}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServicePreviewHistogram(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	id := openTrace(t, s, writePyramidTrace(t, 400))

	get := func(q string) string {
		t.Helper()
		w := do(t, s, "GET", "/v1/traces/"+id+"/preview.svg?view=preview"+q, "")
		if w.Code != http.StatusOK {
			t.Fatalf("preview%s: %d %s", q, w.Code, w.Body)
		}
		if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("content type %q", ct)
		}
		return w.Body.String()
	}

	auto := get("")
	if !strings.Contains(auto, "preview") || strings.Count(auto, "<rect") < 5 {
		t.Fatalf("histogram too empty:\n%s", auto)
	}
	// The pyramid and scan engines must render byte-identical documents,
	// and auto must match both (it picks the pyramid here).
	pyr, scan := get("&engine=pyramid"), get("&engine=scan")
	if pyr != scan || auto != pyr {
		t.Fatal("engines render different documents")
	}
	// Windowed + explicit bins exercise the planner's remainder path.
	if w1, w2 := get("&window=0.01:0.09&bins=20&engine=pyramid"), get("&window=0.01:0.09&bins=20&engine=scan"); w1 != w2 {
		t.Fatal("windowed engines render different documents")
	}

	for _, q := range []string{"&engine=nope", "&bins=0", "&bins=x"} {
		if w := do(t, s, "GET", "/v1/traces/"+id+"/preview.svg?view=preview"+q, ""); w.Code != http.StatusBadRequest {
			t.Fatalf("preview%s: %d, want 400", q, w.Code)
		}
	}

	// The counters prove the pyramid answered: cell hits climbed and at
	// least one query per engine was recorded.
	m := do(t, s, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		`tracesvc_summary_queries_total{engine="pyramid"} 3`,
		`tracesvc_summary_queries_total{engine="scan"} 2`,
		"tracesvc_summary_pyramid_cells_total",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, "tracesvc_summary_pyramid_cells_total ") && strings.HasSuffix(line, " 0") {
			t.Fatalf("pyramid answered but consulted no cells: %s", line)
		}
	}
}

// TestServicePreviewEmptyWindow: a window beyond the run must render
// the placeholder note — not the full run through an inverted clamp
// (the old bug) and not a bare axis.
func TestServicePreviewEmptyWindow(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	id := openTrace(t, s, writePyramidTrace(t, 300))

	for _, url := range []string{
		"/v1/traces/" + id + "/preview.svg?view=preview&window=100:200",
		"/v1/traces/" + id + "/preview.svg?view=processor-activity&window=100:200",
	} {
		w := do(t, s, "GET", url, "")
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", url, w.Code, w.Body)
		}
		body := w.Body.String()
		if !strings.Contains(body, "no data in window") {
			t.Fatalf("%s: placeholder missing:\n%s", url, body)
		}
		if strings.Contains(body, "<rect") {
			t.Fatalf("%s: beyond-run window rendered data", url)
		}
	}
}

func TestStatsTimeResolvedSummaryEngine(t *testing.T) {
	s := tracesvc.New(tracesvc.Config{})
	defer s.Close()
	id := openTrace(t, s, writePyramidTrace(t, 400))

	type tableJSON struct {
		Name   string `json:"name"`
		Engine string `json:"engine"`
		TSV    string `json:"tsv"`
	}
	get := func(q string) []tableJSON {
		t.Helper()
		w := do(t, s, "GET", "/v1/traces/"+id+"/stats?timeresolved=1&bins=8&format=json"+q, "")
		if w.Code != http.StatusOK {
			t.Fatalf("stats%s: %d %s", q, w.Code, w.Body)
		}
		var out struct {
			Tables []tableJSON `json:"tables"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.Tables
	}

	pyr, scan, auto := get("&summary=pyramid"), get("&summary=scan"), get("")
	if len(pyr) != 3 || len(scan) != 3 || len(auto) != 3 {
		t.Fatalf("table counts %d/%d/%d", len(pyr), len(scan), len(auto))
	}
	for i := range pyr {
		if pyr[i].Engine != "pyramid" || scan[i].Engine != "scan" || auto[i].Engine != "pyramid" {
			t.Fatalf("table %s engines %q/%q/%q", pyr[i].Name, pyr[i].Engine, scan[i].Engine, auto[i].Engine)
		}
		if pyr[i].TSV != scan[i].TSV {
			t.Fatalf("table %s differs between engines:\npyramid:\n%s\nscan:\n%s", pyr[i].Name, pyr[i].TSV, scan[i].TSV)
		}
	}

	if w := do(t, s, "GET", "/v1/traces/"+id+"/stats?timeresolved=1&summary=nope", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("bad summary engine: %d", w.Code)
	}

	// Without a sidecar auto degrades to the scan engine silently.
	plain := openTrace(t, s, writeTrace(t, t.TempDir(), 200))
	w := do(t, s, "GET", "/v1/traces/"+plain+"/stats?timeresolved=1&bins=4&format=json", "")
	if w.Code != http.StatusOK {
		t.Fatalf("plain stats: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"engine": "scan"`) {
		t.Fatalf("plain trace not answered by scan:\n%s", w.Body)
	}
}
