package tracesvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"tracefw/internal/clock"
	"tracefw/internal/interval"
	"tracefw/internal/render"
	"tracefw/internal/stats"
)

// Config tunes the service; zero values select the defaults.
type Config struct {
	// CacheBytes is the decoded-frame cache budget (default 256 MiB).
	CacheBytes int64
	// CacheShards is the cache shard count (default 16).
	CacheShards int
	// RequestTimeout bounds each request; the deadline propagates through
	// the map-reduce engine via MapOptions.Context (default 30s).
	RequestTimeout time.Duration
	// DefaultBins is the time-bin count for the predefined statistics
	// program when the stats endpoint gets no expr (default 50, matching
	// utestats).
	DefaultBins int
}

func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DefaultBins <= 0 {
		c.DefaultBins = 50
	}
	return c
}

// Service is the HTTP trace query service: the registry and cache plus
// the handler mux. One Service serves many concurrent requests; all
// state it touches is concurrency-safe.
type Service struct {
	cfg   Config
	cache *FrameCache
	reg   *Registry
	met   *metrics
	mux   *http.ServeMux
	// ing is nil until EnableIngest; the ingest endpoints answer 403
	// while it is.
	ing *ingestState
	// ready flips once startup registration is complete (SetReady);
	// draining flips when shutdown begins. /readyz reports 200 only
	// while ready && !draining — the router's health checker keys off
	// it to stop routing to a backend that is going away.
	ready    atomic.Bool
	draining atomic.Bool
}

// New builds a service with an empty registry.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: NewFrameCache(cfg.CacheBytes, cfg.CacheShards),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
	}
	s.reg = NewRegistry(s.cache)

	s.handle("GET /v1/traces", "list", s.handleList)
	s.handle("POST /v1/traces", "open", s.handleOpen)
	s.handle("GET /v1/traces/{id}", "get", s.handleGet)
	s.handle("DELETE /v1/traces/{id}", "close", s.handleClose)
	s.handle("GET /v1/traces/{id}/frames", "frames", s.handleFrames)
	s.handle("GET /v1/traces/{id}/stats", "stats", s.handleStats)
	s.handle("GET /v1/traces/{id}/records", "records", s.handleRecords)
	s.handle("GET /v1/traces/{id}/preview.svg", "preview", s.handlePreview)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	// Liveness and readiness stay outside the metrics/deadline wrapper:
	// health pollers hit them every couple of seconds and would drown
	// the endpoint latency histograms in no-op samples.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case s.draining.Load():
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
		case !s.ready.Load():
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("starting: registry not yet populated\n"))
		default:
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ready\n"))
		}
	})
	s.handle("GET /v1/ingest", "ingest-list", s.handleIngestList)
	s.handle("GET /v1/ingest/{trace}", "ingest-status", s.handleIngestStatus)
	// Batch POSTs run without the request deadline: a push into a full
	// merge queue blocks legitimately (that block is the backpressure
	// bounding ingest memory), and cancelling it would tear a batch.
	s.handleNoDeadline("POST /v1/ingest/{trace}", "ingest", s.handleIngestPost)
	return s
}

// Registry exposes the trace registry (the daemon preloads files from
// its command line; tests register in-memory traces).
func (s *Service) Registry() *Registry { return s.reg }

// Cache exposes the decoded-frame cache (benchmarks Flush it to measure
// the cold path).
func (s *Service) Cache() *FrameCache { return s.cache }

// Handler returns the root handler.
func (s *Service) Handler() http.Handler { return s.mux }

// SetReady marks startup registration complete: /readyz starts
// answering 200. The daemon calls it after preloading its command-line
// traces, right before it starts serving.
func (s *Service) SetReady() { s.ready.Store(true) }

// Close drains any in-flight ingest sessions — sealing every live trace
// into a complete, valid file — and closes every registered trace.
// /readyz flips to 503 "draining" at entry, so a router health checker
// stops sending new work while the drain runs.
func (s *Service) Close() {
	s.draining.Store(true)
	if s.ing != nil {
		s.ing.mgr.DrainAll()
	}
	s.reg.CloseAll()
}

// response is a fully materialized reply. Handlers build replies in
// memory — every endpoint's payload is bounded (tables, frame lists,
// paged records) — so errors discovered mid-generation still produce a
// clean status code instead of a truncated 200.
type response struct {
	status      int
	contentType string
	body        []byte
}

func jsonResponse(status int, v any) (*response, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return &response{status: status, contentType: "application/json", body: append(b, '\n')}, nil
}

// httpErr is an error with an intended status code. retryAfter, when
// positive, becomes a Retry-After header (seconds) on the rendered
// error — set on the 503s a client is expected to retry, like a live
// trace that has not sealed its first frame group yet.
type httpErr struct {
	code       int
	msg        string
	retryAfter int
}

func (e *httpErr) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpErr{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(id string) error {
	return &httpErr{code: http.StatusNotFound, msg: fmt.Sprintf("no trace %q", id)}
}

// errStatus maps an error to its response status: explicit httpErr
// codes, 503 for queries that lost a race with DELETE (the file is
// closed, a retry will 404), 504 for deadline-exceeded work cancelled
// inside the map-reduce engine.
func errStatus(err error) int {
	var he *httpErr
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, interval.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// handle registers one endpoint: request counting, the per-request
// deadline, latency observation, and error rendering wrap the handler.
func (s *Service) handle(pattern, name string, fn func(r *http.Request) (*response, error)) {
	s.handleWrapped(pattern, name, fn, true)
}

// handleNoDeadline registers an endpoint exempt from the request
// deadline (ingest batch POSTs, which block on merge backpressure).
func (s *Service) handleNoDeadline(pattern, name string, fn func(r *http.Request) (*response, error)) {
	s.handleWrapped(pattern, name, fn, false)
}

func (s *Service) handleWrapped(pattern, name string, fn func(r *http.Request) (*response, error), deadline bool) {
	em := s.met.endpoint(name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		em.requests.Add(1)
		var resp *response
		var err error
		if deadline {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			resp, err = fn(r.WithContext(ctx))
			cancel()
		} else {
			resp, err = fn(r)
		}
		if err != nil {
			em.errors.Add(1)
			em.latency.Observe(time.Since(t0))
			var he *httpErr
			if errors.As(err, &he) && he.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
			}
			http.Error(w, err.Error(), errStatus(err))
			return
		}
		ct := resp.contentType
		if ct == "" {
			ct = "text/plain; charset=utf-8"
		}
		w.Header().Set("Content-Type", ct)
		w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
		w.WriteHeader(resp.status)
		w.Write(resp.body)
		em.latency.Observe(time.Since(t0))
	})
}

func infoOf(t *Trace) TraceInfo {
	start, end, recs := t.Bounds()
	return TraceInfo{
		ID:             t.ID,
		Path:           t.Path,
		HeaderVersion:  t.file.Header.HeaderVersion,
		ProfileVersion: t.file.Header.ProfileVersion,
		Threads:        len(t.file.Header.Threads),
		Dirs:           t.dirs,
		Frames:         len(t.frames),
		Records:        recs,
		StartNs:        int64(start),
		EndNs:          int64(end),
		StartSec:       start.Seconds(),
		EndSec:         end.Seconds(),
	}
}

func (s *Service) handleList(*http.Request) (*response, error) {
	ts := s.reg.List()
	infos := make([]TraceInfo, len(ts))
	for i, t := range ts {
		infos[i] = infoOf(t)
	}
	return jsonResponse(http.StatusOK, TraceList{Traces: infos})
}

func (s *Service) handleOpen(r *http.Request) (*response, error) {
	var req struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, badRequest("bad request body: %v", err)
	}
	if req.Path == "" {
		return nil, badRequest("missing \"path\"")
	}
	t, err := s.reg.Open(req.Path)
	if err != nil {
		return nil, badRequest("open %s: %v", req.Path, err)
	}
	return jsonResponse(http.StatusCreated, infoOf(t))
}

// trace resolves the {id} path segment. Live traces resolve to a
// snapshot of their newest seal generation, so every query observes the
// live tail as of its own start.
func (s *Service) trace(r *http.Request) (*Trace, error) {
	return s.reg.Resolve(r.PathValue("id"))
}

func (s *Service) handleGet(r *http.Request) (*response, error) {
	t, err := s.trace(r)
	if err != nil {
		return nil, err
	}
	return jsonResponse(http.StatusOK, infoOf(t))
}

func (s *Service) handleClose(r *http.Request) (*response, error) {
	id := r.PathValue("id")
	if !s.reg.Close(id) {
		return nil, notFound(id)
	}
	return &response{status: http.StatusNoContent}, nil
}

func (s *Service) handleFrames(r *http.Request) (*response, error) {
	t, err := s.trace(r)
	if err != nil {
		return nil, err
	}
	fis := make([]FrameInfo, len(t.frames))
	for i, fe := range t.frames {
		fis[i] = FrameInfo{
			Offset:  fe.Offset,
			Bytes:   fe.Bytes,
			Records: fe.Records,
			StartNs: int64(fe.Start),
			EndNs:   int64(fe.End),
		}
	}
	return jsonResponse(http.StatusOK, FrameList{Frames: fis, Dirs: t.dirInfos})
}

// parseWindow reads the optional ?window=lo:hi query parameter (seconds,
// either side may be empty — the same syntax the CLIs accept).
func parseWindow(r *http.Request) (lo, hi clock.Time, ok bool, err error) {
	w := r.URL.Query().Get("window")
	if w == "" {
		return 0, 0, false, nil
	}
	lo, hi, err = clock.ParseWindow(w)
	if err != nil {
		return 0, 0, false, badRequest("bad window: %v", err)
	}
	return lo, hi, true, nil
}

// handleStats runs a statistics program over the trace. The default
// TSV body is byte-identical to what `utestats [-e expr] [-bins N]
// [-window lo:hi] <path>` prints on stdout: utestats's exact output
// loop over the exact tables the library generates. Extra query
// parameters: engine=auto|scalar|columnar picks the evaluator,
// timeresolved=1 computes the three time-resolved metric tables over
// ?bins buckets instead of running a program,
// summary=auto|pyramid|scan picks the summary engine those tables are
// answered by, and format=json wraps each table with its engine flags
// and excluded-record count.
func (s *Service) handleStats(r *http.Request) (*response, error) {
	t, err := s.trace(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	bins := s.cfg.DefaultBins
	if bs := q.Get("bins"); bs != "" {
		if bins, err = strconv.Atoi(bs); err != nil || bins < 1 {
			return nil, badRequest("bad bins %q", bs)
		}
	}
	opts := stats.Options{Context: r.Context()}
	switch q.Get("engine") {
	case "", "auto":
	case "scalar":
		opts.Engine = stats.EngineScalar
	case "columnar":
		opts.Engine = stats.EngineColumnar
	default:
		return nil, badRequest("bad engine %q", q.Get("engine"))
	}
	if opts.Summary, err = interval.ParseSummaryEngine(q.Get("summary")); err != nil {
		return nil, badRequest("%v", err)
	}
	if lo, hi, ok, err := parseWindow(r); err != nil {
		return nil, err
	} else if ok {
		opts.Window, opts.Lo, opts.Hi = true, lo, hi
	}
	var tables []*stats.Table
	if q.Get("timeresolved") == "1" {
		if q.Get("expr") != "" {
			return nil, badRequest("timeresolved=1 does not take an expr")
		}
		tables, err = stats.TimeResolved([]*interval.File{t.file}, bins, opts)
		if err == nil && len(tables) > 0 {
			s.met.observeSummary(tables[0].Engine, 0, 0)
		}
	} else {
		program := q.Get("expr")
		if program == "" {
			program = stats.Predefined(bins)
		}
		tables, err = stats.GenerateOpts(program, []*interval.File{t.file}, opts)
	}
	if err != nil {
		return nil, err
	}
	for _, tb := range tables {
		if tb.Columnar {
			s.met.statsColumnar.Add(1)
		} else {
			s.met.statsScalar.Add(1)
		}
		s.met.statsSkipped.Add(tb.Skipped)
	}
	if q.Get("format") == "json" {
		type tableJSON struct {
			Name     string `json:"name"`
			Columnar bool   `json:"columnar"`
			Engine   string `json:"engine,omitempty"`
			Skipped  int64  `json:"skipped"`
			Rows     int    `json:"rows"`
			TSV      string `json:"tsv"`
		}
		out := make([]tableJSON, len(tables))
		for i, tb := range tables {
			out[i] = tableJSON{Name: tb.Name, Columnar: tb.Columnar, Engine: tb.Engine, Skipped: tb.Skipped, Rows: len(tb.Rows), TSV: tb.TSV()}
		}
		return jsonResponse(http.StatusOK, struct {
			Tables []tableJSON `json:"tables"`
		}{out})
	}
	var b bytes.Buffer
	for _, tb := range tables {
		fmt.Fprintf(&b, "# table %s\n%s\n", tb.Name, tb.TSV())
	}
	return &response{status: http.StatusOK, contentType: "text/tab-separated-values; charset=utf-8", body: b.Bytes()}, nil
}

// handleRecords pages through the records overlapping a window. The
// scan walks the resident frame list, decoding only overlapping frames
// — through the cache, so a warm repeat decodes nothing. ?count=1 skips
// the bodies and returns the total alone. ?frames=lo:hi restricts the
// scan to the half-open frame-index range [lo, hi) of the flattened
// frame list — the shard router's scatter-gather legs use it so each
// backend touches (and caches) only its own contiguous frame range.
func (s *Service) handleRecords(r *http.Request) (*response, error) {
	t, err := s.trace(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	limit := 1000
	if ls := q.Get("limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil || limit < 1 {
			return nil, badRequest("bad limit %q", ls)
		}
	}
	offset := 0
	if os := q.Get("offset"); os != "" {
		if offset, err = strconv.Atoi(os); err != nil || offset < 0 {
			return nil, badRequest("bad offset %q", os)
		}
	}
	countOnly := q.Get("count") == "1"
	lo, hi, windowed, err := parseWindow(r)
	if err != nil {
		return nil, err
	}
	frames := t.frames
	if fr := q.Get("frames"); fr != "" {
		flo, fhi, ok := parseFrameRange(fr, len(t.frames))
		if !ok {
			return nil, badRequest("bad frames %q", fr)
		}
		frames = t.frames[flo:fhi]
		s.met.rangeQueries.Add(1)
	}

	ctx := r.Context()
	var out []RecordJSON
	if !countOnly {
		out = make([]RecordJSON, 0, min(limit, 4096))
	}
	total := 0
	for _, fe := range frames {
		if windowed && (fe.End < lo || fe.Start > hi) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		recs, err := t.file.DecodeFrame(fe)
		if err != nil {
			return nil, err
		}
		for i := range recs {
			rec := &recs[i]
			if windowed && (rec.End() < lo || rec.Start > hi) {
				continue
			}
			n := total
			total++
			if countOnly || n < offset || n >= offset+limit {
				continue
			}
			out = append(out, RecordJSON{
				Type:    rec.Type.Name(),
				Bebits:  rec.Bebits.String(),
				StartNs: int64(rec.Start),
				DuraNs:  int64(rec.Dura),
				EndNs:   int64(rec.End()),
				CPU:     rec.CPU,
				Node:    rec.Node,
				Thread:  rec.Thread,
				Extra:   rec.Extra,
				Vec:     rec.Vec,
			})
		}
	}
	if countOnly {
		return jsonResponse(http.StatusOK, RecordCount{Count: total})
	}
	return jsonResponse(http.StatusOK, RecordsPage{Total: total, Offset: offset, Records: out})
}

// parseFrameRange parses a "lo:hi" half-open frame-index range against a
// trace with n frames. Both bounds are required; the range may be empty
// (lo == hi) but never inverted or out of bounds.
func parseFrameRange(s string, n int) (lo, hi int, ok bool) {
	i := -1
	for j := 0; j < len(s); j++ {
		if s[j] == ':' {
			i = j
			break
		}
	}
	if i < 0 {
		return 0, 0, false
	}
	lo, err1 := strconv.Atoi(s[:i])
	hi, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || lo < 0 || hi < lo || hi > n {
		return 0, 0, false
	}
	return lo, hi, true
}

// handlePreview renders a time-space diagram of the trace, or — with
// view=preview — the histogram preview computed by the summary query
// planner (?bins=N, ?engine=auto|pyramid|scan). The SVG is
// byte-identical to `uteview -merged <path>` with the same flags: the
// same parse, the same open-ended-window resolution, the same build.
func (s *Service) handlePreview(r *http.Request) (*response, error) {
	t, err := s.trace(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	lo, hi, windowed, err := parseWindow(r)
	if err != nil {
		return nil, err
	}
	if windowed {
		// Open-ended sides resolve to the run bounds; explicit bounds are
		// kept even when they fall outside the run, so a window that
		// overlaps no records renders the empty placeholder instead of
		// snapping back to the full run through an inverted clamp.
		start, end, _ := t.Bounds()
		if lo == math.MinInt64 {
			lo = start
		}
		if hi == math.MaxInt64 {
			hi = end
		}
		if hi <= lo {
			hi = lo + 1
		}
	}
	if q.Get("view") == "preview" {
		eng, err := interval.ParseSummaryEngine(q.Get("engine"))
		if err != nil {
			return nil, badRequest("%v", err)
		}
		bins := 0
		if bs := q.Get("bins"); bs != "" {
			if bins, err = strconv.Atoi(bs); err != nil || bins < 1 {
				return nil, badRequest("bad bins %q", bs)
			}
		}
		popts := render.PreviewOptions{Bins: bins, Engine: eng, Context: r.Context()}
		if windowed {
			popts.T0, popts.T1 = lo, hi
		}
		res, err := render.BuildPreview(t.file, popts)
		if err != nil {
			return nil, err
		}
		s.met.observeSummary(res.Engine, res.CellsUsed, res.FramesDecoded)
		return &response{status: http.StatusOK, contentType: "image/svg+xml", body: []byte(render.PreviewSVG(res.Preview))}, nil
	}
	kind, err := render.ParseView(q.Get("view"))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	opts := render.Options{
		Connected: q.Get("connected") == "1",
		Context:   r.Context(),
	}
	if windowed {
		opts.T0, opts.T1 = lo, hi
	}
	d, err := render.BuildDiagram(t.file, kind, opts)
	if err != nil {
		return nil, err
	}
	return &response{status: http.StatusOK, contentType: "image/svg+xml", body: []byte(d.SVG())}, nil
}

func (s *Service) handleMetrics(*http.Request) (*response, error) {
	var b bytes.Buffer
	s.met.writePrometheus(&b, s.cache.Stats(), int64(s.reg.Len()), s.reg.framesDecoded())
	if s.ing != nil {
		writeIngestMetrics(&b, s.ing.mgr.Stats())
	}
	return &response{status: http.StatusOK, contentType: "text/plain; version=0.0.4; charset=utf-8", body: b.Bytes()}, nil
}
